/**
 * @file
 * Reproduces Table 2: per-layer compression of the three deployed
 * networks — technique, compressed parameter count, compression ratio,
 * and end accuracy — side by side with the paper's reported numbers.
 */

#include "bench/bench_common.hh"
#include "dnn/dataset.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Table 2 — network compression").c_str());

    app::Engine engine;
    for (const auto &name : dnn::kPaperNets) {
        const auto &model = engine.model(name);
        const auto &teacher = model.teacher();
        const auto &net = model.compressed();
        const auto &data = model.dataset();

        const auto orig = dnn::accountLayers(teacher);
        const auto comp = dnn::accountLayers(net);

        std::printf("\n--- %s ---\n", name.c_str());
        Table table({"layer", "kind", "params", "MACs"});
        std::printf("original layers:\n");
        for (const auto &l : orig)
            table.row()
                .cell(l.name)
                .cell(l.kind)
                .cell(static_cast<u64>(l.params))
                .cell(static_cast<u64>(l.macs));
        table.print(std::cout);

        std::printf("compressed layers:\n");
        Table table2({"layer", "kind", "params", "MACs"});
        for (const auto &l : comp)
            table2.row()
                .cell(l.name)
                .cell(l.kind)
                .cell(static_cast<u64>(l.params))
                .cell(static_cast<u64>(l.macs));
        table2.print(std::cout);

        const f64 ratio = static_cast<f64>(teacher.paramCount())
                        / static_cast<f64>(net.paramCount());
        const f64 acc = model.meta().scaledAccuracy(
            dnn::agreement(net, data));
        std::printf("total: %llu -> %llu params (%.1fx); accuracy "
                    "%.3f (paper: %.2f); FRAM %.1f KB (cap 256 KB, "
                    "original %.1f KB)\n",
                    static_cast<unsigned long long>(
                        teacher.paramCount()),
                    static_cast<unsigned long long>(net.paramCount()),
                    ratio, acc, model.meta().paperAccuracy,
                    static_cast<f64>(net.framBytesNeeded()) / 1024.0,
                    static_cast<f64>(teacher.framBytesNeeded())
                        / 1024.0);
    }
    return 0;
}
