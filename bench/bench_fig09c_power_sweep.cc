/**
 * @file
 * Reproduces Fig. 9c: the MNIST network across all four power systems
 * (continuous, 50 mF, 1 mF, 100 uF). SONIC & TAILS complete everywhere
 * with consistent performance; the baseline and large tilings fail as
 * buffers shrink.
 *
 * The capacitor sizes ride the sweep's environment axis (the paper's
 * RF deployment with per-point capacitor overrides) — no hand-rolled
 * sweep loop; the table groups rows power-system-major, matching the
 * figure's layout.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9c — MNIST across power systems")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.nets({"MNIST"}).allImpls().environmentLabels(
        {"continuous", "rf-paper@50mF", "rf-paper@1mF",
         "rf-paper@100uF"});
    const auto records = engine.run(plan);

    Table table({"environment", "impl", "status", "live (s)",
                 "dead (s)", "total (s)", "reboots"});
    for (const auto &environment : plan.environmentAxis()) {
        for (const auto &record : records) {
            if (!(record.spec.environment == environment))
                continue;
            const auto &r = record.result;
            table.row()
                .cell(record.spec.environment.label())
                .cell(std::string(
                    kernels::implName(record.spec.impl)))
                .cell(statusOf(r))
                .cell(r.liveSeconds, 3)
                .cell(r.deadSeconds, 3)
                .cell(r.totalSeconds, 3)
                .cell(static_cast<u64>(r.reboots));
        }
    }
    table.print(std::cout);
    return 0;
}
