/**
 * @file
 * Reproduces Fig. 9c: the MNIST network across all four power systems
 * (continuous, 50 mF, 1 mF, 100 uF). SONIC & TAILS complete everywhere
 * with consistent performance; the baseline and large tilings fail as
 * buffers shrink.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9c — MNIST across power systems")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.nets({"MNIST"}).allImpls().allPower();
    const auto records = engine.run(plan);

    Table table({"power", "impl", "status", "live (s)", "dead (s)",
                 "total (s)", "reboots"});
    for (auto power : app::kAllPower) {
        for (auto impl : kernels::kAllImpls) {
            const auto &r = resultFor(records, "MNIST",
                                      impl, power);
            table.row()
                .cell(std::string(app::powerName(power)))
                .cell(std::string(kernels::implName(impl)))
                .cell(statusOf(r))
                .cell(r.liveSeconds, 3)
                .cell(r.deadSeconds, 3)
                .cell(r.totalSeconds, 3)
                .cell(static_cast<u64>(r.reboots));
        }
    }
    table.print(std::cout);
    return 0;
}
