/**
 * @file
 * Reproduces Fig. 9a: inference time on continuous power for the three
 * networks across Base, Tile-8/32/128, SONIC and TAILS, stacked by
 * layer (convolutions dominate). Also prints each implementation's
 * slowdown relative to Base — the paper's headline continuous-power
 * ratios (Tile-8 gmean ~13.4x, SONIC ~1.45x, TAILS ~0.83x).
 */

#include <cmath>

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9a — inference time, continuous "
                             "power").c_str());

    Table table({"net", "impl", "conv1 (s)", "conv2 (s)", "fc (s)",
                 "other (s)", "total live (s)", "vs Base"});

    for (auto net : dnn::kAllNets) {
        f64 base_live = 0.0;
        for (auto impl : kernels::kAllImpls) {
            app::RunSpec spec;
            spec.net = net;
            spec.impl = impl;
            spec.power = app::PowerKind::Continuous;
            const auto r = app::runExperiment(spec);
            if (impl == kernels::Impl::Base)
                base_live = r.liveSeconds;
            table.row()
                .cell(std::string(dnn::netName(net)))
                .cell(std::string(kernels::implName(impl)))
                .cell(layerSeconds(r, "conv1"), 4)
                .cell(layerSeconds(r, "conv2"), 4)
                .cell(layerSeconds(r, "fc"), 4)
                .cell(layerSeconds(r, "other"), 4)
                .cell(r.liveSeconds, 4)
                .cell(base_live > 0.0 ? r.liveSeconds / base_live : 0.0,
                      2);
        }
    }
    table.print(std::cout);
    return 0;
}
