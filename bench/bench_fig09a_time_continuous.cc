/**
 * @file
 * Reproduces Fig. 9a: inference time on continuous power for the three
 * networks across Base, Tile-8/32/128, SONIC and TAILS, stacked by
 * layer (convolutions dominate). Also prints each implementation's
 * slowdown relative to Base — the paper's headline continuous-power
 * ratios (Tile-8 gmean ~13.4x, SONIC ~1.45x, TAILS ~0.83x).
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9a — inference time, continuous "
                             "power").c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.allNets().allImpls().power({app::PowerKind::Continuous});
    const auto records = engine.run(plan);

    Table table({"net", "impl", "conv1 (s)", "conv2 (s)", "fc (s)",
                 "other (s)", "total live (s)", "vs Base"});

    for (const auto &net : dnn::kPaperNets) {
        const f64 base_live =
            resultFor(records, net, kernels::Impl::Base).liveSeconds;
        for (auto impl : kernels::kAllImpls) {
            const auto &r = resultFor(records, net, impl);
            table.row()
                .cell(net)
                .cell(std::string(kernels::implName(impl)))
                .cell(layerSeconds(r, "conv1"), 4)
                .cell(layerSeconds(r, "conv2"), 4)
                .cell(layerSeconds(r, "fc"), 4)
                .cell(layerSeconds(r, "other"), 4)
                .cell(r.liveSeconds, 4)
                .cell(base_live > 0.0 ? r.liveSeconds / base_live : 0.0,
                      2);
        }
    }
    table.print(std::cout);
    return 0;
}
