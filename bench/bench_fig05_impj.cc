/**
 * @file
 * Reproduces Fig. 5 (a/b/c): every Fig. 4 configuration mapped through
 * the end-to-end application model (Eq. 3) — IMpJ vs energy per
 * inference. Demonstrates the paper's point that the best feasible
 * configuration is not simply the most accurate one.
 */

#include "bench/bench_common.hh"
#include "genesis/genesis.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 5 — IMpJ vs energy per inference")
                          .c_str());

    for (const auto &net : dnn::kPaperNets) {
        genesis::GenesisOptions opts;
        opts.evalSamples = 64;
        const auto result = genesis::runGenesis(net, opts);

        std::printf("\n--- %s ---\n", net.c_str());
        Table table({"Einfer (mJ)", "accuracy", "tp", "tn",
                     "IMpJ (per kJ)", "feasible", "chosen"});
        for (u32 i = 0; i < result.configs.size(); ++i) {
            const auto &c = result.configs[i];
            table.row()
                .cell(c.inferJ * 1e3, 3)
                .cell(c.accuracy, 3)
                .cell(c.truePositive, 3)
                .cell(c.trueNegative, 3)
                .cell(c.impj * 1e3, 2)
                .cell(std::string(c.feasible ? "yes" : "no"))
                .cell(std::string(i == result.chosenIndex ? "<==" : ""));
        }
        table.print(std::cout);

        // The paper's observation: max-accuracy != max-IMpJ.
        u32 most_accurate = 0;
        for (u32 i = 0; i < result.configs.size(); ++i) {
            if (result.configs[i].feasible
                && result.configs[i].accuracy
                    > result.configs[most_accurate].accuracy)
                most_accurate = i;
        }
        std::printf("most-accurate feasible config IMpJ: %.2f/kJ; "
                    "chosen config IMpJ: %.2f/kJ%s\n",
                    result.configs[most_accurate].impj * 1e3,
                    result.chosen().impj * 1e3,
                    most_accurate == result.chosenIndex
                        ? " (same config)"
                        : " (different configs — accuracy alone is "
                          "not the objective)");
    }
    return 0;
}
