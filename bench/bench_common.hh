/**
 * @file
 * Shared helpers for the figure/table benchmark binaries.
 */

#ifndef SONIC_BENCH_COMMON_HH
#define SONIC_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>

#include "app/experiment.hh"
#include "util/table.hh"

namespace sonic::bench
{

/** Stacked per-layer live seconds for a result (Fig. 9 bars). */
inline f64
layerSeconds(const app::ExperimentResult &r, const std::string &layer)
{
    for (const auto &row : r.layers)
        if (row.name == layer)
            return row.kernelSeconds + row.controlSeconds;
    return 0.0;
}

inline std::string
statusOf(const app::ExperimentResult &r)
{
    if (r.completed)
        return "ok";
    return r.nonTerminating ? "DNF" : "fail";
}

/** Geometric mean helper for the Sec. 9.1 summary ratios. */
class GeoMean
{
  public:
    void
    add(f64 x)
    {
        if (x > 0.0) {
            logSum_ += std::log(x);
            ++n_;
        }
    }

    f64
    value() const
    {
        return n_ ? std::exp(logSum_ / static_cast<f64>(n_)) : 0.0;
    }

  private:
    f64 logSum_ = 0.0;
    u64 n_ = 0;
};

} // namespace sonic::bench

#endif // SONIC_BENCH_COMMON_HH
