/**
 * @file
 * Shared helpers for the figure/table benchmark binaries: record
 * lookup over SweepPlan/Engine output plus the small numeric helpers
 * the paper's summary ratios need.
 */

#ifndef SONIC_BENCH_COMMON_HH
#define SONIC_BENCH_COMMON_HH

#include <cmath>
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "app/engine.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace sonic::bench
{

/** Stacked per-layer live seconds for a result (Fig. 9 bars). */
inline f64
layerSeconds(const app::ExperimentResult &r, const std::string &layer)
{
    for (const auto &row : r.layers)
        if (row.name == layer)
            return row.kernelSeconds + row.controlSeconds;
    return 0.0;
}

inline std::string
statusOf(const app::ExperimentResult &r)
{
    if (r.completed)
        return "ok";
    return r.nonTerminating ? "DNF" : "fail";
}

/**
 * Find a sweep record by coordinates; nullptr if the plan did not
 * cover that grid point.
 */
inline const app::SweepRecord *
findRecord(const std::vector<app::SweepRecord> &records,
           const dnn::NetRef &net, kernels::Impl impl,
           app::PowerKind power = app::PowerKind::Continuous,
           app::ProfileVariant profile = app::ProfileVariant::Standard,
           u32 sample = 0)
{
    for (const auto &record : records) {
        if (record.spec.net == net && record.spec.impl == impl
            && record.spec.power == power
            && record.spec.profile == profile
            && record.spec.sampleIndex == sample)
            return &record;
    }
    return nullptr;
}

/** As findRecord, but the grid point must exist. */
inline const app::ExperimentResult &
resultFor(const std::vector<app::SweepRecord> &records,
          const dnn::NetRef &net, kernels::Impl impl,
          app::PowerKind power = app::PowerKind::Continuous,
          app::ProfileVariant profile = app::ProfileVariant::Standard,
          u32 sample = 0)
{
    const auto *record = findRecord(records, net, impl, power,
                                    profile, sample);
    if (record == nullptr)
        fatal("sweep record missing for ", net, "/",
              kernels::implName(impl), "/", app::powerName(power));
    return record->result;
}

/** Geometric mean helper for the Sec. 9.1 summary ratios. */
class GeoMean
{
  public:
    void
    add(f64 x)
    {
        if (x > 0.0) {
            logSum_ += std::log(x);
            ++n_;
        }
    }

    f64
    value() const
    {
        return n_ ? std::exp(logSum_ / static_cast<f64>(n_)) : 0.0;
    }

    /** Number of accepted (strictly positive) observations. */
    u64 count() const { return n_; }

  private:
    f64 logSum_ = 0.0;
    u64 n_ = 0;
};

} // namespace sonic::bench

#endif // SONIC_BENCH_COMMON_HH
