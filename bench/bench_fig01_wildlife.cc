/**
 * @file
 * Reproduces Fig. 1: IMpJ vs inference accuracy for the wildlife-
 * monitoring case study when full images are sent. Series: always-send
 * baseline (Eq. 1), ideal oracle (Eq. 2), naive local inference (Eq. 3
 * with the tiled-Alpaca Einfer) and SONIC & TAILS. Einfer values are
 * *measured* on our prototype (MNIST on Tile-8 and TAILS, 1 mF); the
 * communication constants are derived from the OpenChirp radio energy
 * profile via the pipeline subsystem (one full-image TX attempt).
 * Also prints the Sec. 3.1 offload-vs-local comparison (>=360x).
 *
 * `--emit-json[=PATH]` instead runs a chrono-timed wildlife-day-style
 * fleet (the motivating deployment at reduced scale) and writes the
 * throughput/delivery numbers to PATH (default BENCH_fleet.json) in
 * the same flat-JSON shape as bench_micro_ops.
 */

#include <chrono>
#include <cstring>

#include "app/wildlife.hh"
#include "bench/bench_common.hh"
#include "bench/bench_json.hh"
#include "fleet/fleet.hh"

using namespace sonic;
using namespace sonic::bench;

namespace
{

/** The --emit-json harness (see file header). */
int
emitJson(const std::string &path)
{
    // The wildlife-day scenario at bench scale: every device runs the
    // full sense-infer-transmit pipeline under solar power.
    fleet::FleetPlan plan;
    plan.devices = 96;
    plan.nets = {"MNIST"};
    plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tails,
                  kernels::Impl::Tile8};
    plan.environments = {{"solar", 1e-3},
                         {"trace-solar-cloudy", 1e-3}};
    plan.pipelines = {"wildlife"};
    plan.maxInferencesPerDevice = 2;

    const auto t0 = std::chrono::steady_clock::now();
    const auto summary = fleet::runFleet(plan);
    const auto t1 = std::chrono::steady_clock::now();
    const f64 wall = std::chrono::duration<f64>(t1 - t0).count();

    std::vector<JsonField> fields;
    fields.push_back({"devices", static_cast<f64>(summary.devices)});
    fields.push_back({"wall_seconds", wall});
    fields.push_back({"devices_per_sec",
                      wall > 0.0 ? summary.devices / wall : 0.0});
    fields.push_back(
        {"inferences",
         static_cast<f64>(summary.total.inferences)});
    fields.push_back({"inferences_per_device_day",
                      summary.total.inferencesPerDeviceDay()});
    fields.push_back(
        {"results_delivered",
         static_cast<f64>(summary.total.resultsDelivered)});
    fields.push_back({"delivered_results_per_device_day",
                      summary.total.deliveredPerDeviceDay()});
    fields.push_back({"tx_retries_per_delivered",
                      summary.total.retriesPerDelivered()});
    fields.push_back({"radio_energy_fraction",
                      summary.total.radioEnergyFraction()});
    fields.push_back({"delivery_p50_seconds",
                      summary.deliveryP50Seconds});
    fields.push_back({"delivery_p99_seconds",
                      summary.deliveryP99Seconds});

    if (!writeFlatJson(path, "fleet_wildlife_day", fields))
        return 1;
    return summary.total.resultsDelivered > 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--emit-json") == 0)
            return emitJson("BENCH_fleet.json");
        if (std::strncmp(argv[i], "--emit-json=", 12) == 0)
            return emitJson(argv[i] + 12);
        std::fprintf(stderr, "unknown flag %s "
                             "(try --emit-json[=PATH])\n",
                     argv[i]);
        return 2;
    }

    std::printf("%s", banner("Fig. 1 — wildlife monitoring, sending "
                             "full images").c_str());

    // Measure Einfer on the prototype (MNIST, 1 mF capacitor).
    app::Engine engine;
    app::SweepPlan measure;
    measure.nets({"MNIST"})
        .impls({kernels::Impl::Tile8, kernels::Impl::Tails})
        .power({app::PowerKind::Cap1mF});
    const auto records = engine.run(measure);
    const auto &naive_run = resultFor(records, "MNIST",
                                      kernels::Impl::Tile8,
                                      app::PowerKind::Cap1mF);
    const auto &tails_run = resultFor(records, "MNIST",
                                      kernels::Impl::Tails,
                                      app::PowerKind::Cap1mF);

    auto params = app::WildlifeParams::fromRadio(
        arch::EnergyProfile::openChirpRadio());
    params.naiveInferJ = naive_run.energyJ;
    params.tailsInferJ = tails_run.energyJ;
    std::printf("measured Einfer: naive (Tile-8) = %s, "
                "SONIC&TAILS = %s\n",
                formatEnergy(params.naiveInferJ).c_str(),
                formatEnergy(params.tailsInferJ).c_str());
    std::printf("radio profile: Ecomm(image) = %.2f J, "
                "result shrink = %.1fx (paper 23 J / 98x)\n\n",
                params.commJ, params.resultCommShrink);

    const auto rows = sweepWildlife(params, 11, false);
    Table table({"accuracy", "always-send (IM/kJ)", "ideal (IM/kJ)",
                 "naive (IM/kJ)", "SONIC&TAILS (IM/kJ)"});
    for (const auto &row : rows) {
        table.row()
            .cell(row.accuracy, 2)
            .cell(row.alwaysSend * 1e3, 2)
            .cell(row.ideal * 1e3, 2)
            .cell(row.naive * 1e3, 2)
            .cell(row.sonicTails * 1e3, 2);
    }
    table.print(std::cout);

    const auto &top = rows.back();
    std::printf("\ncallouts at accuracy=1.0: local-inference gain "
                "%.1fx (paper ~20x), SONIC&TAILS vs naive %.2fx "
                "(paper ~1.1x)\n",
                top.sonicTails / top.alwaysSend,
                top.sonicTails / top.naive);

    const auto cmp = app::offloadVsLocal(
        28 * 28, tails_run.energyJ, app::kHarvestWatts);
    std::printf("\nSec. 3.1: offloading one 28x28 image over OpenChirp "
                "~= %.0f s of harvest; local inference ~= %.1f s; "
                "speedup %.0fx (paper >=360x)\n",
                cmp.offloadSeconds, cmp.localSeconds, cmp.speedup);
    return 0;
}
