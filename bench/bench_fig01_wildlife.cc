/**
 * @file
 * Reproduces Fig. 1: IMpJ vs inference accuracy for the wildlife-
 * monitoring case study when full images are sent. Series: always-send
 * baseline (Eq. 1), ideal oracle (Eq. 2), naive local inference (Eq. 3
 * with the tiled-Alpaca Einfer) and SONIC & TAILS. Einfer values are
 * *measured* on our prototype (MNIST on Tile-8 and TAILS, 1 mF).
 * Also prints the Sec. 3.1 offload-vs-local comparison (>=360x).
 */

#include "app/wildlife.hh"
#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 1 — wildlife monitoring, sending "
                             "full images").c_str());

    // Measure Einfer on the prototype (MNIST, 1 mF capacitor).
    app::Engine engine;
    app::SweepPlan measure;
    measure.nets({"MNIST"})
        .impls({kernels::Impl::Tile8, kernels::Impl::Tails})
        .power({app::PowerKind::Cap1mF});
    const auto records = engine.run(measure);
    const auto &naive_run = resultFor(records, "MNIST",
                                      kernels::Impl::Tile8,
                                      app::PowerKind::Cap1mF);
    const auto &tails_run = resultFor(records, "MNIST",
                                      kernels::Impl::Tails,
                                      app::PowerKind::Cap1mF);

    app::WildlifeParams params;
    params.naiveInferJ = naive_run.energyJ;
    params.tailsInferJ = tails_run.energyJ;
    std::printf("measured Einfer: naive (Tile-8) = %s, "
                "SONIC&TAILS = %s\n\n",
                formatEnergy(params.naiveInferJ).c_str(),
                formatEnergy(params.tailsInferJ).c_str());

    const auto rows = sweepWildlife(params, 11, false);
    Table table({"accuracy", "always-send (IM/kJ)", "ideal (IM/kJ)",
                 "naive (IM/kJ)", "SONIC&TAILS (IM/kJ)"});
    for (const auto &row : rows) {
        table.row()
            .cell(row.accuracy, 2)
            .cell(row.alwaysSend * 1e3, 2)
            .cell(row.ideal * 1e3, 2)
            .cell(row.naive * 1e3, 2)
            .cell(row.sonicTails * 1e3, 2);
    }
    table.print(std::cout);

    const auto &top = rows.back();
    std::printf("\ncallouts at accuracy=1.0: local-inference gain "
                "%.1fx (paper ~20x), SONIC&TAILS vs naive %.2fx "
                "(paper ~1.1x)\n",
                top.sonicTails / top.alwaysSend,
                top.sonicTails / top.naive);

    const auto cmp = app::offloadVsLocal(
        28 * 28, tails_run.energyJ, app::kHarvestWatts);
    std::printf("\nSec. 3.1: offloading one 28x28 image over OpenChirp "
                "~= %.0f s of harvest; local inference ~= %.1f s; "
                "speedup %.0fx (paper >=360x)\n",
                cmp.offloadSeconds, cmp.localSeconds, cmp.speedup);
    return 0;
}
