/**
 * @file
 * Reproduces Fig. 9b: inference time on intermittent power with a
 * 100 uF capacitor. Base never completes; Tile-128 never completes;
 * Tile-32 fails on MNIST only; Tile-8, SONIC and TAILS always
 * complete, with SONIC & TAILS far faster.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9b — inference time, intermittent "
                             "(100uF)").c_str());

    Table table({"net", "impl", "status", "live (s)", "dead (s)",
                 "total (s)", "reboots"});
    for (auto net : dnn::kAllNets) {
        for (auto impl : kernels::kAllImpls) {
            app::RunSpec spec;
            spec.net = net;
            spec.impl = impl;
            spec.power = app::PowerKind::Cap100uF;
            const auto r = app::runExperiment(spec);
            table.row()
                .cell(std::string(dnn::netName(net)))
                .cell(std::string(kernels::implName(impl)))
                .cell(statusOf(r))
                .cell(r.liveSeconds, 3)
                .cell(r.deadSeconds, 3)
                .cell(r.totalSeconds, 3)
                .cell(static_cast<u64>(r.reboots));
        }
    }
    table.print(std::cout);
    return 0;
}
