/**
 * @file
 * Reproduces Fig. 9b: inference time on intermittent power with a
 * 100 uF capacitor. Base never completes; Tile-128 never completes;
 * Tile-32 fails on MNIST only; Tile-8, SONIC and TAILS always
 * complete, with SONIC & TAILS far faster.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 9b — inference time, intermittent "
                             "(100uF)").c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.allNets().allImpls().power({app::PowerKind::Cap100uF});
    const auto records = engine.run(plan);

    Table table({"net", "impl", "status", "live (s)", "dead (s)",
                 "total (s)", "reboots"});
    for (const auto &record : records) {
        const auto &r = record.result;
        table.row()
            .cell(record.spec.net)
            .cell(std::string(kernels::implName(record.spec.impl)))
            .cell(statusOf(r))
            .cell(r.liveSeconds, 3)
            .cell(r.deadSeconds, 3)
            .cell(r.totalSeconds, 3)
            .cell(static_cast<u64>(r.reboots));
    }
    table.print(std::cout);
    return 0;
}
