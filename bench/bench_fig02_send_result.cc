/**
 * @file
 * Reproduces Fig. 2: IMpJ vs accuracy when only the inference *result*
 * is communicated. The shrink factor is not hand-entered: it is the
 * image/result TX-attempt energy ratio under the OpenChirp radio
 * profile (~97x; the paper rounds to 98x).
 * Callouts: SONIC & TAILS ~480x over always-send, ~4.6x over naive,
 * within ~2.2x of ideal; ideal/always-send ~110x.
 */

#include "app/wildlife.hh"
#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 2 — wildlife monitoring, sending "
                             "results only").c_str());

    app::Engine engine;
    app::SweepPlan measure;
    measure.nets({"MNIST"})
        .impls({kernels::Impl::Tile8, kernels::Impl::Tails})
        .power({app::PowerKind::Cap1mF});
    const auto records = engine.run(measure);

    auto params = app::WildlifeParams::fromRadio(
        arch::EnergyProfile::openChirpRadio());
    params.naiveInferJ = resultFor(records, "MNIST",
                                   kernels::Impl::Tile8,
                                   app::PowerKind::Cap1mF).energyJ;
    params.tailsInferJ = resultFor(records, "MNIST",
                                   kernels::Impl::Tails,
                                   app::PowerKind::Cap1mF).energyJ;

    std::printf("radio profile: result shrink = %.1fx (paper 98x)\n\n",
                params.resultCommShrink);

    const auto rows = sweepWildlife(params, 11, true);
    Table table({"accuracy", "always-send (IM/kJ)", "ideal (IM/kJ)",
                 "naive (IM/kJ)", "SONIC&TAILS (IM/kJ)"});
    for (const auto &row : rows) {
        table.row()
            .cell(row.accuracy, 2)
            .cell(row.alwaysSend * 1e3, 2)
            .cell(row.ideal * 1e3, 2)
            .cell(row.naive * 1e3, 2)
            .cell(row.sonicTails * 1e3, 2);
    }
    table.print(std::cout);

    const auto &top = rows.back();
    std::printf("\ncallouts at accuracy=1.0:\n");
    std::printf("  SONIC&TAILS vs always-send: %.0fx (paper ~480x)\n",
                top.sonicTails / top.alwaysSend);
    std::printf("  SONIC&TAILS vs naive:       %.2fx (paper ~4.6x)\n",
                top.sonicTails / top.naive);
    std::printf("  ideal vs SONIC&TAILS:       %.2fx (paper ~2.2x)\n",
                top.ideal / top.sonicTails);
    std::printf("  ideal vs always-send:       %.0fx (paper ~110x)\n",
                top.ideal / top.alwaysSend);
    return 0;
}
