/**
 * @file
 * Reproduces Fig. 4 (a/b/c): GENESIS' accuracy-vs-MACs trade-off for
 * the three workloads. Prints every swept configuration (feasible or
 * not), the Pareto frontiers for separate+prune / separate-only /
 * prune-only, the infeasible uncompressed original, and the chosen
 * configuration.
 */

#include "bench/bench_common.hh"
#include "genesis/genesis.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 4 — GENESIS accuracy vs MAC ops")
                          .c_str());

    for (const auto &net : dnn::kPaperNets) {
        genesis::GenesisOptions opts;
        opts.evalSamples = 64;
        const auto result = genesis::runGenesis(net, opts);

        std::printf("\n--- %s ---\n", net.c_str());
        std::printf("original (uncompressed): %llu MACs, %llu params, "
                    "%.1f KB FRAM -> %s\n",
                    static_cast<unsigned long long>(
                        result.original.macs),
                    static_cast<unsigned long long>(
                        result.original.params),
                    static_cast<f64>(result.original.framBytes)
                        / 1024.0,
                    result.original.feasible ? "feasible"
                                             : "INFEASIBLE");

        Table table({"technique", "fcKeep", "convKeep", "rank", "MACs",
                     "KB", "feasible", "accuracy", "IMpJ"});
        for (const auto &c : result.configs) {
            table.row()
                .cell(std::string(genesis::techniqueName(c.technique)))
                .cell(std::min(c.knobs.fcKeep, 99.0), 2)
                .cell(std::min(c.knobs.convKeep, 99.0), 2)
                .cell(c.knobs.fcRankScale, 2)
                .cell(static_cast<u64>(c.macs))
                .cell(static_cast<f64>(c.framBytes) / 1024.0, 1)
                .cell(std::string(c.feasible ? "yes" : "no"))
                .cell(c.accuracy, 3)
                .cell(c.impj * 1e3, 2);
        }
        table.print(std::cout);

        for (auto technique :
             {genesis::Technique::SeparateAndPrune,
              genesis::Technique::SeparateOnly,
              genesis::Technique::PruneOnly}) {
            const auto front =
                genesis::paretoFrontier(result.configs, &technique);
            std::printf("pareto[%s]: ",
                        genesis::techniqueName(technique));
            for (u32 i : front) {
                std::printf("(%llu MACs, %.3f) ",
                            static_cast<unsigned long long>(
                                result.configs[i].macs),
                            result.configs[i].accuracy);
            }
            std::printf("\n");
        }

        const auto &chosen = result.chosen();
        std::printf("chosen: %s fcKeep=%.2f -> %llu MACs, accuracy "
                    "%.3f (paper: %.2f)\n",
                    genesis::techniqueName(chosen.technique),
                    chosen.knobs.fcKeep,
                    static_cast<unsigned long long>(chosen.macs),
                    chosen.accuracy,
                    dnn::ModelZoo::instance().get(net).meta().paperAccuracy);
    }
    return 0;
}
