/**
 * @file
 * Reproduces Fig. 11: inference energy with a 1 mF capacitor for all
 * implementations. Energy is in direct proportion to the dead time of
 * Fig. 9, so SONIC & TAILS improve energy by the same factors as time.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 11 — inference energy (1mF)")
                          .c_str());

    Table table({"net", "impl", "status", "energy (mJ)", "reboots"});
    for (auto net : dnn::kAllNets) {
        for (auto impl : kernels::kAllImpls) {
            app::RunSpec spec;
            spec.net = net;
            spec.impl = impl;
            spec.power = app::PowerKind::Cap1mF;
            const auto r = app::runExperiment(spec);
            table.row()
                .cell(std::string(dnn::netName(net)))
                .cell(std::string(kernels::implName(impl)))
                .cell(statusOf(r))
                .cell(r.energyJ * 1e3, 3)
                .cell(static_cast<u64>(r.reboots));
        }
    }
    table.print(std::cout);
    return 0;
}
