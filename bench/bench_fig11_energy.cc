/**
 * @file
 * Reproduces Fig. 11: inference energy with a 1 mF capacitor for all
 * implementations. Energy is in direct proportion to the dead time of
 * Fig. 9, so SONIC & TAILS improve energy by the same factors as time.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 11 — inference energy (1mF)")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.allNets().allImpls().power({app::PowerKind::Cap1mF});
    const auto records = engine.run(plan);

    Table table({"net", "impl", "status", "energy (mJ)", "reboots"});
    for (const auto &record : records) {
        const auto &r = record.result;
        table.row()
            .cell(record.spec.net)
            .cell(std::string(kernels::implName(record.spec.impl)))
            .cell(statusOf(r))
            .cell(r.energyJ * 1e3, 3)
            .cell(static_cast<u64>(r.reboots));
    }
    table.print(std::cout);
    return 0;
}
