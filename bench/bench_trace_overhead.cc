/**
 * @file
 * Tracing-overhead gate: the probe is a nullable pointer consulted at
 * cold/moderate-rate call sites only, and is architecturally absent
 * from the Device::consume fast path — so tracing OFF must price
 * identically to the pre-trace simulator, and even tracing ON must
 * leave the consume dispatch untouched. This bench measures exactly
 * those claims with the same chrono harness as bench_micro_ops:
 *
 *  - consume dispatch with no probe vs a no-op probe attached (the
 *    pointer is never read on this path, so the ratio is pure noise);
 *  - layer/part attribution switches with no probe vs a no-op probe
 *    (one predictable null-check branch when off);
 *  - a full tiny-network SONIC inference untraced vs traced with a
 *    real trace::TraceRecorder (bounded event volume per inference).
 *
 * `--emit-json[=PATH]` writes BENCH_trace_overhead.json with the raw
 * rates plus the off/on ratios CI gates on (tracing-off ratios must
 * stay within noise of 1.0).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "dnn/device_net.hh"
#include "kernels/runner.hh"
#include "tests/test_helpers.hh"
#include "trace/trace.hh"

using namespace sonic;

namespace
{

arch::Device
continuousDevice()
{
    arch::DeviceConfig config;
    return arch::Device(arch::EnergyProfile::msp430fr5994(),
                        std::make_unique<arch::ContinuousPower>(),
                        config);
}

/** A probe that overrides nothing: pure virtual-dispatch cost. */
class NullProbe final : public arch::TraceProbe
{
};

/** Chrono-timed harness (same shape as bench_micro_ops). */
template <typename F>
f64
measureOpsPerSec(u64 ops_per_iter, F &&body, f64 min_seconds = 0.2)
{
    using clock = std::chrono::steady_clock;
    u64 iters = 1024;
    for (;;) {
        const auto t0 = clock::now();
        body(iters);
        const f64 s =
            std::chrono::duration<f64>(clock::now() - t0).count();
        if (s >= min_seconds) {
            return static_cast<f64>(iters)
                * static_cast<f64>(ops_per_iter) / s;
        }
        iters *= s > 0.01 ? 4 : 16;
    }
}

struct JsonField
{
    std::string key;
    f64 value;
};

int
emitJson(const std::string &path)
{
    std::vector<JsonField> fields;

    // --- Device::consume dispatch: the probe-free fast path -----------
    // The probe pointer is never consulted by consume, so attaching one
    // must not change the dispatch rate at all.
    {
        auto dev = continuousDevice();
        fields.push_back(
            {"consume_single_probe_off_ops_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul);
             })});
    }
    {
        auto dev = continuousDevice();
        NullProbe probe;
        dev.setProbe(&probe);
        fields.push_back(
            {"consume_single_probe_attached_ops_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul);
             })});
    }

    // --- Attribution switches: setLayer/setPart ------------------------
    // Tracing off is one predictable null-check branch; a no-op probe
    // adds a virtual call per *value change* (the alternating pattern
    // below is the worst case — real kernels switch at region scope).
    {
        auto dev = continuousDevice();
        const u16 a = dev.registerLayer("a");
        const u16 b = dev.registerLayer("b");
        fields.push_back(
            {"layer_switch_probe_off_ops_per_sec",
             measureOpsPerSec(2, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i) {
                     dev.setLayer(a);
                     dev.setLayer(b);
                 }
             })});
    }
    {
        auto dev = continuousDevice();
        const u16 a = dev.registerLayer("a");
        const u16 b = dev.registerLayer("b");
        NullProbe probe;
        dev.setProbe(&probe);
        fields.push_back(
            {"layer_switch_probe_attached_ops_per_sec",
             measureOpsPerSec(2, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i) {
                     dev.setLayer(a);
                     dev.setLayer(b);
                 }
             })});
    }
    {
        auto dev = continuousDevice();
        fields.push_back(
            {"part_switch_probe_off_ops_per_sec",
             measureOpsPerSec(2, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i) {
                     dev.setPart(arch::Part::Kernel);
                     dev.setPart(arch::Part::Control);
                 }
             })});
    }

    // --- End-to-end: tiny-network SONIC inference ----------------------
    // Wall-clock inferences/sec untraced vs traced with the real
    // recorder (fresh per iteration, as the fleet attaches one per
    // sampled device lifetime).
    {
        const auto spec = testutil::tinyNet();
        const auto input = testutil::tinyInput();
        fields.push_back(
            {"tiny_inference_probe_off_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     auto dev = continuousDevice();
                     dnn::DeviceNetwork net(dev, spec);
                     net.loadInput(input);
                     (void)kernels::runInference(
                         net, kernels::Impl::Sonic);
                 }
             })});
        fields.push_back(
            {"tiny_inference_recorder_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     auto dev = continuousDevice();
                     trace::TraceRecorder recorder(0);
                     dev.setProbe(&recorder);
                     dnn::DeviceNetwork net(dev, spec);
                     net.loadInput(input);
                     (void)kernels::runInference(
                         net, kernels::Impl::Sonic);
                 }
             })});
    }

    // Derived ratios: the CI gate holds the *_probe_off paths within
    // noise of the probe-attached/no-probe baselines.
    auto find = [&](const char *key) -> f64 {
        for (const auto &f : fields)
            if (f.key == key)
                return f.value;
        return 0.0;
    };
    fields.push_back(
        {"ratio_consume_attached_vs_off",
         find("consume_single_probe_attached_ops_per_sec")
             / find("consume_single_probe_off_ops_per_sec")});
    fields.push_back(
        {"ratio_layer_switch_attached_vs_off",
         find("layer_switch_probe_attached_ops_per_sec")
             / find("layer_switch_probe_off_ops_per_sec")});
    fields.push_back(
        {"ratio_tiny_inference_recorder_vs_off",
         find("tiny_inference_recorder_per_sec")
             / find("tiny_inference_probe_off_per_sec")});

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot write %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n");
    for (size_t i = 0; i < fields.size(); ++i)
        std::fprintf(out, "  \"%s\": %.6g%s\n", fields[i].key.c_str(),
                     fields[i].value,
                     i + 1 < fields.size() ? "," : "");
    std::fprintf(out, "}\n");
    std::fclose(out);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string path = "BENCH_trace_overhead.json";
    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--emit-json") == 0) {
            // default path
        } else if (std::strncmp(arg, "--emit-json=", 12) == 0) {
            path = arg + 12;
        } else {
            std::fprintf(stderr,
                         "usage: bench_trace_overhead "
                         "[--emit-json[=PATH]]\n");
            return 2;
        }
    }
    return emitJson(path);
}
