/**
 * @file
 * The Sec. 9.1 headline ratios, computed as in the paper (geometric
 * means across the three networks on continuous power, plus the
 * LEA/DMA ablation):
 *
 *  - Tile-8 is gmean 13.4x slower than Base (up to 19x);
 *  - SONIC is 1.45x slower than Base (25%-75% overhead);
 *  - TAILS is 1.2x *faster* than Base;
 *  - SONIC improves on tiled Alpaca by 6.9x, TAILS by 12.2x;
 *  - vs Tile-128: SONIC 5.2x, TAILS 9.2x;
 *  - LEA contributes ~1.4x, DMA ~14%.
 */

#include <algorithm>
#include <map>

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Sec. 9.1 — headline ratios").c_str());

    app::Engine engine;

    // The continuous-power grid plus the TAILS hardware ablation, as
    // one declarative sweep per axis combination.
    app::SweepPlan grid;
    grid.allNets().allImpls().power({app::PowerKind::Continuous});
    const auto records = engine.run(grid);

    app::SweepPlan ablation;
    ablation.allNets()
        .impls({kernels::Impl::Tails})
        .power({app::PowerKind::Continuous})
        .profiles({app::ProfileVariant::NoLea,
                   app::ProfileVariant::NoDma});
    const auto ablation_records = engine.run(ablation);

    std::map<kernels::Impl, GeoMean> vs_base;
    f64 worst_tile8 = 0.0;

    for (const auto &net : dnn::kPaperNets) {
        const f64 base_live =
            resultFor(records, net, kernels::Impl::Base).liveSeconds;
        for (auto impl : kernels::kAllImpls) {
            const f64 live = resultFor(records, net, impl).liveSeconds;
            const f64 ratio = live / base_live;
            vs_base[impl].add(ratio);
            if (impl == kernels::Impl::Tile8)
                worst_tile8 = std::max(worst_tile8, ratio);
        }
    }

    Table table({"impl", "gmean vs Base", "paper"});
    table.row().cell(std::string("Tile-8"))
        .cell(vs_base[kernels::Impl::Tile8].value(), 2)
        .cell(std::string("13.4x"));
    table.row().cell(std::string("Tile-32"))
        .cell(vs_base[kernels::Impl::Tile32].value(), 2)
        .cell(std::string("~10x avg"));
    table.row().cell(std::string("Tile-128"))
        .cell(vs_base[kernels::Impl::Tile128].value(), 2)
        .cell(std::string("~7.5x"));
    table.row().cell(std::string("SONIC"))
        .cell(vs_base[kernels::Impl::Sonic].value(), 2)
        .cell(std::string("1.45x"));
    table.row().cell(std::string("TAILS"))
        .cell(vs_base[kernels::Impl::Tails].value(), 2)
        .cell(std::string("0.83x"));
    table.print(std::cout);

    const f64 sonic_vs_tile8 = vs_base[kernels::Impl::Tile8].value()
        / vs_base[kernels::Impl::Sonic].value();
    const f64 tails_vs_tile8 = vs_base[kernels::Impl::Tile8].value()
        / vs_base[kernels::Impl::Tails].value();
    const f64 sonic_vs_tile128 =
        vs_base[kernels::Impl::Tile128].value()
        / vs_base[kernels::Impl::Sonic].value();
    const f64 tails_vs_tile128 =
        vs_base[kernels::Impl::Tile128].value()
        / vs_base[kernels::Impl::Tails].value();

    std::printf("\nworst-case tiling slowdown: %.1fx (paper: up to "
                "19x)\n", worst_tile8);
    std::printf("SONIC vs Tile-8:   %.1fx (paper 6.9x)\n",
                sonic_vs_tile8);
    std::printf("TAILS vs Tile-8:   %.1fx (paper 12.2x)\n",
                tails_vs_tile8);
    std::printf("SONIC vs Tile-128: %.1fx (paper 5.2x)\n",
                sonic_vs_tile128);
    std::printf("TAILS vs Tile-128: %.1fx (paper 9.2x)\n",
                tails_vs_tile128);

    // LEA / DMA ablation (software-emulated hardware).
    GeoMean lea_gain, dma_gain;
    for (const auto &net : dnn::kPaperNets) {
        const f64 no_lea =
            resultFor(ablation_records, net, kernels::Impl::Tails,
                      app::PowerKind::Continuous,
                      app::ProfileVariant::NoLea).liveSeconds;
        const f64 no_dma =
            resultFor(ablation_records, net, kernels::Impl::Tails,
                      app::PowerKind::Continuous,
                      app::ProfileVariant::NoDma).liveSeconds;
        const f64 with_hw =
            resultFor(records, net, kernels::Impl::Tails).liveSeconds;
        lea_gain.add(no_lea / with_hw);
        dma_gain.add(no_dma / with_hw);
    }
    std::printf("\nLEA speedup over software emulation: %.2fx "
                "(paper 1.4x)\n", lea_gain.value());
    std::printf("DMA speedup over software copies:    %.2fx "
                "(paper ~1.14x)\n", dma_gain.value());
    return 0;
}
