/**
 * @file
 * Reproduces Fig. 10: the kernel-vs-control split of live time per
 * layer for Base, Tile-32, SONIC and TAILS on continuous power. SONIC's
 * overhead over Base is almost entirely control (index maintenance and
 * transitions); Tile-32 inflates both kernel (dynamic redo-log
 * buffering) and control (commits + transitions); most of TAILS'
 * control time is the software fixed-point shifts LEA cannot do.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 10 — kernel vs control time")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.allNets()
        .impls({kernels::Impl::Base, kernels::Impl::Tile32,
                kernels::Impl::Sonic, kernels::Impl::Tails})
        .power({app::PowerKind::Continuous});
    const auto records = engine.run(plan);

    Table table({"net", "impl", "layer", "kernel (s)", "control (s)",
                 "control share"});
    for (const auto &record : records) {
        for (const auto &layer : record.result.layers) {
            const f64 total =
                layer.kernelSeconds + layer.controlSeconds;
            if (total <= 0.0)
                continue;
            table.row()
                .cell(record.spec.net)
                .cell(std::string(
                    kernels::implName(record.spec.impl)))
                .cell(layer.name)
                .cell(layer.kernelSeconds, 4)
                .cell(layer.controlSeconds, 4)
                .cell(layer.controlSeconds / total, 2);
        }
    }
    table.print(std::cout);
    return 0;
}
