/**
 * @file
 * Fleet-scale throughput bench: the mixed-1k acceptance scenario swept
 * across fleet sizes, timing runFleet end-to-end. This is the harness
 * behind the "million devices in minutes" claim — round-trace
 * memoization collapses the fleet to its distinct round coordinates,
 * so devices/sec climbs with fleet size instead of staying flat.
 *
 * `--emit-json[=PATH]` writes BENCH_fleet_scale.json: wall seconds,
 * devices/sec and cache hit rate per fleet size (flat JSON, fields
 * suffixed with the size). `--sizes=A,B,...` overrides the default
 * 1k/10k/100k/1M sweep. Without --emit-json the sweep still runs and
 * prints, it just writes nothing.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>

#include "bench/bench_json.hh"
#include "fleet/fleet.hh"

using namespace sonic;
using namespace sonic::bench;

namespace
{

const fleet::FleetPlan &
mixedPlan()
{
    for (const auto &scenario : fleet::namedScenarios()) {
        if (scenario.name == "mixed-1k")
            return scenario.plan;
    }
    std::fprintf(stderr, "mixed-1k scenario missing\n");
    std::exit(2);
}

int
run(const std::vector<u64> &sizes, const std::string &json_path)
{
    std::vector<JsonField> fields;
    bool any_hits_at_scale = false;
    for (const u64 devices : sizes) {
        fleet::FleetPlan plan = mixedPlan();
        plan.devices = devices;
        fleet::FleetOptions options;
        options.threads = 0;     // all cores
        options.verifyCache = false; // measure the production path

        const auto t0 = std::chrono::steady_clock::now();
        const auto summary = fleet::runFleet(plan, options);
        const auto t1 = std::chrono::steady_clock::now();
        const f64 wall = std::chrono::duration<f64>(t1 - t0).count();
        const f64 rate =
            wall > 0.0 ? static_cast<f64>(devices) / wall : 0.0;
        const f64 hit_rate = summary.cache.hitRate();
        if (devices >= 100000 && summary.cache.roundHits > 0)
            any_hits_at_scale = true;

        const std::string tag = std::to_string(devices);
        fields.push_back({"wall_seconds_" + tag, wall});
        fields.push_back({"devices_per_sec_" + tag, rate});
        fields.push_back({"cache_hit_rate_" + tag, hit_rate});
        std::printf("%8llu devices: %8.2f s  %10.0f dev/s  "
                    "hit rate %.4f  (%llu hits / %llu lookups, "
                    "%llu uncached rounds)\n",
                    static_cast<unsigned long long>(devices), wall,
                    rate, hit_rate,
                    static_cast<unsigned long long>(
                        summary.cache.roundHits
                        + summary.cache.lifetimeHits),
                    static_cast<unsigned long long>(
                        summary.cache.lookups()),
                    static_cast<unsigned long long>(
                        summary.cache.uncachedRounds));
        std::fflush(stdout);
    }

    if (!json_path.empty()
        && !writeFlatJson(json_path, "fleet_scale", fields))
        return 1;
    // A fleet of 100k+ mixed-1k devices has far fewer distinct round
    // coordinates than rounds; zero hits there means memoization broke.
    for (const u64 devices : sizes)
        if (devices >= 100000 && !any_hits_at_scale)
            return 1;
    return 0;
}

std::vector<u64>
parseSizes(const char *arg)
{
    std::vector<u64> sizes;
    const char *p = arg;
    while (*p != '\0') {
        char *end = nullptr;
        const unsigned long long v = std::strtoull(p, &end, 10);
        if (end == p || v == 0) {
            std::fprintf(stderr, "bad --sizes value '%s'\n", arg);
            std::exit(2);
        }
        sizes.push_back(v);
        p = *end == ',' ? end + 1 : end;
    }
    if (sizes.empty()) {
        std::fprintf(stderr, "empty --sizes\n");
        std::exit(2);
    }
    return sizes;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<u64> sizes = {1000, 10000, 100000, 1000000};
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--emit-json") == 0)
            json_path = "BENCH_fleet_scale.json";
        else if (std::strncmp(argv[i], "--emit-json=", 12) == 0)
            json_path = argv[i] + 12;
        else if (std::strncmp(argv[i], "--sizes=", 8) == 0)
            sizes = parseSizes(argv[i] + 8);
        else {
            std::fprintf(stderr,
                         "unknown flag %s (try --emit-json[=PATH] "
                         "--sizes=1000,10000,...)\n",
                         argv[i]);
            return 2;
        }
    }
    return run(sizes, json_path);
}
