/**
 * @file
 * Shared flat-JSON emitter for the CI benchmark harnesses. Every
 * BENCH_*.json artifact is one object: a "bench" name plus numeric
 * fields, written with %.6g so the files diff cleanly run-to-run, and
 * echoed to stdout for the CI log.
 */

#ifndef SONIC_BENCH_BENCH_JSON_HH
#define SONIC_BENCH_BENCH_JSON_HH

#include <cstdio>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sonic::bench
{

struct JsonField
{
    std::string key;
    f64 value;
};

/**
 * Write `{"bench": <name>, <fields...>}` to `path` and echo the fields
 * to stdout. Returns false (with a message on stderr) if the file
 * cannot be opened.
 */
inline bool
writeFlatJson(const std::string &path, const std::string &bench_name,
              const std::vector<JsonField> &fields)
{
    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return false;
    }
    std::fprintf(out, "{\n  \"bench\": \"%s\",\n", bench_name.c_str());
    for (u64 i = 0; i < fields.size(); ++i) {
        std::fprintf(out, "  \"%s\": %.6g%s\n", fields[i].key.c_str(),
                     fields[i].value,
                     i + 1 < fields.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);

    for (const auto &f : fields)
        std::printf("%-36s %.4g\n", f.key.c_str(), f.value);
    std::printf("wrote %s\n", path.c_str());
    return true;
}

} // namespace sonic::bench

#endif // SONIC_BENCH_BENCH_JSON_HH
