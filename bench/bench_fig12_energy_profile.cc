/**
 * @file
 * Reproduces Fig. 12: SONIC's energy broken down by operation class
 * and layer. The paper's observations to check: control instructions
 * ~26% of energy; FRAM writes to loop indices alone ~14%; multiplies,
 * loads and stores are the other large shares.
 */

#include "bench/bench_common.hh"

using namespace sonic;
using namespace sonic::bench;

int
main()
{
    std::printf("%s", banner("Fig. 12 — SONIC energy by operation")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.allNets()
        .impls({kernels::Impl::Sonic})
        .power({app::PowerKind::Continuous});
    const auto records = engine.run(plan);

    for (const auto &record : records) {
        const auto &r = record.result;
        std::printf("\n%s (total %s):\n",
                    record.spec.net.c_str(),
                    formatEnergy(r.energyJ).c_str());
        Table table({"op", "energy (uJ)", "share", ""});
        for (const auto &[op, joules] : r.energyByOp) {
            const f64 share = joules / r.energyJ;
            if (share < 0.005)
                continue;
            table.row()
                .cell(op)
                .cell(joules * 1e6, 1)
                .cell(share, 3)
                .cell(asciiBar(share, 30));
        }
        table.print(std::cout);
        const f64 store_share =
            (r.energyByOp.count("fram-store")
                 ? r.energyByOp.at("fram-store")
                 : 0.0)
            / r.energyJ;
        std::printf("FRAM-store share (paper: ~14%% from loop "
                    "indices): %.1f%%\n", store_share * 100.0);
    }
    return 0;
}
