/**
 * @file
 * Host-performance microbenchmarks of the simulator's hot paths: the
 * charged-operation dispatch (single-op and span-batched, with and
 * without the energy lease), memory-handle accesses (single and bulk
 * span), fixed-point arithmetic, the redo-log, and a full tiny-network
 * inference per implementation. These measure *host* performance of
 * the simulator (how fast experiments run), complementing the
 * simulated-device measurements of the figure benches.
 *
 * Two harnesses share this binary:
 *  - `--emit-json[=PATH]` runs a self-contained chrono-timed harness
 *    and writes BENCH_micro_ops.json with simulated ops/sec for the
 *    consume dispatch, NvArray access, and a sparse-FC inner loop
 *    (plus the per-op-draw reference numbers, so the lease speedup is
 *    recorded in the artifact). CI runs this in Release and uploads
 *    the JSON to track the performance trajectory.
 *  - without arguments, the google-benchmark suite runs (when the
 *    library is available at configure time).
 */

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "fixed/fixed.hh"
#include "kernels/kernel_util.hh"
#include "kernels/runner.hh"
#include "task/runtime.hh"
#include "tests/test_helpers.hh"

#ifdef SONIC_HAVE_GBENCH
#include <benchmark/benchmark.h>
#endif

using namespace sonic;

namespace
{

arch::Device
continuousDevice(bool per_op_draw = false)
{
    arch::DeviceConfig config;
    config.perOpPowerDraw = per_op_draw;
    return arch::Device(arch::EnergyProfile::msp430fr5994(),
                        std::make_unique<arch::ContinuousPower>(),
                        config);
}

/** Total simulated op instances charged so far on a device. */
u64
simulatedOps(const arch::Device &dev)
{
    u64 ops = 0;
    for (u32 o = 0; o < arch::kNumOps; ++o)
        ops += dev.stats().opCount(static_cast<arch::Op>(o));
    return ops;
}

/** Chrono-timed harness: runs body(iters) with growing iteration
 * counts until it takes at least min_seconds, then reports simulated
 * ops per second (the body reports how many simulated ops one
 * iteration charges). */
template <typename F>
f64
measureOpsPerSec(u64 ops_per_iter, F &&body, f64 min_seconds = 0.2)
{
    using clock = std::chrono::steady_clock;
    u64 iters = 1024;
    for (;;) {
        const auto t0 = clock::now();
        body(iters);
        const f64 s =
            std::chrono::duration<f64>(clock::now() - t0).count();
        if (s >= min_seconds) {
            return static_cast<f64>(iters)
                * static_cast<f64>(ops_per_iter) / s;
        }
        iters *= s > 0.01 ? 4 : 16;
    }
}

struct JsonField
{
    std::string key;
    f64 value;
};

/** The --emit-json harness (see file header). */
int
emitJson(const std::string &path)
{
    std::vector<JsonField> fields;

    // --- Device::consume dispatch -------------------------------------
    // Single-op calls, lease fast path vs per-op virtual draw.
    {
        auto dev = continuousDevice();
        fields.push_back(
            {"consume_single_ops_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul);
             })});
    }
    {
        auto dev = continuousDevice(/*per_op_draw=*/true);
        fields.push_back(
            {"consume_single_per_op_draw_ops_per_sec",
             measureOpsPerSec(1, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul);
             })});
    }
    // Span-batched charging (count=32), the shape the kernels dispatch
    // after the bulk-accessor migration.
    {
        auto dev = continuousDevice();
        fields.push_back(
            {"consume_batch32_ops_per_sec",
             measureOpsPerSec(32, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul, 32);
             })});
    }
    {
        auto dev = continuousDevice(/*per_op_draw=*/true);
        fields.push_back(
            {"consume_batch32_per_op_draw_ops_per_sec",
             measureOpsPerSec(32, [&](u64 n) {
                 for (u64 i = 0; i < n; ++i)
                     dev.consume(arch::Op::FixedMul, 32);
             })});
    }

    // --- NvArray access ------------------------------------------------
    {
        auto dev = continuousDevice();
        arch::NvArray<i16> arr(dev, 1024, "bench");
        u32 i = 0;
        fields.push_back(
            {"nvarray_rw_single_ops_per_sec",
             measureOpsPerSec(2, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     arr.write(i & 1023, static_cast<i16>(i));
                     volatile i16 v = arr.read(i & 1023);
                     (void)v;
                     ++i;
                 }
             })});
    }
    {
        auto dev = continuousDevice(/*per_op_draw=*/true);
        arch::NvArray<i16> arr(dev, 1024, "bench");
        u32 i = 0;
        fields.push_back(
            {"nvarray_rw_per_op_draw_ops_per_sec",
             measureOpsPerSec(2, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     arr.write(i & 1023, static_cast<i16>(i));
                     volatile i16 v = arr.read(i & 1023);
                     (void)v;
                     ++i;
                 }
             })});
    }
    // Span accessors: one 64-word bulk write + read round trip (the
    // kernels' post-migration access shape), reported per word moved.
    {
        auto dev = continuousDevice();
        arch::NvArray<i16> arr(dev, 1024, "bench");
        i16 buf[64] = {};
        u32 i = 0;
        fields.push_back(
            {"nvarray_span64_words_per_sec",
             measureOpsPerSec(128, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     const u64 base = (i & 15) * 64;
                     arr.writeRange(base, 64, buf);
                     arr.readRange(base, 64, buf);
                     ++i;
                 }
             })});
    }

    // --- Sparse-FC inner loop (base.cc's CSC traversal shape) ----------
    // Synthetic CSC: 64 columns x 8 taps into a 256-row output, charged
    // exactly as kernels/base.cc sparseFc charges its accumulation.
    {
        auto dev = continuousDevice();
        constexpr u32 kCols = 64;
        constexpr u32 kTaps = 8;
        constexpr u32 kRows = 256;
        arch::NvArray<i16> colPtr(dev, kCols + 1, "bench.colPtr");
        arch::NvArray<i16> rowIdx(dev, kCols * kTaps, "bench.rowIdx");
        arch::NvArray<i16> vals(dev, kCols * kTaps, "bench.vals");
        arch::NvArray<i16> src(dev, kCols, "bench.src");
        arch::NvArray<i16> dst(dev, kRows, "bench.dst");
        for (u32 c = 0; c <= kCols; ++c)
            colPtr.poke(c, static_cast<i16>(c * kTaps));
        for (u32 t = 0; t < kCols * kTaps; ++t) {
            rowIdx.poke(t, static_cast<i16>((t * 37) % kRows));
            vals.poke(t, static_cast<i16>(t % 251));
        }
        const u64 mark = simulatedOps(dev);
        i16 rows[kTaps];
        i16 ws[kTaps];
        auto inner = [&](u64 n) {
            for (u64 rep = 0; rep < n; ++rep) {
                for (u32 c = 0; c < kCols; ++c) {
                    const auto first =
                        static_cast<u32>(colPtr.read(c));
                    const auto last =
                        static_cast<u32>(colPtr.read(c + 1));
                    const i16 x = src.read(c);
                    const u32 k = last - first;
                    rowIdx.readRange(first, k, rows);
                    vals.readRange(first, k, ws);
                    kernels::addr1(dev, k);
                    kernels::chargeMacQ(dev, k);
                    kernels::loopStep(dev, k);
                    for (u32 t = 0; t < k; ++t) {
                        const auto r = static_cast<u32>(rows[t]);
                        dev.consume(arch::Op::FramLoad);
                        dev.consume(arch::Op::FramStore);
                        dst.poke(r,
                                 kernels::addQRaw(
                                     dst.peek(r),
                                     kernels::mulQRaw(ws[t], x)));
                    }
                }
            }
        };
        // Calibrate simulated ops per outer iteration once.
        inner(1);
        const u64 ops_per_iter = simulatedOps(dev) - mark;
        fields.push_back({"sparse_fc_inner_ops_per_sec",
                          measureOpsPerSec(ops_per_iter, inner)});
    }

    // --- End-to-end: tiny-network SONIC inference ----------------------
    {
        const auto spec = testutil::tinyNet();
        const auto input = testutil::tinyInput();
        u64 ops_per_iter = 0;
        {
            auto dev = continuousDevice();
            dnn::DeviceNetwork net(dev, spec);
            net.loadInput(input);
            (void)kernels::runInference(net, kernels::Impl::Sonic);
            ops_per_iter = simulatedOps(dev);
        }
        fields.push_back(
            {"tiny_inference_sonic_sim_ops_per_sec",
             measureOpsPerSec(ops_per_iter, [&](u64 n) {
                 for (u64 k = 0; k < n; ++k) {
                     auto dev = continuousDevice();
                     dnn::DeviceNetwork net(dev, spec);
                     net.loadInput(input);
                     (void)kernels::runInference(
                         net, kernels::Impl::Sonic);
                 }
             })});
    }

    // Derived speedups (lease + batching vs per-op virtual draw).
    auto find = [&](const char *key) -> f64 {
        for (const auto &f : fields)
            if (f.key == key)
                return f.value;
        return 0.0;
    };
    fields.push_back(
        {"speedup_consume_batch32_vs_per_op_draw",
         find("consume_batch32_ops_per_sec")
             / find("consume_batch32_per_op_draw_ops_per_sec")});
    fields.push_back(
        {"speedup_consume_single_vs_per_op_draw",
         find("consume_single_ops_per_sec")
             / find("consume_single_per_op_draw_ops_per_sec")});
    fields.push_back(
        {"speedup_nvarray_span64_vs_single_per_op_draw",
         find("nvarray_span64_words_per_sec")
             / find("nvarray_rw_per_op_draw_ops_per_sec")});

    // Pre-lease seed baselines, measured with this same chrono harness
    // against the pre-PR tree (per-op virtual draw, per-element kernel
    // charging, always-on asserts) on the PR-2 reference host. They
    // anchor the speedup trajectory; re-measure when porting to a new
    // reference machine.
    constexpr f64 kSeedConsume = 2.511e8;
    constexpr f64 kSeedNvArrayRw = 2.424e8;
    constexpr f64 kSeedSparseFcInner = 2.628e8;
    constexpr f64 kSeedTinySonic = 1.618e8;
    fields.push_back({"seed_consume_ops_per_sec", kSeedConsume});
    fields.push_back({"seed_nvarray_rw_ops_per_sec", kSeedNvArrayRw});
    fields.push_back(
        {"seed_sparse_fc_inner_ops_per_sec", kSeedSparseFcInner});
    fields.push_back(
        {"seed_tiny_inference_sonic_sim_ops_per_sec", kSeedTinySonic});
    fields.push_back({"speedup_consume_batch32_vs_seed",
                      find("consume_batch32_ops_per_sec")
                          / kSeedConsume});
    fields.push_back({"speedup_nvarray_span64_vs_seed",
                      find("nvarray_span64_words_per_sec")
                          / kSeedNvArrayRw});
    fields.push_back({"speedup_sparse_fc_inner_vs_seed",
                      find("sparse_fc_inner_ops_per_sec")
                          / kSeedSparseFcInner});
    fields.push_back({"speedup_tiny_inference_sonic_vs_seed",
                      find("tiny_inference_sonic_sim_ops_per_sec")
                          / kSeedTinySonic});

    std::FILE *out = std::fopen(path.c_str(), "w");
    if (out == nullptr) {
        std::fprintf(stderr, "cannot open %s\n", path.c_str());
        return 1;
    }
    std::fprintf(out, "{\n  \"bench\": \"micro_ops\",\n");
    std::fprintf(out, "  \"unit\": \"simulated ops per second\",\n");
    for (u64 i = 0; i < fields.size(); ++i) {
        std::fprintf(out, "  \"%s\": %.6g%s\n", fields[i].key.c_str(),
                     fields[i].value,
                     i + 1 < fields.size() ? "," : "");
    }
    std::fprintf(out, "}\n");
    std::fclose(out);

    for (const auto &f : fields)
        std::printf("%-48s %.4g\n", f.key.c_str(), f.value);
    std::printf("wrote %s\n", path.c_str());
    return 0;
}

} // namespace

#ifdef SONIC_HAVE_GBENCH

namespace
{

void
BM_DeviceConsume(benchmark::State &state)
{
    auto dev = continuousDevice();
    for (auto _ : state)
        dev.consume(arch::Op::FixedMul);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceConsume);

void
BM_DeviceConsumePerOpDraw(benchmark::State &state)
{
    auto dev = continuousDevice(/*per_op_draw=*/true);
    for (auto _ : state)
        dev.consume(arch::Op::FixedMul);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceConsumePerOpDraw);

void
BM_DeviceConsumeBatch32(benchmark::State &state)
{
    auto dev = continuousDevice();
    for (auto _ : state)
        dev.consume(arch::Op::FixedMul, 32);
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DeviceConsumeBatch32);

void
BM_NvArrayReadWrite(benchmark::State &state)
{
    auto dev = continuousDevice();
    arch::NvArray<i16> arr(dev, 1024, "bench");
    u32 i = 0;
    for (auto _ : state) {
        arr.write(i & 1023, static_cast<i16>(i));
        benchmark::DoNotOptimize(arr.read(i & 1023));
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_NvArrayReadWrite);

void
BM_NvArraySpan64(benchmark::State &state)
{
    auto dev = continuousDevice();
    arch::NvArray<i16> arr(dev, 1024, "bench");
    i16 buf[64] = {};
    u32 i = 0;
    for (auto _ : state) {
        const u64 base = (i & 15) * 64;
        arr.writeRange(base, 64, buf);
        arr.readRange(base, 64, buf);
        benchmark::DoNotOptimize(buf[0]);
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 128);
}
BENCHMARK(BM_NvArraySpan64);

void
BM_FixedMulAdd(benchmark::State &state)
{
    fixed::Q78 acc;
    fixed::Q78 a = fixed::Q78::fromFloat(0.37);
    fixed::Q78 b = fixed::Q78::fromFloat(1.21);
    for (auto _ : state) {
        acc = acc + a * b;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedMulAdd);

void
BM_RedoLogWriteCommit(benchmark::State &state)
{
    auto dev = continuousDevice();
    task::Program prog;
    arch::NvArray<i16> arr(dev, 64, "a");
    const auto entries = static_cast<u32>(state.range(0));
    const task::TaskId t =
        prog.addTask("t", [&](task::Runtime &rt) {
            for (u32 k = 0; k < entries; ++k)
                rt.logWrite(arr, k % 64, static_cast<i16>(k));
            return task::kDone;
        });
    for (auto _ : state) {
        task::Scheduler sched(dev, prog);
        benchmark::DoNotOptimize(sched.run(t).completed);
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RedoLogWriteCommit)->Arg(8)->Arg(32)->Arg(128);

void
BM_ImplRegistryLookup(benchmark::State &state)
{
    auto &registry = kernels::ImplRegistry::instance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(registry.find("SONIC"));
        benchmark::DoNotOptimize(registry.find(kernels::Impl::Tails));
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ImplRegistryLookup);

void
BM_RedoLogRead(benchmark::State &state)
{
    // Reads against a log holding `entries` uncommitted writes — the
    // Tile-128 shape that used to pay a reverse linear scan per read.
    auto dev = continuousDevice();
    task::Program prog;
    arch::NvArray<i16> arr(dev, 1024, "a");
    const auto entries = static_cast<u32>(state.range(0));
    u64 sink = 0;
    const task::TaskId t =
        prog.addTask("t", [&](task::Runtime &rt) {
            for (u32 k = 0; k < entries; ++k)
                rt.logWrite(arr, k % 1024, static_cast<i16>(k));
            for (u32 k = 0; k < entries; ++k)
                sink += static_cast<u64>(rt.logRead(arr, k % 1024));
            return task::kDone;
        });
    for (auto _ : state) {
        task::Scheduler sched(dev, prog);
        benchmark::DoNotOptimize(sched.run(t).completed);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RedoLogRead)->Arg(8)->Arg(128)->Arg(1024);

void
BM_TinyInference(benchmark::State &state)
{
    const auto impl = static_cast<kernels::Impl>(state.range(0));
    const auto spec = testutil::tinyNet();
    const auto input = testutil::tinyInput();
    for (auto _ : state) {
        auto dev = continuousDevice();
        dnn::DeviceNetwork net(dev, spec);
        net.loadInput(input);
        benchmark::DoNotOptimize(
            kernels::runInference(net, impl).completed);
    }
}
BENCHMARK(BM_TinyInference)
    ->Arg(static_cast<int>(kernels::Impl::Base))
    ->Arg(static_cast<int>(kernels::Impl::Tile8))
    ->Arg(static_cast<int>(kernels::Impl::Sonic))
    ->Arg(static_cast<int>(kernels::Impl::Tails));

void
BM_TinyIntermittentSonic(benchmark::State &state)
{
    const auto spec = testutil::tinyNet();
    const auto input = testutil::tinyInput();
    for (auto _ : state) {
        arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                         std::make_unique<arch::FailEveryOps>(
                             static_cast<u64>(state.range(0))));
        dnn::DeviceNetwork net(dev, spec);
        net.loadInput(input);
        benchmark::DoNotOptimize(
            kernels::runInference(net, kernels::Impl::Sonic)
                .completed);
    }
}
BENCHMARK(BM_TinyIntermittentSonic)->Arg(127)->Arg(1031);

} // namespace

#endif // SONIC_HAVE_GBENCH

int
main(int argc, char **argv)
{
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--emit-json") == 0)
            return emitJson("BENCH_micro_ops.json");
        if (std::strncmp(argv[i], "--emit-json=", 12) == 0)
            return emitJson(argv[i] + 12);
    }
#ifdef SONIC_HAVE_GBENCH
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
#else
    std::fprintf(stderr,
                 "google-benchmark not built in; run with "
                 "--emit-json[=PATH] for the chrono harness\n");
    return 1;
#endif
}
