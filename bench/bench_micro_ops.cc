/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot paths: the
 * charged-operation dispatch, memory-handle accesses, fixed-point
 * arithmetic, the redo-log, and a full tiny-network inference per
 * implementation. These measure *host* performance of the simulator
 * (how fast experiments run), complementing the simulated-device
 * measurements of the figure benches.
 */

#include <benchmark/benchmark.h>

#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "fixed/fixed.hh"
#include "kernels/runner.hh"
#include "task/runtime.hh"
#include "tests/test_helpers.hh"

using namespace sonic;

namespace
{

arch::Device
continuousDevice()
{
    return arch::Device(arch::EnergyProfile::msp430fr5994(),
                        std::make_unique<arch::ContinuousPower>());
}

void
BM_DeviceConsume(benchmark::State &state)
{
    auto dev = continuousDevice();
    for (auto _ : state)
        dev.consume(arch::Op::FixedMul);
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DeviceConsume);

void
BM_NvArrayReadWrite(benchmark::State &state)
{
    auto dev = continuousDevice();
    arch::NvArray<i16> arr(dev, 1024, "bench");
    u32 i = 0;
    for (auto _ : state) {
        arr.write(i & 1023, static_cast<i16>(i));
        benchmark::DoNotOptimize(arr.read(i & 1023));
        ++i;
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_NvArrayReadWrite);

void
BM_FixedMulAdd(benchmark::State &state)
{
    fixed::Q78 acc;
    fixed::Q78 a = fixed::Q78::fromFloat(0.37);
    fixed::Q78 b = fixed::Q78::fromFloat(1.21);
    for (auto _ : state) {
        acc = acc + a * b;
        benchmark::DoNotOptimize(acc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FixedMulAdd);

void
BM_RedoLogWriteCommit(benchmark::State &state)
{
    auto dev = continuousDevice();
    task::Program prog;
    arch::NvArray<i16> arr(dev, 64, "a");
    const auto entries = static_cast<u32>(state.range(0));
    const task::TaskId t =
        prog.addTask("t", [&](task::Runtime &rt) {
            for (u32 k = 0; k < entries; ++k)
                rt.logWrite(arr, k % 64, static_cast<i16>(k));
            return task::kDone;
        });
    for (auto _ : state) {
        task::Scheduler sched(dev, prog);
        benchmark::DoNotOptimize(sched.run(t).completed);
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RedoLogWriteCommit)->Arg(8)->Arg(32)->Arg(128);

void
BM_ImplRegistryLookup(benchmark::State &state)
{
    auto &registry = kernels::ImplRegistry::instance();
    for (auto _ : state) {
        benchmark::DoNotOptimize(registry.find("SONIC"));
        benchmark::DoNotOptimize(registry.find(kernels::Impl::Tails));
    }
    state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ImplRegistryLookup);

void
BM_RedoLogRead(benchmark::State &state)
{
    // Reads against a log holding `entries` uncommitted writes — the
    // Tile-128 shape that used to pay a reverse linear scan per read.
    auto dev = continuousDevice();
    task::Program prog;
    arch::NvArray<i16> arr(dev, 1024, "a");
    const auto entries = static_cast<u32>(state.range(0));
    u64 sink = 0;
    const task::TaskId t =
        prog.addTask("t", [&](task::Runtime &rt) {
            for (u32 k = 0; k < entries; ++k)
                rt.logWrite(arr, k % 1024, static_cast<i16>(k));
            for (u32 k = 0; k < entries; ++k)
                sink += static_cast<u64>(rt.logRead(arr, k % 1024));
            return task::kDone;
        });
    for (auto _ : state) {
        task::Scheduler sched(dev, prog);
        benchmark::DoNotOptimize(sched.run(t).completed);
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * entries);
}
BENCHMARK(BM_RedoLogRead)->Arg(8)->Arg(128)->Arg(1024);

void
BM_TinyInference(benchmark::State &state)
{
    const auto impl = static_cast<kernels::Impl>(state.range(0));
    const auto spec = testutil::tinyNet();
    const auto input = testutil::tinyInput();
    for (auto _ : state) {
        auto dev = continuousDevice();
        dnn::DeviceNetwork net(dev, spec);
        net.loadInput(input);
        benchmark::DoNotOptimize(
            kernels::runInference(net, impl).completed);
    }
}
BENCHMARK(BM_TinyInference)
    ->Arg(static_cast<int>(kernels::Impl::Base))
    ->Arg(static_cast<int>(kernels::Impl::Tile8))
    ->Arg(static_cast<int>(kernels::Impl::Sonic))
    ->Arg(static_cast<int>(kernels::Impl::Tails));

void
BM_TinyIntermittentSonic(benchmark::State &state)
{
    const auto spec = testutil::tinyNet();
    const auto input = testutil::tinyInput();
    for (auto _ : state) {
        arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                         std::make_unique<arch::FailEveryOps>(
                             static_cast<u64>(state.range(0))));
        dnn::DeviceNetwork net(dev, spec);
        net.loadInput(input);
        benchmark::DoNotOptimize(
            kernels::runInference(net, kernels::Impl::Sonic)
                .completed);
    }
}
BENCHMARK(BM_TinyIntermittentSonic)->Arg(127)->Arg(1031);

} // namespace

BENCHMARK_MAIN();
