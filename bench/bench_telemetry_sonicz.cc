/**
 * @file
 * Telemetry-compression bench: the mixed-1k acceptance fleet streamed
 * through the direct CSV/JSON sinks and the .sonicz columnar sink,
 * sizes and compression ratios reported. The bench is also its own
 * gate: the sonic_cat-style re-emission (telemetry::catSonicz through
 * the same sink classes) must be byte-identical to the direct output,
 * and the CSV-to-.sonicz ratio must clear the 5x acceptance floor —
 * either failure exits nonzero.
 *
 * `--emit-json[=PATH]` writes BENCH_telemetry_sonicz.json with the
 * sizes and ratios; `--devices=N` rescales the fleet.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

#include "bench/bench_json.hh"
#include "fleet/fleet.hh"
#include "telemetry/cat.hh"

using namespace sonic;
using namespace sonic::bench;

namespace
{

const fleet::FleetPlan &
mixedPlan()
{
    for (const auto &scenario : fleet::namedScenarios()) {
        if (scenario.name == "mixed-1k")
            return scenario.plan;
    }
    std::fprintf(stderr, "mixed-1k scenario missing\n");
    std::exit(2);
}

int
run(u32 devices, const std::string &json_path)
{
    fleet::FleetPlan plan = mixedPlan();
    plan.devices = devices;

    std::ostringstream csv_os, json_os, sonicz_os;
    fleet::FleetCsvSink csv_sink(csv_os);
    fleet::FleetJsonSink json_sink(json_os);
    telemetry::SoniczFleetSink sonicz_sink(sonicz_os);
    fleet::runFleet(plan, {},
                    {&csv_sink, &json_sink, &sonicz_sink});

    const std::string csv = csv_os.str();
    const std::string json = json_os.str();
    const std::string sonicz = sonicz_os.str();
    const f64 csv_ratio = sonicz.empty()
        ? 0.0
        : static_cast<f64>(csv.size())
              / static_cast<f64>(sonicz.size());
    const f64 json_ratio = sonicz.empty()
        ? 0.0
        : static_cast<f64>(json.size())
              / static_cast<f64>(sonicz.size());

    std::printf("%u devices: csv %zu B, json %zu B, sonicz %zu B\n",
                devices, csv.size(), json.size(), sonicz.size());
    std::printf("compression: %.2fx vs csv, %.2fx vs json\n",
                csv_ratio, json_ratio);

    // Gate 1: lossless by construction — re-emission through the same
    // sink classes must reproduce both artifacts byte for byte.
    for (const bool as_json : {false, true}) {
        telemetry::CatOptions options;
        options.format = as_json ? telemetry::CatOptions::Format::Json
                                 : telemetry::CatOptions::Format::Csv;
        std::istringstream in(sonicz);
        std::ostringstream out;
        std::string error;
        if (!telemetry::catSonicz(in, out, options, &error)) {
            std::fprintf(stderr, "re-emission failed: %s\n",
                         error.c_str());
            return 1;
        }
        const std::string &direct = as_json ? json : csv;
        if (out.str() != direct) {
            std::fprintf(stderr,
                         "re-emitted %s differs from the direct sink "
                         "output — .sonicz is NOT lossless\n",
                         as_json ? "JSON" : "CSV");
            return 1;
        }
    }
    std::printf("re-emission: byte-identical (csv and json)\n");

    // Gate 2: the acceptance floor. Column contexts + LZ must beat
    // the flat CSV by at least 5x on the acceptance fleet.
    if (csv_ratio < 5.0) {
        std::fprintf(stderr,
                     "csv/sonicz ratio %.2f is below the 5x floor\n",
                     csv_ratio);
        return 1;
    }

    if (!json_path.empty()
        && !writeFlatJson(
               json_path, "telemetry_sonicz",
               {{"csv_bytes", static_cast<f64>(csv.size())},
                {"json_bytes", static_cast<f64>(json.size())},
                {"sonicz_bytes", static_cast<f64>(sonicz.size())},
                {"csv_ratio", csv_ratio},
                {"json_ratio", json_ratio}}))
        return 1;
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    u32 devices = 1000;
    std::string json_path;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--emit-json") == 0)
            json_path = "BENCH_telemetry_sonicz.json";
        else if (std::strncmp(argv[i], "--emit-json=", 12) == 0)
            json_path = argv[i] + 12;
        else if (std::strncmp(argv[i], "--devices=", 10) == 0)
            devices = static_cast<u32>(std::atoi(argv[i] + 10));
        else {
            std::fprintf(stderr,
                         "unknown flag %s (try --emit-json[=PATH] "
                         "--devices=N)\n",
                         argv[i]);
            return 2;
        }
    }
    if (devices == 0) {
        std::fprintf(stderr, "--devices must be positive\n");
        return 2;
    }
    return run(devices, json_path);
}
