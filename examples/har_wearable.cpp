/**
 * @file
 * A battery-less wearable running human-activity recognition (HAR):
 * classifies accelerometer windows continuously on harvested energy.
 * Demonstrates sustained intermittent operation — many inferences back
 * to back on a 100 uF capacitor — and reports the achieved inference
 * rate and per-inference energy, plus on-device agreement with the
 * float model.
 */

#include <cstdio>
#include <iostream>

#include "app/experiment.hh"
#include "dnn/device_net.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("HAR wearable on harvested energy")
                          .c_str());

    const auto &spec = app::cachedCompressed(dnn::NetId::Har);
    const auto &data = app::cachedDataset(dnn::NetId::Har);

    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     app::makePower(app::PowerKind::Cap100uF));
    dnn::DeviceNetwork net(dev, spec);

    const u32 kWindows = 10;
    u32 agree = 0;
    u64 reboots = 0;
    Table table({"window", "label", "device class", "reboots so far",
                 "elapsed (s)"});
    for (u32 w = 0; w < kWindows; ++w) {
        const auto &sample = data[w];
        net.loadInput(dnn::DeviceNetwork::quantizeInput(sample.input));
        const auto run = kernels::runInference(net,
                                               kernels::Impl::Sonic);
        if (!run.completed) {
            std::printf("window %u did not complete!\n", w);
            return 1;
        }
        reboots = dev.rebootCount();
        u32 best = 0;
        for (u32 i = 1; i < run.logits.size(); ++i)
            if (run.logits[i] > run.logits[best])
                best = i;
        agree += best == spec.classify(sample.input);
        table.row()
            .cell(static_cast<u64>(w))
            .cell(static_cast<u64>(sample.label))
            .cell(static_cast<u64>(best))
            .cell(static_cast<u64>(reboots))
            .cell(dev.totalSeconds(), 2);
    }
    table.print(std::cout);

    std::printf("\n%u windows classified across %llu power failures; "
                "device/f32 agreement %u/%u\n",
                kWindows, static_cast<unsigned long long>(reboots),
                agree, kWindows);
    std::printf("avg per inference: %s, %s (%.1f%% of time spent "
                "recharging)\n",
                formatSeconds(dev.totalSeconds() / kWindows).c_str(),
                formatEnergy(dev.consumedJoules() / kWindows).c_str(),
                100.0 * dev.deadSeconds() / dev.totalSeconds());
    return 0;
}
