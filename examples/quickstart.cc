/**
 * @file
 * Quickstart: declare a two-point sweep — one HAR inference on
 * continuous power and one on harvested RF energy with a 100 uF
 * capacitor — run it through the Engine, and check that the
 * intermittent run, despite dozens of power failures, produces
 * bit-identical logits.
 *
 * This exercises the core promise of SONIC (correct intermittent
 * execution with no hand-tuning and modest overhead) and the minimal
 * SweepPlan/Engine workflow every other bench builds on.
 */

#include <cstdio>

#include "app/engine.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("SONIC quickstart: HAR inference").c_str());

    app::SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Sonic})
        .power({app::PowerKind::Continuous, app::PowerKind::Cap100uF});

    app::Engine engine;
    const auto records = engine.run(plan);

    const auto &continuous = records[0].result;
    const auto &intermittent = records[1].result;

    std::printf("continuous : completed=%d class=%u live=%s "
                "energy=%s\n",
                continuous.completed, continuous.predictedClass,
                formatSeconds(continuous.liveSeconds).c_str(),
                formatEnergy(continuous.energyJ).c_str());
    std::printf("intermittent: completed=%d class=%u total=%s "
                "(dead %s) energy=%s reboots=%llu\n",
                intermittent.completed, intermittent.predictedClass,
                formatSeconds(intermittent.totalSeconds).c_str(),
                formatSeconds(intermittent.deadSeconds).c_str(),
                formatEnergy(intermittent.energyJ).c_str(),
                static_cast<unsigned long long>(intermittent.reboots));

    if (!continuous.completed || !intermittent.completed) {
        std::printf("FAIL: a run did not complete\n");
        return 1;
    }
    if (continuous.logits != intermittent.logits) {
        std::printf("FAIL: intermittent logits differ from continuous\n");
        return 1;
    }
    std::printf("OK: %llu power failures, bit-identical result\n",
                static_cast<unsigned long long>(intermittent.reboots));
    return 0;
}
