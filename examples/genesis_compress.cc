/**
 * @file
 * Using GENESIS as a tool: start from the uncompressed HAR network
 * description, sweep separation/pruning configurations, and let the
 * IMpJ application model (not raw accuracy!) choose the configuration
 * to deploy — then verify the chosen network actually runs on the
 * simulated device under intermittent power.
 */

#include <cstdio>
#include <iostream>

#include "app/engine.hh"
#include "dnn/device_net.hh"
#include "genesis/genesis.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("GENESIS: compress, choose, deploy")
                          .c_str());

    genesis::GenesisOptions opts;
    opts.denseGrid = false; // quick demonstration sweep
    opts.evalSamples = 48;
    const auto result = genesis::runGenesis("HAR", opts);

    std::printf("original: %llu params, %.0f KB (infeasible: exceeds "
                "the 256 KB FRAM)\n",
                static_cast<unsigned long long>(result.original.params),
                static_cast<f64>(result.original.framBytes) / 1024.0);

    Table table({"technique", "fcKeep", "params", "accuracy",
                 "Einfer (mJ)", "IMpJ/kJ", "picked"});
    for (u32 i = 0; i < result.configs.size(); ++i) {
        const auto &c = result.configs[i];
        table.row()
            .cell(std::string(genesis::techniqueName(c.technique)))
            .cell(std::min(c.knobs.fcKeep, 99.0), 2)
            .cell(static_cast<u64>(c.params))
            .cell(c.accuracy, 3)
            .cell(c.inferJ * 1e3, 2)
            .cell(c.impj * 1e3, 2)
            .cell(std::string(i == result.chosenIndex ? "<==" : ""));
    }
    table.print(std::cout);

    // Deploy the chosen configuration on the simulated device and run
    // one intermittent inference to prove it fits and completes.
    const auto chosen_spec = dnn::ModelZoo::instance().get("HAR")
                                 .withKnobs(result.chosen().knobs,
                                            opts.seed);
    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     app::makePower(app::PowerKind::Cap100uF));
    dnn::DeviceNetwork net(dev, chosen_spec);
    app::Engine engine;
    const auto &data = engine.dataset("HAR");
    net.loadInput(dnn::DeviceNetwork::quantizeInput(data[0].input));
    const auto run = kernels::runInference(net, kernels::Impl::Sonic);

    std::printf("\ndeployed chosen config: FRAM %.1f KB used; "
                "intermittent inference %s in %s across %llu power "
                "failures\n",
                static_cast<f64>(dev.framBytesUsed()) / 1024.0,
                run.completed ? "completed" : "FAILED",
                formatSeconds(dev.totalSeconds()).c_str(),
                static_cast<unsigned long long>(run.reboots));
    return run.completed ? 0 : 1;
}
