/**
 * @file
 * A battery-less wearable running human-activity recognition (HAR):
 * classifies accelerometer windows continuously on harvested energy.
 * Demonstrates sustained intermittent operation — ten windows on a
 * 100 uF capacitor, declared as a samples-axis sweep — and reports
 * the achieved inference rate and per-inference energy, plus
 * on-device agreement with the float model.
 */

#include <cstdio>
#include <iostream>

#include "app/engine.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("HAR wearable on harvested energy")
                          .c_str());

    const u32 kWindows = 10;

    app::Engine engine;
    app::SweepPlan plan;
    plan.nets({"HAR"})
        .impls({kernels::Impl::Sonic})
        .power({app::PowerKind::Cap100uF})
        .samples(kWindows);
    const auto records = engine.run(plan);

    const auto &spec = engine.compressed("HAR");
    const auto &data = engine.dataset("HAR");

    u32 agree = 0;
    u64 reboots = 0;
    f64 seconds = 0.0;
    f64 joules = 0.0;
    f64 dead_seconds = 0.0;
    Table table({"window", "label", "device class", "reboots",
                 "window time (s)"});
    for (const auto &record : records) {
        const auto &r = record.result;
        const u32 w = record.spec.sampleIndex;
        if (!r.completed) {
            std::printf("window %u did not complete!\n", w);
            return 1;
        }
        reboots += r.reboots;
        seconds += r.totalSeconds;
        joules += r.energyJ;
        dead_seconds += r.deadSeconds;
        agree += r.predictedClass == spec.classify(data[w].input);
        table.row()
            .cell(static_cast<u64>(w))
            .cell(static_cast<u64>(data[w].label))
            .cell(static_cast<u64>(r.predictedClass))
            .cell(static_cast<u64>(r.reboots))
            .cell(r.totalSeconds, 2);
    }
    table.print(std::cout);

    std::printf("\n%u windows classified across %llu power failures; "
                "device/f32 agreement %u/%u\n",
                kWindows, static_cast<unsigned long long>(reboots),
                agree, kWindows);
    std::printf("avg per inference: %s, %s (%.1f%% of time spent "
                "recharging)\n",
                formatSeconds(seconds / kWindows).c_str(),
                formatEnergy(joules / kWindows).c_str(),
                100.0 * dead_seconds / seconds);
    return 0;
}
