/**
 * @file
 * Keyword spotting (the paper's OkG workload) on a battery-less audio
 * sensor, comparing SONIC against TAILS on the same harvested-power
 * budget: TAILS' LEA acceleration buys either lower latency or more
 * inferences per harvested Joule. Also shows TAILS' one-time tile
 * calibration adapting to the power system.
 */

#include <cstdio>
#include <iostream>

#include "app/experiment.hh"
#include "dnn/device_net.hh"
#include "tails/tails.hh"
#include "util/table.hh"

using namespace sonic;

namespace
{

struct Outcome
{
    f64 seconds = 0.0;
    f64 joules = 0.0;
    u64 reboots = 0;
    u32 tile = 0;
};

Outcome
spotKeyword(kernels::Impl impl, app::PowerKind power)
{
    const auto &spec = app::cachedCompressed(dnn::NetId::Okg);
    const auto &data = app::cachedDataset(dnn::NetId::Okg);

    arch::Device dev(arch::EnergyProfile::msp430fr5994(),
                     app::makePower(power));
    dnn::DeviceNetwork net(dev, spec);
    net.loadInput(dnn::DeviceNetwork::quantizeInput(data[0].input));

    Outcome out;
    if (impl == kernels::Impl::Tails) {
        tails::CalibrationInfo cal;
        const auto run = tails::runTails(net, &cal);
        if (!run.completed)
            return out;
        out.tile = cal.tileWords;
    } else {
        const auto run = kernels::runInference(net, impl);
        if (!run.completed)
            return out;
    }
    out.seconds = dev.totalSeconds();
    out.joules = dev.consumedJoules();
    out.reboots = dev.rebootCount();
    return out;
}

} // namespace

int
main()
{
    std::printf("%s", banner("Keyword spotting: SONIC vs TAILS")
                          .c_str());

    Table table({"power", "impl", "latency", "energy", "reboots",
                 "LEA tile"});
    for (auto power : {app::PowerKind::Continuous,
                       app::PowerKind::Cap1mF,
                       app::PowerKind::Cap100uF}) {
        for (auto impl : {kernels::Impl::Sonic, kernels::Impl::Tails}) {
            const auto out = spotKeyword(impl, power);
            table.row()
                .cell(std::string(app::powerName(power)))
                .cell(std::string(kernels::implName(impl)))
                .cell(formatSeconds(out.seconds))
                .cell(formatEnergy(out.joules))
                .cell(static_cast<u64>(out.reboots))
                .cell(impl == kernels::Impl::Tails
                          ? std::to_string(out.tile) + " words"
                          : std::string("-"));
        }
    }
    table.print(std::cout);

    std::printf("\nTAILS calibrates its DMA/LEA tile to the energy "
                "buffer: large on bench power, smaller when a 100uF "
                "capacitor cannot complete a full-tile FIR within one "
                "charge cycle.\n");
    return 0;
}
