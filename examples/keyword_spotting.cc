/**
 * @file
 * Keyword spotting (the paper's OkG workload) on a battery-less audio
 * sensor, comparing SONIC against TAILS on the same harvested-power
 * budget: TAILS' LEA acceleration buys either lower latency or more
 * inferences per harvested Joule. Also shows TAILS' one-time tile
 * calibration adapting to the power system (the calibrated tile
 * streams out of the sweep as ExperimentResult::tailsTileWords).
 */

#include <cstdio>
#include <iostream>
#include <string>

#include "app/engine.hh"
#include "util/logging.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("Keyword spotting: SONIC vs TAILS")
                          .c_str());

    app::Engine engine;
    app::SweepPlan plan;
    plan.nets({"OkG"})
        .impls({kernels::Impl::Sonic, kernels::Impl::Tails})
        .power({app::PowerKind::Continuous, app::PowerKind::Cap1mF,
                app::PowerKind::Cap100uF});
    const auto records = engine.run(plan);

    Table table({"power", "impl", "latency", "energy", "reboots",
                 "LEA tile"});
    for (auto power : {app::PowerKind::Continuous,
                       app::PowerKind::Cap1mF,
                       app::PowerKind::Cap100uF}) {
        for (auto impl : {kernels::Impl::Sonic, kernels::Impl::Tails}) {
            const app::SweepRecord *record = nullptr;
            for (const auto &cand : records) {
                if (cand.spec.impl == impl
                    && cand.spec.power == power) {
                    record = &cand;
                    break;
                }
            }
            if (record == nullptr)
                fatal("sweep record missing for ",
                      kernels::implName(impl), "/",
                      app::powerName(power));
            const auto &r = record->result;
            table.row()
                .cell(std::string(app::powerName(power)))
                .cell(std::string(kernels::implName(impl)))
                .cell(formatSeconds(r.completed ? r.totalSeconds
                                                : 0.0))
                .cell(formatEnergy(r.completed ? r.energyJ : 0.0))
                .cell(static_cast<u64>(r.reboots))
                .cell(impl == kernels::Impl::Tails
                          ? std::to_string(r.tailsTileWords) + " words"
                          : std::string("-"));
        }
    }
    table.print(std::cout);

    std::printf("\nTAILS calibrates its DMA/LEA tile to the energy "
                "buffer: large on bench power, smaller when a 100uF "
                "capacitor cannot complete a full-tile FIR within one "
                "charge cycle.\n");
    return 0;
}
