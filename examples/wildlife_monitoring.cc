/**
 * @file
 * Wildlife monitoring (the paper's Sec. 3 case study): a battery-less
 * camera trap that photographs rare animals and uses on-device MNIST-
 * style image inference to decide which events are worth the very
 * expensive radio. Simulates a day of events and reports interesting
 * messages per harvested Joule for three designs: always-send, naive
 * local inference (tiled Alpaca), and SONIC & TAILS.
 */

#include <cstdio>
#include <iostream>

#include "app/engine.hh"
#include "app/wildlife.hh"
#include "util/rng.hh"
#include "util/table.hh"

using namespace sonic;

int
main()
{
    std::printf("%s", banner("Wildlife monitoring camera trap")
                          .c_str());

    // Measure the inference energies of the two designs on the
    // prototype (MNIST on a 1 mF capacitor) with one two-point sweep.
    app::Engine engine;
    app::SweepPlan measure;
    measure.nets({"MNIST"})
        .impls({kernels::Impl::Tile8, kernels::Impl::Tails})
        .power({app::PowerKind::Cap1mF});
    const auto records = engine.run(measure);
    const f64 naive_j = records[0].result.energyJ;
    const f64 tails_j = records[1].result.energyJ;

    auto params = app::WildlifeParams::fromRadio(
        arch::EnergyProfile::openChirpRadio());
    params.naiveInferJ = naive_j;
    params.tailsInferJ = tails_j;

    // Simulate a stream of 2000 events at the paper's base rate with
    // a 99%-accurate classifier, sending results only.
    Rng rng(2024);
    const f64 acc = 0.99;
    const f64 comm_j = params.commJ / params.resultCommShrink;
    u64 interesting_sent[3] = {0, 0, 0};
    f64 energy_spent[3] = {0, 0, 0};
    for (int event = 0; event < 2000; ++event) {
        const bool interesting = rng.bernoulli(params.baseRate);
        const bool detected = interesting ? rng.bernoulli(acc)
                                          : !rng.bernoulli(acc);
        // Design 0: always send the full image.
        energy_spent[0] += params.senseJ + params.commJ;
        interesting_sent[0] += interesting;
        // Design 1: naive local inference, send result on detection.
        energy_spent[1] += params.senseJ + naive_j
                         + (detected ? comm_j : 0.0);
        interesting_sent[1] += interesting && detected;
        // Design 2: SONIC & TAILS.
        energy_spent[2] += params.senseJ + tails_j
                         + (detected ? comm_j : 0.0);
        interesting_sent[2] += interesting && detected;
    }

    Table table({"design", "Einfer", "interesting sent",
                 "energy (kJ)", "IMpJ (per kJ)"});
    const char *names[3] = {"always-send", "naive local (Tile-8)",
                            "SONIC&TAILS"};
    const f64 infer_j[3] = {0.0, naive_j, tails_j};
    for (int d = 0; d < 3; ++d) {
        table.row()
            .cell(std::string(names[d]))
            .cell(formatEnergy(infer_j[d]))
            .cell(static_cast<u64>(interesting_sent[d]))
            .cell(energy_spent[d] / 1e3, 2)
            .cell(static_cast<f64>(interesting_sent[d])
                      / (energy_spent[d] / 1e3),
                  1);
    }
    table.print(std::cout);

    const f64 impj0 = static_cast<f64>(interesting_sent[0])
                    / energy_spent[0];
    const f64 impj2 = static_cast<f64>(interesting_sent[2])
                    / energy_spent[2];
    std::printf("\nSONIC&TAILS delivers %.0fx more interesting "
                "messages per Joule than sending everything.\n",
                impj2 / impj0);
    return 0;
}
