file(REMOVE_RECURSE
  "CMakeFiles/test_fixed.dir/tests/test_fixed.cc.o"
  "CMakeFiles/test_fixed.dir/tests/test_fixed.cc.o.d"
  "test_fixed"
  "test_fixed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fixed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
