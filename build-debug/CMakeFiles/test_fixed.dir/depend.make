# Empty dependencies file for test_fixed.
# This may be replaced when dependencies are built.
