file(REMOVE_RECURSE
  "CMakeFiles/example_keyword_spotting.dir/examples/keyword_spotting.cpp.o"
  "CMakeFiles/example_keyword_spotting.dir/examples/keyword_spotting.cpp.o.d"
  "example_keyword_spotting"
  "example_keyword_spotting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_keyword_spotting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
