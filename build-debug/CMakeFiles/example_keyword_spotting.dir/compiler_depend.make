# Empty compiler generated dependencies file for example_keyword_spotting.
# This may be replaced when dependencies are built.
