file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_energy_profile.dir/bench/bench_fig12_energy_profile.cc.o"
  "CMakeFiles/bench_fig12_energy_profile.dir/bench/bench_fig12_energy_profile.cc.o.d"
  "bench_fig12_energy_profile"
  "bench_fig12_energy_profile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_energy_profile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
