# Empty compiler generated dependencies file for bench_fig12_energy_profile.
# This may be replaced when dependencies are built.
