# Empty compiler generated dependencies file for test_intermittent.
# This may be replaced when dependencies are built.
