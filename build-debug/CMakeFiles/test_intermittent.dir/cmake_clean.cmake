file(REMOVE_RECURSE
  "CMakeFiles/test_intermittent.dir/tests/test_intermittent.cc.o"
  "CMakeFiles/test_intermittent.dir/tests/test_intermittent.cc.o.d"
  "test_intermittent"
  "test_intermittent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intermittent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
