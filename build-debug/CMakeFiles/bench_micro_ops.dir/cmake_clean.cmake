file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ops.dir/bench/bench_micro_ops.cc.o"
  "CMakeFiles/bench_micro_ops.dir/bench/bench_micro_ops.cc.o.d"
  "bench_micro_ops"
  "bench_micro_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
