# Empty dependencies file for bench_micro_ops.
# This may be replaced when dependencies are built.
