# Empty dependencies file for test_genesis.
# This may be replaced when dependencies are built.
