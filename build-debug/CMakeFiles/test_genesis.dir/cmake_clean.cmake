file(REMOVE_RECURSE
  "CMakeFiles/test_genesis.dir/tests/test_genesis.cc.o"
  "CMakeFiles/test_genesis.dir/tests/test_genesis.cc.o.d"
  "test_genesis"
  "test_genesis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_genesis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
