# Empty compiler generated dependencies file for bench_sec9_summary.
# This may be replaced when dependencies are built.
