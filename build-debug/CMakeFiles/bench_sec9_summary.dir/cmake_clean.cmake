file(REMOVE_RECURSE
  "CMakeFiles/bench_sec9_summary.dir/bench/bench_sec9_summary.cc.o"
  "CMakeFiles/bench_sec9_summary.dir/bench/bench_sec9_summary.cc.o.d"
  "bench_sec9_summary"
  "bench_sec9_summary.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec9_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
