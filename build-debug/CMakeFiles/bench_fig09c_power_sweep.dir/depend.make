# Empty dependencies file for bench_fig09c_power_sweep.
# This may be replaced when dependencies are built.
