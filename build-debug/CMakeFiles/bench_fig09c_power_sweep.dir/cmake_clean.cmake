file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09c_power_sweep.dir/bench/bench_fig09c_power_sweep.cc.o"
  "CMakeFiles/bench_fig09c_power_sweep.dir/bench/bench_fig09c_power_sweep.cc.o.d"
  "bench_fig09c_power_sweep"
  "bench_fig09c_power_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09c_power_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
