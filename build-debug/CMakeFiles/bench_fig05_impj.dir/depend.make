# Empty dependencies file for bench_fig05_impj.
# This may be replaced when dependencies are built.
