file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_impj.dir/bench/bench_fig05_impj.cc.o"
  "CMakeFiles/bench_fig05_impj.dir/bench/bench_fig05_impj.cc.o.d"
  "bench_fig05_impj"
  "bench_fig05_impj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_impj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
