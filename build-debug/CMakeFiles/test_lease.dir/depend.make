# Empty dependencies file for test_lease.
# This may be replaced when dependencies are built.
