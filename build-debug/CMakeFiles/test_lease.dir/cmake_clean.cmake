file(REMOVE_RECURSE
  "CMakeFiles/test_lease.dir/tests/test_lease.cc.o"
  "CMakeFiles/test_lease.dir/tests/test_lease.cc.o.d"
  "test_lease"
  "test_lease.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lease.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
