# Empty dependencies file for bench_fig11_energy.
# This may be replaced when dependencies are built.
