file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_energy.dir/bench/bench_fig11_energy.cc.o"
  "CMakeFiles/bench_fig11_energy.dir/bench/bench_fig11_energy.cc.o.d"
  "bench_fig11_energy"
  "bench_fig11_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
