# Empty dependencies file for bench_fig09b_time_intermittent.
# This may be replaced when dependencies are built.
