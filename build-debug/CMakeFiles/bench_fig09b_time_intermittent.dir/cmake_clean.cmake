file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09b_time_intermittent.dir/bench/bench_fig09b_time_intermittent.cc.o"
  "CMakeFiles/bench_fig09b_time_intermittent.dir/bench/bench_fig09b_time_intermittent.cc.o.d"
  "bench_fig09b_time_intermittent"
  "bench_fig09b_time_intermittent.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09b_time_intermittent.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
