# Empty dependencies file for bench_fig02_send_result.
# This may be replaced when dependencies are built.
