file(REMOVE_RECURSE
  "CMakeFiles/bench_fig02_send_result.dir/bench/bench_fig02_send_result.cc.o"
  "CMakeFiles/bench_fig02_send_result.dir/bench/bench_fig02_send_result.cc.o.d"
  "bench_fig02_send_result"
  "bench_fig02_send_result.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig02_send_result.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
