# Empty dependencies file for example_har_wearable.
# This may be replaced when dependencies are built.
