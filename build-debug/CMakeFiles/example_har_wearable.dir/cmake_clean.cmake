file(REMOVE_RECURSE
  "CMakeFiles/example_har_wearable.dir/examples/har_wearable.cpp.o"
  "CMakeFiles/example_har_wearable.dir/examples/har_wearable.cpp.o.d"
  "example_har_wearable"
  "example_har_wearable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_har_wearable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
