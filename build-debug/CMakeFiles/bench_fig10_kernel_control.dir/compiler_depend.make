# Empty compiler generated dependencies file for bench_fig10_kernel_control.
# This may be replaced when dependencies are built.
