file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_kernel_control.dir/bench/bench_fig10_kernel_control.cc.o"
  "CMakeFiles/bench_fig10_kernel_control.dir/bench/bench_fig10_kernel_control.cc.o.d"
  "bench_fig10_kernel_control"
  "bench_fig10_kernel_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_kernel_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
