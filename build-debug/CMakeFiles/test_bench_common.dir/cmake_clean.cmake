file(REMOVE_RECURSE
  "CMakeFiles/test_bench_common.dir/tests/test_bench_common.cc.o"
  "CMakeFiles/test_bench_common.dir/tests/test_bench_common.cc.o.d"
  "test_bench_common"
  "test_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
