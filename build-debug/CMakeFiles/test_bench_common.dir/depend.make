# Empty dependencies file for test_bench_common.
# This may be replaced when dependencies are built.
