# Empty compiler generated dependencies file for bench_fig04_pareto.
# This may be replaced when dependencies are built.
