file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_pareto.dir/bench/bench_fig04_pareto.cc.o"
  "CMakeFiles/bench_fig04_pareto.dir/bench/bench_fig04_pareto.cc.o.d"
  "bench_fig04_pareto"
  "bench_fig04_pareto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_pareto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
