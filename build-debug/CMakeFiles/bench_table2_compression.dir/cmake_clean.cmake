file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_compression.dir/bench/bench_table2_compression.cc.o"
  "CMakeFiles/bench_table2_compression.dir/bench/bench_table2_compression.cc.o.d"
  "bench_table2_compression"
  "bench_table2_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
