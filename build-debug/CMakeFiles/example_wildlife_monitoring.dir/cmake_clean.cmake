file(REMOVE_RECURSE
  "CMakeFiles/example_wildlife_monitoring.dir/examples/wildlife_monitoring.cpp.o"
  "CMakeFiles/example_wildlife_monitoring.dir/examples/wildlife_monitoring.cpp.o.d"
  "example_wildlife_monitoring"
  "example_wildlife_monitoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_wildlife_monitoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
