# Empty compiler generated dependencies file for example_wildlife_monitoring.
# This may be replaced when dependencies are built.
