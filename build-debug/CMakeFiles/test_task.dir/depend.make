# Empty dependencies file for test_task.
# This may be replaced when dependencies are built.
