file(REMOVE_RECURSE
  "CMakeFiles/test_task.dir/tests/test_task.cc.o"
  "CMakeFiles/test_task.dir/tests/test_task.cc.o.d"
  "test_task"
  "test_task.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
