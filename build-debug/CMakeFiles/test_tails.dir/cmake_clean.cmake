file(REMOVE_RECURSE
  "CMakeFiles/test_tails.dir/tests/test_tails.cc.o"
  "CMakeFiles/test_tails.dir/tests/test_tails.cc.o.d"
  "test_tails"
  "test_tails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
