# Empty dependencies file for test_tails.
# This may be replaced when dependencies are built.
