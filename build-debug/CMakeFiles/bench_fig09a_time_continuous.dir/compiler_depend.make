# Empty compiler generated dependencies file for bench_fig09a_time_continuous.
# This may be replaced when dependencies are built.
