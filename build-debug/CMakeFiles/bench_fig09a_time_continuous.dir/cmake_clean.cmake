file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09a_time_continuous.dir/bench/bench_fig09a_time_continuous.cc.o"
  "CMakeFiles/bench_fig09a_time_continuous.dir/bench/bench_fig09a_time_continuous.cc.o.d"
  "bench_fig09a_time_continuous"
  "bench_fig09a_time_continuous.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09a_time_continuous.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
