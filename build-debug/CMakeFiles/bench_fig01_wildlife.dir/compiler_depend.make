# Empty compiler generated dependencies file for bench_fig01_wildlife.
# This may be replaced when dependencies are built.
