file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_wildlife.dir/bench/bench_fig01_wildlife.cc.o"
  "CMakeFiles/bench_fig01_wildlife.dir/bench/bench_fig01_wildlife.cc.o.d"
  "bench_fig01_wildlife"
  "bench_fig01_wildlife.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_wildlife.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
