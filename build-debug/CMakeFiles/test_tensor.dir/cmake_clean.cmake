file(REMOVE_RECURSE
  "CMakeFiles/test_tensor.dir/tests/test_tensor.cc.o"
  "CMakeFiles/test_tensor.dir/tests/test_tensor.cc.o.d"
  "test_tensor"
  "test_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
