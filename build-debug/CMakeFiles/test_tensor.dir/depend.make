# Empty dependencies file for test_tensor.
# This may be replaced when dependencies are built.
