# Empty dependencies file for test_dnn.
# This may be replaced when dependencies are built.
