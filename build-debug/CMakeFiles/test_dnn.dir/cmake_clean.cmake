file(REMOVE_RECURSE
  "CMakeFiles/test_dnn.dir/tests/test_dnn.cc.o"
  "CMakeFiles/test_dnn.dir/tests/test_dnn.cc.o.d"
  "test_dnn"
  "test_dnn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dnn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
