# Empty compiler generated dependencies file for test_sweep.
# This may be replaced when dependencies are built.
