file(REMOVE_RECURSE
  "CMakeFiles/test_sweep.dir/tests/test_sweep.cc.o"
  "CMakeFiles/test_sweep.dir/tests/test_sweep.cc.o.d"
  "test_sweep"
  "test_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
