file(REMOVE_RECURSE
  "CMakeFiles/example_genesis_compress.dir/examples/genesis_compress.cpp.o"
  "CMakeFiles/example_genesis_compress.dir/examples/genesis_compress.cpp.o.d"
  "example_genesis_compress"
  "example_genesis_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_genesis_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
