# Empty compiler generated dependencies file for example_genesis_compress.
# This may be replaced when dependencies are built.
