file(REMOVE_RECURSE
  "libsonic_core.a"
)
