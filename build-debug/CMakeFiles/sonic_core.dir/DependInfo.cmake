
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/app/engine.cc" "CMakeFiles/sonic_core.dir/src/app/engine.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/app/engine.cc.o.d"
  "/root/repo/src/app/experiment.cc" "CMakeFiles/sonic_core.dir/src/app/experiment.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/app/experiment.cc.o.d"
  "/root/repo/src/app/sweep.cc" "CMakeFiles/sonic_core.dir/src/app/sweep.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/app/sweep.cc.o.d"
  "/root/repo/src/app/wildlife.cc" "CMakeFiles/sonic_core.dir/src/app/wildlife.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/app/wildlife.cc.o.d"
  "/root/repo/src/arch/device.cc" "CMakeFiles/sonic_core.dir/src/arch/device.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/arch/device.cc.o.d"
  "/root/repo/src/arch/energy_profile.cc" "CMakeFiles/sonic_core.dir/src/arch/energy_profile.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/arch/energy_profile.cc.o.d"
  "/root/repo/src/arch/power.cc" "CMakeFiles/sonic_core.dir/src/arch/power.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/arch/power.cc.o.d"
  "/root/repo/src/arch/stats.cc" "CMakeFiles/sonic_core.dir/src/arch/stats.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/arch/stats.cc.o.d"
  "/root/repo/src/dnn/dataset.cc" "CMakeFiles/sonic_core.dir/src/dnn/dataset.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/dnn/dataset.cc.o.d"
  "/root/repo/src/dnn/device_net.cc" "CMakeFiles/sonic_core.dir/src/dnn/device_net.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/dnn/device_net.cc.o.d"
  "/root/repo/src/dnn/networks.cc" "CMakeFiles/sonic_core.dir/src/dnn/networks.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/dnn/networks.cc.o.d"
  "/root/repo/src/dnn/spec.cc" "CMakeFiles/sonic_core.dir/src/dnn/spec.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/dnn/spec.cc.o.d"
  "/root/repo/src/fixed/quantize.cc" "CMakeFiles/sonic_core.dir/src/fixed/quantize.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/fixed/quantize.cc.o.d"
  "/root/repo/src/genesis/genesis.cc" "CMakeFiles/sonic_core.dir/src/genesis/genesis.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/genesis/genesis.cc.o.d"
  "/root/repo/src/genesis/impj.cc" "CMakeFiles/sonic_core.dir/src/genesis/impj.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/genesis/impj.cc.o.d"
  "/root/repo/src/kernels/base.cc" "CMakeFiles/sonic_core.dir/src/kernels/base.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/kernels/base.cc.o.d"
  "/root/repo/src/kernels/runner.cc" "CMakeFiles/sonic_core.dir/src/kernels/runner.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/kernels/runner.cc.o.d"
  "/root/repo/src/kernels/sonic.cc" "CMakeFiles/sonic_core.dir/src/kernels/sonic.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/kernels/sonic.cc.o.d"
  "/root/repo/src/kernels/tiled.cc" "CMakeFiles/sonic_core.dir/src/kernels/tiled.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/kernels/tiled.cc.o.d"
  "/root/repo/src/tails/lea.cc" "CMakeFiles/sonic_core.dir/src/tails/lea.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tails/lea.cc.o.d"
  "/root/repo/src/tails/tails.cc" "CMakeFiles/sonic_core.dir/src/tails/tails.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tails/tails.cc.o.d"
  "/root/repo/src/task/runtime.cc" "CMakeFiles/sonic_core.dir/src/task/runtime.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/task/runtime.cc.o.d"
  "/root/repo/src/tensor/decompose.cc" "CMakeFiles/sonic_core.dir/src/tensor/decompose.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tensor/decompose.cc.o.d"
  "/root/repo/src/tensor/matrix.cc" "CMakeFiles/sonic_core.dir/src/tensor/matrix.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tensor/matrix.cc.o.d"
  "/root/repo/src/tensor/nnref.cc" "CMakeFiles/sonic_core.dir/src/tensor/nnref.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tensor/nnref.cc.o.d"
  "/root/repo/src/tensor/sparse.cc" "CMakeFiles/sonic_core.dir/src/tensor/sparse.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/tensor/sparse.cc.o.d"
  "/root/repo/src/util/table.cc" "CMakeFiles/sonic_core.dir/src/util/table.cc.o" "gcc" "CMakeFiles/sonic_core.dir/src/util/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
