# Empty dependencies file for sonic_core.
# This may be replaced when dependencies are built.
