# CMake generated Testfile for 
# Source directory: /root/repo
# Build directory: /root/repo/build-debug
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_arch "/root/repo/build-debug/test_arch")
set_tests_properties(test_arch PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_bench_common "/root/repo/build-debug/test_bench_common")
set_tests_properties(test_bench_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_dnn "/root/repo/build-debug/test_dnn")
set_tests_properties(test_dnn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_experiment "/root/repo/build-debug/test_experiment")
set_tests_properties(test_experiment PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_fixed "/root/repo/build-debug/test_fixed")
set_tests_properties(test_fixed PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_genesis "/root/repo/build-debug/test_genesis")
set_tests_properties(test_genesis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_intermittent "/root/repo/build-debug/test_intermittent")
set_tests_properties(test_intermittent PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_kernels "/root/repo/build-debug/test_kernels")
set_tests_properties(test_kernels PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_lease "/root/repo/build-debug/test_lease")
set_tests_properties(test_lease PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_sweep "/root/repo/build-debug/test_sweep")
set_tests_properties(test_sweep PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tails "/root/repo/build-debug/test_tails")
set_tests_properties(test_tails PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_task "/root/repo/build-debug/test_task")
set_tests_properties(test_task PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_tensor "/root/repo/build-debug/test_tensor")
set_tests_properties(test_tensor PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
add_test(test_util "/root/repo/build-debug/test_util")
set_tests_properties(test_util PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/CMakeLists.txt;137;add_test;/root/repo/CMakeLists.txt;0;")
