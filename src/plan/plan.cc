#include "plan/plan.hh"

#include <algorithm>
#include <set>
#include <sstream>

#include "dnn/zoo.hh"
#include "env/environment.hh"
#include "kernels/runner.hh"
#include "pipeline/pipeline.hh"
#include "util/fmt.hh"
#include "util/json.hh"
#include "util/json_parse.hh"
#include "util/logging.hh"

namespace sonic::plan
{

namespace
{

constexpr const char *kPlanFormat = "sonic-plan-v1";

bool
parseU64Decimal(const std::string &s, u64 *out)
{
    if (s.empty())
        return false;
    u64 v = 0;
    for (const char ch : s) {
        if (ch < '0' || ch > '9')
            return false;
        if (v > (~0ull - static_cast<u64>(ch - '0')) / 10)
            return false;
        v = v * 10 + static_cast<u64>(ch - '0');
    }
    *out = v;
    return true;
}

} // namespace

const char *
objectiveName(Objective objective)
{
    switch (objective) {
      case Objective::DeliveredPerDay: return "delivered-per-day";
      case Objective::InferencesPerDay: return "inferences-per-day";
      case Objective::EnergyPerInference:
        return "energy-per-inference";
    }
    return "?";
}

bool
objectiveFromName(const std::string &name, Objective *out)
{
    for (const auto o :
         {Objective::DeliveredPerDay, Objective::InferencesPerDay,
          Objective::EnergyPerInference}) {
        if (name == objectiveName(o)) {
            *out = o;
            return true;
        }
    }
    return false;
}

f64
objectiveValue(Objective objective, const fleet::DeviceTelemetry &t)
{
    return objectiveValue(objective, t.inferencesCompleted,
                          t.resultsDelivered, t.totalSeconds(),
                          t.energyJ);
}

f64
objectiveValue(Objective objective, u64 inferences, u64 delivered,
               f64 totalSeconds, f64 energyJ)
{
    switch (objective) {
      case Objective::DeliveredPerDay:
        return totalSeconds > 0.0
            ? static_cast<f64>(delivered) * 86400.0 / totalSeconds
            : 0.0;
      case Objective::InferencesPerDay:
        return totalSeconds > 0.0
            ? static_cast<f64>(inferences) * 86400.0 / totalSeconds
            : 0.0;
      case Objective::EnergyPerInference:
        return inferences > 0
            ? -(energyJ / static_cast<f64>(inferences))
            : -kDeadDevicePenaltyJ;
    }
    return 0.0;
}

std::string
Plan::toJson() const
{
    std::ostringstream os;
    const auto string_list =
        [&os](const std::vector<std::string> &values) {
            os << "[";
            for (u64 i = 0; i < values.size(); ++i)
                os << (i > 0 ? ", " : "") << jsonQuote(values[i]);
            os << "]";
        };

    os << "{\n  \"format\": \"" << kPlanFormat << "\",\n"
       << "  \"objective\": \"" << objectiveName(objective)
       << "\",\n"
       << "  \"scenario\": {\n"
       << "    \"name\": " << jsonQuote(scenario) << ",\n"
       << "    \"devices\": " << devices << ",\n"
       << "    \"horizonSeconds\": " << fmtF64(horizonSeconds)
       << ",\n"
       << "    \"maxInferencesPerDevice\": " << maxInferencesPerDevice
       << ",\n"
       << "    \"profile\": " << jsonQuote(profile) << ",\n"
       << "    \"baseSeed\": \"" << baseSeed << "\",\n"
       << "    \"nets\": ";
    string_list(nets);
    os << ",\n    \"impls\": ";
    string_list(impls);
    os << ",\n    \"environments\": ";
    string_list(envLabels);
    os << ",\n    \"pipelines\": ";
    string_list(pipelines);
    os << "\n  },\n  \"choices\": [";
    for (u64 i = 0; i < choices.size(); ++i) {
        const auto &c = choices[i];
        os << (i > 0 ? "," : "") << "\n    {\"env\": "
           << jsonQuote(c.envLabel) << ", \"net\": "
           << jsonQuote(c.net) << ", \"pipeline\": "
           << jsonQuote(c.pipeline) << ", \"impl\": "
           << jsonQuote(c.impl) << ", \"score\": "
           << fmtF64(c.score) << ", \"devices\": "
           << c.devicesObserved << ", \"probed\": "
           << (c.probed ? "true" : "false") << "}";
    }
    os << "\n  ]\n}\n";
    return os.str();
}

bool
Plan::fromJson(const std::string &text, Plan *out, std::string *error)
{
    using jsonp::JsonValue;
    Plan plan;
    JsonValue root;
    if (!jsonp::parseJson(text, &root, error))
        return false;
    const auto *doc = root.object();
    if (doc == nullptr) {
        *error = "plan: document is not a JSON object";
        return false;
    }

    std::string format;
    if (!jsonp::getString(*doc, "format", &format, error, "plan"))
        return false;
    if (format != kPlanFormat) {
        *error = "plan: unknown format '" + format + "' (expected "
               + kPlanFormat + ")";
        return false;
    }
    std::string objective_name;
    if (!jsonp::getString(*doc, "objective", &objective_name, error,
                          "plan"))
        return false;
    if (!objectiveFromName(objective_name, &plan.objective)) {
        *error = "plan: unknown objective '" + objective_name + "'";
        return false;
    }

    const auto scenario_it = doc->find("scenario");
    if (scenario_it == doc->end()
        || scenario_it->second.object() == nullptr) {
        *error = "plan: missing \"scenario\" object";
        return false;
    }
    const auto &sc = *scenario_it->second.object();
    std::string seed_text;
    if (!jsonp::getString(sc, "name", &plan.scenario, error,
                          "plan.scenario")
        || !jsonp::getU32(sc, "devices", &plan.devices, error,
                          "plan.scenario")
        || !jsonp::getF64(sc, "horizonSeconds", &plan.horizonSeconds,
                          error, "plan.scenario")
        || !jsonp::getU32(sc, "maxInferencesPerDevice",
                          &plan.maxInferencesPerDevice, error,
                          "plan.scenario")
        || !jsonp::getString(sc, "profile", &plan.profile, error,
                             "plan.scenario")
        || !jsonp::getString(sc, "baseSeed", &seed_text, error,
                             "plan.scenario"))
        return false;
    if (!parseU64Decimal(seed_text, &plan.baseSeed)) {
        *error = "plan.scenario: baseSeed is not a decimal u64 "
                 "string";
        return false;
    }
    app::ProfileVariant profile_check;
    if (!app::profileFromName(plan.profile, &profile_check)) {
        *error = "plan.scenario: unknown profile '" + plan.profile
               + "'";
        return false;
    }

    const auto read_strings = [&](const char *key,
                                  std::vector<std::string> *dst) {
        const auto it = sc.find(key);
        if (it == sc.end() || it->second.array() == nullptr) {
            *error = std::string("plan.scenario: missing array \"")
                   + key + "\"";
            return false;
        }
        for (const auto &entry : *it->second.array()) {
            if (entry.string() == nullptr) {
                *error = std::string("plan.scenario: non-string "
                                     "entry in \"")
                       + key + "\"";
                return false;
            }
            dst->push_back(*entry.string());
        }
        if (dst->empty()) {
            *error = std::string("plan.scenario: empty \"") + key
                   + "\" axis";
            return false;
        }
        return true;
    };
    if (!read_strings("nets", &plan.nets)
        || !read_strings("impls", &plan.impls)
        || !read_strings("environments", &plan.envLabels)
        || !read_strings("pipelines", &plan.pipelines))
        return false;

    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &net : plan.nets) {
        if (!zoo.contains(net)) {
            *error = "plan: unknown model '" + net
                   + "'; registered models: " + zoo.availableList();
            return false;
        }
    }
    for (const auto &impl : plan.impls) {
        if (kernels::ImplRegistry::instance().find(impl) == nullptr) {
            *error = "plan: unknown kernel '" + impl + "'";
            return false;
        }
    }
    auto &envs = env::EnvRegistry::instance();
    for (const auto &label : plan.envLabels) {
        env::EnvRef ref;
        std::string parse_error;
        if (!env::parseEnvRef(label, &ref, &parse_error)) {
            *error = "plan: " + parse_error;
            return false;
        }
        if (!envs.contains(ref.env)) {
            *error = "plan: unknown environment '" + ref.env
                   + "'; registered environments: "
                   + envs.availableList();
            return false;
        }
    }
    auto &pipes = pipeline::PipelineRegistry::instance();
    for (const auto &pipe : plan.pipelines) {
        if (!pipes.contains(pipe)) {
            *error = "plan: unknown pipeline '" + pipe + "'";
            return false;
        }
    }

    const auto choices_it = doc->find("choices");
    if (choices_it == doc->end()
        || choices_it->second.array() == nullptr) {
        *error = "plan: missing \"choices\" array";
        return false;
    }
    std::set<std::string> expected;
    for (const auto &env : plan.envLabels)
        for (const auto &net : plan.nets)
            for (const auto &pipe : plan.pipelines)
                expected.insert(
                    fleet::FleetPlan::coordinateKey(env, net, pipe));
    std::set<std::string> seen;
    for (const auto &entry : *choices_it->second.array()) {
        const auto *obj = entry.object();
        if (obj == nullptr) {
            *error = "plan: non-object entry in \"choices\"";
            return false;
        }
        PlanChoice choice;
        u64 observed = 0;
        if (!jsonp::getString(*obj, "env", &choice.envLabel, error,
                              "plan.choice")
            || !jsonp::getString(*obj, "net", &choice.net, error,
                                 "plan.choice")
            || !jsonp::getString(*obj, "pipeline", &choice.pipeline,
                                 error, "plan.choice")
            || !jsonp::getString(*obj, "impl", &choice.impl, error,
                                 "plan.choice")
            || !jsonp::getF64(*obj, "score", &choice.score, error,
                              "plan.choice")
            || !jsonp::getU64(*obj, "devices", &observed, error,
                              "plan.choice")
            || !jsonp::getBool(*obj, "probed", &choice.probed, error,
                               "plan.choice"))
            return false;
        choice.devicesObserved = observed;
        const auto key = fleet::FleetPlan::coordinateKey(
            choice.envLabel, choice.net, choice.pipeline);
        if (expected.find(key) == expected.end()) {
            *error = "plan: choice at '" + key
                   + "' names a coordinate outside the scenario "
                     "cross product";
            return false;
        }
        if (!seen.insert(key).second) {
            *error = "plan: duplicate choice for coordinate '" + key
                   + "'";
            return false;
        }
        if (std::find(plan.impls.begin(), plan.impls.end(),
                      choice.impl)
            == plan.impls.end()) {
            *error = "plan: choice at '" + key + "' picks kernel '"
                   + choice.impl
                   + "' outside the candidate impl list";
            return false;
        }
        plan.choices.push_back(std::move(choice));
    }
    if (seen.size() != expected.size()) {
        *error = "plan: choices cover " + std::to_string(seen.size())
               + " of " + std::to_string(expected.size())
               + " scenario coordinates";
        return false;
    }

    *out = std::move(plan);
    return true;
}

fleet::FleetPlan
Plan::toFleetPlan() const
{
    fleet::FleetPlan out;
    out.devices = devices;
    out.horizonSeconds = horizonSeconds;
    out.maxInferencesPerDevice = maxInferencesPerDevice;
    out.baseSeed = baseSeed;
    SONIC_ASSERT(app::profileFromName(profile, &out.profile),
                 "plan profile was validated at parse time");
    out.nets.assign(nets.begin(), nets.end());
    out.impls.clear();
    for (const auto &impl : impls) {
        const auto *info =
            kernels::ImplRegistry::instance().find(impl);
        SONIC_ASSERT(info != nullptr,
                     "plan kernels were validated at parse time");
        out.impls.push_back(info->id);
    }
    out.environments.clear();
    for (const auto &label : envLabels) {
        env::EnvRef ref;
        std::string parse_error;
        SONIC_ASSERT(env::parseEnvRef(label, &ref, &parse_error),
                     "plan environments were validated at parse time");
        out.environments.push_back(std::move(ref));
    }
    out.pipelines.assign(pipelines.begin(), pipelines.end());
    for (const auto &choice : choices) {
        const auto *info =
            kernels::ImplRegistry::instance().find(choice.impl);
        out.implByCoordinate[fleet::FleetPlan::coordinateKey(
            choice.envLabel, choice.net, choice.pipeline)] =
            info->id;
    }
    return out;
}

fleet::FleetPlan
Plan::toBaselineFleetPlan(const std::string &impl) const
{
    // Same scenario, every device on one kernel: a single-entry impl
    // distribution maps the (independent) impl hash lane to `impl` on
    // every device while the env/net/pipeline/seed deals stay those of
    // the planned fleet — device-for-device comparable.
    fleet::FleetPlan out = toFleetPlan();
    out.implByCoordinate.clear();
    const auto *info = kernels::ImplRegistry::instance().find(impl);
    SONIC_ASSERT(info != nullptr,
                 "baseline kernel must be a registered name");
    out.impls = {info->id};
    return out;
}

app::SweepPlan
Plan::toSweepPlan() const
{
    std::vector<std::string> used_nets, used_impls, used_envs;
    const auto add_unique = [](std::vector<std::string> *values,
                               const std::string &v) {
        if (std::find(values->begin(), values->end(), v)
            == values->end())
            values->push_back(v);
    };
    for (const auto &choice : choices) {
        add_unique(&used_nets, choice.net);
        add_unique(&used_impls, choice.impl);
        add_unique(&used_envs, choice.envLabel);
    }
    app::SweepPlan sweep;
    sweep.nets(std::vector<dnn::NetRef>(used_nets.begin(),
                                        used_nets.end()))
        .implNames(used_impls)
        .environmentLabels(used_envs)
        .baseSeed(baseSeed);
    return sweep;
}

} // namespace sonic::plan
