/**
 * @file
 * The deployment-plan artifact: which kernel every fleet coordinate
 * (environment x model x pipeline) should run, plus the scenario facts
 * the decision was made for — the JSON file `sonic_plan` emits, the
 * fleet simulator replays (sonic_fleet --from-plan), and the sweep CLI
 * drills into (sonic_sweep --from-plan).
 *
 * The artifact is self-contained on purpose: a plan names its axes,
 * seed, horizon and objective, so a confirming run months later
 * rebuilds the exact fleet the decision was made for instead of
 * trusting the caller to pass matching flags. Serialization is strict
 * both ways — toJson() emits round-trip-precision floats and the base
 * seed as a decimal STRING (u64 seeds exceed the 53 integer bits a
 * JSON number carries), fromJson() rejects unknown formats, unknown
 * kernels/environments, and choices that do not cover the scenario's
 * coordinate cross product.
 */

#ifndef SONIC_PLAN_PLAN_HH
#define SONIC_PLAN_PLAN_HH

#include <string>
#include <vector>

#include "app/sweep.hh"
#include "fleet/fleet.hh"

namespace sonic::plan
{

/** What the planner maximizes (fleet mean of a per-device value —
 * separable across coordinates, which is what makes the per-coordinate
 * argmax optimal; see planner.hh). */
enum class Objective : u8
{
    /** Mean delivered results/day per device (the default: an
     * inference that never reaches a base station helps nobody). */
    DeliveredPerDay = 0,
    /** Mean completed inferences/day per device. */
    InferencesPerDay = 1,
    /** Mean energy per inference per device, minimized. Devices that
     * complete nothing contribute a large fixed penalty (see
     * plan::kDeadDevicePenaltyJ) so a kernel that spends no energy by
     * never finishing cannot look efficient. */
    EnergyPerInference = 2,
};

/** Per-device J/inference charged to devices with zero completed
 * inferences under the EnergyPerInference objective. */
constexpr f64 kDeadDevicePenaltyJ = 1.0e6;

const char *objectiveName(Objective objective);
bool objectiveFromName(const std::string &name, Objective *out);

/** The per-device value the objective averages (higher = better;
 * energy is negated). The single definition shared by the estimator,
 * the decision, and the confirming run's scoring. */
f64 objectiveValue(Objective objective,
                   const fleet::DeviceTelemetry &device);

/** The same value from the scalar fields alone (the columnar ingest
 * path, which never materializes a DeviceTelemetry). Bit-identical to
 * the row overload: both evaluate the same expressions. */
f64 objectiveValue(Objective objective, u64 inferences, u64 delivered,
                   f64 totalSeconds, f64 energyJ);

/** One coordinate's decided kernel, with the evidence behind it. */
struct PlanChoice
{
    std::string envLabel;  ///< env::EnvRef label ("solar@1mF")
    std::string net;
    std::string pipeline;
    std::string impl;      ///< registered kernel name ("SONIC")
    /** The chosen cell's estimated objective score (higher = better;
     * energy objectives are negated means). */
    f64 score = 0.0;
    /** Devices behind the estimate. */
    u64 devicesObserved = 0;
    /** Whether the estimate came from probe runs (paired, scenario
     * seeds) rather than ingested hash-dealt telemetry. */
    bool probed = false;
};

/** The plan artifact (see the file comment). */
struct Plan
{
    Objective objective = Objective::DeliveredPerDay;

    /** @name Scenario facts the decision was made for. */
    /// @{
    std::string scenario; ///< named scenario, or "" for a custom mix
    u32 devices = 0;
    f64 horizonSeconds = 0.0;
    u32 maxInferencesPerDevice = 0;
    std::string profile;
    u64 baseSeed = 0;
    std::vector<std::string> nets;
    std::vector<std::string> impls;     ///< candidate kernels, in order
    std::vector<std::string> envLabels; ///< EnvRef labels
    std::vector<std::string> pipelines;
    /// @}

    /** One choice per coordinate, in envLabels x nets x pipelines
     * cross-product order. */
    std::vector<PlanChoice> choices;

    std::string toJson() const;

    /** Parse + validate a plan artifact. Rejects unknown formats,
     * unregistered kernel/environment/model/pipeline names, and a
     * choice list that does not exactly cover the coordinate cross
     * product. */
    static bool fromJson(const std::string &text, Plan *out,
                         std::string *error);

    /** Rebuild the fleet this plan assigns: the scenario axes plus
     * FleetPlan::implByCoordinate from the choices. */
    fleet::FleetPlan toFleetPlan() const;

    /** The same fleet with every device on one kernel (a uniform
     * single-kernel baseline; `impl` must be one of `impls`). */
    fleet::FleetPlan toBaselineFleetPlan(const std::string &impl) const;

    /**
     * The plan-aware sweep helper: a SweepPlan whose axes are the
     * distinct models, kernels, and environments the plan's choices
     * actually USE — the decided slice of the grid rather than the
     * full candidate cross product — so per-layer/per-op telemetry
     * for a planned deployment is one sonic_sweep --from-plan away.
     */
    app::SweepPlan toSweepPlan() const;
};

} // namespace sonic::plan

#endif // SONIC_PLAN_PLAN_HH
