/**
 * @file
 * The decision layer: probe scheduling, the per-coordinate assignment
 * search, and the confirming run.
 *
 * Why per-coordinate argmax is the whole search: every objective is
 * the fleet MEAN of a per-device value (plan::objectiveValue), the
 * hash-dealt assignment draws each device's kernel from a lane
 * independent of its environment/model/pipeline/seed lanes, and a
 * planned fleet overrides only that kernel lane. So the objective
 * decomposes into one independent term per (environment, model,
 * pipeline) coordinate, the greedy per-coordinate argmax IS the global
 * optimum, and an exhaustive enumeration can only agree — decide()
 * cross-checks exactly that on small grids.
 *
 * Probes are paired: one uniform single-kernel fleet per candidate
 * kernel, over the scenario's own device deals and seeds (a prefix of
 * the population when capped). Every kernel is measured on the same
 * devices, so cross-kernel comparisons carry no sampling noise; with
 * an uncapped probe (--probe-devices=0 → the full scenario), the cell
 * estimates are the exact per-coordinate populations and the decided
 * plan provably ties-or-beats every uniform baseline on the
 * confirming run.
 */

#ifndef SONIC_PLAN_PLANNER_HH
#define SONIC_PLAN_PLANNER_HH

#include <string>
#include <vector>

#include "plan/estimator.hh"
#include "plan/plan.hh"

namespace sonic::plan
{

/** What to plan for: a fleet (axes, size, seed, horizon) and its
 * optional scenario name (recorded in the artifact). */
struct Scenario
{
    std::string name;
    fleet::FleetPlan plan;
};

struct PlannerOptions
{
    Objective objective = Objective::DeliveredPerDay;

    /** Run probe fleets for kernels whose cells are under-covered
     * (false = decide from ingested telemetry alone). */
    bool probe = true;

    /** Devices per probe fleet; 0 = the full scenario population
     * (exact cell values, provable confirmation). Capped at the
     * scenario's device count either way. */
    u32 probeDevices = 256;

    /** A (coordinate, kernel) cell with fewer devices than this is
     * under-covered and triggers a probe of that kernel. */
    u64 minCellDevices = 8;

    /** Cross-check greedy against exhaustive enumeration when
     * impls^coordinates does not exceed this. */
    u64 exhaustiveLimit = 4096;

    /** Execution options for probe and confirming fleets. */
    fleet::FleetOptions fleet;
};

/** decide() outcome facts (the plan itself is the artifact). */
struct DecideInfo
{
    u64 probeFleets = 0;    ///< uniform probe runs executed
    u64 probeDevices = 0;   ///< devices simulated across them
    bool exhaustiveChecked = false;
};

/**
 * Probe (optionally) and decide: fill under-covered cells via paired
 * uniform probe fleets, then pick each coordinate's kernel by strict
 * score improvement in candidate order (ties keep the earliest
 * kernel in the scenario's impl list, so the plan is deterministic).
 * Returns false with a diagnostic when some coordinate has no data
 * for any candidate (e.g. --no-probe with telemetry that never
 * visited it).
 */
bool decide(const Scenario &scenario, PlanModel *model,
            const PlannerOptions &options, Plan *out,
            DecideInfo *info, std::string *error);

/** One uniform single-kernel baseline's confirming result. */
struct BaselineResult
{
    std::string impl;
    f64 objective = 0.0; ///< fleet mean per-device objective value
};

/** The confirming run's outcome. */
struct ConfirmResult
{
    /** Fleet mean per-device objective value of the planned fleet. */
    f64 planObjective = 0.0;
    /** The planned fleet's FleetSummary::toJson() artifact
     * (byte-identical across thread counts, like runFleet itself). */
    std::string planSummaryJson;
    std::vector<BaselineResult> baselines;
    /** planObjective >= every baseline objective (objectives are
     * oriented so higher is always better). */
    bool planWins = false;
};

/**
 * Run the planned fleet and every uniform single-kernel baseline,
 * scoring each by the plan's objective. The deployment the plan
 * promised, measured — not estimated.
 */
ConfirmResult confirm(const Plan &plan,
                      const fleet::FleetOptions &options);

} // namespace sonic::plan

#endif // SONIC_PLAN_PLANNER_HH
