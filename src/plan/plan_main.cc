/**
 * @file
 * sonic_plan — the deployment planner CLI.
 *
 * Closes the telemetry→decision loop: given a scenario (device mix,
 * environments, candidate models/kernels, objective), decide which
 * kernel every fleet coordinate should run and prove the decision with
 * a confirming fleet run against every uniform single-kernel baseline:
 *
 *     sonic_fleet --scenario=mixed-1k --sonicz=mixed.sonicz
 *     sonic_plan --scenario=mixed-1k --ingest=mixed.sonicz \
 *                --plan=plan.json --confirm
 *     sonic_fleet --scenario=mixed-1k --from-plan=plan.json
 *
 * Three modes share one model of the fleet:
 *   - ingest:  stream .sonicz fleet telemetry into per-coordinate
 *              estimates (no row materialization);
 *   - probe:   fill under-covered cells with paired uniform probe
 *              fleets over the scenario's own device deals;
 *   - decide:  per-coordinate argmax (greedy == global optimum, see
 *              src/plan/planner.hh), cross-checked exhaustively on
 *              small grids, then optionally confirmed by running the
 *              planned fleet and every baseline.
 *
 * Exits 1 when the confirming run fails to tie-or-beat some baseline,
 * so CI can gate on the exit code alone. Exits 2 on usage errors.
 */

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "plan/planner.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;
using cli::splitCsv;

int
usage()
{
    std::cerr
        << "usage: sonic_plan [--scenario=NAME]\n"
           "                  [--devices=N] [--nets=A,B,...]\n"
           "                  [--impls=SONIC,TAILS,...]\n"
           "                  [--envs=solar@1mF,rf-paper,...]\n"
           "                  [--pipelines=wildlife,...]\n"
           "                  [--horizon=SECONDS]\n"
           "                  [--max-inferences=K] [--seed=S]\n"
           "                  [--objective=delivered-per-day|\n"
           "                     inferences-per-day|energy-per-inference]\n"
           "                  [--ingest=FILE.sonicz]... [--no-probe]\n"
           "                  [--probe-devices=N (0=full fleet)]\n"
           "                  [--min-cell-devices=N]\n"
           "                  [--plan=OUT.json] [--confirm]\n"
           "                  [--confirm-summary=PATH]\n"
           "                  [--from-plan=PLAN.json]\n"
           "                  [--threads=T] [--no-cache]\n"
           "                  [--list-scenarios] [--list-objectives]\n";
    return 2;
}

/** Natural (human) display of an objective's mean per-device value:
 * energy objectives are internally negated so higher is always better;
 * people want to read J/inference. */
f64
displayValue(plan::Objective objective, f64 value)
{
    return objective == plan::Objective::EnergyPerInference ? -value
                                                            : value;
}

const char *
displayColumn(plan::Objective objective)
{
    switch (objective) {
    case plan::Objective::DeliveredPerDay:
        return "delivered/dev-day";
    case plan::Objective::InferencesPerDay:
        return "inf/dev-day";
    case plan::Objective::EnergyPerInference:
        return "J/inf";
    }
    return "objective";
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::FleetPlan fleet_plan;
    plan::PlannerOptions options;
    std::string scenario_name;
    std::string plan_path, confirm_summary_path, from_plan_path;
    std::vector<std::string> ingest_paths;
    bool confirm = false;
    std::string value;

    // Two passes, like sonic_fleet: --scenario must resolve before
    // axis overrides apply, whatever the flag order was.
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        for (const auto &arg : args) {
            if (consumeFlag(arg, "--scenario", &value)) {
                bool found = false;
                for (const auto &scenario :
                     fleet::namedScenarios()) {
                    if (scenario.name == value) {
                        fleet_plan = scenario.plan;
                        scenario_name = value;
                        found = true;
                    }
                }
                if (!found) {
                    std::cerr << "unknown scenario '" << value
                              << "' (--list-scenarios)\n";
                    return 2;
                }
            }
        }

        for (const auto &arg : args) {
            if (consumeFlag(arg, "--scenario", &value)) {
                continue; // handled above
            } else if (arg == "--list-scenarios") {
                for (const auto &scenario : fleet::namedScenarios())
                    std::cout << scenario.name << " — "
                              << scenario.description << "\n";
                return 0;
            } else if (arg == "--list-objectives") {
                for (const auto objective :
                     {plan::Objective::DeliveredPerDay,
                      plan::Objective::InferencesPerDay,
                      plan::Objective::EnergyPerInference})
                    std::cout << plan::objectiveName(objective)
                              << "\n";
                return 0;
            } else if (consumeFlag(arg, "--devices", &value)) {
                fleet_plan.devices =
                    static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--nets", &value)) {
                fleet_plan.nets = splitCsv(value);
            } else if (consumeFlag(arg, "--impls", &value)) {
                fleet_plan.impls.clear();
                for (const auto &name : splitCsv(value)) {
                    const auto *info =
                        kernels::ImplRegistry::instance().find(name);
                    if (info == nullptr)
                        fatal("unknown implementation '", name, "'");
                    fleet_plan.impls.push_back(info->id);
                }
            } else if (consumeFlag(arg, "--envs", &value)) {
                fleet_plan.environments.clear();
                for (const auto &label : splitCsv(value)) {
                    env::EnvRef ref;
                    std::string error;
                    if (!env::parseEnvRef(label, &ref, &error))
                        fatal(error);
                    fleet_plan.environments.push_back(std::move(ref));
                }
            } else if (consumeFlag(arg, "--pipelines", &value)) {
                fleet_plan.pipelines = splitCsv(value);
            } else if (consumeFlag(arg, "--horizon", &value)) {
                fleet_plan.horizonSeconds = std::stod(value);
            } else if (consumeFlag(arg, "--max-inferences", &value)) {
                fleet_plan.maxInferencesPerDevice =
                    static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--seed", &value)) {
                fleet_plan.baseSeed = std::stoull(value);
            } else if (consumeFlag(arg, "--objective", &value)) {
                if (!plan::objectiveFromName(value,
                                             &options.objective)) {
                    std::cerr << "unknown objective '" << value
                              << "' (--list-objectives)\n";
                    return 2;
                }
            } else if (consumeFlag(arg, "--ingest", &value)) {
                ingest_paths.push_back(value);
            } else if (arg == "--no-probe") {
                options.probe = false;
            } else if (consumeFlag(arg, "--probe-devices", &value)) {
                options.probeDevices =
                    static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--min-cell-devices",
                                   &value)) {
                options.minCellDevices = std::stoull(value);
            } else if (consumeFlag(arg, "--plan", &value)) {
                plan_path = value;
            } else if (arg == "--confirm") {
                confirm = true;
            } else if (consumeFlag(arg, "--confirm-summary",
                                   &value)) {
                confirm_summary_path = value;
            } else if (consumeFlag(arg, "--from-plan", &value)) {
                from_plan_path = value;
            } else if (consumeFlag(arg, "--threads", &value)) {
                options.fleet.threads =
                    static_cast<u32>(std::stoul(value));
            } else if (arg == "--no-cache") {
                options.fleet.useCache = false;
            } else {
                return usage();
            }
        }
    } catch (const std::exception &) { // bad numeric flag value
        return usage();
    }

    plan::Plan plan;
    if (!from_plan_path.empty()) {
        // Confirming an existing artifact: the plan carries its own
        // scenario (axes, seed, horizon), so axis flags do not apply.
        std::ifstream in(from_plan_path);
        if (!in) {
            std::cerr << "cannot read " << from_plan_path << "\n";
            return 2;
        }
        std::ostringstream text;
        text << in.rdbuf();
        std::string error;
        if (!plan::Plan::fromJson(text.str(), &plan, &error)) {
            std::cerr << "bad plan " << from_plan_path << ": "
                      << error << "\n";
            return 2;
        }
        options.objective = plan.objective;
        confirm = true;
        std::cout << "plan: " << from_plan_path << " ("
                  << plan.choices.size() << " coordinates, objective "
                  << plan::objectiveName(plan.objective) << ")\n";
    } else {
        plan::Scenario scenario{scenario_name, fleet_plan};
        plan::PlanModel model(options.objective);

        for (const auto &path : ingest_paths) {
            std::ifstream in(path, std::ios::binary);
            if (!in) {
                std::cerr << "cannot read " << path << "\n";
                return 2;
            }
            std::string error;
            if (!model.ingestSonicz(in, &error)) {
                std::cerr << "cannot ingest " << path << ": "
                          << error << "\n";
                return 2;
            }
        }
        if (model.rowsIngested() > 0)
            std::cout << "ingested " << model.rowsIngested()
                      << " telemetry rows from "
                      << ingest_paths.size() << " file(s)\n";

        plan::DecideInfo info;
        std::string error;
        if (!plan::decide(scenario, &model, options, &plan, &info,
                          &error)) {
            std::cerr << error << "\n";
            return 1;
        }
        if (info.probeFleets > 0)
            std::cout << "probed " << info.probeFleets
                      << " kernel(s), " << info.probeDevices
                      << " probe devices total\n";
        if (info.exhaustiveChecked)
            std::cout << "decision cross-checked against exhaustive "
                         "enumeration\n";

        Table table({"environment", "net", "pipeline", "kernel",
                     displayColumn(plan.objective), "devices",
                     "source"});
        for (const auto &choice : plan.choices) {
            table.row()
                .cell(choice.envLabel)
                .cell(choice.net)
                .cell(choice.pipeline)
                .cell(choice.impl)
                .cell(displayValue(plan.objective, choice.score), 4)
                .cell(choice.devicesObserved)
                .cell(choice.probed ? "probe" : "telemetry");
        }
        table.print(std::cout);

        if (!plan_path.empty()) {
            std::ofstream out(plan_path);
            if (!out) {
                std::cerr << "cannot write " << plan_path << "\n";
                return 2;
            }
            out << plan.toJson();
            std::cout << "plan written to " << plan_path << "\n";
        }
    }

    if (!confirm)
        return 0;

    const auto result = plan::confirm(plan, options.fleet);
    Table table({"assignment", displayColumn(plan.objective),
                 "verdict"});
    table.row()
        .cell("planned")
        .cell(displayValue(plan.objective, result.planObjective), 4)
        .cell("-");
    for (const auto &baseline : result.baselines) {
        const bool beaten =
            result.planObjective >= baseline.objective;
        table.row()
            .cell("all-" + baseline.impl)
            .cell(displayValue(plan.objective, baseline.objective), 4)
            .cell(beaten ? "plan >=" : "plan LOSES");
    }
    table.print(std::cout);

    if (!confirm_summary_path.empty()) {
        std::ofstream out(confirm_summary_path);
        if (!out) {
            std::cerr << "cannot write " << confirm_summary_path
                      << "\n";
            return 2;
        }
        out << result.planSummaryJson;
        std::cout << "confirming fleet summary written to "
                  << confirm_summary_path << "\n";
    }

    if (!result.planWins) {
        std::cerr << "plan loses to a uniform baseline — the "
                     "estimates that produced it disagree with the "
                     "confirming run (probe more devices, or ingest "
                     "fresher telemetry)\n";
        return 1;
    }
    std::cout << "plan ties-or-beats every uniform single-kernel "
                 "baseline\n";
    return 0;
}
