/**
 * @file
 * The planner's estimate table: per-cell — one cell per (environment,
 * model, pipeline) coordinate x candidate kernel — accumulators of
 * per-device objective values, filled from two sources that are kept
 * separate on purpose:
 *
 *  - ingested telemetry (.sonicz fleet files, folded block-by-block
 *    through telemetry::readFleetBlocks without materializing rows):
 *    the hash-dealt fleet splits each coordinate's devices across the
 *    candidate kernels, so each cell sees a disjoint SAMPLE of the
 *    coordinate's population;
 *  - probe runs (planner.cc): uniform single-kernel fleets over the
 *    scenario's own device deals, so every candidate kernel is
 *    measured on the SAME devices and seeds — a paired comparison
 *    with no cross-kernel sampling noise.
 *
 * Scoring prefers probe data when a cell has any (paired beats
 * sampled); ingested telemetry both provides the no-simulation
 * decision path (sonic_plan --no-probe) and seeds cell coverage
 * accounting.
 */

#ifndef SONIC_PLAN_ESTIMATOR_HH
#define SONIC_PLAN_ESTIMATOR_HH

#include <iosfwd>
#include <map>
#include <string>

#include "fleet/fleet.hh"
#include "plan/plan.hh"

namespace sonic::plan
{

/** One source's accumulator over a cell's devices. */
struct CellAccum
{
    u64 devices = 0;
    u64 inferences = 0;
    u64 delivered = 0;
    u64 dnfDevices = 0;
    f64 objectiveSum = 0.0; ///< Σ per-device objectiveValue()

    /** Mean per-device objective value (higher = better). */
    f64
    score() const
    {
        return devices > 0
            ? objectiveSum / static_cast<f64>(devices)
            : 0.0;
    }
};

/** A cell's evidence from both sources. */
struct CellEstimate
{
    CellAccum telemetry;
    CellAccum probe;

    /** The accumulator the decision scores: probe data when present
     * (paired, scenario seeds), ingested telemetry otherwise. */
    const CellAccum &
    preferred() const
    {
        return probe.devices > 0 ? probe : telemetry;
    }

    bool hasData() const { return preferred().devices > 0; }
};

/**
 * The estimate table. Cells are created on first touch and keyed by
 * (coordinate key, kernel name); the fold is sequential and in row /
 * device order, so the table — and every decision made from it — is
 * deterministic for a given input regardless of thread counts
 * anywhere upstream.
 */
class PlanModel
{
  public:
    explicit PlanModel(Objective objective) : objective_(objective) {}

    Objective objective() const { return objective_; }

    /**
     * Fold a fleet .sonicz stream into the telemetry accumulators,
     * block-by-block (no row materialization). Returns false with a
     * diagnostic on malformed input or on a sweep-schema file.
     */
    bool ingestSonicz(std::istream &in, std::string *error);

    /** Fold one probe device (planner probe runs). */
    void addProbe(const fleet::DeviceTelemetry &device);

    /** The cell for (coordinate, kernel), or null when untouched. */
    const CellEstimate *cell(const std::string &coordinateKey,
                             const std::string &impl) const;

    /** Rows folded by ingestSonicz across all calls. */
    u64 rowsIngested() const { return rowsIngested_; }

    /** Devices folded by addProbe across all calls. */
    u64 probeDevices() const { return probeDevices_; }

  private:
    Objective objective_;
    /** coordinate key -> kernel name -> estimate. */
    std::map<std::string, std::map<std::string, CellEstimate>> cells_;
    u64 rowsIngested_ = 0;
    u64 probeDevices_ = 0;
};

} // namespace sonic::plan

#endif // SONIC_PLAN_ESTIMATOR_HH
