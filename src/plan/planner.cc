#include "plan/planner.hh"

#include <algorithm>
#include <array>

#include "env/environment.hh"
#include "kernels/runner.hh"
#include "util/logging.hh"

namespace sonic::plan
{

namespace
{

/** Accumulates the fleet mean of per-device objective values in
 * device-index order (runFleet delivers telemetry ordered, so the sum
 * is bit-identical for every thread count). */
class ObjectiveMeanSink : public fleet::FleetSink
{
  public:
    explicit ObjectiveMeanSink(Objective objective)
        : objective_(objective)
    {
    }

    void
    add(const fleet::DeviceTelemetry &t) override
    {
        sum_ += objectiveValue(objective_, t);
        ++devices_;
    }

    f64
    mean() const
    {
        return devices_ > 0 ? sum_ / static_cast<f64>(devices_)
                            : 0.0;
    }

  private:
    Objective objective_;
    f64 sum_ = 0.0;
    u64 devices_ = 0;
};

/** Feeds probe telemetry into the model as it streams. */
class ProbeSink : public fleet::FleetSink
{
  public:
    explicit ProbeSink(PlanModel *model) : model_(model) {}

    void
    add(const fleet::DeviceTelemetry &t) override
    {
        model_->addProbe(t);
    }

  private:
    PlanModel *model_;
};

/** The scenario's coordinates in envLabels x nets x pipelines order
 * (the order choices are emitted in). */
struct CoordinateList
{
    std::vector<std::string> keys;
    std::vector<std::array<std::string, 3>> parts; ///< env/net/pipe
};

CoordinateList
coordinatesOf(const fleet::FleetPlan &plan)
{
    CoordinateList coords;
    for (const auto &env : plan.environments) {
        const std::string label = env.label();
        for (const auto &net : plan.nets) {
            for (const auto &pipe : plan.pipelines) {
                coords.keys.push_back(
                    fleet::FleetPlan::coordinateKey(label, net,
                                                    pipe));
                coords.parts.push_back({label, net, pipe});
            }
        }
    }
    return coords;
}

} // namespace

bool
decide(const Scenario &scenario, PlanModel *model,
       const PlannerOptions &options, Plan *out, DecideInfo *info,
       std::string *error)
{
    const fleet::FleetPlan &fleet_plan = scenario.plan;
    fleet_plan.validate();
    SONIC_ASSERT(fleet_plan.implByCoordinate.empty(),
                 "the planning scenario must be hash-dealt (planning "
                 "an already-planned fleet is circular)");
    SONIC_ASSERT(model->objective() == options.objective,
                 "model and planner objectives disagree");

    const CoordinateList coords = coordinatesOf(fleet_plan);
    std::vector<std::string> impl_names;
    for (const auto impl : fleet_plan.impls)
        impl_names.emplace_back(kernels::implName(impl));

    DecideInfo local_info;
    DecideInfo &out_info = info != nullptr ? *info : local_info;
    out_info = DecideInfo{};

    // Probe pass: one paired uniform fleet per kernel that still has
    // an under-covered cell. Probe devices are a prefix of the
    // scenario's own population (same deals, same seeds — the impl
    // lane is independent of the rest), so every probed kernel is
    // measured on identical devices.
    if (options.probe) {
        const u32 probe_devices = std::min(
            options.probeDevices == 0 ? fleet_plan.devices
                                      : options.probeDevices,
            fleet_plan.devices);
        for (u64 i = 0; i < impl_names.size(); ++i) {
            bool under_covered = false;
            for (const auto &key : coords.keys) {
                const auto *cell = model->cell(key, impl_names[i]);
                if (cell == nullptr
                    || cell->preferred().devices
                           < options.minCellDevices) {
                    under_covered = true;
                    break;
                }
            }
            if (!under_covered)
                continue;
            fleet::FleetPlan probe = fleet_plan;
            probe.devices = probe_devices;
            probe.impls = {fleet_plan.impls[i]};
            ProbeSink sink(model);
            fleet::runFleet(probe, options.fleet, {&sink});
            ++out_info.probeFleets;
            out_info.probeDevices += probe_devices;
        }
    }

    // Greedy per-coordinate argmax, candidate order, strict
    // improvement: ties keep the earliest kernel in the scenario's
    // impl list. Separability (see the header) makes this the global
    // optimum, not a heuristic.
    Plan plan;
    plan.objective = options.objective;
    plan.scenario = scenario.name;
    plan.devices = fleet_plan.devices;
    plan.horizonSeconds = fleet_plan.horizonSeconds;
    plan.maxInferencesPerDevice = fleet_plan.maxInferencesPerDevice;
    plan.profile = app::profileName(fleet_plan.profile);
    plan.baseSeed = fleet_plan.baseSeed;
    plan.nets.assign(fleet_plan.nets.begin(), fleet_plan.nets.end());
    plan.impls = impl_names;
    for (const auto &env : fleet_plan.environments)
        plan.envLabels.push_back(env.label());
    plan.pipelines = fleet_plan.pipelines;

    std::vector<u64> chosen(coords.keys.size(), 0);
    for (u64 c = 0; c < coords.keys.size(); ++c) {
        bool have = false;
        u64 best = 0;
        f64 best_score = 0.0;
        for (u64 i = 0; i < impl_names.size(); ++i) {
            const auto *cell =
                model->cell(coords.keys[c], impl_names[i]);
            if (cell == nullptr || !cell->hasData())
                continue;
            const f64 score = cell->preferred().score();
            if (!have || score > best_score) {
                have = true;
                best = i;
                best_score = score;
            }
        }
        if (!have) {
            if (error != nullptr)
                *error = "planner: no data for coordinate '"
                       + coords.keys[c]
                       + "' under any candidate kernel (ingest "
                         "telemetry that visits it, or enable "
                         "probes)";
            return false;
        }
        chosen[c] = best;
        const auto *cell =
            model->cell(coords.keys[c], impl_names[best]);
        PlanChoice choice;
        choice.envLabel = coords.parts[c][0];
        choice.net = coords.parts[c][1];
        choice.pipeline = coords.parts[c][2];
        choice.impl = impl_names[best];
        choice.score = best_score;
        choice.devicesObserved = cell->preferred().devices;
        choice.probed = cell->probe.devices > 0;
        plan.choices.push_back(std::move(choice));
    }

    // Exhaustive fallback on small grids: enumerate every assignment
    // lexicographically and keep the first strict maximum of the
    // summed scores. Separability says it must agree with greedy —
    // this is the cross-check that the search is the optimum, kept
    // cheap by the impls^coordinates bound.
    f64 total_assignments = 1.0;
    for (u64 c = 0; c < coords.keys.size(); ++c) {
        total_assignments *=
            static_cast<f64>(impl_names.size());
        if (total_assignments
            > static_cast<f64>(options.exhaustiveLimit))
            break;
    }
    if (total_assignments
        <= static_cast<f64>(options.exhaustiveLimit)) {
        std::vector<u64> odometer(coords.keys.size(), 0);
        std::vector<u64> best_assignment;
        f64 best_total = 0.0;
        bool have_best = false;
        for (;;) {
            f64 total = 0.0;
            bool feasible = true;
            for (u64 c = 0; c < coords.keys.size(); ++c) {
                const auto *cell = model->cell(
                    coords.keys[c], impl_names[odometer[c]]);
                if (cell == nullptr || !cell->hasData()) {
                    feasible = false;
                    break;
                }
                total += cell->preferred().score();
            }
            if (feasible && (!have_best || total > best_total)) {
                have_best = true;
                best_total = total;
                best_assignment = odometer;
            }
            u64 c = coords.keys.size();
            while (c > 0) {
                --c;
                if (++odometer[c] < impl_names.size())
                    break;
                odometer[c] = 0;
                if (c == 0) {
                    c = ~0ull;
                    break;
                }
            }
            if (c == ~0ull || coords.keys.empty())
                break;
        }
        SONIC_ASSERT(have_best && best_assignment == chosen,
                     "exhaustive enumeration disagrees with the "
                     "greedy per-coordinate argmax — the objective "
                     "stopped being separable");
        out_info.exhaustiveChecked = true;
    }

    *out = std::move(plan);
    return true;
}

ConfirmResult
confirm(const Plan &plan, const fleet::FleetOptions &options)
{
    ConfirmResult result;

    ObjectiveMeanSink plan_sink(plan.objective);
    const auto summary =
        fleet::runFleet(plan.toFleetPlan(), options, {&plan_sink});
    result.planObjective = plan_sink.mean();
    result.planSummaryJson = summary.toJson();

    result.planWins = true;
    for (const auto &impl : plan.impls) {
        ObjectiveMeanSink baseline_sink(plan.objective);
        fleet::runFleet(plan.toBaselineFleetPlan(impl), options,
                        {&baseline_sink});
        BaselineResult baseline;
        baseline.impl = impl;
        baseline.objective = baseline_sink.mean();
        if (result.planObjective < baseline.objective)
            result.planWins = false;
        result.baselines.push_back(std::move(baseline));
    }
    return result;
}

} // namespace sonic::plan
