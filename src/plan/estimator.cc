#include "plan/estimator.hh"

#include <istream>

#include "env/environment.hh"
#include "kernels/runner.hh"
#include "telemetry/sonicz.hh"

namespace sonic::plan
{

namespace
{

void
fold(CellAccum *cell, f64 objective_value, u64 inferences,
     u64 delivered, bool dnf)
{
    ++cell->devices;
    cell->inferences += inferences;
    cell->delivered += delivered;
    if (dnf)
        ++cell->dnfDevices;
    cell->objectiveSum += objective_value;
}

} // namespace

bool
PlanModel::ingestSonicz(std::istream &in, std::string *error)
{
    namespace fc = telemetry::fleetcol;
    const auto on_block = [&](const telemetry::FleetBlockView &v) {
        for (u64 r = 0; r < v.rows(); ++r) {
            const u64 inferences = v.intAt(fc::kInferences, r);
            const u64 delivered =
                v.intAt(fc::kResultsDelivered, r);
            const f64 total_seconds = v.f64At(fc::kLiveSeconds, r)
                + v.f64At(fc::kDeadSeconds, r);
            const f64 value = objectiveValue(
                objective_, inferences, delivered, total_seconds,
                v.f64At(fc::kEnergyJ, r));
            const env::EnvRef env_ref{v.str(fc::kEnv, r),
                                      v.f64At(fc::kEnvCap, r)};
            auto &cell =
                cells_[fleet::FleetPlan::coordinateKey(
                           env_ref.label(), v.str(fc::kNet, r),
                           v.str(fc::kPipeline, r))]
                      [v.str(fc::kImpl, r)];
            fold(&cell.telemetry, value, inferences, delivered,
                 v.str(fc::kStatus, r) == "dnf");
            ++rowsIngested_;
        }
    };
    return telemetry::readFleetBlocks(in, on_block, nullptr, error);
}

void
PlanModel::addProbe(const fleet::DeviceTelemetry &t)
{
    const auto &a = t.assignment;
    auto &cell = cells_[fleet::FleetPlan::coordinateKey(
                            a.environment.label(), a.net, a.pipeline)]
                       [std::string(kernels::implName(a.impl))];
    fold(&cell.probe, objectiveValue(objective_, t),
         t.inferencesCompleted, t.resultsDelivered,
         t.diedNonTerminating);
    ++probeDevices_;
}

const CellEstimate *
PlanModel::cell(const std::string &coordinateKey,
                const std::string &impl) const
{
    const auto coord_it = cells_.find(coordinateKey);
    if (coord_it == cells_.end())
        return nullptr;
    const auto impl_it = coord_it->second.find(impl);
    if (impl_it == coord_it->second.end())
        return nullptr;
    return &impl_it->second;
}

} // namespace sonic::plan
