#include "trace/trace.hh"

#include <algorithm>
#include <cstdio>
#include <ostream>

#include "arch/device.hh"
#include "util/logging.hh"

namespace sonic::trace
{

namespace
{

constexpr u32 kNumKinds = static_cast<u32>(TraceEventKind::NumKinds);

constexpr const char *kKindNames[kNumKinds] = {
    "round-begin",   "round-end",    "sense-begin",   "sense-end",
    "infer-begin",   "infer-end",    "transmit-begin", "transmit-end",
    "task-commit",   "tx-boundary",  "ack-delivered", "lease-grant",
    "lease-settle",  "power-failure", "recharge",      "reboot",
    "layer-enter",   "part-switch",
};

constexpr const char *kBoundaryNames[] = {
    "result-commit", "attempt-advance", "ack-commit"};

TraceEventKind
spanBeginKind(arch::ProbeSpan span)
{
    switch (span) {
      case arch::ProbeSpan::Round: return TraceEventKind::RoundBegin;
      case arch::ProbeSpan::Sense: return TraceEventKind::SenseBegin;
      case arch::ProbeSpan::Infer: return TraceEventKind::InferBegin;
      case arch::ProbeSpan::Transmit:
        return TraceEventKind::TransmitBegin;
    }
    return TraceEventKind::RoundBegin; // unreachable
}

TraceEventKind
spanEndKind(arch::ProbeSpan span)
{
    switch (span) {
      case arch::ProbeSpan::Round: return TraceEventKind::RoundEnd;
      case arch::ProbeSpan::Sense: return TraceEventKind::SenseEnd;
      case arch::ProbeSpan::Infer: return TraceEventKind::InferEnd;
      case arch::ProbeSpan::Transmit:
        return TraceEventKind::TransmitEnd;
    }
    return TraceEventKind::RoundEnd; // unreachable
}

TraceEventKind
instantKind(arch::ProbeInstant instant)
{
    switch (instant) {
      case arch::ProbeInstant::TaskCommit:
        return TraceEventKind::TaskCommit;
      case arch::ProbeInstant::TxBoundary:
        return TraceEventKind::TxBoundary;
      case arch::ProbeInstant::AckDelivered:
        return TraceEventKind::AckDelivered;
    }
    return TraceEventKind::TaskCommit; // unreachable
}

} // namespace

const char *
kindName(TraceEventKind kind)
{
    const u32 k = static_cast<u32>(kind);
    return k < kNumKinds ? kKindNames[k] : "unknown";
}

// --- TraceRecorder ---------------------------------------------------

void
TraceRecorder::record(TraceEventKind kind, u32 arg, f64 t, f64 energyJ,
                      f64 value, std::string label)
{
    telemetry::TraceRow row;
    row.device = device_;
    row.kind = static_cast<u32>(kind);
    row.arg = arg;
    row.t = t;
    row.energyJ = energyJ;
    row.value = value;
    row.label = std::move(label);
    rows_.push_back(std::move(row));
}

void
TraceRecorder::push(const arch::Device &dev, TraceEventKind kind,
                    u32 arg, f64 value, std::string label)
{
    record(kind, arg, baseT_ + dev.totalSeconds(),
           baseE_ + dev.consumedJoules(), value, std::move(label));
}

void
TraceRecorder::onLeaseGrant(const arch::Device &dev, f64 grantedNj,
                            u64 grantedOps)
{
    const u32 ops = grantedOps > ~u32{0}
        ? ~u32{0}
        : static_cast<u32>(grantedOps);
    push(dev, TraceEventKind::LeaseGrant, ops, grantedNj * 1e-9);
}

void
TraceRecorder::onLeaseSettle(const arch::Device &dev, f64 usedNj)
{
    push(dev, TraceEventKind::LeaseSettle, 0, usedNj * 1e-9);
}

void
TraceRecorder::onPowerFailure(const arch::Device &dev)
{
    push(dev, TraceEventKind::PowerFailure, 0, 0.0);
}

void
TraceRecorder::onRecharge(const arch::Device &dev, f64 deadSeconds)
{
    // deadSeconds is already booked into the device clock, so the
    // stamped time is the end of the dead window: span [t-value, t].
    push(dev, TraceEventKind::Recharge, 0, deadSeconds);
}

void
TraceRecorder::onReboot(const arch::Device &dev, u64 rebootIndex)
{
    const u32 idx = rebootIndex > ~u32{0}
        ? ~u32{0}
        : static_cast<u32>(rebootIndex);
    push(dev, TraceEventKind::Reboot, idx, 0.0);
}

void
TraceRecorder::onLayer(const arch::Device &dev, u16 layer)
{
    // The probe fires before the switch takes effect, so the stamp is
    // the end of the previous layer's window and the label names the
    // layer being entered.
    push(dev, TraceEventKind::LayerEnter, layer, 0.0,
         layer < dev.stats().numLayers() ? dev.stats().layerName(layer)
                                         : std::string("?"));
}

void
TraceRecorder::onPart(const arch::Device &dev, arch::Part part)
{
    push(dev, TraceEventKind::PartSwitch, static_cast<u32>(part), 0.0,
         part == arch::Part::Kernel ? "kernel" : "control");
}

void
TraceRecorder::onSpanBegin(const arch::Device &dev,
                           arch::ProbeSpan span, u32 arg)
{
    push(dev, spanBeginKind(span), arg, 0.0);
}

void
TraceRecorder::onSpanEnd(const arch::Device &dev, arch::ProbeSpan span,
                         u32 arg, f64 value)
{
    push(dev, spanEndKind(span), arg, value);
}

void
TraceRecorder::onInstant(const arch::Device &dev,
                         arch::ProbeInstant instant, u32 arg)
{
    push(dev, instantKind(instant), arg, 0.0);
}

// --- TraceCollector --------------------------------------------------

TraceRecorder *
TraceCollector::recorderFor(u64 device_index)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = recorders_[device_index];
    if (!slot)
        slot = std::make_unique<TraceRecorder>(device_index);
    return slot.get();
}

std::vector<const TraceRecorder *>
TraceCollector::ordered() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<const TraceRecorder *> out;
    out.reserve(recorders_.size());
    for (const auto &[index, rec] : recorders_)
        out.push_back(rec.get());
    return out; // std::map iterates in device-index order
}

u64
TraceCollector::devices() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return recorders_.size();
}

u64
TraceCollector::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    u64 n = 0;
    for (const auto &[index, rec] : recorders_)
        n += rec->rows().size();
    return n;
}

void
TraceCollector::write(std::ostream &os, u32 encoderThreads) const
{
    writeTrace(os, ordered(), encoderThreads);
}

// --- Container I/O ---------------------------------------------------

void
writeTrace(std::ostream &os,
           const std::vector<const TraceRecorder *> &recorders,
           u32 encoderThreads)
{
    telemetry::SoniczWriter writer(os, telemetry::SchemaKind::Trace, {},
                                   encoderThreads);
    for (const TraceRecorder *rec : recorders)
        for (const auto &row : rec->rows())
            telemetry::appendTraceRow(writer, row);
    writer.finish();
}

bool
readTrace(std::istream &in, std::vector<telemetry::TraceRow> *rows,
          telemetry::SoniczInfo *info, std::string *error)
{
    return telemetry::readTraceRows(
        in,
        [rows](const telemetry::TraceRow &row) {
            if (rows != nullptr)
                rows->push_back(row);
        },
        info, error);
}

// --- Chrome trace-event export ---------------------------------------

namespace
{

/** Tracks within one device's process. */
enum : u32
{
    kTidPipeline = 0,
    kTidLayers = 1,
    kTidPower = 2
};

void
jsonEscape(const std::string &s, std::string *out)
{
    for (const char c : s) {
        if (c == '"' || c == '\\') {
            out->push_back('\\');
            out->push_back(c);
        } else if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x",
                          static_cast<unsigned>(c));
            out->append(buf);
        } else {
            out->push_back(c);
        }
    }
}

/** Microsecond timestamp with nanosecond resolution. */
std::string
micros(f64 seconds)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.3f", seconds * 1e6);
    return buf;
}

std::string
jsonF64(f64 v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

class ChromeWriter
{
  public:
    explicit ChromeWriter(std::ostream &os) : os_(os)
    {
        os_ << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    }

    void
    meta(u64 pid, i64 tid, const char *what, const std::string &name)
    {
        std::string escaped;
        jsonEscape(name, &escaped);
        sep();
        os_ << "{\"ph\":\"M\",\"pid\":" << pid;
        if (tid >= 0)
            os_ << ",\"tid\":" << tid;
        os_ << ",\"name\":\"" << what << "\",\"args\":{\"name\":\""
            << escaped << "\"}}";
    }

    void
    span(char ph, u64 pid, u32 tid, const char *name, f64 t,
         f64 energyJ, u32 arg)
    {
        sep();
        os_ << "{\"ph\":\"" << ph << "\",\"pid\":" << pid
            << ",\"tid\":" << tid << ",\"name\":\"" << name
            << "\",\"ts\":" << micros(t)
            << ",\"args\":{\"energyJ\":" << jsonF64(energyJ)
            << ",\"arg\":" << arg << "}}";
    }

    void
    complete(u64 pid, u32 tid, const std::string &name, f64 t, f64 dur,
             f64 energyJ)
    {
        std::string escaped;
        jsonEscape(name, &escaped);
        sep();
        os_ << "{\"ph\":\"X\",\"pid\":" << pid << ",\"tid\":" << tid
            << ",\"name\":\"" << escaped << "\",\"ts\":" << micros(t)
            << ",\"dur\":" << micros(dur)
            << ",\"args\":{\"energyJ\":" << jsonF64(energyJ) << "}}";
    }

    void
    instant(u64 pid, u32 tid, const char *name, f64 t, u32 arg,
            const char *argName)
    {
        sep();
        os_ << "{\"ph\":\"i\",\"s\":\"t\",\"pid\":" << pid
            << ",\"tid\":" << tid << ",\"name\":\"" << name
            << "\",\"ts\":" << micros(t) << ",\"args\":{\"" << argName
            << "\":" << arg << "}}";
    }

    void
    finish()
    {
        os_ << "]}\n";
    }

  private:
    void
    sep()
    {
        if (!first_)
            os_ << ",";
        first_ = false;
    }

    std::ostream &os_;
    bool first_ = true;
};

/** One device's open layer window (for derived per-layer spans). */
struct OpenLayer
{
    bool open = false;
    std::string label;
    f64 t = 0.0;
    f64 energyJ = 0.0;
};

} // namespace

void
exportChromeTrace(const std::vector<telemetry::TraceRow> &rows,
                  std::ostream &os)
{
    ChromeWriter w(os);

    // Per-device state: which devices have emitted metadata, and the
    // currently open layer window (layer spans are derived from
    // consecutive layer-enter stamps).
    std::map<u64, OpenLayer> layers;

    const auto close_layer = [&](u64 pid, OpenLayer &ol, f64 t,
                                 f64 energyJ) {
        if (!ol.open)
            return;
        // Suppress zero-width "other" filler windows; everything with
        // either duration or energy keeps its span.
        if (ol.label != "other" || t > ol.t)
            w.complete(pid, kTidLayers, ol.label, ol.t, t - ol.t,
                       energyJ - ol.energyJ);
        ol.open = false;
    };

    for (const auto &row : rows) {
        const u64 pid = row.device;
        if (layers.find(pid) == layers.end()) {
            layers[pid]; // mark seen
            w.meta(pid, -1, "process_name",
                   "device " + std::to_string(pid));
            w.meta(pid, kTidPipeline, "thread_name", "pipeline");
            w.meta(pid, kTidLayers, "thread_name", "layers");
            w.meta(pid, kTidPower, "thread_name", "power");
        }
        OpenLayer &ol = layers[pid];
        const auto kind = static_cast<TraceEventKind>(row.kind);
        switch (kind) {
          case TraceEventKind::RoundBegin:
            w.span('B', pid, kTidPipeline, "round", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::RoundEnd:
            close_layer(pid, ol, row.t, row.energyJ);
            w.span('E', pid, kTidPipeline, "round", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::SenseBegin:
            w.span('B', pid, kTidPipeline, "sense", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::SenseEnd:
            w.span('E', pid, kTidPipeline, "sense", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::InferBegin:
            w.span('B', pid, kTidPipeline, "infer", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::InferEnd:
            close_layer(pid, ol, row.t, row.energyJ);
            w.span('E', pid, kTidPipeline, "infer", row.t, row.energyJ,
                   row.arg);
            break;
          case TraceEventKind::TransmitBegin:
            w.span('B', pid, kTidPipeline, "transmit", row.t,
                   row.energyJ, row.arg);
            break;
          case TraceEventKind::TransmitEnd:
            w.span('E', pid, kTidPipeline, "transmit", row.t,
                   row.energyJ, row.arg);
            break;
          case TraceEventKind::TaskCommit:
            w.instant(pid, kTidPipeline, "commit", row.t, row.arg,
                      "next");
            break;
          case TraceEventKind::TxBoundary:
            w.instant(pid, kTidPipeline,
                      row.arg < 3 ? kBoundaryNames[row.arg]
                                  : "tx-boundary",
                      row.t, row.arg, "boundary");
            break;
          case TraceEventKind::AckDelivered:
            w.instant(pid, kTidPipeline, "ack", row.t, row.arg,
                      "attempt");
            break;
          case TraceEventKind::LeaseGrant:
            w.instant(pid, kTidPower, "lease-grant", row.t, row.arg,
                      "ops");
            break;
          case TraceEventKind::LeaseSettle:
            w.instant(pid, kTidPower, "lease-settle", row.t, 0,
                      "arg");
            break;
          case TraceEventKind::PowerFailure:
            close_layer(pid, ol, row.t, row.energyJ);
            w.instant(pid, kTidPower, "power-failure", row.t, 0,
                      "arg");
            break;
          case TraceEventKind::Recharge:
            w.complete(pid, kTidPower, "recharge", row.t - row.value,
                       row.value, 0.0);
            break;
          case TraceEventKind::Reboot:
            w.instant(pid, kTidPower, "reboot", row.t, row.arg,
                      "index");
            break;
          case TraceEventKind::LayerEnter:
            close_layer(pid, ol, row.t, row.energyJ);
            ol.open = true;
            ol.label = row.label.empty() ? "?" : row.label;
            ol.t = row.t;
            ol.energyJ = row.energyJ;
            break;
          case TraceEventKind::PartSwitch:
            break; // too fine-grained for the timeline; --flame uses it
          default:
            break;
        }
    }
    for (auto &[pid, ol] : layers)
        close_layer(pid, ol, ol.t, ol.energyJ);
    w.finish();
}

// --- Flame rollup ----------------------------------------------------

void
writeFlameRollup(const std::vector<telemetry::TraceRow> &rows,
                 std::ostream &os)
{
    // Walk each device's cumulative energy stamps in order and charge
    // every delta to the (layer, part) active when it was burned.
    // Devices start attributed to "other"/control, matching the
    // Device's boot attribution.
    struct Cursor
    {
        std::string layer = "other";
        bool kernel = false;
        f64 energyJ = 0.0;
        bool seen = false;
    };
    struct Bucket
    {
        f64 kernelJ = 0.0;
        f64 controlJ = 0.0;
    };
    std::map<u64, Cursor> cursors;
    std::map<std::string, Bucket> buckets;
    f64 total = 0.0;

    for (const auto &row : rows) {
        Cursor &c = cursors[row.device];
        if (c.seen && row.energyJ > c.energyJ) {
            const f64 delta = row.energyJ - c.energyJ;
            Bucket &b = buckets[c.layer];
            (c.kernel ? b.kernelJ : b.controlJ) += delta;
            total += delta;
        }
        c.energyJ = row.energyJ;
        c.seen = true;
        const auto kind = static_cast<TraceEventKind>(row.kind);
        if (kind == TraceEventKind::LayerEnter)
            c.layer = row.label.empty() ? "?" : row.label;
        else if (kind == TraceEventKind::PartSwitch)
            c.kernel = row.arg
                == static_cast<u32>(arch::Part::Kernel);
    }

    std::vector<std::pair<std::string, Bucket>> sorted(buckets.begin(),
                                                       buckets.end());
    std::sort(sorted.begin(), sorted.end(),
              [](const auto &a, const auto &b) {
                  const f64 ta = a.second.kernelJ + a.second.controlJ;
                  const f64 tb = b.second.kernelJ + b.second.controlJ;
                  if (ta != tb)
                      return ta > tb;
                  return a.first < b.first;
              });

    char line[256];
    std::snprintf(line, sizeof(line), "%-20s %14s %14s %14s %7s\n",
                  "layer", "kernel J", "control J", "total J",
                  "share");
    os << line;
    for (const auto &[name, b] : sorted) {
        const f64 layer_total = b.kernelJ + b.controlJ;
        std::snprintf(line, sizeof(line),
                      "%-20s %14.6e %14.6e %14.6e %6.2f%%\n",
                      name.c_str(), b.kernelJ, b.controlJ, layer_total,
                      total > 0.0 ? 100.0 * layer_total / total : 0.0);
        os << line;
    }
    std::snprintf(line, sizeof(line), "%-20s %14s %14s %14.6e %7s\n",
                  "total", "", "", total, "100%");
    os << line;
}

// --- Summary ---------------------------------------------------------

void
writeTraceSummary(const std::vector<telemetry::TraceRow> &rows,
                  std::ostream &os)
{
    std::map<u64, f64> device_energy;
    u64 counts[kNumKinds] = {};
    f64 dead_seconds = 0.0;
    f64 horizon = 0.0;
    for (const auto &row : rows) {
        if (row.kind < kNumKinds)
            ++counts[row.kind];
        if (static_cast<TraceEventKind>(row.kind)
            == TraceEventKind::Recharge)
            dead_seconds += row.value;
        auto &e = device_energy[row.device];
        e = std::max(e, row.energyJ);
        horizon = std::max(horizon, row.t);
    }
    f64 total_energy = 0.0;
    for (const auto &[device, e] : device_energy)
        total_energy += e;

    os << "devices:        " << device_energy.size() << "\n"
       << "events:         " << rows.size() << "\n"
       << "rounds:         "
       << counts[static_cast<u32>(TraceEventKind::RoundBegin)] << "\n"
       << "inferences:     "
       << counts[static_cast<u32>(TraceEventKind::InferBegin)] << "\n"
       << "task commits:   "
       << counts[static_cast<u32>(TraceEventKind::TaskCommit)] << "\n"
       << "power failures: "
       << counts[static_cast<u32>(TraceEventKind::PowerFailure)]
       << "\n"
       << "reboots:        "
       << counts[static_cast<u32>(TraceEventKind::Reboot)] << "\n"
       << "acks:           "
       << counts[static_cast<u32>(TraceEventKind::AckDelivered)]
       << "\n"
       << "dead time:      " << dead_seconds << " s\n"
       << "last stamp:     " << horizon << " s\n"
       << "energy:         " << total_energy << " J\n";
}

} // namespace sonic::trace
