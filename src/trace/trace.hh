/**
 * @file
 * Intermittence-aware event tracing and energy profiling. A
 * TraceRecorder implements arch::TraceProbe for one sampled device and
 * turns the probe callbacks into timestamped rows — round and stage
 * spans, kernel layer/part attribution switches, lease grant/settle,
 * two-phase task commits, power failures, recharge dead-time, reboots —
 * each stamped with the device clock and the cumulative consumed
 * energy, so per-layer and per-op energy attribution falls out of span
 * deltas without touching the simulation's accounting.
 *
 * Traces persist in `.sonictrace` files: the exact .sonicz chunked
 * container (telemetry/sonicz.hh) with SchemaKind::Trace, inheriting
 * its per-chunk checksums, chained footer digest, block index, and
 * corruption rejection. `sonic_trace` exports Chrome trace-event JSON
 * (load in Perfetto / chrome://tracing; one process per device) and
 * rolls up per-layer energy (--flame).
 *
 * Fleet runs sample 1-in-N devices (FleetPlan::traceEvery); sampled
 * devices bypass the round/lifetime caches so memoization state is
 * untouched and the recorded telemetry stays bit-identical.
 */

#ifndef SONIC_TRACE_TRACE_HH
#define SONIC_TRACE_TRACE_HH

#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "arch/probe.hh"
#include "telemetry/sonicz.hh"
#include "util/types.hh"

namespace sonic::trace
{

/**
 * Event kinds stored in TraceRow::kind. Begin/end pairs bracket spans;
 * the rest are instants. Values are the on-disk encoding — append only.
 */
enum class TraceEventKind : u32
{
    RoundBegin = 0,    ///< arg = round index
    RoundEnd = 1,      ///< value = joules consumed by the round
    SenseBegin = 2,    //
    SenseEnd = 3,      ///< value = cumulative device joules at end
    InferBegin = 4,    ///< arg = kernels::Impl
    InferEnd = 5,      ///< value = cumulative device joules at end
    TransmitBegin = 6, //
    TransmitEnd = 7,   ///< value = cumulative device joules at end
    TaskCommit = 8,    ///< arg = next task id
    TxBoundary = 9,    ///< arg = pipeline::TxBoundary
    AckDelivered = 10, ///< arg = delivery attempt index
    LeaseGrant = 11,   ///< value = granted joules
    LeaseSettle = 12,  ///< value = joules actually drawn
    PowerFailure = 13, //
    Recharge = 14,     ///< value = dead seconds; span is [t-value, t]
    Reboot = 15,       ///< arg = reboot index (per round)
    LayerEnter = 16,   ///< arg = layer id, label = layer name
    PartSwitch = 17,   ///< arg = arch::Part, label = "kernel"/"control"
    NumKinds
};

/** Stable lowercase name for one event kind ("round-begin", ...). */
const char *kindName(TraceEventKind kind);

/**
 * Probe implementation recording one device's events as TraceRows.
 * The fleet constructs a fresh Device per round, so timestamps and
 * energy restart from zero each round; setBase() supplies the device's
 * accrued lifetime offsets so the recorded clocks are monotonic across
 * the whole deployment. Not thread-safe: exactly one worker simulates
 * a device at a time.
 */
class TraceRecorder final : public arch::TraceProbe
{
  public:
    explicit TraceRecorder(u64 device_index) : device_(device_index) {}

    u64 deviceIndex() const { return device_; }

    /** Lifetime offsets (accrued seconds / joules before the round the
     * probe is about to observe). Call before each round. */
    void
    setBase(f64 base_seconds, f64 base_joules)
    {
        baseT_ = base_seconds;
        baseE_ = base_joules;
    }

    /** Record an event that happens outside any Device — the fleet
     * loop's inter-round recharge and the final horizon-clipped sleep.
     * `t`/`energyJ` are absolute lifetime stamps. */
    void record(TraceEventKind kind, u32 arg, f64 t, f64 energyJ,
                f64 value, std::string label = {});

    const std::vector<telemetry::TraceRow> &
    rows() const
    {
        return rows_;
    }

    /** @name arch::TraceProbe */
    /// @{
    void onLeaseGrant(const arch::Device &dev, f64 grantedNj,
                      u64 grantedOps) override;
    void onLeaseSettle(const arch::Device &dev, f64 usedNj) override;
    void onPowerFailure(const arch::Device &dev) override;
    void onRecharge(const arch::Device &dev, f64 deadSeconds) override;
    void onReboot(const arch::Device &dev, u64 rebootIndex) override;
    void onLayer(const arch::Device &dev, u16 layer) override;
    void onPart(const arch::Device &dev, arch::Part part) override;
    void onSpanBegin(const arch::Device &dev, arch::ProbeSpan span,
                     u32 arg) override;
    void onSpanEnd(const arch::Device &dev, arch::ProbeSpan span,
                   u32 arg, f64 value) override;
    void onInstant(const arch::Device &dev, arch::ProbeInstant instant,
                   u32 arg) override;
    /// @}

  private:
    /** Stamp an event with the device's lifetime clock/energy. */
    void push(const arch::Device &dev, TraceEventKind kind, u32 arg,
              f64 value, std::string label = {});

    u64 device_;
    f64 baseT_ = 0.0;
    f64 baseE_ = 0.0;
    std::vector<telemetry::TraceRow> rows_;
};

/**
 * Owns the recorders of one fleet run. Workers fetch their device's
 * recorder under a mutex once per device; the recorder itself is then
 * used lock-free by that worker. write() emits devices in index order,
 * so the bytes are identical no matter how many fleet threads ran.
 */
class TraceCollector
{
  public:
    /** Create (or fetch) the recorder for one device. Thread-safe. */
    TraceRecorder *recorderFor(u64 device_index);

    /** Recorders in device-index order. */
    std::vector<const TraceRecorder *> ordered() const;

    u64 devices() const;
    u64 events() const;

    /** Write all recorded events as a .sonictrace stream. */
    void write(std::ostream &os, u32 encoderThreads = 0) const;

  private:
    mutable std::mutex mutex_;
    std::map<u64, std::unique_ptr<TraceRecorder>> recorders_;
};

/** Serialize recorders (device order) into a .sonictrace stream. */
void writeTrace(std::ostream &os,
                const std::vector<const TraceRecorder *> &recorders,
                u32 encoderThreads = 0);

/** Load every row of a .sonictrace stream (checksum-verified). */
bool readTrace(std::istream &in,
               std::vector<telemetry::TraceRow> *rows,
               telemetry::SoniczInfo *info, std::string *error);

/**
 * Export rows as Chrome trace-event JSON (chrome://tracing, Perfetto).
 * One process per device with three tracks: pipeline spans + commit
 * instants, derived per-layer spans, and power events (lease, failure,
 * recharge, reboot). Rows must be in recorded order per device.
 */
void exportChromeTrace(const std::vector<telemetry::TraceRow> &rows,
                       std::ostream &os);

/**
 * Per-layer energy rollup: walks each device's cumulative energy
 * stamps and attributes every delta to the layer/part active when it
 * was consumed. Text table sorted by energy, shares of the total.
 */
void writeFlameRollup(const std::vector<telemetry::TraceRow> &rows,
                      std::ostream &os);

/** Compact whole-trace statistics (event counts, rounds, reboots,
 * commits, dead time, total energy). */
void writeTraceSummary(const std::vector<telemetry::TraceRow> &rows,
                       std::ostream &os);

} // namespace sonic::trace

#endif // SONIC_TRACE_TRACE_HH
