/**
 * @file
 * sonic_trace — inspect and export .sonictrace event files.
 *
 *     sonic_trace run.sonictrace                       # summary
 *     sonic_trace run.sonictrace --export=chrome --out=run.json
 *     sonic_trace run.sonictrace --flame               # energy rollup
 *     sonic_trace run.sonictrace --summary
 *
 * The Chrome export loads in chrome://tracing or Perfetto: one process
 * per traced device with pipeline, layers, and power tracks. --flame
 * charges every joule between consecutive cumulative-energy stamps to
 * the layer/part that was active, reproducing the paper's per-layer
 * energy split from a recorded deployment instead of a bench run.
 * Corrupt or truncated inputs are rejected by the container checksums.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "trace/trace.hh"
#include "util/cli.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;

int
usage()
{
    std::cerr
        << "usage: sonic_trace FILE.sonictrace [--export=chrome]\n"
           "                   [--flame] [--summary] [--out=PATH]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string input_path, out_path, export_format, value;
    bool flame = false;
    bool summary = false;

    for (const std::string arg :
         std::vector<std::string>(argv + 1, argv + argc)) {
        if (consumeFlag(arg, "--export", &value)) {
            if (value != "chrome") {
                std::cerr << "unknown export format '" << value
                          << "' (chrome)\n";
                return 2;
            }
            export_format = value;
        } else if (consumeFlag(arg, "--out", &value)) {
            out_path = value;
        } else if (arg == "--flame") {
            flame = true;
        } else if (arg == "--summary") {
            summary = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            return usage();
        }
    }
    if (input_path.empty())
        return usage();

    std::ifstream in(input_path, std::ios::binary);
    if (!in) {
        std::cerr << "cannot read " << input_path << "\n";
        return 2;
    }

    std::vector<telemetry::TraceRow> rows;
    telemetry::SoniczInfo info;
    std::string error;
    if (!trace::readTrace(in, &rows, &info, &error)) {
        std::cerr << "sonic_trace: " << error << "\n";
        return 1;
    }

    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path, std::ios::binary);
        if (!out_file) {
            std::cerr << "cannot write " << out_path << "\n";
            return 2;
        }
    }
    std::ostream &out = out_path.empty() ? std::cout : out_file;

    if (export_format == "chrome") {
        trace::exportChromeTrace(rows, out);
        return 0;
    }
    if (flame) {
        trace::writeFlameRollup(rows, out);
        return 0;
    }
    // Default (and explicit --summary): compact statistics.
    (void)summary;
    trace::writeTraceSummary(rows, out);
    return 0;
}
