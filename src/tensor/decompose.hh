/**
 * @file
 * Low-rank decompositions used by GENESIS' "separation" compression:
 *  - truncated SVD for fully-connected layers (m x n -> m x k, k x n),
 *  - rank-1 CP/Tucker (HOOI-style alternating power iteration) for
 *    convolutional filter banks (m x kh x kw -> m + kh + kw "3x 1-D"
 *    filters, the paper's Table 2 "HOOI 3x1D Conv" rows).
 */

#ifndef SONIC_TENSOR_DECOMPOSE_HH
#define SONIC_TENSOR_DECOMPOSE_HH

#include <vector>

#include "tensor/matrix.hh"
#include "util/types.hh"

namespace sonic::tensor
{

/** Result of a symmetric eigendecomposition, eigenvalues descending. */
struct EigenResult
{
    std::vector<f64> values;
    Matrix vectors; ///< column i is the eigenvector for values[i]
};

/**
 * Jacobi eigendecomposition of a symmetric matrix. O(n^3) per sweep;
 * intended for the small Gram matrices (n <= a few hundred) that arise
 * when decomposing our layers.
 */
EigenResult symmetricEigen(const Matrix &sym, u32 max_sweeps = 64,
                           f64 tol = 1e-12);

/** Truncated SVD A ~= U diag(S) V^T with k columns. */
struct SvdResult
{
    Matrix u;              ///< m x k
    std::vector<f64> s;    ///< k singular values, descending
    Matrix v;              ///< n x k

    /** Reconstruct the rank-k approximation. */
    Matrix reconstruct() const;

    /** Parameter count of the factored form (m*k + k*n). */
    u64 factoredParams() const;
};

/**
 * Rank-k SVD computed via eigendecomposition of the smaller Gram
 * matrix (numerically adequate for compression use).
 */
SvdResult truncatedSvd(const Matrix &a, u32 k);

/** Rank-1 CP decomposition T ~= lambda * a (x) b (x) c. */
struct Cp1Result
{
    f64 lambda = 0.0;
    std::vector<f64> a; ///< dim0 (output channels)
    std::vector<f64> b; ///< dim1 (filter rows)
    std::vector<f64> c; ///< dim2 (filter cols)

    /** Reconstruct the rank-1 tensor. */
    Tensor3 reconstruct(u32 d0, u32 d1, u32 d2) const;

    /** Parameter count of the factored form (d0 + d1 + d2 + 1). */
    u64 factoredParams() const;
};

/**
 * Alternating power iteration (the rank-(1,1,1) special case of the
 * higher-order orthogonal iteration the paper cites) for a 3-D tensor.
 */
Cp1Result cpRank1(const Tensor3 &t, u32 max_iters = 100, f64 tol = 1e-10);

/** Relative error of a rank-1 approximation. */
f64 cpRank1Error(const Tensor3 &t, const Cp1Result &cp);

} // namespace sonic::tensor

#endif // SONIC_TENSOR_DECOMPOSE_HH
