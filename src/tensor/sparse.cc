#include "tensor/sparse.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace sonic::tensor
{

namespace
{

u64
pruneVec(std::vector<f64> &data, f64 threshold)
{
    u64 kept = 0;
    for (f64 &v : data) {
        if (std::fabs(v) < threshold)
            v = 0.0;
        else
            ++kept;
    }
    return kept;
}

u64
pruneVecToFraction(std::vector<f64> &data, f64 keep_fraction)
{
    SONIC_ASSERT(keep_fraction >= 0.0 && keep_fraction <= 1.0);
    const u64 n = data.size();
    const u64 keep = static_cast<u64>(std::llround(keep_fraction
                                                   * static_cast<f64>(n)));
    if (keep >= n)
        return n;
    if (keep == 0) {
        std::fill(data.begin(), data.end(), 0.0);
        return 0;
    }
    std::vector<f64> mags(n);
    for (u64 i = 0; i < n; ++i)
        mags[i] = std::fabs(data[i]);
    std::nth_element(mags.begin(), mags.begin() + (n - keep), mags.end());
    const f64 cutoff = mags[n - keep];
    // Zero strictly-below-cutoff entries, then trim ties deterministically
    // until exactly `keep` survive.
    u64 kept = 0;
    for (f64 &v : data) {
        if (std::fabs(v) < cutoff)
            v = 0.0;
        else
            ++kept;
    }
    for (f64 &v : data) {
        if (kept <= keep)
            break;
        if (v != 0.0 && std::fabs(v) == cutoff) {
            v = 0.0;
            --kept;
        }
    }
    return kept;
}

} // namespace

u64
pruneThreshold(Matrix &m, f64 threshold)
{
    return pruneVec(m.data(), threshold);
}

u64
pruneToFraction(Matrix &m, f64 keep_fraction)
{
    return pruneVecToFraction(m.data(), keep_fraction);
}

u64
pruneThreshold(Tensor3 &t, f64 threshold)
{
    return pruneVec(t.data(), threshold);
}

u64
pruneToFraction(Tensor3 &t, f64 keep_fraction)
{
    return pruneVecToFraction(t.data(), keep_fraction);
}

namespace
{

/** Count the non-zeros of a dense matrix (reserve() pre-pass, so the
 * conversion loops below never reallocate mid-build). */
u64
countNonZero(const Matrix &m)
{
    u64 nnz = 0;
    for (const f64 v : m.data())
        nnz += v != 0.0;
    return nnz;
}

} // namespace

CscMatrix
CscMatrix::fromDense(const Matrix &m)
{
    CscMatrix out;
    out.rows = m.rows();
    out.cols = m.cols();
    out.colPtr.assign(m.cols() + 1, 0);
    const u64 nnz = countNonZero(m);
    out.rowIdx.reserve(nnz);
    out.values.reserve(nnz);
    for (u32 c = 0; c < m.cols(); ++c) {
        for (u32 r = 0; r < m.rows(); ++r) {
            if (m.at(r, c) != 0.0) {
                out.rowIdx.push_back(r);
                out.values.push_back(m.at(r, c));
            }
        }
        out.colPtr[c + 1] = static_cast<u32>(out.values.size());
    }
    return out;
}

std::vector<f64>
CscMatrix::matvec(const std::vector<f64> &x) const
{
    SONIC_ASSERT(x.size() == cols);
    std::vector<f64> y(rows, 0.0);
    for (u32 c = 0; c < cols; ++c) {
        const f64 xc = x[c];
        if (xc == 0.0)
            continue;
        for (u32 e = colPtr[c]; e < colPtr[c + 1]; ++e)
            y[rowIdx[e]] += values[e] * xc;
    }
    return y;
}

Matrix
CscMatrix::toDense() const
{
    Matrix m(rows, cols);
    for (u32 c = 0; c < cols; ++c)
        for (u32 e = colPtr[c]; e < colPtr[c + 1]; ++e)
            m.at(rowIdx[e], c) = values[e];
    return m;
}

CsrMatrix
CsrMatrix::fromDense(const Matrix &m)
{
    CsrMatrix out;
    out.rows = m.rows();
    out.cols = m.cols();
    out.rowPtr.assign(m.rows() + 1, 0);
    const u64 nnz = countNonZero(m);
    out.colIdx.reserve(nnz);
    out.values.reserve(nnz);
    for (u32 r = 0; r < m.rows(); ++r) {
        for (u32 c = 0; c < m.cols(); ++c) {
            if (m.at(r, c) != 0.0) {
                out.colIdx.push_back(c);
                out.values.push_back(m.at(r, c));
            }
        }
        out.rowPtr[r + 1] = static_cast<u32>(out.values.size());
    }
    return out;
}

std::vector<f64>
CsrMatrix::matvec(const std::vector<f64> &x) const
{
    SONIC_ASSERT(x.size() == cols);
    std::vector<f64> y(rows, 0.0);
    for (u32 r = 0; r < rows; ++r) {
        f64 acc = 0.0;
        for (u32 e = rowPtr[r]; e < rowPtr[r + 1]; ++e)
            acc += values[e] * x[colIdx[e]];
        y[r] = acc;
    }
    return y;
}

Matrix
CsrMatrix::toDense() const
{
    Matrix m(rows, cols);
    for (u32 r = 0; r < rows; ++r)
        for (u32 e = rowPtr[r]; e < rowPtr[r + 1]; ++e)
            m.at(r, colIdx[e]) = values[e];
    return m;
}

} // namespace sonic::tensor
