#include "tensor/decompose.hh"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/logging.hh"

namespace sonic::tensor
{

EigenResult
symmetricEigen(const Matrix &sym, u32 max_sweeps, f64 tol)
{
    SONIC_ASSERT(sym.rows() == sym.cols(), "symmetricEigen needs square");
    const u32 n = sym.rows();
    Matrix a = sym;
    Matrix v = Matrix::identity(n);

    for (u32 sweep = 0; sweep < max_sweeps; ++sweep) {
        f64 off = 0.0;
        for (u32 p = 0; p < n; ++p)
            for (u32 q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < tol * tol)
            break;

        for (u32 p = 0; p < n; ++p) {
            for (u32 q = p + 1; q < n; ++q) {
                const f64 apq = a.at(p, q);
                if (std::fabs(apq) < 1e-300)
                    continue;
                const f64 app = a.at(p, p);
                const f64 aqq = a.at(q, q);
                const f64 theta = (aqq - app) / (2.0 * apq);
                const f64 t = (theta >= 0.0 ? 1.0 : -1.0)
                    / (std::fabs(theta)
                       + std::sqrt(theta * theta + 1.0));
                const f64 c = 1.0 / std::sqrt(t * t + 1.0);
                const f64 s = t * c;

                for (u32 k = 0; k < n; ++k) {
                    const f64 akp = a.at(k, p);
                    const f64 akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (u32 k = 0; k < n; ++k) {
                    const f64 apk = a.at(p, k);
                    const f64 aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (u32 k = 0; k < n; ++k) {
                    const f64 vkp = v.at(k, p);
                    const f64 vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs by descending eigenvalue.
    std::vector<u32> order(n);
    std::iota(order.begin(), order.end(), 0u);
    std::sort(order.begin(), order.end(), [&](u32 x, u32 y) {
        return a.at(x, x) > a.at(y, y);
    });

    EigenResult result;
    result.values.resize(n);
    result.vectors = Matrix(n, n);
    for (u32 i = 0; i < n; ++i) {
        result.values[i] = a.at(order[i], order[i]);
        for (u32 r = 0; r < n; ++r)
            result.vectors.at(r, i) = v.at(r, order[i]);
    }
    return result;
}

Matrix
SvdResult::reconstruct() const
{
    const u32 m = u.rows();
    const u32 n = v.rows();
    const u32 k = static_cast<u32>(s.size());
    Matrix out(m, n);
    for (u32 r = 0; r < m; ++r)
        for (u32 c = 0; c < n; ++c) {
            f64 acc = 0.0;
            for (u32 i = 0; i < k; ++i)
                acc += u.at(r, i) * s[i] * v.at(c, i);
            out.at(r, c) = acc;
        }
    return out;
}

u64
SvdResult::factoredParams() const
{
    return u64{u.rows()} * u.cols() + u64{v.rows()} * v.cols();
}

SvdResult
truncatedSvd(const Matrix &a, u32 k)
{
    const u32 m = a.rows();
    const u32 n = a.cols();
    SONIC_ASSERT(k >= 1 && k <= std::min(m, n), "invalid SVD rank");

    // Work with the smaller Gram matrix.
    const bool use_rows = m <= n;
    Matrix gram = use_rows ? a.matmul(a.transpose())
                           : a.transpose().matmul(a);
    EigenResult eig = symmetricEigen(gram);

    SvdResult result;
    result.s.resize(k);
    if (use_rows) {
        result.u = Matrix(m, k);
        result.v = Matrix(n, k);
        for (u32 i = 0; i < k; ++i) {
            const f64 sigma = std::sqrt(std::max(0.0, eig.values[i]));
            result.s[i] = sigma;
            for (u32 r = 0; r < m; ++r)
                result.u.at(r, i) = eig.vectors.at(r, i);
            // v_i = A^T u_i / sigma
            if (sigma > 1e-300) {
                for (u32 c = 0; c < n; ++c) {
                    f64 acc = 0.0;
                    for (u32 r = 0; r < m; ++r)
                        acc += a.at(r, c) * eig.vectors.at(r, i);
                    result.v.at(c, i) = acc / sigma;
                }
            }
        }
    } else {
        result.u = Matrix(m, k);
        result.v = Matrix(n, k);
        for (u32 i = 0; i < k; ++i) {
            const f64 sigma = std::sqrt(std::max(0.0, eig.values[i]));
            result.s[i] = sigma;
            for (u32 c = 0; c < n; ++c)
                result.v.at(c, i) = eig.vectors.at(c, i);
            // u_i = A v_i / sigma
            if (sigma > 1e-300) {
                for (u32 r = 0; r < m; ++r) {
                    f64 acc = 0.0;
                    for (u32 c = 0; c < n; ++c)
                        acc += a.at(r, c) * eig.vectors.at(c, i);
                    result.u.at(r, i) = acc / sigma;
                }
            }
        }
    }
    return result;
}

Tensor3
Cp1Result::reconstruct(u32 d0, u32 d1, u32 d2) const
{
    SONIC_ASSERT(a.size() == d0 && b.size() == d1 && c.size() == d2);
    Tensor3 out(d0, d1, d2);
    for (u32 i = 0; i < d0; ++i)
        for (u32 j = 0; j < d1; ++j)
            for (u32 k = 0; k < d2; ++k)
                out.at(i, j, k) = lambda * a[i] * b[j] * c[k];
    return out;
}

u64
Cp1Result::factoredParams() const
{
    return a.size() + b.size() + c.size() + 1;
}

namespace
{

f64
norm(const std::vector<f64> &v)
{
    f64 sum = 0.0;
    for (f64 x : v)
        sum += x * x;
    return std::sqrt(sum);
}

void
normalize(std::vector<f64> &v)
{
    const f64 n = norm(v);
    if (n > 1e-300)
        for (f64 &x : v)
            x /= n;
}

} // namespace

Cp1Result
cpRank1(const Tensor3 &t, u32 max_iters, f64 tol)
{
    const u32 d0 = t.dim0();
    const u32 d1 = t.dim1();
    const u32 d2 = t.dim2();

    Cp1Result cp;
    cp.a.assign(d0, 1.0 / std::sqrt(static_cast<f64>(d0)));
    cp.b.assign(d1, 1.0 / std::sqrt(static_cast<f64>(d1)));
    cp.c.assign(d2, 1.0 / std::sqrt(static_cast<f64>(d2)));

    f64 prev_lambda = 0.0;
    for (u32 iter = 0; iter < max_iters; ++iter) {
        // a <- T x_1 (b, c)
        for (u32 i = 0; i < d0; ++i) {
            f64 acc = 0.0;
            for (u32 j = 0; j < d1; ++j)
                for (u32 k = 0; k < d2; ++k)
                    acc += t.at(i, j, k) * cp.b[j] * cp.c[k];
            cp.a[i] = acc;
        }
        normalize(cp.a);

        // b <- T x_2 (a, c)
        for (u32 j = 0; j < d1; ++j) {
            f64 acc = 0.0;
            for (u32 i = 0; i < d0; ++i)
                for (u32 k = 0; k < d2; ++k)
                    acc += t.at(i, j, k) * cp.a[i] * cp.c[k];
            cp.b[j] = acc;
        }
        normalize(cp.b);

        // c <- T x_3 (a, b); lambda is its norm.
        for (u32 k = 0; k < d2; ++k) {
            f64 acc = 0.0;
            for (u32 i = 0; i < d0; ++i)
                for (u32 j = 0; j < d1; ++j)
                    acc += t.at(i, j, k) * cp.a[i] * cp.b[j];
            cp.c[k] = acc;
        }
        cp.lambda = norm(cp.c);
        normalize(cp.c);

        if (std::fabs(cp.lambda - prev_lambda)
            <= tol * std::max(1.0, std::fabs(cp.lambda))) {
            break;
        }
        prev_lambda = cp.lambda;
    }
    return cp;
}

f64
cpRank1Error(const Tensor3 &t, const Cp1Result &cp)
{
    const f64 denom = t.frobeniusNorm();
    if (denom == 0.0)
        return 0.0;
    Tensor3 rec = cp.reconstruct(t.dim0(), t.dim1(), t.dim2());
    f64 sum = 0.0;
    for (u64 i = 0; i < t.size(); ++i) {
        const f64 d = t.data()[i] - rec.data()[i];
        sum += d * d;
    }
    return std::sqrt(sum) / denom;
}

} // namespace sonic::tensor
