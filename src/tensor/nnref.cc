#include "tensor/nnref.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sonic::tensor
{

u64
FilterBank::nonZeroCount() const
{
    u64 count = 0;
    for (f64 v : data)
        if (v != 0.0)
            ++count;
    return count;
}

u64
FilterBank::macs(u32 in_h, u32 in_w) const
{
    SONIC_ASSERT(in_h >= kh && in_w >= kw);
    const u64 out_h = in_h - kh + 1;
    const u64 out_w = in_w - kw + 1;
    return out_h * out_w * outChannels * inChannels * kh * kw;
}

FeatureMap
conv2dValid(const FeatureMap &in, const FilterBank &filters)
{
    SONIC_ASSERT(in.channels == filters.inChannels,
                 "conv2dValid channel mismatch");
    SONIC_ASSERT(in.height >= filters.kh && in.width >= filters.kw,
                 "conv2dValid input smaller than kernel");
    const u32 oh = in.height - filters.kh + 1;
    const u32 ow = in.width - filters.kw + 1;
    FeatureMap out(filters.outChannels, oh, ow);
    // Iterate filter taps outermost and skip pruned (zero) taps so
    // sparse banks evaluate in O(nnz * positions).
    for (u32 oc = 0; oc < filters.outChannels; ++oc) {
        for (u32 ic = 0; ic < filters.inChannels; ++ic) {
            for (u32 fy = 0; fy < filters.kh; ++fy) {
                for (u32 fx = 0; fx < filters.kw; ++fx) {
                    const f64 w = filters.at(oc, ic, fy, fx);
                    if (w == 0.0)
                        continue;
                    for (u32 y = 0; y < oh; ++y)
                        for (u32 x = 0; x < ow; ++x)
                            out.at(oc, y, x) +=
                                w * in.at(ic, y + fy, x + fx);
                }
            }
        }
    }
    return out;
}

FeatureMap
convRows(const FeatureMap &in, const std::vector<f64> &kernel)
{
    const u32 kw = static_cast<u32>(kernel.size());
    SONIC_ASSERT(in.width >= kw);
    FeatureMap out(in.channels, in.height, in.width - kw + 1);
    for (u32 c = 0; c < in.channels; ++c)
        for (u32 y = 0; y < out.height; ++y)
            for (u32 x = 0; x < out.width; ++x) {
                f64 acc = 0.0;
                for (u32 k = 0; k < kw; ++k)
                    acc += kernel[k] * in.at(c, y, x + k);
                out.at(c, y, x) = acc;
            }
    return out;
}

FeatureMap
convCols(const FeatureMap &in, const std::vector<f64> &kernel)
{
    const u32 kh = static_cast<u32>(kernel.size());
    SONIC_ASSERT(in.height >= kh);
    FeatureMap out(in.channels, in.height - kh + 1, in.width);
    for (u32 c = 0; c < in.channels; ++c)
        for (u32 y = 0; y < out.height; ++y)
            for (u32 x = 0; x < out.width; ++x) {
                f64 acc = 0.0;
                for (u32 k = 0; k < kh; ++k)
                    acc += kernel[k] * in.at(c, y + k, x);
                out.at(c, y, x) = acc;
            }
    return out;
}

FeatureMap
channelMix(const FeatureMap &in, const std::vector<f64> &w)
{
    SONIC_ASSERT(w.size() == in.channels, "channelMix weight mismatch");
    FeatureMap out(1, in.height, in.width);
    for (u32 c = 0; c < in.channels; ++c)
        for (u32 y = 0; y < in.height; ++y)
            for (u32 x = 0; x < in.width; ++x)
                out.at(0, y, x) += w[c] * in.at(c, y, x);
    return out;
}

FeatureMap
channelScale(const FeatureMap &in, const std::vector<f64> &s)
{
    SONIC_ASSERT(in.channels == 1, "channelScale expects one channel");
    FeatureMap out(static_cast<u32>(s.size()), in.height, in.width);
    for (u32 c = 0; c < out.channels; ++c)
        for (u32 y = 0; y < in.height; ++y)
            for (u32 x = 0; x < in.width; ++x)
                out.at(c, y, x) = s[c] * in.at(0, y, x);
    return out;
}

FeatureMap
relu(const FeatureMap &in)
{
    FeatureMap out = in;
    for (f64 &v : out.data)
        v = std::max(0.0, v);
    return out;
}

std::vector<f64>
relu(const std::vector<f64> &in)
{
    std::vector<f64> out = in;
    for (f64 &v : out)
        v = std::max(0.0, v);
    return out;
}

FeatureMap
maxPool2x2(const FeatureMap &in)
{
    FeatureMap out(in.channels, in.height / 2, in.width / 2);
    for (u32 c = 0; c < in.channels; ++c)
        for (u32 y = 0; y < out.height; ++y)
            for (u32 x = 0; x < out.width; ++x) {
                const f64 a = in.at(c, 2 * y, 2 * x);
                const f64 b = in.at(c, 2 * y, 2 * x + 1);
                const f64 d = in.at(c, 2 * y + 1, 2 * x);
                const f64 e = in.at(c, 2 * y + 1, 2 * x + 1);
                out.at(c, y, x) = std::max(std::max(a, b), std::max(d, e));
            }
    return out;
}

std::vector<f64>
flatten(const FeatureMap &in)
{
    return in.data;
}

u32
argmax(const std::vector<f64> &v)
{
    SONIC_ASSERT(!v.empty());
    return static_cast<u32>(
        std::max_element(v.begin(), v.end()) - v.begin());
}

} // namespace sonic::tensor
