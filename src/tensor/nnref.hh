/**
 * @file
 * Reference (host, f64) neural-network primitives on CHW feature maps.
 * These are the golden model: GENESIS evaluates compressed-network
 * accuracy with them, and every device kernel is tested against them.
 */

#ifndef SONIC_TENSOR_NNREF_HH
#define SONIC_TENSOR_NNREF_HH

#include <vector>

#include "tensor/matrix.hh"
#include "util/types.hh"

namespace sonic::tensor
{

/** Channels x height x width feature map, flat CHW storage. */
struct FeatureMap
{
    u32 channels = 0;
    u32 height = 0;
    u32 width = 0;
    std::vector<f64> data;

    FeatureMap() = default;

    FeatureMap(u32 c, u32 h, u32 w)
        : channels(c), height(h), width(w), data(u64{c} * h * w, 0.0)
    {
    }

    u64 size() const { return data.size(); }

    f64 &
    at(u32 c, u32 y, u32 x)
    {
        return data[(u64{c} * height + y) * width + x];
    }

    f64
    at(u32 c, u32 y, u32 x) const
    {
        return data[(u64{c} * height + y) * width + x];
    }
};

/** 4-D filter bank for dense convolution, [oc][ic][kh][kw] flat. */
struct FilterBank
{
    u32 outChannels = 0;
    u32 inChannels = 0;
    u32 kh = 0;
    u32 kw = 0;
    std::vector<f64> data;

    FilterBank() = default;

    FilterBank(u32 oc, u32 ic, u32 h, u32 w)
        : outChannels(oc), inChannels(ic), kh(h), kw(w),
          data(u64{oc} * ic * h * w, 0.0)
    {
    }

    u64 size() const { return data.size(); }

    f64 &
    at(u32 oc, u32 ic, u32 y, u32 x)
    {
        return data[((u64{oc} * inChannels + ic) * kh + y) * kw + x];
    }

    f64
    at(u32 oc, u32 ic, u32 y, u32 x) const
    {
        return data[((u64{oc} * inChannels + ic) * kh + y) * kw + x];
    }

    u64 nonZeroCount() const;

    /** MACs for a valid convolution over an h x w input. */
    u64 macs(u32 in_h, u32 in_w) const;
};

/** Dense valid convolution, stride 1. */
FeatureMap conv2dValid(const FeatureMap &in, const FilterBank &filters);

/** Per-map 1-D convolutions (same channel count in and out). */
FeatureMap convRows(const FeatureMap &in, const std::vector<f64> &kernel);
FeatureMap convCols(const FeatureMap &in, const std::vector<f64> &kernel);

/** Weighted channel combine: out(h,w) = sum_c w[c] * in_c(h,w). */
FeatureMap channelMix(const FeatureMap &in, const std::vector<f64> &w);

/** Broadcast a single channel to n scaled copies: out_i = s[i] * in. */
FeatureMap channelScale(const FeatureMap &in, const std::vector<f64> &s);

/** Element-wise max(0, x). */
FeatureMap relu(const FeatureMap &in);
std::vector<f64> relu(const std::vector<f64> &in);

/** 2x2 max pooling, stride 2 (odd trailing row/col dropped). */
FeatureMap maxPool2x2(const FeatureMap &in);

/** Flatten CHW (the order device FC layers consume). */
std::vector<f64> flatten(const FeatureMap &in);

/** Index of the maximum element (first on ties). */
u32 argmax(const std::vector<f64> &v);

} // namespace sonic::tensor

#endif // SONIC_TENSOR_NNREF_HH
