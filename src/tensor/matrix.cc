#include "tensor/matrix.hh"

#include <cmath>

namespace sonic::tensor
{

Matrix
Matrix::identity(u32 n)
{
    Matrix m(n, n);
    for (u32 i = 0; i < n; ++i)
        m.at(i, i) = 1.0;
    return m;
}

Matrix
Matrix::gaussian(u32 rows, u32 cols, Rng &rng, f64 stddev)
{
    Matrix m(rows, cols);
    for (auto &v : m.data_)
        v = rng.gaussian(0.0, stddev);
    return m;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (u32 r = 0; r < rows_; ++r)
        for (u32 c = 0; c < cols_; ++c)
            t.at(c, r) = at(r, c);
    return t;
}

Matrix
Matrix::matmul(const Matrix &other) const
{
    SONIC_ASSERT(cols_ == other.rows_, "matmul shape mismatch");
    Matrix out(rows_, other.cols_);
    for (u32 r = 0; r < rows_; ++r) {
        for (u32 k = 0; k < cols_; ++k) {
            const f64 a = at(r, k);
            if (a == 0.0)
                continue;
            for (u32 c = 0; c < other.cols_; ++c)
                out.at(r, c) += a * other.at(k, c);
        }
    }
    return out;
}

std::vector<f64>
Matrix::matvec(const std::vector<f64> &vec) const
{
    SONIC_ASSERT(vec.size() == cols_, "matvec shape mismatch");
    std::vector<f64> out(rows_, 0.0);
    for (u32 r = 0; r < rows_; ++r) {
        f64 acc = 0.0;
        const f64 *row = &data_[u64{r} * cols_];
        for (u32 c = 0; c < cols_; ++c)
            acc += row[c] * vec[c];
        out[r] = acc;
    }
    return out;
}

Matrix
Matrix::operator+(const Matrix &other) const
{
    SONIC_ASSERT(sameShape(other));
    Matrix out = *this;
    for (u64 i = 0; i < data_.size(); ++i)
        out.data_[i] += other.data_[i];
    return out;
}

Matrix
Matrix::operator-(const Matrix &other) const
{
    SONIC_ASSERT(sameShape(other));
    Matrix out = *this;
    for (u64 i = 0; i < data_.size(); ++i)
        out.data_[i] -= other.data_[i];
    return out;
}

Matrix
Matrix::scaled(f64 s) const
{
    Matrix out = *this;
    for (auto &v : out.data_)
        v *= s;
    return out;
}

f64
Matrix::frobeniusNorm() const
{
    f64 sum = 0.0;
    for (f64 v : data_)
        sum += v * v;
    return std::sqrt(sum);
}

u64
Matrix::nonZeroCount() const
{
    u64 count = 0;
    for (f64 v : data_)
        if (v != 0.0)
            ++count;
    return count;
}

f64
Matrix::relativeError(const Matrix &other) const
{
    SONIC_ASSERT(sameShape(other));
    const f64 denom = frobeniusNorm();
    if (denom == 0.0)
        return other.frobeniusNorm() == 0.0 ? 0.0 : 1.0;
    return (*this - other).frobeniusNorm() / denom;
}

Tensor3
Tensor3::gaussian(u32 d0, u32 d1, u32 d2, Rng &rng, f64 stddev)
{
    Tensor3 t(d0, d1, d2);
    for (auto &v : t.data_)
        v = rng.gaussian(0.0, stddev);
    return t;
}

f64
Tensor3::frobeniusNorm() const
{
    f64 sum = 0.0;
    for (f64 v : data_)
        sum += v * v;
    return std::sqrt(sum);
}

} // namespace sonic::tensor
