/**
 * @file
 * Host-side dense matrix (row-major, f64) used by GENESIS for
 * compression (SVD separation, pruning) and by the test suite as the
 * golden model for device kernels. This is deliberately a small,
 * dependency-free linear-algebra kit — the paper's training-side
 * tooling, reimplemented.
 */

#ifndef SONIC_TENSOR_MATRIX_HH
#define SONIC_TENSOR_MATRIX_HH

#include <string>
#include <vector>

#include "util/logging.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace sonic::tensor
{

/** Dense row-major matrix of doubles. */
class Matrix
{
  public:
    Matrix() = default;

    Matrix(u32 rows, u32 cols, f64 fill = 0.0)
        : rows_(rows), cols_(cols), data_(u64{rows} * cols, fill)
    {
    }

    static Matrix identity(u32 n);

    /** Matrix with i.i.d. gaussian entries (deterministic from rng). */
    static Matrix gaussian(u32 rows, u32 cols, Rng &rng, f64 stddev = 1.0);

    u32 rows() const { return rows_; }
    u32 cols() const { return cols_; }
    u64 size() const { return data_.size(); }

    f64 &
    at(u32 r, u32 c)
    {
        SONIC_ASSERT(r < rows_ && c < cols_);
        return data_[u64{r} * cols_ + c];
    }

    f64
    at(u32 r, u32 c) const
    {
        SONIC_ASSERT(r < rows_ && c < cols_);
        return data_[u64{r} * cols_ + c];
    }

    const std::vector<f64> &data() const { return data_; }
    std::vector<f64> &data() { return data_; }

    Matrix transpose() const;

    /** this * other. */
    Matrix matmul(const Matrix &other) const;

    /** this * vec (vec.size() == cols). */
    std::vector<f64> matvec(const std::vector<f64> &vec) const;

    Matrix operator+(const Matrix &other) const;
    Matrix operator-(const Matrix &other) const;
    Matrix scaled(f64 s) const;

    f64 frobeniusNorm() const;

    /** Count of entries with |x| > 0. */
    u64 nonZeroCount() const;

    /** Relative reconstruction error ||this - other||_F / ||this||_F. */
    f64 relativeError(const Matrix &other) const;

    bool
    sameShape(const Matrix &other) const
    {
        return rows_ == other.rows_ && cols_ == other.cols_;
    }

  private:
    u32 rows_ = 0;
    u32 cols_ = 0;
    std::vector<f64> data_;
};

/** Dense 3-D tensor (used for conv filter banks: filters x kh x kw). */
class Tensor3
{
  public:
    Tensor3() = default;

    Tensor3(u32 d0, u32 d1, u32 d2, f64 fill = 0.0)
        : d0_(d0), d1_(d1), d2_(d2), data_(u64{d0} * d1 * d2, fill)
    {
    }

    static Tensor3 gaussian(u32 d0, u32 d1, u32 d2, Rng &rng,
                            f64 stddev = 1.0);

    u32 dim0() const { return d0_; }
    u32 dim1() const { return d1_; }
    u32 dim2() const { return d2_; }
    u64 size() const { return data_.size(); }

    f64 &
    at(u32 i, u32 j, u32 k)
    {
        SONIC_ASSERT(i < d0_ && j < d1_ && k < d2_);
        return data_[(u64{i} * d1_ + j) * d2_ + k];
    }

    f64
    at(u32 i, u32 j, u32 k) const
    {
        SONIC_ASSERT(i < d0_ && j < d1_ && k < d2_);
        return data_[(u64{i} * d1_ + j) * d2_ + k];
    }

    const std::vector<f64> &data() const { return data_; }
    std::vector<f64> &data() { return data_; }

    f64 frobeniusNorm() const;

  private:
    u32 d0_ = 0;
    u32 d1_ = 0;
    u32 d2_ = 0;
    std::vector<f64> data_;
};

} // namespace sonic::tensor

#endif // SONIC_TENSOR_MATRIX_HH
