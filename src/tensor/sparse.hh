/**
 * @file
 * Sparse-matrix support: magnitude pruning (GENESIS' second compression
 * technique) and a compressed-sparse representation. The device-side
 * sparse fully-connected kernels traverse the matrix column-major —
 * "for each input activation, the list of (row, weight) pairs" — which
 * is the access order SONIC's sparse undo-logging assumes, so we build
 * a CSC form alongside the usual CSR.
 */

#ifndef SONIC_TENSOR_SPARSE_HH
#define SONIC_TENSOR_SPARSE_HH

#include <vector>

#include "tensor/matrix.hh"
#include "util/types.hh"

namespace sonic::tensor
{

/** Zero all entries with |x| < threshold; returns surviving count. */
u64 pruneThreshold(Matrix &m, f64 threshold);

/**
 * Prune to keep approximately the keep_fraction largest-magnitude
 * entries (exact count via nth_element). Returns surviving count.
 */
u64 pruneToFraction(Matrix &m, f64 keep_fraction);

/** Same pruning operations for 3-D filter banks. */
u64 pruneThreshold(Tensor3 &t, f64 threshold);
u64 pruneToFraction(Tensor3 &t, f64 keep_fraction);

/**
 * Compressed sparse columns: for each column c (an input activation),
 * the (row, value) pairs of surviving weights. entries are ordered by
 * column then row; colPtr has cols+1 entries.
 */
struct CscMatrix
{
    u32 rows = 0;
    u32 cols = 0;
    std::vector<u32> colPtr;
    std::vector<u32> rowIdx;
    std::vector<f64> values;

    static CscMatrix fromDense(const Matrix &m);

    u64 nnz() const { return values.size(); }

    /** y = A x computed column-major (the device traversal order). */
    std::vector<f64> matvec(const std::vector<f64> &x) const;

    /** Expand back to dense (for testing). */
    Matrix toDense() const;
};

/** Compressed sparse rows (standard layout, used for verification). */
struct CsrMatrix
{
    u32 rows = 0;
    u32 cols = 0;
    std::vector<u32> rowPtr;
    std::vector<u32> colIdx;
    std::vector<f64> values;

    static CsrMatrix fromDense(const Matrix &m);

    u64 nnz() const { return values.size(); }

    std::vector<f64> matvec(const std::vector<f64> &x) const;

    Matrix toDense() const;
};

} // namespace sonic::tensor

#endif // SONIC_TENSOR_SPARSE_HH
