/**
 * @file
 * Byte-level primitives of the .sonicz telemetry container
 * (src/telemetry/sonicz.hh): LEB128 varints, zigzag signed mapping,
 * FNV-1a block checksums, and a small in-tree LZ (greedy hash-chain
 * matching over a 64 KiB window with an LZ4-style token stream —
 * no external compression dependency, decode is a straight memcpy
 * loop).
 *
 * Everything here is deterministic byte-in/byte-out: the same input
 * always compresses to the same bytes on every platform, so .sonicz
 * artifacts can be cmp'd across runs like every other artifact in
 * this repo.
 */

#ifndef SONIC_TELEMETRY_CODEC_HH
#define SONIC_TELEMETRY_CODEC_HH

#include <string>
#include <vector>

#include "util/types.hh"

namespace sonic::telemetry
{

/** Growable byte buffer the encoders append into. */
using Bytes = std::vector<u8>;

/** Append a LEB128 varint (7 bits per byte, high bit = continue). */
void putVarint(Bytes &out, u64 value);

/**
 * Read a LEB128 varint at *pos, advancing it. Returns false (leaving
 * *pos unspecified) on truncation or on an overlong encoding that
 * does not fit 64 bits.
 */
bool getVarint(const Bytes &bytes, u64 *pos, u64 *value);

/** Zigzag-map a signed delta so small magnitudes stay small. */
inline u64
zigzag(i64 v)
{
    return (static_cast<u64>(v) << 1)
         ^ static_cast<u64>(v >> 63);
}

/** Inverse of zigzag(). */
inline i64
unzigzag(u64 v)
{
    return static_cast<i64>((v >> 1) ^ (~(v & 1) + 1));
}

/** FNV-1a over a byte range (the per-chunk checksum). Pass a prior
 * result as `seed` to continue the hash over a second range. */
u64 fnv1aBytes(const u8 *data, u64 size,
               u64 seed = 0xcbf29ce484222325ull);

/**
 * Compress `input` with the in-tree LZ. The output is self-delimiting
 * given the original size (stored by the container, not here). The
 * worst case expands by ~1/255 + a few bytes; callers keep the raw
 * bytes instead when compression does not win (codec byte in the
 * chunk header).
 */
Bytes lzCompress(const Bytes &input);

/**
 * Decompress an lzCompress() stream into exactly rawSize bytes.
 * Returns false on any malformed input (bad offset, overrun,
 * truncation, size mismatch) — corrupted blocks must never crash or
 * silently produce wrong rows.
 */
bool lzDecompress(const Bytes &input, u64 rawSize, Bytes *out);

} // namespace sonic::telemetry

#endif // SONIC_TELEMETRY_CODEC_HH
