#include "telemetry/aggregate.hh"

#include <istream>

#include "env/environment.hh"

namespace sonic::telemetry
{

bool
aggregate(std::istream &in, fleet::FleetSummary *out,
          std::string *error, SoniczInfo *info, const RowRange *range)
{
    namespace fc = fleetcol;
    fleet::FleetSummary summary;

    const auto fold = [&](const FleetBlockView &v) {
        for (u64 r = 0; r < v.rows(); ++r) {
            const u64 device = v.intAt(fc::kDevice, r);
            if (range != nullptr
                && (device < range->lo || device > range->hi))
                continue;

            const std::string &status = v.str(fc::kStatus, r);
            fleet::TelemetryRow row{
                .dnf = status == "dnf",
                .failed = status == "fail",
                .inferences = static_cast<u32>(
                    v.intAt(fc::kInferences, r)),
                .reboots = v.intAt(fc::kReboots, r),
                .liveSeconds = v.f64At(fc::kLiveSeconds, r),
                .deadSeconds = v.f64At(fc::kDeadSeconds, r),
                .energyJ = v.f64At(fc::kEnergyJ, r),
                .harvestedJ = v.f64At(fc::kHarvestedJ, r),
                .resultsDelivered = static_cast<u32>(
                    v.intAt(fc::kResultsDelivered, r)),
                .txGaveUpRounds = static_cast<u32>(
                    v.intAt(fc::kTxGaveUpRounds, r)),
                .txAttempts = v.intAt(fc::kTxAttempts, r),
                .txRetries = v.intAt(fc::kTxRetries, r),
                .radioEnergyJ = v.f64At(fc::kRadioEnergyJ, r),
                .senseEnergyJ = v.f64At(fc::kSenseEnergyJ, r),
                .txBackoffSeconds =
                    v.f64At(fc::kTxBackoffSeconds, r),
            };

            // Group keys exactly as the live reduction derives them:
            // the environment label re-formats from the bit-exact
            // stored capacitance, the others are the stored names.
            const env::EnvRef env_ref{v.str(fc::kEnv, r),
                                      v.f64At(fc::kEnvCap, r)};
            summary.total.accumulateRow(row);
            summary.byEnvironment[env_ref.label()]
                .accumulateRow(row);
            summary.byImpl[v.str(fc::kImpl, r)].accumulateRow(row);
            summary.byNet[v.str(fc::kNet, r)].accumulateRow(row);
            summary.byPipeline[v.str(fc::kPipeline, r)]
                .accumulateRow(row);
        }
    };

    if (!readFleetBlocks(in, fold, info, error, range))
        return false;
    summary.devices = static_cast<u32>(summary.total.devices);
    *out = summary;
    return true;
}

} // namespace sonic::telemetry
