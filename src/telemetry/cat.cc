#include "telemetry/cat.hh"

#include <memory>
#include <ostream>

#include "telemetry/aggregate.hh"

namespace sonic::telemetry
{

bool
parseIndexRange(const std::string &text, u64 *lo, u64 *hi)
{
    const auto parse_u64 = [](const std::string &s, u64 *out) {
        if (s.empty())
            return false;
        u64 v = 0;
        for (const char ch : s) {
            if (ch < '0' || ch > '9')
                return false;
            if (v > (~0ull - (ch - '0')) / 10)
                return false; // overflow
            v = v * 10 + static_cast<u64>(ch - '0');
        }
        *out = v;
        return true;
    };
    const auto dots = text.find("..");
    if (dots == std::string::npos) {
        if (!parse_u64(text, lo))
            return false;
        *hi = *lo;
        return true;
    }
    return parse_u64(text.substr(0, dots), lo)
        && parse_u64(text.substr(dots + 2), hi) && *lo <= *hi;
}

namespace
{

bool
passes(const CatOptions &o, const std::string &env_label,
       const std::string &env_name, const std::string &impl,
       const std::string &net, const std::string &pipeline,
       const std::string &status, u64 index)
{
    if (!o.env.empty() && o.env != env_label && o.env != env_name)
        return false;
    if (!o.impl.empty() && o.impl != impl)
        return false;
    if (!o.net.empty() && o.net != net)
        return false;
    if (!o.pipeline.empty() && o.pipeline != pipeline)
        return false;
    if (!o.status.empty() && o.status != status)
        return false;
    if (o.hasRange && (index < o.rangeLo || index > o.rangeHi))
        return false;
    return true;
}

std::string
sweepStatus(const app::ExperimentResult &r)
{
    return r.completed ? "ok" : (r.nonTerminating ? "dnf" : "fail");
}

std::string
fleetStatus(const fleet::DeviceTelemetry &t)
{
    return t.diedNonTerminating
        ? "dnf"
        : (t.failedIncomplete ? "fail" : "ok");
}

} // namespace

bool
catSonicz(std::istream &in, std::ostream &out,
          const CatOptions &options, std::string *error)
{
    // One sink per (schema, format); the schema is known only once the
    // header is read, so both pairs are constructed lazily on the
    // first row. begin() is header/prologue emission — the sinks
    // ignore the row-count argument, so filtering costs nothing.
    std::unique_ptr<app::ResultSink> sweep_sink;
    std::unique_ptr<fleet::FleetSink> fleet_sink;
    bool schema_checked = false;
    std::string schema_error;

    const auto ensure_sweep = [&]() -> app::ResultSink & {
        if (!sweep_sink) {
            if (options.format == CatOptions::Format::Json)
                sweep_sink = std::make_unique<app::JsonSink>(out);
            else
                sweep_sink = std::make_unique<app::CsvSink>(out);
            sweep_sink->begin(0);
        }
        return *sweep_sink;
    };
    const auto ensure_fleet = [&]() -> fleet::FleetSink & {
        if (!fleet_sink) {
            if (options.format == CatOptions::Format::Json)
                fleet_sink =
                    std::make_unique<fleet::FleetJsonSink>(out);
            else
                fleet_sink =
                    std::make_unique<fleet::FleetCsvSink>(out);
            fleet_sink->begin(0);
        }
        return *fleet_sink;
    };

    const auto on_sweep = [&](const app::SweepRecord &record) {
        if (!schema_checked) {
            schema_checked = true;
            if (!options.pipeline.empty())
                schema_error = "--pipeline filters fleet telemetry; "
                               "this is a sweep file";
        }
        if (!schema_error.empty())
            return;
        const auto &spec = record.spec;
        if (!passes(options, spec.environment.label(),
                    spec.environment.env,
                    std::string(kernels::implName(spec.impl)),
                    spec.net, /*pipeline=*/"",
                    sweepStatus(record.result), record.planIndex))
            return;
        ensure_sweep().add(record);
    };
    const auto on_fleet = [&](const fleet::DeviceTelemetry &t) {
        schema_checked = true;
        const auto &a = t.assignment;
        if (!passes(options, a.environment.label(), a.environment.env,
                    std::string(kernels::implName(a.impl)), a.net,
                    a.pipeline, fleetStatus(t), a.deviceIndex))
            return;
        ensure_fleet().add(t);
    };

    // The index range doubles as a block-pruning hint: indexed files
    // skip blocks whose [min, max] misses it entirely, and passes()
    // keeps the exact row-level cut on the blocks that overlap.
    RowRange range;
    if (options.hasRange) {
        range.lo = options.rangeLo;
        range.hi = options.rangeHi;
    }
    SoniczInfo info;
    if (!readSonicz(in, on_sweep, on_fleet, &info, error,
                    options.hasRange ? &range : nullptr))
        return false;
    if (info.kind == SchemaKind::Trace) {
        if (error != nullptr)
            *error = "sonic_cat: this is a .sonictrace event file; "
                     "use sonic_trace to export or summarize it";
        return false;
    }
    if (info.kind == SchemaKind::Sweep && !options.pipeline.empty()) {
        // Also reached when every block was empty of rows.
        if (error != nullptr)
            *error = "sonic_cat: --pipeline filters fleet telemetry; "
                     "this is a sweep file";
        return false;
    }
    if (!schema_error.empty()) {
        if (error != nullptr)
            *error = "sonic_cat: " + schema_error;
        return false;
    }

    // An empty selection still gets the schema-correct prologue
    // (header line / empty array), exactly like a direct run with no
    // rows.
    if (info.kind == SchemaKind::Sweep) {
        ensure_sweep().end();
    } else {
        ensure_fleet().end();
    }
    return true;
}

bool
soniczInfo(std::istream &in, std::ostream &out, std::string *error)
{
    SoniczInfo info;
    if (!readSonicz(in, nullptr, nullptr, &info, error))
        return false;
    const f64 ratio = info.fileBytes > 0
        ? static_cast<f64>(info.rawBytes)
              / static_cast<f64>(info.fileBytes)
        : 0.0;
    out << "schema:  "
        << (info.kind == SchemaKind::Sweep
                ? "sweep"
                : (info.kind == SchemaKind::Fleet ? "fleet" : "trace"))
        << " (version " << info.version << ")\n"
        << "rows:    " << info.rows << "\n"
        << "blocks:  " << info.blocks << "\n"
        << "index:   "
        << (info.hasIndex ? "yes" : "no (version 1, scan only)")
        << "\n"
        << "file:    " << info.fileBytes << " bytes\n"
        << "columns: " << info.rawBytes << " bytes raw, "
        << info.storedBytes << " bytes stored\n"
        << "ratio:   " << (static_cast<u64>(ratio * 100.0 + 0.5)
                           / 100.0)
        << "x raw/file\n";
    return true;
}

bool
soniczSummary(std::istream &in, std::ostream &out,
              const CatOptions &options, std::string *error)
{
    if (!options.env.empty() || !options.impl.empty()
        || !options.net.empty() || !options.pipeline.empty()
        || !options.status.empty()) {
        if (error != nullptr)
            *error = "sonic_cat: --summary aggregates whole groups; "
                     "row filters other than --devices do not apply";
        return false;
    }
    RowRange range;
    if (options.hasRange) {
        range.lo = options.rangeLo;
        range.hi = options.rangeHi;
    }
    fleet::FleetSummary summary;
    if (!aggregate(in, &summary, error, nullptr,
                   options.hasRange ? &range : nullptr))
        return false;
    out << summary.toJson();
    return true;
}

} // namespace sonic::telemetry
