/**
 * @file
 * sonic_cat — decompress, subset, and re-emit .sonicz telemetry.
 *
 *     sonic_cat fleet.sonicz                        # CSV to stdout
 *     sonic_cat fleet.sonicz --format=json --out=fleet.json
 *     sonic_cat fleet.sonicz --env=solar --impl=SONIC
 *     sonic_cat fleet.sonicz --devices=100..199 --status=dnf
 *     sonic_cat sweep.sonicz --net=MNIST            # range = planIndex
 *     sonic_cat fleet.sonicz --info                 # validate + stats
 *     sonic_cat fleet.sonicz --summary              # FleetSummary JSON
 *
 * Re-emission goes through the exact sink classes the live tools use,
 * so an unfiltered cat is byte-identical to the CSV/JSON a direct run
 * writes. Any corruption — flipped payload bytes, a truncated tail, a
 * forged length — is a hard error with a block/column diagnostic, not
 * silently wrong output.
 */

#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "telemetry/cat.hh"
#include "util/cli.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;

int
usage()
{
    std::cerr
        << "usage: sonic_cat FILE.sonicz [--format=csv|json]\n"
           "                 [--env=NAME] [--impl=NAME] [--net=NAME]\n"
           "                 [--pipeline=NAME] [--status=ok|dnf|fail]\n"
           "                 [--devices=A..B] [--out=PATH] [--info]\n"
           "                 [--summary]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    telemetry::CatOptions options;
    std::string input_path, out_path, value;
    bool info_only = false;
    bool summary_only = false;

    for (const std::string arg :
         std::vector<std::string>(argv + 1, argv + argc)) {
        if (consumeFlag(arg, "--format", &value)) {
            if (value == "csv") {
                options.format = telemetry::CatOptions::Format::Csv;
            } else if (value == "json") {
                options.format = telemetry::CatOptions::Format::Json;
            } else {
                std::cerr << "unknown format '" << value
                          << "' (csv | json)\n";
                return 2;
            }
        } else if (consumeFlag(arg, "--env", &value)) {
            options.env = value;
        } else if (consumeFlag(arg, "--impl", &value)) {
            options.impl = value;
        } else if (consumeFlag(arg, "--net", &value)) {
            options.net = value;
        } else if (consumeFlag(arg, "--pipeline", &value)) {
            options.pipeline = value;
        } else if (consumeFlag(arg, "--status", &value)) {
            options.status = value;
        } else if (consumeFlag(arg, "--devices", &value)) {
            if (!telemetry::parseIndexRange(value, &options.rangeLo,
                                            &options.rangeHi)) {
                std::cerr << "--devices expects A..B or a single "
                             "index (got '"
                          << value << "')\n";
                return 2;
            }
            options.hasRange = true;
        } else if (consumeFlag(arg, "--out", &value)) {
            out_path = value;
        } else if (arg == "--info") {
            info_only = true;
        } else if (arg == "--summary") {
            summary_only = true;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else if (input_path.empty()) {
            input_path = arg;
        } else {
            return usage();
        }
    }
    if (input_path.empty())
        return usage();

    std::ifstream in(input_path, std::ios::binary);
    if (!in) {
        std::cerr << "cannot read " << input_path << "\n";
        return 2;
    }

    std::string error;
    if (info_only) {
        if (!telemetry::soniczInfo(in, std::cout, &error)) {
            std::cerr << error << "\n";
            return 1;
        }
        return 0;
    }

    std::ofstream out_file;
    if (!out_path.empty()) {
        out_file.open(out_path, std::ios::binary);
        if (!out_file) {
            std::cerr << "cannot write " << out_path << "\n";
            return 2;
        }
    }
    std::ostream &out = out_path.empty() ? std::cout : out_file;

    if (summary_only) {
        if (!telemetry::soniczSummary(in, out, options, &error)) {
            std::cerr << error << "\n";
            return 1;
        }
        return 0;
    }

    if (!telemetry::catSonicz(in, out, options, &error)) {
        std::cerr << error << "\n";
        return 1;
    }
    return 0;
}
