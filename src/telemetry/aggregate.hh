/**
 * @file
 * Streaming aggregation over fleet .sonicz telemetry: fold a file into
 * a fleet::FleetSummary block-by-block through the columnar reader —
 * no DeviceTelemetry is materialized per row, so a million-device file
 * aggregates in block-sized memory. This is what sonic_cat --summary
 * prints and what the deployment planner (src/plan) ingests.
 *
 * What the fold can and cannot reproduce of a live runFleet summary:
 * the group stats (total and the byEnvironment/byImpl/byNet/byPipeline
 * breakdowns) are exact — GroupStats::accumulateRow is the shared
 * field-mapping — but horizonSeconds and baseSeed are plan facts that
 * telemetry rows do not carry, and the latency percentiles come from
 * per-round lists that are not part of the streamed schema. Those
 * fields stay zero.
 */

#ifndef SONIC_TELEMETRY_AGGREGATE_HH
#define SONIC_TELEMETRY_AGGREGATE_HH

#include <iosfwd>
#include <string>

#include "fleet/fleet.hh"
#include "telemetry/sonicz.hh"

namespace sonic::telemetry
{

/**
 * Fold a FLEET .sonicz stream into summary group stats. Rows whose
 * device index falls outside `range` are excluded (the range both
 * prunes index-missed blocks and row-filters the overlapping ones, so
 * the result is exact, not block-granular). Errors on sweep files and
 * on any corruption readFleetBlocks would reject. `info` (optional)
 * reports the usual reader facts, including blocks skipped via the
 * index.
 */
bool aggregate(std::istream &in, fleet::FleetSummary *out,
               std::string *error, SoniczInfo *info = nullptr,
               const RowRange *range = nullptr);

} // namespace sonic::telemetry

#endif // SONIC_TELEMETRY_AGGREGATE_HH
