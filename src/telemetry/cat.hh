/**
 * @file
 * The sonic_cat core: decompress a .sonicz telemetry file, optionally
 * subset it, and re-emit CSV or JSON. Re-emission goes through the
 * SAME sink classes the live tools use (app::CsvSink/JsonSink,
 * fleet::FleetCsvSink/FleetJsonSink), so an unfiltered cat of a
 * .sonicz file is byte-identical to the CSV/JSON a direct run writes —
 * losslessness is by construction, not by a parallel formatter kept in
 * sync by hand.
 */

#ifndef SONIC_TELEMETRY_CAT_HH
#define SONIC_TELEMETRY_CAT_HH

#include <iosfwd>
#include <string>

#include "telemetry/sonicz.hh"

namespace sonic::telemetry
{

/** What sonic_cat re-emits and which rows survive. */
struct CatOptions
{
    enum class Format : u8
    {
        Csv,
        Json
    };
    Format format = Format::Csv;

    /** @name Row filters (empty = pass). String filters match the
     * column value exactly; env also matches the EnvRef label, so both
     * `--env=solar` and `--env=solar/100uF` work. */
    /// @{
    std::string env;
    std::string impl;
    std::string net;
    std::string pipeline; ///< fleet files only (error on sweep files)
    std::string status;   ///< ok | dnf | fail
    /// @}

    /** Inclusive index range (--devices=A..B): the device index for
     * fleet telemetry, the plan index for sweep records. */
    bool hasRange = false;
    u64 rangeLo = 0;
    u64 rangeHi = 0;
};

/**
 * Parse "A..B" (or a bare "A", meaning A..A) into [lo, hi]. Returns
 * false on malformed input or lo > hi.
 */
bool parseIndexRange(const std::string &text, u64 *lo, u64 *hi);

/**
 * Stream `in` (.sonicz) to `out` as CSV or JSON, keeping only rows
 * that pass every filter. Returns false with a diagnostic in *error on
 * malformed input or on filters that cannot apply to the file's schema
 * (--pipeline against a sweep file).
 */
bool catSonicz(std::istream &in, std::ostream &out,
               const CatOptions &options, std::string *error);

/**
 * Validate `in` and print a human-readable summary (--info): schema,
 * rows, blocks, file size, and the raw/stored compression ratio.
 */
bool soniczInfo(std::istream &in, std::ostream &out,
                std::string *error);

/**
 * Fold a FLEET .sonicz file into summary JSON (--summary): the
 * fleet::FleetSummary group stats computed block-by-block via
 * telemetry::aggregate, without materializing any rows. `options`
 * contributes only the index range (--devices=A..B restricts the
 * fold; index-missed blocks are skipped undecoded); the string row
 * filters do not apply and must be empty. Errors on sweep files.
 */
bool soniczSummary(std::istream &in, std::ostream &out,
                   const CatOptions &options, std::string *error);

} // namespace sonic::telemetry

#endif // SONIC_TELEMETRY_CAT_HH
