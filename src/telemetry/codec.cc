#include "telemetry/codec.hh"

#include <cstring>

namespace sonic::telemetry
{

void
putVarint(Bytes &out, u64 value)
{
    while (value >= 0x80) {
        out.push_back(static_cast<u8>(value) | 0x80);
        value >>= 7;
    }
    out.push_back(static_cast<u8>(value));
}

bool
getVarint(const Bytes &bytes, u64 *pos, u64 *value)
{
    u64 result = 0;
    u32 shift = 0;
    while (*pos < bytes.size()) {
        const u8 byte = bytes[(*pos)++];
        if (shift == 63 && (byte & 0x7e) != 0)
            return false; // would overflow 64 bits
        if (shift > 63)
            return false;
        result |= static_cast<u64>(byte & 0x7f) << shift;
        if ((byte & 0x80) == 0) {
            *value = result;
            return true;
        }
        shift += 7;
    }
    return false; // truncated
}

u64
fnv1aBytes(const u8 *data, u64 size, u64 seed)
{
    u64 h = seed;
    for (u64 i = 0; i < size; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

// --- LZ -------------------------------------------------------------
//
// Token stream (LZ4-flavored): each sequence is
//   [token: hi nibble = literal count, lo nibble = match length - 4]
//   [0xff continuation bytes while a nibble saturates at 15]
//   [literal bytes]
//   [2-byte little-endian match offset, 1..65535 back]  (if a match)
//   [match-length continuation bytes]
// The final sequence carries literals only (its match nibble is 0 and
// no offset follows). Greedy parse over a head-table + chain-table
// match finder on 4-byte prefixes.

namespace
{

constexpr u32 kMinMatch = 4;
constexpr u32 kMaxOffset = 65535;
constexpr u32 kHashBits = 15;
constexpr u32 kMaxChain = 32;

inline u32
hash4(const u8 *p)
{
    u32 v;
    std::memcpy(&v, p, 4);
    return (v * 2654435761u) >> (32 - kHashBits);
}

void
putLength(Bytes &out, u64 extra)
{
    // Continuation bytes after a saturated nibble (value 15): each
    // 0xff adds 255, the closing byte adds its own value.
    while (extra >= 255) {
        out.push_back(0xff);
        extra -= 255;
    }
    out.push_back(static_cast<u8>(extra));
}

void
emitSequence(Bytes &out, const u8 *literals, u64 literal_count,
             u32 offset, u64 match_len)
{
    const bool has_match = match_len >= kMinMatch;
    const u64 match_extra = has_match ? match_len - kMinMatch : 0;
    const u8 lit_nibble =
        static_cast<u8>(literal_count >= 15 ? 15 : literal_count);
    const u8 match_nibble =
        static_cast<u8>(has_match ? (match_extra >= 15 ? 15
                                                       : match_extra)
                                  : 0);
    out.push_back(static_cast<u8>((lit_nibble << 4) | match_nibble));
    if (lit_nibble == 15)
        putLength(out, literal_count - 15);
    out.insert(out.end(), literals, literals + literal_count);
    if (has_match) {
        out.push_back(static_cast<u8>(offset & 0xff));
        out.push_back(static_cast<u8>(offset >> 8));
        if (match_nibble == 15)
            putLength(out, match_extra - 15);
    }
}

} // namespace

Bytes
lzCompress(const Bytes &input)
{
    Bytes out;
    const u64 n = input.size();
    out.reserve(n / 2 + 16);
    if (n == 0) {
        emitSequence(out, nullptr, 0, 0, 0);
        return out;
    }

    std::vector<i64> head(1u << kHashBits, -1);
    std::vector<i64> chain(n, -1);
    const u8 *data = input.data();

    u64 anchor = 0; // first unemitted literal
    u64 i = 0;
    while (i + kMinMatch <= n) {
        // Find the longest match for position i among recent
        // occurrences of its 4-byte prefix.
        u64 best_len = 0;
        u32 best_off = 0;
        const u32 h = hash4(data + i);
        i64 cand = head[h];
        u32 tries = kMaxChain;
        while (cand >= 0 && tries-- > 0) {
            const u64 off = i - static_cast<u64>(cand);
            if (off > kMaxOffset)
                break; // chain only gets older from here
            u64 len = 0;
            const u64 limit = n - i;
            while (len < limit
                   && data[cand + static_cast<i64>(len)]
                          == data[i + len])
                ++len;
            if (len > best_len) {
                best_len = len;
                best_off = static_cast<u32>(off);
            }
            cand = chain[static_cast<u64>(cand)];
        }

        if (best_len >= kMinMatch) {
            emitSequence(out, data + anchor, i - anchor, best_off,
                         best_len);
            // Index the matched region (bounded so pathological inputs
            // stay linear-ish; skipped positions just match a bit
            // worse later).
            const u64 end = i + best_len;
            const u64 index_to =
                end - kMinMatch < i + 256 ? end - kMinMatch + 1
                                          : i + 256;
            for (u64 j = i; j < index_to && j + kMinMatch <= n; ++j) {
                const u32 hj = hash4(data + j);
                chain[j] = head[hj];
                head[hj] = static_cast<i64>(j);
            }
            i = end;
            anchor = i;
        } else {
            chain[i] = head[h];
            head[h] = static_cast<i64>(i);
            ++i;
        }
    }
    // Closing literal-only sequence (possibly empty).
    emitSequence(out, data + anchor, n - anchor, 0, 0);
    return out;
}

bool
lzDecompress(const Bytes &input, u64 rawSize, Bytes *out)
{
    out->clear();
    out->reserve(rawSize);
    u64 pos = 0;
    const u64 n = input.size();

    const auto read_length = [&](u64 base, u64 *len) {
        *len = base;
        if (base != 15)
            return true;
        for (;;) {
            if (pos >= n)
                return false;
            const u8 b = input[pos++];
            *len += b;
            if (b != 0xff)
                return true;
        }
    };

    while (pos < n) {
        const u8 token = input[pos++];
        u64 literal_count = 0;
        if (!read_length(token >> 4, &literal_count))
            return false;
        if (pos + literal_count > n)
            return false;
        if (out->size() + literal_count > rawSize)
            return false;
        out->insert(out->end(), input.begin() + static_cast<i64>(pos),
                    input.begin() + static_cast<i64>(pos + literal_count));
        pos += literal_count;
        if (pos == n)
            break; // final, literal-only sequence
        if (pos + 2 > n)
            return false;
        const u32 offset = static_cast<u32>(input[pos])
                         | (static_cast<u32>(input[pos + 1]) << 8);
        pos += 2;
        if (offset == 0 || offset > out->size())
            return false;
        u64 match_len = 0;
        if (!read_length(token & 0x0f, &match_len))
            return false;
        match_len += kMinMatch;
        if (out->size() + match_len > rawSize)
            return false;
        // Byte-by-byte: overlapping copies (offset < length) replicate
        // the most recent bytes, which is the RLE case LZ relies on.
        u64 src = out->size() - offset;
        for (u64 k = 0; k < match_len; ++k)
            out->push_back((*out)[src + k]);
    }
    return out->size() == rawSize;
}

} // namespace sonic::telemetry
