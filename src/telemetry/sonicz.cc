#include "telemetry/sonicz.hh"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <istream>
#include <map>
#include <mutex>
#include <ostream>
#include <thread>
#include <unordered_map>

#include "util/logging.hh"

namespace sonic::telemetry
{

// --- Schemas --------------------------------------------------------
//
// Column order is part of the writer's layout, but NOT of the read
// contract: since version 2, readers resolve columns by name, so a
// column list may grow at the end (or even reorder) without breaking
// old readers — they skip chunks of columns they do not know.
// List fields are a length column followed by flattened value columns;
// every row appends to every column of its schema exactly once per
// scalar and length-many times per list column.

namespace
{

// clang-format off
const std::vector<ColumnSpec> kSweepColumns = {
    {"planIndex", ColType::Int},
    {"net", ColType::Str},
    {"impl", ColType::Str},
    {"power", ColType::Str},
    {"env", ColType::Str},
    {"envCapFarads", ColType::F64},
    {"profile", ColType::Str},
    {"sample", ColType::Int},
    {"seed", ColType::Int},
    {"status", ColType::Str},
    {"reboots", ColType::Int},
    {"tasksExecuted", ColType::Int},
    {"liveSeconds", ColType::F64},
    {"deadSeconds", ColType::F64},
    {"totalSeconds", ColType::F64},
    {"energyJ", ColType::F64},
    {"harvestedJ", ColType::F64},
    {"predictedClass", ColType::Int},
    {"tailsTileWords", ColType::Int},
    {"opInstances", ColType::Int},
    {"captureNvmDigests", ColType::Int},
    {"scheduleLen", ColType::Int},
    {"scheduleIndex", ColType::Int},
    {"scheduleFired", ColType::Int},
    {"finalNvmDigest", ColType::Int},
    {"rebootDigestLen", ColType::Int},
    {"rebootDigest", ColType::Int},
    {"layerLen", ColType::Int},
    {"layerName", ColType::Str},
    {"layerKernelSeconds", ColType::F64},
    {"layerControlSeconds", ColType::F64},
    {"layerEnergyJ", ColType::F64},
    {"opLen", ColType::Int},
    {"opName", ColType::Str},
    {"opEnergyJ", ColType::F64},
    {"logitLen", ColType::Int},
    {"logit", ColType::Int},
};

const std::vector<ColumnSpec> kFleetColumns = {
    {"device", ColType::Int},
    {"net", ColType::Str},
    {"impl", ColType::Str},
    {"env", ColType::Str},
    {"envCapFarads", ColType::F64},
    {"pipeline", ColType::Str},
    {"seed", ColType::Int},
    {"status", ColType::Str},
    {"inferences", ColType::Int},
    {"reboots", ColType::Int},
    {"liveSeconds", ColType::F64},
    {"deadSeconds", ColType::F64},
    {"energyJ", ColType::F64},
    {"harvestedJ", ColType::F64},
    {"resultsDelivered", ColType::Int},
    {"txGaveUpRounds", ColType::Int},
    {"txAttempts", ColType::Int},
    {"txRetries", ColType::Int},
    {"radioEnergyJ", ColType::F64},
    {"senseEnergyJ", ColType::F64},
    {"txBackoffSeconds", ColType::F64},
    {"inferenceSecondsSum", ColType::F64},
    {"deliverySecondsSum", ColType::F64},
};

const std::vector<ColumnSpec> kTraceColumns = {
    {"device", ColType::Int},
    {"kind", ColType::Int},
    {"arg", ColType::Int},
    {"t", ColType::F64},
    {"energyJ", ColType::F64},
    {"value", ColType::F64},
    {"label", ColType::Str},
};
// clang-format on

constexpr u8 kBlockMarker = 0x42;  // 'B'
constexpr u8 kIndexMarker = 0x49;  // 'I'
constexpr u8 kFooterMarker = 0x45; // 'E'
constexpr u8 kCodecRaw = 0;
constexpr u8 kCodecLz = 1;
constexpr char kMagic[4] = {'S', 'N', 'C', 'Z'};
constexpr u64 kDigestBasis = 0xcbf29ce484222325ull;

void
putU64Le(Bytes &out, u64 value)
{
    for (u32 i = 0; i < 8; ++i)
        out.push_back(static_cast<u8>(value >> (8 * i)));
}

bool
getU64Le(const Bytes &bytes, u64 *pos, u64 *value)
{
    if (*pos + 8 > bytes.size())
        return false;
    u64 v = 0;
    for (u32 i = 0; i < 8; ++i)
        v |= static_cast<u64>(bytes[*pos + i]) << (8 * i);
    *pos += 8;
    *value = v;
    return true;
}

/** Fold 8 checksum bytes into a running FNV-1a digest. */
void
chainDigest(u64 *digest, u64 checksum)
{
    Bytes sum_bytes;
    putU64Le(sum_bytes, checksum);
    for (const u8 b : sum_bytes) {
        *digest ^= b;
        *digest *= 0x100000001b3ull;
    }
}

} // namespace

const std::vector<ColumnSpec> &
schemaColumns(SchemaKind kind)
{
    SONIC_ASSERT(kFleetColumns.size() == fleetcol::kColumnCount,
                 "fleetcol enum out of sync with kFleetColumns");
    SONIC_ASSERT(kTraceColumns.size() == tracecol::kColumnCount,
                 "tracecol enum out of sync with kTraceColumns");
    switch (kind) {
      case SchemaKind::Sweep: return kSweepColumns;
      case SchemaKind::Fleet: return kFleetColumns;
      case SchemaKind::Trace: return kTraceColumns;
    }
    fatal("unknown schema kind ", static_cast<u32>(kind));
}

// --- Writer ---------------------------------------------------------

SoniczWriter::SoniczWriter(std::ostream &os, SchemaKind kind,
                           const std::vector<ColumnSpec> &extraColumns,
                           u32 encoderThreads)
    : os_(os), kind_(kind)
{
    const auto &base = schemaColumns(kind);
    std::vector<ColumnSpec> specs = base;
    specs.insert(specs.end(), extraColumns.begin(),
                 extraColumns.end());
    SONIC_ASSERT(specs[0].type == ColType::Int,
                 "sonicz column 0 must be the Int id column (it feeds "
                 "the block index)");
    columns_.resize(specs.size());
    for (u64 c = 0; c < specs.size(); ++c)
        columns_[c].type = specs[c].type;

    Bytes header;
    header.insert(header.end(), kMagic, kMagic + 4);
    header.push_back(static_cast<u8>(kSoniczVersion));
    header.push_back(static_cast<u8>(kind));
    putVarint(header, specs.size());
    for (const auto &spec : specs) {
        const std::string name = spec.name;
        putVarint(header, name.size());
        header.insert(header.end(), name.begin(), name.end());
        header.push_back(static_cast<u8>(spec.type));
    }
    os_.write(reinterpret_cast<const char *>(header.data()),
              static_cast<std::streamsize>(header.size()));
    bytesWritten_ = header.size();
    // The header leads the footer digest chain: without this, a name
    // byte of a column the reader does not know would be malleable
    // (an unknown name flipped is still unknown).
    chainDigest(&chunkDigest_,
                fnv1aBytes(header.data(), header.size()));
    if (encoderThreads > 0)
        encoder_ = std::make_unique<Encoder>(encoderThreads);
}

void
SoniczWriter::putStr(u32 col, const std::string &value)
{
    SONIC_ASSERT(columns_[col].type == ColType::Str,
                 "sonicz: string cell into a non-string column");
    columns_[col].strs.push_back(value);
}

void
SoniczWriter::putInt(u32 col, u64 value)
{
    SONIC_ASSERT(columns_[col].type == ColType::Int,
                 "sonicz: int cell into a non-int column");
    columns_[col].ints.push_back(value);
}

void
SoniczWriter::putF64(u32 col, f64 value)
{
    SONIC_ASSERT(columns_[col].type == ColType::F64,
                 "sonicz: f64 cell into a non-f64 column");
    columns_[col].f64s.push_back(value);
}

void
SoniczWriter::endRow()
{
    ++rowsInBlock_;
    ++totalRows_;
    if (rowsInBlock_ >= kRowsPerBlock)
        flushBlock();
}

namespace
{

Bytes
encodeIntColumn(const std::vector<u64> &values)
{
    Bytes raw;
    putVarint(raw, values.size());
    u64 prev = 0;
    for (const u64 v : values) {
        // Wrapping delta from the previous value, zigzagged: device
        // indices become 1s, constant columns 0s, and arbitrary u64s
        // (seeds, digests) still fit 10 varint bytes.
        putVarint(raw, zigzag(static_cast<i64>(v - prev)));
        prev = v;
    }
    return raw;
}

Bytes
encodeF64Column(const std::vector<f64> &values)
{
    Bytes raw;
    raw.reserve(values.size() * 8);
    for (const f64 v : values)
        putU64Le(raw, std::bit_cast<u64>(v));
    return raw;
}

Bytes
encodeStrColumn(const std::vector<std::string> &values)
{
    // Per-block dictionary in first-use order + code stream.
    std::unordered_map<std::string, u64> codes;
    std::vector<const std::string *> dict;
    Bytes code_stream;
    putVarint(code_stream, values.size());
    for (const auto &v : values) {
        auto [it, inserted] = codes.try_emplace(v, dict.size());
        if (inserted)
            dict.push_back(&it->first);
        putVarint(code_stream, it->second);
    }
    Bytes raw;
    putVarint(raw, dict.size());
    for (const auto *entry : dict) {
        putVarint(raw, entry->size());
        raw.insert(raw.end(), entry->begin(), entry->end());
    }
    raw.insert(raw.end(), code_stream.begin(), code_stream.end());
    return raw;
}

} // namespace

/** One block fully encoded but not yet written: its serialized bytes
 * plus the chunk checksums the writer chains into the footer digest
 * at WRITE time — the chain stays in block order no matter which
 * encoder thread finished first. */
struct SoniczWriter::EncodedBlock
{
    Bytes bytes;
    std::vector<u64> checksums; ///< per chunk, in column order
    u64 rows = 0;
    u64 idMin = 0;
    u64 idMax = 0;
};

/**
 * The background block-encoding pool. Encoding a block is a pure
 * function of its own column contents (every context — string
 * dictionary, int delta, LZ window — resets per block), so blocks
 * encode concurrently and the output stays byte-identical to serial
 * as long as writes happen in sequence order, which the owner thread
 * enforces through take().
 */
struct SoniczWriter::Encoder
{
    struct Job
    {
        u64 seq = 0;
        u64 rows = 0;
        std::vector<Column> columns;
    };

    explicit Encoder(u32 thread_count)
    {
        threads.reserve(thread_count);
        for (u32 i = 0; i < thread_count; ++i)
            threads.emplace_back([this] { workerLoop(); });
    }

    ~Encoder()
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            stop = true;
        }
        workCv.notify_all();
        for (auto &t : threads)
            t.join();
    }

    /** Serial encoding core (also the encoderThreads == 0 path). */
    static EncodedBlock encode(std::vector<Column> &&columns, u64 rows);

    void
    submit(Job &&job)
    {
        {
            std::lock_guard<std::mutex> lock(mutex);
            jobs.push_back(std::move(job));
        }
        workCv.notify_one();
    }

    /** Fetch block `seq` if encoded (blocking when `wait`). */
    bool
    take(u64 seq, bool wait, EncodedBlock *out)
    {
        std::unique_lock<std::mutex> lock(mutex);
        if (wait)
            doneCv.wait(lock,
                        [&] { return done.find(seq) != done.end(); });
        auto it = done.find(seq);
        if (it == done.end())
            return false;
        *out = std::move(it->second);
        done.erase(it);
        return true;
    }

    void
    workerLoop()
    {
        for (;;) {
            Job job;
            {
                std::unique_lock<std::mutex> lock(mutex);
                workCv.wait(lock,
                            [&] { return stop || !jobs.empty(); });
                if (jobs.empty())
                    return; // stop, and nothing left to encode
                job = std::move(jobs.front());
                jobs.pop_front();
            }
            EncodedBlock encoded =
                encode(std::move(job.columns), job.rows);
            {
                std::lock_guard<std::mutex> lock(mutex);
                done.emplace(job.seq, std::move(encoded));
            }
            doneCv.notify_all();
        }
    }

    std::mutex mutex;
    std::condition_variable workCv;
    std::condition_variable doneCv;
    std::deque<Job> jobs;
    std::map<u64, EncodedBlock> done;
    bool stop = false;
    std::vector<std::thread> threads;

    /** Owner-thread-only sequence counters (no lock needed). */
    u64 nextSeq = 0;      ///< next block sequence number to assign
    u64 pendingWrite = 0; ///< next block sequence number to write
};

// Out of line: ~Encoder joins the pool (and an unfinished writer may
// abandon encoded-but-unwritten blocks, exactly like the serial
// writer abandons its unflushed tail).
SoniczWriter::~SoniczWriter() = default;

SoniczWriter::EncodedBlock
SoniczWriter::Encoder::encode(std::vector<Column> &&columns, u64 rows)
{
    EncodedBlock out;
    out.rows = rows;
    // Column 0 is the scalar Int id column in every schema, so it has
    // exactly one value per row of this block.
    SONIC_ASSERT(columns[0].ints.size() == rows,
                 "sonicz: id column out of sync with the row count");
    const auto [lo, hi] = std::minmax_element(
        columns[0].ints.begin(), columns[0].ints.end());
    out.idMin = *lo;
    out.idMax = *hi;

    Bytes block;
    block.push_back(kBlockMarker);
    putVarint(block, rows);
    putVarint(block, columns.size());
    for (u64 c = 0; c < columns.size(); ++c) {
        auto &col = columns[c];
        Bytes raw;
        switch (col.type) {
          case ColType::Str: raw = encodeStrColumn(col.strs); break;
          case ColType::Int: raw = encodeIntColumn(col.ints); break;
          case ColType::F64: raw = encodeF64Column(col.f64s); break;
        }
        Bytes packed = lzCompress(raw);
        const bool use_lz = packed.size() < raw.size();
        const Bytes &payload = use_lz ? packed : raw;

        // The checksum covers the chunk header (column index, codec,
        // sizes) as well as the payload: a reader that SKIPS this
        // chunk (unknown column) never validates the header fields
        // any other way. Version 1 checksummed the payload alone.
        const u64 chunk_start = block.size();
        putVarint(block, c);
        block.push_back(use_lz ? kCodecLz : kCodecRaw);
        putVarint(block, raw.size());
        putVarint(block, payload.size());
        u64 checksum = fnv1aBytes(block.data() + chunk_start,
                                  block.size() - chunk_start);
        checksum = fnv1aBytes(payload.data(), payload.size(),
                              checksum);
        putU64Le(block, checksum);
        block.insert(block.end(), payload.begin(), payload.end());
        out.checksums.push_back(checksum);
    }
    out.bytes = std::move(block);
    return out;
}

void
SoniczWriter::writeEncoded(const EncodedBlock &encoded)
{
    IndexEntry entry;
    entry.offset = bytesWritten_;
    entry.rows = encoded.rows;
    entry.idMin = encoded.idMin;
    entry.idMax = encoded.idMax;
    os_.write(reinterpret_cast<const char *>(encoded.bytes.data()),
              static_cast<std::streamsize>(encoded.bytes.size()));
    bytesWritten_ += encoded.bytes.size();
    // Chain every chunk checksum into the footer digest, in block
    // order — this happens at write time, never on encoder threads.
    for (const u64 checksum : encoded.checksums)
        chainDigest(&chunkDigest_, checksum);
    entry.digestAfter = chunkDigest_;
    index_.push_back(entry);
}

void
SoniczWriter::drainEncoded(bool wait_for_all)
{
    if (encoder_ == nullptr)
        return;
    while (encoder_->pendingWrite < encoder_->nextSeq) {
        EncodedBlock encoded;
        if (!encoder_->take(encoder_->pendingWrite, wait_for_all,
                            &encoded))
            return; // not ready and not waiting — keep appending rows
        ++encoder_->pendingWrite;
        writeEncoded(encoded);
    }
}

void
SoniczWriter::flushBlock()
{
    if (rowsInBlock_ == 0)
        return;

    // Steal the filled column contents (the writer keeps appending
    // into fresh vectors of the same shape while encoders work).
    std::vector<Column> block_columns(columns_.size());
    for (u64 c = 0; c < columns_.size(); ++c) {
        block_columns[c].type = columns_[c].type;
        block_columns[c].strs.swap(columns_[c].strs);
        block_columns[c].ints.swap(columns_[c].ints);
        block_columns[c].f64s.swap(columns_[c].f64s);
    }
    const u64 rows = rowsInBlock_;
    rowsInBlock_ = 0;

    if (encoder_ == nullptr) {
        writeEncoded(Encoder::encode(std::move(block_columns), rows));
        return;
    }
    encoder_->submit({encoder_->nextSeq++, rows,
                      std::move(block_columns)});
    // Opportunistically write whatever finished, without stalling the
    // append path behind a still-encoding block.
    drainEncoded(false);
}

void
SoniczWriter::finish()
{
    if (finished_)
        return;
    flushBlock();
    drainEncoded(true);

    // Block index: per-block offsets, row counts, column-0 ranges and
    // digest states, self-checksummed so a skipping reader can trust
    // the entries it navigates by.
    const u64 index_offset = bytesWritten_;
    Bytes index;
    index.push_back(kIndexMarker);
    putVarint(index, index_.size());
    for (const auto &entry : index_) {
        putVarint(index, entry.offset);
        putVarint(index, entry.rows);
        putVarint(index, entry.idMin);
        putVarint(index, entry.idMax);
        putU64Le(index, entry.digestAfter);
    }
    const u64 index_checksum =
        fnv1aBytes(index.data() + 1, index.size() - 1);
    putU64Le(index, index_checksum);
    chainDigest(&chunkDigest_, index_checksum);
    os_.write(reinterpret_cast<const char *>(index.data()),
              static_cast<std::streamsize>(index.size()));
    bytesWritten_ += index.size();

    Bytes footer;
    footer.push_back(kFooterMarker);
    putVarint(footer, totalRows_);
    putU64Le(footer, chunkDigest_);
    // The file's final 8 bytes locate the index, so readers seek to it
    // directly instead of scanning the blocks to find it.
    putU64Le(footer, index_offset);
    os_.write(reinterpret_cast<const char *>(footer.data()),
              static_cast<std::streamsize>(footer.size()));
    bytesWritten_ += footer.size();
    os_.flush();
    finished_ = true;
}

// --- Row appenders --------------------------------------------------

void
appendSweepRow(SoniczWriter &w, const app::SweepRecord &record)
{
    const auto &spec = record.spec;
    const auto &r = record.result;
    u32 c = 0;
    w.putInt(c++, record.planIndex);
    w.putStr(c++, spec.net);
    w.putStr(c++, std::string(kernels::implName(spec.impl)));
    w.putStr(c++, app::powerName(spec.power));
    w.putStr(c++, spec.environment.env);
    w.putF64(c++, spec.environment.capacitanceFarads);
    w.putStr(c++, app::profileName(spec.profile));
    w.putInt(c++, spec.sampleIndex);
    w.putInt(c++, spec.seed);
    w.putStr(c++, r.completed ? "ok"
                              : (r.nonTerminating ? "dnf" : "fail"));
    w.putInt(c++, r.reboots);
    w.putInt(c++, r.tasksExecuted);
    w.putF64(c++, r.liveSeconds);
    w.putF64(c++, r.deadSeconds);
    w.putF64(c++, r.totalSeconds);
    w.putF64(c++, r.energyJ);
    w.putF64(c++, r.harvestedJ);
    w.putInt(c++, r.predictedClass);
    w.putInt(c++, r.tailsTileWords);
    w.putInt(c++, r.opInstances);
    w.putInt(c++, spec.captureNvmDigests ? 1 : 0);
    w.putInt(c++, spec.failureSchedule.size());
    for (const u64 idx : spec.failureSchedule)
        w.putInt(c, idx);
    ++c;
    w.putInt(c++, r.scheduleFired);
    w.putInt(c++, r.finalNvmDigest);
    w.putInt(c++, r.rebootDigests.size());
    for (const u64 digest : r.rebootDigests)
        w.putInt(c, digest);
    ++c;
    w.putInt(c++, r.layers.size());
    for (const auto &layer : r.layers) {
        w.putStr(c, layer.name);
        w.putF64(c + 1, layer.kernelSeconds);
        w.putF64(c + 2, layer.controlSeconds);
        w.putF64(c + 3, layer.energyJ);
    }
    c += 4;
    w.putInt(c++, r.energyByOp.size());
    for (const auto &[op, joules] : r.energyByOp) {
        w.putStr(c, op);
        w.putF64(c + 1, joules);
    }
    c += 2;
    w.putInt(c++, r.logits.size());
    for (const i16 logit : r.logits)
        w.putInt(c, static_cast<u64>(static_cast<i64>(logit)));
    ++c;
    SONIC_ASSERT(c == kSweepColumns.size(),
                 "sweep schema column walk out of sync");
    w.endRow();
}

void
appendFleetCells(SoniczWriter &w, const fleet::DeviceTelemetry &t)
{
    const auto &a = t.assignment;
    u32 c = 0;
    w.putInt(c++, a.deviceIndex);
    w.putStr(c++, a.net);
    w.putStr(c++, std::string(kernels::implName(a.impl)));
    w.putStr(c++, a.environment.env);
    w.putF64(c++, a.environment.capacitanceFarads);
    w.putStr(c++, a.pipeline);
    w.putInt(c++, a.seed);
    w.putStr(c++, t.diedNonTerminating
                 ? "dnf"
                 : (t.failedIncomplete ? "fail" : "ok"));
    w.putInt(c++, t.inferencesCompleted);
    w.putInt(c++, t.reboots);
    w.putF64(c++, t.liveSeconds);
    w.putF64(c++, t.deadSeconds);
    w.putF64(c++, t.energyJ);
    w.putF64(c++, t.harvestedJ);
    w.putInt(c++, t.resultsDelivered);
    w.putInt(c++, t.txGaveUpRounds);
    w.putInt(c++, t.txAttempts);
    w.putInt(c++, t.txRetries);
    w.putF64(c++, t.radioEnergyJ);
    w.putF64(c++, t.senseEnergyJ);
    w.putF64(c++, t.txBackoffSeconds);
    w.putF64(c++, t.inferenceSecondsSum);
    w.putF64(c++, t.deliverySecondsSum);
    SONIC_ASSERT(c == kFleetColumns.size(),
                 "fleet schema column walk out of sync");
}

void
appendFleetRow(SoniczWriter &w, const fleet::DeviceTelemetry &t)
{
    appendFleetCells(w, t);
    w.endRow();
}

void
appendTraceRow(SoniczWriter &w, const TraceRow &row)
{
    u32 c = 0;
    w.putInt(c++, row.device);
    w.putInt(c++, row.kind);
    w.putInt(c++, row.arg);
    w.putF64(c++, row.t);
    w.putF64(c++, row.energyJ);
    w.putF64(c++, row.value);
    w.putStr(c++, row.label);
    SONIC_ASSERT(c == kTraceColumns.size(),
                 "trace schema column walk out of sync");
    w.endRow();
}

// --- Reader ---------------------------------------------------------

namespace
{

/** Decoded column values of one block plus the read cursor. */
struct DecodedColumn
{
    ColType type = ColType::Int;
    std::vector<std::string> strs;
    std::vector<u64> ints;
    std::vector<f64> f64s;
    u64 cursor = 0;

    u64
    size() const
    {
        switch (type) {
          case ColType::Str: return strs.size();
          case ColType::Int: return ints.size();
          case ColType::F64: return f64s.size();
        }
        return 0;
    }
};

/** Reader state shared by the block loop and the row materializers. */
struct BlockReader
{
    std::vector<DecodedColumn> columns;
    std::string error;

    bool
    fail(const std::string &message)
    {
        if (error.empty())
            error = message;
        return false;
    }

    bool
    takeStr(u32 col, std::string *out)
    {
        auto &c = columns[col];
        if (c.cursor >= c.strs.size())
            return fail("string column exhausted mid-row");
        *out = c.strs[c.cursor++];
        return true;
    }

    bool
    takeInt(u32 col, u64 *out)
    {
        auto &c = columns[col];
        if (c.cursor >= c.ints.size())
            return fail("int column exhausted mid-row");
        *out = c.ints[c.cursor++];
        return true;
    }

    bool
    takeF64(u32 col, f64 *out)
    {
        auto &c = columns[col];
        if (c.cursor >= c.f64s.size())
            return fail("f64 column exhausted mid-row");
        *out = c.f64s[c.cursor++];
        return true;
    }
};

bool
decodeIntColumn(const Bytes &raw, std::vector<u64> *out)
{
    u64 pos = 0;
    u64 count = 0;
    if (!getVarint(raw, &pos, &count))
        return false;
    if (count > raw.size()) // each value is >= 1 byte
        return false;
    out->reserve(count);
    u64 prev = 0;
    for (u64 i = 0; i < count; ++i) {
        u64 z = 0;
        if (!getVarint(raw, &pos, &z))
            return false;
        prev += static_cast<u64>(unzigzag(z));
        out->push_back(prev);
    }
    return pos == raw.size();
}

bool
decodeF64Column(const Bytes &raw, std::vector<f64> *out)
{
    if (raw.size() % 8 != 0)
        return false;
    u64 pos = 0;
    out->reserve(raw.size() / 8);
    while (pos < raw.size()) {
        u64 bits = 0;
        if (!getU64Le(raw, &pos, &bits))
            return false;
        out->push_back(std::bit_cast<f64>(bits));
    }
    return true;
}

bool
decodeStrColumn(const Bytes &raw, std::vector<std::string> *out)
{
    u64 pos = 0;
    u64 dict_size = 0;
    if (!getVarint(raw, &pos, &dict_size))
        return false;
    if (dict_size > raw.size())
        return false;
    std::vector<std::string> dict;
    dict.reserve(dict_size);
    for (u64 i = 0; i < dict_size; ++i) {
        u64 len = 0;
        if (!getVarint(raw, &pos, &len))
            return false;
        if (pos + len > raw.size())
            return false;
        dict.emplace_back(
            reinterpret_cast<const char *>(raw.data() + pos),
            len);
        pos += len;
    }
    u64 count = 0;
    if (!getVarint(raw, &pos, &count))
        return false;
    if (count > raw.size())
        return false;
    out->reserve(count);
    for (u64 i = 0; i < count; ++i) {
        u64 code = 0;
        if (!getVarint(raw, &pos, &code))
            return false;
        if (code >= dict.size())
            return false;
        out->push_back(dict[code]);
    }
    return pos == raw.size();
}

bool
materializeSweepRow(BlockReader &b, app::SweepRecord *out)
{
    auto &record = *out;
    auto &spec = record.spec;
    auto &r = record.result;
    record = app::SweepRecord{};
    u32 c = 0;
    u64 v = 0;
    std::string s;

    if (!b.takeInt(c++, &v))
        return false;
    record.planIndex = static_cast<u32>(v);
    if (!b.takeStr(c++, &spec.net))
        return false;
    if (!b.takeStr(c++, &s))
        return false;
    const auto *impl_info = kernels::ImplRegistry::instance().find(s);
    if (impl_info == nullptr)
        return b.fail("unknown implementation '" + s
                      + "' in the impl column (not registered in "
                        "this build)");
    spec.impl = impl_info->id;
    if (!b.takeStr(c++, &s))
        return false;
    if (!app::powerFromName(s, &spec.power))
        return b.fail("unknown power kind '" + s + "'");
    if (!b.takeStr(c++, &spec.environment.env))
        return false;
    if (!b.takeF64(c++, &spec.environment.capacitanceFarads))
        return false;
    if (!b.takeStr(c++, &s))
        return false;
    if (!app::profileFromName(s, &spec.profile))
        return b.fail("unknown profile '" + s + "'");
    if (!b.takeInt(c++, &v))
        return false;
    spec.sampleIndex = static_cast<u32>(v);
    if (!b.takeInt(c++, &spec.seed))
        return false;
    if (!b.takeStr(c++, &s))
        return false;
    if (s == "ok") {
        r.completed = true;
    } else if (s == "dnf") {
        r.nonTerminating = true;
    } else if (s != "fail") {
        return b.fail("unknown status '" + s + "'");
    }
    if (!b.takeInt(c++, &r.reboots))
        return false;
    if (!b.takeInt(c++, &r.tasksExecuted))
        return false;
    if (!b.takeF64(c++, &r.liveSeconds))
        return false;
    if (!b.takeF64(c++, &r.deadSeconds))
        return false;
    if (!b.takeF64(c++, &r.totalSeconds))
        return false;
    if (!b.takeF64(c++, &r.energyJ))
        return false;
    if (!b.takeF64(c++, &r.harvestedJ))
        return false;
    if (!b.takeInt(c++, &v))
        return false;
    r.predictedClass = static_cast<u32>(v);
    if (!b.takeInt(c++, &v))
        return false;
    r.tailsTileWords = static_cast<u32>(v);
    if (!b.takeInt(c++, &r.opInstances))
        return false;
    if (!b.takeInt(c++, &v))
        return false;
    spec.captureNvmDigests = v != 0;

    u64 len = 0;
    if (!b.takeInt(c++, &len))
        return false;
    spec.failureSchedule.resize(len);
    for (u64 i = 0; i < len; ++i)
        if (!b.takeInt(c, &spec.failureSchedule[i]))
            return false;
    ++c;
    if (!b.takeInt(c++, &r.scheduleFired))
        return false;
    if (!b.takeInt(c++, &r.finalNvmDigest))
        return false;
    if (!b.takeInt(c++, &len))
        return false;
    r.rebootDigests.resize(len);
    for (u64 i = 0; i < len; ++i)
        if (!b.takeInt(c, &r.rebootDigests[i]))
            return false;
    ++c;
    if (!b.takeInt(c++, &len))
        return false;
    r.layers.resize(len);
    for (u64 i = 0; i < len; ++i) {
        if (!b.takeStr(c, &r.layers[i].name)
            || !b.takeF64(c + 1, &r.layers[i].kernelSeconds)
            || !b.takeF64(c + 2, &r.layers[i].controlSeconds)
            || !b.takeF64(c + 3, &r.layers[i].energyJ))
            return false;
    }
    c += 4;
    if (!b.takeInt(c++, &len))
        return false;
    for (u64 i = 0; i < len; ++i) {
        f64 joules = 0.0;
        if (!b.takeStr(c, &s) || !b.takeF64(c + 1, &joules))
            return false;
        r.energyByOp[s] = joules;
    }
    c += 2;
    if (!b.takeInt(c++, &len))
        return false;
    r.logits.resize(len);
    for (u64 i = 0; i < len; ++i) {
        if (!b.takeInt(c, &v))
            return false;
        r.logits[i] = static_cast<i16>(static_cast<i64>(v));
    }
    ++c;
    return true;
}

bool
materializeTraceRow(BlockReader &b, TraceRow *out)
{
    u32 c = 0;
    u64 v = 0;
    if (!b.takeInt(c++, &out->device))
        return false;
    if (!b.takeInt(c++, &v))
        return false;
    out->kind = static_cast<u32>(v);
    if (!b.takeInt(c++, &v))
        return false;
    out->arg = static_cast<u32>(v);
    if (!b.takeF64(c++, &out->t))
        return false;
    if (!b.takeF64(c++, &out->energyJ))
        return false;
    if (!b.takeF64(c++, &out->value))
        return false;
    if (!b.takeStr(c++, &out->label))
        return false;
    SONIC_ASSERT(c == kTraceColumns.size(),
                 "trace schema column walk out of sync");
    return true;
}

bool
materializeFleetRow(BlockReader &b, fleet::DeviceTelemetry *out)
{
    auto &t = *out;
    t = fleet::DeviceTelemetry{};
    auto &a = t.assignment;
    u32 c = 0;
    u64 v = 0;
    std::string s;

    if (!b.takeInt(c++, &v))
        return false;
    a.deviceIndex = static_cast<u32>(v);
    if (!b.takeStr(c++, &a.net))
        return false;
    if (!b.takeStr(c++, &s))
        return false;
    const auto *impl_info = kernels::ImplRegistry::instance().find(s);
    if (impl_info == nullptr)
        return b.fail("unknown implementation '" + s
                      + "' in the impl column (not registered in "
                        "this build)");
    a.impl = impl_info->id;
    if (!b.takeStr(c++, &a.environment.env))
        return false;
    if (!b.takeF64(c++, &a.environment.capacitanceFarads))
        return false;
    if (!b.takeStr(c++, &a.pipeline))
        return false;
    if (!b.takeInt(c++, &a.seed))
        return false;
    if (!b.takeStr(c++, &s))
        return false;
    if (s == "dnf") {
        t.diedNonTerminating = true;
    } else if (s == "fail") {
        t.failedIncomplete = true;
    } else if (s != "ok") {
        return b.fail("unknown status '" + s + "'");
    }
    if (!b.takeInt(c++, &v))
        return false;
    t.inferencesCompleted = static_cast<u32>(v);
    if (!b.takeInt(c++, &t.reboots))
        return false;
    if (!b.takeF64(c++, &t.liveSeconds))
        return false;
    if (!b.takeF64(c++, &t.deadSeconds))
        return false;
    if (!b.takeF64(c++, &t.energyJ))
        return false;
    if (!b.takeF64(c++, &t.harvestedJ))
        return false;
    if (!b.takeInt(c++, &v))
        return false;
    t.resultsDelivered = static_cast<u32>(v);
    if (!b.takeInt(c++, &v))
        return false;
    t.txGaveUpRounds = static_cast<u32>(v);
    if (!b.takeInt(c++, &t.txAttempts))
        return false;
    if (!b.takeInt(c++, &t.txRetries))
        return false;
    if (!b.takeF64(c++, &t.radioEnergyJ))
        return false;
    if (!b.takeF64(c++, &t.senseEnergyJ))
        return false;
    if (!b.takeF64(c++, &t.txBackoffSeconds))
        return false;
    if (!b.takeF64(c++, &t.inferenceSecondsSum))
        return false;
    if (!b.takeF64(c++, &t.deliverySecondsSum))
        return false;
    return true;
}

/** One column as the file declares it, resolved against this build's
 * schema by name (kUnknownCol = a column this build does not know). */
constexpr u64 kUnknownCol = ~0ull;

struct FileColumn
{
    std::string name;
    ColType type = ColType::Int;
    u64 buildCol = kUnknownCol;
};

/** A version-2 index entry as read back. */
struct IndexEntry
{
    u64 offset = 0;
    u64 rows = 0;
    u64 idMin = 0;
    u64 idMax = 0;
    u64 digestAfter = 0;
};

} // namespace

/** Grants sonicz.cc's reader access to FleetBlockView's internals
 * without exposing DecodedColumn in the public header. */
struct FleetBlockViewAccess
{
    template <typename Columns>
    static void
    fill(FleetBlockView *view, const Columns &columns, u64 rows)
    {
        view->rows_ = rows;
        view->strCols_.assign(columns.size(), nullptr);
        view->intCols_.assign(columns.size(), nullptr);
        view->f64Cols_.assign(columns.size(), nullptr);
        for (u64 c = 0; c < columns.size(); ++c) {
            switch (columns[c].type) {
              case ColType::Str:
                view->strCols_[c] = &columns[c].strs;
                break;
              case ColType::Int:
                view->intCols_[c] = &columns[c].ints;
                break;
              case ColType::F64:
                view->f64Cols_[c] = &columns[c].f64s;
                break;
            }
        }
    }
};

namespace
{

/**
 * The shared reader core: row callbacks, the columnar fleet-block
 * callback, or both. Handles version 1 (full scan, exact layout) and
 * version 2 (by-name column resolution, unknown-column skipping,
 * index-guided block pruning under a RowRange).
 */
bool
readSoniczImpl(std::istream &in,
               const std::function<void(const app::SweepRecord &)>
                   &onSweep,
               const std::function<void(const fleet::DeviceTelemetry &)>
                   &onFleet,
               const std::function<void(const FleetBlockView &)>
                   &onFleetBlock,
               const std::function<void(const TraceRow &)> &onTrace,
               SoniczInfo *info, std::string *error,
               const RowRange *range)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    const auto fail = [&err](const std::string &message) {
        err = "sonicz: " + message;
        return false;
    };

    Bytes bytes;
    {
        char buf[1 << 16];
        while (in.read(buf, sizeof buf) || in.gcount() > 0)
            bytes.insert(bytes.end(), buf, buf + in.gcount());
    }

    u64 pos = 0;
    if (bytes.size() < 6 || std::memcmp(bytes.data(), kMagic, 4) != 0)
        return fail("not a .sonicz file (bad magic)");
    pos = 4;
    const u8 version = bytes[pos++];
    if (version < kOldestReadableSoniczVersion
        || version > kSoniczVersion)
        return fail("unsupported format version "
                    + std::to_string(version)
                    + " (this build reads versions "
                    + std::to_string(kOldestReadableSoniczVersion)
                    + ".." + std::to_string(kSoniczVersion) + ")");
    const u8 kind_byte = bytes[pos++];
    if (kind_byte != static_cast<u8>(SchemaKind::Sweep)
        && kind_byte != static_cast<u8>(SchemaKind::Fleet)
        && kind_byte != static_cast<u8>(SchemaKind::Trace))
        return fail("unknown schema kind "
                    + std::to_string(kind_byte));
    const SchemaKind kind = static_cast<SchemaKind>(kind_byte);
    const auto &specs = schemaColumns(kind);
    if (onFleetBlock && kind != SchemaKind::Fleet)
        return fail("columnar block reads apply to fleet telemetry; "
                    "this is not a fleet file");
    if (onTrace && kind != SchemaKind::Trace)
        return fail("trace row reads apply to .sonictrace files; "
                    "this is not a trace file");

    // Resolve the file's columns against this build's schema by NAME:
    // unknown columns (a newer writer's additions) are tolerated and
    // skipped; a missing or type-changed build column is an error.
    u64 column_count = 0;
    if (!getVarint(bytes, &pos, &column_count))
        return fail("truncated header");
    if (column_count > bytes.size())
        return fail("truncated header");
    std::vector<FileColumn> file_cols(column_count);
    std::vector<u64> build_to_file(specs.size(), kUnknownCol);
    for (u64 c = 0; c < column_count; ++c) {
        u64 name_len = 0;
        if (!getVarint(bytes, &pos, &name_len)
            || pos + name_len + 1 > bytes.size())
            return fail("truncated header");
        auto &fc = file_cols[c];
        fc.name.assign(
            reinterpret_cast<const char *>(bytes.data() + pos),
            name_len);
        pos += name_len;
        const u8 type = bytes[pos++];
        if (type > static_cast<u8>(ColType::F64))
            return fail("column '" + fc.name
                        + "' has unknown type "
                        + std::to_string(type));
        fc.type = static_cast<ColType>(type);
        for (u64 b = 0; b < specs.size(); ++b) {
            if (fc.name != specs[b].name)
                continue;
            if (build_to_file[b] != kUnknownCol)
                return fail("duplicate column '" + fc.name + "'");
            if (fc.type != specs[b].type)
                return fail("column '" + fc.name
                            + "' changed type; this build cannot "
                              "read it");
            fc.buildCol = b;
            build_to_file[b] = c;
            break;
        }
    }
    for (u64 b = 0; b < specs.size(); ++b)
        if (build_to_file[b] == kUnknownCol)
            return fail("missing column '"
                        + std::string(specs[b].name)
                        + "' (this build needs it)");

    SoniczInfo local_info;
    SoniczInfo &out_info = info != nullptr ? *info : local_info;
    out_info = SoniczInfo{};
    out_info.kind = kind;
    out_info.version = version;
    out_info.fileBytes = bytes.size();
    out_info.hasIndex = version >= 2;

    // Version >= 2: locate and validate the block index up front (the
    // file's final 8 bytes point at it), so the block walk below can
    // navigate by it.
    std::vector<IndexEntry> index;
    u64 index_offset = 0;
    u64 index_checksum = 0;
    u64 footer_pos = 0;
    const u64 header_end = pos;
    if (version >= 2) {
        if (bytes.size() < header_end + 8)
            return fail("truncated file (no index trailer)");
        u64 tail_pos = bytes.size() - 8;
        u64 declared_offset = 0;
        {
            u64 p = tail_pos;
            getU64Le(bytes, &p, &declared_offset);
        }
        if (declared_offset < header_end || declared_offset >= tail_pos
            || bytes[declared_offset] != kIndexMarker)
            return fail("bad index offset trailer (truncated or "
                        "corrupted file)");
        index_offset = declared_offset;
        u64 p = index_offset + 1;
        u64 entry_count = 0;
        if (!getVarint(bytes, &p, &entry_count))
            return fail("truncated index");
        if (entry_count > bytes.size())
            return fail("truncated index");
        index.resize(entry_count);
        u64 prev_offset = 0;
        for (u64 i = 0; i < entry_count; ++i) {
            auto &e = index[i];
            if (!getVarint(bytes, &p, &e.offset)
                || !getVarint(bytes, &p, &e.rows)
                || !getVarint(bytes, &p, &e.idMin)
                || !getVarint(bytes, &p, &e.idMax)
                || !getU64Le(bytes, &p, &e.digestAfter))
                return fail("truncated index");
            if (e.idMin > e.idMax
                || (i == 0 ? e.offset != header_end
                           : e.offset <= prev_offset)
                || e.offset >= index_offset)
                return fail("index entry " + std::to_string(i)
                            + " is inconsistent");
            prev_offset = e.offset;
        }
        if (p > bytes.size() - 8)
            return fail("truncated index");
        index_checksum = fnv1aBytes(bytes.data() + index_offset + 1,
                                    p - (index_offset + 1));
        u64 declared_checksum = 0;
        if (!getU64Le(bytes, &p, &declared_checksum))
            return fail("truncated index");
        if (declared_checksum != index_checksum)
            return fail("index checksum mismatch (corrupted index)");
        footer_pos = p;
    }

    u64 chunk_digest = kDigestBasis;
    // Version >= 2 chains the header checksum first, covering column
    // names the resolution loop above could not miss on its own
    // (unknown-column names in particular).
    if (version >= 2)
        chainDigest(&chunk_digest,
                    fnv1aBytes(bytes.data(), header_end));
    app::SweepRecord sweep_row;
    fleet::DeviceTelemetry fleet_row;
    TraceRow trace_row;

    // Decode the block at *cursor (which must point at its marker),
    // dispatch its rows or its columnar view, and advance the cursor.
    const auto read_block = [&](u64 *cursor) -> bool {
        u64 bpos = *cursor;
        const u64 block_index = out_info.blocks;
        if (bpos >= bytes.size() || bytes[bpos] != kBlockMarker)
            return fail("unknown block marker at byte "
                        + std::to_string(bpos));
        ++bpos;
        u64 row_count = 0;
        u64 chunk_count = 0;
        if (!getVarint(bytes, &bpos, &row_count)
            || !getVarint(bytes, &bpos, &chunk_count))
            return fail("truncated block header");
        if (chunk_count != file_cols.size())
            return fail("block " + std::to_string(block_index)
                        + " has " + std::to_string(chunk_count)
                        + " chunks, expected "
                        + std::to_string(file_cols.size()));

        BlockReader block;
        block.columns.resize(specs.size());
        for (u64 k = 0; k < chunk_count; ++k) {
            const u64 chunk_start = bpos;
            u64 col = 0;
            if (!getVarint(bytes, &bpos, &col))
                return fail("truncated chunk header");
            if (col >= file_cols.size())
                return fail("chunk names column "
                            + std::to_string(col)
                            + " which the file header does not "
                              "declare");
            const auto &fc = file_cols[col];
            if (bpos >= bytes.size())
                return fail("truncated chunk header");
            const u8 codec = bytes[bpos++];
            u64 raw_size = 0, stored_size = 0, checksum = 0;
            if (!getVarint(bytes, &bpos, &raw_size)
                || !getVarint(bytes, &bpos, &stored_size))
                return fail("truncated chunk header");
            const u64 checksum_pos = bpos;
            if (!getU64Le(bytes, &bpos, &checksum))
                return fail("truncated chunk header");
            if (bpos + stored_size > bytes.size())
                return fail("truncated chunk payload (block "
                            + std::to_string(block_index)
                            + ", column '" + fc.name + "')");
            const u8 *payload = bytes.data() + bpos;
            bpos += stored_size;

            // Version >= 2 checksums the chunk header bytes too; a
            // skipped (unknown-column) chunk has no other validation
            // of its codec and size fields. Version 1 covered the
            // payload alone.
            u64 computed;
            if (version >= 2) {
                computed = fnv1aBytes(bytes.data() + chunk_start,
                                      checksum_pos - chunk_start);
                computed =
                    fnv1aBytes(payload, stored_size, computed);
            } else {
                computed = fnv1aBytes(payload, stored_size);
            }
            if (computed != checksum)
                return fail("checksum mismatch in block "
                            + std::to_string(block_index)
                            + ", column '" + fc.name
                            + "' (corrupted payload)");
            chainDigest(&chunk_digest, checksum);
            out_info.rawBytes += raw_size;
            out_info.storedBytes += stored_size;

            // A column this build does not know: its chunk is
            // checksum-verified and digest-chained above, then
            // skipped — that IS the schema-evolution contract.
            if (fc.buildCol == kUnknownCol)
                continue;

            Bytes raw;
            if (codec == kCodecRaw) {
                if (stored_size != raw_size)
                    return fail("raw chunk size mismatch (block "
                                + std::to_string(block_index)
                                + ", column '" + fc.name + "')");
                raw.assign(payload, payload + stored_size);
            } else if (codec == kCodecLz) {
                Bytes stored(payload, payload + stored_size);
                if (!lzDecompress(stored, raw_size, &raw))
                    return fail("LZ decode failed in block "
                                + std::to_string(block_index)
                                + ", column '" + fc.name + "'");
            } else {
                return fail("unknown codec "
                            + std::to_string(codec));
            }

            auto &decoded = block.columns[fc.buildCol];
            decoded.type = fc.type;
            bool ok = false;
            switch (decoded.type) {
              case ColType::Str:
                ok = decodeStrColumn(raw, &decoded.strs);
                break;
              case ColType::Int:
                ok = decodeIntColumn(raw, &decoded.ints);
                break;
              case ColType::F64:
                ok = decodeF64Column(raw, &decoded.f64s);
                break;
            }
            if (!ok)
                return fail("column decode failed in block "
                            + std::to_string(block_index)
                            + ", column '" + fc.name + "'");
        }

        if (onFleetBlock) {
            // The fleet schema is all-scalar: every column must hold
            // exactly one value per row before the columnar view is
            // handed out.
            for (u64 c = 0; c < block.columns.size(); ++c)
                if (block.columns[c].size() != row_count)
                    return fail("column '"
                                + std::string(specs[c].name)
                                + "' holds "
                                + std::to_string(
                                      block.columns[c].size())
                                + " values for "
                                + std::to_string(row_count)
                                + " rows (block "
                                + std::to_string(block_index) + ")");
            FleetBlockView view;
            FleetBlockViewAccess::fill(&view, block.columns,
                                       row_count);
            onFleetBlock(view);
        }
        if (onSweep || onFleet || !onFleetBlock) {
            for (u64 row = 0; row < row_count; ++row) {
                bool ok;
                if (kind == SchemaKind::Sweep) {
                    ok = materializeSweepRow(block, &sweep_row);
                    if (ok && onSweep)
                        onSweep(sweep_row);
                } else if (kind == SchemaKind::Fleet) {
                    ok = materializeFleetRow(block, &fleet_row);
                    if (ok && onFleet)
                        onFleet(fleet_row);
                } else {
                    ok = materializeTraceRow(block, &trace_row);
                    if (ok && onTrace)
                        onTrace(trace_row);
                }
                if (!ok)
                    return fail((block.error.empty()
                                     ? "row materialization failed"
                                     : block.error)
                                + " (block "
                                + std::to_string(block_index)
                                + ", row " + std::to_string(row)
                                + ")");
            }
            for (u64 c = 0; c < block.columns.size(); ++c) {
                if (block.columns[c].cursor
                    != block.columns[c].size())
                    return fail(
                        "column '" + std::string(specs[c].name)
                        + "' holds "
                        + std::to_string(block.columns[c].size())
                        + " values but the rows consumed "
                        + std::to_string(block.columns[c].cursor)
                        + " (block " + std::to_string(block_index)
                        + ")");
            }
        }
        out_info.rows += row_count;
        ++out_info.blocks;
        *cursor = bpos;
        (void)row_count;
        return true;
    };

    if (version >= 2) {
        // Index-guided walk: every block's observed position, row
        // count and digest state must match its index entry; blocks
        // outside the row range are skipped undecoded by trusting the
        // (checksummed) entry instead.
        for (u64 i = 0; i < index.size(); ++i) {
            const auto &e = index[i];
            if (pos != e.offset)
                return fail("index entry " + std::to_string(i)
                            + " points at byte "
                            + std::to_string(e.offset)
                            + " but the blocks end at "
                            + std::to_string(pos));
            const bool prune = range != nullptr
                && (e.idMax < range->lo || e.idMin > range->hi);
            if (prune) {
                pos = i + 1 < index.size() ? index[i + 1].offset
                                           : index_offset;
                chunk_digest = e.digestAfter;
                out_info.rows += e.rows;
                ++out_info.blocks;
                ++out_info.blocksSkipped;
                continue;
            }
            const u64 rows_before = out_info.rows;
            if (!read_block(&pos))
                return false;
            if (out_info.rows - rows_before != e.rows)
                return fail("index entry " + std::to_string(i)
                            + " declares " + std::to_string(e.rows)
                            + " rows but the block held "
                            + std::to_string(out_info.rows
                                             - rows_before));
            if (chunk_digest != e.digestAfter)
                return fail("index digest mismatch after block "
                            + std::to_string(i)
                            + " (corrupted index or blocks)");
        }
        if (pos != index_offset)
            return fail("blocks do not end at the index (corrupted "
                        "file)");
        chainDigest(&chunk_digest, index_checksum);
        pos = footer_pos;
    } else {
        for (;;) {
            if (pos >= bytes.size())
                return fail("truncated file (missing footer — the "
                            "writer did not finish())");
            if (bytes[pos] == kFooterMarker)
                break;
            if (!read_block(&pos))
                return false;
        }
    }

    if (pos >= bytes.size() || bytes[pos] != kFooterMarker)
        return fail("truncated file (missing footer — the writer "
                    "did not finish())");
    ++pos;
    u64 declared_rows = 0;
    u64 declared_digest = 0;
    if (!getVarint(bytes, &pos, &declared_rows)
        || !getU64Le(bytes, &pos, &declared_digest))
        return fail("truncated footer");
    if (declared_rows != out_info.rows)
        return fail("footer declares " + std::to_string(declared_rows)
                    + " rows but the blocks held "
                    + std::to_string(out_info.rows));
    if (declared_digest != chunk_digest)
        return fail("footer digest mismatch (blocks were corrupted "
                    "or reordered)");
    if (version >= 2)
        pos += 8; // the index offset trailer, validated up front
    if (pos != bytes.size())
        return fail("trailing garbage after the footer");
    return true;
}

} // namespace

bool
readSonicz(std::istream &in,
           const std::function<void(const app::SweepRecord &)> &onSweep,
           const std::function<void(const fleet::DeviceTelemetry &)>
               &onFleet,
           SoniczInfo *info, std::string *error, const RowRange *range)
{
    return readSoniczImpl(in, onSweep, onFleet, nullptr, nullptr, info,
                          error, range);
}

bool
readFleetBlocks(std::istream &in,
                const std::function<void(const FleetBlockView &)>
                    &onBlock,
                SoniczInfo *info, std::string *error,
                const RowRange *range)
{
    return readSoniczImpl(in, nullptr, nullptr, onBlock, nullptr, info,
                          error, range);
}

bool
readTraceRows(std::istream &in,
              const std::function<void(const TraceRow &)> &onRow,
              SoniczInfo *info, std::string *error,
              const RowRange *range)
{
    return readSoniczImpl(in, nullptr, nullptr, nullptr, onRow, info,
                          error, range);
}

} // namespace sonic::telemetry
