/**
 * @file
 * .sonicz — the lossless columnar telemetry container for sweep
 * records and fleet device telemetry (the genozip seg/piz idea applied
 * to this repo's rows: split records into per-field contexts, encode
 * each column with the codec that fits it, compress per block, verify
 * per-chunk checksums on read).
 *
 * Layout (all integers LEB128 varints unless sized):
 *
 *   header:  "SNCZ" magic, u8 version, u8 schema kind,
 *            column count, then per column: name, type byte
 *   block:   'B', row count, chunk count, then per column chunk:
 *            column index, codec byte (raw | lz), raw size,
 *            stored size, u64 FNV-1a checksum of the stored bytes,
 *            payload
 *   index:   (version >= 2) 'I', block count, then per block: byte
 *            offset, row count, min/max of column 0 (the device /
 *            plan index), u64 digest state after the block's chunks —
 *            then a u64 FNV-1a checksum of the index payload
 *   footer:  'E', total row count, u64 digest chaining (version >= 2)
 *            the header checksum, then every chunk checksum, then
 *            (version >= 2) the index checksum
 *            (truncation cannot look like clean EOF); version >= 2
 *            files end with the u64 byte offset of the index, so
 *            readers can seek to it without scanning the blocks
 *
 * Column contexts:
 *  - Str:  per-block dictionary in first-use order + code stream
 *          (net/impl/environment/pipeline/status names repeat
 *          constantly across a fleet - dictionary coding collapses
 *          them before LZ even runs)
 *  - Int:  zigzag(delta) varints (device indices become streams of
 *          1s, constant columns become streams of 0s)
 *  - F64:  raw little-endian bit patterns ("lossless" means the bit
 *          pattern, not a decimal rendering)
 * Every chunk is then LZ-compressed (telemetry/codec.hh) when that
 * wins, or stored raw when it does not.
 *
 * The schemas store exactly the fields the direct CSV/JSON sinks
 * print (derived rates are recomputed from bit-exact stored fields),
 * so sonic_cat re-emission through those same sink classes is
 * byte-identical to a direct run. Schema evolution: readers resolve
 * columns by NAME (order-independent), tolerate unknown columns a
 * newer writer appended (their chunks are checksum-verified and
 * skipped), and error on a missing or type-changed column this build
 * needs. Version-1 files (no index) still read via a full scan.
 */

#ifndef SONIC_TELEMETRY_SONICZ_HH
#define SONIC_TELEMETRY_SONICZ_HH

#include <functional>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "app/engine.hh"
#include "fleet/fleet.hh"
#include "telemetry/codec.hh"

namespace sonic::telemetry
{

/** Container format version this build writes. */
constexpr u32 kSoniczVersion = 2;

/** Oldest version this build still reads (scan fallback, no index). */
constexpr u32 kOldestReadableSoniczVersion = 1;

/** What one .sonicz file holds (one schema per file). */
enum class SchemaKind : u8
{
    Sweep = 1, ///< app::SweepRecord rows (the engine's CSV/JSON sinks)
    Fleet = 2, ///< fleet::DeviceTelemetry rows (the fleet CSV sink)
    Trace = 3  ///< trace::TraceRow events (the .sonictrace container)
};

/** Column value classes (the three context encoders). */
enum class ColType : u8
{
    Str = 0,
    Int = 1,
    F64 = 2
};

/** One schema column: a name (the resolution key) + type. */
struct ColumnSpec
{
    const char *name;
    ColType type;
};

/** The fixed column list of a schema kind. */
const std::vector<ColumnSpec> &schemaColumns(SchemaKind kind);

/** kFleetColumns positions, for the columnar block accessors below
 * (kept in sync with the list in sonicz.cc by a static_assert). */
namespace fleetcol
{
enum : u32
{
    kDevice = 0,
    kNet,
    kImpl,
    kEnv,
    kEnvCap,
    kPipeline,
    kSeed,
    kStatus,
    kInferences,
    kReboots,
    kLiveSeconds,
    kDeadSeconds,
    kEnergyJ,
    kHarvestedJ,
    kResultsDelivered,
    kTxGaveUpRounds,
    kTxAttempts,
    kTxRetries,
    kRadioEnergyJ,
    kSenseEnergyJ,
    kTxBackoffSeconds,
    kInferenceSecondsSum,
    kDeliverySecondsSum,
    kColumnCount
};
} // namespace fleetcol

/** kTraceColumns positions (same sync contract as fleetcol). */
namespace tracecol
{
enum : u32
{
    kDevice = 0,
    kKind,
    kArg,
    kT,
    kEnergyJ,
    kValue,
    kLabel,
    kColumnCount
};
} // namespace tracecol

/**
 * One trace event row of a .sonictrace file (a .sonicz file with the
 * Trace schema). `kind` is a trace::TraceEventKind; `t` is device
 * wall time (live + dead seconds) and `energyJ` cumulative consumed
 * energy at the stamp, both offset to the device's fleet lifetime when
 * recorded by the fleet. `value`/`arg`/`label` are kind-specific.
 */
struct TraceRow
{
    u64 device = 0;
    u32 kind = 0;
    u32 arg = 0;
    f64 t = 0.0;
    f64 energyJ = 0.0;
    f64 value = 0.0;
    std::string label;
};

/**
 * Streaming .sonicz writer. Cells are appended column-wise per row
 * (every column exactly once per scalar, list columns length-first),
 * rows are closed with endRow(), and blocks of kRowsPerBlock rows are
 * encoded + flushed as they fill. finish() flushes the tail block, the
 * block index, and the footer; a file without its footer is rejected
 * by the reader as truncated.
 *
 * `extraColumns` appends columns after the schema's fixed list (cell
 * them by index kFleetColumns.size() + i, before endRow()). This is
 * the schema-evolution hook: it writes the file a FUTURE build with a
 * wider schema would write, so tests can pin that today's reader
 * tolerates it. The name pointers must outlive the writer.
 */
class SoniczWriter
{
  public:
    static constexpr u32 kRowsPerBlock = 4096;

    SoniczWriter(std::ostream &os, SchemaKind kind,
                 const std::vector<ColumnSpec> &extraColumns = {},
                 u32 encoderThreads = 0);
    ~SoniczWriter();

    void putStr(u32 col, const std::string &value);
    void putInt(u32 col, u64 value);
    void putF64(u32 col, f64 value);
    void endRow();
    void finish();

    u64 rowsWritten() const { return totalRows_; }

  private:
    struct Column
    {
        ColType type;
        std::vector<std::string> strs;
        std::vector<u64> ints;
        std::vector<f64> f64s;
    };

    /** One block's index entry, captured as the block is flushed. */
    struct IndexEntry
    {
        u64 offset = 0;  ///< byte offset of the block marker
        u64 rows = 0;
        u64 idMin = 0;   ///< min of column 0 (device / plan index)
        u64 idMax = 0;
        u64 digestAfter = 0; ///< chunk digest state after this block
    };

    struct EncodedBlock;
    struct Encoder;

    void flushBlock();
    void writeEncoded(const EncodedBlock &block);
    void drainEncoded(bool wait_for_all);

    std::ostream &os_;
    SchemaKind kind_;
    std::vector<Column> columns_;
    std::vector<IndexEntry> index_;
    u32 rowsInBlock_ = 0;
    u64 totalRows_ = 0;
    u64 bytesWritten_ = 0;
    u64 chunkDigest_ = 0xcbf29ce484222325ull;
    bool finished_ = false;

    /**
     * Background block-encoding state (null when encoderThreads == 0:
     * the serial path encodes and writes inline). Blocks are handed to
     * the encoder as their columns fill; flushBlock() drains finished
     * blocks opportunistically, finish() drains them all, and both
     * write strictly in sequence order.
     */
    std::unique_ptr<Encoder> encoder_;
};

/** Append one sweep record as a .sonicz row. */
void appendSweepRow(SoniczWriter &writer,
                    const app::SweepRecord &record);

/** Append one fleet telemetry row (the runFleet-materialized view:
 * scalar fields and sums; per-round latency lists are not part of the
 * streamed telemetry — see fleet::FleetColumns). */
void appendFleetRow(SoniczWriter &writer,
                    const fleet::DeviceTelemetry &device);

/** The same standard cells WITHOUT closing the row — for writers
 * built with extraColumns: put the extra cells, then endRow(). */
void appendFleetCells(SoniczWriter &writer,
                      const fleet::DeviceTelemetry &device);

/** Append one trace event as a .sonictrace row. */
void appendTraceRow(SoniczWriter &writer, const TraceRow &row);

/** Reader-side file facts (sonic_cat --info). */
struct SoniczInfo
{
    SchemaKind kind = SchemaKind::Sweep;
    u32 version = 0;
    u64 rows = 0;
    u64 blocks = 0;
    u64 fileBytes = 0;
    /** Sum of raw (uncompressed) chunk bytes over DECODED blocks. */
    u64 rawBytes = 0;
    /** Sum of stored (compressed) chunk bytes over decoded blocks. */
    u64 storedBytes = 0;
    /** Whether the file carries a block index (version >= 2). */
    bool hasIndex = false;
    /** Blocks the index let the reader skip without decoding (their
     * rows still count toward `rows`; a read without a row range
     * always decodes — and checksum-verifies — every block). */
    u64 blocksSkipped = 0;
};

/**
 * Inclusive filter on column 0 (the device index of fleet telemetry,
 * the plan index of sweep records). A range is a PRUNING HINT: blocks
 * whose indexed [min, max] misses the range are skipped undecoded
 * (their declared digest keeps the footer chain verifiable), but a
 * partially-overlapping block still delivers all its rows — callers
 * keep their own row-level filter.
 */
struct RowRange
{
    u64 lo = 0;
    u64 hi = ~0ull;
};

/**
 * Read a .sonicz stream, invoking the schema-matching callback once
 * per row in file order. Either callback may be null (rows of that
 * schema are still validated and counted). Returns false with a
 * diagnostic on any malformed input: bad magic, unsupported version
 * or schema kind, a missing or type-changed schema column, per-chunk
 * checksum mismatch, codec errors, truncation, index/footer digest
 * mismatch, or column/row accounting that does not add up.
 */
bool readSonicz(std::istream &in,
                const std::function<void(const app::SweepRecord &)>
                    &onSweep,
                const std::function<void(const fleet::DeviceTelemetry &)>
                    &onFleet,
                SoniczInfo *info, std::string *error,
                const RowRange *range = nullptr);

/**
 * Read a TRACE .sonicz stream (.sonictrace), invoking onRow once per
 * event in file order. Errors on sweep/fleet files. Same validation
 * and range-pruning semantics as readSonicz (column 0 is the device
 * index, so a RowRange selects devices).
 */
bool readTraceRows(std::istream &in,
                   const std::function<void(const TraceRow &)> &onRow,
                   SoniczInfo *info, std::string *error,
                   const RowRange *range = nullptr);

/**
 * One decoded block of a FLEET file, exposed columnar: the reader's
 * decoded arrays by kFleetColumns position (see telemetry::fleetcol),
 * valid only inside the readFleetBlocks callback. This is how the
 * aggregator and the planner ingest a million-device file without
 * materializing a DeviceTelemetry per row.
 */
class FleetBlockView
{
  public:
    u64 rows() const { return rows_; }

    const std::string &
    str(u32 col, u64 row) const
    {
        return (*strCols_[col])[row];
    }

    u64
    intAt(u32 col, u64 row) const
    {
        return (*intCols_[col])[row];
    }

    f64
    f64At(u32 col, u64 row) const
    {
        return (*f64Cols_[col])[row];
    }

  private:
    friend struct FleetBlockViewAccess;

    u64 rows_ = 0;
    std::vector<const std::vector<std::string> *> strCols_;
    std::vector<const std::vector<u64> *> intCols_;
    std::vector<const std::vector<f64> *> f64Cols_;
};

/**
 * Read a FLEET .sonicz stream block-by-block (columnar, no row
 * materialization). Errors on sweep files. Same validation and
 * range-pruning semantics as readSonicz.
 */
bool readFleetBlocks(std::istream &in,
                     const std::function<void(const FleetBlockView &)>
                         &onBlock,
                     SoniczInfo *info, std::string *error,
                     const RowRange *range = nullptr);

/** Engine sink writing sweep records as .sonicz (open the stream in
 * binary mode). */
class SoniczSweepSink : public app::ResultSink
{
  public:
    explicit SoniczSweepSink(std::ostream &os, u32 encoderThreads = 0)
        : writer_(os, SchemaKind::Sweep, {}, encoderThreads)
    {
    }

    void add(const app::SweepRecord &record) override
    {
        appendSweepRow(writer_, record);
    }

    void end() override { writer_.finish(); }

  private:
    SoniczWriter writer_;
};

/** Fleet sink writing device telemetry as .sonicz. `encoderThreads`
 * moves block encoding off the emit path (byte-identical output; see
 * SoniczWriter) — wire it to the fleet's worker-thread count. */
class SoniczFleetSink : public fleet::FleetSink
{
  public:
    explicit SoniczFleetSink(std::ostream &os, u32 encoderThreads = 0)
        : writer_(os, SchemaKind::Fleet, {}, encoderThreads)
    {
    }

    void add(const fleet::DeviceTelemetry &device) override
    {
        appendFleetRow(writer_, device);
    }

    void end() override { writer_.finish(); }

  private:
    SoniczWriter writer_;
};

} // namespace sonic::telemetry

#endif // SONIC_TELEMETRY_SONICZ_HH
