/**
 * @file
 * .sonicz — the lossless columnar telemetry container for sweep
 * records and fleet device telemetry (the genozip seg/piz idea applied
 * to this repo's rows: split records into per-field contexts, encode
 * each column with the codec that fits it, compress per block, verify
 * per-chunk checksums on read).
 *
 * Layout (all integers LEB128 varints unless sized):
 *
 *   header:  "SNCZ" magic, u8 version, u8 schema kind,
 *            column count, then per column: name, type byte
 *   block:   'B', row count, chunk count, then per column chunk:
 *            column index, codec byte (raw | lz), raw size,
 *            stored size, u64 FNV-1a checksum of the stored bytes,
 *            payload
 *   footer:  'E', total row count, u64 digest chaining every chunk
 *            checksum (truncation cannot look like clean EOF)
 *
 * Column contexts:
 *  - Str:  per-block dictionary in first-use order + code stream
 *          (net/impl/environment/pipeline/status names repeat
 *          constantly across a fleet - dictionary coding collapses
 *          them before LZ even runs)
 *  - Int:  zigzag(delta) varints (device indices become streams of
 *          1s, constant columns become streams of 0s)
 *  - F64:  raw little-endian bit patterns ("lossless" means the bit
 *          pattern, not a decimal rendering)
 * Every chunk is then LZ-compressed (telemetry/codec.hh) when that
 * wins, or stored raw when it does not.
 *
 * The schemas store exactly the fields the direct CSV/JSON sinks
 * print (derived rates are recomputed from bit-exact stored fields),
 * so sonic_cat re-emission through those same sink classes is
 * byte-identical to a direct run. Versioned like the model format
 * (dnn/model_io.hh): readers reject unknown versions and schema kinds
 * with a diagnostic instead of guessing.
 */

#ifndef SONIC_TELEMETRY_SONICZ_HH
#define SONIC_TELEMETRY_SONICZ_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "app/engine.hh"
#include "fleet/fleet.hh"
#include "telemetry/codec.hh"

namespace sonic::telemetry
{

/** Container format version this build writes and reads. */
constexpr u32 kSoniczVersion = 1;

/** What one .sonicz file holds (one schema per file). */
enum class SchemaKind : u8
{
    Sweep = 1, ///< app::SweepRecord rows (the engine's CSV/JSON sinks)
    Fleet = 2  ///< fleet::DeviceTelemetry rows (the fleet CSV sink)
};

/** Column value classes (the three context encoders). */
enum class ColType : u8
{
    Str = 0,
    Int = 1,
    F64 = 2
};

/** One schema column: a name (for --info and diagnostics) + type. */
struct ColumnSpec
{
    const char *name;
    ColType type;
};

/** The fixed column list of a schema kind. */
const std::vector<ColumnSpec> &schemaColumns(SchemaKind kind);

/**
 * Streaming .sonicz writer. Cells are appended column-wise per row
 * (every column exactly once per scalar, list columns length-first),
 * rows are closed with endRow(), and blocks of kRowsPerBlock rows are
 * encoded + flushed as they fill. finish() flushes the tail block and
 * the footer; a file without its footer is rejected by the reader as
 * truncated.
 */
class SoniczWriter
{
  public:
    static constexpr u32 kRowsPerBlock = 4096;

    SoniczWriter(std::ostream &os, SchemaKind kind);

    void putStr(u32 col, const std::string &value);
    void putInt(u32 col, u64 value);
    void putF64(u32 col, f64 value);
    void endRow();
    void finish();

    u64 rowsWritten() const { return totalRows_; }

  private:
    struct Column
    {
        ColType type;
        std::vector<std::string> strs;
        std::vector<u64> ints;
        std::vector<f64> f64s;
    };

    void flushBlock();

    std::ostream &os_;
    SchemaKind kind_;
    std::vector<Column> columns_;
    u32 rowsInBlock_ = 0;
    u64 totalRows_ = 0;
    u64 chunkDigest_ = 0xcbf29ce484222325ull;
    bool finished_ = false;
};

/** Append one sweep record as a .sonicz row. */
void appendSweepRow(SoniczWriter &writer,
                    const app::SweepRecord &record);

/** Append one fleet telemetry row (the runFleet-materialized view:
 * scalar fields and sums; per-round latency lists are not part of the
 * streamed telemetry — see fleet::FleetColumns). */
void appendFleetRow(SoniczWriter &writer,
                    const fleet::DeviceTelemetry &device);

/** Reader-side file facts (sonic_cat --info). */
struct SoniczInfo
{
    SchemaKind kind = SchemaKind::Sweep;
    u32 version = 0;
    u64 rows = 0;
    u64 blocks = 0;
    u64 fileBytes = 0;
    /** Sum of raw (uncompressed) chunk bytes, for the ratio line. */
    u64 rawBytes = 0;
    /** Sum of stored (compressed) chunk bytes. */
    u64 storedBytes = 0;
};

/**
 * Read a .sonicz stream, invoking the schema-matching callback once
 * per row in file order. Either callback may be null (rows of that
 * schema are still validated and counted). Returns false with a
 * diagnostic on any malformed input: bad magic, unsupported version
 * or schema kind, per-chunk checksum mismatch, codec errors,
 * truncation, or column/row accounting that does not add up.
 */
bool readSonicz(std::istream &in,
                const std::function<void(const app::SweepRecord &)>
                    &onSweep,
                const std::function<void(const fleet::DeviceTelemetry &)>
                    &onFleet,
                SoniczInfo *info, std::string *error);

/** Engine sink writing sweep records as .sonicz (open the stream in
 * binary mode). */
class SoniczSweepSink : public app::ResultSink
{
  public:
    explicit SoniczSweepSink(std::ostream &os)
        : writer_(os, SchemaKind::Sweep)
    {
    }

    void add(const app::SweepRecord &record) override
    {
        appendSweepRow(writer_, record);
    }

    void end() override { writer_.finish(); }

  private:
    SoniczWriter writer_;
};

/** Fleet sink writing device telemetry as .sonicz. */
class SoniczFleetSink : public fleet::FleetSink
{
  public:
    explicit SoniczFleetSink(std::ostream &os)
        : writer_(os, SchemaKind::Fleet)
    {
    }

    void add(const fleet::DeviceTelemetry &device) override
    {
        appendFleetRow(writer_, device);
    }

    void end() override { writer_.finish(); }

  private:
    SoniczWriter writer_;
};

} // namespace sonic::telemetry

#endif // SONIC_TELEMETRY_SONICZ_HH
