#include "dnn/networks.hh"

#include <algorithm>
#include <cmath>

#include "tensor/decompose.hh"
#include "tensor/sparse.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::dnn
{

namespace
{

// ---------------------------------------------------------------------
// Compressible weight generators.
//
// Trained networks are compressible because their filter banks are
// approximately low-rank and their FC weights have heavy-tailed
// magnitude distributions. The teachers are constructed with exactly
// those properties so that GENESIS' separation/pruning trade-offs have
// realistic shapes.
// ---------------------------------------------------------------------

/** Low-rank-dominated 3-way tensor: sum of decaying rank-1 terms. */
tensor::Tensor3
compressibleTensor3(u32 d0, u32 d1, u32 d2, Rng &rng)
{
    tensor::Tensor3 t(d0, d1, d2);
    const f64 lambdas[] = {1.0, 0.10, 0.03};
    for (f64 lambda : lambdas) {
        std::vector<f64> a(d0), b(d1), c(d2);
        for (auto &x : a)
            x = rng.gaussian();
        for (auto &x : b)
            x = rng.gaussian();
        for (auto &x : c)
            x = rng.gaussian();
        for (u32 i = 0; i < d0; ++i)
            for (u32 j = 0; j < d1; ++j)
                for (u32 k = 0; k < d2; ++k)
                    t.at(i, j, k) += lambda * a[i] * b[j] * c[k]
                        / std::sqrt(static_cast<f64>(d0 + d1 + d2));
    }
    for (auto &v : t.data())
        v += rng.gaussian(0.0, 0.003);
    return t;
}

/**
 * Heavy-tailed + low-rank FC weights: a rank-r core plus sparse large
 * "spike" entries plus small dense noise. Pruning keeps the spikes and
 * core peaks; SVD keeps the core.
 */
tensor::Matrix
compressibleMatrix(u32 m, u32 n, Rng &rng)
{
    const u32 r = std::max(4u, std::min({m, n, 12u}));
    tensor::Matrix u = tensor::Matrix::gaussian(m, r, rng);
    tensor::Matrix v = tensor::Matrix::gaussian(r, n, rng);
    // Decaying component magnitudes.
    for (u32 i = 0; i < r; ++i) {
        const f64 s = std::pow(0.6, static_cast<f64>(i));
        for (u32 row = 0; row < m; ++row)
            u.at(row, i) *= s;
    }
    tensor::Matrix w =
        u.matmul(v).scaled(1.0 / std::sqrt(static_cast<f64>(n)));
    // Sparse spikes: ~2% of entries carry independent larger weights.
    const u64 spikes = (u64{m} * n) / 50;
    for (u64 s = 0; s < spikes; ++s) {
        const u32 row = static_cast<u32>(rng.below(m));
        const u32 col = static_cast<u32>(rng.below(n));
        w.at(row, col) += rng.gaussian(0.0, 0.18);
    }
    for (auto &x : w.data())
        x += rng.gaussian(0.0, 0.002);
    return w;
}

/** Convert a (oc, kh, kw) tensor into a single-input-channel bank. */
tensor::FilterBank
bankFromTensor(const tensor::Tensor3 &t)
{
    tensor::FilterBank bank(t.dim0(), 1, t.dim1(), t.dim2());
    for (u32 oc = 0; oc < t.dim0(); ++oc)
        for (u32 y = 0; y < t.dim1(); ++y)
            for (u32 x = 0; x < t.dim2(); ++x)
            bank.at(oc, 0, y, x) = t.at(oc, y, x);
    return bank;
}

/** Extract the (oc, kh, kw) tensor of a single-channel bank. */
tensor::Tensor3
tensorFromBank(const tensor::FilterBank &bank)
{
    SONIC_ASSERT(bank.inChannels == 1);
    tensor::Tensor3 t(bank.outChannels, bank.kh, bank.kw);
    for (u32 oc = 0; oc < bank.outChannels; ++oc)
        for (u32 y = 0; y < bank.kh; ++y)
            for (u32 x = 0; x < bank.kw; ++x)
                t.at(oc, y, x) = bank.at(oc, 0, y, x);
    return t;
}

/** Prune two SVD factors jointly to a total non-zero budget. */
void
pruneFactorsToTotal(tensor::Matrix &u, tensor::Matrix &v, u64 total_nnz)
{
    std::vector<f64> mags;
    mags.reserve(u.size() + v.size());
    for (f64 x : u.data())
        mags.push_back(std::fabs(x));
    for (f64 x : v.data())
        mags.push_back(std::fabs(x));
    if (total_nnz >= mags.size())
        return;
    std::nth_element(mags.begin(), mags.end() - total_nnz, mags.end());
    const f64 cutoff = mags[mags.size() - total_nnz];
    tensor::pruneThreshold(u, cutoff);
    tensor::pruneThreshold(v, cutoff);
}

/** Compressed FC: SVD to rank k, then prune factors to total budget.
 * Emits one or two layers into out (factored form shares the name). */
void
appendCompressedFc(std::vector<LayerSpec> &out, const std::string &name,
                   const tensor::Matrix &w, u32 rank, u64 nnz_budget,
                   bool relu_after)
{
    const u32 max_rank = std::min(w.rows(), w.cols());
    const u32 k = std::max(1u, std::min(rank, max_rank));
    auto svd = tensor::truncatedSvd(w, k);
    // Fold singular values into U.
    tensor::Matrix uf = svd.u;
    for (u32 r = 0; r < uf.rows(); ++r)
        for (u32 c = 0; c < uf.cols(); ++c)
            uf.at(r, c) *= svd.s[c];
    tensor::Matrix vt = svd.v.transpose(); // k x n
    pruneFactorsToTotal(uf, vt, nnz_budget);

    // First stage: x -> V^T x (k outputs), no activation in between.
    out.push_back({name, SparseFcLayer{vt}, false, false});
    // Second stage: U (S folded) -> m outputs.
    out.push_back({name, SparseFcLayer{uf}, relu_after, false});
}

/** Compressed FC by pruning only (no separation). */
void
appendPrunedFc(std::vector<LayerSpec> &out, const std::string &name,
               tensor::Matrix w, u64 nnz_budget, bool relu_after)
{
    const f64 frac = static_cast<f64>(nnz_budget)
                   / static_cast<f64>(w.size());
    tensor::pruneToFraction(w, std::min(1.0, frac));
    out.push_back({name, SparseFcLayer{std::move(w)}, relu_after, false});
}

/** Factored conv from CP rank-1 of a single-channel bank, with the
 * column vector optionally pruned (OkG's tall 98-tap column). */
FactoredConvLayer
factorSingleChannelConv(const tensor::FilterBank &bank, f64 col_keep)
{
    tensor::Tensor3 t = tensorFromBank(bank);
    auto cp = tensor::cpRank1(t);
    FactoredConvLayer f;
    if (bank.kh > 1)
        f.col = cp.b;
    if (bank.kw > 1)
        f.row = cp.c;
    f.scale.resize(bank.outChannels);
    for (u32 oc = 0; oc < bank.outChannels; ++oc)
        f.scale[oc] = cp.lambda * cp.a[oc];
    if (col_keep < 1.0 && !f.col.empty()) {
        tensor::Matrix colm(1, static_cast<u32>(f.col.size()));
        for (u32 i = 0; i < f.col.size(); ++i)
            colm.at(0, i) = f.col[i];
        tensor::pruneToFraction(colm, col_keep);
        for (u32 i = 0; i < f.col.size(); ++i)
            f.col[i] = colm.at(0, i);
    }
    return f;
}

// ---------------------------------------------------------------------
// Teachers (Table 2 "uncompressed" columns).
// ---------------------------------------------------------------------

NetworkSpec
teacherMnist(u64 seed)
{
    Rng rng = Rng(seed).fork(1);
    NetworkSpec net;
    net.name = "MNIST";
    net.input = {1, 28, 28};
    net.numClasses = 10;

    // Conv 20x1x5x5.
    net.layers.push_back({"conv1",
                          DenseConvLayer{bankFromTensor(
                              compressibleTensor3(20, 5, 5, rng))},
                          true, true});

    // Conv 100x20x5x5: trained conv banks concentrate their energy in
    // a few dominant taps per filter (that is what makes the paper's
    // 39.9x pruning possible at 99% accuracy): ~14 strong taps per
    // output channel over a faint dense background.
    tensor::FilterBank conv2(100, 20, 5, 5);
    for (u32 oc = 0; oc < 100; ++oc) {
        for (u32 t = 0; t < 14; ++t) {
            const u32 ic = static_cast<u32>(rng.below(20));
            const u32 y = static_cast<u32>(rng.below(5));
            const u32 x = static_cast<u32>(rng.below(5));
            conv2.at(oc, ic, y, x) += rng.gaussian(0.0, 0.30);
        }
        for (u32 ic = 0; ic < 20; ++ic)
            for (u32 y = 0; y < 5; ++y)
                for (u32 x = 0; x < 5; ++x)
                    conv2.at(oc, ic, y, x) +=
                        rng.gaussian(0.0, 0.004);
    }
    net.layers.push_back({"conv2", DenseConvLayer{conv2}, true, true});

    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(200, 1600, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(500, 200, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(10, 500, rng)}, false,
         false});
    return net;
}

NetworkSpec
teacherHar(u64 seed)
{
    Rng rng = Rng(seed).fork(2);
    NetworkSpec net;
    net.name = "HAR";
    net.input = {3, 1, 36};
    net.numClasses = 6;

    // Conv 98x3x1x12 — kh = 1, so the 3-way structure is (oc, ic, kw).
    tensor::Tensor3 t = compressibleTensor3(98, 3, 12, rng);
    tensor::FilterBank bank(98, 3, 1, 12);
    for (u32 oc = 0; oc < 98; ++oc)
        for (u32 ic = 0; ic < 3; ++ic)
            for (u32 x = 0; x < 12; ++x)
                bank.at(oc, ic, 0, x) = t.at(oc, ic, x);
    net.layers.push_back({"conv1", DenseConvLayer{bank}, true, false});

    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(192, 2450, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(256, 192, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(6, 256, rng)}, false,
         false});
    return net;
}

NetworkSpec
teacherOkg(u64 seed)
{
    Rng rng = Rng(seed).fork(3);
    NetworkSpec net;
    net.name = "OkG";
    net.input = {1, 98, 16};
    net.numClasses = 12;

    net.layers.push_back({"conv1",
                          DenseConvLayer{bankFromTensor(
                              compressibleTensor3(186, 98, 8, rng))},
                          true, false});

    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(96, 1674, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(128, 96, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(128, 128, rng)}, true,
         false});
    net.layers.push_back(
        {"fc", DenseFcLayer{compressibleMatrix(12, 128, rng)}, false,
         false});
    return net;
}

// ---------------------------------------------------------------------
// Knob-driven compression (shared by Table 2 configs and GENESIS).
// ---------------------------------------------------------------------

/** Table 2 per-network budgets at knob = 1.0. */
struct Budgets
{
    u64 conv2Nnz = 0;       // MNIST only
    u64 fc1Nnz, fc2Nnz, fc3Nnz;
    u32 fc1Rank, fc2Rank;
    f64 convColKeep = 1.0;  // OkG column pruning
};

Budgets
tableBudgets(NetId id)
{
    switch (id) {
      case NetId::Mnist:
        return {1253, 5456, 1892, 0, 6, 4, 1.0};
      case NetId::Har:
        return {0, 10804, 3200, 0, 20, 12, 1.0};
      case NetId::Okg:
        return {0, 16362, 2070, 0, 12, 10, 0.60};
    }
    panic("bad NetId");
}

} // namespace

const char *
netName(NetId id)
{
    switch (id) {
      case NetId::Mnist: return "MNIST";
      case NetId::Har: return "HAR";
      case NetId::Okg: return "OkG";
    }
    return "?";
}

f64
paperAccuracy(NetId id)
{
    switch (id) {
      case NetId::Mnist: return 0.99;
      case NetId::Har: return 0.88;
      case NetId::Okg: return 0.84;
    }
    return 0.0;
}

NetworkSpec
buildTeacher(NetId id, u64 seed)
{
    switch (id) {
      case NetId::Mnist: return teacherMnist(seed);
      case NetId::Har: return teacherHar(seed);
      case NetId::Okg: return teacherOkg(seed);
    }
    panic("bad NetId");
}

NetworkSpec
buildWithKnobs(NetId id, const CompressionKnobs &knobs, u64 seed)
{
    NetworkSpec teacher = buildTeacher(id, seed);
    Budgets budgets = tableBudgets(id);

    NetworkSpec net;
    net.name = teacher.name;
    net.input = teacher.input;
    net.numClasses = teacher.numClasses;

    u32 fc_index = 0;
    for (u32 li = 0; li < teacher.layers.size(); ++li) {
        const auto &layer = teacher.layers[li];
        if (const auto *conv = std::get_if<DenseConvLayer>(&layer.op)) {
            const bool is_mnist_conv2 =
                id == NetId::Mnist && layer.name == "conv2";
            if (is_mnist_conv2) {
                // Table 2: pruning only for the multi-channel conv.
                // Balanced (per-output-channel top-k) pruning keeps the
                // per-channel work uniform, which real deployments
                // prefer for predictable task energy.
                tensor::FilterBank bank = conv->filters;
                const u32 per_oc = std::max<u32>(
                    1, static_cast<u32>(std::lround(
                           knobs.convKeep
                           * static_cast<f64>(budgets.conv2Nnz)
                           / bank.outChannels)));
                const u64 block = u64{bank.inChannels} * bank.kh
                                * bank.kw;
                for (u32 oc = 0; oc < bank.outChannels; ++oc) {
                    tensor::Matrix slice(1, static_cast<u32>(block));
                    for (u64 e = 0; e < block; ++e)
                        slice.at(0, static_cast<u32>(e)) =
                            bank.data[oc * block + e];
                    tensor::pruneToFraction(
                        slice, std::min(1.0, static_cast<f64>(per_oc)
                                                 / static_cast<f64>(
                                                     block)));
                    for (u64 e = 0; e < block; ++e)
                        bank.data[oc * block + e] =
                            slice.at(0, static_cast<u32>(e));
                }
                net.layers.push_back({layer.name, SparseConvLayer{bank},
                                      layer.reluAfter, layer.poolAfter});
            } else if (knobs.separateConv) {
                FactoredConvLayer f;
                if (conv->filters.inChannels == 1) {
                    f = factorSingleChannelConv(
                        conv->filters,
                        std::min(1.0,
                                 budgets.convColKeep * knobs.convKeep));
                } else {
                    // (oc, ic, kw) structure (HAR): mix + row + scale.
                    tensor::Tensor3 t(conv->filters.outChannels,
                                      conv->filters.inChannels,
                                      conv->filters.kw);
                    for (u32 oc = 0; oc < t.dim0(); ++oc)
                        for (u32 ic = 0; ic < t.dim1(); ++ic)
                            for (u32 x = 0; x < t.dim2(); ++x)
                                t.at(oc, ic, x) =
                                    conv->filters.at(oc, ic, 0, x);
                    auto cp = tensor::cpRank1(t);
                    f.mix = cp.b;
                    f.row = cp.c;
                    f.scale.resize(t.dim0());
                    for (u32 oc = 0; oc < t.dim0(); ++oc)
                        f.scale[oc] = cp.lambda * cp.a[oc];
                }
                net.layers.push_back({layer.name, std::move(f),
                                      layer.reluAfter, layer.poolAfter});
            } else {
                // Prune-only conv.
                tensor::FilterBank bank = conv->filters;
                tensor::Tensor3 flat(bank.outChannels, bank.inChannels,
                                     bank.kh * bank.kw);
                flat.data() = bank.data;
                tensor::pruneToFraction(
                    flat, std::min(1.0, 0.15 * knobs.convKeep));
                bank.data = flat.data();
                net.layers.push_back({layer.name, SparseConvLayer{bank},
                                      layer.reluAfter, layer.poolAfter});
            }
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            const bool is_last = li + 1 == teacher.layers.size();
            const bool is_okg_bottleneck =
                id == NetId::Okg && fc->weights.rows() == 128
                && fc->weights.cols() == 128;
            if (is_last) {
                // Final classifier layers stay dense (Table 2 "—").
                net.layers.push_back(layer);
            } else if (is_okg_bottleneck) {
                // Table 2: plain SVD into a 32-rank dense pair.
                const u32 k = std::max(
                    1u,
                    static_cast<u32>(
                        std::lround(32 * knobs.fcRankScale)));
                auto svd = tensor::truncatedSvd(fc->weights,
                                                std::min(128u, k));
                tensor::Matrix uf = svd.u;
                for (u32 r = 0; r < uf.rows(); ++r)
                    for (u32 c = 0; c < uf.cols(); ++c)
                        uf.at(r, c) *= svd.s[c];
                net.layers.push_back({layer.name,
                                      DenseFcLayer{svd.v.transpose()},
                                      false, false});
                net.layers.push_back({layer.name, DenseFcLayer{uf},
                                      layer.reluAfter, false});
            } else {
                const u64 budget = fc_index == 0 ? budgets.fc1Nnz
                                                 : budgets.fc2Nnz;
                const u32 rank = fc_index == 0 ? budgets.fc1Rank
                                               : budgets.fc2Rank;
                const u64 nnz = std::max<u64>(
                    16, static_cast<u64>(std::llround(
                            knobs.fcKeep * static_cast<f64>(budget))));
                if (knobs.svdFc) {
                    const u32 k = std::max(
                        1u, static_cast<u32>(std::lround(
                                rank * knobs.fcRankScale)));
                    appendCompressedFc(net.layers, layer.name,
                                       fc->weights, k, nnz,
                                       layer.reluAfter);
                } else {
                    appendPrunedFc(net.layers, layer.name, fc->weights,
                                   nnz, layer.reluAfter);
                }
                ++fc_index;
            }
        } else {
            net.layers.push_back(layer);
        }
    }
    return net;
}

NetworkSpec
buildCompressed(NetId id, u64 seed)
{
    return buildWithKnobs(id, CompressionKnobs{}, seed);
}

NetworkSpec
compressGeneric(const NetworkSpec &teacher, const CompressionKnobs &knobs)
{
    NetworkSpec net;
    net.name = teacher.name;
    net.input = teacher.input;
    net.numClasses = teacher.numClasses;

    for (u32 li = 0; li < teacher.layers.size(); ++li) {
        const auto &layer = teacher.layers[li];
        const bool is_last = li + 1 == teacher.layers.size();
        if (const auto *conv = std::get_if<DenseConvLayer>(&layer.op)) {
            if (knobs.separateConv && conv->filters.inChannels == 1) {
                net.layers.push_back(
                    {layer.name,
                     factorSingleChannelConv(conv->filters,
                                             std::min(1.0,
                                                      knobs.convKeep)),
                     layer.reluAfter, layer.poolAfter});
            } else {
                tensor::FilterBank bank = conv->filters;
                tensor::Tensor3 flat(bank.outChannels, bank.inChannels,
                                     bank.kh * bank.kw);
                flat.data() = bank.data;
                tensor::pruneToFraction(
                    flat, std::min(1.0, 0.25 * knobs.convKeep));
                bank.data = flat.data();
                net.layers.push_back({layer.name, SparseConvLayer{bank},
                                      layer.reluAfter, layer.poolAfter});
            }
        } else if (const auto *fc =
                       std::get_if<DenseFcLayer>(&layer.op)) {
            if (is_last) {
                // Final classifier stays dense (the Table 2 "—" rule).
                net.layers.push_back(layer);
                continue;
            }
            const u32 max_rank =
                std::min(fc->weights.rows(), fc->weights.cols());
            const u64 nnz = std::max<u64>(
                16, static_cast<u64>(std::llround(
                        0.10 * static_cast<f64>(fc->weights.size())
                        * knobs.fcKeep)));
            if (knobs.svdFc) {
                const u32 rank = std::max(
                    1u,
                    std::min(max_rank,
                             static_cast<u32>(std::lround(
                                 static_cast<f64>(max_rank) / 8.0
                                 * knobs.fcRankScale))));
                appendCompressedFc(net.layers, layer.name, fc->weights,
                                   rank, nnz, layer.reluAfter);
            } else {
                appendPrunedFc(net.layers, layer.name, fc->weights, nnz,
                               layer.reluAfter);
            }
        } else {
            // Factored / sparse forms are already compressed.
            net.layers.push_back(layer);
        }
    }
    return net;
}

} // namespace sonic::dnn
