/**
 * @file
 * The model zoo: a string-keyed registry of workloads, mirroring the
 * kernel ImplRegistry. A model is addressed everywhere — SweepPlan
 * axes, Engine caches, GENESIS, the verification oracle, the CLIs —
 * by its registered name (a NetRef); the registry lazily builds and
 * caches each model's ModelEntry (teacher network, compressed device
 * network, labelled synthetic dataset, metadata) on first use.
 *
 * The paper's three workloads (MNIST/HAR/OkG, Table 2), the verify
 * subsystem's platform-stable integer-dyadic workload ("golden"), and
 * a family of NetworkBuilder-generated synthetic models pre-register;
 * new workloads plug in via ModelZoo::add() — or are loaded from a
 * serialized model file (dnn/model_io.hh) — with no edits to any
 * consumer:
 *
 *     dnn::ModelZoo::instance().add(
 *         "MyNet", {.paperAccuracy = 1.0, .family = "custom"},
 *         [] { return dnn::ModelDef{myTeacher(), myCompressed()}; });
 *     app::SweepPlan plan;
 *     plan.nets({"MyNet"}).allImpls();
 */

#ifndef SONIC_DNN_ZOO_HH
#define SONIC_DNN_ZOO_HH

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "dnn/dataset.hh"
#include "dnn/networks.hh"
#include "dnn/spec.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/**
 * A workload reference: the registered model name. Carried by
 * RunSpecs, sweep records and sinks; resolved through the ModelZoo.
 */
using NetRef = std::string;

/** The paper's three evaluation workloads (the Fig. 9 sweep axis). */
inline const NetRef kPaperNets[] = {"MNIST", "HAR", "OkG"};

/** Per-model metadata (what used to be hard-coded switch tables). */
struct ModelMeta
{
    /**
     * The paper's reported accuracy for the workload's chosen
     * configuration; 1.0 for models without a published baseline.
     * Agreement-with-teacher measurements scale by this (the Table 2
     * accuracy substitution, see dnn/dataset.hh).
     */
    f64 paperAccuracy = 1.0;

    /** Provenance bucket: "paper", "synthetic", "verify", "loaded",
     * "custom". Informational (CLIs group listings by it). */
    std::string family = "custom";

    std::string description;

    /** Synthetic dataset shape (makeDataset inputs). */
    u32 datasetSamples = 64;
    u64 datasetSeed = 0xda7a;

    /** Agreement scaled by the paper's base accuracy. */
    f64
    scaledAccuracy(f64 agreement) const
    {
        return paperAccuracy * agreement;
    }
};

/** What a model builder returns; the zoo fills the optional pieces. */
struct ModelDef
{
    /** The reference network (labels datasets; GENESIS' input). */
    NetworkSpec teacher;

    /**
     * The device configuration. Leave the layer list empty to run the
     * teacher itself on-device (synthetic models are born feasible).
     */
    NetworkSpec compressed;

    /**
     * Rebuild the teacher at an explicit seed (GENESIS sweeps). When
     * unset, the registered teacher is returned for every seed (the
     * model has fixed weights — e.g. it was loaded from disk).
     */
    std::function<NetworkSpec(u64 seed)> teacherAt;

    /**
     * Knob-driven recompression (GENESIS' search space). When unset,
     * the generic compressor (dnn::compressGeneric over teacherAt)
     * is used.
     */
    std::function<NetworkSpec(const CompressionKnobs &, u64 seed)>
        withKnobs;

    /**
     * Per-model dataset builder: how the model ships its own eval
     * inputs. When unset, the default synthetic generator
     * (makeDataset over the teacher, shaped by ModelMeta's
     * datasetSamples/datasetSeed) labels class-structured noise with
     * the teacher — the Table 2 substitution. A loaded or imported
     * model can instead provide its real samples here; the zoo caches
     * the result lazily exactly like the default.
     */
    std::function<Dataset(const NetworkSpec &teacher,
                          const ModelMeta &meta)>
        dataset;
};

/** One cached zoo row: everything consumers need about a model. */
class ModelEntry
{
  public:
    ModelEntry(std::string name, ModelMeta meta, ModelDef def);

    ModelEntry(const ModelEntry &) = delete;
    ModelEntry &operator=(const ModelEntry &) = delete;

    const std::string &name() const { return name_; }
    const ModelMeta &meta() const { return meta_; }

    /** The uncompressed reference network. */
    const NetworkSpec &teacher() const { return teacher_; }

    /** The on-device configuration. */
    const NetworkSpec &compressed() const { return compressed_; }

    /** The labelled synthetic dataset (lazily built, thread-safe). */
    const Dataset &dataset() const;

    /** Teacher rebuilt at an explicit seed (see ModelDef::teacherAt). */
    NetworkSpec teacherAt(u64 seed) const { return teacherAt_(seed); }

    /** Knob-driven compressed variant (see ModelDef::withKnobs). */
    NetworkSpec
    withKnobs(const CompressionKnobs &knobs, u64 seed) const
    {
        return withKnobs_(knobs, seed);
    }

  private:
    std::string name_;
    ModelMeta meta_;
    NetworkSpec teacher_;
    NetworkSpec compressed_;
    std::function<NetworkSpec(u64)> teacherAt_;
    std::function<NetworkSpec(const CompressionKnobs &, u64)> withKnobs_;
    std::function<Dataset(const NetworkSpec &, const ModelMeta &)>
        datasetBuilder_;

    mutable std::once_flag datasetOnce_;
    mutable Dataset dataset_;
};

/**
 * The process-wide model registry. Thread-safe; entries are stable
 * once built (lookups return pointers that stay valid for the life of
 * the process).
 */
class ModelZoo
{
  public:
    /** The singleton, with the built-in models registered. */
    static ModelZoo &instance();

    /**
     * Register a model under a unique name. The builder runs lazily on
     * first lookup; re-registering an existing name panics.
     */
    void add(std::string name, ModelMeta meta,
             std::function<ModelDef()> build);

    /** Register a fixed, already-built network (teacher == device). */
    void add(std::string name, ModelMeta meta, NetworkSpec net);

    /** Whether a name is registered (no build triggered). */
    bool contains(std::string_view name) const;

    /** Registered metadata (no build triggered); nullptr if unknown.
     * The pointer stays valid for the life of the process. */
    const ModelMeta *meta(std::string_view name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Comma-separated names(), for error messages. */
    std::string availableList() const;

    /** Lookup, building and caching on first use; nullptr if unknown. */
    const ModelEntry *find(std::string_view name);

    /** As find(), but an unknown name is a fatal configuration error
     * reporting the available models. */
    const ModelEntry &get(std::string_view name);

  private:
    ModelZoo();

    struct Row
    {
        std::string name;
        ModelMeta meta;
        std::function<ModelDef()> build;
        std::unique_ptr<ModelEntry> entry;
    };

    Row *rowFor(std::string_view name);

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Row>> rows_;
};

} // namespace sonic::dnn

#endif // SONIC_DNN_ZOO_HH
