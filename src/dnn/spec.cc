#include "dnn/spec.hh"

#include <algorithm>

#include "tensor/sparse.hh"
#include "util/logging.hh"

namespace sonic::dnn
{

namespace
{

u64
vecNnz(const std::vector<f64> &v)
{
    u64 n = 0;
    for (f64 x : v)
        if (x != 0.0)
            ++n;
    return n;
}

tensor::FeatureMap
toMap(const std::vector<f64> &v)
{
    tensor::FeatureMap m(static_cast<u32>(v.size()), 1, 1);
    m.data = v;
    return m;
}

} // namespace

ActShape
opOutputShape(const LayerOp &op, ActShape in)
{
    ActShape out = in;
    if (const auto *f = std::get_if<FactoredConvLayer>(&op)) {
        u32 h = in.h;
        u32 w = in.w;
        if (!f->col.empty())
            h = h - static_cast<u32>(f->col.size()) + 1;
        if (!f->row.empty())
            w = w - static_cast<u32>(f->row.size()) + 1;
        out = {static_cast<u32>(f->scale.size()), h, w};
    } else if (const auto *s = std::get_if<SparseConvLayer>(&op)) {
        out = {s->filters.outChannels, in.h - s->filters.kh + 1,
               in.w - s->filters.kw + 1};
    } else if (const auto *d = std::get_if<DenseConvLayer>(&op)) {
        out = {d->filters.outChannels, in.h - d->filters.kh + 1,
               in.w - d->filters.kw + 1};
    } else if (const auto *fc = std::get_if<DenseFcLayer>(&op)) {
        SONIC_ASSERT(in.elems() == fc->weights.cols(),
                     "dense FC input mismatch");
        out = {fc->weights.rows(), 1, 1};
    } else if (const auto *sfc = std::get_if<SparseFcLayer>(&op)) {
        SONIC_ASSERT(in.elems() == sfc->weights.cols(),
                     "sparse FC input mismatch");
        out = {sfc->weights.rows(), 1, 1};
    }
    return out;
}

ActShape
NetworkSpec::shapeAfter(u32 layer_index) const
{
    SONIC_ASSERT(layer_index < layers.size());
    ActShape shape = input;
    for (u32 i = 0; i <= layer_index; ++i) {
        shape = opOutputShape(layers[i].op, shape);
        if (layers[i].poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
    }
    return shape;
}

std::vector<f64>
NetworkSpec::forward(const tensor::FeatureMap &in) const
{
    SONIC_ASSERT(in.channels == input.c && in.height == input.h
                     && in.width == input.w,
                 "input shape mismatch for ", name);
    tensor::FeatureMap act = in;
    for (const auto &layer : layers) {
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            tensor::FeatureMap x = act;
            if (!f->mix.empty())
                x = tensor::channelMix(x, f->mix);
            if (!f->col.empty())
                x = tensor::convCols(x, f->col);
            if (!f->row.empty())
                x = tensor::convRows(x, f->row);
            act = tensor::channelScale(x, f->scale);
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            act = tensor::conv2dValid(act, s->filters);
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            act = tensor::conv2dValid(act, d->filters);
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            act = toMap(fc->weights.matvec(tensor::flatten(act)));
        } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
            act = toMap(sfc->weights.matvec(tensor::flatten(act)));
        }
        if (layer.reluAfter)
            act = tensor::relu(act);
        if (layer.poolAfter)
            act = tensor::maxPool2x2(act);
    }
    SONIC_ASSERT(act.size() == numClasses, "logit count mismatch");
    return act.data;
}

u32
NetworkSpec::classify(const tensor::FeatureMap &in) const
{
    return tensor::argmax(forward(in));
}

u64
NetworkSpec::paramCount() const
{
    u64 total = 0;
    for (const auto &layer : layers) {
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            total += vecNnz(f->mix) + vecNnz(f->col) + vecNnz(f->row)
                   + vecNnz(f->scale);
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            total += s->filters.nonZeroCount();
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            total += d->filters.size();
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            total += fc->weights.size();
        } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
            total += sfc->weights.nonZeroCount();
        }
    }
    return total;
}

u64
NetworkSpec::macCount() const
{
    u64 total = 0;
    ActShape shape = input;
    for (const auto &layer : layers) {
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            u32 h = shape.h;
            u32 w = shape.w;
            if (!f->mix.empty())
                total += vecNnz(f->mix) * h * w;
            if (!f->col.empty()) {
                h = h - static_cast<u32>(f->col.size()) + 1;
                total += vecNnz(f->col) * h * w;
            }
            if (!f->row.empty()) {
                w = w - static_cast<u32>(f->row.size()) + 1;
                total += vecNnz(f->row) * h * w;
            }
            total += vecNnz(f->scale) * h * w;
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            const u64 oh = shape.h - s->filters.kh + 1;
            const u64 ow = shape.w - s->filters.kw + 1;
            total += s->filters.nonZeroCount() * oh * ow;
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            total += d->filters.macs(shape.h, shape.w);
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            total += fc->weights.size();
        } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
            total += sfc->weights.nonZeroCount();
        }
        shape = opOutputShape(layer.op, shape);
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
    }
    return total;
}

u64
NetworkSpec::framBytesNeeded() const
{
    // 2 B per stored value. Sparse forms also store indices (2 B) and
    // per-row/column pointers (4 B). Activations: two map-sized
    // ping-pong buffers plus three scratch slices.
    u64 bytes = 0;
    for (const auto &layer : layers) {
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            const u64 nnz = vecNnz(f->mix) + vecNnz(f->col)
                          + vecNnz(f->row) + vecNnz(f->scale);
            bytes += nnz * 4; // value + index per entry
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            const u64 nnz = s->filters.nonZeroCount();
            bytes += nnz * 8 // value + (ic, ky, kx)
                   + (u64{s->filters.outChannels} + 1) * 4;
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            bytes += d->filters.size() * 2;
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            bytes += fc->weights.size() * 2;
        } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
            bytes += sfc->weights.nonZeroCount() * 4
                   + (u64{sfc->weights.cols()} + 1) * 4;
        }
    }
    bytes += 2 * maxActivationElems() * 2;
    bytes += 3 * maxScratchElems() * 2;
    return bytes;
}

u64
NetworkSpec::maxActivationElems() const
{
    // Pre-pool conv outputs occupy a full map buffer before pooling
    // shrinks them, so they bound the buffer size too.
    u64 maxElems = input.elems();
    ActShape shape = input;
    for (const auto &layer : layers) {
        shape = opOutputShape(layer.op, shape);
        maxElems = std::max(maxElems, shape.elems());
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
            maxElems = std::max(maxElems, shape.elems());
        }
    }
    return maxElems;
}

u64
NetworkSpec::maxScratchElems() const
{
    // Scratch slices hold single-channel conv intermediates and dense
    // FC output slices.
    u64 maxElems = 1;
    ActShape shape = input;
    for (const auto &layer : layers) {
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            u32 h = shape.h;
            u32 w = shape.w;
            maxElems = std::max<u64>(maxElems, u64{h} * w);
            if (!f->col.empty())
                h = h - static_cast<u32>(f->col.size()) + 1;
            maxElems = std::max<u64>(maxElems, u64{h} * w);
            if (!f->row.empty())
                w = w - static_cast<u32>(f->row.size()) + 1;
            maxElems = std::max<u64>(maxElems, u64{h} * w);
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            const u64 oh = shape.h - s->filters.kh + 1;
            const u64 ow = shape.w - s->filters.kw + 1;
            maxElems = std::max(maxElems, oh * ow);
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            const u64 oh = shape.h - d->filters.kh + 1;
            const u64 ow = shape.w - d->filters.kw + 1;
            maxElems = std::max(maxElems, oh * ow);
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            maxElems = std::max<u64>(maxElems, fc->weights.rows());
        }
        shape = opOutputShape(layer.op, shape);
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
    }
    return maxElems;
}

std::vector<LayerAccounting>
accountLayers(const NetworkSpec &net)
{
    std::vector<LayerAccounting> rows;
    ActShape shape = net.input;
    for (const auto &layer : net.layers) {
        LayerAccounting row;
        row.name = layer.name;
        NetworkSpec probe;
        probe.name = "probe";
        probe.input = shape;
        probe.numClasses = 0;
        probe.layers.push_back(layer);
        // Reuse the spec counters on a single-layer network.
        row.params = probe.paramCount();
        row.macs = probe.macCount();
        if (std::holds_alternative<FactoredConvLayer>(layer.op))
            row.kind = "factored-conv";
        else if (std::holds_alternative<SparseConvLayer>(layer.op))
            row.kind = "sparse-conv";
        else if (std::holds_alternative<DenseConvLayer>(layer.op))
            row.kind = "dense-conv";
        else if (std::holds_alternative<DenseFcLayer>(layer.op))
            row.kind = "dense-fc";
        else
            row.kind = "sparse-fc";
        rows.push_back(row);
        shape = opOutputShape(layer.op, shape);
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
    }
    return rows;
}

} // namespace sonic::dnn
