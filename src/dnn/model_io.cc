#include "dnn/model_io.hh"

#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <ostream>
#include <sstream>
#include <variant>
#include <vector>

#include "util/json.hh"
#include "util/json_parse.hh"

namespace sonic::dnn
{

namespace
{

// --- f64 <-> hex ----------------------------------------------------

u64
bitsOf(f64 v)
{
    u64 bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    return bits;
}

f64
f64Of(u64 bits)
{
    f64 v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
}

void
appendHex64(std::string &out, u64 bits)
{
    static const char digits[] = "0123456789abcdef";
    for (int shift = 60; shift >= 0; shift -= 4)
        out.push_back(digits[(bits >> shift) & 0xf]);
}

std::string
hexBlob(const std::vector<f64> &values)
{
    std::string out;
    out.reserve(values.size() * 16);
    for (f64 v : values)
        appendHex64(out, bitsOf(v));
    return out;
}

// --- f64 <-> base64 (the v2 blob encoding) --------------------------

constexpr char kBase64Digits[] =
    "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz"
    "0123456789+/";

/** Base64 of the raw little-endian f64 bytes (v2 blobs). */
std::string
base64Blob(const std::vector<f64> &values)
{
    std::string bytes;
    bytes.reserve(values.size() * 8);
    for (f64 v : values) {
        const u64 bits = bitsOf(v);
        for (u32 i = 0; i < 8; ++i)
            bytes.push_back(
                static_cast<char>((bits >> (8 * i)) & 0xff));
    }
    std::string out;
    out.reserve((bytes.size() + 2) / 3 * 4);
    u64 i = 0;
    for (; i + 3 <= bytes.size(); i += 3) {
        const u32 n = (static_cast<u32>(
                           static_cast<unsigned char>(bytes[i]))
                       << 16)
            | (static_cast<u32>(
                   static_cast<unsigned char>(bytes[i + 1]))
               << 8)
            | static_cast<u32>(
                  static_cast<unsigned char>(bytes[i + 2]));
        out.push_back(kBase64Digits[(n >> 18) & 0x3f]);
        out.push_back(kBase64Digits[(n >> 12) & 0x3f]);
        out.push_back(kBase64Digits[(n >> 6) & 0x3f]);
        out.push_back(kBase64Digits[n & 0x3f]);
    }
    const u64 rest = bytes.size() - i;
    if (rest == 1) {
        const u32 n = static_cast<u32>(
                          static_cast<unsigned char>(bytes[i]))
            << 16;
        out.push_back(kBase64Digits[(n >> 18) & 0x3f]);
        out.push_back(kBase64Digits[(n >> 12) & 0x3f]);
        out.push_back('=');
        out.push_back('=');
    } else if (rest == 2) {
        const u32 n = (static_cast<u32>(
                           static_cast<unsigned char>(bytes[i]))
                       << 16)
            | (static_cast<u32>(
                   static_cast<unsigned char>(bytes[i + 1]))
               << 8);
        out.push_back(kBase64Digits[(n >> 18) & 0x3f]);
        out.push_back(kBase64Digits[(n >> 12) & 0x3f]);
        out.push_back(kBase64Digits[(n >> 6) & 0x3f]);
        out.push_back('=');
    }
    return out;
}

int
base64Value(char c)
{
    if (c >= 'A' && c <= 'Z')
        return c - 'A';
    if (c >= 'a' && c <= 'z')
        return c - 'a' + 26;
    if (c >= '0' && c <= '9')
        return c - '0' + 52;
    if (c == '+')
        return 62;
    if (c == '/')
        return 63;
    return -1;
}

bool
parseBase64Blob(const std::string &text, std::vector<f64> *out,
                std::string *error, const std::string &what)
{
    out->clear();
    if (text.empty())
        return true;
    if (text.size() % 4 != 0) {
        *error = what + ": base64 blob length "
               + std::to_string(text.size())
               + " is not a multiple of 4";
        return false;
    }
    std::string bytes;
    bytes.reserve(text.size() / 4 * 3);
    for (u64 i = 0; i < text.size(); i += 4) {
        u32 pad = 0;
        u32 n = 0;
        for (u32 j = 0; j < 4; ++j) {
            const char c = text[i + j];
            if (c == '=') {
                // Padding is only legal as the last one or two
                // characters of the final group.
                if (i + 4 != text.size() || j < 2) {
                    *error = what + ": misplaced base64 padding";
                    return false;
                }
                ++pad;
                n <<= 6;
                continue;
            }
            if (pad > 0) {
                *error = what + ": base64 digit after padding";
                return false;
            }
            const int v = base64Value(c);
            if (v < 0) {
                *error = what + ": invalid base64 character '"
                       + std::string(1, c) + "'";
                return false;
            }
            n = (n << 6) | static_cast<u32>(v);
        }
        bytes.push_back(static_cast<char>((n >> 16) & 0xff));
        if (pad < 2)
            bytes.push_back(static_cast<char>((n >> 8) & 0xff));
        if (pad < 1)
            bytes.push_back(static_cast<char>(n & 0xff));
    }
    if (bytes.size() % 8 != 0) {
        *error = what + ": blob decodes to "
               + std::to_string(bytes.size())
               + " bytes, not a whole number of f64 values";
        return false;
    }
    out->reserve(bytes.size() / 8);
    for (u64 i = 0; i < bytes.size(); i += 8) {
        u64 bits = 0;
        for (u32 j = 0; j < 8; ++j)
            bits |= static_cast<u64>(
                        static_cast<unsigned char>(bytes[i + j]))
                 << (8 * j);
        out->push_back(f64Of(bits));
    }
    return true;
}

/** Which blob encoding the document's version selects. */
enum class BlobCodec
{
    Hex,    ///< v1: 16 hex digits per f64, big-endian bit image
    Base64  ///< v2: base64 of raw little-endian f64 bytes
};

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

bool
parseHexBlob(const std::string &hex, std::vector<f64> *out,
             std::string *error, const std::string &what)
{
    if (hex.size() % 16 != 0) {
        *error = what + ": hex blob length " + std::to_string(hex.size())
               + " is not a multiple of 16";
        return false;
    }
    out->clear();
    out->reserve(hex.size() / 16);
    for (u64 i = 0; i < hex.size(); i += 16) {
        u64 bits = 0;
        for (u64 j = 0; j < 16; ++j) {
            const int d = hexDigit(hex[i + j]);
            if (d < 0) {
                *error = what + ": invalid hex digit '" + hex[i + j]
                       + "'";
                return false;
            }
            bits = (bits << 4) | static_cast<u64>(d);
        }
        out->push_back(f64Of(bits));
    }
    return true;
}

// --- JSON document access -------------------------------------------
//
// The strict value parser lives in util/json_parse (shared with the
// deployment-plan format); the model-specific typed accessors below
// build on its JsonValue.

using jsonp::JsonArray;
using jsonp::JsonObject;
using jsonp::JsonValue;
using jsonp::getBool;
using jsonp::getString;
using jsonp::getU32;

bool
getBlob(const JsonObject &obj, const char *key, BlobCodec codec,
        std::vector<f64> *out, std::string *error,
        const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.string() == nullptr) {
        *error = ctx + ": missing or non-string blob \"" + key + "\"";
        return false;
    }
    const std::string what = ctx + " \"" + key + "\"";
    return codec == BlobCodec::Hex
        ? parseHexBlob(*it->second.string(), out, error, what)
        : parseBase64Blob(*it->second.string(), out, error, what);
}

bool
getSizedBlob(const JsonObject &obj, const char *key, BlobCodec codec,
             u64 expected, std::vector<f64> *out, std::string *error,
             const std::string &ctx)
{
    if (!getBlob(obj, key, codec, out, error, ctx))
        return false;
    if (out->size() != expected) {
        *error = ctx + " \"" + key + "\": blob holds "
               + std::to_string(out->size()) + " values but the "
               + "declared dimensions need " + std::to_string(expected);
        return false;
    }
    return true;
}

// --- Layer emit / parse ---------------------------------------------

const char *
kindOf(const LayerOp &op)
{
    if (std::holds_alternative<FactoredConvLayer>(op))
        return "factored-conv";
    if (std::holds_alternative<SparseConvLayer>(op))
        return "sparse-conv";
    if (std::holds_alternative<DenseConvLayer>(op))
        return "dense-conv";
    if (std::holds_alternative<DenseFcLayer>(op))
        return "dense-fc";
    return "sparse-fc";
}

using BlobEncoder = std::string (*)(const std::vector<f64> &);

void
emitLayer(std::ostream &os, const LayerSpec &layer, BlobEncoder blob)
{
    os << "    {\"name\": " << jsonQuote(layer.name) << ", \"kind\": \""
       << kindOf(layer.op) << "\", \"relu\": "
       << (layer.reluAfter ? "true" : "false")
       << ", \"pool\": " << (layer.poolAfter ? "true" : "false");
    if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
        os << ",\n     \"mix\": \"" << blob(f->mix)
           << "\", \"col\": \"" << blob(f->col)
           << "\", \"row\": \"" << blob(f->row)
           << "\", \"scale\": \"" << blob(f->scale) << "\"";
    } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
        os << ", \"oc\": " << s->filters.outChannels
           << ", \"ic\": " << s->filters.inChannels
           << ", \"kh\": " << s->filters.kh << ", \"kw\": "
           << s->filters.kw << ",\n     \"data\": \""
           << blob(s->filters.data) << "\"";
    } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
        os << ", \"oc\": " << d->filters.outChannels
           << ", \"ic\": " << d->filters.inChannels
           << ", \"kh\": " << d->filters.kh << ", \"kw\": "
           << d->filters.kw << ",\n     \"data\": \""
           << blob(d->filters.data) << "\"";
    } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
        os << ", \"rows\": " << fc->weights.rows() << ", \"cols\": "
           << fc->weights.cols() << ",\n     \"data\": \""
           << blob(fc->weights.data()) << "\"";
    } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
        os << ", \"rows\": " << sfc->weights.rows() << ", \"cols\": "
           << sfc->weights.cols() << ",\n     \"data\": \""
           << blob(sfc->weights.data()) << "\"";
    }
    os << "}";
}

void
emitModel(std::ostream &os, const NetworkSpec &net, u32 version,
          BlobEncoder blob)
{
    os << "{\"format\": \"sonic-model\", \"version\": " << version
       << ",\n \"name\": " << jsonQuote(net.name) << ",\n \"input\": ["
       << net.input.c << ", " << net.input.h << ", " << net.input.w
       << "], \"numClasses\": " << net.numClasses
       << ",\n \"layers\": [";
    for (u64 li = 0; li < net.layers.size(); ++li) {
        os << (li ? ",\n" : "\n");
        emitLayer(os, net.layers[li], blob);
    }
    os << "\n ]}\n";
}

bool
parseFilterBank(const JsonObject &obj, BlobCodec codec,
                tensor::FilterBank *bank, std::string *error,
                const std::string &ctx)
{
    u32 oc = 0, ic = 0, kh = 0, kw = 0;
    if (!getU32(obj, "oc", &oc, error, ctx)
        || !getU32(obj, "ic", &ic, error, ctx)
        || !getU32(obj, "kh", &kh, error, ctx)
        || !getU32(obj, "kw", &kw, error, ctx))
        return false;
    if (oc == 0 || ic == 0 || kh == 0 || kw == 0) {
        *error = ctx + ": zero filter-bank dimension";
        return false;
    }
    std::vector<f64> data;
    if (!getSizedBlob(obj, "data", codec, u64{oc} * ic * kh * kw,
                      &data, error, ctx))
        return false;
    *bank = tensor::FilterBank(oc, ic, kh, kw);
    bank->data = std::move(data);
    return true;
}

bool
parseMatrix(const JsonObject &obj, BlobCodec codec, tensor::Matrix *m,
            std::string *error, const std::string &ctx)
{
    u32 rows = 0, cols = 0;
    if (!getU32(obj, "rows", &rows, error, ctx)
        || !getU32(obj, "cols", &cols, error, ctx))
        return false;
    if (rows == 0 || cols == 0) {
        *error = ctx + ": zero matrix dimension";
        return false;
    }
    std::vector<f64> data;
    if (!getSizedBlob(obj, "data", codec, u64{rows} * cols, &data,
                      error, ctx))
        return false;
    *m = tensor::Matrix(rows, cols);
    m->data() = std::move(data);
    return true;
}

bool
parseLayer(const JsonValue &value, BlobCodec codec, LayerSpec *layer,
           std::string *error, u64 index)
{
    const std::string ctx = "layer " + std::to_string(index);
    const JsonObject *obj = value.object();
    if (obj == nullptr) {
        *error = ctx + ": not an object";
        return false;
    }
    std::string kind;
    if (!getString(*obj, "name", &layer->name, error, ctx)
        || !getString(*obj, "kind", &kind, error, ctx)
        || !getBool(*obj, "relu", &layer->reluAfter, error, ctx)
        || !getBool(*obj, "pool", &layer->poolAfter, error, ctx))
        return false;

    if (kind == "factored-conv") {
        FactoredConvLayer f;
        if (!getBlob(*obj, "mix", codec, &f.mix, error, ctx)
            || !getBlob(*obj, "col", codec, &f.col, error, ctx)
            || !getBlob(*obj, "row", codec, &f.row, error, ctx)
            || !getBlob(*obj, "scale", codec, &f.scale, error, ctx))
            return false;
        if (f.scale.empty()) {
            *error = ctx + ": factored conv needs non-empty scales";
            return false;
        }
        layer->op = std::move(f);
    } else if (kind == "sparse-conv" || kind == "dense-conv") {
        tensor::FilterBank bank;
        if (!parseFilterBank(*obj, codec, &bank, error, ctx))
            return false;
        if (kind == "sparse-conv")
            layer->op = SparseConvLayer{std::move(bank)};
        else
            layer->op = DenseConvLayer{std::move(bank)};
    } else if (kind == "dense-fc" || kind == "sparse-fc") {
        tensor::Matrix m;
        if (!parseMatrix(*obj, codec, &m, error, ctx))
            return false;
        if (kind == "dense-fc")
            layer->op = DenseFcLayer{std::move(m)};
        else
            layer->op = SparseFcLayer{std::move(m)};
    } else {
        *error = ctx + ": unknown layer kind \"" + kind + "\"";
        return false;
    }
    return true;
}

/** Walk the layer shapes exactly like the forward pass would, so a
 * dimensionally inconsistent file is rejected at load, not at run. */
bool
validateShapes(const NetworkSpec &net, std::string *error)
{
    ActShape shape = net.input;
    for (u64 li = 0; li < net.layers.size(); ++li) {
        const auto &layer = net.layers[li];
        const std::string ctx = "layer " + std::to_string(li) + " (\""
                              + layer.name + "\")";
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            if (!f->col.empty() && f->col.size() > shape.h) {
                *error = ctx + ": column kernel exceeds map height";
                return false;
            }
            if (!f->row.empty() && f->row.size() > shape.w) {
                *error = ctx + ": row kernel exceeds map width";
                return false;
            }
            if (!f->mix.empty() && f->mix.size() != shape.c) {
                *error = ctx + ": channel mix size mismatch";
                return false;
            }
            if (f->mix.empty() && shape.c != 1) {
                *error = ctx + ": multi-channel input needs a mix stage";
                return false;
            }
        } else if (const auto *s =
                       std::get_if<SparseConvLayer>(&layer.op)) {
            if (s->filters.inChannels != shape.c
                || s->filters.kh > shape.h || s->filters.kw > shape.w) {
                *error = ctx + ": filter bank does not fit the "
                       + std::to_string(shape.c) + "x"
                       + std::to_string(shape.h) + "x"
                       + std::to_string(shape.w) + " input";
                return false;
            }
        } else if (const auto *d =
                       std::get_if<DenseConvLayer>(&layer.op)) {
            if (d->filters.inChannels != shape.c
                || d->filters.kh > shape.h || d->filters.kw > shape.w) {
                *error = ctx + ": filter bank does not fit the input";
                return false;
            }
        } else if (const auto *fc =
                       std::get_if<DenseFcLayer>(&layer.op)) {
            if (fc->weights.cols() != shape.elems()) {
                *error = ctx + ": FC expects "
                       + std::to_string(fc->weights.cols())
                       + " inputs, activation flattens to "
                       + std::to_string(shape.elems());
                return false;
            }
        } else if (const auto *sfc =
                       std::get_if<SparseFcLayer>(&layer.op)) {
            if (sfc->weights.cols() != shape.elems()) {
                *error = ctx + ": FC expects "
                       + std::to_string(sfc->weights.cols())
                       + " inputs, activation flattens to "
                       + std::to_string(shape.elems());
                return false;
            }
        }
        shape = opOutputShape(layer.op, shape);
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
        if (shape.elems() == 0) {
            *error = ctx + ": produces an empty activation";
            return false;
        }
    }
    if (shape.elems() != net.numClasses) {
        *error = "final activation has " + std::to_string(shape.elems())
               + " elements but numClasses is "
               + std::to_string(net.numClasses);
        return false;
    }
    return true;
}

} // namespace

void
saveModel(const NetworkSpec &net, std::ostream &os)
{
    emitModel(os, net, kModelFormatVersion, base64Blob);
}

namespace testhooks
{

std::string
modelJsonV1(const NetworkSpec &net)
{
    std::ostringstream os;
    emitModel(os, net, 1, hexBlob);
    return os.str();
}

} // namespace testhooks

std::string
modelJson(const NetworkSpec &net)
{
    std::ostringstream os;
    saveModel(net, os);
    return os.str();
}

bool
saveModelFile(const NetworkSpec &net, const std::string &path,
              std::string *error)
{
    std::ofstream out(path);
    if (!out) {
        if (error != nullptr)
            *error = "cannot open " + path + " for writing";
        return false;
    }
    saveModel(net, out);
    out.flush();
    if (!out) {
        if (error != nullptr)
            *error = "write to " + path + " failed";
        return false;
    }
    return true;
}

std::optional<NetworkSpec>
parseModel(const std::string &text, std::string *error)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    err.clear();

    JsonValue root;
    if (!jsonp::parseJson(text, &root, &err))
        return std::nullopt;
    const JsonObject *obj = root.object();
    if (obj == nullptr) {
        err = "model document is not a JSON object";
        return std::nullopt;
    }

    std::string format;
    if (!getString(*obj, "format", &format, &err, "document"))
        return std::nullopt;
    if (format != "sonic-model") {
        err = "not a sonic-model document (format \"" + format + "\")";
        return std::nullopt;
    }
    u32 version = 0;
    if (!getU32(*obj, "version", &version, &err, "document"))
        return std::nullopt;
    if (version < kOldestReadableModelVersion
        || version > kModelFormatVersion) {
        err = "unsupported model format version "
            + std::to_string(version) + " (this build reads versions "
            + std::to_string(kOldestReadableModelVersion) + " through "
            + std::to_string(kModelFormatVersion) + ")";
        return std::nullopt;
    }
    const BlobCodec codec =
        version == 1 ? BlobCodec::Hex : BlobCodec::Base64;

    NetworkSpec net;
    if (!getString(*obj, "name", &net.name, &err, "document"))
        return std::nullopt;
    if (net.name.empty()) {
        err = "model name must be non-empty";
        return std::nullopt;
    }

    auto input = obj->find("input");
    if (input == obj->end() || input->second.array() == nullptr
        || input->second.array()->size() != 3) {
        err = "document: \"input\" must be a [c, h, w] array";
        return std::nullopt;
    }
    u32 dims[3] = {0, 0, 0};
    for (u32 i = 0; i < 3; ++i) {
        const f64 *n = (*input->second.array())[i].number();
        if (n == nullptr || *n <= 0 || *n > 65535
            || *n != static_cast<f64>(static_cast<u32>(*n))) {
            err = "document: input dimension " + std::to_string(i)
                + " is not a positive integer";
            return std::nullopt;
        }
        dims[i] = static_cast<u32>(*n);
    }
    net.input = {dims[0], dims[1], dims[2]};

    if (!getU32(*obj, "numClasses", &net.numClasses, &err, "document"))
        return std::nullopt;
    if (net.numClasses == 0) {
        err = "document: numClasses must be positive";
        return std::nullopt;
    }

    auto layers = obj->find("layers");
    if (layers == obj->end() || layers->second.array() == nullptr) {
        err = "document: missing \"layers\" array";
        return std::nullopt;
    }
    if (layers->second.array()->empty()) {
        err = "document: \"layers\" must be non-empty";
        return std::nullopt;
    }
    for (u64 li = 0; li < layers->second.array()->size(); ++li) {
        LayerSpec layer;
        if (!parseLayer((*layers->second.array())[li], codec, &layer,
                        &err, li))
            return std::nullopt;
        net.layers.push_back(std::move(layer));
    }

    if (!validateShapes(net, &err))
        return std::nullopt;
    return net;
}

std::optional<NetworkSpec>
loadModel(std::istream &is, std::string *error)
{
    std::ostringstream buffer;
    buffer << is.rdbuf();
    return parseModel(buffer.str(), error);
}

std::optional<NetworkSpec>
loadModelFile(const std::string &path, std::string *error)
{
    std::ifstream in(path);
    if (!in) {
        if (error != nullptr)
            *error = "cannot read " + path;
        return std::nullopt;
    }
    return loadModel(in, error);
}

bool
loadModelIntoZoo(const std::string &path, ModelZoo &zoo,
                 std::string *error)
{
    auto net = loadModelFile(path, error);
    if (!net)
        return false;
    if (zoo.contains(net->name)) {
        if (error != nullptr)
            *error = "model '" + net->name
                   + "' is already registered in the zoo";
        return false;
    }
    ModelMeta meta;
    meta.family = "loaded";
    meta.description = "loaded from " + path;
    std::string name = net->name; // copy before the spec is moved from
    zoo.add(std::move(name), meta, std::move(*net));
    return true;
}

} // namespace sonic::dnn
