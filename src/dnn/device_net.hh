/**
 * @file
 * The device-resident form of a network: Q7.8 weights in FRAM arrays
 * (sparse forms store index lists, matching the paper's memory
 * accounting), plus the activation buffers the kernels operate on:
 * two map-sized ping-pong buffers and three single-channel scratch
 * slices (the loop-ordered double buffers).
 *
 * Building a DeviceNetwork is "flashing": weights are poked (uncharged)
 * into FRAM; all runtime access by kernels is charged.
 */

#ifndef SONIC_DNN_DEVICE_NET_HH
#define SONIC_DNN_DEVICE_NET_HH

#include <memory>
#include <variant>
#include <vector>

#include "arch/memory.hh"
#include "dnn/spec.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** A sparse vector in FRAM: parallel (index, value) arrays. */
struct DevSparseVec
{
    std::unique_ptr<arch::NvArray<i16>> idx;
    std::unique_ptr<arch::NvArray<i16>> val;
    u32 nnz = 0;
};

/** Factored conv stages (empty nnz = stage skipped). */
struct DevFactoredConv
{
    DevSparseVec mix;   ///< ic -> 1 channel combine
    DevSparseVec col;   ///< kh x 1 conv taps
    DevSparseVec row;   ///< 1 x kw conv taps
    DevSparseVec scale; ///< 1 -> oc broadcast scales
};

/** Pruned 2-D conv as per-output-channel tap lists (CSR by oc). */
struct DevSparseConv
{
    std::unique_ptr<arch::NvArray<i16>> ocPtr; ///< oc+1 entries
    std::unique_ptr<arch::NvArray<i16>> tapIc;
    std::unique_ptr<arch::NvArray<i16>> tapKy;
    std::unique_ptr<arch::NvArray<i16>> tapKx;
    std::unique_ptr<arch::NvArray<i16>> tapW;
    /** Flash-time precomputed flat source offset of each tap
     * (ic * inPlane + ky * inW + kx) — element-major traversals pay a
     * single add per tap instead of 3-D address arithmetic. */
    std::unique_ptr<arch::NvArray<i16>> tapOff;
    u32 kh = 0;
    u32 kw = 0;
    u32 nnz = 0;
};

/** Dense FC weights, row-major m x n. */
struct DevDenseFc
{
    std::unique_ptr<arch::NvArray<i16>> w;
    u32 m = 0;
    u32 n = 0;
};

/** Sparse FC in CSC form (the device traversal order). */
struct DevSparseFc
{
    std::unique_ptr<arch::NvArray<i16>> colPtr; ///< n+1 entries
    std::unique_ptr<arch::NvArray<i16>> rowIdx;
    std::unique_ptr<arch::NvArray<i16>> val;
    u32 m = 0;
    u32 n = 0;
    u32 nnz = 0;
};

using DevLayerOp =
    std::variant<DevFactoredConv, DevSparseConv, DevDenseFc, DevSparseFc>;

/** One device layer with shapes and attribution resolved. */
struct DevLayer
{
    std::string name;
    u16 statLayer = 0; ///< Device stats layer id
    DevLayerOp op;
    bool reluAfter = false;
    bool poolAfter = false;
    ActShape in;
    ActShape out; ///< before pool
};

/**
 * A network flashed onto a device. Owns weight arrays, activation
 * ping-pong buffers and scratch slices. Kernels (Base / Tiled / SONIC /
 * TAILS) operate on this structure.
 */
class DeviceNetwork
{
  public:
    DeviceNetwork(arch::Device &dev, const NetworkSpec &spec);

    arch::Device &dev() { return dev_; }
    const NetworkSpec &spec() const { return spec_; }

    std::vector<DevLayer> &layers() { return layers_; }
    const std::vector<DevLayer> &layers() const { return layers_; }

    /** Map-sized ping-pong activation buffers. */
    arch::NvArray<i16> &act(u32 which) { return *acts_[which]; }

    /** Single-channel scratch slices (loop-ordered double buffers). */
    arch::NvArray<i16> &scratch(u32 which) { return *scratch_[which]; }

    u32 numClasses() const { return spec_.numClasses; }

    /**
     * Flash an input activation (uncharged: sensing/DMA-from-sensor is
     * outside the inference measurement, identical for all runtimes).
     */
    void loadInput(const std::vector<i16> &input_q78);

    /** Which act buffer layer li reads / writes (static schedule). */
    u32 inputBufferOf(u32 layer_index) const;
    u32 outputBufferOf(u32 layer_index) const;

    /** Read back the logits (uncharged host verification). */
    std::vector<i16> peekLogits() const;

    /** Quantize a host feature map into Q7.8 device input order. */
    static std::vector<i16> quantizeInput(const tensor::FeatureMap &in);

  private:
    arch::Device &dev_;
    NetworkSpec spec_;
    std::vector<DevLayer> layers_;
    std::unique_ptr<arch::NvArray<i16>> acts_[2];
    std::unique_ptr<arch::NvArray<i16>> scratch_[3];
};

} // namespace sonic::dnn

#endif // SONIC_DNN_DEVICE_NET_HH
