#include "dnn/device_net.hh"

#include <map>

#include "fixed/fixed.hh"
#include "util/logging.hh"

namespace sonic::dnn
{

namespace
{

using fixed::Q78;

DevSparseVec
makeSparseVec(arch::Device &dev, const std::vector<f64> &v,
              const std::string &name)
{
    std::vector<i16> idx;
    std::vector<i16> val;
    for (u32 i = 0; i < v.size(); ++i) {
        if (v[i] != 0.0) {
            idx.push_back(static_cast<i16>(i));
            val.push_back(Q78::fromFloat(v[i]).raw());
        }
    }
    DevSparseVec out;
    out.nnz = static_cast<u32>(idx.size());
    out.idx = std::make_unique<arch::NvArray<i16>>(
        dev, std::max<u64>(1, idx.size()), name + ".idx");
    out.val = std::make_unique<arch::NvArray<i16>>(
        dev, std::max<u64>(1, val.size()), name + ".val");
    for (u32 i = 0; i < idx.size(); ++i) {
        out.idx->poke(i, idx[i]);
        out.val->poke(i, val[i]);
    }
    return out;
}

DevFactoredConv
lowerFactored(arch::Device &dev, const FactoredConvLayer &f,
              const std::string &name)
{
    DevFactoredConv out;
    out.mix = makeSparseVec(dev, f.mix, name + ".mix");
    out.col = makeSparseVec(dev, f.col, name + ".col");
    out.row = makeSparseVec(dev, f.row, name + ".row");
    out.scale = makeSparseVec(dev, f.scale, name + ".scale");
    return out;
}

DevSparseConv
lowerSparseConv(arch::Device &dev, const SparseConvLayer &s,
                const ActShape &in, const std::string &name)
{
    const auto &bank = s.filters;
    DevSparseConv out;
    out.kh = bank.kh;
    out.kw = bank.kw;

    std::vector<i16> oc_ptr(bank.outChannels + 1, 0);
    std::vector<i16> ic, ky, kx, w, off;
    const u32 in_plane = in.h * in.w;
    for (u32 oc = 0; oc < bank.outChannels; ++oc) {
        for (u32 c = 0; c < bank.inChannels; ++c)
            for (u32 y = 0; y < bank.kh; ++y)
                for (u32 x = 0; x < bank.kw; ++x) {
                    const f64 v = bank.at(oc, c, y, x);
                    if (v != 0.0) {
                        ic.push_back(static_cast<i16>(c));
                        ky.push_back(static_cast<i16>(y));
                        kx.push_back(static_cast<i16>(x));
                        w.push_back(Q78::fromFloat(v).raw());
                        const u32 flat =
                            c * in_plane + y * in.w + x;
                        SONIC_ASSERT(flat <= 0x7fff,
                                     "tap offset exceeds 16 bits");
                        off.push_back(static_cast<i16>(flat));
                    }
                }
        SONIC_ASSERT(w.size() <= 0x7fff);
        oc_ptr[oc + 1] = static_cast<i16>(w.size());
    }
    out.nnz = static_cast<u32>(w.size());

    out.ocPtr = std::make_unique<arch::NvArray<i16>>(
        dev, oc_ptr.size(), name + ".ocPtr");
    for (u32 i = 0; i < oc_ptr.size(); ++i)
        out.ocPtr->poke(i, oc_ptr[i]);
    auto fill = [&](std::unique_ptr<arch::NvArray<i16>> &arr,
                    const std::vector<i16> &src, const char *suffix) {
        arr = std::make_unique<arch::NvArray<i16>>(
            dev, std::max<u64>(1, src.size()), name + suffix);
        for (u32 i = 0; i < src.size(); ++i)
            arr->poke(i, src[i]);
    };
    fill(out.tapIc, ic, ".ic");
    fill(out.tapKy, ky, ".ky");
    fill(out.tapKx, kx, ".kx");
    fill(out.tapW, w, ".w");
    fill(out.tapOff, off, ".off");
    return out;
}

DevDenseFc
lowerDenseFc(arch::Device &dev, const tensor::Matrix &m,
             const std::string &name)
{
    DevDenseFc out;
    out.m = m.rows();
    out.n = m.cols();
    out.w = std::make_unique<arch::NvArray<i16>>(
        dev, u64{out.m} * out.n, name + ".w");
    for (u32 r = 0; r < out.m; ++r)
        for (u32 c = 0; c < out.n; ++c)
            out.w->poke(u64{r} * out.n + c,
                        Q78::fromFloat(m.at(r, c)).raw());
    return out;
}

DevSparseFc
lowerSparseFc(arch::Device &dev, const tensor::Matrix &m,
              const std::string &name)
{
    DevSparseFc out;
    out.m = m.rows();
    out.n = m.cols();
    std::vector<i16> col_ptr(m.cols() + 1, 0);
    std::vector<i16> row_idx, val;
    for (u32 c = 0; c < m.cols(); ++c) {
        for (u32 r = 0; r < m.rows(); ++r) {
            if (m.at(r, c) != 0.0) {
                row_idx.push_back(static_cast<i16>(r));
                val.push_back(Q78::fromFloat(m.at(r, c)).raw());
            }
        }
        SONIC_ASSERT(val.size() <= 0x7fff);
        col_ptr[c + 1] = static_cast<i16>(val.size());
    }
    out.nnz = static_cast<u32>(val.size());
    out.colPtr = std::make_unique<arch::NvArray<i16>>(
        dev, col_ptr.size(), name + ".colPtr");
    for (u32 i = 0; i < col_ptr.size(); ++i)
        out.colPtr->poke(i, col_ptr[i]);
    out.rowIdx = std::make_unique<arch::NvArray<i16>>(
        dev, std::max<u64>(1, row_idx.size()), name + ".rowIdx");
    out.val = std::make_unique<arch::NvArray<i16>>(
        dev, std::max<u64>(1, val.size()), name + ".val");
    for (u32 i = 0; i < row_idx.size(); ++i) {
        out.rowIdx->poke(i, row_idx[i]);
        out.val->poke(i, val[i]);
    }
    return out;
}

} // namespace

DeviceNetwork::DeviceNetwork(arch::Device &dev, const NetworkSpec &spec)
    : dev_(dev), spec_(spec)
{
    const u64 map_elems = spec_.maxActivationElems();
    const u64 slice_elems = spec_.maxScratchElems();
    acts_[0] = std::make_unique<arch::NvArray<i16>>(dev, map_elems,
                                                    "act.ping");
    acts_[1] = std::make_unique<arch::NvArray<i16>>(dev, map_elems,
                                                    "act.pong");
    for (u32 s = 0; s < 3; ++s)
        scratch_[s] = std::make_unique<arch::NvArray<i16>>(
            dev, slice_elems, "scratch" + std::to_string(s));

    std::map<std::string, u16> stat_ids;
    ActShape shape = spec_.input;
    for (u32 li = 0; li < spec_.layers.size(); ++li) {
        const auto &layer = spec_.layers[li];
        DevLayer dl;
        dl.name = layer.name;
        auto it = stat_ids.find(layer.name);
        if (it == stat_ids.end()) {
            dl.statLayer = dev.registerLayer(layer.name);
            stat_ids.emplace(layer.name, dl.statLayer);
        } else {
            dl.statLayer = it->second;
        }
        dl.reluAfter = layer.reluAfter;
        dl.poolAfter = layer.poolAfter;
        dl.in = shape;
        dl.out = opOutputShape(layer.op, shape);

        const std::string base = spec_.name + "." + layer.name + "."
                               + std::to_string(li);
        if (const auto *f = std::get_if<FactoredConvLayer>(&layer.op)) {
            dl.op = lowerFactored(dev, *f, base);
        } else if (const auto *s = std::get_if<SparseConvLayer>(&layer.op)) {
            dl.op = lowerSparseConv(dev, *s, dl.in, base);
        } else if (const auto *d = std::get_if<DenseConvLayer>(&layer.op)) {
            // Uncompressed convs are lowered as sparse convs with all
            // taps present (they rarely fit on-device anyway).
            SparseConvLayer as_sparse{d->filters};
            dl.op = lowerSparseConv(dev, as_sparse, dl.in, base);
        } else if (const auto *fc = std::get_if<DenseFcLayer>(&layer.op)) {
            dl.op = lowerDenseFc(dev, fc->weights, base);
        } else if (const auto *sfc = std::get_if<SparseFcLayer>(&layer.op)) {
            dl.op = lowerSparseFc(dev, sfc->weights, base);
        }
        layers_.push_back(std::move(dl));

        shape = dl.out;
        if (layer.poolAfter) {
            shape.h /= 2;
            shape.w /= 2;
        }
    }
}

void
DeviceNetwork::loadInput(const std::vector<i16> &input_q78)
{
    SONIC_ASSERT(input_q78.size() == spec_.input.elems(),
                 "input size mismatch");
    const u32 buf = inputBufferOf(0);
    for (u32 i = 0; i < input_q78.size(); ++i)
        acts_[buf]->poke(i, input_q78[i]);
}

u32
DeviceNetwork::inputBufferOf(u32 layer_index) const
{
    u32 cur = 0;
    for (u32 li = 0; li < layer_index; ++li) {
        if (!layers_[li].poolAfter)
            cur = 1 - cur;
        // Pooled layers write back into `cur` (conv -> 1-cur, pool ->
        // cur), leaving the schedule unchanged.
    }
    return cur;
}

u32
DeviceNetwork::outputBufferOf(u32 layer_index) const
{
    const u32 in = inputBufferOf(layer_index);
    return layers_[layer_index].poolAfter ? in : 1 - in;
}

std::vector<i16>
DeviceNetwork::peekLogits() const
{
    const u32 last = static_cast<u32>(layers_.size()) - 1;
    const u32 buf = outputBufferOf(last);
    std::vector<i16> logits(spec_.numClasses);
    for (u32 i = 0; i < logits.size(); ++i)
        logits[i] = acts_[buf]->peek(i);
    return logits;
}

std::vector<i16>
DeviceNetwork::quantizeInput(const tensor::FeatureMap &in)
{
    std::vector<i16> out;
    out.reserve(in.size());
    for (f64 v : in.data)
        out.push_back(Q78::fromFloat(v).raw());
    return out;
}

} // namespace sonic::dnn
