/**
 * @file
 * The versioned on-disk model format: networks as data, not code.
 *
 * A model file is JSON with weight blobs whose encoding is the
 * version's defining property; both encodings carry exact IEEE-754
 * bit patterns, so a save/load round trip is bit-exact: the reloaded
 * network flashes to identical Q7.8 device weights and produces
 * bit-identical logits and FRAM digests on every kernel.
 *
 *  - v2 (written): blobs are base64 of the raw little-endian f64
 *    bytes — ~2x smaller files and ~10x faster parsing than v1's
 *    hex, at 10.67 characters per weight.
 *  - v1 (still read): every f64 is the 16-hex-digit big-endian image
 *    of its bit pattern.
 *
 *     {"format": "sonic-model", "version": 2,
 *      "name": "HAR", "input": [3, 1, 36], "numClasses": 6,
 *      "layers": [
 *        {"name": "conv1", "kind": "factored-conv",
 *         "relu": true, "pool": false,
 *         "mix": "mpmZmZ...", "col": "", "row": "...", "scale": "..."},
 *        {"name": "fc", "kind": "sparse-fc", "relu": true,
 *         "pool": false, "rows": 192, "cols": 2450, "data": "..."},
 *        ...]}
 *
 * Loading is total: any malformed document — wrong format tag,
 * unknown version, missing field, type mismatch, truncated or
 * corrupt blob (odd-length hex, invalid base64, byte count that is
 * not a whole number of f64s), dimension/blob-size disagreement,
 * trailing garbage — is rejected with a diagnostic instead of a
 * crash, so untrusted model files are safe to probe.
 */

#ifndef SONIC_DNN_MODEL_IO_HH
#define SONIC_DNN_MODEL_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "dnn/spec.hh"
#include "dnn/zoo.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** Current model-format version (the "version" field): v2, base64
 * little-endian weight blobs. Loaders accept exactly the versions
 * they know (v1 hex, v2 base64) and reject everything else: the
 * format promises bit-exactness, so silent cross-version
 * reinterpretation is never correct. */
inline constexpr u32 kModelFormatVersion = 2;

/** Oldest version the loader still reads (v1: hex blobs). */
inline constexpr u32 kOldestReadableModelVersion = 1;

/** Serialize a network to the model format. */
void saveModel(const NetworkSpec &net, std::ostream &os);

/** saveModel into a string. */
std::string modelJson(const NetworkSpec &net);

/** saveModel to a file; false (with *error set) on I/O failure. */
bool saveModelFile(const NetworkSpec &net, const std::string &path,
                   std::string *error = nullptr);

/**
 * Parse a model document. On failure returns nullopt and, when error
 * is non-null, a one-line diagnostic naming the offending field.
 */
std::optional<NetworkSpec> parseModel(const std::string &text,
                                      std::string *error = nullptr);

/** parseModel over a stream. */
std::optional<NetworkSpec> loadModel(std::istream &is,
                                     std::string *error = nullptr);

/** parseModel over a file. */
std::optional<NetworkSpec> loadModelFile(const std::string &path,
                                         std::string *error = nullptr);

/**
 * Load a model file and register it in the zoo under its serialized
 * name (family "loaded", teacher == device network). Fails — without
 * registering — on parse errors or if the name is already taken.
 */
bool loadModelIntoZoo(const std::string &path, ModelZoo &zoo,
                      std::string *error = nullptr);

namespace testhooks
{

/**
 * Serialize in the legacy v1 format (hex blobs). Only for the
 * backward-compatibility tests: production code always writes the
 * current version.
 */
std::string modelJsonV1(const NetworkSpec &net);

} // namespace testhooks

} // namespace sonic::dnn

#endif // SONIC_DNN_MODEL_IO_HH
