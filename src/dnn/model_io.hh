/**
 * @file
 * The versioned on-disk model format: networks as data, not code.
 *
 * A model file is JSON with hex-encoded weight blobs — every f64 is
 * serialized as the 16-hex-digit big-endian image of its IEEE-754 bit
 * pattern, so a save/load round trip is bit-exact: the reloaded
 * network flashes to identical Q7.8 device weights and produces
 * bit-identical logits and FRAM digests on every kernel.
 *
 *     {"format": "sonic-model", "version": 1,
 *      "name": "HAR", "input": [3, 1, 36], "numClasses": 6,
 *      "layers": [
 *        {"name": "conv1", "kind": "factored-conv",
 *         "relu": true, "pool": false,
 *         "mix": "3fb1...", "col": "", "row": "...", "scale": "..."},
 *        {"name": "fc", "kind": "sparse-fc", "relu": true,
 *         "pool": false, "rows": 192, "cols": 2450, "data": "..."},
 *        ...]}
 *
 * Loading is total: any malformed document — wrong format tag, future
 * version, missing field, type mismatch, truncated or odd-length hex,
 * dimension/blob-size disagreement, trailing garbage — is rejected
 * with a diagnostic instead of a crash, so untrusted model files are
 * safe to probe.
 */

#ifndef SONIC_DNN_MODEL_IO_HH
#define SONIC_DNN_MODEL_IO_HH

#include <iosfwd>
#include <optional>
#include <string>

#include "dnn/spec.hh"
#include "dnn/zoo.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** Current model-format version (the "version" field). Loaders accept
 * exactly this version: the format promises bit-exactness, so silent
 * cross-version reinterpretation is never correct. */
inline constexpr u32 kModelFormatVersion = 1;

/** Serialize a network to the model format. */
void saveModel(const NetworkSpec &net, std::ostream &os);

/** saveModel into a string. */
std::string modelJson(const NetworkSpec &net);

/** saveModel to a file; false (with *error set) on I/O failure. */
bool saveModelFile(const NetworkSpec &net, const std::string &path,
                   std::string *error = nullptr);

/**
 * Parse a model document. On failure returns nullopt and, when error
 * is non-null, a one-line diagnostic naming the offending field.
 */
std::optional<NetworkSpec> parseModel(const std::string &text,
                                      std::string *error = nullptr);

/** parseModel over a stream. */
std::optional<NetworkSpec> loadModel(std::istream &is,
                                     std::string *error = nullptr);

/** parseModel over a file. */
std::optional<NetworkSpec> loadModelFile(const std::string &path,
                                         std::string *error = nullptr);

/**
 * Load a model file and register it in the zoo under its serialized
 * name (family "loaded", teacher == device network). Fails — without
 * registering — on parse errors or if the name is already taken.
 */
bool loadModelIntoZoo(const std::string &path, ModelZoo &zoo,
                      std::string *error = nullptr);

} // namespace sonic::dnn

#endif // SONIC_DNN_MODEL_IO_HH
