/**
 * @file
 * Host-side network descriptions. A NetworkSpec is a sequence of
 * LayerSpecs holding float weights; it can be evaluated on the host
 * (the golden model used by GENESIS and by tests), counted (params,
 * MACs, FRAM footprint — GENESIS' feasibility and energy inputs), and
 * lowered onto a Device (dnn/device_net.hh).
 *
 * The layer vocabulary matches the paper's Table 2:
 *  - FactoredConvLayer: the "HOOI 3x 1-D conv" form (channel mix,
 *    column conv, row conv, per-output-channel scale);
 *  - SparseConvLayer:   a pruned dense 2-D convolution;
 *  - DenseFcLayer:      a dense fully-connected layer;
 *  - SparseFcLayer:     a pruned fully-connected layer.
 */

#ifndef SONIC_DNN_SPEC_HH
#define SONIC_DNN_SPEC_HH

#include <string>
#include <variant>
#include <vector>

#include "tensor/matrix.hh"
#include "tensor/nnref.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/**
 * Factored ("separated") convolution: optional channel mix (ic -> 1),
 * optional column (kh x 1) and row (1 x kw) 1-D convolutions, then a
 * per-output-channel scale (1 -> oc). Empty vectors mean the stage is
 * skipped (e.g., mix when ic == 1). Vectors may contain zeros after
 * pruning; device lowering stores only the non-zeros.
 */
struct FactoredConvLayer
{
    std::vector<f64> mix;   ///< size ic (empty if ic == 1)
    std::vector<f64> col;   ///< size kh (empty if kh == 1)
    std::vector<f64> row;   ///< size kw (empty if kw == 1)
    std::vector<f64> scale; ///< size oc (CP lambda folded in)
};

/** Pruned dense 2-D convolution (kept in dense storage, zeros pruned). */
struct SparseConvLayer
{
    tensor::FilterBank filters;
};

/** Dense 2-D convolution (uncompressed originals). */
struct DenseConvLayer
{
    tensor::FilterBank filters;
};

/** Dense fully-connected layer (weights m x n, y = W x). */
struct DenseFcLayer
{
    tensor::Matrix weights;
};

/** Pruned fully-connected layer. */
struct SparseFcLayer
{
    tensor::Matrix weights;
};

using LayerOp = std::variant<FactoredConvLayer, SparseConvLayer,
                             DenseConvLayer, DenseFcLayer, SparseFcLayer>;

/** One layer plus its fused activation/pooling. */
struct LayerSpec
{
    std::string name;    ///< attribution bucket ("conv1", "fc", ...)
    LayerOp op;
    bool reluAfter = false;
    bool poolAfter = false; ///< 2x2 max pool (convs only)
};

/** Shape of a CHW activation. */
struct ActShape
{
    u32 c = 0;
    u32 h = 0;
    u32 w = 0;

    u64 elems() const { return u64{c} * h * w; }
};

/** A full network: input shape plus layers. */
struct NetworkSpec
{
    std::string name;
    ActShape input;
    u32 numClasses = 0;
    std::vector<LayerSpec> layers;

    /** Output shape of layer index i (after relu/pool fusion). */
    ActShape shapeAfter(u32 layer_index) const;

    /** Host float forward pass; returns the logits. */
    std::vector<f64> forward(const tensor::FeatureMap &in) const;

    /** Predicted class. */
    u32 classify(const tensor::FeatureMap &in) const;

    /** Non-zero parameter count (what must be stored). */
    u64 paramCount() const;

    /** Multiply-accumulate operations per inference. */
    u64 macCount() const;

    /**
     * FRAM bytes needed on device: 2 B per parameter plus index
     * storage for sparse forms plus the activation ping-pong buffers.
     */
    u64 framBytesNeeded() const;

    /** Largest activation map (elements) across layer boundaries. */
    u64 maxActivationElems() const;

    /** Largest single-channel scratch slice (elements) needed. */
    u64 maxScratchElems() const;
};

/** Shape transform of a layer op, before relu/pool fusion. */
ActShape opOutputShape(const LayerOp &op, ActShape in);

/** Per-layer accounting row (Table 2 reproduction). */
struct LayerAccounting
{
    std::string name;
    std::string kind;
    u64 params = 0;
    u64 macs = 0;
};

std::vector<LayerAccounting> accountLayers(const NetworkSpec &net);

} // namespace sonic::dnn

#endif // SONIC_DNN_SPEC_HH
