/**
 * @file
 * Builders for the paper's three workloads (Table 2): MNIST-style image
 * classification, human activity recognition (HAR), and Google keyword
 * spotting (OkG).
 *
 * Offline we cannot train on the real datasets, so each workload is
 * defined by a deterministic *teacher* network whose weights are
 * constructed to be compressible (approximately low-rank filter banks
 * and heavy-tailed fully-connected weights — the empirical property of
 * trained networks that separation and pruning exploit). The compressed
 * device networks are derived from the teacher by the same operations
 * GENESIS applies: CP/Tucker rank-1 separation of conv filter banks,
 * truncated SVD of FC layers, and magnitude pruning to the Table 2
 * budgets. Accuracy of any derived network is measured as agreement
 * with the teacher on synthetic held-out samples, scaled by the paper's
 * reported base accuracy (see dnn/dataset.hh).
 *
 * COMPAT SHIM: the NetId enum below is internal to dnn/ — the rest of
 * the system addresses workloads by registered name through the
 * string-keyed ModelZoo (dnn/zoo.hh), where these three pre-register
 * alongside builder-generated and disk-loaded models. Do not reference
 * NetId outside dnn/.
 */

#ifndef SONIC_DNN_NETWORKS_HH
#define SONIC_DNN_NETWORKS_HH

#include "dnn/spec.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** The three paper workloads (dnn-internal; see the file comment). */
enum class NetId : u8
{
    Mnist,
    Har,
    Okg
};

/** Stable workload name ("MNIST", "HAR", "OkG"). */
const char *netName(NetId id);

/** The paper's reported accuracy for the chosen configuration. */
f64 paperAccuracy(NetId id);

/** The original (uncompressed) network — infeasible on-device. */
NetworkSpec buildTeacher(NetId id, u64 seed = 0x5eed);

/**
 * The compressed configuration used on-device, derived from the
 * teacher per Table 2 (separation + pruning budgets).
 */
NetworkSpec buildCompressed(NetId id, u64 seed = 0x5eed);

/**
 * Knobs for building alternative compressed configurations (GENESIS'
 * search space). fcKeep/convKeep are the fractions of FC/conv weights
 * kept by pruning; fcRank scales the SVD ranks (1.0 = Table 2 ranks);
 * separateConv chooses rank-1 separation vs pruned dense convs.
 */
struct CompressionKnobs
{
    bool separateConv = true;
    f64 convKeep = 1.0;
    f64 fcKeep = 1.0;
    f64 fcRankScale = 1.0;
    bool svdFc = true;
};

/** Build a compressed network with explicit knobs (GENESIS sweep). */
NetworkSpec buildWithKnobs(NetId id, const CompressionKnobs &knobs,
                           u64 seed = 0x5eed);

/**
 * Knob-driven compression for an arbitrary teacher (workloads without
 * hand-tuned Table 2 budgets): rank-1 separation of single-channel
 * conv banks, magnitude pruning of multi-channel convs, truncated SVD
 * plus pruning of hidden FC layers (rank ~ min(m, n)/8 and a ~10%
 * weight budget at knob 1.0), final classifier kept dense. Paper
 * workloads override this with their Table 2 budgets through
 * ModelDef::withKnobs (dnn/zoo.hh).
 */
NetworkSpec compressGeneric(const NetworkSpec &teacher,
                            const CompressionKnobs &knobs);

} // namespace sonic::dnn

#endif // SONIC_DNN_NETWORKS_HH
