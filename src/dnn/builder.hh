/**
 * @file
 * Declarative network construction. NetworkBuilder is a fluent API for
 * assembling a NetworkSpec layer by layer — with explicit weights or
 * with deterministic synthetic weights drawn on the Q7.8 dyadic grid
 * (k/256, exactly representable in both f64 and device fixed point, so
 * built networks are bit-stable across hosts like the verify golden
 * workload) — plus parameterized generators that make whole synthetic
 * model families one-liners:
 *
 *     auto net = NetworkBuilder("TinyCNN", {1, 12, 12})
 *                    .factoredConv("conv1", 4, 3, 3).relu().pool()
 *                    .sparseFc("fc", 16, 0.5).relu()
 *                    .fc("out", 6)
 *                    .build();
 *
 *     auto deep = deepFcNet("DeepFC-6", 32, 6, 24, 8);
 *
 * Shape propagation is automatic (valid convolutions, 2x2 pooling, FC
 * flattening); mismatches are fatal at build() with the offending
 * layer named. The class count is the final layer's output size.
 */

#ifndef SONIC_DNN_BUILDER_HH
#define SONIC_DNN_BUILDER_HH

#include <string>

#include "dnn/spec.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** Fluent layer-by-layer NetworkSpec assembly. */
class NetworkBuilder
{
  public:
    NetworkBuilder(std::string name, ActShape input, u64 seed = 0x5eed);

    /** @name Synthetic-weight layers (deterministic dyadic weights
     * derived from the builder seed and the layer index; weight
     * magnitudes are scaled down by powers of two as fan-in grows so
     * accumulations stay inside the device's Q7.8 range). */
    /// @{
    /** Dense 2-D convolution, `oc` filters of kh x kw. */
    NetworkBuilder &conv(std::string name, u32 oc, u32 kh, u32 kw);
    /** Pruned 2-D convolution keeping ~density of the taps. */
    NetworkBuilder &sparseConv(std::string name, u32 oc, u32 kh, u32 kw,
                               f64 density);
    /** Separated conv: channel mix + col/row 1-D taps + oc scales. */
    NetworkBuilder &factoredConv(std::string name, u32 oc, u32 kh,
                                 u32 kw);
    /** Dense fully-connected layer to `outputs` units. */
    NetworkBuilder &fc(std::string name, u32 outputs);
    /** Pruned fully-connected layer keeping ~density of the weights. */
    NetworkBuilder &sparseFc(std::string name, u32 outputs, f64 density);
    /// @}

    /** @name Explicit-weight layers. */
    /// @{
    NetworkBuilder &conv(std::string name, tensor::FilterBank filters);
    NetworkBuilder &sparseConv(std::string name,
                               tensor::FilterBank filters);
    NetworkBuilder &factoredConv(std::string name,
                                 FactoredConvLayer layer);
    NetworkBuilder &fc(std::string name, tensor::Matrix weights);
    NetworkBuilder &sparseFc(std::string name, tensor::Matrix weights);
    /// @}

    /** Fuse a ReLU onto the last added layer. */
    NetworkBuilder &relu();

    /** Fuse a 2x2 max pool onto the last added layer (convs only). */
    NetworkBuilder &pool();

    /** Activation shape after the layers added so far. */
    ActShape currentShape() const { return shape_; }

    /**
     * Finish: the class count is the final layer's output element
     * count. At least one layer is required.
     */
    NetworkSpec build() const;

  private:
    NetworkBuilder &append(std::string name, LayerOp op);
    Rng layerRng();

    NetworkSpec net_;
    ActShape shape_;
    u64 seed_;
    u32 layerIndex_ = 0;
};

/** @name Synthetic model families (each a NetworkBuilder one-liner).
 * Deterministic in (name, shape parameters, seed); weights dyadic. */
/// @{

/** `depth` dense FC layers of `width` units over a flat input. */
NetworkSpec deepFcNet(const std::string &name, u32 inputDim, u32 depth,
                      u32 width, u32 classes, u64 seed = 0x5eed);

/** One wide sparse hidden FC layer (pruned to `density`). */
NetworkSpec wideFcNet(const std::string &name, u32 inputDim, u32 width,
                      f64 density, u32 classes, u64 seed = 0x5eed);

/** `depth` stacked factored (depthwise-separable-style) convolutions
 * over a `channels` x `hw` x `hw` input, then a sparse FC head. */
NetworkSpec depthwiseConvNet(const std::string &name, u32 channels,
                             u32 hw, u32 depth, u32 classes,
                             u64 seed = 0x5eed);
/// @}

} // namespace sonic::dnn

#endif // SONIC_DNN_BUILDER_HH
