#include "dnn/dataset.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::dnn
{

namespace
{

/** One box-blur pass along rows and columns of each channel. */
void
blurInPlace(tensor::FeatureMap &m)
{
    tensor::FeatureMap tmp = m;
    for (u32 c = 0; c < m.channels; ++c) {
        for (u32 y = 0; y < m.height; ++y) {
            for (u32 x = 0; x < m.width; ++x) {
                f64 acc = 0.0;
                u32 cnt = 0;
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int yy = static_cast<int>(y) + dy;
                        const int xx = static_cast<int>(x) + dx;
                        if (yy >= 0 && xx >= 0
                            && yy < static_cast<int>(m.height)
                            && xx < static_cast<int>(m.width)) {
                            acc += tmp.at(c, static_cast<u32>(yy),
                                          static_cast<u32>(xx));
                            ++cnt;
                        }
                    }
                }
                m.at(c, y, x) = acc / static_cast<f64>(cnt);
            }
        }
    }
}

/** Smooth class prototype with per-class deterministic structure. */
tensor::FeatureMap
makePrototype(const ActShape &shape, u32 cls, u64 seed)
{
    Rng rng = Rng(seed).fork(1000 + cls);
    tensor::FeatureMap proto(shape.c, shape.h, shape.w);
    for (auto &v : proto.data)
        v = rng.gaussian();
    blurInPlace(proto);
    blurInPlace(proto);
    // Normalize to unit RMS so all classes have comparable energy.
    f64 rms = 0.0;
    for (f64 v : proto.data)
        rms += v * v;
    rms = std::sqrt(rms / static_cast<f64>(proto.size()));
    if (rms > 1e-12)
        for (auto &v : proto.data)
            v /= rms;
    return proto;
}

} // namespace

Dataset
makeDataset(const NetworkSpec &teacher, u32 n, u64 seed)
{
    const u32 classes = teacher.numClasses;
    std::vector<tensor::FeatureMap> protos;
    protos.reserve(classes);
    for (u32 c = 0; c < classes; ++c)
        protos.push_back(makePrototype(teacher.input, c, seed));

    Rng rng = Rng(seed).fork(7);
    Dataset data;
    data.reserve(n);
    for (u32 i = 0; i < n; ++i) {
        const u32 proto_cls = static_cast<u32>(rng.below(classes));
        tensor::FeatureMap x(teacher.input.c, teacher.input.h,
                             teacher.input.w);
        for (u64 e = 0; e < x.size(); ++e) {
            const f64 v = 0.45 + 0.42 * protos[proto_cls].data[e]
                        + 0.10 * rng.gaussian();
            x.data[e] = std::clamp(v, -1.0, 1.0);
        }
        Sample s;
        s.label = teacher.classify(x);
        s.input = std::move(x);
        data.push_back(std::move(s));
    }
    return data;
}

f64
agreement(const NetworkSpec &net, const Dataset &data)
{
    SONIC_ASSERT(!data.empty());
    u64 correct = 0;
    for (const auto &s : data)
        if (net.classify(s.input) == s.label)
            ++correct;
    return static_cast<f64>(correct) / static_cast<f64>(data.size());
}

Rates
detectionRates(const NetworkSpec &net, const Dataset &data,
               u32 interesting_class)
{
    u64 pos = 0, neg = 0, tp = 0, tn = 0;
    for (const auto &s : data) {
        const u32 pred = net.classify(s.input);
        const bool actual = s.label == interesting_class;
        const bool detected = pred == interesting_class;
        if (actual) {
            ++pos;
            if (detected)
                ++tp;
        } else {
            ++neg;
            if (!detected)
                ++tn;
        }
    }
    Rates r;
    r.truePositive = pos ? static_cast<f64>(tp) / static_cast<f64>(pos)
                         : 1.0;
    r.trueNegative = neg ? static_cast<f64>(tn) / static_cast<f64>(neg)
                         : 1.0;
    r.baseRate = static_cast<f64>(pos)
               / static_cast<f64>(data.size());
    return r;
}

u32
dominantClass(const Dataset &data, u32 num_classes)
{
    std::vector<u64> counts(num_classes, 0);
    for (const auto &s : data)
        ++counts[s.label];
    return static_cast<u32>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
}

} // namespace sonic::dnn
