/**
 * @file
 * Deterministic synthetic datasets and the accuracy metric.
 *
 * Substitution (see DESIGN.md): the real MNIST/HAR/GoogleSpeech data
 * cannot be shipped offline, so each workload gets a synthetic
 * generator producing class-structured inputs (smooth class prototypes
 * plus noise), labelled by the *teacher* network. The teacher is then
 * 100%-accurate on its own labels by construction, and the accuracy of
 * any compressed network is its agreement with the teacher scaled by
 * the paper's reported accuracy for the workload. This measures real
 * degradation of the very weights the device executes, which is what
 * the GENESIS trade-off curves need.
 */

#ifndef SONIC_DNN_DATASET_HH
#define SONIC_DNN_DATASET_HH

#include <vector>

#include "dnn/spec.hh"
#include "util/types.hh"

namespace sonic::dnn
{

/** One labelled sample. */
struct Sample
{
    tensor::FeatureMap input;
    u32 label = 0;
};

/** A labelled dataset for one workload. */
using Dataset = std::vector<Sample>;

/**
 * Generate n samples for the teacher's input shape, labelled by the
 * teacher. Deterministic in (teacher, n, seed).
 */
Dataset makeDataset(const NetworkSpec &teacher, u32 n, u64 seed = 0xda7a);

/** Fraction of samples on which net agrees with the labels. */
f64 agreement(const NetworkSpec &net, const Dataset &data);
// Scaling agreement by the paper's reported base accuracy lives with
// the per-model metadata: dnn::ModelMeta::scaledAccuracy (dnn/zoo.hh).

/** True-positive / true-negative rates for one "interesting" class. */
struct Rates
{
    f64 truePositive = 0.0;
    f64 trueNegative = 0.0;
    f64 baseRate = 0.0; ///< fraction of samples labelled interesting
};

/**
 * Evaluate detection rates of net treating `interesting_class` as the
 * positive class (the paper's application model inputs, Sec. 5.3).
 */
Rates detectionRates(const NetworkSpec &net, const Dataset &data,
                     u32 interesting_class);

/** The most common label (a sensible default "interesting" class). */
u32 dominantClass(const Dataset &data, u32 num_classes);

} // namespace sonic::dnn

#endif // SONIC_DNN_DATASET_HH
