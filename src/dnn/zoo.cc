#include "dnn/zoo.hh"

#include <utility>

#include "dnn/builder.hh"
#include "util/logging.hh"
// The verify subsystem's platform-stable integer-dyadic workload
// pre-registers here so the oracle CLI and the golden harness can
// address it like any other model. workload.hh depends only on
// dnn/spec.hh, so no include cycle arises.
#include "verify/workload.hh"

namespace sonic::dnn
{

// --- ModelEntry -----------------------------------------------------

ModelEntry::ModelEntry(std::string name, ModelMeta meta, ModelDef def)
    : name_(std::move(name)), meta_(std::move(meta)),
      teacher_(std::move(def.teacher))
{
    compressed_ = def.compressed.layers.empty() ? teacher_
                                                : std::move(def.compressed);
    if (def.teacherAt) {
        teacherAt_ = std::move(def.teacherAt);
    } else {
        // Fixed-weight model: every seed sees the registered teacher.
        // Entries are non-copyable and address-stable (the zoo holds
        // them by unique_ptr), so capturing `this` avoids doubling the
        // weight storage in the closure.
        teacherAt_ = [this](u64) { return teacher_; };
    }
    if (def.withKnobs) {
        withKnobs_ = std::move(def.withKnobs);
    } else {
        withKnobs_ = [teacherAt = teacherAt_](const CompressionKnobs &k,
                                              u64 seed) {
            return compressGeneric(teacherAt(seed), k);
        };
    }
    datasetBuilder_ = std::move(def.dataset);
}

const Dataset &
ModelEntry::dataset() const
{
    std::call_once(datasetOnce_, [this] {
        // A model-supplied builder replaces the synthetic default
        // (the ROADMAP dataset plug-in point): loaded models can ship
        // their own eval inputs instead of the fixed synthetic shape.
        dataset_ = datasetBuilder_
            ? datasetBuilder_(teacher_, meta_)
            : makeDataset(teacher_, meta_.datasetSamples,
                          meta_.datasetSeed);
        SONIC_ASSERT(!dataset_.empty(),
                     "model '", name_, "' built an empty dataset");
    });
    return dataset_;
}

// --- ModelZoo -------------------------------------------------------

ModelZoo &
ModelZoo::instance()
{
    static ModelZoo zoo;
    return zoo;
}

ModelZoo::ModelZoo()
{
    // The paper's three workloads carry their Table 2 compression
    // budgets and reported accuracies.
    struct PaperRow
    {
        NetId id;
        const char *description;
    };
    const PaperRow paper[] = {
        {NetId::Mnist, "MNIST image classification (Table 2)"},
        {NetId::Har, "human activity recognition (Table 2)"},
        {NetId::Okg, "Google keyword spotting \"OK Google\" (Table 2)"},
    };
    for (const auto &row : paper) {
        ModelMeta meta;
        meta.paperAccuracy = paperAccuracy(row.id);
        meta.family = "paper";
        meta.description = row.description;
        add(netName(row.id), meta, [id = row.id] {
            ModelDef def;
            def.teacher = buildTeacher(id);
            def.compressed = buildCompressed(id);
            def.teacherAt = [id](u64 seed) {
                return buildTeacher(id, seed);
            };
            def.withKnobs = [id](const CompressionKnobs &knobs,
                                 u64 seed) {
                return buildWithKnobs(id, knobs, seed);
            };
            return def;
        });
    }

    {
        ModelMeta meta;
        meta.family = "verify";
        meta.description = "platform-stable integer-dyadic oracle "
                           "workload (all layer kinds)";
        add("golden", meta, [] {
            ModelDef def;
            def.teacher = verify::goldenNet();
            def.teacherAt = [](u64 seed) {
                return verify::goldenNet(seed);
            };
            return def;
        });
    }

    // NetworkBuilder-generated synthetic families: non-paper workloads
    // proving new models are one-liners. Born device-feasible, so the
    // teacher runs on-device unmodified.
    {
        ModelMeta meta;
        meta.family = "synthetic";
        meta.description = "six dense FC layers, 24 wide, 8 classes";
        add("DeepFC-6", meta, [] {
            ModelDef def;
            def.teacher = deepFcNet("DeepFC-6", 32, 6, 24, 8);
            def.teacherAt = [](u64 seed) {
                return deepFcNet("DeepFC-6", 32, 6, 24, 8, seed);
            };
            return def;
        });
    }
    {
        ModelMeta meta;
        meta.family = "synthetic";
        meta.description =
            "one 512-wide sparse hidden layer (10% dense), 10 classes";
        add("WideFC-512", meta, [] {
            ModelDef def;
            def.teacher = wideFcNet("WideFC-512", 48, 512, 0.10, 10);
            def.teacherAt = [](u64 seed) {
                return wideFcNet("WideFC-512", 48, 512, 0.10, 10, seed);
            };
            return def;
        });
    }
    {
        ModelMeta meta;
        meta.family = "synthetic";
        meta.description = "three stacked depthwise-separable factored "
                           "convs over 3x12x12, 6 classes";
        add("DWConv-3", meta, [] {
            ModelDef def;
            def.teacher = depthwiseConvNet("DWConv-3", 3, 12, 3, 6);
            def.teacherAt = [](u64 seed) {
                return depthwiseConvNet("DWConv-3", 3, 12, 3, 6, seed);
            };
            return def;
        });
    }
}

void
ModelZoo::add(std::string name, ModelMeta meta,
              std::function<ModelDef()> build)
{
    SONIC_ASSERT(!name.empty(), "model name must be non-empty");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &row : rows_)
        SONIC_ASSERT(row->name != name, "model '", name,
                     "' registered twice");
    auto row = std::make_unique<Row>();
    row->name = std::move(name);
    row->meta = std::move(meta);
    row->build = std::move(build);
    rows_.push_back(std::move(row));
}

void
ModelZoo::add(std::string name, ModelMeta meta, NetworkSpec net)
{
    add(std::move(name), std::move(meta),
        [net = std::move(net)] { return ModelDef{net, {}, {}, {}}; });
}

bool
ModelZoo::contains(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &row : rows_)
        if (row->name == name)
            return true;
    return false;
}

const ModelMeta *
ModelZoo::meta(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &row : rows_)
        if (row->name == name)
            return &row->meta;
    return nullptr;
}

std::vector<std::string>
ModelZoo::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(rows_.size());
    for (const auto &row : rows_)
        out.push_back(row->name);
    return out;
}

std::string
ModelZoo::availableList() const
{
    std::string out;
    for (const auto &name : names()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

ModelZoo::Row *
ModelZoo::rowFor(std::string_view name)
{
    for (const auto &row : rows_)
        if (row->name == name)
            return row.get();
    return nullptr;
}

const ModelEntry *
ModelZoo::find(std::string_view name)
{
    std::function<ModelDef()> build;
    ModelMeta meta;
    std::string row_name;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        Row *row = rowFor(name);
        if (row == nullptr)
            return nullptr;
        if (row->entry)
            return row->entry.get();
        build = row->build;
        meta = row->meta;
        row_name = row->name;
    }

    // Build outside the lock: builders are user code and may
    // themselves consult the zoo (e.g. compose from another model),
    // which would deadlock on the non-recursive mutex. Two threads
    // racing here build the same deterministic content; the first to
    // publish wins and the duplicate is discarded.
    auto entry =
        std::make_unique<ModelEntry>(std::move(row_name),
                                     std::move(meta), build());

    std::lock_guard<std::mutex> lock(mutex_);
    Row *row = rowFor(name);
    if (!row->entry)
        row->entry = std::move(entry);
    return row->entry.get();
}

const ModelEntry &
ModelZoo::get(std::string_view name)
{
    const ModelEntry *entry = find(name);
    if (entry == nullptr)
        fatal("unknown model '", std::string(name),
              "'; registered models: ", availableList());
    return *entry;
}

} // namespace sonic::dnn
