#include "dnn/builder.hh"

#include <utility>

#include "util/logging.hh"

namespace sonic::dnn
{

namespace
{

/**
 * Dyadic rational in [-1, 1) with step 1/256 — the Q7.8 grid — from
 * pure integer Rng output (no libm), the same platform-stability trick
 * as the verify golden workload.
 */
f64
dyadic(Rng &rng)
{
    const i64 raw = static_cast<i64>(rng.next() % 512) - 256;
    return static_cast<f64>(raw) / 256.0;
}

/** Like dyadic(), but never zero (structural taps must be present). */
f64
dyadicNonZero(Rng &rng)
{
    for (;;) {
        const f64 v = dyadic(rng);
        if (v != 0.0)
            return v;
    }
}

/**
 * Power-of-two damping so |sum over fan_in| stays well inside the
 * Q7.8 accumulator range regardless of layer width.
 */
f64
fanInScale(u64 fan_in)
{
    f64 s = 1.0;
    while (static_cast<f64>(fan_in) * s > 64.0)
        s *= 0.5;
    return s;
}

/** Deterministic keep/drop pattern (no sort tie-breaking involved). */
bool
keepIndex(u64 i, f64 density)
{
    const u64 pct = static_cast<u64>(density * 100.0 + 0.5);
    return (i * 2654435761ull + 12345) % 100 < pct;
}

} // namespace

NetworkBuilder::NetworkBuilder(std::string name, ActShape input,
                               u64 seed)
    : shape_(input), seed_(seed)
{
    SONIC_ASSERT(input.elems() > 0, "builder input shape is empty");
    net_.name = std::move(name);
    net_.input = input;
}

Rng
NetworkBuilder::layerRng()
{
    // Per-layer fork: inserting or reordering fusion modifiers never
    // reseeds the weights of other layers.
    return Rng(seed_).fork(100 + layerIndex_);
}

NetworkBuilder &
NetworkBuilder::append(std::string name, LayerOp op)
{
    const ActShape out = opOutputShape(op, shape_);
    SONIC_ASSERT(out.elems() > 0, "layer '", name, "' of ", net_.name,
                 " produces an empty activation");
    net_.layers.push_back({std::move(name), std::move(op), false, false});
    shape_ = out;
    ++layerIndex_;
    return *this;
}

NetworkBuilder &
NetworkBuilder::conv(std::string name, u32 oc, u32 kh, u32 kw)
{
    SONIC_ASSERT(kh <= shape_.h && kw <= shape_.w,
                 "conv '", name, "' kernel exceeds the ", shape_.h, "x",
                 shape_.w, " input of ", net_.name);
    Rng rng = layerRng();
    tensor::FilterBank bank(oc, shape_.c, kh, kw);
    const f64 s = fanInScale(u64{shape_.c} * kh * kw);
    for (auto &w : bank.data)
        w = dyadic(rng) * s;
    return append(std::move(name), DenseConvLayer{std::move(bank)});
}

NetworkBuilder &
NetworkBuilder::sparseConv(std::string name, u32 oc, u32 kh, u32 kw,
                           f64 density)
{
    SONIC_ASSERT(kh <= shape_.h && kw <= shape_.w,
                 "sparseConv '", name, "' kernel exceeds the input of ",
                 net_.name);
    Rng rng = layerRng();
    tensor::FilterBank bank(oc, shape_.c, kh, kw);
    const f64 s = fanInScale(u64{shape_.c} * kh * kw);
    for (u64 i = 0; i < bank.data.size(); ++i)
        bank.data[i] = keepIndex(i, density) ? dyadicNonZero(rng) * s
                                             : 0.0;
    return append(std::move(name), SparseConvLayer{std::move(bank)});
}

NetworkBuilder &
NetworkBuilder::factoredConv(std::string name, u32 oc, u32 kh, u32 kw)
{
    SONIC_ASSERT(kh <= shape_.h && kw <= shape_.w,
                 "factoredConv '", name,
                 "' kernel exceeds the input of ", net_.name);
    Rng rng = layerRng();
    FactoredConvLayer f;
    if (shape_.c > 1) {
        const f64 ms = fanInScale(shape_.c);
        for (u32 i = 0; i < shape_.c; ++i)
            f.mix.push_back(dyadicNonZero(rng) * ms);
    }
    if (kh > 1) {
        const f64 cs = fanInScale(kh);
        for (u32 i = 0; i < kh; ++i)
            f.col.push_back(dyadicNonZero(rng) * cs);
    }
    if (kw > 1) {
        const f64 rs = fanInScale(kw);
        for (u32 i = 0; i < kw; ++i)
            f.row.push_back(dyadicNonZero(rng) * rs);
    }
    for (u32 i = 0; i < oc; ++i)
        f.scale.push_back(dyadicNonZero(rng));
    return append(std::move(name), std::move(f));
}

NetworkBuilder &
NetworkBuilder::fc(std::string name, u32 outputs)
{
    Rng rng = layerRng();
    const u32 inputs = static_cast<u32>(shape_.elems());
    tensor::Matrix w(outputs, inputs);
    const f64 s = fanInScale(inputs);
    for (auto &x : w.data())
        x = dyadic(rng) * s;
    return append(std::move(name), DenseFcLayer{std::move(w)});
}

NetworkBuilder &
NetworkBuilder::sparseFc(std::string name, u32 outputs, f64 density)
{
    Rng rng = layerRng();
    const u32 inputs = static_cast<u32>(shape_.elems());
    tensor::Matrix w(outputs, inputs);
    const f64 s = fanInScale(inputs);
    for (u64 i = 0; i < w.size(); ++i)
        w.data()[i] = keepIndex(i + 17, density)
            ? dyadicNonZero(rng) * s
            : 0.0;
    return append(std::move(name), SparseFcLayer{std::move(w)});
}

NetworkBuilder &
NetworkBuilder::conv(std::string name, tensor::FilterBank filters)
{
    SONIC_ASSERT(filters.inChannels == shape_.c,
                 "conv '", name, "' channel mismatch in ", net_.name);
    return append(std::move(name), DenseConvLayer{std::move(filters)});
}

NetworkBuilder &
NetworkBuilder::sparseConv(std::string name, tensor::FilterBank filters)
{
    SONIC_ASSERT(filters.inChannels == shape_.c,
                 "sparseConv '", name, "' channel mismatch in ",
                 net_.name);
    return append(std::move(name), SparseConvLayer{std::move(filters)});
}

NetworkBuilder &
NetworkBuilder::factoredConv(std::string name, FactoredConvLayer layer)
{
    return append(std::move(name), std::move(layer));
}

NetworkBuilder &
NetworkBuilder::fc(std::string name, tensor::Matrix weights)
{
    SONIC_ASSERT(weights.cols() == shape_.elems(),
                 "fc '", name, "' expects ", weights.cols(),
                 " inputs but the current shape of ", net_.name,
                 " flattens to ", shape_.elems());
    return append(std::move(name), DenseFcLayer{std::move(weights)});
}

NetworkBuilder &
NetworkBuilder::sparseFc(std::string name, tensor::Matrix weights)
{
    SONIC_ASSERT(weights.cols() == shape_.elems(),
                 "sparseFc '", name, "' expects ", weights.cols(),
                 " inputs but the current shape of ", net_.name,
                 " flattens to ", shape_.elems());
    return append(std::move(name), SparseFcLayer{std::move(weights)});
}

NetworkBuilder &
NetworkBuilder::relu()
{
    SONIC_ASSERT(!net_.layers.empty(), "relu() before any layer");
    net_.layers.back().reluAfter = true;
    return *this;
}

NetworkBuilder &
NetworkBuilder::pool()
{
    SONIC_ASSERT(!net_.layers.empty(), "pool() before any layer");
    auto &layer = net_.layers.back();
    SONIC_ASSERT(!std::holds_alternative<DenseFcLayer>(layer.op)
                     && !std::holds_alternative<SparseFcLayer>(layer.op),
                 "pool() fuses onto convolutions only");
    SONIC_ASSERT(!layer.poolAfter, "pool() fused twice");
    layer.poolAfter = true;
    shape_.h /= 2;
    shape_.w /= 2;
    SONIC_ASSERT(shape_.elems() > 0, "pool() collapsed the map of ",
                 net_.name);
    return *this;
}

NetworkSpec
NetworkBuilder::build() const
{
    SONIC_ASSERT(!net_.layers.empty(), "build() on an empty network");
    NetworkSpec out = net_;
    out.numClasses = static_cast<u32>(shape_.elems());
    return out;
}

NetworkSpec
deepFcNet(const std::string &name, u32 inputDim, u32 depth, u32 width,
          u32 classes, u64 seed)
{
    SONIC_ASSERT(depth >= 1, "deepFcNet needs at least one layer");
    NetworkBuilder b(name, {1, 1, inputDim}, seed);
    for (u32 i = 0; i + 1 < depth; ++i)
        b.fc("fc" + std::to_string(i + 1), width).relu();
    b.fc("out", classes);
    return b.build();
}

NetworkSpec
wideFcNet(const std::string &name, u32 inputDim, u32 width, f64 density,
          u32 classes, u64 seed)
{
    return NetworkBuilder(name, {1, 1, inputDim}, seed)
        .sparseFc("wide", width, density)
        .relu()
        .fc("out", classes)
        .build();
}

NetworkSpec
depthwiseConvNet(const std::string &name, u32 channels, u32 hw,
                 u32 depth, u32 classes, u64 seed)
{
    NetworkBuilder b(name, {channels, hw, hw}, seed);
    for (u32 i = 0; i < depth; ++i)
        b.factoredConv("dw" + std::to_string(i + 1), channels, 3, 3)
            .relu();
    b.sparseFc("fc", 16, 0.5).relu().fc("out", classes);
    return b.build();
}

} // namespace sonic::dnn
