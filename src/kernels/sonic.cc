/**
 * @file
 * The SONIC runtime (paper Sec. 6): task-based DNN inference that
 * "breaks the rules" of conventional task-based systems safely.
 *
 *  - Loop continuation: loop index variables live in FRAM and are
 *    written directly (an intentional WAR violation). After a power
 *    failure the task re-enters and resumes from the last completed
 *    iteration instead of restarting.
 *  - Loop-ordered buffering: convolutions and dense FC layers iterate
 *    tap-major, writing partial accumulations to a double buffer that
 *    a small committed task swaps between taps (Listing 1's
 *    Task_Next_Filter `atomic` block maps to the scheduler's logged
 *    commit).
 *  - Sparse undo-logging: sparse FC layers update activations in place
 *    under a two-index (read / write) two-phase protocol with one
 *    canonical save slot.
 *
 * Every iteration of every loop below is idempotent, which is what
 * makes the direct index writes safe. The exhaustive fail-at-every-
 * operation tests in tests/ verify this.
 *
 * Lambdas capture `this` (the builder outlives the scheduler run) and
 * plain values; device data structures are captured as pointers into
 * the DeviceNetwork, which owns them.
 */

#include "kernels/runner.hh"

#include "kernels/sonic_builder.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "arch/memory.hh"
#include "kernels/kernel_util.hh"
#include "task/runtime.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

namespace testhooks
{

bool sonicDisableUndoLogging = false;

} // namespace testhooks

using arch::Device;
using arch::NvArray;
using arch::NvVar;
using arch::Op;
using arch::Part;
using dnn::DevDenseFc;
using dnn::DevFactoredConv;
using dnn::DeviceNetwork;
using dnn::DevLayer;
using dnn::DevSparseConv;
using dnn::DevSparseFc;
using dnn::DevSparseVec;
using task::Runtime;
using task::TaskId;

namespace
{

/** Loop-continuation index write: a direct FRAM store, attributed to
 * control (the paper's Sec. 9.4 measures these at 14% of energy). */
inline void
writeIndex(Device &dev, NvVar<i16> &var, i32 value)
{
    arch::ScopedPart control(dev, Part::Control);
    var.write(static_cast<i16>(value));
}

/**
 * Host-side span width for SONIC's loop-continuation chunking. Within
 * one tap the destination buffer is write-only and the sources are
 * read-only (loop-ordered buffering), so a span of up to kSpanWords
 * iterations is idempotent as a unit: a power failure anywhere inside
 * leaves the index at the span start and re-execution reproduces the
 * same values. The spans charge bit-identical cycle/energy/op totals
 * to the per-element loops (n index stores are coalesced into one
 * n-charged write), they just cross the power-accounting boundary once
 * per span instead of once per word.
 *
 * kSpanWords sizes the stack buffers; the width actually used is the
 * builder's spanWords_ (safeSpanWords-clamped so one atomic span
 * always fits inside the device's energy buffer).
 */
constexpr u32 kSpanWords = SonicBuilder::kMaxSpanWords;

/** Coalesced loop-continuation index writes for an n-iteration span. */
inline void
writeIndexSpan(Device &dev, NvVar<i16> &var, i32 value, u32 n)
{
    arch::ScopedPart control(dev, Part::Control);
    var.writeCoalesced(static_cast<i16>(value), n);
}

} // namespace

TaskId
SonicBuilder::build()
{
    TaskId next = task::kDone;
    for (i32 li = static_cast<i32>(net_.layers().size()) - 1; li >= 0;
         --li) {
        next = buildLayer(static_cast<u32>(li), next);
    }
    return next;
}

TaskId
SonicBuilder::buildLayer(u32 li, TaskId next)
{
    DevLayer &layer = net_.layers()[li];
    NvArray<i16> *src = &net_.act(net_.inputBufferOf(li));
    NvArray<i16> *conv_dst = &net_.act(1 - net_.inputBufferOf(li));

    // Build back to front within the layer: pool last.
    if (layer.poolAfter)
        next = buildPool(layer, conv_dst, src, next);

    if (auto *f = std::get_if<DevFactoredConv>(&layer.op)) {
        // mix -> col -> row -> scale; 1-D stages deposit their result
        // in scratch(2), the scale stage broadcasts into the act map.
        u32 h = layer.in.h;
        u32 w = layer.in.w;
        NvArray<i16> *cur = src;
        u32 cur_base = 0;

        struct Stage
        {
            enum Kind { Mix, Col, Row } kind;
            NvArray<i16> *src;
            u32 srcBase;
            u32 inW, outH, outW;
        };
        std::vector<Stage> stages;
        if (f->mix.nnz > 0) {
            stages.push_back({Stage::Mix, cur, cur_base, w, h, w});
            cur = &net_.scratch(2);
            cur_base = 0;
        }
        if (f->col.nnz > 0) {
            const u32 kh = layer.in.h - layer.out.h + 1;
            stages.push_back({Stage::Col, cur, cur_base, w, h - kh + 1,
                              w});
            h = h - kh + 1;
            cur = &net_.scratch(2);
            cur_base = 0;
        }
        if (f->row.nnz > 0) {
            const u32 kw = layer.in.w - layer.out.w + 1;
            stages.push_back({Stage::Row, cur, cur_base, w, h,
                              w - kw + 1});
            w = w - kw + 1;
            cur = &net_.scratch(2);
            cur_base = 0;
        }
        SONIC_ASSERT(h == layer.out.h && w == layer.out.w,
                     "factored conv shape bug");

        // Reverse-build: scale first.
        TaskId chain = buildScale(layer, f->scale, cur, cur_base, h * w,
                                  conv_dst, layer.reluAfter, next);
        for (i32 si = static_cast<i32>(stages.size()) - 1; si >= 0;
             --si) {
            const Stage &s = stages[static_cast<u32>(si)];
            if (s.kind == Stage::Mix) {
                chain = buildMix(layer, f->mix, s.src, s.inW * s.outH,
                                 chain);
            } else {
                chain = buildConv1d(layer,
                                    s.kind == Stage::Col ? f->col
                                                         : f->row,
                                    s.src, s.srcBase, s.inW, s.outH,
                                    s.outW, s.kind == Stage::Col,
                                    chain);
            }
        }
        return chain;
    }
    if (auto *s = std::get_if<DevSparseConv>(&layer.op))
        return buildSparseConv(layer, *s, src, conv_dst,
                               layer.reluAfter, next);
    if (auto *fc = std::get_if<DevDenseFc>(&layer.op))
        return buildDenseFc(layer, *fc, src, conv_dst, layer.reluAfter,
                            next);
    if (auto *sfc = std::get_if<DevSparseFc>(&layer.op))
        return buildSparseFc(layer, *sfc, src, conv_dst,
                             layer.reluAfter, next);
    panic("unknown layer op");
}

TaskId
SonicBuilder::buildConv1d(const DevLayer &layer, const DevSparseVec &taps,
                          NvArray<i16> *src, u32 src_base, u32 in_w,
                          u32 out_h, u32 out_w, bool vertical,
                          TaskId next)
{
    SONIC_ASSERT(taps.nnz >= 1);
    const u32 nnz = taps.nnz;
    const u16 stat = layer.statLayer;
    const DevSparseVec *tp = &taps;

    auto slot_next = std::make_shared<TaskId>(task::kDone);

    // Finalize: copy the settled result slice into scratch(2),
    // span-at-a-time (write-once copy; spans re-execute idempotently).
    const u32 result_slice = (nnz - 1) % 2;
    const TaskId t_fin = prog_.addTask(
        layer.name + ".conv1d.fin",
        [this, stat, result_slice, out_h, out_w, next](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            const u32 count = out_h * out_w;
            u32 p = static_cast<u32>(st_.x.read());
            d.setPart(Part::Kernel);
            i16 buf[kSpanWords];
            while (p < count) {
                const u32 n = std::min(spanWords_, count - p);
                net_.scratch(result_slice).readRange(p, n, buf);
                net_.scratch(2).writeRange(p, n, buf);
                writeIndexSpan(d, st_.x, static_cast<i32>(p + n), n);
                rt.progress(p);
                loopStep(d, n);
                p += n;
            }
            d.setPart(Part::Control);
            rt.logWrite(st_.x, 0);
            return next;
        });

    const TaskId t_conv = prog_.addTask(
        layer.name + ".conv1d",
        [this, stat, tp, src, src_base, in_w, out_h, out_w, vertical,
         nnz, t_fin, slot_next](Runtime &rt) -> TaskId {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            const i32 t = st_.tap.read();
            if (t >= static_cast<i32>(nnz))
                return t_fin;
            const i32 b = st_.buf.read();
            NvArray<i16> &dest = net_.scratch(static_cast<u32>(b));
            NvArray<i16> &inter = net_.scratch(1 - static_cast<u32>(b));
            // Hoist the tap (one of loop continuation's savings).
            const i16 off = tp->idx->read(static_cast<u32>(t));
            const i16 w = tp->val->read(static_cast<u32>(t));
            u32 y = static_cast<u32>(st_.y.read());
            u32 x = static_cast<u32>(st_.x.read());
            i16 in[kSpanWords];
            i16 acc[kSpanWords];
            while (y < out_h) {
                addr2(d);
                const u32 row_src = vertical
                    ? (y + static_cast<u32>(off)) * in_w
                    : y * in_w + static_cast<u32>(off);
                d.consume(Op::AluMul);
                const u32 row_out = y * out_w;
                d.setPart(Part::Kernel);
                while (x < out_w) {
                    // Span: dest is write-only for this tap, src and
                    // inter read-only — idempotent as a unit.
                    const u32 n = std::min(spanWords_, out_w - x);
                    addr1(d, n);
                    src->readRange(src_base + row_src + x, n, in);
                    chargeMulQ(d, n);
                    chargeBranch(d, n);
                    if (t > 0) {
                        inter.readRange(row_out + x, n, acc);
                        d.consume(Op::FixedAdd, n);
                        for (u32 k = 0; k < n; ++k)
                            acc[k] = addQRaw(acc[k],
                                             mulQRaw(w, in[k]));
                    } else {
                        for (u32 k = 0; k < n; ++k)
                            acc[k] = mulQRaw(w, in[k]);
                    }
                    dest.writeRange(row_out + x, n, acc);
                    writeIndexSpan(d, st_.x, static_cast<i32>(x + n),
                                   n);
                    rt.progress((static_cast<u64>(t) << 32)
                                | (row_out + x));
                    loopStep(d, n);
                    x += n;
                }
                d.setPart(Part::Control);
                // x reset *before* y advance keeps the nest idempotent.
                st_.x.write(0);
                st_.y.write(static_cast<i32>(y + 1));
                x = 0;
                ++y;
            }
            return *slot_next;
        });

    // Next-tap: Listing 1's Task_Next_Filter — atomic swap + advance.
    const TaskId t_next = prog_.addTask(
        layer.name + ".conv1d.next",
        [this, nnz, t_conv](Runtime &rt) {
            const i32 t = st_.tap.read();
            const i32 b = st_.buf.read();
            const bool last = t + 1 >= static_cast<i32>(nnz);
            rt.logWrite(st_.tap, last ? static_cast<i32>(nnz) : t + 1);
            rt.logWrite(st_.buf, last ? 0 : 1 - b);
            rt.logWrite(st_.y, 0);
            return t_conv;
        });
    *slot_next = t_next;

    // Entry resets the loop registers for this stage.
    const TaskId t_entry = prog_.addTask(
        layer.name + ".conv1d.entry", [this, t_conv](Runtime &rt) {
            rt.logWrite(st_.tap, 0);
            rt.logWrite(st_.buf, 0);
            rt.logWrite(st_.y, 0);
            rt.logWrite(st_.x, 0);
            return t_conv;
        });
    return t_entry;
}

TaskId
SonicBuilder::buildMix(const DevLayer &layer, const DevSparseVec &mix,
                       NvArray<i16> *src, u32 plane, TaskId next)
{
    // The mix stage is a 1-D "conv" across channels with stride =
    // plane: taps index channels, positions span the plane.
    return buildConv1d(layer, mix, src, 0, plane, 1, plane, true, next);
}

TaskId
SonicBuilder::buildScale(const DevLayer &layer, const DevSparseVec &scale,
                         NvArray<i16> *src, u32 src_base, u32 plane,
                         NvArray<i16> *dst, bool relu, TaskId next)
{
    const u16 stat = layer.statLayer;
    const DevSparseVec *sp = &scale;
    const TaskId t_scale = prog_.addTask(
        layer.name + ".scale",
        [this, stat, sp, src, src_base, plane, dst, relu,
         next](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            i32 t = st_.tap.read();
            u32 p = static_cast<u32>(st_.x.read());
            const u32 nnz = sp->nnz;
            i16 in[kSpanWords];
            i16 out[kSpanWords];
            while (t < static_cast<i32>(nnz)) {
                const i16 oc = sp->idx->read(static_cast<u32>(t));
                const i16 w = sp->val->read(static_cast<u32>(t));
                d.consume(Op::AluMul);
                const u32 dst_base = static_cast<u32>(oc) * plane;
                d.setPart(Part::Kernel);
                while (p < plane) {
                    // Write-once broadcast: spans are idempotent.
                    const u32 n = std::min(spanWords_, plane - p);
                    src->readRange(src_base + p, n, in);
                    chargeMulQ(d, n);
                    if (relu)
                        chargeBranch(d, n);
                    addr1(d, n);
                    for (u32 k = 0; k < n; ++k) {
                        i16 v = mulQRaw(w, in[k]);
                        if (relu)
                            v = reluQRaw(v);
                        out[k] = v;
                    }
                    dst->writeRange(dst_base + p, n, out);
                    writeIndexSpan(d, st_.x, static_cast<i32>(p + n),
                                   n);
                    rt.progress((static_cast<u64>(t) << 32) | p);
                    loopStep(d, n);
                    p += n;
                }
                d.setPart(Part::Control);
                st_.x.write(0);
                st_.tap.write(t + 1);
                p = 0;
                ++t;
            }
            rt.logWrite(st_.tap, 0);
            return next;
        });

    const TaskId t_entry = prog_.addTask(
        layer.name + ".scale.entry", [this, t_scale](Runtime &rt) {
            rt.logWrite(st_.tap, 0);
            rt.logWrite(st_.x, 0);
            return t_scale;
        });
    return t_entry;
}

TaskId
SonicBuilder::buildSparseConv(const DevLayer &layer,
                              const DevSparseConv &op, NvArray<i16> *src,
                              NvArray<i16> *dst, bool relu, TaskId next)
{
    const u16 stat = layer.statLayer;
    const DevSparseConv *cp = &op;
    const u32 out_plane = layer.out.h * layer.out.w;
    const u32 in_plane = layer.in.h * layer.in.w;
    const u32 oc_count = layer.out.c;
    const u32 out_w = layer.out.w;
    const u32 out_h = layer.out.h;
    const u32 in_w = layer.in.w;
    auto slot_conv = std::make_shared<TaskId>(task::kDone);
    auto slot_next = std::make_shared<TaskId>(task::kDone);

    // Finalize one output channel: copy the settled slice (or zeros
    // for an all-pruned channel) into the activation map, fused relu.
    const TaskId t_fin = prog_.addTask(
        layer.name + ".spconv.fin",
        [this, stat, cp, dst, relu, out_plane, slot_conv](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            const i32 oc = st_.oc.read();
            const i32 first = cp->ocPtr->read(static_cast<u32>(oc));
            const i32 last = cp->ocPtr->read(static_cast<u32>(oc) + 1);
            const bool empty = first == last;
            const i32 b = st_.buf.read();
            NvArray<i16> &result =
                net_.scratch(1 - static_cast<u32>(b));
            d.consume(Op::AluMul);
            const u32 dst_base = static_cast<u32>(oc) * out_plane;
            u32 p = static_cast<u32>(st_.x.read());
            d.setPart(Part::Kernel);
            i16 buf[kSpanWords];
            while (p < out_plane) {
                const u32 n = std::min(spanWords_, out_plane - p);
                if (empty) {
                    std::fill_n(buf, n, i16{0});
                } else {
                    result.readRange(p, n, buf);
                }
                if (relu) {
                    chargeBranch(d, n);
                    for (u32 k = 0; k < n; ++k)
                        buf[k] = reluQRaw(buf[k]);
                }
                addr1(d, n);
                dst->writeRange(dst_base + p, n, buf);
                writeIndexSpan(d, st_.x, static_cast<i32>(p + n), n);
                rt.progress((static_cast<u64>(oc) << 40) | p);
                loopStep(d, n);
                p += n;
            }
            d.setPart(Part::Control);
            rt.logWrite(st_.oc, oc + 1);
            rt.logWrite(st_.buf, 0);
            rt.logWrite(st_.x, 0);
            rt.logWrite(st_.y, 0);
            return *slot_conv;
        });

    const TaskId t_conv = prog_.addTask(
        layer.name + ".spconv",
        [this, stat, cp, src, in_plane, in_w, out_h, out_w, oc_count,
         next, t_fin, slot_next](Runtime &rt) -> TaskId {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            const i32 oc = st_.oc.read();
            if (oc >= static_cast<i32>(oc_count)) {
                rt.logWrite(st_.oc, 0);
                rt.logWrite(st_.tap, 0);
                return next;
            }
            const i32 first = cp->ocPtr->read(static_cast<u32>(oc));
            const i32 last = cp->ocPtr->read(static_cast<u32>(oc) + 1);
            i32 t = st_.tap.read();
            if (t < first)
                t = first;
            if (t >= last)
                return t_fin;
            // Hoist the tap.
            const u32 ti = static_cast<u32>(t);
            const i16 ic = cp->tapIc->read(ti);
            const i16 ky = cp->tapKy->read(ti);
            const i16 kx = cp->tapKx->read(ti);
            const i16 w = cp->tapW->read(ti);
            const i32 b = st_.buf.read();
            NvArray<i16> &dest = net_.scratch(static_cast<u32>(b));
            NvArray<i16> &inter =
                net_.scratch(1 - static_cast<u32>(b));
            u32 y = static_cast<u32>(st_.y.read());
            u32 x = static_cast<u32>(st_.x.read());
            i16 in[kSpanWords];
            i16 acc[kSpanWords];
            while (y < out_h) {
                addr3(d);
                const u32 row_src = static_cast<u32>(ic) * in_plane
                    + (y + static_cast<u32>(ky)) * in_w
                    + static_cast<u32>(kx);
                d.consume(Op::AluMul);
                const u32 row_out = y * out_w;
                d.setPart(Part::Kernel);
                while (x < out_w) {
                    // Span: same idempotence argument as conv1d.
                    const u32 n = std::min(spanWords_, out_w - x);
                    addr1(d, n);
                    src->readRange(row_src + x, n, in);
                    chargeMulQ(d, n);
                    chargeBranch(d, n);
                    if (t > first) {
                        inter.readRange(row_out + x, n, acc);
                        d.consume(Op::FixedAdd, n);
                        for (u32 k = 0; k < n; ++k)
                            acc[k] = addQRaw(acc[k],
                                             mulQRaw(w, in[k]));
                    } else {
                        for (u32 k = 0; k < n; ++k)
                            acc[k] = mulQRaw(w, in[k]);
                    }
                    dest.writeRange(row_out + x, n, acc);
                    writeIndexSpan(d, st_.x, static_cast<i32>(x + n),
                                   n);
                    rt.progress((static_cast<u64>(t) << 32)
                                | (row_out + x));
                    loopStep(d, n);
                    x += n;
                }
                d.setPart(Part::Control);
                st_.x.write(0);
                st_.y.write(static_cast<i32>(y + 1));
                x = 0;
                ++y;
            }
            return *slot_next;
        });

    const TaskId t_next = prog_.addTask(
        layer.name + ".spconv.next", [this, t_conv](Runtime &rt) {
            const i32 t = st_.tap.read();
            const i32 b = st_.buf.read();
            rt.logWrite(st_.tap, t + 1);
            rt.logWrite(st_.buf, 1 - b);
            rt.logWrite(st_.y, 0);
            return t_conv;
        });
    *slot_next = t_next;
    *slot_conv = t_conv;

    const TaskId t_entry = prog_.addTask(
        layer.name + ".spconv.entry", [this, t_conv](Runtime &rt) {
            rt.logWrite(st_.oc, 0);
            rt.logWrite(st_.tap, 0);
            rt.logWrite(st_.buf, 0);
            rt.logWrite(st_.y, 0);
            rt.logWrite(st_.x, 0);
            return t_conv;
        });
    return t_entry;
}

TaskId
SonicBuilder::buildDenseFc(const DevLayer &layer, const DevDenseFc &op,
                           NvArray<i16> *src, NvArray<i16> *dst,
                           bool relu, TaskId next)
{
    const u16 stat = layer.statLayer;
    const DevDenseFc *fp = &op;
    const u32 m = op.m;
    const u32 n = op.n;

    auto slot_next = std::make_shared<TaskId>(task::kDone);
    const u32 result_slice = (n - 1) % 2;
    const TaskId t_fin = prog_.addTask(
        layer.name + ".fcd.fin",
        [this, stat, dst, relu, m, result_slice, next](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            u32 r = static_cast<u32>(st_.x.read());
            d.setPart(Part::Kernel);
            i16 buf[kSpanWords];
            while (r < m) {
                const u32 nn = std::min(spanWords_, m - r);
                net_.scratch(result_slice).readRange(r, nn, buf);
                if (relu) {
                    chargeBranch(d, nn);
                    for (u32 k = 0; k < nn; ++k)
                        buf[k] = reluQRaw(buf[k]);
                }
                dst->writeRange(r, nn, buf);
                writeIndexSpan(d, st_.x, static_cast<i32>(r + nn), nn);
                rt.progress(r);
                loopStep(d, nn);
                r += nn;
            }
            d.setPart(Part::Control);
            rt.logWrite(st_.x, 0);
            return next;
        });

    const TaskId t_tap = prog_.addTask(
        layer.name + ".fcd",
        [this, stat, fp, src, m, n, t_fin, slot_next](Runtime &rt)
            -> TaskId {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            const i32 c = st_.tap.read();
            if (c >= static_cast<i32>(n))
                return t_fin;
            const i16 xin = src->read(static_cast<u32>(c));
            const i32 b = st_.buf.read();
            NvArray<i16> &dest = net_.scratch(static_cast<u32>(b));
            NvArray<i16> &inter =
                net_.scratch(1 - static_cast<u32>(b));
            u32 r = static_cast<u32>(st_.x.read());
            d.setPart(Part::Kernel);
            i16 wcol[kSpanWords];
            i16 acc[kSpanWords];
            while (r < m) {
                // Span over output rows: the weight column is a
                // strided gather, dest is write-only for this input.
                const u32 nn = std::min(spanWords_, m - r);
                addr2(d, nn);
                fp->w->readStride(u64{r} * n + static_cast<u32>(c), n,
                                  nn, wcol);
                chargeMulQ(d, nn);
                chargeBranch(d, nn);
                if (c > 0) {
                    inter.readRange(r, nn, acc);
                    d.consume(Op::FixedAdd, nn);
                    for (u32 k = 0; k < nn; ++k)
                        acc[k] = addQRaw(acc[k],
                                         mulQRaw(wcol[k], xin));
                } else {
                    for (u32 k = 0; k < nn; ++k)
                        acc[k] = mulQRaw(wcol[k], xin);
                }
                dest.writeRange(r, nn, acc);
                writeIndexSpan(d, st_.x, static_cast<i32>(r + nn), nn);
                rt.progress((static_cast<u64>(c) << 32) | r);
                loopStep(d, nn);
                r += nn;
            }
            d.setPart(Part::Control);
            return *slot_next;
        });

    const TaskId t_next = prog_.addTask(
        layer.name + ".fcd.next", [this, n, t_tap](Runtime &rt) {
            const i32 c = st_.tap.read();
            const i32 b = st_.buf.read();
            const bool last = c + 1 >= static_cast<i32>(n);
            rt.logWrite(st_.tap, last ? static_cast<i32>(n) : c + 1);
            rt.logWrite(st_.buf, last ? 0 : 1 - b);
            rt.logWrite(st_.x, 0);
            return t_tap;
        });
    *slot_next = t_next;

    const TaskId t_entry = prog_.addTask(
        layer.name + ".fcd.entry", [this, t_tap](Runtime &rt) {
            rt.logWrite(st_.tap, 0);
            rt.logWrite(st_.buf, 0);
            rt.logWrite(st_.x, 0);
            return t_tap;
        });
    return t_entry;
}

TaskId
SonicBuilder::buildSparseFc(const DevLayer &layer, const DevSparseFc &op,
                            NvArray<i16> *src, NvArray<i16> *dst,
                            bool relu, TaskId next)
{
    const u16 stat = layer.statLayer;
    const DevSparseFc *fp = &op;
    const u32 m = op.m;
    const u32 nnz = op.nnz;

    // Optional fused relu pass (in-place, idempotent).
    TaskId after = next;
    if (relu) {
        after = prog_.addTask(
            layer.name + ".sfc.relu",
            [this, stat, dst, m, next](Runtime &rt) {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                u32 r = static_cast<u32>(st_.x.read());
                d.setPart(Part::Kernel);
                while (r < m) {
                    // In-place span: relu is idempotent, so a re-run
                    // after a mid-span failure converges.
                    const u32 nn = std::min(spanWords_, m - r);
                    chargeBranch(d, nn);
                    dst->accumRange(r, nn, [](i16 v, u64) {
                        return reluQRaw(v);
                    });
                    writeIndexSpan(d, st_.x, static_cast<i32>(r + nn),
                                   nn);
                    rt.progress(r);
                    loopStep(d, nn);
                    r += nn;
                }
                d.setPart(Part::Control);
                rt.logWrite(st_.x, 0);
                return next;
            });
    }

    // Atomic reset of the undo-log indices between layers.
    const TaskId t_reset = prog_.addTask(
        layer.name + ".sfc.reset", [this, after](Runtime &rt) {
            rt.logWrite(st_.rd, 0);
            rt.logWrite(st_.wr, 0);
            rt.logWrite(st_.col, 0);
            rt.logWrite(st_.x, 0);
            return after;
        });

    // The in-place sparse accumulation under sparse undo-logging.
    const TaskId t_acc = prog_.addTask(
        layer.name + ".sfc",
        [this, stat, fp, src, dst, nnz, t_reset](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            i32 t = st_.wr.read();
            u32 c = static_cast<u32>(st_.col.read());
            while (t < static_cast<i32>(nnz)) {
                // Advance the CSC column cursor (monotonic; direct
                // writes are safe because c is re-derived from t).
                d.setPart(Part::Control);
                while (fp->colPtr->read(c + 1) <= t) {
                    ++c;
                    st_.col.write(static_cast<i32>(c));
                    loopStep(d);
                }
                d.setPart(Part::Kernel);
                const u32 ti = static_cast<u32>(t);
                const i16 r = fp->rowIdx->read(ti);
                i16 base;
                if (testhooks::sonicDisableUndoLogging) [[unlikely]] {
                    // Oracle self-test fault: naive in-place RMW. A
                    // failure between the dst store below and the wr
                    // index advance re-applies this tap on restart.
                    d.consume(Op::Branch);
                    base = dst->read(static_cast<u32>(r));
                } else {
                    // Phase 1: save the original value once per tap.
                    d.consume(Op::Branch);
                    if (st_.rd.read() <= t) {
                        st_.saved.write(
                            dst->read(static_cast<u32>(r)));
                        st_.rd.write(t + 1);
                    }
                    // Phase 2: recompute from the canonical save.
                    base = st_.saved.read();
                }
                const i16 w = fp->val->read(ti);
                const i16 xin = src->read(c);
                const i16 v = addQ(d, base, mulQ(d, w, xin));
                dst->write(static_cast<u32>(r), v);
                writeIndex(d, st_.wr, t + 1);
                rt.progress(static_cast<u64>(t));
                loopStep(d);
                ++t;
            }
            d.setPart(Part::Control);
            return t_reset;
        });

    // Zero the output map (idempotent write-once loop, span-filled).
    const TaskId t_zero = prog_.addTask(
        layer.name + ".sfc.zero",
        [this, stat, dst, m, t_acc](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            u32 r = static_cast<u32>(st_.x.read());
            d.setPart(Part::Kernel);
            while (r < m) {
                const u32 nn = std::min(spanWords_, m - r);
                dst->fillRange(r, nn, 0);
                writeIndexSpan(d, st_.x, static_cast<i32>(r + nn), nn);
                rt.progress(r);
                loopStep(d, nn);
                r += nn;
            }
            d.setPart(Part::Control);
            rt.logWrite(st_.x, 0);
            rt.logWrite(st_.rd, 0);
            rt.logWrite(st_.wr, 0);
            rt.logWrite(st_.col, 0);
            return t_acc;
        });

    const TaskId t_entry = prog_.addTask(
        layer.name + ".sfc.entry", [this, t_zero](Runtime &rt) {
            rt.logWrite(st_.x, 0);
            return t_zero;
        });
    return t_entry;
}

TaskId
SonicBuilder::buildPool(const DevLayer &layer, NvArray<i16> *src,
                        NvArray<i16> *dst, TaskId next)
{
    const u16 stat = layer.statLayer;
    const dnn::ActShape pre = layer.out;
    const u32 oh = pre.h / 2;
    const u32 ow = pre.w / 2;
    const u32 out_plane = oh * ow;

    const TaskId t_pool = prog_.addTask(
        layer.name + ".pool",
        [this, stat, src, dst, pre, ow, out_plane, next](Runtime &rt) {
            Device &d = rt.dev();
            arch::ScopedLayer al(d, stat);
            i32 oc = st_.oc.read();
            u32 p = static_cast<u32>(st_.x.read());
            while (oc < static_cast<i32>(pre.c)) {
                d.setPart(Part::Kernel);
                while (p < out_plane) {
                    divmod(d);
                    const u32 y = p / ow;
                    const u32 x = p % ow;
                    addr3(d);
                    const u32 base =
                        static_cast<u32>(oc) * pre.h * pre.w
                        + 2 * y * pre.w + 2 * x;
                    i16 v = src->read(base);
                    v = maxQ(d, v, src->read(base + 1));
                    v = maxQ(d, v, src->read(base + pre.w));
                    v = maxQ(d, v, src->read(base + pre.w + 1));
                    addr3(d);
                    dst->write(static_cast<u32>(oc) * out_plane + p, v);
                    writeIndex(d, st_.x, static_cast<i32>(p + 1));
                    rt.progress((static_cast<u64>(oc) << 32) | p);
                    loopStep(d);
                    ++p;
                }
                d.setPart(Part::Control);
                st_.x.write(0);
                st_.oc.write(oc + 1);
                p = 0;
                ++oc;
            }
            rt.logWrite(st_.oc, 0);
            rt.logWrite(st_.x, 0);
            return next;
        });

    const TaskId t_entry = prog_.addTask(
        layer.name + ".pool.entry", [this, t_pool](Runtime &rt) {
            rt.logWrite(st_.oc, 0);
            rt.logWrite(st_.x, 0);
            return t_pool;
        });
    return t_entry;
}

RunResult
runSonic(DeviceNetwork &net)
{
    Device &dev = net.dev();
    SonicState state(dev);
    task::Program program;
    SonicBuilder builder(net, program, state);
    const TaskId entry = builder.build();

    task::SchedulerConfig config;
    config.transitionStyle = task::TransitionStyle::Light;
    task::Scheduler sched(dev, program, config);
    const auto run = sched.run(entry);

    RunResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    if (run.completed)
        result.logits = net.peekLogits();
    return result;
}

} // namespace sonic::kernels
