/**
 * @file
 * Task-tiled baselines on the Alpaca-style runtime (the paper's
 * Tile-8 / Tile-32 / Tile-128, Sec. 6.2 and Fig. 6).
 *
 * Every layer's loop nest is flattened into a single iteration space;
 * each task executes a fixed number of iterations (the tile). All loop
 * state and written data are task-shared: writes go through the redo
 * log, reads of possibly-written locations through privatization, and
 * restarting a task re-derives its loop coordinates from the flattened
 * logged index (software divide/modulo — the MSP430 has no divide
 * unit). Each task pays the full task-based-runtime transition.
 *
 * Too large a tile demands more energy than the device buffers and the
 * program never terminates; too small a tile drowns in transition
 * overheads. Exactly the paper's trade-off.
 */

#include "kernels/runner.hh"

#include <algorithm>
#include <functional>
#include <memory>
#include <vector>

#include "arch/memory.hh"
#include "kernels/kernel_util.hh"
#include "task/runtime.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

namespace
{

using arch::Device;
using arch::NvArray;
using arch::NvVar;
using arch::Op;
using arch::Part;
using dnn::DevDenseFc;
using dnn::DevFactoredConv;
using dnn::DeviceNetwork;
using dnn::DevLayer;
using dnn::DevSparseConv;
using dnn::DevSparseFc;
using dnn::DevSparseVec;
using task::Runtime;
using task::TaskId;

/** One flattened, tiled loop nest. */
struct TiledStage
{
    std::string name;
    u16 statLayer = 0;
    u64 total = 0;
    std::function<void(Runtime &, u64)> body;
};

/**
 * Collects the stages of a network in execution order and lowers them
 * into tiled tasks around a shared logged loop index.
 */
class TiledBuilder
{
  public:
    TiledBuilder(DeviceNetwork &net, u32 tile)
        : net_(net), tile_(tile),
          flat_(net.dev(), "tiled.flatIndex", 0)
    {
        for (u32 li = 0; li < net_.layers().size(); ++li)
            buildLayer(li);
    }

    /** Lower stages to tasks; returns the entry task id. */
    TaskId
    lower(task::Program &prog)
    {
        SONIC_ASSERT(!stages_.empty());
        // Create tasks in reverse so each knows its successor.
        TaskId next = task::kDone;
        for (i32 si = static_cast<i32>(stages_.size()) - 1; si >= 0;
             --si) {
            next = lowerStage(prog, stages_[static_cast<u32>(si)], next);
        }
        return next;
    }

  private:
    TaskId
    lowerStage(task::Program &prog, const TiledStage &stage, TaskId next)
    {
        const u32 tile = tile_;
        auto self = std::make_shared<TaskId>(task::kDone);
        const TaskId id = prog.addTask(
            stage.name, [this, &stage, tile, next, self](Runtime &rt)
                -> TaskId {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stage.statLayer);
                u64 i = static_cast<u64>(rt.logRead(flat_));
                d.setPart(Part::Kernel);
                for (u32 k = 0; k < tile && i < stage.total; ++k, ++i)
                    stage.body(rt, i);
                d.setPart(Part::Control);
                const bool done = i >= stage.total;
                rt.logWrite(flat_, done ? 0 : static_cast<i32>(i));
                // This task is its own successor while work remains.
                return done ? next : *self;
            });
        *self = id;
        return id;
    }

    void buildLayer(u32 li);

    void conv1dStage(const DevLayer &layer, const DevSparseVec &taps,
                     NvArray<i16> *src, u32 src_base, u32 in_w,
                     u32 out_h, u32 out_w, bool vertical,
                     NvArray<i16> *dst);
    void scaleStage(const DevLayer &layer, const DevSparseVec &scale,
                    NvArray<i16> *src, u32 plane, NvArray<i16> *dst,
                    bool relu);
    void reluStage(const DevLayer &layer, NvArray<i16> *buf, u32 m);

    DeviceNetwork &net_;
    u32 tile_;
    NvVar<i32> flat_;
    std::vector<TiledStage> stages_;
    std::vector<std::shared_ptr<NvVar<i32>>> colVars_;
};

void
TiledBuilder::conv1dStage(const DevLayer &layer, const DevSparseVec &taps,
                          NvArray<i16> *src, u32 src_base, u32 in_w,
                          u32 out_h, u32 out_w, bool vertical,
                          NvArray<i16> *dst)
{
    const u64 plane = u64{out_h} * out_w;
    TiledStage stage;
    stage.name = layer.name + ".conv1d";
    stage.statLayer = layer.statLayer;
    stage.total = u64{taps.nnz} * plane;
    stage.body = [this, &taps, src, src_base, in_w, out_w, vertical, dst,
                  plane](Runtime &rt, u64 i) {
        Device &d = rt.dev();
        divmod(d);
        const u32 t = static_cast<u32>(i / plane);
        const u32 p = static_cast<u32>(i % plane);
        const i16 off = taps.idx->read(t);
        const i16 w = taps.val->read(t);
        u32 si;
        if (vertical) {
            d.consume(Op::AluMul);
            d.consume(Op::AluAdd);
            si = p + static_cast<u32>(off) * in_w;
        } else {
            divmod(d);
            addr2(d);
            const u32 y = p / out_w;
            const u32 x = p % out_w;
            si = y * in_w + x + static_cast<u32>(off);
        }
        const i16 s = src->read(src_base + si);
        i16 v = mulQ(d, w, s);
        d.consume(Op::Branch);
        if (t > 0)
            v = addQ(d, rt.logRead(*dst, p), v);
        rt.logWrite(*dst, p, v);
        loopStep(d);
    };
    stages_.push_back(std::move(stage));
}

void
TiledBuilder::scaleStage(const DevLayer &layer, const DevSparseVec &scale,
                         NvArray<i16> *src, u32 plane, NvArray<i16> *dst,
                         bool relu)
{
    TiledStage stage;
    stage.name = layer.name + ".scale";
    stage.statLayer = layer.statLayer;
    stage.total = u64{scale.nnz} * plane;
    stage.body = [&scale, src, plane, dst, relu](Runtime &rt, u64 i) {
        Device &d = rt.dev();
        divmod(d);
        const u32 t = static_cast<u32>(i / plane);
        const u32 p = static_cast<u32>(i % plane);
        const i16 oc = scale.idx->read(t);
        const i16 w = scale.val->read(t);
        addr2(d);
        const i16 s = src->read(p);
        i16 v = mulQ(d, w, s);
        if (relu)
            v = reluQ(d, v);
        rt.logWrite(*dst, static_cast<u32>(oc) * plane + p, v);
        loopStep(d);
    };
    stages_.push_back(std::move(stage));
}

void
TiledBuilder::reluStage(const DevLayer &layer, NvArray<i16> *buf, u32 m)
{
    TiledStage stage;
    stage.name = layer.name + ".relu";
    stage.statLayer = layer.statLayer;
    stage.total = m;
    stage.body = [buf](Runtime &rt, u64 i) {
        Device &d = rt.dev();
        const i16 v = rt.logRead(*buf, static_cast<u32>(i));
        rt.logWrite(*buf, static_cast<u32>(i), reluQ(d, v));
        loopStep(d);
    };
    stages_.push_back(std::move(stage));
}

void
TiledBuilder::buildLayer(u32 li)
{
    DevLayer &layer = net_.layers()[li];
    NvArray<i16> *src = &net_.act(net_.inputBufferOf(li));
    NvArray<i16> *conv_dst = &net_.act(1 - net_.inputBufferOf(li));

    if (auto *f = std::get_if<DevFactoredConv>(&layer.op)) {
        u32 h = layer.in.h;
        u32 w = layer.in.w;
        NvArray<i16> *cur = src;
        if (f->mix.nnz > 0) {
            // Channel mix as a vertical conv with stride = plane.
            conv1dStage(layer, f->mix, cur, 0, h * w, 1, h * w, true,
                        &net_.scratch(2));
            cur = &net_.scratch(2);
        }
        if (f->col.nnz > 0) {
            const u32 kh = layer.in.h - layer.out.h + 1;
            conv1dStage(layer, f->col, cur, 0, w, h - kh + 1, w, true,
                        &net_.scratch(0));
            cur = &net_.scratch(0);
            h = h - kh + 1;
        }
        if (f->row.nnz > 0) {
            const u32 kw = layer.in.w - layer.out.w + 1;
            conv1dStage(layer, f->row, cur, 0, w, h, w - kw + 1, false,
                        &net_.scratch(1));
            cur = &net_.scratch(1);
            w = w - kw + 1;
        }
        scaleStage(layer, f->scale, cur, h * w, conv_dst,
                   layer.reluAfter);
    } else if (auto *sc = std::get_if<DevSparseConv>(&layer.op)) {
        // Per-output-element iteration; the tap loop of one element
        // runs in registers inside one iteration.
        const u32 out_w = layer.out.w;
        const u32 out_h = layer.out.h;
        const u32 in_w = layer.in.w;
        const u64 out_plane = u64{out_h} * out_w;
        const bool relu = layer.reluAfter;
        TiledStage stage;
        stage.name = layer.name + ".spconv";
        stage.statLayer = layer.statLayer;
        stage.total = u64{layer.out.c} * out_plane;
        stage.body = [sc, src, conv_dst, out_plane, out_w, in_w,
                      relu](Runtime &rt, u64 i) {
            Device &d = rt.dev();
            divmod(d);
            const u32 oc = static_cast<u32>(i / out_plane);
            const u32 p = static_cast<u32>(i % out_plane);
            divmod(d);
            const u32 oy = p / out_w;
            const u32 ox = p % out_w;
            const i32 first = sc->ocPtr->read(oc);
            const i32 last = sc->ocPtr->read(oc + 1);
            i16 acc = 0;
            // Tap runs charge in bulk spans (identical totals); the
            // whole body re-executes after a failure, so batching
            // inside one iteration never changes recovery behavior.
            constexpr u32 kTapSpan = 32;
            i16 toff[kTapSpan];
            i16 tw[kTapSpan];
            for (i32 t = first; t < last;) {
                const u32 k = std::min<u32>(
                    kTapSpan, static_cast<u32>(last - t));
                sc->tapOff->readRange(static_cast<u32>(t), k, toff);
                sc->tapW->readRange(static_cast<u32>(t), k, tw);
                addr2(d, k);
                d.consume(Op::FramLoad, k); // gathered src reads
                chargeMacQ(d, k);
                loopStep(d, k);
                for (u32 j = 0; j < k; ++j) {
                    const u32 si = static_cast<u32>(toff[j])
                        + oy * in_w + ox;
                    acc = addQRaw(acc,
                                  mulQRaw(tw[j], src->peek(si)));
                }
                t += static_cast<i32>(k);
            }
            if (relu)
                acc = reluQ(d, acc);
            rt.logWrite(*conv_dst,
                        static_cast<u32>(oc * out_plane + p), acc);
            loopStep(d);
        };
        stages_.push_back(std::move(stage));
    } else if (auto *fc = std::get_if<DevDenseFc>(&layer.op)) {
        // Input-major per-tap iteration with memory accumulation
        // (Fig. 6's dot-product loop).
        const u32 m = fc->m;
        const u32 n = fc->n;
        TiledStage stage;
        stage.name = layer.name + ".fcd";
        stage.statLayer = layer.statLayer;
        stage.total = u64{m} * n;
        stage.body = [fc, src, conv_dst, m, n](Runtime &rt, u64 i) {
            Device &d = rt.dev();
            divmod(d);
            const u32 c = static_cast<u32>(i / m);
            const u32 r = static_cast<u32>(i % m);
            addr2(d);
            const i16 w = fc->w->read(u64{r} * n + c);
            const i16 x = src->read(c);
            i16 v = mulQ(d, w, x);
            d.consume(Op::Branch);
            if (c > 0)
                v = addQ(d, rt.logRead(*conv_dst, r), v);
            rt.logWrite(*conv_dst, r, v);
            loopStep(d);
        };
        stages_.push_back(std::move(stage));
        if (layer.reluAfter)
            reluStage(layer, conv_dst, m);
    } else if (auto *sfc = std::get_if<DevSparseFc>(&layer.op)) {
        // Zero init, then one iteration per stored weight.
        const u32 m = sfc->m;
        TiledStage zero;
        zero.name = layer.name + ".sfc.zero";
        zero.statLayer = layer.statLayer;
        zero.total = m;
        zero.body = [conv_dst](Runtime &rt, u64 i) {
            rt.logWrite(*conv_dst, static_cast<u32>(i), 0);
            loopStep(rt.dev());
        };
        stages_.push_back(std::move(zero));

        TiledStage acc;
        acc.name = layer.name + ".sfc";
        acc.statLayer = layer.statLayer;
        acc.total = sfc->nnz;
        // The CSC column cursor is task-shared state, logged like
        // every other loop variable.
        auto col = std::make_shared<NvVar<i32>>(net_.dev(),
                                                layer.name + ".col", 0);
        colVars_.push_back(col);
        acc.body = [sfc, src, conv_dst, col](Runtime &rt, u64 i) {
            Device &d = rt.dev();
            u32 c = static_cast<u32>(rt.logRead(*col));
            while (static_cast<i32>(i) >= sfc->colPtr->read(c + 1)) {
                ++c;
                loopStep(d);
            }
            rt.logWrite(*col, static_cast<i32>(c));
            const u32 ti = static_cast<u32>(i);
            const i16 r = sfc->rowIdx->read(ti);
            const i16 w = sfc->val->read(ti);
            const i16 x = src->read(c);
            const i16 old = rt.logRead(*conv_dst, static_cast<u32>(r));
            rt.logWrite(*conv_dst, static_cast<u32>(r),
                        addQ(d, old, mulQ(d, w, x)));
            loopStep(d);
        };
        stages_.push_back(std::move(acc));
        // Reset the column cursor for the next inference.
        TiledStage reset;
        reset.name = layer.name + ".sfc.rst";
        reset.statLayer = layer.statLayer;
        reset.total = 1;
        reset.body = [col](Runtime &rt, u64) {
            rt.logWrite(*col, 0);
        };
        stages_.push_back(std::move(reset));
        if (layer.reluAfter)
            reluStage(layer, conv_dst, m);
    }

    if (layer.poolAfter) {
        const dnn::ActShape pre = layer.out;
        const u32 oh = pre.h / 2;
        const u32 ow = pre.w / 2;
        const u64 out_plane = u64{oh} * ow;
        TiledStage stage;
        stage.name = layer.name + ".pool";
        stage.statLayer = layer.statLayer;
        stage.total = u64{pre.c} * out_plane;
        NvArray<i16> *pool_src = conv_dst;
        NvArray<i16> *pool_dst = src;
        stage.body = [pool_src, pool_dst, pre, ow, out_plane](
                         Runtime &rt, u64 i) {
            Device &d = rt.dev();
            divmod(d);
            const u32 c = static_cast<u32>(i / out_plane);
            const u32 p = static_cast<u32>(i % out_plane);
            divmod(d);
            const u32 y = p / ow;
            const u32 x = p % ow;
            addr3(d);
            const u32 base = c * pre.h * pre.w + 2 * y * pre.w + 2 * x;
            i16 v = pool_src->read(base);
            v = maxQ(d, v, pool_src->read(base + 1));
            v = maxQ(d, v, pool_src->read(base + pre.w));
            v = maxQ(d, v, pool_src->read(base + pre.w + 1));
            rt.logWrite(*pool_dst, static_cast<u32>(i), v);
            loopStep(d);
        };
        stages_.push_back(std::move(stage));
    }
}

} // namespace

RunResult
runTiled(DeviceNetwork &net, u32 tile)
{
    SONIC_ASSERT(tile >= 1);
    Device &dev = net.dev();
    TiledBuilder builder(net, tile);
    task::Program program;
    const TaskId entry = builder.lower(program);

    task::SchedulerConfig config;
    config.transitionStyle = task::TransitionStyle::Alpaca;
    task::Scheduler sched(dev, program, config);
    const auto run = sched.run(entry);

    RunResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    if (run.completed)
        result.logits = net.peekLogits();
    return result;
}

} // namespace sonic::kernels
