/**
 * @file
 * The Base implementation: a conventional, efficient inference loop
 * with volatile loop state and register accumulation. It performs no
 * intermittence bookkeeping at all — on continuous power it is the
 * fastest software implementation, and on harvested power it restarts
 * from the beginning at every failure and never terminates (the
 * paper's Fig. 9b).
 *
 * The whole inference runs as a single task; every local below models a
 * register or stack slot that a power failure clears.
 */

#include "kernels/runner.hh"

#include "arch/memory.hh"
#include "kernels/kernel_util.hh"
#include "task/runtime.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

namespace
{

using arch::Device;
using arch::NvArray;
using arch::Op;
using arch::Part;
using dnn::DevDenseFc;
using dnn::DevFactoredConv;
using dnn::DeviceNetwork;
using dnn::DevLayer;
using dnn::DevSparseConv;
using dnn::DevSparseFc;
using dnn::DevSparseVec;

/** Shaped 1-D conv: per-output-element register accumulation.
 * vertical applies taps down columns (stride = width), else along rows. */
void
conv1d(Device &dev, const DevSparseVec &taps, NvArray<i16> &src,
       u32 src_base, u32 in_w, NvArray<i16> &dst, u32 dst_base,
       u32 out_h, u32 out_w, bool vertical)
{
    dev.setPart(Part::Kernel);
    for (u32 y = 0; y < out_h; ++y) {
        for (u32 x = 0; x < out_w; ++x) {
            i16 acc = 0;
            for (u32 t = 0; t < taps.nnz; ++t) {
                const i16 off = taps.idx->read(t);
                const i16 w = taps.val->read(t);
                u32 si;
                if (vertical) {
                    si = (y + static_cast<u32>(off)) * in_w + x;
                    addr2(dev);
                } else {
                    si = y * in_w + x + static_cast<u32>(off);
                    addr2(dev);
                }
                const i16 s = src.read(src_base + si);
                acc = addQ(dev, acc, mulQ(dev, w, s));
                loopStep(dev);
            }
            addr2(dev);
            dst.write(dst_base + y * out_w + x, acc);
            loopStep(dev);
        }
    }
    dev.setPart(Part::Control);
}

/** Channel mix: out(p) = sum_c w[c] * in_c(p), register accumulation. */
void
mixStage(Device &dev, const DevSparseVec &mix, NvArray<i16> &src,
         u32 plane, NvArray<i16> &dst)
{
    dev.setPart(Part::Kernel);
    for (u32 p = 0; p < plane; ++p) {
        i16 acc = 0;
        for (u32 t = 0; t < mix.nnz; ++t) {
            const i16 c = mix.idx->read(t);
            const i16 w = mix.val->read(t);
            addr2(dev);
            const i16 s = src.read(static_cast<u32>(c) * plane + p);
            acc = addQ(dev, acc, mulQ(dev, w, s));
            loopStep(dev);
        }
        dst.write(p, acc);
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

/** Broadcast scale: out[oc * plane + p] = s[oc] * in(p), with fused
 * relu. Write-once. */
void
scaleStage(Device &dev, const DevSparseVec &scale, NvArray<i16> &src,
           u32 src_base, u32 plane, NvArray<i16> &dst, bool relu)
{
    dev.setPart(Part::Kernel);
    for (u32 t = 0; t < scale.nnz; ++t) {
        const i16 oc = scale.idx->read(t);
        const i16 w = scale.val->read(t);
        const u32 dst_base = static_cast<u32>(oc) * plane;
        dev.consume(Op::AluMul);
        for (u32 p = 0; p < plane; ++p) {
            const i16 s = src.read(src_base + p);
            i16 v = mulQ(dev, w, s);
            if (relu)
                v = reluQ(dev, v);
            addr1(dev);
            dst.write(dst_base + p, v);
            loopStep(dev);
        }
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

void
factoredConv(Device &dev, DeviceNetwork &net, const DevLayer &layer,
             const DevFactoredConv &op, NvArray<i16> &src,
             NvArray<i16> &dst)
{
    const u32 in_plane = layer.in.h * layer.in.w;
    u32 h = layer.in.h;
    u32 w = layer.in.w;

    // Stage chaining through scratch slices; Base needs no ping-pong.
    NvArray<i16> *cur = &src;
    u32 cur_base = 0;
    if (op.mix.nnz > 0) {
        mixStage(dev, op.mix, *cur, in_plane, net.scratch(2));
        cur = &net.scratch(2);
        cur_base = 0;
    }
    if (op.col.nnz > 0) {
        const u32 kh = layer.in.h - layer.out.h + 1;
        const u32 oh = h - kh + 1;
        conv1d(dev, op.col, *cur, cur_base, w, net.scratch(0), 0, oh, w,
               true);
        cur = &net.scratch(0);
        cur_base = 0;
        h = oh;
    }
    if (op.row.nnz > 0) {
        const u32 kw = layer.in.w - layer.out.w + 1;
        const u32 ow = w - kw + 1;
        conv1d(dev, op.row, *cur, cur_base, w, net.scratch(1), 0, h, ow,
               false);
        cur = &net.scratch(1);
        cur_base = 0;
        w = ow;
    }
    SONIC_ASSERT(h == layer.out.h && w == layer.out.w,
                 "factored conv shape bug");
    scaleStage(dev, op.scale, *cur, cur_base, h * w, dst,
               layer.reluAfter);
}

/** Pruned 2-D conv: per-(oc, position) register accumulation over the
 * channel's tap list; 3-D source addressing per tap. */
void
sparseConv(Device &dev, const DevLayer &layer, const DevSparseConv &op,
           NvArray<i16> &src, NvArray<i16> &dst, bool relu)
{
    const u32 out_plane = layer.out.h * layer.out.w;
    for (u32 oc = 0; oc < layer.out.c; ++oc) {
        dev.setPart(Part::Control);
        const i32 first = op.ocPtr->read(oc);
        const i32 last = op.ocPtr->read(oc + 1);
        dev.setPart(Part::Kernel);
        for (u32 oy = 0; oy < layer.out.h; ++oy) {
            for (u32 ox = 0; ox < layer.out.w; ++ox) {
                i16 acc = 0;
                for (i32 t = first; t < last; ++t) {
                    const u32 ti = static_cast<u32>(t);
                    const i16 off = op.tapOff->read(ti);
                    const i16 w = op.tapW->read(ti);
                    addr2(dev);
                    const u32 si = static_cast<u32>(off)
                        + oy * layer.in.w + ox;
                    const i16 s = src.read(si);
                    acc = addQ(dev, acc, mulQ(dev, w, s));
                    loopStep(dev);
                }
                if (relu)
                    acc = reluQ(dev, acc);
                addr3(dev);
                dst.write(oc * out_plane + oy * layer.out.w + ox, acc);
                loopStep(dev);
            }
        }
    }
    dev.setPart(Part::Control);
}

/** Dense FC, per-output register accumulation (the classic loop). */
void
denseFc(Device &dev, const DevDenseFc &op, NvArray<i16> &src,
        NvArray<i16> &dst, bool relu)
{
    dev.setPart(Part::Kernel);
    for (u32 r = 0; r < op.m; ++r) {
        i16 acc = 0;
        const u32 row_base = r * op.n;
        dev.consume(Op::AluMul);
        for (u32 c = 0; c < op.n; ++c) {
            addr1(dev);
            const i16 w = op.w->read(row_base + c);
            const i16 x = src.read(c);
            acc = addQ(dev, acc, mulQ(dev, w, x));
            loopStep(dev);
        }
        if (relu)
            acc = reluQ(dev, acc);
        dst.write(r, acc);
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

/** Sparse FC, CSC column-major in-place accumulation (matches the
 * traversal order SONIC's sparse undo-logging protects). */
void
sparseFc(Device &dev, const DevSparseFc &op, NvArray<i16> &src,
         NvArray<i16> &dst, bool relu)
{
    dev.setPart(Part::Kernel);
    for (u32 r = 0; r < op.m; ++r) {
        dst.write(r, 0);
        loopStep(dev);
    }
    for (u32 c = 0; c < op.n; ++c) {
        dev.setPart(Part::Control);
        const i32 first = op.colPtr->read(c);
        const i32 last = op.colPtr->read(c + 1);
        dev.setPart(Part::Kernel);
        if (first == last) {
            loopStep(dev);
            continue;
        }
        const i16 x = src.read(c);
        for (i32 t = first; t < last; ++t) {
            const u32 ti = static_cast<u32>(t);
            const i16 r = op.rowIdx->read(ti);
            const i16 w = op.val->read(ti);
            addr1(dev);
            const i16 old = dst.read(static_cast<u32>(r));
            dst.write(static_cast<u32>(r),
                      addQ(dev, old, mulQ(dev, w, x)));
            loopStep(dev);
        }
        loopStep(dev);
    }
    if (relu) {
        for (u32 r = 0; r < op.m; ++r) {
            const i16 v = dst.read(r);
            dst.write(r, reluQ(dev, v));
            loopStep(dev);
        }
    }
    dev.setPart(Part::Control);
}

/** 2x2 max pool, src(out-shape pre-pool) -> dst. */
void
maxPool(Device &dev, const dnn::ActShape &pre, NvArray<i16> &src,
        NvArray<i16> &dst)
{
    dev.setPart(Part::Kernel);
    const u32 oh = pre.h / 2;
    const u32 ow = pre.w / 2;
    for (u32 c = 0; c < pre.c; ++c) {
        for (u32 y = 0; y < oh; ++y) {
            for (u32 x = 0; x < ow; ++x) {
                addr3(dev);
                const u32 base = c * pre.h * pre.w + 2 * y * pre.w
                               + 2 * x;
                i16 m = src.read(base);
                m = maxQ(dev, m, src.read(base + 1));
                m = maxQ(dev, m, src.read(base + pre.w));
                m = maxQ(dev, m, src.read(base + pre.w + 1));
                addr3(dev);
                dst.write(c * oh * ow + y * ow + x, m);
                loopStep(dev);
            }
        }
    }
    dev.setPart(Part::Control);
}

} // namespace

RunResult
runBase(DeviceNetwork &net)
{
    Device &dev = net.dev();
    task::Program program;

    const task::TaskId entry = program.addTask("base.inference", [&](
                                             task::Runtime &rt) {
        Device &d = rt.dev();
        for (u32 li = 0; li < net.layers().size(); ++li) {
            DevLayer &layer = net.layers()[li];
            arch::ScopedLayer attribution(d, layer.statLayer);
            NvArray<i16> &src = net.act(net.inputBufferOf(li));
            NvArray<i16> &conv_dst =
                net.act(1 - net.inputBufferOf(li));

            if (auto *f = std::get_if<DevFactoredConv>(&layer.op)) {
                factoredConv(d, net, layer, *f, src, conv_dst);
            } else if (auto *s = std::get_if<DevSparseConv>(&layer.op)) {
                sparseConv(d, layer, *s, src, conv_dst, layer.reluAfter);
            } else if (auto *fc = std::get_if<DevDenseFc>(&layer.op)) {
                denseFc(d, *fc, src, conv_dst, layer.reluAfter);
            } else if (auto *sfc = std::get_if<DevSparseFc>(&layer.op)) {
                sparseFc(d, *sfc, src, conv_dst, layer.reluAfter);
            }
            if (layer.poolAfter)
                maxPool(d, layer.out, conv_dst, src);
        }
        return task::kDone;
    });

    task::SchedulerConfig config;
    config.transitionStyle = task::TransitionStyle::Light;
    task::Scheduler sched(dev, program, config);
    const auto run = sched.run(entry);

    RunResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    if (run.completed)
        result.logits = net.peekLogits();
    return result;
}

} // namespace sonic::kernels
