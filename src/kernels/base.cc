/**
 * @file
 * The Base implementation: a conventional, efficient inference loop
 * with volatile loop state and register accumulation. It performs no
 * intermittence bookkeeping at all — on continuous power it is the
 * fastest software implementation, and on harvested power it restarts
 * from the beginning at every failure and never terminates (the
 * paper's Fig. 9b).
 *
 * The whole inference runs as a single task; every local below models a
 * register or stack slot that a power failure clears.
 *
 * Host-performance note: the loops below charge the device in bulk —
 * span reads/writes through readRange/writeRange and batched op-class
 * charges through the kernel_util helpers — with cycle/energy/op-count
 * totals and arithmetic evaluation order identical to the per-element
 * formulation, so logits and every Stats figure are unchanged. Base has
 * no crash-recovery semantics (a failure restarts the inference), so
 * the coarser all-or-nothing charge granularity is always safe here.
 */

#include "kernels/runner.hh"

#include <vector>

#include "arch/memory.hh"
#include "kernels/kernel_util.hh"
#include "task/runtime.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

namespace
{

using arch::Device;
using arch::NvArray;
using arch::Op;
using arch::Part;
using dnn::DevDenseFc;
using dnn::DevFactoredConv;
using dnn::DeviceNetwork;
using dnn::DevLayer;
using dnn::DevSparseConv;
using dnn::DevSparseFc;
using dnn::DevSparseVec;

/** Host-side copy of a sparse tap vector (uncharged peeks; the loops
 * below charge the corresponding FRAM loads in bulk where the
 * per-element code performed them). */
struct HostTaps
{
    std::vector<i16> idx;
    std::vector<i16> val;

    explicit HostTaps(const DevSparseVec &taps)
        : idx(taps.nnz), val(taps.nnz)
    {
        for (u32 t = 0; t < taps.nnz; ++t) {
            idx[t] = taps.idx->peek(t);
            val[t] = taps.val->peek(t);
        }
    }
};

/** Shaped 1-D conv: per-output-element register accumulation.
 * vertical applies taps down columns (stride = width), else along rows. */
void
conv1d(Device &dev, const DevSparseVec &taps, NvArray<i16> &src,
       u32 src_base, u32 in_w, NvArray<i16> &dst, u32 dst_base,
       u32 out_h, u32 out_w, bool vertical)
{
    const u32 nnz = taps.nnz;
    const HostTaps host(taps);
    dev.setPart(Part::Kernel);
    for (u32 y = 0; y < out_h; ++y) {
        for (u32 x = 0; x < out_w; ++x) {
            // Per-element charges, paid once for the whole tap loop:
            // 2 tap loads + addr2 + 1 src load + MAC + loop step per tap.
            dev.consume(Op::FramLoad, 2 * nnz);
            addr2(dev, nnz);
            dev.consume(Op::FramLoad, nnz); // gathered src reads
            chargeMacQ(dev, nnz);
            loopStep(dev, nnz);
            i16 acc = 0;
            for (u32 t = 0; t < nnz; ++t) {
                const i16 off = host.idx[t];
                const u32 si = vertical
                    ? (y + static_cast<u32>(off)) * in_w + x
                    : y * in_w + x + static_cast<u32>(off);
                const i16 s = src.peek(src_base + si);
                acc = addQRaw(acc, mulQRaw(host.val[t], s));
            }
            addr2(dev);
            dst.write(dst_base + y * out_w + x, acc);
            loopStep(dev);
        }
    }
    dev.setPart(Part::Control);
}

/** Channel mix: out(p) = sum_c w[c] * in_c(p), register accumulation. */
void
mixStage(Device &dev, const DevSparseVec &mix, NvArray<i16> &src,
         u32 plane, NvArray<i16> &dst)
{
    const u32 nnz = mix.nnz;
    const HostTaps host(mix);
    dev.setPart(Part::Kernel);
    for (u32 p = 0; p < plane; ++p) {
        dev.consume(Op::FramLoad, 2 * nnz);
        addr2(dev, nnz);
        dev.consume(Op::FramLoad, nnz); // channel-strided src reads
        chargeMacQ(dev, nnz);
        loopStep(dev, nnz);
        i16 acc = 0;
        for (u32 t = 0; t < nnz; ++t) {
            const i16 s =
                src.peek(static_cast<u32>(host.idx[t]) * plane + p);
            acc = addQRaw(acc, mulQRaw(host.val[t], s));
        }
        dst.write(p, acc);
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

/** Broadcast scale: out[oc * plane + p] = s[oc] * in(p), with fused
 * relu. Write-once; the whole plane moves as charged spans. */
void
scaleStage(Device &dev, const DevSparseVec &scale, NvArray<i16> &src,
           u32 src_base, u32 plane, NvArray<i16> &dst, bool relu)
{
    std::vector<i16> in(plane);
    std::vector<i16> out(plane);
    dev.setPart(Part::Kernel);
    for (u32 t = 0; t < scale.nnz; ++t) {
        const i16 oc = scale.idx->read(t);
        const i16 w = scale.val->read(t);
        const u32 dst_base = static_cast<u32>(oc) * plane;
        dev.consume(Op::AluMul);
        src.readRange(src_base, plane, in.data());
        chargeMulQ(dev, plane);
        if (relu)
            chargeBranch(dev, plane);
        addr1(dev, plane);
        for (u32 p = 0; p < plane; ++p) {
            i16 v = mulQRaw(w, in[p]);
            if (relu)
                v = reluQRaw(v);
            out[p] = v;
        }
        dst.writeRange(dst_base, plane, out.data());
        loopStep(dev, plane);
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

void
factoredConv(Device &dev, DeviceNetwork &net, const DevLayer &layer,
             const DevFactoredConv &op, NvArray<i16> &src,
             NvArray<i16> &dst)
{
    const u32 in_plane = layer.in.h * layer.in.w;
    u32 h = layer.in.h;
    u32 w = layer.in.w;

    // Stage chaining through scratch slices; Base needs no ping-pong.
    NvArray<i16> *cur = &src;
    u32 cur_base = 0;
    if (op.mix.nnz > 0) {
        mixStage(dev, op.mix, *cur, in_plane, net.scratch(2));
        cur = &net.scratch(2);
        cur_base = 0;
    }
    if (op.col.nnz > 0) {
        const u32 kh = layer.in.h - layer.out.h + 1;
        const u32 oh = h - kh + 1;
        conv1d(dev, op.col, *cur, cur_base, w, net.scratch(0), 0, oh, w,
               true);
        cur = &net.scratch(0);
        cur_base = 0;
        h = oh;
    }
    if (op.row.nnz > 0) {
        const u32 kw = layer.in.w - layer.out.w + 1;
        const u32 ow = w - kw + 1;
        conv1d(dev, op.row, *cur, cur_base, w, net.scratch(1), 0, h, ow,
               false);
        cur = &net.scratch(1);
        cur_base = 0;
        w = ow;
    }
    SONIC_ASSERT(h == layer.out.h && w == layer.out.w,
                 "factored conv shape bug");
    scaleStage(dev, op.scale, *cur, cur_base, h * w, dst,
               layer.reluAfter);
}

/** Pruned 2-D conv: per-(oc, position) register accumulation over the
 * channel's tap list; 3-D source addressing per tap. */
void
sparseConv(Device &dev, const DevLayer &layer, const DevSparseConv &op,
           NvArray<i16> &src, NvArray<i16> &dst, bool relu)
{
    const u32 out_plane = layer.out.h * layer.out.w;
    std::vector<i16> toff;
    std::vector<i16> tw;
    for (u32 oc = 0; oc < layer.out.c; ++oc) {
        dev.setPart(Part::Control);
        const i32 first = op.ocPtr->read(oc);
        const i32 last = op.ocPtr->read(oc + 1);
        const u32 k = static_cast<u32>(last - first);
        toff.resize(k);
        tw.resize(k);
        for (u32 t = 0; t < k; ++t) {
            toff[t] = op.tapOff->peek(static_cast<u32>(first) + t);
            tw[t] = op.tapW->peek(static_cast<u32>(first) + t);
        }
        dev.setPart(Part::Kernel);
        for (u32 oy = 0; oy < layer.out.h; ++oy) {
            for (u32 ox = 0; ox < layer.out.w; ++ox) {
                dev.consume(Op::FramLoad, 2 * k); // tap reads
                addr2(dev, k);
                dev.consume(Op::FramLoad, k); // gathered src reads
                chargeMacQ(dev, k);
                loopStep(dev, k);
                i16 acc = 0;
                for (u32 t = 0; t < k; ++t) {
                    const u32 si = static_cast<u32>(toff[t])
                        + oy * layer.in.w + ox;
                    acc = addQRaw(acc, mulQRaw(tw[t], src.peek(si)));
                }
                if (relu)
                    acc = reluQ(dev, acc);
                addr3(dev);
                dst.write(oc * out_plane + oy * layer.out.w + ox, acc);
                loopStep(dev);
            }
        }
    }
    dev.setPart(Part::Control);
}

/** Dense FC, per-output register accumulation (the classic loop). */
void
denseFc(Device &dev, const DevDenseFc &op, NvArray<i16> &src,
        NvArray<i16> &dst, bool relu)
{
    std::vector<i16> wrow(op.n);
    std::vector<i16> xin(op.n);
    dev.setPart(Part::Kernel);
    for (u32 r = 0; r < op.m; ++r) {
        const u64 row_base = u64{r} * op.n;
        dev.consume(Op::AluMul);
        addr1(dev, op.n);
        op.w->readRange(row_base, op.n, wrow.data());
        src.readRange(0, op.n, xin.data());
        chargeMacQ(dev, op.n);
        loopStep(dev, op.n);
        i16 acc = 0;
        for (u32 c = 0; c < op.n; ++c)
            acc = addQRaw(acc, mulQRaw(wrow[c], xin[c]));
        if (relu)
            acc = reluQ(dev, acc);
        dst.write(r, acc);
        loopStep(dev);
    }
    dev.setPart(Part::Control);
}

/** Sparse FC, CSC column-major in-place accumulation (matches the
 * traversal order SONIC's sparse undo-logging protects). */
void
sparseFc(Device &dev, const DevSparseFc &op, NvArray<i16> &src,
         NvArray<i16> &dst, bool relu)
{
    dev.setPart(Part::Kernel);
    dst.fillRange(0, op.m, 0);
    loopStep(dev, op.m);
    std::vector<i16> rows;
    std::vector<i16> vals;
    for (u32 c = 0; c < op.n; ++c) {
        dev.setPart(Part::Control);
        const i32 first = op.colPtr->read(c);
        const i32 last = op.colPtr->read(c + 1);
        dev.setPart(Part::Kernel);
        if (first == last) {
            loopStep(dev);
            continue;
        }
        const i16 x = src.read(c);
        const u32 k = static_cast<u32>(last - first);
        rows.resize(k);
        vals.resize(k);
        op.rowIdx->readRange(static_cast<u32>(first), k, rows.data());
        op.val->readRange(static_cast<u32>(first), k, vals.data());
        addr1(dev, k);
        chargeMacQ(dev, k);
        loopStep(dev, k);
        // The in-place updates stay per-element: rows are a gather.
        for (u32 t = 0; t < k; ++t) {
            const auto r = static_cast<u32>(rows[t]);
            dev.consume(Op::FramLoad);
            dev.consume(Op::FramStore);
            dst.poke(r, addQRaw(dst.peek(r), mulQRaw(vals[t], x)));
        }
        loopStep(dev);
    }
    if (relu) {
        chargeBranch(dev, op.m);
        dst.accumRange(0, op.m,
                       [](i16 v, u64) { return reluQRaw(v); });
        loopStep(dev, op.m);
    }
    dev.setPart(Part::Control);
}

/** 2x2 max pool, src(out-shape pre-pool) -> dst. */
void
maxPool(Device &dev, const dnn::ActShape &pre, NvArray<i16> &src,
        NvArray<i16> &dst)
{
    dev.setPart(Part::Kernel);
    const u32 oh = pre.h / 2;
    const u32 ow = pre.w / 2;
    std::vector<i16> out(ow);
    for (u32 c = 0; c < pre.c; ++c) {
        for (u32 y = 0; y < oh; ++y) {
            // One output row per span: 4 gathered loads + 3 max
            // branches + 2 addr3 per element, one row-wide store.
            addr3(dev, ow);
            dev.consume(Op::FramLoad, 4 * ow);
            chargeBranch(dev, 3 * ow);
            addr3(dev, ow);
            for (u32 x = 0; x < ow; ++x) {
                const u32 base = c * pre.h * pre.w + 2 * y * pre.w
                               + 2 * x;
                i16 m = src.peek(base);
                m = maxQRaw(m, src.peek(base + 1));
                m = maxQRaw(m, src.peek(base + pre.w));
                m = maxQRaw(m, src.peek(base + pre.w + 1));
                out[x] = m;
            }
            dst.writeRange(c * oh * ow + y * ow, ow, out.data());
            loopStep(dev, ow);
        }
    }
    dev.setPart(Part::Control);
}

} // namespace

RunResult
runBase(DeviceNetwork &net)
{
    Device &dev = net.dev();
    task::Program program;

    const task::TaskId entry = program.addTask("base.inference", [&](
                                             task::Runtime &rt) {
        Device &d = rt.dev();
        for (u32 li = 0; li < net.layers().size(); ++li) {
            DevLayer &layer = net.layers()[li];
            arch::ScopedLayer attribution(d, layer.statLayer);
            NvArray<i16> &src = net.act(net.inputBufferOf(li));
            NvArray<i16> &conv_dst =
                net.act(1 - net.inputBufferOf(li));

            if (auto *f = std::get_if<DevFactoredConv>(&layer.op)) {
                factoredConv(d, net, layer, *f, src, conv_dst);
            } else if (auto *s = std::get_if<DevSparseConv>(&layer.op)) {
                sparseConv(d, layer, *s, src, conv_dst, layer.reluAfter);
            } else if (auto *fc = std::get_if<DevDenseFc>(&layer.op)) {
                denseFc(d, *fc, src, conv_dst, layer.reluAfter);
            } else if (auto *sfc = std::get_if<DevSparseFc>(&layer.op)) {
                sparseFc(d, *sfc, src, conv_dst, layer.reluAfter);
            }
            if (layer.poolAfter)
                maxPool(d, layer.out, conv_dst, src);
        }
        return task::kDone;
    });

    task::SchedulerConfig config;
    config.transitionStyle = task::TransitionStyle::Light;
    task::Scheduler sched(dev, program, config);
    const auto run = sched.run(entry);

    RunResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    if (run.completed)
        result.logits = net.peekLogits();
    return result;
}

} // namespace sonic::kernels
