/**
 * @file
 * Shared micro-helpers for the device kernels: Q7.8 arithmetic with
 * explicit operation charging, and address-arithmetic charge helpers
 * (the MSP430 has a 9-cycle peripheral multiply and no divide unit, so
 * index math is a real cost the implementations pay differently).
 */

#ifndef SONIC_KERNELS_KERNEL_UTIL_HH
#define SONIC_KERNELS_KERNEL_UTIL_HH

#include "arch/device.hh"
#include "fixed/fixed.hh"
#include "util/types.hh"

namespace sonic::kernels
{

using fixed::Q78;

/** Charged Q7.8 multiply. */
inline i16
mulQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::FixedMul);
    return (Q78::fromRaw(a) * Q78::fromRaw(b)).raw();
}

/** Charged Q7.8 add. */
inline i16
addQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::FixedAdd);
    return (Q78::fromRaw(a) + Q78::fromRaw(b)).raw();
}

/** Charged relu. */
inline i16
reluQ(arch::Device &dev, i16 a)
{
    dev.consume(arch::Op::Branch);
    return a > 0 ? a : 0;
}

/** Charged max (pooling). */
inline i16
maxQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::Branch);
    return a >= b ? a : b;
}

/** Charge one loop step (increment + compare/branch). */
inline void
loopStep(arch::Device &dev)
{
    dev.consume(arch::Op::Incr);
    dev.consume(arch::Op::Branch);
}

/** Charge a 1-D address computation (base + offset). */
inline void
addr1(arch::Device &dev)
{
    dev.consume(arch::Op::AluAdd);
}

/** Charge a 2-D address computation (row * width + col + base). */
inline void
addr2(arch::Device &dev)
{
    dev.consume(arch::Op::AluMul);
    dev.consume(arch::Op::AluAdd, 2);
}

/** Charge a 3-D address computation (chan, row, col). */
inline void
addr3(arch::Device &dev)
{
    dev.consume(arch::Op::AluMul, 2);
    dev.consume(arch::Op::AluAdd, 3);
}

/** Charge a software divide + modulo pair (flat-index decomposition). */
inline void
divmod(arch::Device &dev)
{
    dev.consume(arch::Op::AluDiv, 2);
}

/** @name Uncharged Q7.8 math for span-processing loops
 * The bulk-charged kernels pay for n operations in one consume call
 * and then evaluate the arithmetic host-side with these raw helpers —
 * identical values and evaluation order to the per-element charged
 * versions above, so logits stay bit-identical.
 */
/// @{
inline i16
mulQRaw(i16 a, i16 b)
{
    return (Q78::fromRaw(a) * Q78::fromRaw(b)).raw();
}

inline i16
addQRaw(i16 a, i16 b)
{
    return (Q78::fromRaw(a) + Q78::fromRaw(b)).raw();
}

inline i16
reluQRaw(i16 a)
{
    return a > 0 ? a : 0;
}

inline i16
maxQRaw(i16 a, i16 b)
{
    return a >= b ? a : b;
}
/// @}

/**
 * Clamp a span width so one all-or-nothing span always fits well
 * inside the device's energy buffer (a span that can never be paid in
 * one charge cycle would stall forward progress forever — the failure
 * mode a per-element loop cannot have). Uses a conservative worst-case
 * per-word charge for the span-processing loops (two FRAM loads, two
 * FRAM stores, a MAC, addressing and loop ops) and keeps a span under
 * a quarter of the buffer. Unbounded supplies (capacityNj() == 0)
 * allow the full width.
 */
inline u32
safeSpanWords(const arch::Device &dev, u32 max_words)
{
    const f64 capacity = dev.power().capacityNj();
    if (capacity <= 0.0)
        return max_words;
    const arch::EnergyProfile &p = dev.profile();
    const f64 per_word = 2.0 * p.nanojoules(arch::Op::FramLoad)
        + 2.0 * p.nanojoules(arch::Op::FramStore)
        + p.nanojoules(arch::Op::FixedMul)
        + p.nanojoules(arch::Op::FixedAdd)
        + 2.0 * p.nanojoules(arch::Op::Branch)
        + p.nanojoules(arch::Op::AluAdd)
        + p.nanojoules(arch::Op::Incr);
    const f64 words = capacity / (4.0 * per_word);
    if (words <= 1.0)
        return 1;
    if (words >= static_cast<f64>(max_words))
        return max_words;
    return static_cast<u32>(words);
}

/** @name Batched charge helpers
 * Charge n instances of the per-iteration op mix in O(1) consume
 * calls. Totals (counts, cycles, energy) are identical to n calls of
 * the single-op helpers; only the number of power-supply interactions
 * changes.
 */
/// @{

/** n loop steps (increment + compare/branch each). */
inline void
loopStep(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::Incr, n);
    dev.consume(arch::Op::Branch, n);
}

/** n fixed-point multiplies. */
inline void
chargeMulQ(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::FixedMul, n);
}

/** n fixed-point multiply-accumulates. */
inline void
chargeMacQ(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::FixedMul, n);
    dev.consume(arch::Op::FixedAdd, n);
}

/** n relu/max compare-branches. */
inline void
chargeBranch(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::Branch, n);
}

/** n 1-D address computations. */
inline void
addr1(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::AluAdd, n);
}

/** n 2-D address computations. */
inline void
addr2(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::AluMul, n);
    dev.consume(arch::Op::AluAdd, 2 * n);
}

/** n 3-D address computations. */
inline void
addr3(arch::Device &dev, u64 n)
{
    dev.consume(arch::Op::AluMul, 2 * n);
    dev.consume(arch::Op::AluAdd, 3 * n);
}
/// @}

} // namespace sonic::kernels

#endif // SONIC_KERNELS_KERNEL_UTIL_HH
