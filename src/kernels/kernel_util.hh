/**
 * @file
 * Shared micro-helpers for the device kernels: Q7.8 arithmetic with
 * explicit operation charging, and address-arithmetic charge helpers
 * (the MSP430 has a 9-cycle peripheral multiply and no divide unit, so
 * index math is a real cost the implementations pay differently).
 */

#ifndef SONIC_KERNELS_KERNEL_UTIL_HH
#define SONIC_KERNELS_KERNEL_UTIL_HH

#include "arch/device.hh"
#include "fixed/fixed.hh"
#include "util/types.hh"

namespace sonic::kernels
{

using fixed::Q78;

/** Charged Q7.8 multiply. */
inline i16
mulQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::FixedMul);
    return (Q78::fromRaw(a) * Q78::fromRaw(b)).raw();
}

/** Charged Q7.8 add. */
inline i16
addQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::FixedAdd);
    return (Q78::fromRaw(a) + Q78::fromRaw(b)).raw();
}

/** Charged relu. */
inline i16
reluQ(arch::Device &dev, i16 a)
{
    dev.consume(arch::Op::Branch);
    return a > 0 ? a : 0;
}

/** Charged max (pooling). */
inline i16
maxQ(arch::Device &dev, i16 a, i16 b)
{
    dev.consume(arch::Op::Branch);
    return a >= b ? a : b;
}

/** Charge one loop step (increment + compare/branch). */
inline void
loopStep(arch::Device &dev)
{
    dev.consume(arch::Op::Incr);
    dev.consume(arch::Op::Branch);
}

/** Charge a 1-D address computation (base + offset). */
inline void
addr1(arch::Device &dev)
{
    dev.consume(arch::Op::AluAdd);
}

/** Charge a 2-D address computation (row * width + col + base). */
inline void
addr2(arch::Device &dev)
{
    dev.consume(arch::Op::AluMul);
    dev.consume(arch::Op::AluAdd, 2);
}

/** Charge a 3-D address computation (chan, row, col). */
inline void
addr3(arch::Device &dev)
{
    dev.consume(arch::Op::AluMul, 2);
    dev.consume(arch::Op::AluAdd, 3);
}

/** Charge a software divide + modulo pair (flat-index decomposition). */
inline void
divmod(arch::Device &dev)
{
    dev.consume(arch::Op::AluDiv, 2);
}

} // namespace sonic::kernels

#endif // SONIC_KERNELS_KERNEL_UTIL_HH
