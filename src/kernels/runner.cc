#include "kernels/runner.hh"

#include "tails/tails.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

std::string_view
implName(Impl impl)
{
    switch (impl) {
      case Impl::Base: return "Base";
      case Impl::Tile8: return "Tile-8";
      case Impl::Tile32: return "Tile-32";
      case Impl::Tile128: return "Tile-128";
      case Impl::Sonic: return "SONIC";
      case Impl::Tails: return "TAILS";
    }
    return "?";
}

u32
implTileSize(Impl impl)
{
    switch (impl) {
      case Impl::Tile8: return 8;
      case Impl::Tile32: return 32;
      case Impl::Tile128: return 128;
      default: return 0;
    }
}

RunResult
runInference(dnn::DeviceNetwork &net, Impl impl)
{
    switch (impl) {
      case Impl::Base:
        return runBase(net);
      case Impl::Tile8:
      case Impl::Tile32:
      case Impl::Tile128:
        return runTiled(net, implTileSize(impl));
      case Impl::Sonic:
        return runSonic(net);
      case Impl::Tails:
        return tails::runTails(net);
    }
    panic("bad Impl");
}

} // namespace sonic::kernels
