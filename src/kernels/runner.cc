#include "kernels/runner.hh"

#include <deque>
#include <mutex>

#include "tails/tails.hh"
#include "util/logging.hh"

namespace sonic::kernels
{

namespace
{

RunResult
entryBase(dnn::DeviceNetwork &net, u32)
{
    return runBase(net);
}

RunResult
entryTiled(dnn::DeviceNetwork &net, u32 tile)
{
    return runTiled(net, tile);
}

RunResult
entrySonic(dnn::DeviceNetwork &net, u32)
{
    return runSonic(net);
}

RunResult
entryTails(dnn::DeviceNetwork &net, u32)
{
    return tails::runTails(net);
}

} // namespace

/**
 * Rows live in a deque so pointers handed out by find() survive later
 * registrations; the mutex serializes add() against concurrent
 * lookups from Engine worker threads.
 */
struct ImplRegistry::State
{
    mutable std::mutex mutex;
    std::deque<ImplInfo> rows;
};

ImplRegistry::ImplRegistry() : state_(new State)
{
    // The paper's six implementations occupy the named enum ids, in
    // enum order, so dynamic ids start right after Impl::Tails. Base
    // keeps loop state in volatile memory by design (Sec. 8), so it is
    // the one implementation that does not claim crash consistency.
    add("Base", 0, entryBase, /*crashConsistent=*/false);
    add("Tile-8", 8, entryTiled);
    add("Tile-32", 32, entryTiled);
    add("Tile-128", 128, entryTiled);
    add("SONIC", 0, entrySonic);
    add("TAILS", 0, entryTails);
}

ImplRegistry &
ImplRegistry::instance()
{
    static ImplRegistry registry;
    return registry;
}

Impl
ImplRegistry::add(std::string name, u32 tileSize, ImplEntry entry,
                  bool crashConsistent)
{
    SONIC_ASSERT(entry != nullptr, "impl entry must be non-null");
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (const auto &row : state_->rows) {
        SONIC_ASSERT(row.name != name,
                     "duplicate impl registration");
    }
    ImplInfo info;
    info.id = static_cast<Impl>(state_->rows.size());
    info.name = std::move(name);
    info.tileSize = tileSize;
    info.entry = entry;
    info.crashConsistent = crashConsistent;
    state_->rows.push_back(std::move(info));
    return state_->rows.back().id;
}

const ImplInfo *
ImplRegistry::find(Impl id) const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    const auto index = static_cast<u32>(id);
    if (index >= state_->rows.size())
        return nullptr;
    return &state_->rows[index];
}

const ImplInfo *
ImplRegistry::find(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    for (const auto &row : state_->rows)
        if (row.name == name)
            return &row;
    return nullptr;
}

std::vector<Impl>
ImplRegistry::all() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    std::vector<Impl> ids;
    ids.reserve(state_->rows.size());
    for (const auto &row : state_->rows)
        ids.push_back(row.id);
    return ids;
}

u32
ImplRegistry::size() const
{
    std::lock_guard<std::mutex> lock(state_->mutex);
    return static_cast<u32>(state_->rows.size());
}

std::string_view
implName(Impl impl)
{
    const auto *info = ImplRegistry::instance().find(impl);
    return info ? std::string_view(info->name) : std::string_view("?");
}

u32
implTileSize(Impl impl)
{
    const auto *info = ImplRegistry::instance().find(impl);
    return info ? info->tileSize : 0;
}

namespace
{

/** Closes the Infer trace span even when a PowerFailure unwinds out of
 * the kernel (Base aborts mid-run; the caller reboots and retries). */
struct InferSpanGuard
{
    arch::Device &dev;
    u32 arg;

    ~InferSpanGuard()
    {
        if (auto *p = dev.probe())
            p->onSpanEnd(dev, arch::ProbeSpan::Infer, arg,
                         dev.consumedJoules());
    }
};

} // namespace

RunResult
runInference(dnn::DeviceNetwork &net, Impl impl)
{
    const auto *info = ImplRegistry::instance().find(impl);
    SONIC_ASSERT(info != nullptr, "unregistered Impl");
    arch::Device &dev = net.dev();
    if (dev.probe() == nullptr) [[likely]]
        return info->entry(net, info->tileSize);
    dev.probe()->onSpanBegin(dev, arch::ProbeSpan::Infer,
                             static_cast<u32>(impl));
    InferSpanGuard guard{dev, static_cast<u32>(impl)};
    return info->entry(net, info->tileSize);
}

} // namespace sonic::kernels
