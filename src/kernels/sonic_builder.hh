/**
 * @file
 * The SONIC task-graph builder, exposed so the TAILS runtime can derive
 * from it: TAILS overrides the dense compute stages (1-D convs, dense
 * FC, sparse conv) with LEA/DMA-accelerated versions and inherits the
 * software stages LEA cannot help with (sparse FC — no reuse; scale —
 * no scalar multiply; pooling), exactly the split the paper describes.
 */

#ifndef SONIC_KERNELS_SONIC_BUILDER_HH
#define SONIC_KERNELS_SONIC_BUILDER_HH

#include "arch/memory.hh"
#include "dnn/device_net.hh"
#include "kernels/kernel_util.hh"
#include "task/runtime.hh"

namespace sonic::kernels
{

/** The SONIC runtime's non-volatile loop registers (Sec. 6.2). */
struct SonicState
{
    explicit SonicState(arch::Device &dev)
        : tap(dev, "sonic.tap", 0), oc(dev, "sonic.oc", 0),
          y(dev, "sonic.y", 0), x(dev, "sonic.x", 0),
          buf(dev, "sonic.buf", 0), rd(dev, "sonic.rd", 0),
          wr(dev, "sonic.wr", 0), col(dev, "sonic.col", 0),
          saved(dev, "sonic.saved", 0)
    {
    }

    // Loop registers are 16-bit words, as on a real MSP430 (a single
    // FRAM word write each — the cost Sec. 9.4 quantifies).
    arch::NvVar<i16> tap; ///< current filter element / input column
    arch::NvVar<i16> oc;  ///< current output channel (sparse conv)
    arch::NvVar<i16> y;   ///< outer position index
    arch::NvVar<i16> x;   ///< inner position index
    arch::NvVar<i16> buf; ///< which scratch slice is the dest buffer
    arch::NvVar<i16> rd;  ///< sparse undo-log read index
    arch::NvVar<i16> wr;  ///< sparse undo-log write index
    arch::NvVar<i16> col; ///< sparse FC current column
    arch::NvVar<i16> saved; ///< sparse undo-log canonical slot
};

/**
 * Builds the SONIC task graph for a network. Stages are appended in
 * reverse layer order so each knows its successor statically. Virtual
 * stage builders are the TAILS extension points.
 */
class SonicBuilder
{
  public:
    /**
     * Preferred span width for the chunked inner loops (see sonic.cc):
     * spans amortize the power-accounting boundary, and the width is
     * clamped so one atomic span always fits inside the energy buffer
     * (otherwise a small capacitor could never pay for a span and the
     * loop would stop making forward progress).
     */
    static constexpr u32 kMaxSpanWords = 32;

    SonicBuilder(dnn::DeviceNetwork &net, task::Program &program,
                 SonicState &st)
        : net_(net), dev_(net.dev()), prog_(program), st_(st),
          spanWords_(safeSpanWords(net.dev(), kMaxSpanWords))
    {
    }

    virtual ~SonicBuilder() = default;

    /** Build all layers; returns the entry task. */
    task::TaskId build();

  protected:
    task::TaskId buildLayer(u32 li, task::TaskId next);

    /** 1-D conv stage: tap-major, loop-ordered double buffering,
     * result deposited in scratch(2). vertical strides by in_w. */
    virtual task::TaskId buildConv1d(const dnn::DevLayer &layer,
                                     const dnn::DevSparseVec &taps,
                                     arch::NvArray<i16> *src,
                                     u32 src_base, u32 in_w, u32 out_h,
                                     u32 out_w, bool vertical,
                                     task::TaskId next);

    /** Channel mix (ic -> 1), a vertical conv with stride = plane. */
    virtual task::TaskId buildMix(const dnn::DevLayer &layer,
                                  const dnn::DevSparseVec &mix,
                                  arch::NvArray<i16> *src, u32 plane,
                                  task::TaskId next);

    /** Broadcast scale (1 -> oc), write-once, fused relu. */
    virtual task::TaskId buildScale(const dnn::DevLayer &layer,
                                    const dnn::DevSparseVec &scale,
                                    arch::NvArray<i16> *src,
                                    u32 src_base, u32 plane,
                                    arch::NvArray<i16> *dst, bool relu,
                                    task::TaskId next);

    /** Pruned 2-D conv: per-channel tap-major loop-ordered slices. */
    virtual task::TaskId buildSparseConv(const dnn::DevLayer &layer,
                                         const dnn::DevSparseConv &op,
                                         arch::NvArray<i16> *src,
                                         arch::NvArray<i16> *dst,
                                         bool relu, task::TaskId next);

    /** Dense FC: input-major loop-ordered double buffering. */
    virtual task::TaskId buildDenseFc(const dnn::DevLayer &layer,
                                      const dnn::DevDenseFc &op,
                                      arch::NvArray<i16> *src,
                                      arch::NvArray<i16> *dst, bool relu,
                                      task::TaskId next);

    /** Sparse FC: in-place, sparse undo-logging. */
    virtual task::TaskId buildSparseFc(const dnn::DevLayer &layer,
                                       const dnn::DevSparseFc &op,
                                       arch::NvArray<i16> *src,
                                       arch::NvArray<i16> *dst,
                                       bool relu, task::TaskId next);

    /** 2x2 max pool, write-once. */
    virtual task::TaskId buildPool(const dnn::DevLayer &layer,
                                   arch::NvArray<i16> *src,
                                   arch::NvArray<i16> *dst,
                                   task::TaskId next);

    dnn::DeviceNetwork &net_;
    arch::Device &dev_;
    task::Program &prog_;
    SonicState &st_;
    u32 spanWords_;
};

} // namespace sonic::kernels

#endif // SONIC_KERNELS_SONIC_BUILDER_HH
