/**
 * @file
 * The six inference implementations the paper evaluates (Sec. 8
 * "Baselines for comparison"):
 *
 *  - Base:     a standard implementation with volatile loop state and
 *              register accumulation. Fast, but does not tolerate
 *              intermittent operation (never terminates on harvested
 *              power).
 *  - Tile-8/32/128: Alpaca-style task-tiled implementations. All loop
 *              state and written data are task-shared: writes go
 *              through redo-logging, reads through privatization
 *              indirection, and every k iterations pay a full
 *              task-based-runtime transition. Restarting a task
 *              re-derives loop coordinates from the flattened logged
 *              index (divide/modulo in software).
 *  - Sonic:    loop continuation + loop-ordered buffering + sparse
 *              undo-logging (Sec. 6).
 *  - Tails:    SONIC plus LEA/DMA hardware acceleration with one-time
 *              tile calibration (Sec. 7); implemented in src/tails.
 */

#ifndef SONIC_KERNELS_RUNNER_HH
#define SONIC_KERNELS_RUNNER_HH

#include <string_view>
#include <vector>

#include "dnn/device_net.hh"
#include "util/types.hh"

namespace sonic::kernels
{

/** Which inference implementation to run. */
enum class Impl : u8
{
    Base,
    Tile8,
    Tile32,
    Tile128,
    Sonic,
    Tails
};

inline constexpr Impl kAllImpls[] = {Impl::Base, Impl::Tile8, Impl::Tile32,
                                     Impl::Tile128, Impl::Sonic,
                                     Impl::Tails};

std::string_view implName(Impl impl);

/** Tile size of a tiled implementation (0 otherwise). */
u32 implTileSize(Impl impl);

/** Outcome of one inference attempt. */
struct RunResult
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 tasksExecuted = 0;
    std::vector<i16> logits; ///< valid when completed
};

/**
 * Run one inference of the flashed network with the given
 * implementation. The input must already be loaded
 * (DeviceNetwork::loadInput). Statistics accumulate on the device.
 */
RunResult runInference(dnn::DeviceNetwork &net, Impl impl);

/** Individual entry points (used by tests and by runInference). */
RunResult runBase(dnn::DeviceNetwork &net);
RunResult runTiled(dnn::DeviceNetwork &net, u32 tile);
RunResult runSonic(dnn::DeviceNetwork &net);

} // namespace sonic::kernels

#endif // SONIC_KERNELS_RUNNER_HH
