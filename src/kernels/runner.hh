/**
 * @file
 * The inference implementations the paper evaluates (Sec. 8
 * "Baselines for comparison"):
 *
 *  - Base:     a standard implementation with volatile loop state and
 *              register accumulation. Fast, but does not tolerate
 *              intermittent operation (never terminates on harvested
 *              power).
 *  - Tile-8/32/128: Alpaca-style task-tiled implementations. All loop
 *              state and written data are task-shared: writes go
 *              through redo-logging, reads through privatization
 *              indirection, and every k iterations pay a full
 *              task-based-runtime transition. Restarting a task
 *              re-derives loop coordinates from the flattened logged
 *              index (divide/modulo in software).
 *  - Sonic:    loop continuation + loop-ordered buffering + sparse
 *              undo-logging (Sec. 6).
 *  - Tails:    SONIC plus LEA/DMA hardware acceleration with one-time
 *              tile calibration (Sec. 7); implemented in src/tails.
 *
 * Dispatch goes through ImplRegistry, a name -> tile size -> entry
 * point table. The six paper implementations are pre-registered;
 * additional variants (a Tile-64, an accelerated kernel, ...) register
 * at startup via ImplRegistry::add() and become sweepable without any
 * change to this file.
 */

#ifndef SONIC_KERNELS_RUNNER_HH
#define SONIC_KERNELS_RUNNER_HH

#include <string>
#include <string_view>
#include <vector>

#include "dnn/device_net.hh"
#include "util/types.hh"

namespace sonic::kernels
{

/**
 * Identifier of a registered inference implementation. The named
 * values are the paper's six; ids beyond Tails are assigned
 * dynamically by ImplRegistry::add().
 */
enum class Impl : u8
{
    Base,
    Tile8,
    Tile32,
    Tile128,
    Sonic,
    Tails
};

/** The paper's six implementations (the Fig. 9 sweep axis). */
inline constexpr Impl kAllImpls[] = {Impl::Base, Impl::Tile8, Impl::Tile32,
                                     Impl::Tile128, Impl::Sonic,
                                     Impl::Tails};

/** Outcome of one inference attempt. */
struct RunResult
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 tasksExecuted = 0;
    std::vector<i16> logits; ///< valid when completed
    u32 calibTileWords = 0;  ///< TAILS' converged LEA tile (0 if n/a)
};

/**
 * An implementation entry point. The tile argument is the registered
 * tile size (0 for untiled implementations); entries that do not tile
 * ignore it.
 */
using ImplEntry = RunResult (*)(dnn::DeviceNetwork &net, u32 tile);

/** One registry row. */
struct ImplInfo
{
    Impl id = Impl::Base;
    std::string name;  ///< stable display/lookup name ("SONIC")
    u32 tileSize = 0;  ///< task tile in elements (0 = untiled)
    ImplEntry entry = nullptr;

    /**
     * Whether the implementation claims the paper's correctness
     * property — intermittent execution indistinguishable from
     * continuous. The verification oracle (src/verify) holds
     * crash-consistent implementations to logit-equality under
     * adversarial failure schedules; non-consistent ones (Base, which
     * keeps loop state in volatile memory by design) are only held to
     * deterministic replay.
     */
    bool crashConsistent = true;
};

/**
 * The process-wide implementation registry. Thread-safe; rows are
 * stable once added (lookups return pointers that stay valid).
 */
class ImplRegistry
{
  public:
    /** The singleton, with the paper's six implementations loaded. */
    static ImplRegistry &instance();

    /**
     * Register a new implementation under a fresh id. Names must be
     * unique; re-registering an existing name panics.
     */
    Impl add(std::string name, u32 tileSize, ImplEntry entry,
             bool crashConsistent = true);

    /** Lookup by id; nullptr if unknown. */
    const ImplInfo *find(Impl id) const;

    /** Lookup by exact name; nullptr if unknown. */
    const ImplInfo *find(std::string_view name) const;

    /** All registered ids, in registration order. */
    std::vector<Impl> all() const;

    /** Number of registered implementations. */
    u32 size() const;

  private:
    ImplRegistry();

    struct State;
    State *state_;
};

/** Stable implementation name ("?" if unregistered). */
std::string_view implName(Impl impl);

/** Tile size of a tiled implementation (0 otherwise). */
u32 implTileSize(Impl impl);

/**
 * Run one inference of the flashed network with the given
 * implementation (registry dispatch). The input must already be
 * loaded (DeviceNetwork::loadInput). Statistics accumulate on the
 * device.
 */
RunResult runInference(dnn::DeviceNetwork &net, Impl impl);

/** Individual entry points (used by tests and by the registry). */
RunResult runBase(dnn::DeviceNetwork &net);
RunResult runTiled(dnn::DeviceNetwork &net, u32 tile);
RunResult runSonic(dnn::DeviceNetwork &net);

namespace testhooks
{

/**
 * Oracle self-test fault: when true, SONIC's sparse-FC stage skips its
 * sparse undo-logging (phase-1 canonical save) and accumulates naively
 * in place — the classic WAR crash-consistency bug the paper's
 * protocol exists to prevent. A power failure between the in-place
 * store and the loop-continuation index advance then double-applies
 * one tap on re-execution. The verification oracle's own tests flip
 * this to prove a real progress/consistency bug is caught and shrunk;
 * it must never be set outside those tests. Not thread-safe: set it
 * only around single-threaded verification runs.
 */
extern bool sonicDisableUndoLogging;

} // namespace testhooks

} // namespace sonic::kernels

#endif // SONIC_KERNELS_RUNNER_HH
