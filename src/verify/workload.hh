/**
 * @file
 * The oracle's built-in verification workload.
 *
 * Golden digest files (tests/golden/) are committed to git and checked
 * on every CI host, so the workload they digest must be bit-stable
 * across machines and C libraries. The networks in src/dnn draw their
 * weights through libm (Box-Muller gaussians), whose last-ulp behavior
 * is implementation-defined; a weight landing exactly on a Q7.8
 * rounding boundary could flip a digest between hosts. goldenNet()
 * sidesteps the problem: it mirrors the all-layer-kinds shape of the
 * test suite's tiny network but draws every weight and input as a
 * dyadic rational k/256 straight from integer Rng output — exactly
 * representable in both f64 and Q7.8, so flashing quantizes exactly
 * and every simulated value is platform-independent by construction.
 */

#ifndef SONIC_VERIFY_WORKLOAD_HH
#define SONIC_VERIFY_WORKLOAD_HH

#include "dnn/spec.hh"
#include "util/types.hh"

namespace sonic::verify
{

/**
 * Tiny all-layer-kinds network (factored conv with pool, pruned 2-D
 * conv, sparse FC, dense FC; input 1x8x8, 4 classes) with dyadic
 * integer-derived weights. Deterministic for a given seed on every
 * platform.
 */
dnn::NetworkSpec goldenNet(u64 seed = 0x601d);

/** A deterministic Q7.8 input for goldenNet (raw values). */
std::vector<i16> goldenInput(u64 seed = 0x1ca7e);

} // namespace sonic::verify

#endif // SONIC_VERIFY_WORKLOAD_HH
