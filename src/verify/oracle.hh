/**
 * @file
 * The adversarial intermittence oracle.
 *
 * The paper's central claim — intermittent execution is
 * indistinguishable from continuous execution — is a differential
 * property, so the oracle checks it differentially: run a kernel under
 * an adversarial power-failure schedule, compare every observable
 * (completion, logits, reboot accounting, optionally the final FRAM
 * digest) against the continuous-power reference, and when a schedule
 * diverges, shrink it with delta debugging to a minimal failing
 * failure-index set that a human can replay in a unit test.
 *
 * Two execution paths share the same judge:
 *  - a local path (runSchedule / recordCommitTrace over an explicit
 *    workload) used by unit tests, golden-file generation and the CLI's
 *    built-in platform-stable workload (verify/workload.hh);
 *  - an engine path (verifyWithEngine) that fans the schedule batch
 *    across app::Engine's worker pool via the SweepPlan failure-
 *    schedule axis — (kernel x network x schedule) coordinates in
 *    parallel.
 *
 * Implementations registered without the crashConsistent claim (Base)
 * cannot promise logit equality under failures; for them the oracle
 * checks deterministic replay instead: the same schedule twice must
 * produce bit-identical observables including the per-reboot NVM
 * digest chain.
 */

#ifndef SONIC_VERIFY_ORACLE_HH
#define SONIC_VERIFY_ORACLE_HH

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "app/engine.hh"
#include "pipeline/pipeline.hh"
#include "verify/schedule.hh"

namespace sonic::verify
{

/** Everything the judge compares from one schedule run. */
struct Observation
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 fired = 0;       ///< schedule indices that actually failed a draw
    u64 opInstances = 0; ///< total charged op instances
    u64 cycles = 0;      ///< device cycles (local path only)
    std::vector<i16> logits;
    u64 finalNvmDigest = 0;
    std::vector<u64> rebootDigests; ///< FRAM digest at each reboot

    /** @name Pipeline delivery accounting (pipeline runs only). */
    /// @{
    u64 delivered = 0;  ///< 1 iff the result was acknowledged
    u64 txAttempts = 0; ///< completed TX attempts, incl. the acked one
    u64 txRetries = 0;  ///< completed attempts without an ACK
    /// @}
};

/** Runs one schedule and observes it (the oracle's probe). */
using RunScheduleFn = std::function<Observation(const Schedule &)>;

/** A workload the local path can execute without the engine. */
struct LocalWorkload
{
    dnn::NetworkSpec net;
    std::vector<i16> input; ///< raw Q7.8 input activations
    kernels::Impl impl = kernels::Impl::Sonic;
    app::ProfileVariant profile = app::ProfileVariant::Standard;
};

/** Execute one schedule run of a local workload. */
Observation runSchedule(const LocalWorkload &workload,
                        const Schedule &schedule,
                        bool capture_digests = true);

/** A RunScheduleFn over a local workload. */
RunScheduleFn localRunner(const LocalWorkload &workload,
                          bool capture_digests = true);

/**
 * Record the draw coordinates of every two-phase task commit in a
 * continuous run (input to the commit-targeted schedule generator).
 * Returns the commit draw indices; total_draws (if non-null) receives
 * the run's draw-call count — the natural schedule horizon.
 */
std::vector<u64> recordCommitTrace(const LocalWorkload &workload,
                                   u64 *total_draws = nullptr);

/**
 * Run the workload once under a harvesting environment (seeded
 * deployment phase) and record the draw coordinate of every brown-out
 * — where a real capacitor under that power trace actually empties.
 * A non-terminating run still returns the coordinates recorded before
 * the scheduler gave up. Always-on environments are a configuration
 * error (there is nothing to record).
 */
std::vector<u64> recordEnvironmentFailures(const LocalWorkload &workload,
                                           const env::EnvRef &ref,
                                           u64 seed);

/**
 * Realistic adversarial schedules: windows of at most
 * config.maxFailures consecutive brown-out coordinates sliced from a
 * handful of seeded runs under the environment. Each window keeps the
 * oracle's invariant (well below the non-termination threshold, so
 * every verdict is a genuine bug) while placing failures exactly
 * where that deployment's physics puts them — the coordinates the
 * synthetic uniform/bursty/commit-targeted generators can only guess
 * at.
 */
std::vector<Schedule>
environmentSchedules(const LocalWorkload &workload,
                     const env::EnvRef &ref, u32 count,
                     const ScheduleGenConfig &config);

/** @name Pipeline verification (the sense-infer-transmit surface) */
/// @{

/** A full pipeline round as an oracle workload. */
struct PipelineWorkload
{
    LocalWorkload base;
    pipeline::PipelineSpec spec;
    u64 seed = 0x909e57;
    u64 roundIndex = 0;
};

/**
 * Execute one schedule run of a pipeline round: the Observation
 * additionally carries the delivery accounting (delivered /
 * txAttempts / txRetries), which the judge holds exactly equal to the
 * continuous reference — zero lost and zero duplicated deliveries.
 */
Observation runPipelineSchedule(const PipelineWorkload &workload,
                                const Schedule &schedule,
                                bool capture_digests = true);

/** A RunScheduleFn over a pipeline workload. */
RunScheduleFn pipelineRunner(const PipelineWorkload &workload,
                             bool capture_digests = true);

/**
 * Record the draw coordinates of every delivery boundary (result
 * commit, attempt advance, ACK commit) in a continuous pipeline round
 * — the aim points for TX-boundary commit-targeted schedules.
 * total_draws (if non-null) receives the run's draw-call count.
 */
std::vector<u64> recordTxBoundaryTrace(const PipelineWorkload &workload,
                                       u64 *total_draws = nullptr);
/// @} (verifyPipelineLocal is declared below, after OracleReport)

/** Oracle judgment configuration. */
struct OracleOptions
{
    /**
     * Hold the kernel to the paper's property (complete + logits equal
     * to continuous). False selects the deterministic-replay check.
     */
    bool crashConsistent = true;

    /**
     * Additionally require the final FRAM digest to equal the
     * continuous reference's. Sound for kernels whose recovery
     * re-writes identical values everywhere (SONIC, Tile-k); not for
     * TAILS, whose calibrated LEA tile is legitimately a function of
     * the power system.
     */
    bool checkFinalNvmDigest = false;

    /**
     * Hold the delivery accounting (delivered / txAttempts /
     * txRetries) exactly equal to the continuous reference — the
     * no-lost-no-duplicated-deliveries property of pipeline runs.
     */
    bool checkDelivery = false;

    bool shrink = true;       ///< ddmin-shrink every divergent schedule
    u32 maxShrinkRuns = 256;  ///< probe budget per shrink
};

/** One schedule the kernel failed, plus its shrunk counterexample. */
struct Divergence
{
    Schedule schedule;
    Schedule shrunk; ///< minimal failing subset (== schedule if unshrunk)
    std::string reason;
    Observation observed; ///< observation of the shrunk schedule
    /** .sonictrace of the shrunk schedule's re-execution, written next
     * to the --artifact JSON (empty when no trace was dumped). */
    std::string tracePath;
};

/** Outcome of an oracle battery. */
struct OracleReport
{
    std::string impl;
    std::string workload;
    u64 schedulesRun = 0;
    u64 totalFired = 0;
    u64 totalReboots = 0;
    std::vector<Divergence> divergences;

    bool ok() const { return divergences.empty(); }
};

/**
 * Verify one pipeline x kernel coordinate on the local path with the
 * mixed battery (uniform / bursty / TX-boundary-targeted) plus
 * delivery-accounting judgment. crashConsistent and the final-digest
 * rule come from the implementation registry, as for kernels.
 */
OracleReport verifyPipelineLocal(const PipelineWorkload &workload,
                                 u32 schedules, u64 seed,
                                 u32 max_failures = 8);

/**
 * The oracle proper: judges observations against the continuous
 * reference and shrinks divergent schedules.
 */
class Oracle
{
  public:
    Oracle(RunScheduleFn run, OracleOptions options = {});

    /** The continuous-power reference (runs the empty schedule once). */
    const Observation &reference();

    /**
     * Judge one observation; nullopt means consistent. The empty
     * schedule is judged trivially consistent (it is the reference).
     */
    std::optional<std::string> judge(const Schedule &schedule,
                                     const Observation &observed);

    /** Run and judge a batch sequentially, shrinking divergences. */
    OracleReport verify(const std::vector<Schedule> &schedules);

    /**
     * Judge pre-computed observations (the engine path runs them in
     * parallel first), shrinking divergences via the probe function.
     */
    OracleReport judgeBatch(const std::vector<Schedule> &schedules,
                            const std::vector<Observation> &observed);

    /**
     * Delta-debug a failing schedule to a minimal failing subset:
     * every index can be removed only at the cost of the divergence
     * disappearing (1-minimality, up to the probe budget).
     */
    Schedule shrink(const Schedule &schedule);

  private:
    /** Deterministic-replay judgment for non-crash-consistent impls. */
    std::optional<std::string>
    judgeReplay(const Observation &first, const Observation &second);

    OracleReport report(const std::vector<Schedule> &schedules,
                        const std::vector<Observation> &observed);

    RunScheduleFn run_;
    OracleOptions options_;
    bool haveReference_ = false;
    Observation reference_;
};

/** Engine-path configuration. */
struct EngineOracleConfig
{
    dnn::NetRef net = "HAR"; ///< any registered zoo model
    kernels::Impl impl = kernels::Impl::Sonic;
    u32 schedules = 200;
    u64 seed = 1;
    u32 maxFailures = 8;
    bool shrink = true;

    /**
     * When non-empty, fuzz with realistic schedules recorded under
     * this registered environment (environmentSchedules) instead of
     * the synthetic mixed battery. The capacitor override of the
     * EnvRef applies; the environment must be intermittent.
     */
    env::EnvRef environment;
};

/**
 * Verify one (kernel, network) coordinate against `schedules` mixed
 * adversarial schedules, fanned across the engine's worker pool via
 * the SweepPlan failure-schedule axis. crashConsistent is taken from
 * the implementation registry.
 */
OracleReport verifyWithEngine(app::Engine &engine,
                              const EngineOracleConfig &config);

/** JSON rendering of a report (the CI failure-shrink artifact). */
std::string reportJson(const OracleReport &report);

/** @name Divergence trace dumps */
/// @{

/**
 * Re-execute one schedule of a local workload with a trace recorder
 * attached and write the event trace as a .sonictrace file: every
 * reboot, lease, task commit, and layer switch of the minimal failing
 * run, ready for `sonic_trace --export=chrome`. The traced run is the
 * exact runSchedule execution (the probe adds no charged operations).
 */
bool dumpScheduleTrace(const LocalWorkload &workload,
                       const Schedule &schedule,
                       const std::string &path, std::string *error);

/** Pipeline-round analogue of dumpScheduleTrace. */
bool dumpPipelineScheduleTrace(const PipelineWorkload &workload,
                               const Schedule &schedule,
                               const std::string &path,
                               std::string *error);
/// @}

/** @name Golden digest files */
/// @{

struct GoldenConfig
{
    u64 netSeed = 0x601d;       ///< goldenNet weight seed
    u64 scheduleSeed = 0xd16e57; ///< fixed-schedule seed
    u32 schedulesPerImpl = 3;
    u32 maxFailures = 6;
};

/**
 * Render the golden digest report for every registered implementation
 * on the platform-stable golden workload: continuous logits, cycle and
 * op-instance totals, the final FRAM digest, per-layer op digests, and
 * for crash-consistent kernels the full per-reboot digest chain of a
 * fixed set of seeded schedules. Byte-stable across hosts, so
 * verification is an exact string comparison against the committed
 * file (tests/golden/) — any intermittent-semantics regression is one
 * diff away.
 */
std::string goldenJson(const GoldenConfig &config = {});
/// @}

} // namespace sonic::verify

#endif // SONIC_VERIFY_ORACLE_HH
