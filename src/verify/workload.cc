#include "verify/workload.hh"

#include "tensor/sparse.hh"
#include "util/rng.hh"

namespace sonic::verify
{

namespace
{

/**
 * Dyadic rational in [-1, 1) with step 1/256 — the Q7.8 grid — from
 * pure integer Rng output. No libm touches the value, so it is
 * bit-identical on every host and quantizes exactly at flash time.
 */
f64
dyadic(Rng &rng)
{
    const i64 raw = static_cast<i64>(rng.next() % 512) - 256;
    return static_cast<f64>(raw) / 256.0;
}

/** Like dyadic(), but never zero (stage taps must survive pruning). */
f64
dyadicNonZero(Rng &rng)
{
    for (;;) {
        const f64 v = dyadic(rng);
        if (v != 0.0)
            return v;
    }
}

/** Deterministic keep/drop pattern: keep ~keep_pct% of indices. */
bool
keepIndex(u64 i, u32 keep_pct)
{
    return (i * 2654435761ull + 12345) % 100 < keep_pct;
}

} // namespace

dnn::NetworkSpec
goldenNet(u64 seed)
{
    Rng rng(seed);
    dnn::NetworkSpec net;
    net.name = "golden";
    net.input = {1, 8, 8};
    net.numClasses = 4;

    // Factored conv: col(3) x row(3) -> 2 channels, relu, pool.
    dnn::FactoredConvLayer f;
    for (u32 i = 0; i < 3; ++i)
        f.col.push_back(dyadicNonZero(rng));
    for (u32 i = 0; i < 3; ++i)
        f.row.push_back(dyadicNonZero(rng));
    for (u32 i = 0; i < 2; ++i)
        f.scale.push_back(dyadicNonZero(rng));
    net.layers.push_back({"conv1", std::move(f), true, true});
    // Now 2 x 3 x 3.

    // Pruned 2-D conv: 3 x 2 x 2 x 2, roughly half the taps kept by a
    // fixed index pattern (no sort/nth_element tie-breaking involved).
    tensor::FilterBank bank(3, 2, 2, 2);
    for (u64 i = 0; i < bank.data.size(); ++i)
        bank.data[i] = keepIndex(i, 50) ? dyadicNonZero(rng) : 0.0;
    net.layers.push_back({"conv2", dnn::SparseConvLayer{bank}, true,
                          false});
    // Now 3 x 2 x 2 = 12.

    // Sparse FC 6 x 12 (~40% kept), relu.
    tensor::Matrix sfc(6, 12);
    for (u32 r = 0; r < 6; ++r)
        for (u32 c = 0; c < 12; ++c)
            sfc.at(r, c) = keepIndex(u64{r} * 12 + c + 17, 40)
                ? dyadicNonZero(rng)
                : 0.0;
    net.layers.push_back({"fc", dnn::SparseFcLayer{sfc}, true, false});

    // Dense FC 4 x 6. Named distinctly from the sparse FC so stats
    // rows and golden layer digests are unambiguous by name.
    tensor::Matrix dfc(4, 6);
    for (u32 r = 0; r < 4; ++r)
        for (u32 c = 0; c < 6; ++c)
            dfc.at(r, c) = dyadic(rng);
    net.layers.push_back({"out", dnn::DenseFcLayer{dfc}, false, false});
    return net;
}

std::vector<i16>
goldenInput(u64 seed)
{
    Rng rng(seed);
    std::vector<i16> input;
    input.reserve(64);
    for (u32 i = 0; i < 64; ++i) {
        // Raw Q7.8 in [-256, 255]: |x| <= 1.0 on the Q7.8 grid.
        input.push_back(
            static_cast<i16>(static_cast<i64>(rng.next() % 512) - 256));
    }
    return input;
}

} // namespace sonic::verify
