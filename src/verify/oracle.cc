#include "verify/oracle.hh"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "dnn/device_net.hh"
#include "kernels/runner.hh"
#include "task/runtime.hh"
#include "trace/trace.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "verify/workload.hh"

namespace sonic::verify
{

namespace
{

u64
sumOpInstances(const arch::Device &dev)
{
    u64 total = 0;
    for (u32 o = 0; o < arch::kNumOps; ++o)
        total += dev.stats().opCount(static_cast<arch::Op>(o));
    return total;
}

Observation
toObservation(const app::ExperimentResult &result)
{
    Observation o;
    o.completed = result.completed;
    o.nonTerminating = result.nonTerminating;
    o.reboots = result.reboots;
    o.fired = result.scheduleFired;
    o.opInstances = result.opInstances;
    o.logits = result.logits;
    o.finalNvmDigest = result.finalNvmDigest;
    o.rebootDigests = result.rebootDigests;
    return o;
}

/** Records the draw index of every two-phase commit on this thread. */
struct TraceRecorder : task::CommitObserver
{
    std::vector<u64> commits;

    void
    onCommit(arch::Device &dev, task::TaskId) override
    {
        // dev.power() settles the open lease first, so drawsSoFar is
        // the exact draw-call cursor in either accounting mode.
        commits.push_back(
            static_cast<arch::SchedulePower &>(dev.power())
                .drawsSoFar());
    }
};

/** RAII install/restore of the thread commit observer. */
struct ObserverGuard
{
    explicit ObserverGuard(task::CommitObserver *observer)
        : previous_(task::setThreadCommitObserver(observer))
    {
    }

    ~ObserverGuard() { task::setThreadCommitObserver(previous_); }

    ObserverGuard(const ObserverGuard &) = delete;
    ObserverGuard &operator=(const ObserverGuard &) = delete;

  private:
    task::CommitObserver *previous_;
};

std::string
hex64(u64 v)
{
    std::ostringstream os;
    os << "0x" << std::hex << std::setw(16) << std::setfill('0') << v;
    return os.str();
}

void
appendIndexArray(std::ostringstream &os, const std::vector<u64> &values)
{
    os << "[";
    for (u64 i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << values[i];
    os << "]";
}

void
appendDigestArray(std::ostringstream &os, const std::vector<u64> &values)
{
    os << "[";
    for (u64 i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << "\"" << hex64(values[i]) << "\"";
    os << "]";
}

void
appendLogitArray(std::ostringstream &os, const std::vector<i16> &values)
{
    os << "[";
    for (u64 i = 0; i < values.size(); ++i)
        os << (i ? ", " : "") << values[i];
    os << "]";
}

} // namespace

Observation
runSchedule(const LocalWorkload &workload, const Schedule &schedule,
            bool capture_digests)
{
    arch::Device dev(app::makeProfile(workload.profile),
                     std::make_unique<arch::SchedulePower>(schedule));
    Observation o;
    if (capture_digests) {
        dev.setRebootHook([&o](arch::Device &d, u64) {
            o.rebootDigests.push_back(d.nvmDigest());
        });
    }
    dnn::DeviceNetwork net(dev, workload.net);
    net.loadInput(workload.input);
    const auto run = kernels::runInference(net, workload.impl);
    o.completed = run.completed;
    o.nonTerminating = run.nonTerminating;
    o.reboots = run.reboots;
    o.logits = run.logits;
    o.cycles = dev.cycles();
    o.opInstances = sumOpInstances(dev);
    o.fired = static_cast<const arch::SchedulePower &>(dev.power())
                  .firedCount();
    if (capture_digests)
        o.finalNvmDigest = dev.nvmDigest();
    return o;
}

RunScheduleFn
localRunner(const LocalWorkload &workload, bool capture_digests)
{
    return [workload, capture_digests](const Schedule &schedule) {
        return runSchedule(workload, schedule, capture_digests);
    };
}

std::vector<u64>
recordCommitTrace(const LocalWorkload &workload, u64 *total_draws)
{
    arch::Device dev(app::makeProfile(workload.profile),
                     std::make_unique<arch::SchedulePower>(Schedule{}));
    dnn::DeviceNetwork net(dev, workload.net);
    net.loadInput(workload.input);
    TraceRecorder recorder;
    ObserverGuard guard(&recorder);
    const auto run = kernels::runInference(net, workload.impl);
    SONIC_ASSERT(run.completed,
                 "commit-trace reference run must complete");
    if (total_draws != nullptr) {
        *total_draws =
            static_cast<const arch::SchedulePower &>(dev.power())
                .drawsSoFar();
    }
    return std::move(recorder.commits);
}

// --- Pipeline path --------------------------------------------------

namespace
{

/** Records the draw index of every delivery boundary on this thread. */
struct TxBoundaryRecorder : pipeline::TxBoundaryObserver
{
    std::vector<u64> boundaries;

    void
    onBoundary(arch::Device &dev, pipeline::TxBoundary) override
    {
        boundaries.push_back(
            static_cast<arch::SchedulePower &>(dev.power())
                .drawsSoFar());
    }
};

/** RAII install/restore of the thread TX-boundary observer. */
struct TxObserverGuard
{
    explicit TxObserverGuard(pipeline::TxBoundaryObserver *observer)
        : previous_(pipeline::setThreadTxBoundaryObserver(observer))
    {
    }

    ~TxObserverGuard()
    {
        pipeline::setThreadTxBoundaryObserver(previous_);
    }

    TxObserverGuard(const TxObserverGuard &) = delete;
    TxObserverGuard &operator=(const TxObserverGuard &) = delete;

  private:
    pipeline::TxBoundaryObserver *previous_;
};

} // namespace

Observation
runPipelineSchedule(const PipelineWorkload &workload,
                    const Schedule &schedule, bool capture_digests)
{
    arch::Device dev(app::makeProfile(workload.base.profile),
                     std::make_unique<arch::SchedulePower>(schedule));
    Observation o;
    if (capture_digests) {
        dev.setRebootHook([&o](arch::Device &d, u64) {
            o.rebootDigests.push_back(d.nvmDigest());
        });
    }
    dnn::DeviceNetwork net(dev, workload.base.net);
    const auto round = pipeline::runRound(
        net, workload.base.impl, workload.base.input, workload.spec,
        workload.seed, workload.roundIndex);
    o.completed = round.completed;
    o.nonTerminating = round.nonTerminating;
    o.reboots = round.reboots;
    o.logits = round.logits;
    o.delivered = round.delivered ? 1 : 0;
    o.txAttempts = round.txAttempts;
    o.txRetries = round.txFailedAttempts;
    o.cycles = dev.cycles();
    o.opInstances = sumOpInstances(dev);
    o.fired = static_cast<const arch::SchedulePower &>(dev.power())
                  .firedCount();
    if (capture_digests)
        o.finalNvmDigest = dev.nvmDigest();
    return o;
}

RunScheduleFn
pipelineRunner(const PipelineWorkload &workload, bool capture_digests)
{
    return [workload, capture_digests](const Schedule &schedule) {
        return runPipelineSchedule(workload, schedule,
                                   capture_digests);
    };
}

std::vector<u64>
recordTxBoundaryTrace(const PipelineWorkload &workload,
                      u64 *total_draws)
{
    arch::Device dev(app::makeProfile(workload.base.profile),
                     std::make_unique<arch::SchedulePower>(Schedule{}));
    dnn::DeviceNetwork net(dev, workload.base.net);
    TxBoundaryRecorder recorder;
    TxObserverGuard guard(&recorder);
    const auto round = pipeline::runRound(
        net, workload.base.impl, workload.base.input, workload.spec,
        workload.seed, workload.roundIndex);
    SONIC_ASSERT(round.completed,
                 "TX-boundary reference round must complete");
    if (total_draws != nullptr) {
        *total_draws =
            static_cast<const arch::SchedulePower &>(dev.power())
                .drawsSoFar();
    }
    return std::move(recorder.boundaries);
}

OracleReport
verifyPipelineLocal(const PipelineWorkload &workload, u32 schedules,
                    u64 seed, u32 max_failures)
{
    const auto *info =
        kernels::ImplRegistry::instance().find(workload.base.impl);
    SONIC_ASSERT(info != nullptr, "unregistered Impl");

    ScheduleGenConfig gen;
    gen.seed = seed;
    gen.maxFailures = max_failures;
    const auto boundaries =
        recordTxBoundaryTrace(workload, &gen.opHorizon);
    const auto battery =
        mixedSchedules(schedules, boundaries, gen);

    OracleOptions options;
    options.crashConsistent = info->crashConsistent;
    options.checkFinalNvmDigest =
        info->crashConsistent
        && workload.base.impl != kernels::Impl::Tails;
    options.checkDelivery = true;
    Oracle oracle(pipelineRunner(workload), options);
    OracleReport rep = oracle.verify(battery);
    rep.impl = info->name;
    rep.workload = "pipeline:" + workload.spec.name;
    return rep;
}

std::vector<u64>
recordEnvironmentFailures(const LocalWorkload &workload,
                          const env::EnvRef &ref, u64 seed)
{
    auto &registry = env::EnvRegistry::instance();
    const auto *meta = registry.meta(ref.env);
    if (meta == nullptr)
        fatal("unknown environment '", ref.env,
              "'; registered environments: ", registry.availableList());
    if (meta->alwaysOn)
        fatal("environment '", ref.env,
              "' never fails — nothing to record for the oracle");

    auto psu = registry.make(ref, seed);
    auto *harvest = dynamic_cast<env::HarvestSupply *>(psu.get());
    SONIC_ASSERT(harvest != nullptr,
                 "intermittent environments build HarvestSupply");
    harvest->setRecordFailures(true);

    arch::Device dev(app::makeProfile(workload.profile),
                     std::move(psu));
    dnn::DeviceNetwork net(dev, workload.net);
    net.loadInput(workload.input);
    (void)kernels::runInference(net, workload.impl);
    dev.power(); // settle the open lease so the cursor is booked
    return harvest->failureIndices();
}

std::vector<Schedule>
environmentSchedules(const LocalWorkload &workload,
                     const env::EnvRef &ref, u32 count,
                     const ScheduleGenConfig &config)
{
    if (count == 0)
        return {};
    // A few seeded deployments (distinct phases in the environment
    // cycle) supply the raw brown-out traces; every schedule is a
    // window of consecutive coordinates from one of them, clamped to
    // maxFailures so non-termination verdicts stay genuine.
    // The environment identity folds into the seeds: capacitor size
    // sets where brown-outs land (charge is spent op-by-op, income
    // arrives only while recharging), and the name desynchronizes the
    // window sampling between environments sharing a capacitor.
    u64 env_bits = 0;
    static_assert(sizeof env_bits == sizeof ref.capacitanceFarads);
    std::memcpy(&env_bits, &ref.capacitanceFarads, sizeof env_bits);
    const u64 env_seed =
        mix64(config.seed ^ fnv1a(ref.env) ^ env_bits);

    const u32 runs = std::min<u32>(count, 8);
    std::vector<std::vector<u64>> recorded;
    recorded.reserve(runs);
    u64 total_recorded = 0;
    for (u32 r = 0; r < runs; ++r) {
        recorded.push_back(recordEnvironmentFailures(
            workload, ref, mix64(env_seed ^ (0xe2f + r))));
        total_recorded += recorded.back().size();
    }
    // All phases failure-free would make every schedule empty and the
    // whole fuzz pass vacuously — that is a configuration error, not
    // a verification result.
    if (total_recorded == 0)
        fatal("environment '", ref.label(), "' never browned out in ",
              runs, " sampled deployment phases — the fuzz would ",
              "inject nothing; use a smaller capacitor override ",
              "(e.g. '", ref.env, "@20uF')");

    Rng rng(env_seed ^ 0xe2f5eed);
    const u32 max_failures = std::max<u32>(config.maxFailures, 1);
    std::vector<Schedule> schedules;
    schedules.reserve(count);
    for (u32 i = 0; i < count; ++i) {
        const auto &trace = recorded[i % runs];
        if (trace.empty()) {
            // The capacitor never emptied under this phase: the
            // environment behaves continuously, nothing to inject.
            schedules.push_back({});
            continue;
        }
        const u64 len =
            1 + rng.below(std::min<u64>(max_failures, trace.size()));
        const u64 start = rng.below(trace.size() - len + 1);
        schedules.emplace_back(trace.begin() + start,
                               trace.begin() + start + len);
    }
    return schedules;
}

// --- Oracle ---------------------------------------------------------

Oracle::Oracle(RunScheduleFn run, OracleOptions options)
    : run_(std::move(run)), options_(options)
{
}

const Observation &
Oracle::reference()
{
    if (!haveReference_) {
        reference_ = run_({});
        SONIC_ASSERT(reference_.completed,
                     "continuous reference run must complete");
        haveReference_ = true;
    }
    return reference_;
}

std::optional<std::string>
Oracle::judge(const Schedule &schedule, const Observation &observed)
{
    if (schedule.empty())
        return std::nullopt;
    const Observation &ref = reference();
    if (observed.nonTerminating) {
        return "declared non-terminating (schedules carry at most "
               "40 failures, far below the no-progress threshold, so "
               "this is a genuine progress bug)";
    }
    if (!observed.completed)
        return "did not complete";
    if (observed.reboots != observed.fired) {
        return "reboot accounting diverges: "
            + std::to_string(observed.reboots) + " reboots for "
            + std::to_string(observed.fired) + " fired failures";
    }
    if (!observed.rebootDigests.empty()
        && observed.rebootDigests.size() != observed.reboots) {
        return "NVM snapshot chain has "
            + std::to_string(observed.rebootDigests.size())
            + " links for " + std::to_string(observed.reboots)
            + " reboots";
    }
    if (observed.logits != ref.logits)
        return "logits diverge from the continuous reference";
    if (options_.checkDelivery) {
        if (observed.delivered != ref.delivered) {
            return observed.delivered < ref.delivered
                ? "delivery accounting diverges: result lost "
                  "(continuous reference delivered it)"
                : "delivery accounting diverges: result duplicated "
                  "(delivered more than the continuous reference)";
        }
        if (observed.txAttempts != ref.txAttempts
            || observed.txRetries != ref.txRetries) {
            return "TX attempt accounting diverges: "
                + std::to_string(observed.txAttempts) + " attempts / "
                + std::to_string(observed.txRetries)
                + " retries vs continuous "
                + std::to_string(ref.txAttempts) + " / "
                + std::to_string(ref.txRetries);
        }
    }
    if (options_.checkFinalNvmDigest && observed.finalNvmDigest != 0
        && ref.finalNvmDigest != 0
        && observed.finalNvmDigest != ref.finalNvmDigest)
        return "final NVM digest diverges from the continuous "
               "reference";
    return std::nullopt;
}

std::optional<std::string>
Oracle::judgeReplay(const Observation &first, const Observation &second)
{
    if (first.completed != second.completed
        || first.nonTerminating != second.nonTerminating)
        return "replay diverges: outcome";
    if (first.reboots != second.reboots
        || first.fired != second.fired)
        return "replay diverges: reboot/failure accounting";
    if (first.opInstances != second.opInstances
        || first.cycles != second.cycles)
        return "replay diverges: op/cycle totals";
    if (first.logits != second.logits)
        return "replay diverges: logits";
    if (first.delivered != second.delivered
        || first.txAttempts != second.txAttempts
        || first.txRetries != second.txRetries)
        return "replay diverges: delivery accounting";
    if (first.finalNvmDigest != second.finalNvmDigest
        || first.rebootDigests != second.rebootDigests)
        return "replay diverges: NVM digest chain";
    return std::nullopt;
}

Schedule
Oracle::shrink(const Schedule &schedule)
{
    u32 runs = 0;
    auto still_fails = [&](const Schedule &candidate) -> bool {
        if (candidate.empty() || runs >= options_.maxShrinkRuns)
            return false; // budget exhausted: keep the last known bad
        ++runs;
        const Observation o = run_(candidate);
        if (!options_.crashConsistent) {
            if (runs >= options_.maxShrinkRuns)
                return false;
            ++runs;
            const Observation o2 = run_(candidate);
            return judgeReplay(o, o2).has_value();
        }
        return judge(candidate, o).has_value();
    };

    // Classic ddmin over the failure-index list: try dropping whole
    // complements, refining granularity until 1-minimal.
    Schedule current = schedule;
    u64 granularity = 2;
    while (current.size() >= 2) {
        const u64 chunk =
            (current.size() + granularity - 1) / granularity;
        bool reduced = false;
        for (u64 start = 0; start < current.size(); start += chunk) {
            Schedule candidate;
            candidate.reserve(current.size());
            for (u64 i = 0; i < current.size(); ++i)
                if (i < start || i >= start + chunk)
                    candidate.push_back(current[i]);
            if (!candidate.empty() && still_fails(candidate)) {
                current = std::move(candidate);
                granularity = std::max<u64>(granularity - 1, 2);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (granularity >= current.size())
                break;
            granularity = std::min<u64>(granularity * 2,
                                        current.size());
        }
    }
    return current;
}

OracleReport
Oracle::verify(const std::vector<Schedule> &schedules)
{
    std::vector<Observation> observed;
    observed.reserve(schedules.size());
    for (const auto &schedule : schedules)
        observed.push_back(run_(schedule));
    return report(schedules, observed);
}

OracleReport
Oracle::judgeBatch(const std::vector<Schedule> &schedules,
                   const std::vector<Observation> &observed)
{
    SONIC_ASSERT(schedules.size() == observed.size(),
                 "schedule/observation count mismatch");
    return report(schedules, observed);
}

OracleReport
Oracle::report(const std::vector<Schedule> &schedules,
               const std::vector<Observation> &observed)
{
    OracleReport rep;
    rep.schedulesRun = schedules.size();
    for (u64 i = 0; i < schedules.size(); ++i) {
        const Schedule &schedule = schedules[i];
        const Observation &o = observed[i];
        rep.totalFired += o.fired;
        rep.totalReboots += o.reboots;

        std::optional<std::string> verdict;
        if (options_.crashConsistent) {
            verdict = judge(schedule, o);
        } else if (!schedule.empty()) {
            const Observation replay = run_(schedule);
            verdict = judgeReplay(o, replay);
            // Even without crash consistency, delivery accounting is
            // downstream of completion and a pure function of (seed,
            // round, attempt) — it must match the continuous
            // reference exactly for every kernel.
            if (!verdict && options_.checkDelivery) {
                const Observation &ref = reference();
                if (o.delivered != ref.delivered
                    || o.txAttempts != ref.txAttempts
                    || o.txRetries != ref.txRetries)
                    verdict = "delivery accounting diverges from the "
                              "continuous reference";
            }
        }
        if (!verdict)
            continue;

        Divergence d;
        d.schedule = schedule;
        d.reason = *verdict;
        d.shrunk = options_.shrink ? shrink(schedule) : schedule;
        d.observed = run_(d.shrunk);
        rep.divergences.push_back(std::move(d));
    }
    return rep;
}

// --- Engine path ----------------------------------------------------

OracleReport
verifyWithEngine(app::Engine &engine, const EngineOracleConfig &config)
{
    const auto *info =
        kernels::ImplRegistry::instance().find(config.impl);
    SONIC_ASSERT(info != nullptr, "unregistered Impl");

    app::RunSpec base;
    base.net = config.net;
    base.impl = config.impl;
    base.power = app::PowerKind::Continuous;
    base.captureNvmDigests = true;

    RunScheduleFn probe = [&engine, base](const Schedule &schedule) {
        app::RunSpec spec = base;
        spec.failureSchedule = schedule;
        return toObservation(engine.runOne(spec));
    };

    OracleOptions options;
    options.crashConsistent = info->crashConsistent;
    // The final FRAM image is part of the property for the purely
    // software kernels; TAILS' calibration registers legitimately
    // depend on where failures land.
    options.checkFinalNvmDigest =
        info->crashConsistent && config.impl != kernels::Impl::Tails;
    options.shrink = config.shrink;
    Oracle oracle(std::move(probe), options);

    // Commit trace and draw horizon from a continuous run over the
    // engine's cached workload, on this thread.
    LocalWorkload workload;
    workload.net = engine.compressed(config.net);
    const auto &data = engine.dataset(config.net);
    workload.input =
        dnn::DeviceNetwork::quantizeInput(data[0].input);
    workload.impl = config.impl;

    ScheduleGenConfig gen;
    gen.seed = config.seed;
    gen.maxFailures = config.maxFailures;
    // An environment swaps the synthetic battery for schedules sliced
    // from where that deployment's capacitor actually browns out; the
    // commit-trace run (a full instrumented inference) only pays off
    // for the synthetic generators that consume it.
    std::vector<Schedule> schedules;
    if (config.environment.empty()) {
        u64 horizon = 0;
        const auto commits = recordCommitTrace(workload, &horizon);
        gen.opHorizon = horizon;
        schedules = mixedSchedules(config.schedules, commits, gen);
    } else {
        schedules = environmentSchedules(workload, config.environment,
                                         config.schedules, gen);
    }

    // Fan the whole batch across the worker pool via the sweep
    // engine's failure-schedule axis; records stream in plan order,
    // which is exactly the schedule order.
    app::SweepPlan plan;
    plan.nets({config.net})
        .impls({config.impl})
        .failureSchedules(schedules)
        .captureNvmDigests(true);
    const auto records = engine.run(plan);

    std::vector<Observation> observed;
    observed.reserve(records.size());
    for (const auto &record : records)
        observed.push_back(toObservation(record.result));

    OracleReport rep = oracle.judgeBatch(schedules, observed);
    rep.impl = info->name;
    rep.workload = config.environment.empty()
        ? config.net
        : config.net + " under " + config.environment.label();
    return rep;
}

// --- Reports and golden files ---------------------------------------

std::string
reportJson(const OracleReport &report)
{
    std::ostringstream os;
    os << "{\n  \"impl\": \"" << report.impl << "\",\n  \"workload\": \""
       << report.workload << "\",\n  \"schedulesRun\": "
       << report.schedulesRun << ",\n  \"totalFired\": "
       << report.totalFired << ",\n  \"totalReboots\": "
       << report.totalReboots << ",\n  \"divergences\": [";
    for (u64 i = 0; i < report.divergences.size(); ++i) {
        const Divergence &d = report.divergences[i];
        os << (i ? ",\n" : "\n") << "    {\"reason\": \"" << d.reason
           << "\",\n     \"schedule\": ";
        appendIndexArray(os, d.schedule);
        os << ",\n     \"shrunk\": ";
        appendIndexArray(os, d.shrunk);
        os << ",\n     \"shrunkCompleted\": "
           << (d.observed.completed ? "true" : "false")
           << ", \"shrunkReboots\": " << d.observed.reboots
           << ",\n     \"shrunkLogits\": ";
        appendLogitArray(os, d.observed.logits);
        os << ",\n     \"shrunkRebootDigests\": ";
        appendDigestArray(os, d.observed.rebootDigests);
        if (!d.tracePath.empty())
            os << ",\n     \"tracePath\": \"" << d.tracePath << "\"";
        os << "}";
    }
    os << (report.divergences.empty() ? "]" : "\n  ]") << "\n}\n";
    return os.str();
}

// --- Divergence trace dumps -----------------------------------------

namespace
{

bool
writeRecorderTrace(const trace::TraceRecorder &recorder,
                   const std::string &path, std::string *error)
{
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        if (error != nullptr)
            *error = "cannot write " + path;
        return false;
    }
    trace::writeTrace(out, {&recorder});
    if (!out) {
        if (error != nullptr)
            *error = "write to " + path + " failed";
        return false;
    }
    return true;
}

} // namespace

bool
dumpScheduleTrace(const LocalWorkload &workload,
                  const Schedule &schedule, const std::string &path,
                  std::string *error)
{
    trace::TraceRecorder recorder(0);
    {
        arch::Device dev(
            app::makeProfile(workload.profile),
            std::make_unique<arch::SchedulePower>(schedule));
        dev.setProbe(&recorder);
        dnn::DeviceNetwork net(dev, workload.net);
        net.loadInput(workload.input);
        (void)kernels::runInference(net, workload.impl);
    }
    return writeRecorderTrace(recorder, path, error);
}

bool
dumpPipelineScheduleTrace(const PipelineWorkload &workload,
                          const Schedule &schedule,
                          const std::string &path, std::string *error)
{
    trace::TraceRecorder recorder(0);
    {
        arch::Device dev(
            app::makeProfile(workload.base.profile),
            std::make_unique<arch::SchedulePower>(schedule));
        dev.setProbe(&recorder);
        dnn::DeviceNetwork net(dev, workload.base.net);
        (void)pipeline::runRound(net, workload.base.impl,
                                 workload.base.input, workload.spec,
                                 workload.seed, workload.roundIndex);
    }
    return writeRecorderTrace(recorder, path, error);
}

namespace
{

/** Continuous golden run with per-layer stat digests. */
struct GoldenContinuous
{
    Observation obs;
    u64 draws = 0;
    std::vector<std::pair<std::string, u64>> layerDigests;
};

GoldenContinuous
goldenContinuousRun(const LocalWorkload &workload)
{
    arch::Device dev(app::makeProfile(workload.profile),
                     std::make_unique<arch::SchedulePower>(Schedule{}));
    dnn::DeviceNetwork net(dev, workload.net);
    net.loadInput(workload.input);
    const auto run = kernels::runInference(net, workload.impl);
    SONIC_ASSERT(run.completed, "golden continuous run must complete");

    GoldenContinuous g;
    g.obs.completed = run.completed;
    g.obs.reboots = run.reboots;
    g.obs.logits = run.logits;
    g.obs.cycles = dev.cycles();
    g.obs.opInstances = sumOpInstances(dev);
    g.obs.finalNvmDigest = dev.nvmDigest();
    g.draws = static_cast<const arch::SchedulePower &>(dev.power())
                  .drawsSoFar();

    const auto &stats = dev.stats();
    for (u16 l = 0; l < stats.numLayers(); ++l) {
        arch::NvmDigest d;
        const std::string &name = stats.layerName(l);
        d.word(name.size());
        for (char c : name)
            d.word(static_cast<u64>(static_cast<unsigned char>(c)));
        for (u32 p = 0; p < arch::kNumParts; ++p) {
            const auto &bucket =
                stats.bucket(l, static_cast<arch::Part>(p));
            for (u32 o = 0; o < arch::kNumOps; ++o) {
                d.word(bucket.count[o]);
                d.word(bucket.cycles[o]);
            }
        }
        g.layerDigests.emplace_back(name, d.value());
    }
    return g;
}

} // namespace

std::string
goldenJson(const GoldenConfig &config)
{
    // Energy (f64 nanojoule sums) is deliberately absent from golden
    // content: batched charging reassociates the floating-point
    // accumulation (the documented ~2e-16 relative TAILS drift), so
    // only exactly-reproducible integers are committed — counts,
    // cycles, logits and digests.
    std::ostringstream os;
    os << "{\n  \"workload\": \"golden\",\n  \"netSeed\": "
       << config.netSeed << ",\n  \"scheduleSeed\": "
       << config.scheduleSeed << ",\n  \"impls\": [";

    const auto impls = kernels::ImplRegistry::instance().all();
    bool first_impl = true;
    for (const auto impl : impls) {
        const auto *info = kernels::ImplRegistry::instance().find(impl);
        LocalWorkload workload;
        workload.net = goldenNet(config.netSeed);
        workload.input = goldenInput();
        workload.impl = impl;

        const GoldenContinuous cont = goldenContinuousRun(workload);
        os << (first_impl ? "\n" : ",\n");
        first_impl = false;
        os << "    {\"name\": \"" << info->name
           << "\", \"crashConsistent\": "
           << (info->crashConsistent ? "true" : "false")
           << ",\n     \"continuous\": {\"cycles\": " << cont.obs.cycles
           << ", \"opInstances\": " << cont.obs.opInstances
           << ", \"draws\": " << cont.draws << ",\n       \"logits\": ";
        appendLogitArray(os, cont.obs.logits);
        os << ", \"finalNvmDigest\": \""
           << hex64(cont.obs.finalNvmDigest) << "\",\n       \"layers\": [";
        for (u64 l = 0; l < cont.layerDigests.size(); ++l) {
            os << (l ? ", " : "") << "{\"name\": \""
               << cont.layerDigests[l].first << "\", \"digest\": \""
               << hex64(cont.layerDigests[l].second) << "\"}";
        }
        os << "]},\n     \"schedules\": [";

        ScheduleGenConfig gen;
        gen.seed = config.scheduleSeed
            ^ (static_cast<u64>(impl) * 0x9e3779b97f4a7c15ull);
        gen.opHorizon = cont.draws;
        gen.maxFailures = config.maxFailures;
        const auto schedules =
            uniformSchedules(config.schedulesPerImpl, gen);
        for (u64 s = 0; s < schedules.size(); ++s) {
            const Observation o =
                runSchedule(workload, schedules[s], true);
            os << (s ? ",\n       " : "\n       ")
               << "{\"indices\": ";
            appendIndexArray(os, schedules[s]);
            os << ", \"fired\": " << o.fired << ", \"reboots\": "
               << o.reboots << ", \"completed\": "
               << (o.completed ? "true" : "false")
               << ", \"logitsMatchContinuous\": "
               << (o.completed && o.logits == cont.obs.logits
                       ? "true"
                       : "false")
               << ",\n        \"finalNvmDigest\": \""
               << hex64(o.finalNvmDigest)
               << "\", \"rebootDigests\": ";
            appendDigestArray(os, o.rebootDigests);
            os << "}";
        }
        os << (schedules.empty() ? "]}" : "\n     ]}");
    }
    os << "\n  ]\n}\n";
    return os.str();
}

} // namespace sonic::verify
