#include "verify/schedule.hh"

#include <algorithm>

#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::verify
{

namespace
{

/** Hard ceiling keeping any schedule far from the scheduler's
 * non-termination threshold (48 consecutive unproductive failures). */
constexpr u32 kAbsoluteMaxFailures = 40;

u32
clampMaxFailures(const ScheduleGenConfig &config)
{
    return std::min(std::max(config.maxFailures, 1u),
                    kAbsoluteMaxFailures);
}

Schedule
finish(std::vector<u64> indices)
{
    std::sort(indices.begin(), indices.end());
    indices.erase(std::unique(indices.begin(), indices.end()),
                  indices.end());
    return indices;
}

} // namespace

std::vector<Schedule>
uniformSchedules(u32 count, const ScheduleGenConfig &config)
{
    SONIC_ASSERT(config.opHorizon > 0, "uniformSchedules needs horizon");
    const u32 max_failures = clampMaxFailures(config);
    Rng rng(config.seed);
    std::vector<Schedule> schedules;
    schedules.reserve(count);
    for (u32 s = 0; s < count; ++s) {
        const u64 k = 1 + rng.below(max_failures);
        std::vector<u64> indices;
        indices.reserve(k);
        for (u64 i = 0; i < k; ++i)
            indices.push_back(rng.below(config.opHorizon));
        schedules.push_back(finish(std::move(indices)));
    }
    return schedules;
}

std::vector<Schedule>
burstySchedules(u32 count, const ScheduleGenConfig &config)
{
    SONIC_ASSERT(config.opHorizon > 0, "burstySchedules needs horizon");
    const u32 max_failures = clampMaxFailures(config);
    Rng rng(config.seed ^ 0xb5257ull);
    std::vector<Schedule> schedules;
    schedules.reserve(count);
    for (u32 s = 0; s < count; ++s) {
        const u64 clusters = 1 + rng.below(2);
        std::vector<u64> indices;
        for (u64 c = 0; c < clusters; ++c) {
            const u64 center = rng.below(config.opHorizon);
            // 2..5 back-to-back or near-adjacent failures: the reboot
            // path itself gets hit while recovering.
            const u64 len = 2 + rng.below(4);
            const u64 stride = 1 + rng.below(3);
            for (u64 i = 0;
                 i < len && indices.size() < max_failures; ++i)
                indices.push_back(center + i * stride);
        }
        schedules.push_back(finish(std::move(indices)));
    }
    return schedules;
}

std::vector<Schedule>
commitTargetedSchedules(u32 count, const std::vector<u64> &commit_ops,
                        const ScheduleGenConfig &config)
{
    if (commit_ops.empty())
        return uniformSchedules(count, config);
    const u32 max_failures = clampMaxFailures(config);
    Rng rng(config.seed ^ 0xc0317ull);
    std::vector<Schedule> schedules;
    schedules.reserve(count);
    for (u32 s = 0; s < count; ++s) {
        const u64 k =
            1 + rng.below(std::min<u64>(max_failures,
                                        commit_ops.size()));
        std::vector<u64> indices;
        indices.reserve(k);
        for (u64 i = 0; i < k; ++i) {
            const u64 commit = commit_ops[rng.below(commit_ops.size())];
            // The commit sequence starts at the recorded draw index:
            // transition charge, log seal, successor + flag stores,
            // then per-entry log commits. Offsets 0..7 land failures
            // across all of its phases.
            indices.push_back(commit + rng.below(8));
        }
        schedules.push_back(finish(std::move(indices)));
    }
    return schedules;
}

std::vector<Schedule>
mixedSchedules(u32 count, const std::vector<u64> &commit_ops,
               const ScheduleGenConfig &config)
{
    const u32 third = count / 3;
    auto all = uniformSchedules(count - 2 * third, config);
    auto bursts = burstySchedules(third, config);
    auto commits = commitTargetedSchedules(third, commit_ops, config);
    all.insert(all.end(), std::make_move_iterator(bursts.begin()),
               std::make_move_iterator(bursts.end()));
    all.insert(all.end(), std::make_move_iterator(commits.begin()),
               std::make_move_iterator(commits.end()));
    return all;
}

} // namespace sonic::verify
