/**
 * @file
 * sonic_oracle — the adversarial intermittence oracle CLI.
 *
 * Default mode fuzzes implementations with seeded adversarial power
 * schedules and differentially verifies every run against continuous
 * power, shrinking any divergence to a minimal failure-index set:
 *
 *     sonic_oracle --schedules=200 --seed=1
 *     sonic_oracle --net=HAR --impls=SONIC,TAILS --schedules=50
 *     sonic_oracle --net=DeepFC-6 --schedules=50
 *
 * --env=<environment[@cap]> swaps the synthetic schedule battery for
 * realistic ones: failure windows sliced from where the named
 * harvesting environment (env::EnvRegistry; see sonic_fleet
 * --list-envs) actually browns the capacitor out:
 *
 *     sonic_oracle --env=trace-rf-office --schedules=250
 *     sonic_oracle --net=HAR --env=solar@1mF --impls=SONIC,TAILS
 *
 * --pipelines=<all|name,...> fuzzes the sense-infer-transmit delivery
 * surface instead: each named pipeline crossed with every kernel under
 * a mixed battery that includes TX-boundary commit-targeted schedules,
 * with delivery accounting (no lost or duplicated results) held
 * exactly to the continuous reference:
 *
 *     sonic_oracle --pipelines=all --schedules=250
 *     sonic_oracle --pipelines=wildlife --impls=SONIC
 *
 * --net=golden (default) uses the built-in platform-stable workload
 * and runs sequentially; any other registered model-zoo name (--list
 * prints them; model files register via --load) fans schedules across
 * the sweep engine's worker pool.
 *
 * Golden digest files:
 *
 *     sonic_oracle --emit-golden=tests/golden/golden_net.json
 *     sonic_oracle --verify-golden=tests/golden/golden_net.json
 *
 * On divergence the failure-shrink artifact (reasons, schedules,
 * shrunk counterexamples, NVM digest chains) is written to --artifact
 * (default oracle_failures.json) and the exit code is 1.
 */

#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "dnn/device_net.hh"
#include "dnn/model_io.hh"
#include "dnn/zoo.hh"
#include "env/environment.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "verify/oracle.hh"
#include "verify/workload.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;
using cli::splitCsv;

struct Args
{
    std::string net = "golden";
    std::vector<std::string> impls; ///< empty = acceptance five
    std::vector<std::string> loadModels; ///< model files to register
    std::string environment; ///< fuzz under a realistic environment
    std::vector<std::string> pipelines; ///< pipeline-surface fuzz mode
    bool list = false;
    u32 schedules = 200;
    u64 seed = 1;
    u32 maxFailures = 8;
    u32 threads = 0;
    std::string artifact = "oracle_failures.json";
    std::string emitGolden;
    std::string verifyGolden;
};

int
usage()
{
    std::cerr
        << "usage: sonic_oracle [--net=golden|<zoo model name>]\n"
           "                    [--impls=SONIC,TAILS,...]\n"
           "                    [--load=model.json[,model2.json]]\n"
           "                    [--env=<environment[@cap]>]\n"
           "                    [--pipelines=all|wildlife,...]\n"
           "                    [--list]\n"
           "                    [--schedules=N] [--seed=S]\n"
           "                    [--max-failures=K] [--threads=T]\n"
           "                    [--artifact=PATH]\n"
           "                    [--emit-golden=PATH]\n"
           "                    [--verify-golden=PATH]\n"
           "registered models: "
        << sonic::dnn::ModelZoo::instance().availableList()
        << "\nregistered environments: "
        << sonic::env::EnvRegistry::instance().availableList() << "\n";
    return 2;
}

/** The acceptance battery: the paper's kernels plus a second tiling. */
const char *kDefaultImpls[] = {"Base", "Tile-8", "Tile-32", "SONIC",
                               "TAILS"};

/** Where divergence traces land: next to the --artifact JSON, named
 * <artifact-stem>.<tag>.<n>.sonictrace. */
std::string
tracePathFor(const std::string &artifact, const std::string &tag,
             u64 index)
{
    std::string stem = artifact;
    if (stem.size() > 5 && stem.rfind(".json") == stem.size() - 5)
        stem.resize(stem.size() - 5);
    return stem + "." + tag + "." + std::to_string(index)
        + ".sonictrace";
}

/** Re-run every shrunk divergence with the trace probe attached and
 * write one .sonictrace per counterexample. */
void
dumpLocalDivergenceTraces(verify::OracleReport *report,
                          const verify::LocalWorkload &workload,
                          const std::string &artifact,
                          const std::string &tag)
{
    if (artifact.empty())
        return;
    u64 n = 0;
    for (auto &d : report->divergences) {
        const std::string path = tracePathFor(artifact, tag, n++);
        std::string error;
        if (verify::dumpScheduleTrace(workload, d.shrunk, path,
                                      &error))
            d.tracePath = path;
        else
            std::cerr << "divergence trace dump failed: " << error
                      << "\n";
    }
}

void
dumpPipelineDivergenceTraces(verify::OracleReport *report,
                             const verify::PipelineWorkload &workload,
                             const std::string &artifact,
                             const std::string &tag)
{
    if (artifact.empty())
        return;
    u64 n = 0;
    for (auto &d : report->divergences) {
        const std::string path = tracePathFor(artifact, tag, n++);
        std::string error;
        if (verify::dumpPipelineScheduleTrace(workload, d.shrunk,
                                              path, &error))
            d.tracePath = path;
        else
            std::cerr << "divergence trace dump failed: " << error
                      << "\n";
    }
}

int
runGoldenFileMode(const Args &args)
{
    const std::string content = verify::goldenJson();
    if (!args.emitGolden.empty()) {
        std::ofstream out(args.emitGolden);
        if (!out) {
            std::cerr << "cannot write " << args.emitGolden << "\n";
            return 2;
        }
        out << content;
        std::cout << "wrote golden digests to " << args.emitGolden
                  << "\n";
        return 0;
    }
    std::ifstream in(args.verifyGolden);
    if (!in) {
        std::cerr << "cannot read " << args.verifyGolden << "\n";
        return 2;
    }
    std::ostringstream stored;
    stored << in.rdbuf();
    if (stored.str() == content) {
        std::cout << "golden digests match " << args.verifyGolden
                  << "\n";
        return 0;
    }
    std::cerr << "golden digest mismatch against " << args.verifyGolden
              << " — intermittent semantics changed.\n"
                 "If intentional, refresh with:\n  sonic_oracle "
                 "--emit-golden="
              << args.verifyGolden << "\n";
    return 1;
}

/** Parse and validate --env into an EnvRef (empty input passes). */
env::EnvRef
resolveEnvironment(const std::string &label)
{
    env::EnvRef ref;
    if (label.empty())
        return ref;
    std::string error;
    if (!env::parseEnvRef(label, &ref, &error))
        fatal(error);
    auto &registry = env::EnvRegistry::instance();
    const auto *meta = registry.meta(ref.env);
    if (meta == nullptr)
        fatal("unknown environment '", ref.env,
              "'; registered environments: ",
              registry.availableList());
    if (meta->alwaysOn)
        fatal("environment '", ref.env,
              "' never fails; the oracle needs an intermittent one");
    return ref;
}

verify::OracleReport
runLocalImpl(const std::string &impl_name, const Args &args)
{
    const auto *info =
        kernels::ImplRegistry::instance().find(impl_name);
    if (info == nullptr)
        fatal("unknown implementation '", impl_name, "'");

    verify::LocalWorkload workload;
    workload.net = verify::goldenNet();
    workload.input = verify::goldenInput();
    workload.impl = info->id;

    verify::ScheduleGenConfig gen;
    gen.seed = args.seed
        ^ (static_cast<u64>(info->id) * 0x9e3779b97f4a7c15ull);
    gen.maxFailures = args.maxFailures;
    const env::EnvRef environment =
        resolveEnvironment(args.environment);
    std::vector<verify::Schedule> schedules;
    if (environment.empty()) {
        // The commit trace (a full instrumented run) only feeds the
        // synthetic generators; environment schedules skip it.
        u64 horizon = 0;
        const auto commits =
            verify::recordCommitTrace(workload, &horizon);
        gen.opHorizon = horizon;
        schedules =
            verify::mixedSchedules(args.schedules, commits, gen);
    } else {
        schedules = verify::environmentSchedules(
            workload, environment, args.schedules, gen);
    }

    verify::OracleOptions options;
    options.crashConsistent = info->crashConsistent;
    // Software kernels are additionally held to the continuous final
    // FRAM image; TAILS' calibration registers are power-dependent.
    options.checkFinalNvmDigest = info->crashConsistent
        && info->id != kernels::Impl::Tails;
    verify::Oracle oracle(verify::localRunner(workload), options);
    auto report = oracle.verify(schedules);
    report.impl = info->name;
    report.workload = environment.empty()
        ? "golden"
        : "golden under " + environment.label();
    dumpLocalDivergenceTraces(&report, workload, args.artifact,
                              info->name);
    return report;
}

/**
 * Fuzz the pipeline delivery surface: one pipeline x kernel coordinate
 * on the golden workload under the mixed uniform / bursty /
 * TX-boundary-targeted battery, with delivery accounting held exactly
 * to the continuous reference.
 */
verify::OracleReport
runPipelineImpl(const std::string &pipeline_name,
                const std::string &impl_name, const Args &args)
{
    const auto *info =
        kernels::ImplRegistry::instance().find(impl_name);
    if (info == nullptr)
        fatal("unknown implementation '", impl_name, "'");
    verify::PipelineWorkload workload;
    workload.base.net = verify::goldenNet();
    workload.base.input = verify::goldenInput();
    workload.base.impl = info->id;
    workload.spec =
        pipeline::PipelineRegistry::instance().get(pipeline_name);
    const u64 seed = args.seed
        ^ (static_cast<u64>(info->id) * 0x9e3779b97f4a7c15ull)
        ^ fnv1a(pipeline_name);
    auto report = verify::verifyPipelineLocal(
        workload, args.schedules, seed, args.maxFailures);
    dumpPipelineDivergenceTraces(&report, workload, args.artifact,
                                 pipeline_name + "." + info->name);
    return report;
}

verify::OracleReport
runEngineImpl(app::Engine &engine, const dnn::NetRef &net,
              const std::string &impl_name, const Args &args)
{
    const auto *info =
        kernels::ImplRegistry::instance().find(impl_name);
    if (info == nullptr)
        fatal("unknown implementation '", impl_name, "'");
    verify::EngineOracleConfig config;
    config.net = net;
    config.impl = info->id;
    config.schedules = args.schedules;
    config.seed = args.seed;
    config.maxFailures = args.maxFailures;
    config.environment = resolveEnvironment(args.environment);
    auto report = verify::verifyWithEngine(engine, config);
    // The local mirror of the engine coordinate (same cached net and
    // sample-0 input verifyWithEngine records commit traces with).
    verify::LocalWorkload workload;
    workload.net = engine.compressed(net);
    workload.input = dnn::DeviceNetwork::quantizeInput(
        engine.dataset(net)[0].input);
    workload.impl = info->id;
    dumpLocalDivergenceTraces(&report, workload, args.artifact,
                              std::string(net) + "." + info->name);
    return report;
}

} // namespace

int
main(int argc, char **argv)
{
    Args args;
    std::string value;
    try {
        for (int i = 1; i < argc; ++i) {
            const std::string arg = argv[i];
            if (consumeFlag(arg, "--net", &value)) {
                args.net = value;
            } else if (consumeFlag(arg, "--impls", &value)) {
                args.impls = splitCsv(value);
            } else if (consumeFlag(arg, "--load", &value)) {
                args.loadModels = splitCsv(value);
            } else if (consumeFlag(arg, "--env", &value)) {
                args.environment = value;
            } else if (consumeFlag(arg, "--pipelines", &value)) {
                args.pipelines = value == "all"
                    ? pipeline::PipelineRegistry::instance().names()
                    : splitCsv(value);
            } else if (arg == "--list") {
                args.list = true;
            } else if (consumeFlag(arg, "--schedules", &value)) {
                args.schedules = static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--seed", &value)) {
                args.seed = std::stoull(value);
            } else if (consumeFlag(arg, "--max-failures", &value)) {
                args.maxFailures = static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--threads", &value)) {
                args.threads = static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--artifact", &value)) {
                args.artifact = value;
            } else if (consumeFlag(arg, "--emit-golden", &value)) {
                args.emitGolden = value;
            } else if (consumeFlag(arg, "--verify-golden", &value)) {
                args.verifyGolden = value;
            } else {
                return usage();
            }
        }
    } catch (const std::exception &) { // bad numeric flag value
        return usage();
    }

    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &path : args.loadModels) {
        std::string error;
        if (!dnn::loadModelIntoZoo(path, zoo, &error)) {
            std::cerr << "cannot load model " << path << ": " << error
                      << "\n";
            return 2;
        }
    }

    if (args.list) {
        // Registry metadata only — listing must not build every model.
        for (const auto &name : zoo.names()) {
            const auto *meta = zoo.meta(name);
            std::cout << name << " [" << meta->family << "] — "
                      << meta->description << "\n";
        }
        return 0;
    }

    if (!args.emitGolden.empty() || !args.verifyGolden.empty())
        return runGoldenFileMode(args);

    std::vector<std::string> impls = args.impls;
    if (impls.empty())
        impls.assign(std::begin(kDefaultImpls),
                     std::end(kDefaultImpls));

    // "golden" runs the built-in platform-stable workload on the
    // sequential local path; every other zoo model fans through the
    // engine's worker pool.
    const bool use_engine = args.net != "golden";
    if (use_engine && !zoo.contains(args.net)) {
        std::cerr << "unknown model '" << args.net
                  << "'; registered models: " << zoo.availableList()
                  << "\n";
        return 2;
    }

    app::Engine engine(app::EngineOptions{args.threads});
    std::vector<verify::OracleReport> reports;
    if (!args.pipelines.empty()) {
        // Pipeline-surface mode: every requested pipeline crossed with
        // every requested kernel, sequential local path.
        for (const auto &name : args.pipelines)
            for (const auto &impl : impls)
                reports.push_back(runPipelineImpl(name, impl, args));
    } else {
        for (const auto &impl : impls)
            reports.push_back(
                use_engine ? runEngineImpl(engine, args.net, impl, args)
                           : runLocalImpl(impl, args));
    }
    u64 divergent = 0;
    for (const auto &report : reports) {
        divergent += report.divergences.size();
        std::cout << report.impl << " on " << report.workload << ": "
                  << report.schedulesRun << " schedules, "
                  << report.totalFired << " injected failures, "
                  << report.totalReboots << " reboots — "
                  << (report.ok()
                          ? "no divergence"
                          : std::to_string(report.divergences.size())
                              + " DIVERGENT")
                  << "\n";
        for (const auto &d : report.divergences) {
            std::cout << "  " << d.reason << "\n    schedule:";
            for (u64 idx : d.schedule)
                std::cout << ' ' << idx;
            std::cout << "\n    shrunk:";
            for (u64 idx : d.shrunk)
                std::cout << ' ' << idx;
            std::cout << "\n";
        }
    }

    if (divergent > 0 && !args.artifact.empty()) {
        std::ofstream out(args.artifact);
        out << "[\n";
        bool first = true;
        for (const auto &report : reports) {
            if (report.ok())
                continue;
            out << (first ? "" : ",\n") << verify::reportJson(report);
            first = false;
        }
        out << "]\n";
        std::cout << "failure-shrink artifact written to "
                  << args.artifact << "\n";
    }
    return divergent == 0 ? 0 : 1;
}
