/**
 * @file
 * Seeded adversarial power-failure schedule generators.
 *
 * A Schedule is the failure-index trace an arch::SchedulePower
 * executes: draw i fails iff i is in the schedule. Three generator
 * families cover the failure geometries that historically expose
 * intermittence bugs:
 *
 *  - uniform:  independent failure points spread over the whole run —
 *    the broad fuzzing baseline;
 *  - bursty:   tight clusters of back-to-back failures, stressing the
 *    reboot path itself (boot sequence, commit replay) and repeated
 *    re-execution of the same atomic unit;
 *  - commit-targeted: failures aimed at the draw coordinates of the
 *    continuous run's two-phase task commits (recorded via
 *    task::CommitObserver), the window where redo-log sealing, flag
 *    raising and log application must stay atomic.
 *
 * Every schedule keeps its total failure count well below the
 * scheduler's non-termination threshold (SchedulerConfig::
 * maxFailuresWithoutProgress), so a run that is declared
 * non-terminating under a generated schedule is always a genuine
 * progress bug, never an artifact of an impossibly hostile schedule.
 */

#ifndef SONIC_VERIFY_SCHEDULE_HH
#define SONIC_VERIFY_SCHEDULE_HH

#include <vector>

#include "util/types.hh"

namespace sonic::verify
{

/** Sorted, unique draw indices at which power fails. */
using Schedule = std::vector<u64>;

/** Shared generator knobs. */
struct ScheduleGenConfig
{
    u64 seed = 1;

    /**
     * Exclusive upper bound for generated failure indices, normally
     * the continuous reference run's draw count (indices the actual —
     * longer, re-executing — intermittent run never reaches simply do
     * not fire).
     */
    u64 opHorizon = 0;

    /**
     * Failure-count cap per schedule. Must stay below the scheduler's
     * maxFailuresWithoutProgress (48) so generated schedules can never
     * cause a legitimate non-termination verdict; generators clamp.
     */
    u32 maxFailures = 8;
};

/** `count` schedules of independent uniform failure points. */
std::vector<Schedule> uniformSchedules(u32 count,
                                       const ScheduleGenConfig &config);

/** `count` schedules of 1-2 tight failure bursts. */
std::vector<Schedule> burstySchedules(u32 count,
                                      const ScheduleGenConfig &config);

/**
 * `count` schedules aimed at recorded commit coordinates: each failure
 * lands within a few draws after a commit point from `commit_ops`
 * (falls back to uniform when no commits were recorded, e.g. for a
 * kernel that never transitions).
 */
std::vector<Schedule>
commitTargetedSchedules(u32 count, const std::vector<u64> &commit_ops,
                        const ScheduleGenConfig &config);

/**
 * The oracle's default battery: an even three-way mix of uniform,
 * bursty and commit-targeted schedules totalling `count`.
 */
std::vector<Schedule> mixedSchedules(u32 count,
                                     const std::vector<u64> &commit_ops,
                                     const ScheduleGenConfig &config);

} // namespace sonic::verify

#endif // SONIC_VERIFY_SCHEDULE_HH
