#include "task/runtime.hh"

#include "util/logging.hh"

namespace sonic::task
{

namespace
{

/** The calling thread's commit observer (engine workers each own one
 * run at a time, so thread-local scoping keeps oracle instrumentation
 * from crosstalking between parallel sweeps). */
thread_local CommitObserver *t_commitObserver = nullptr;

} // namespace

CommitObserver *
setThreadCommitObserver(CommitObserver *observer)
{
    CommitObserver *previous = t_commitObserver;
    t_commitObserver = observer;
    return previous;
}

void
Runtime::pushLog(const LogEntry &entry)
{
    log_.push_back(entry);
    // Latest write to a location wins on reads, exactly as the old
    // reverse scan resolved it.
    logIndex_[{entry.target, entry.idx, entry.kind}] = entry.value;
}

void
Runtime::clearLog()
{
    log_.clear();
    logIndex_.clear();
}

void
Runtime::logWrite(arch::NvArray<i16> &arr, u32 idx, i16 value)
{
    SONIC_DASSERT(idx < arr.size());
    dev_.consume(arch::Op::LogWrite);
    pushLog({LogEntry::Arr16, &arr, idx, value});
}

i16
Runtime::logRead(const arch::NvArray<i16> &arr, u32 idx)
{
    SONIC_DASSERT(idx < arr.size());
    // Alpaca resolves privatized locations statically, so a read costs
    // the FRAM access plus an indirection; the host-side index lookup
    // below is the semantic lookup, not a charged one.
    dev_.consume(arch::Op::FramLoad);
    dev_.consume(arch::Op::RegOp, 6);
    const auto it = logIndex_.find({&arr, idx, LogEntry::Arr16});
    if (it != logIndex_.end())
        return static_cast<i16>(it->second);
    return arr.peek(idx);
}

void
Runtime::logWrite(arch::NvVar<i32> &var, i32 value)
{
    dev_.consume(arch::Op::LogWrite);
    pushLog({LogEntry::Var32, &var, 0, value});
}

i32
Runtime::logRead(const arch::NvVar<i32> &var)
{
    dev_.consume(arch::Op::FramLoad, 2);
    dev_.consume(arch::Op::RegOp, 6);
    const auto it = logIndex_.find({&var, 0, LogEntry::Var32});
    if (it != logIndex_.end())
        return it->second;
    return var.peek();
}

void
Runtime::logWrite(arch::NvVar<i16> &var, i16 value)
{
    dev_.consume(arch::Op::LogWrite);
    pushLog({LogEntry::Var16, &var, 0, value});
}

i16
Runtime::logRead(const arch::NvVar<i16> &var)
{
    dev_.consume(arch::Op::FramLoad);
    dev_.consume(arch::Op::RegOp, 6);
    const auto it = logIndex_.find({&var, 0, LogEntry::Var16});
    if (it != logIndex_.end())
        return static_cast<i16>(it->second);
    return var.peek();
}

void
Runtime::applyEntry(const LogEntry &entry)
{
    switch (entry.kind) {
      case LogEntry::Arr16:
        static_cast<arch::NvArray<i16> *>(entry.target)
            ->poke(entry.idx, static_cast<i16>(entry.value));
        break;
      case LogEntry::Var32:
        static_cast<arch::NvVar<i32> *>(entry.target)
            ->poke(entry.value);
        break;
      case LogEntry::Var16:
        static_cast<arch::NvVar<i16> *>(entry.target)
            ->poke(static_cast<i16>(entry.value));
        break;
    }
}

Scheduler::Scheduler(arch::Device &dev, const Program &program,
                     SchedulerConfig config)
    : dev_(dev), program_(program), config_(config), runtime_(dev),
      currentTask_(dev, "sched.currentTask", kDone),
      committedNext_(dev, "sched.committedNext", kDone),
      commitFlag_(dev, "sched.commitFlag", 0)
{
}

RunResult
Scheduler::run(TaskId entry)
{
    SONIC_ASSERT(entry >= 0
                 && static_cast<u32>(entry) < program_.numTasks());
    // Boot-time programming of the entry point (uncharged, like
    // flashing the binary).
    currentTask_.poke(entry);
    committedNext_.poke(kDone);
    commitFlag_.poke(0);
    runtime_.clearLog();
    runtime_.lastProgress_ = ~u64{0};

    RunResult result;
    u64 fails_since_progress = 0;

    for (;;) {
        try {
            // Boot/dispatch path: check for an interrupted commit, then
            // load the current task pointer.
            dev_.consume(arch::Op::FramLoad); // commit flag check
            if (commitFlag_.peek() != 0)
                replayCommit();

            const TaskId cur = static_cast<TaskId>(currentTask_.read());
            if (cur == kDone) {
                result.completed = true;
                break;
            }

            // Discard any uncommitted log left by an interrupted
            // attempt (reset the log header).
            runtime_.clearLog();
            dev_.consume(arch::Op::FramStore);
            runtime_.progressed_ = false;

            const TaskId next =
                program_.taskFn(cur)(runtime_);
            SONIC_ASSERT(next == kDone
                         || (next >= 0
                             && static_cast<u32>(next)
                                 < program_.numTasks()),
                         "task returned invalid successor");
            commitAndTransition(next);
            ++result.tasksExecuted;
            fails_since_progress = 0;
        } catch (const arch::PowerFailure &) {
            dev_.reboot();
            ++result.reboots;
            if (runtime_.progressed_) {
                fails_since_progress = 0;
            } else {
                ++fails_since_progress;
            }
            if (fails_since_progress
                > config_.maxFailuresWithoutProgress) {
                result.nonTerminating = true;
                break;
            }
            if (result.reboots > config_.maxTotalReboots) {
                result.nonTerminating = true;
                break;
            }
        }
    }
    return result;
}

void
Scheduler::commitAndTransition(TaskId next)
{
    if (t_commitObserver != nullptr)
        t_commitObserver->onCommit(dev_, next);
    if (auto *probe = dev_.probe())
        probe->onInstant(dev_, arch::ProbeInstant::TaskCommit,
                         static_cast<u32>(next));
    dev_.consume(config_.transitionStyle == TransitionStyle::Alpaca
                     ? arch::Op::AlpacaTransition
                     : arch::Op::TaskTransition);

    // Phase 1: seal the log (count + successor) and raise the flag.
    dev_.consume(arch::Op::FramStore); // log count seal
    committedNext_.write(next);
    commitFlag_.write(1);

    // Phase 2: apply entries to their home locations. A failure
    // anywhere in here is finished by replayCommit() at next boot.
    for (const auto &entry : runtime_.log_) {
        dev_.consume(arch::Op::LogCommit);
        Runtime::applyEntry(entry);
    }
    currentTask_.write(next);
    commitFlag_.write(0);
    runtime_.clearLog();
}

void
Scheduler::replayCommit()
{
    for (const auto &entry : runtime_.log_) {
        dev_.consume(arch::Op::LogCommit);
        Runtime::applyEntry(entry);
    }
    const auto next = committedNext_.read();
    currentTask_.write(next);
    commitFlag_.write(0);
    runtime_.clearLog();
}

} // namespace sonic::task
