/**
 * @file
 * The task-based intermittent runtime substrate.
 *
 * A Program is a set of named tasks; a Scheduler executes them on a
 * Device, restarting the current task from its top after every power
 * failure (volatile locals reinitialize naturally because the task
 * function is re-entered). The Runtime object handed to each task
 * provides:
 *
 *  - Alpaca-style redo-logged writes to task-shared data, committed
 *    atomically at task transition under a non-volatile commit flag
 *    with replay-on-reboot (crash-consistent at every operation);
 *  - a progress beacon, used to distinguish tasks that are making
 *    non-volatile forward progress across failures (SONIC's loop
 *    continuation, TAILS' calibration) from genuinely non-terminating
 *    tasks (the paper's Base and over-sized tilings, Fig. 9b).
 */

#ifndef SONIC_TASK_RUNTIME_HH
#define SONIC_TASK_RUNTIME_HH

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "arch/device.hh"
#include "arch/memory.hh"
#include "util/types.hh"

namespace sonic::task
{

/** Index of a task within a Program. kDone ends the program. */
using TaskId = i32;
constexpr TaskId kDone = -1;

class Runtime;

/** A task body: performs charged work, names its successor. */
using TaskFn = std::function<TaskId(Runtime &)>;

/** An ordered collection of tasks forming an intermittent program. */
class Program
{
  public:
    /** Register a task; returns its id. */
    TaskId
    addTask(std::string name, TaskFn fn)
    {
        tasks_.push_back({std::move(name), std::move(fn)});
        return static_cast<TaskId>(tasks_.size() - 1);
    }

    u32 numTasks() const { return static_cast<u32>(tasks_.size()); }

    const std::string &
    taskName(TaskId id) const
    {
        return tasks_[static_cast<u32>(id)].name;
    }

    const TaskFn &
    taskFn(TaskId id) const
    {
        return tasks_[static_cast<u32>(id)].fn;
    }

  private:
    struct TaskDef
    {
        std::string name;
        TaskFn fn;
    };

    std::vector<TaskDef> tasks_;
};

/**
 * Per-execution services available to task bodies. Owned by the
 * Scheduler; the redo log conceptually lives in FRAM (it survives
 * failures; uncommitted entries are discarded at reboot, exactly as in
 * Alpaca).
 */
class Runtime
{
  public:
    explicit Runtime(arch::Device &dev) : dev_(dev) {}

    arch::Device &dev() { return dev_; }

    /**
     * Report non-volatile forward progress (e.g., a loop-continuation
     * index value). The scheduler resets its failure counter whenever
     * the reported value changes, so a task may fail arbitrarily many
     * times without being declared non-terminating as long as it keeps
     * advancing.
     */
    void
    progress(u64 value)
    {
        if (value != lastProgress_) {
            lastProgress_ = value;
            progressed_ = true;
        }
    }

    /** @name Alpaca-style redo-logged task-shared accesses */
    /// @{

    /** Privatized write of arr[idx]; visible to logRead immediately,
     * applied to the home location only at commit. */
    void logWrite(arch::NvArray<i16> &arr, u32 idx, i16 value);

    /** Read of arr[idx] honoring earlier logged writes in this task. */
    i16 logRead(const arch::NvArray<i16> &arr, u32 idx);

    /** Privatized write of a task-shared scalar. */
    void logWrite(arch::NvVar<i32> &var, i32 value);
    void logWrite(arch::NvVar<i16> &var, i16 value);

    /** Read of a task-shared scalar honoring earlier logged writes. */
    i32 logRead(const arch::NvVar<i32> &var);
    i16 logRead(const arch::NvVar<i16> &var);

    /** Number of uncommitted log entries (diagnostics/tests). */
    u64 logSize() const { return log_.size(); }
    /// @}

  private:
    friend class Scheduler;

    struct LogEntry
    {
        enum Kind : u8 { Arr16, Var32, Var16 };
        Kind kind;
        void *target;
        u32 idx;
        i32 value;
    };

    /** Host-side key of one logged location (kind, target, index). */
    struct LogKey
    {
        const void *target;
        u32 idx;
        u8 kind;

        bool
        operator==(const LogKey &o) const
        {
            return target == o.target && idx == o.idx
                && kind == o.kind;
        }
    };

    struct LogKeyHash
    {
        std::size_t
        operator()(const LogKey &k) const
        {
            // Mix in u64 so the shift stays defined on 32-bit hosts.
            u64 h = static_cast<u64>(
                reinterpret_cast<std::uintptr_t>(k.target));
            h ^= (h >> 33) ^ (static_cast<u64>(k.idx) << 8)
               ^ static_cast<u64>(k.kind);
            return static_cast<std::size_t>(
                h * 0x9e3779b97f4a7c15ull);
        }
    };

    static void applyEntry(const LogEntry &entry);

    /** Append an entry and index it (latest write wins on reads). */
    void pushLog(const LogEntry &entry);

    /** Discard the uncommitted log and its read index. */
    void clearLog();

    arch::Device &dev_;
    std::vector<LogEntry> log_;

    /**
     * Read index over log_: maps each logged location to its latest
     * uncommitted value, making logRead O(1) instead of a reverse
     * scan (Tile-128 carries hundred-entry logs and pays a logRead
     * per task-shared load). Host-side bookkeeping only; the charged
     * device costs in logRead/logWrite are unchanged.
     */
    std::unordered_map<LogKey, i32, LogKeyHash> logIndex_;

    u64 lastProgress_ = ~u64{0};
    bool progressed_ = false;
};

/**
 * Observer of committed task transitions — oracle instrumentation.
 *
 * The commit-point-targeted schedule generator (src/verify) needs the
 * draw-call coordinates of every two-phase commit in a continuous
 * reference run so it can aim power failures at the commit machinery.
 * An observer is installed per thread (setThreadCommitObserver) and is
 * consulted once per task transition — a cold path — so the
 * per-operation simulation cost is untouched when no oracle runs.
 */
class CommitObserver
{
  public:
    virtual ~CommitObserver() = default;

    /**
     * Called at the start of every commitAndTransition, before the
     * transition is charged: the next draw the device performs is the
     * first operation of the commit sequence.
     */
    virtual void onCommit(arch::Device &dev, TaskId next) = 0;
};

/**
 * Install a commit observer for the calling thread (nullptr uninstalls);
 * returns the previous observer so callers can nest/restore.
 */
CommitObserver *setThreadCommitObserver(CommitObserver *observer);

/** How task transitions are charged. */
enum class TransitionStyle : u8
{
    Alpaca, ///< full task-based-runtime dispatch (Op::AlpacaTransition)
    Light   ///< SONIC's streamlined transition (Op::TaskTransition)
};

/** Scheduler configuration. */
struct SchedulerConfig
{
    TransitionStyle transitionStyle = TransitionStyle::Alpaca;

    /**
     * Declare non-termination after this many consecutive power
     * failures with no task completion and no progress-beacon change.
     */
    u64 maxFailuresWithoutProgress = 48;

    /** Hard safety valve on total reboots per run. */
    u64 maxTotalReboots = 50'000'000;
};

/** Outcome of running a program. */
struct RunResult
{
    bool completed = false;
    bool nonTerminating = false;
    u64 reboots = 0;
    u64 tasksExecuted = 0;
};

/**
 * Executes a Program on a Device under the intermittent execution
 * model: the current-task pointer lives in FRAM; a power failure
 * restarts the current task; the redo log commits two-phase at each
 * transition and is replayed if the failure struck mid-commit.
 */
class Scheduler
{
  public:
    Scheduler(arch::Device &dev, const Program &program,
              SchedulerConfig config = {});

    /** Run from entry until kDone, a DNF verdict, or the safety valve. */
    RunResult run(TaskId entry);

    Runtime &runtime() { return runtime_; }

  private:
    /** Commit the redo log and switch to next (two-phase). */
    void commitAndTransition(TaskId next);

    /** Finish a commit interrupted by a power failure. */
    void replayCommit();

    arch::Device &dev_;
    const Program &program_;
    SchedulerConfig config_;
    Runtime runtime_;

    // Non-volatile scheduler state (conceptually FRAM).
    arch::NvVar<i32> currentTask_;
    arch::NvVar<i32> committedNext_;
    arch::NvVar<i16> commitFlag_;
};

} // namespace sonic::task

#endif // SONIC_TASK_RUNTIME_HH
