#include "genesis/impj.hh"

#include "util/logging.hh"

namespace sonic::genesis
{

f64
impjBaseline(const AppModel &m)
{
    SONIC_ASSERT(m.senseJ + m.commJ > 0.0);
    return m.baseRate / (m.senseJ + m.commJ);
}

f64
impjIdeal(const AppModel &m)
{
    return m.baseRate / (m.senseJ + m.baseRate * m.commJ);
}

f64
impjInference(const AppModel &m)
{
    const f64 sent_rate = m.baseRate * m.truePositive
        + (1.0 - m.baseRate) * (1.0 - m.trueNegative);
    const f64 denom =
        (m.senseJ + m.inferJ) + sent_rate * m.commJ;
    SONIC_ASSERT(denom > 0.0);
    return m.baseRate * m.truePositive / denom;
}

} // namespace sonic::genesis
