/**
 * @file
 * The paper's end-to-end application-performance model (Sec. 3, Table 1
 * and Eqs. 1-3): interesting messages communicated per Joule of
 * harvested energy (IMpJ), for a sensing device that may run local
 * inference to filter what it communicates.
 */

#ifndef SONIC_GENESIS_IMPJ_HH
#define SONIC_GENESIS_IMPJ_HH

#include "util/types.hh"

namespace sonic::genesis
{

/** Parameters of the application model (energies in Joules). */
struct AppModel
{
    f64 baseRate = 0.05;      ///< p: probability an event is interesting
    f64 truePositive = 1.0;   ///< tp of the local inference
    f64 trueNegative = 1.0;   ///< tn of the local inference
    f64 senseJ = 0.0;         ///< Esense per event
    f64 commJ = 0.0;          ///< Ecomm per communicated reading
    f64 inferJ = 0.0;         ///< Einfer per event
};

/** Eq. 1: no local inference; everything is communicated. */
f64 impjBaseline(const AppModel &m);

/** Eq. 2: oracle filter; only interesting readings communicated. */
f64 impjIdeal(const AppModel &m);

/** Eq. 3: local, imperfect inference filters communication. */
f64 impjInference(const AppModel &m);

} // namespace sonic::genesis

#endif // SONIC_GENESIS_IMPJ_HH
