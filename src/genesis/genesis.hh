/**
 * @file
 * GENESIS (paper Sec. 5): automatic network compression that optimally
 * balances inference energy against detection accuracy.
 *
 * GENESIS sweeps separation (CP/SVD rank) and pruning knobs over a
 * workload's teacher network, evaluates each configuration's accuracy
 * (agreement with the teacher on held-out synthetic samples), counts
 * its parameters/MACs, checks device feasibility (FRAM footprint), and
 * maps everything through the Sec. 3 application model (Eq. 3) to pick
 * the feasible configuration that maximizes IMpJ — which, as the paper
 * stresses, is usually *not* the most accurate one.
 */

#ifndef SONIC_GENESIS_GENESIS_HH
#define SONIC_GENESIS_GENESIS_HH

#include <string>
#include <vector>

#include "dnn/dataset.hh"
#include "dnn/networks.hh"
#include "dnn/zoo.hh"
#include "genesis/impj.hh"
#include "util/types.hh"

namespace sonic::genesis
{

/** Which compression techniques a configuration uses (Fig. 4 legend). */
enum class Technique : u8
{
    SeparateAndPrune,
    SeparateOnly,
    PruneOnly
};

const char *techniqueName(Technique t);

/** One evaluated compression configuration. */
struct ConfigPoint
{
    Technique technique = Technique::SeparateAndPrune;
    dnn::CompressionKnobs knobs;

    u64 params = 0;
    u64 macs = 0;
    u64 framBytes = 0;
    bool feasible = false;

    f64 agreement = 0.0; ///< fraction matching teacher labels
    f64 accuracy = 0.0;  ///< agreement scaled by paper base accuracy
    f64 truePositive = 0.0;
    f64 trueNegative = 0.0;

    f64 inferJ = 0.0; ///< estimated energy per inference
    f64 impj = 0.0;   ///< Eq. 3 application performance
};

/** Sweep options. */
struct GenesisOptions
{
    u32 evalSamples = 96;
    u64 seed = 0x5eed;

    /** FRAM available for weights + activations (capacity minus the
     * runtime's footprint). */
    u64 framBudgetBytes = 224 * 1024;

    /** Application-model energies (wildlife defaults, Sec. 3.2). */
    f64 senseJ = 10e-3;
    f64 commJ = 23.0;

    /** Per-MAC inference energy (calibrate from a measured run). */
    f64 joulesPerMac = 60e-9;

    /** Sweep density (smaller grids for tests). */
    bool denseGrid = true;
};

/** Full sweep result. */
struct GenesisResult
{
    dnn::NetRef net;
    std::vector<ConfigPoint> configs;
    ConfigPoint original;  ///< the uncompressed teacher (infeasible)
    u32 chosenIndex = 0;   ///< feasible config maximizing IMpJ
    u32 interestingClass = 0;

    const ConfigPoint &chosen() const { return configs[chosenIndex]; }
};

/**
 * Run the sweep for one registered workload. Paper workloads compress
 * through their Table 2 budgets; any other zoo model goes through the
 * generic knob compressor (see dnn::ModelDef::withKnobs).
 */
GenesisResult runGenesis(const dnn::NetRef &net,
                         const GenesisOptions &opts);

/**
 * Indices of the accuracy-vs-MACs Pareto frontier (maximize accuracy,
 * minimize MACs) within the subset matching `technique` (or all
 * configurations when technique is nullptr).
 */
std::vector<u32> paretoFrontier(const std::vector<ConfigPoint> &configs,
                                const Technique *technique);

/** Evaluate one configuration (exposed for tests). */
ConfigPoint evaluateConfig(const dnn::ModelEntry &entry,
                           Technique technique,
                           const dnn::CompressionKnobs &knobs,
                           const dnn::NetworkSpec &teacher,
                           const dnn::Dataset &data,
                           u32 interesting_class,
                           const GenesisOptions &opts);

} // namespace sonic::genesis

#endif // SONIC_GENESIS_GENESIS_HH
