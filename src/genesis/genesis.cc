#include "genesis/genesis.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sonic::genesis
{

const char *
techniqueName(Technique t)
{
    switch (t) {
      case Technique::SeparateAndPrune: return "separate+prune";
      case Technique::SeparateOnly: return "separate-only";
      case Technique::PruneOnly: return "prune-only";
    }
    return "?";
}

ConfigPoint
evaluateConfig(const dnn::ModelEntry &entry, Technique technique,
               const dnn::CompressionKnobs &knobs,
               const dnn::NetworkSpec &teacher, const dnn::Dataset &data,
               u32 interesting_class, const GenesisOptions &opts)
{
    (void)teacher;
    ConfigPoint point;
    point.technique = technique;
    point.knobs = knobs;

    const dnn::NetworkSpec spec = entry.withKnobs(knobs, opts.seed);
    point.params = spec.paramCount();
    point.macs = spec.macCount();
    point.framBytes = spec.framBytesNeeded();
    point.feasible = point.framBytes <= opts.framBudgetBytes;

    point.agreement = dnn::agreement(spec, data);
    point.accuracy = entry.meta().scaledAccuracy(point.agreement);
    (void)interesting_class;
    // The application model uses the paper's Fig. 1/2 simplification
    // tp = tn = accuracy; per-class detection rates on the skewed
    // synthetic label distribution would let degenerate always-fire
    // configurations game Eq. 3.
    point.truePositive = point.accuracy;
    point.trueNegative = point.accuracy;

    point.inferJ = static_cast<f64>(point.macs) * opts.joulesPerMac;

    AppModel model;
    model.baseRate = 0.05;
    model.truePositive = point.truePositive;
    model.trueNegative = point.trueNegative;
    model.senseJ = opts.senseJ;
    model.commJ = opts.commJ;
    model.inferJ = point.inferJ;
    point.impj = impjInference(model);
    return point;
}

GenesisResult
runGenesis(const dnn::NetRef &net, const GenesisOptions &opts)
{
    const dnn::ModelEntry &model = dnn::ModelZoo::instance().get(net);
    GenesisResult result;
    result.net = net;

    const dnn::NetworkSpec teacher = model.teacherAt(opts.seed);
    const dnn::Dataset data =
        dnn::makeDataset(teacher, opts.evalSamples, opts.seed + 17);
    result.interestingClass =
        dnn::dominantClass(data, teacher.numClasses);

    // The uncompressed original, for the Fig. 4 "infeasible" marker.
    result.original.technique = Technique::PruneOnly;
    result.original.params = teacher.paramCount();
    result.original.macs = teacher.macCount();
    result.original.framBytes = teacher.framBytesNeeded();
    result.original.feasible =
        result.original.framBytes <= opts.framBudgetBytes;
    result.original.agreement = 1.0;
    result.original.accuracy = model.meta().paperAccuracy;
    result.original.inferJ =
        static_cast<f64>(result.original.macs) * opts.joulesPerMac;

    // Sweep grids.
    std::vector<f64> fc_keeps;
    std::vector<f64> conv_keeps;
    std::vector<f64> ranks;
    if (opts.denseGrid) {
        fc_keeps = {0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0, 1.5, 2.5};
        conv_keeps = {0.3, 0.6, 1.0, 2.0};
        ranks = {0.5, 1.0, 2.0};
    } else {
        fc_keeps = {0.1, 0.5, 1.0};
        conv_keeps = {0.5, 1.0};
        ranks = {1.0};
    }

    auto eval = [&](Technique t, const dnn::CompressionKnobs &knobs) {
        result.configs.push_back(evaluateConfig(
            model, t, knobs, teacher, data, result.interestingClass,
            opts));
    };

    // Separation + pruning.
    for (f64 fk : fc_keeps) {
        for (f64 ck : conv_keeps) {
            for (f64 rs : ranks) {
                dnn::CompressionKnobs knobs;
                knobs.separateConv = true;
                knobs.svdFc = true;
                knobs.fcKeep = fk;
                knobs.convKeep = ck;
                knobs.fcRankScale = rs;
                eval(Technique::SeparateAndPrune, knobs);
            }
        }
    }
    // Separation only: factors retained in full.
    for (f64 rs : ranks) {
        dnn::CompressionKnobs knobs;
        knobs.separateConv = true;
        knobs.svdFc = true;
        knobs.fcKeep = 1e9;
        knobs.convKeep = 1e9;
        knobs.fcRankScale = rs;
        eval(Technique::SeparateOnly, knobs);
    }
    // Pruning only.
    for (f64 fk : fc_keeps) {
        for (f64 ck : conv_keeps) {
            dnn::CompressionKnobs knobs;
            knobs.separateConv = false;
            knobs.svdFc = false;
            knobs.fcKeep = fk;
            knobs.convKeep = ck;
            eval(Technique::PruneOnly, knobs);
        }
    }

    // Choose the feasible configuration maximizing IMpJ.
    u32 best = 0;
    f64 best_impj = -1.0;
    for (u32 i = 0; i < result.configs.size(); ++i) {
        const auto &c = result.configs[i];
        if (c.feasible && c.impj > best_impj) {
            best = i;
            best_impj = c.impj;
        }
    }
    SONIC_ASSERT(best_impj >= 0.0, "no feasible configuration found");
    result.chosenIndex = best;
    return result;
}

std::vector<u32>
paretoFrontier(const std::vector<ConfigPoint> &configs,
               const Technique *technique)
{
    std::vector<u32> candidates;
    for (u32 i = 0; i < configs.size(); ++i)
        if (technique == nullptr || configs[i].technique == *technique)
            candidates.push_back(i);

    std::vector<u32> front;
    for (u32 i : candidates) {
        bool dominated = false;
        for (u32 j : candidates) {
            if (i == j)
                continue;
            const bool no_worse = configs[j].macs <= configs[i].macs
                && configs[j].accuracy >= configs[i].accuracy;
            const bool better = configs[j].macs < configs[i].macs
                || configs[j].accuracy > configs[i].accuracy;
            if (no_worse && better) {
                dominated = true;
                break;
            }
        }
        if (!dominated)
            front.push_back(i);
    }
    std::sort(front.begin(), front.end(), [&](u32 a, u32 b) {
        return configs[a].macs < configs[b].macs;
    });
    return front;
}

} // namespace sonic::genesis
