/**
 * @file
 * Power-trace playback: measured (or synthesized) harvest-rate traces
 * as environment inputs.
 *
 * Two formats, both mapping to a periodic HarvestModel whose period is
 * the last sample's timestamp (the trace loops):
 *
 *  - CSV: one `seconds,watts` pair per line; blank lines and lines
 *    starting with '#' are ignored.
 *
 *        # office RF harvest, 1 Hz samples
 *        0.0,0.0005
 *        1.0,0.0007
 *        ...
 *        120.0,0.0004
 *
 *  - JSON: `{"format": "sonic-trace", "version": 1,
 *            "points": [[seconds, watts], ...]}`
 *
 * Parsing is total: malformed rows, non-monotonic timestamps,
 * negative power, empty or all-dark traces, wrong format tags and
 * unknown versions are all rejected with a one-line diagnostic naming
 * the offending row — corrupt trace files must never turn into
 * silently wrong deployment results.
 */

#ifndef SONIC_ENV_TRACES_HH
#define SONIC_ENV_TRACES_HH

#include <string>

#include "env/environment.hh"

namespace sonic::env
{

/** Current trace-format version (JSON "version" field). */
inline constexpr u32 kTraceFormatVersion = 1;

/**
 * Parse a CSV power trace. On failure returns false and, when error
 * is non-null, a diagnostic with the offending line number.
 */
bool parseTraceCsv(const std::string &text, HarvestModel *out,
                   std::string *error = nullptr);

/** Parse a JSON power trace (the sonic-trace document). */
bool parseTraceJson(const std::string &text, HarvestModel *out,
                    std::string *error = nullptr);

/**
 * Load a trace file, dispatching on extension: ".json" parses the
 * sonic-trace document, anything else is read as CSV.
 */
bool loadTraceFile(const std::string &path, HarvestModel *out,
                   std::string *error = nullptr);

/** @name Embedded traces
 * Always-available measured-style traces (registered as
 * trace-rf-office / trace-solar-cloudy), exercising the same playback
 * pipeline user trace files go through. */
/// @{
extern const char *const kTraceRfOfficeCsv;
extern const char *const kTraceSolarCloudyJson;
/// @}

} // namespace sonic::env

#endif // SONIC_ENV_TRACES_HH
