/**
 * @file
 * Harvested-energy environments: the deployment conditions a device
 * runs under, as data behind a string-keyed registry (mirroring
 * kernels::ImplRegistry and dnn::ModelZoo).
 *
 * An environment names a power world — the paper's bench RF harvester,
 * a solar diurnal cycle, bursty ambient RF, a periodic duty-cycled
 * source, constant wall power, or the playback of a measured power
 * trace (src/env/traces.hh) — and builds a deterministic, seedable
 * arch::PowerSupply for it:
 *
 *     auto psu = env::EnvRegistry::instance().make(
 *         env::EnvRef{"solar", 1e-3}, seed);
 *
 * The harvesting environments share one physical core: a
 * piecewise-linear, periodic harvest-rate model (HarvestModel) feeding
 * the capacitor charge equation of arch::CapacitorPower
 * (E = 1/2 C (Vmax^2 - Vmin^2) usable buffer, brown-out on empty,
 * recharge by integrating the harvest rate forward in simulated time).
 * The resulting HarvestSupply honors the energy-lease protocol
 * (grant hands out the whole remaining charge, settle returns the
 * remainder) exactly like CapacitorPower, so the Device fast path
 * stays devirtualized and a leased run brown-outs on the
 * bit-identical operation a per-op-draw run would.
 *
 * Seeds perturb only deployment phase (where in the environment cycle
 * the device boots), so two devices with the same seed replay the
 * identical supply behavior — the determinism the fleet simulator and
 * the verification oracle rely on.
 */

#ifndef SONIC_ENV_ENVIRONMENT_HH
#define SONIC_ENV_ENVIRONMENT_HH

#include <cmath>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "arch/power.hh"
#include "util/types.hh"

namespace sonic::env
{

/**
 * One environment-axis point: a registered environment name plus an
 * optional capacitor-size override (0 = the environment's default).
 * Carried by app::RunSpec and fleet::FleetPlan; an empty name means
 * "no environment" (the legacy PowerKind axis selects the supply).
 */
struct EnvRef
{
    std::string env;
    f64 capacitanceFarads = 0.0;

    bool empty() const { return env.empty(); }

    /** Display/CSV form: "solar" or "solar@50mF". */
    std::string label() const;

    bool
    operator==(const EnvRef &other) const
    {
        return env == other.env
            && capacitanceFarads == other.capacitanceFarads;
    }
};

/**
 * Parse an environment label of the form "name" or "name@<cap>" where
 * <cap> is a capacitance with unit suffix (e.g. "100uF", "1mF",
 * "0.05F"). Returns false with a diagnostic in *error on bad syntax;
 * the name itself is validated against the registry by the caller.
 */
bool parseEnvRef(const std::string &text, EnvRef *out,
                 std::string *error);

/**
 * A periodic piecewise-linear harvest-rate model: income power as a
 * function of simulated time, wrapping every periodSeconds. The model
 * is the integrable core every harvesting environment shares — the
 * capacitor charge equation integrates it forward to find recharge
 * dead time.
 */
class HarvestModel
{
  public:
    /** One control point: harvest power at a time offset. */
    struct Point
    {
        f64 seconds = 0.0;
        f64 watts = 0.0;
    };

    HarvestModel() = default;

    /**
     * Build from control points over [0, period). Points must start at
     * 0, be strictly increasing, stay below the period and carry
     * non-negative power; the rate interpolates linearly between
     * points and wraps from the last point back to the first. The
     * model must harvest strictly positive energy per period (a
     * dead-forever environment cannot recharge anything). Violations
     * are fatal configuration errors.
     */
    HarvestModel(std::vector<Point> points, f64 period_seconds);

    /** A constant-rate model (the paper's bench RF harvester). */
    static HarvestModel constant(f64 watts);

    /** Instantaneous harvest power at simulated time t (wraps). */
    f64 watts(f64 t) const;

    /** Energy harvested over [t0, t0 + dt], in joules. */
    f64 energyJoules(f64 t0, f64 dt) const;

    /**
     * Time needed from t0 to harvest `joules` (the recharge
     * integral's inverse). Exact within each linear segment.
     */
    f64 secondsToHarvest(f64 t0, f64 joules) const;

    f64 periodSeconds() const { return period_; }
    f64 energyJoulesPerPeriod() const { return periodJoules_; }
    const std::vector<Point> &points() const { return points_; }

  private:
    /** Segment rate/integral helpers (index i spans point i → i+1,
     * the last segment wrapping to points_[0] at period_). */
    f64 segmentEnd(u64 i) const;
    f64 segmentEndWatts(u64 i) const;

    std::vector<Point> points_{{0.0, 0.0}};
    f64 period_ = 1.0;
    f64 periodJoules_ = 0.0;
};

/**
 * A capacitor-buffered harvester in a time-varying environment: the
 * generalization of arch::CapacitorPower from constant income to a
 * HarvestModel. Identical lease protocol (the whole remaining charge
 * is granted; the remainder settles back), identical brown-out
 * semantics (residual charge below the regulator window is lost), but
 * recharge integrates the model forward from the current simulated
 * time, and Device::reboot's elapse() notifications keep that clock
 * aligned with device uptime.
 *
 * Optionally records the draw-call coordinate of every brown-out
 * (`recordFailures`), which is how the verification oracle converts a
 * realistic environment into an explicit failure-index schedule.
 */
class HarvestSupply : public arch::PowerSupply
{
  public:
    HarvestSupply(std::string label, HarvestModel model,
                  f64 capacitance_farads, f64 phase_seconds = 0.0,
                  f64 v_max = arch::kRegulatorVMax,
                  f64 v_min = arch::kRegulatorVMin);

    bool draw(f64 nj) override;

    /** Hand the whole remaining charge out (see CapacitorPower). */
    arch::EnergyLease
    grant(f64 /*max_nj*/, u64 max_ops) override
    {
        const f64 nj = levelNj_;
        levelNj_ = 0.0;
        return {nj, max_ops};
    }

    void
    settle(f64 unused_nj, f64 /*used_nj*/, u64 used_ops) override
    {
        levelNj_ += unused_nj;
        draws_ += used_ops;
    }

    f64 recharge() override;

    /**
     * Advance the environment clock by device uptime. The clock wraps
     * into [0, period): the harvest model is periodic (watts() and
     * secondsToHarvest() fmod internally, so wrapping is exactly
     * behavior-preserving), and an unwrapped accumulator loses f64
     * precision once uptime dwarfs the period — at extreme uptimes
     * small increments would be absorbed entirely and the phase would
     * drift. Zero and negative increments are no-ops.
     */
    void
    elapse(f64 live_seconds) override
    {
        if (live_seconds <= 0.0)
            return;
        simSeconds_ += live_seconds;
        wrapClock();
    }

    void reset() override;
    bool intermittent() const override { return true; }
    f64 capacityNj() const override { return capacityNj_; }
    f64 harvestedNj() const override { return harvestedNj_; }
    std::string describe() const override;

    /** @name Diagnostics and oracle instrumentation */
    /// @{
    f64 levelNj() const { return levelNj_; }
    f64 simSeconds() const { return simSeconds_; }
    const HarvestModel &model() const { return model_; }

    /** Record the draw coordinate of every brown-out (off by
     * default; the oracle's environment mode turns it on). */
    void setRecordFailures(bool enabled) { recordFailures_ = enabled; }

    /** Draw-call (== Device::consume call) cursor. */
    u64 drawsSoFar() const { return draws_; }

    /** Brown-out draw coordinates (when recording was enabled). */
    const std::vector<u64> &failureIndices() const
    {
        return failureIndices_;
    }

    /**
     * Round-replay hook for the fleet round cache
     * (src/fleet/round_cache.hh). A memoized round replays a device's
     * kernel trace arithmetically instead of re-running the simulator,
     * but the supply's clock walk must stay real: the replayer calls
     * elapse() with the recorded uptime deltas, forces the level a
     * brown-out would have left (0 before each recharge(), the
     * recorded end-of-round level after the last elapse), and lets
     * recharge() integrate the harvest model from the true simulated
     * time. Level, clock and harvested-energy evolution are then
     * bit-identical to the un-memoized run. Not for use outside
     * replay: it bypasses the draw/settle accounting.
     */
    void setLevelNjForReplay(f64 nj) { levelNj_ = nj; }
    /// @}

  private:
    /** Reduce the clock into [0, period) (see elapse()). */
    void
    wrapClock()
    {
        const f64 period = model_.periodSeconds();
        if (period > 0.0 && simSeconds_ >= period)
            simSeconds_ = std::fmod(simSeconds_, period);
    }

    std::string label_;
    HarvestModel model_;
    f64 capacitanceFarads_;
    f64 phaseSeconds_;
    f64 capacityNj_;
    f64 levelNj_;
    f64 harvestedNj_;
    f64 simSeconds_;
    u64 draws_ = 0;
    bool recordFailures_ = false;
    std::vector<u64> failureIndices_;
};

/**
 * A non-owning view of another supply: forwards every PowerSupply
 * entry point to the borrowed instance. arch::Device takes ownership
 * of its supply, but a fleet device's environment must outlive the
 * sequence of Devices that run its inferences (the capacitor level
 * and the environment clock persist across them) — each inference
 * hands the Device a fresh BorrowedSupply over the long-lived one.
 */
class BorrowedSupply : public arch::PowerSupply
{
  public:
    explicit BorrowedSupply(arch::PowerSupply *inner) : inner_(inner) {}

    bool draw(f64 nj) override { return inner_->draw(nj); }

    arch::EnergyLease
    grant(f64 max_nj, u64 max_ops) override
    {
        return inner_->grant(max_nj, max_ops);
    }

    void
    settle(f64 unused_nj, f64 used_nj, u64 used_ops) override
    {
        inner_->settle(unused_nj, used_nj, used_ops);
    }

    f64 recharge() override { return inner_->recharge(); }
    void elapse(f64 live_seconds) override { inner_->elapse(live_seconds); }
    void reset() override { inner_->reset(); }
    bool intermittent() const override { return inner_->intermittent(); }
    f64 capacityNj() const override { return inner_->capacityNj(); }
    f64 harvestedNj() const override { return inner_->harvestedNj(); }
    std::string describe() const override { return inner_->describe(); }

  private:
    arch::PowerSupply *inner_;
};

/** Registered environment metadata (no supply is built to read it). */
struct EnvMeta
{
    /** Provenance bucket: "bench", "deployment", "trace", "custom". */
    std::string family = "custom";
    std::string description;

    /** Capacitor size when the EnvRef does not override it. */
    f64 defaultCapacitanceFarads = 100e-6;

    /** True for supplies that can never brown out ("continuous"). */
    bool alwaysOn = false;
};

/** Resolved build parameters handed to an environment builder. */
struct EnvInstance
{
    f64 capacitanceFarads = 100e-6;
    /** Deployment seed; perturbs phase only (see file comment). */
    u64 seed = 0;
};

/** Builds the supply for one resolved instance. */
using EnvBuilder = std::function<std::unique_ptr<arch::PowerSupply>(
    const EnvInstance &)>;

/**
 * The process-wide environment registry. Thread-safe; registration
 * mirrors ModelZoo (unique names, fatal on duplicates). Built-ins:
 *
 *   continuous   — wall power, never fails (family "bench")
 *   rf-paper     — the paper's Powercast RF deployment: constant
 *                  0.5 mW income into the capacitor (family "bench")
 *   rf-bursty    — ambient RF arriving in short high-power bursts
 *                  over a weak floor (family "deployment")
 *   solar        — a parametric diurnal cycle: zero at night, linear
 *                  ramps to a midday peak (family "deployment")
 *   duty-cycle   — a periodically keyed transmitter: full power for a
 *                  fixed on-window, dead otherwise ("deployment")
 *   trace-rf-office, trace-solar-cloudy
 *                — embedded measured-style traces played back through
 *                  the trace pipeline (family "trace")
 */
class EnvRegistry
{
  public:
    static EnvRegistry &instance();

    /** Register an environment; duplicate names are fatal. */
    void add(std::string name, EnvMeta meta, EnvBuilder build);

    /**
     * Register a harvest-model environment (the common case): the
     * builder wires the model into a HarvestSupply with the seeded
     * deployment phase.
     */
    void addHarvest(std::string name, EnvMeta meta, HarvestModel model);

    /**
     * Parse a CSV/JSON power trace file (env/traces.hh) and register
     * it as a playback environment. False with a diagnostic in *error
     * on parse failure or duplicate name; nothing is registered.
     */
    bool addTraceFile(const std::string &name, const std::string &path,
                      std::string *error = nullptr);

    bool contains(std::string_view name) const;

    /** Registered metadata; nullptr if unknown. Pointer stays valid
     * for the life of the process. */
    const EnvMeta *meta(std::string_view name) const;

    /** Registered names, in registration order. */
    std::vector<std::string> names() const;

    /** Comma-separated names(), for error messages. */
    std::string availableList() const;

    /**
     * Build the supply for an environment reference. The ref's
     * capacitance override (or the registered default) and the seed
     * resolve the instance; an unknown name is a fatal configuration
     * error reporting the registered environments.
     */
    std::unique_ptr<arch::PowerSupply> make(const EnvRef &ref,
                                            u64 seed) const;

  private:
    EnvRegistry();

    struct Row
    {
        std::string name;
        EnvMeta meta;
        EnvBuilder build;
    };

    const Row *rowFor(std::string_view name) const;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Row>> rows_;
};

/** Format a capacitance for labels ("100uF", "50mF", "1.5F"). */
std::string formatCapacitance(f64 farads);

} // namespace sonic::env

#endif // SONIC_ENV_ENVIRONMENT_HH
