#include "env/environment.hh"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <utility>

#include "env/traces.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::env
{

// --- EnvRef ---------------------------------------------------------

std::string
formatCapacitance(f64 farads)
{
    std::ostringstream os;
    if (farads >= 1.0)
        os << farads << "F";
    else if (farads >= 1e-3)
        os << farads * 1e3 << "mF";
    else if (farads >= 1e-6)
        os << farads * 1e6 << "uF";
    else
        os << farads * 1e9 << "nF";
    return os.str();
}

std::string
EnvRef::label() const
{
    if (capacitanceFarads <= 0.0)
        return env;
    return env + "@" + formatCapacitance(capacitanceFarads);
}

bool
parseEnvRef(const std::string &text, EnvRef *out, std::string *error)
{
    const auto at = text.find('@');
    out->env = text.substr(0, at);
    out->capacitanceFarads = 0.0;
    if (out->env.empty()) {
        *error = "environment reference '" + text
               + "' has an empty name";
        return false;
    }
    if (at == std::string::npos)
        return true;

    const std::string cap = text.substr(at + 1);
    std::size_t used = 0;
    f64 value = 0.0;
    try {
        value = std::stod(cap, &used);
    } catch (const std::exception &) {
        *error = "environment reference '" + text
               + "': unparsable capacitance '" + cap + "'";
        return false;
    }
    const std::string unit = cap.substr(used);
    f64 scale = 0.0;
    if (unit == "F")
        scale = 1.0;
    else if (unit == "mF")
        scale = 1e-3;
    else if (unit == "uF")
        scale = 1e-6;
    else if (unit == "nF")
        scale = 1e-9;
    if (scale == 0.0) {
        *error = "environment reference '" + text
               + "': capacitance unit must be F, mF, uF or nF (got '"
               + unit + "')";
        return false;
    }
    if (value <= 0.0) {
        *error = "environment reference '" + text
               + "': capacitance must be positive";
        return false;
    }
    out->capacitanceFarads = value * scale;
    return true;
}

// --- HarvestModel ---------------------------------------------------

HarvestModel::HarvestModel(std::vector<Point> points, f64 period_seconds)
    : points_(std::move(points)), period_(period_seconds)
{
    SONIC_ASSERT(!points_.empty(), "harvest model needs control points");
    SONIC_ASSERT(period_ > 0.0, "harvest model period must be positive");
    SONIC_ASSERT(points_.front().seconds == 0.0,
                 "harvest model must start at t = 0");
    for (u64 i = 0; i < points_.size(); ++i) {
        SONIC_ASSERT(points_[i].watts >= 0.0,
                     "harvest power cannot be negative");
        SONIC_ASSERT(points_[i].seconds < period_,
                     "harvest control point beyond the period");
        if (i > 0)
            SONIC_ASSERT(points_[i].seconds > points_[i - 1].seconds,
                         "harvest control points must be increasing");
    }
    periodJoules_ = 0.0;
    for (u64 i = 0; i < points_.size(); ++i) {
        const f64 dt = segmentEnd(i) - points_[i].seconds;
        periodJoules_ +=
            0.5 * (points_[i].watts + segmentEndWatts(i)) * dt;
    }
    SONIC_ASSERT(periodJoules_ > 0.0,
                 "harvest model must deliver positive energy per "
                 "period — an always-dead environment cannot recharge");
}

HarvestModel
HarvestModel::constant(f64 watts)
{
    SONIC_ASSERT(watts > 0.0, "constant harvest power must be positive");
    return HarvestModel({{0.0, watts}}, 1.0);
}

f64
HarvestModel::segmentEnd(u64 i) const
{
    return i + 1 < points_.size() ? points_[i + 1].seconds : period_;
}

f64
HarvestModel::segmentEndWatts(u64 i) const
{
    // The final segment wraps to the first point's rate at t = period.
    return i + 1 < points_.size() ? points_[i + 1].watts
                                  : points_.front().watts;
}

f64
HarvestModel::watts(f64 t) const
{
    f64 local = std::fmod(t, period_);
    if (local < 0.0)
        local += period_;
    // Last control point at or before `local`.
    u64 i = points_.size() - 1;
    while (i > 0 && points_[i].seconds > local)
        --i;
    const f64 t0 = points_[i].seconds;
    const f64 t1 = segmentEnd(i);
    const f64 w0 = points_[i].watts;
    const f64 w1 = segmentEndWatts(i);
    if (t1 <= t0)
        return w0;
    return w0 + (w1 - w0) * ((local - t0) / (t1 - t0));
}

f64
HarvestModel::energyJoules(f64 t0, f64 dt) const
{
    SONIC_ASSERT(dt >= 0.0);
    // Whole periods first, then march the partial span segment by
    // segment with trapezoids (the rate is linear inside a segment).
    f64 joules = std::floor(dt / period_) * periodJoules_;
    f64 t = t0;
    f64 left = std::fmod(dt, period_);
    while (left > 0.0) {
        f64 local = std::fmod(t, period_);
        if (local < 0.0)
            local += period_;
        u64 i = points_.size() - 1;
        while (i > 0 && points_[i].seconds > local)
            --i;
        const f64 seg_end = segmentEnd(i);
        const f64 step = std::min(left, seg_end - local);
        if (step <= 0.0)
            break; // numeric guard at a segment boundary
        joules += 0.5 * (watts(t) + watts(t + step)) * step;
        t += step;
        left -= step;
    }
    return joules;
}

f64
HarvestModel::secondsToHarvest(f64 t0, f64 joules) const
{
    if (joules <= 0.0)
        return 0.0;
    // Reduce by whole periods so the segment walk below is bounded.
    f64 seconds = 0.0;
    if (joules > periodJoules_) {
        const f64 periods = std::floor(joules / periodJoules_);
        seconds += periods * period_;
        joules -= periods * periodJoules_;
        if (joules <= 0.0)
            return seconds;
    }
    f64 t = t0 + seconds;
    // At most two extra periods of segments cover the remainder (the
    // guard protects against pathological rounding at boundaries).
    const u64 max_steps = 2 * (points_.size() + 1) + 4;
    for (u64 step = 0; step < max_steps; ++step) {
        f64 local = std::fmod(t, period_);
        if (local < 0.0)
            local += period_;
        u64 i = points_.size() - 1;
        while (i > 0 && points_[i].seconds > local)
            --i;
        const f64 seg_end = segmentEnd(i);
        f64 span = seg_end - local;
        if (span <= 0.0)
            span = 0.0;
        const f64 w0 = watts(t);
        const f64 w1 = watts(t + span);
        const f64 seg_joules = 0.5 * (w0 + w1) * span;
        if (seg_joules >= joules && seg_joules > 0.0) {
            // Solve p0*τ + m*τ²/2 = joules inside this segment.
            const f64 m = span > 0.0 ? (w1 - w0) / span : 0.0;
            f64 tau;
            if (std::fabs(m) < 1e-18) {
                tau = joules / w0;
            } else {
                const f64 disc = w0 * w0 + 2.0 * m * joules;
                tau = (std::sqrt(std::max(disc, 0.0)) - w0) / m;
            }
            tau = std::clamp(tau, 0.0, span);
            return seconds + tau;
        }
        joules -= seg_joules;
        seconds += span;
        t += span;
        // Step over zero-width remainders at period boundaries.
        if (span == 0.0) {
            const f64 nudge = period_ * 1e-12;
            seconds += nudge;
            t += nudge;
        }
    }
    // Rounding starved the walk: fall back to the mean rate.
    return seconds + joules / (periodJoules_ / period_);
}

// --- HarvestSupply --------------------------------------------------

HarvestSupply::HarvestSupply(std::string label, HarvestModel model,
                             f64 capacitance_farads, f64 phase_seconds,
                             f64 v_max, f64 v_min)
    : label_(std::move(label)), model_(std::move(model)),
      capacitanceFarads_(capacitance_farads),
      phaseSeconds_(phase_seconds),
      capacityNj_(0.5 * capacitance_farads
                  * (v_max * v_max - v_min * v_min) * 1e9),
      levelNj_(capacityNj_), harvestedNj_(capacityNj_),
      simSeconds_(phase_seconds)
{
    SONIC_ASSERT(capacitance_farads > 0.0);
    SONIC_ASSERT(v_max > v_min && v_min > 0.0);
    SONIC_ASSERT(phase_seconds >= 0.0);
}

bool
HarvestSupply::draw(f64 nj)
{
    SONIC_ASSERT(nj >= 0.0);
    if (levelNj_ >= nj) {
        levelNj_ -= nj;
        ++draws_;
        return true;
    }
    // Brown-out: the residual charge is below the regulator window
    // and is lost (same physics as CapacitorPower).
    levelNj_ = 0.0;
    if (recordFailures_)
        failureIndices_.push_back(draws_);
    ++draws_;
    return false;
}

f64
HarvestSupply::recharge()
{
    const f64 deficit_nj = capacityNj_ - levelNj_;
    const f64 dead =
        model_.secondsToHarvest(simSeconds_, deficit_nj * 1e-9);
    simSeconds_ += dead;
    wrapClock();
    harvestedNj_ += deficit_nj;
    levelNj_ = capacityNj_;
    return dead;
}

void
HarvestSupply::reset()
{
    levelNj_ = capacityNj_;
    harvestedNj_ = capacityNj_;
    simSeconds_ = phaseSeconds_;
    draws_ = 0;
    failureIndices_.clear();
}

std::string
HarvestSupply::describe() const
{
    return label_ + " (" + formatCapacitance(capacitanceFarads_)
         + " capacitor)";
}

// --- EnvRegistry ----------------------------------------------------

EnvRegistry &
EnvRegistry::instance()
{
    static EnvRegistry registry;
    return registry;
}

namespace
{

/** Deterministic deployment phase: where in the environment cycle the
 * device boots. The only thing a seed perturbs. */
f64
seededPhase(const HarvestModel &model, u64 seed)
{
    return Rng(seed).uniform(0.0, model.periodSeconds());
}

} // namespace

EnvRegistry::EnvRegistry()
{
    {
        EnvMeta meta;
        meta.family = "bench";
        meta.description = "wall power, never fails";
        meta.alwaysOn = true;
        add("continuous", meta, [](const EnvInstance &) {
            return std::make_unique<arch::ContinuousPower>();
        });
    }
    {
        EnvMeta meta;
        meta.family = "bench";
        meta.description = "the paper's Powercast RF deployment: "
                           "constant 0.5 mW harvest into the capacitor";
        addHarvest("rf-paper", meta, HarvestModel::constant(0.5e-3));
    }
    {
        EnvMeta meta;
        meta.family = "deployment";
        meta.description =
            "ambient RF bursts: 2 s at 5 mW every minute over a "
            "0.05 mW floor";
        addHarvest("rf-bursty", meta,
                   HarvestModel({{0.0, 5e-3},
                                 {2.0, 5e-3},
                                 {2.5, 0.05e-3},
                                 {59.5, 0.05e-3}},
                                60.0));
    }
    {
        EnvMeta meta;
        meta.family = "deployment";
        meta.description =
            "solar diurnal cycle: dark nights, linear ramps to a "
            "12 mW midday peak";
        addHarvest("solar", meta,
                   HarvestModel({{0.0, 0.0},
                                 {21600.0, 0.0},
                                 {43200.0, 12e-3},
                                 {64800.0, 0.0}},
                                86400.0));
    }
    {
        EnvMeta meta;
        meta.family = "deployment";
        meta.description = "duty-cycled source: 1 s at 10 mW every "
                           "10 s, dead otherwise";
        addHarvest("duty-cycle", meta,
                   HarvestModel({{0.0, 10e-3},
                                 {1.0, 10e-3},
                                 {1.01, 0.0},
                                 {9.99, 0.0}},
                                10.0));
    }
    // Embedded measured-style traces: the playback pipeline is the
    // same one user trace files go through (addTraceFile), so these
    // double as its always-available smoke coverage.
    {
        std::string error;
        HarvestModel office;
        if (!parseTraceCsv(kTraceRfOfficeCsv, &office, &error))
            fatal("embedded trace trace-rf-office is invalid: ", error);
        EnvMeta meta;
        meta.family = "trace";
        meta.description = "embedded office RF power trace (CSV "
                           "playback)";
        addHarvest("trace-rf-office", meta, std::move(office));
    }
    {
        std::string error;
        HarvestModel cloudy;
        if (!parseTraceJson(kTraceSolarCloudyJson, &cloudy, &error))
            fatal("embedded trace trace-solar-cloudy is invalid: ",
                  error);
        EnvMeta meta;
        meta.family = "trace";
        meta.description = "embedded cloudy-day solar power trace "
                           "(JSON playback)";
        addHarvest("trace-solar-cloudy", meta, std::move(cloudy));
    }
}

void
EnvRegistry::add(std::string name, EnvMeta meta, EnvBuilder build)
{
    SONIC_ASSERT(!name.empty(), "environment name must be non-empty");
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &row : rows_)
        SONIC_ASSERT(row->name != name, "environment '", name,
                     "' registered twice");
    auto row = std::make_unique<Row>();
    row->name = std::move(name);
    row->meta = std::move(meta);
    row->build = std::move(build);
    rows_.push_back(std::move(row));
}

void
EnvRegistry::addHarvest(std::string name, EnvMeta meta,
                        HarvestModel model)
{
    const std::string label = name;
    add(std::move(name), std::move(meta),
        [label, model = std::move(model)](const EnvInstance &inst) {
            return std::make_unique<HarvestSupply>(
                label, model, inst.capacitanceFarads,
                seededPhase(model, inst.seed));
        });
}

bool
EnvRegistry::addTraceFile(const std::string &name,
                          const std::string &path, std::string *error)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    HarvestModel model;
    if (!loadTraceFile(path, &model, &err))
        return false;
    if (contains(name)) {
        err = "environment '" + name + "' is already registered";
        return false;
    }
    EnvMeta meta;
    meta.family = "trace";
    meta.description = "power trace playback from " + path;
    addHarvest(name, meta, std::move(model));
    return true;
}

bool
EnvRegistry::contains(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return rowFor(name) != nullptr;
}

const EnvMeta *
EnvRegistry::meta(std::string_view name) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const Row *row = rowFor(name);
    return row != nullptr ? &row->meta : nullptr;
}

std::vector<std::string>
EnvRegistry::names() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(rows_.size());
    for (const auto &row : rows_)
        out.push_back(row->name);
    return out;
}

std::string
EnvRegistry::availableList() const
{
    std::string out;
    for (const auto &name : names()) {
        if (!out.empty())
            out += ", ";
        out += name;
    }
    return out;
}

const EnvRegistry::Row *
EnvRegistry::rowFor(std::string_view name) const
{
    for (const auto &row : rows_)
        if (row->name == name)
            return row.get();
    return nullptr;
}

std::unique_ptr<arch::PowerSupply>
EnvRegistry::make(const EnvRef &ref, u64 seed) const
{
    EnvBuilder build;
    EnvInstance inst;
    inst.seed = seed;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (const Row *row = rowFor(ref.env)) {
            inst.capacitanceFarads = ref.capacitanceFarads > 0.0
                ? ref.capacitanceFarads
                : row->meta.defaultCapacitanceFarads;
            build = row->build;
        }
    }
    if (!build)
        fatal("unknown environment '", ref.env,
              "'; registered environments: ", availableList());
    return build(inst);
}

} // namespace sonic::env
