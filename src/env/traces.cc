#include "env/traces.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <sstream>

namespace sonic::env
{

namespace
{

/**
 * Validate raw trace samples and build the periodic model. Shared by
 * both formats so CSV and JSON traces obey identical rules: at least
 * two samples, strictly increasing timestamps, non-negative power,
 * strictly positive energy over the loop. The last sample closes the
 * loop — it marks the period boundary and playback wraps from it back
 * to the first sample's rate.
 */
bool
samplesToModel(const std::vector<HarvestModel::Point> &samples,
               HarvestModel *out, std::string *error)
{
    if (samples.size() < 2) {
        *error = "trace needs at least 2 samples (got "
               + std::to_string(samples.size()) + ")";
        return false;
    }
    for (u64 i = 0; i < samples.size(); ++i) {
        // Finiteness first, and with !(x >= 0) instead of (x < 0):
        // std::stod happily parses "nan" and "inf", and NaN compares
        // false against everything — `watts < 0.0` waved NaN straight
        // through, and +inf passed outright.
        if (!std::isfinite(samples[i].seconds)) {
            *error = "trace sample " + std::to_string(i)
                   + " has a non-finite timestamp";
            return false;
        }
        if (!std::isfinite(samples[i].watts)) {
            *error = "trace sample " + std::to_string(i)
                   + " has non-finite power";
            return false;
        }
        if (!(samples[i].watts >= 0.0)) {
            *error = "trace sample " + std::to_string(i)
                   + " has negative power";
            return false;
        }
        if (i > 0 && samples[i].seconds <= samples[i - 1].seconds) {
            *error = "trace timestamps must be strictly increasing "
                     "(sample " + std::to_string(i) + ")";
            return false;
        }
    }
    // Normalize to t = 0 and drop the loop-closing sample (the wrap
    // segment interpolates back to the first sample's rate).
    const f64 t0 = samples.front().seconds;
    const f64 period = samples.back().seconds - t0;
    std::vector<HarvestModel::Point> points;
    points.reserve(samples.size() - 1);
    for (u64 i = 0; i + 1 < samples.size(); ++i)
        points.push_back({samples[i].seconds - t0, samples[i].watts});
    // The model's own integral (trapezoids over the kept points, the
    // last segment wrapping to the first point's rate): a trace that
    // delivers zero energy per loop could never recharge a device.
    f64 loop_joules = 0.0;
    for (u64 i = 0; i < points.size(); ++i) {
        const f64 end = i + 1 < points.size() ? points[i + 1].seconds
                                              : period;
        const f64 end_watts = i + 1 < points.size()
            ? points[i + 1].watts
            : points.front().watts;
        loop_joules += 0.5 * (points[i].watts + end_watts)
                     * (end - points[i].seconds);
    }
    if (loop_joules <= 0.0) {
        *error = "trace harvests no energy over its loop — playback "
                 "could never recharge a device";
        return false;
    }
    *out = HarvestModel(std::move(points), period);
    return true;
}

} // namespace

bool
parseTraceCsv(const std::string &text, HarvestModel *out,
              std::string *error)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    std::vector<HarvestModel::Point> samples;
    std::istringstream lines(text);
    std::string line;
    u64 line_no = 0;
    while (std::getline(lines, line)) {
        ++line_no;
        // Trim whitespace; skip blanks and comments.
        u64 begin = 0, end = line.size();
        while (begin < end
               && std::isspace(static_cast<unsigned char>(line[begin])))
            ++begin;
        while (end > begin
               && std::isspace(static_cast<unsigned char>(line[end - 1])))
            --end;
        if (begin == end || line[begin] == '#')
            continue;
        const std::string row = line.substr(begin, end - begin);
        const auto comma = row.find(',');
        if (comma == std::string::npos) {
            err = "trace line " + std::to_string(line_no)
                + ": expected 'seconds,watts' (no comma found)";
            return false;
        }
        // Fields tolerate surrounding whitespace ("10 , 0.5").
        auto trimmed = [](std::string field) {
            u64 b = 0, e = field.size();
            while (b < e && std::isspace(
                       static_cast<unsigned char>(field[b])))
                ++b;
            while (e > b && std::isspace(
                       static_cast<unsigned char>(field[e - 1])))
                --e;
            return field.substr(b, e - b);
        };
        const std::string secs = trimmed(row.substr(0, comma));
        const std::string watts = trimmed(row.substr(comma + 1));
        HarvestModel::Point p;
        try {
            std::size_t used = 0;
            p.seconds = std::stod(secs, &used);
            if (used != secs.size()) {
                err = "trace line " + std::to_string(line_no)
                    + ": unparsable timestamp";
                return false;
            }
            p.watts = std::stod(watts, &used);
            if (used != watts.size()) {
                err = "trace line " + std::to_string(line_no)
                    + ": unparsable power value";
                return false;
            }
        } catch (const std::exception &) {
            err = "trace line " + std::to_string(line_no)
                + ": unparsable number";
            return false;
        }
        // Catch nan/inf here, where the line number is still known —
        // samplesToModel re-checks (for the JSON path) but can only
        // name the sample index.
        if (!std::isfinite(p.seconds)) {
            err = "trace line " + std::to_string(line_no)
                + ": non-finite timestamp";
            return false;
        }
        if (!std::isfinite(p.watts)) {
            err = "trace line " + std::to_string(line_no)
                + ": non-finite power value";
            return false;
        }
        samples.push_back(p);
    }
    return samplesToModel(samples, out, &err);
}

namespace
{

/**
 * A pocket parser for the sonic-trace JSON document. The grammar is
 * tiny (one flat object, string keys, numbers, a nested array of
 * 2-element arrays), so the full model-format parser is not pulled in.
 */
class TraceJsonParser
{
  public:
    TraceJsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(std::string *format, u32 *version,
          std::vector<HarvestModel::Point> *points)
    {
        bool have_points = false;
        skipWs();
        if (!expect('{'))
            return false;
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (!expect(':'))
                return false;
            skipWs();
            if (key == "format") {
                if (!string(format))
                    return false;
            } else if (key == "version") {
                f64 v = 0.0;
                if (!number(&v))
                    return false;
                if (v < 0 || v != static_cast<f64>(static_cast<u32>(v)))
                    return fail("\"version\" is not an unsigned "
                                "integer");
                *version = static_cast<u32>(v);
            } else if (key == "points") {
                if (!pointArray(points))
                    return false;
                have_points = true;
            } else {
                return fail("unknown field \"" + key + "\"");
            }
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (!expect('}'))
                return false;
            break;
        }
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        if (!have_points)
            return fail("missing \"points\" array");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_->empty())
            *error_ = "trace JSON error at byte " + std::to_string(pos_)
                    + ": " + message;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool
    expect(char c)
    {
        if (pos_ >= text_.size() || text_[pos_] != c)
            return fail(std::string("expected '") + c + "'");
        ++pos_;
        return true;
    }

    bool
    string(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected a string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\')
                return fail("escapes are not used in trace documents");
            out->push_back(text_[pos_++]);
        }
        return expect('"');
    }

    bool
    number(f64 *out)
    {
        const u64 start = pos_;
        while (pos_ < text_.size()
               && (std::isdigit(static_cast<unsigned char>(text_[pos_]))
                   || text_[pos_] == '-' || text_[pos_] == '+'
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E'))
            ++pos_;
        const std::string token = text_.substr(start, pos_ - start);
        try {
            std::size_t used = 0;
            *out = std::stod(token, &used);
            if (used != token.size())
                return fail("invalid number");
        } catch (const std::exception &) {
            return fail("invalid number");
        }
        return true;
    }

    bool
    pointArray(std::vector<HarvestModel::Point> *out)
    {
        if (!expect('['))
            return false;
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (!expect('['))
                return false;
            HarvestModel::Point p;
            skipWs();
            if (!number(&p.seconds))
                return false;
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ']')
                return fail("each point must be [seconds, watts]");
            if (!expect(','))
                return false;
            skipWs();
            if (!number(&p.watts))
                return false;
            skipWs();
            if (!expect(']'))
                return fail("each point must be [seconds, watts]");
            out->push_back(p);
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            return expect(']');
        }
    }

    const std::string &text_;
    std::string *error_;
    u64 pos_ = 0;
};

} // namespace

bool
parseTraceJson(const std::string &text, HarvestModel *out,
               std::string *error)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    err.clear();

    std::string format;
    u32 version = 0;
    std::vector<HarvestModel::Point> samples;
    TraceJsonParser parser(text, &err);
    if (!parser.parse(&format, &version, &samples))
        return false;
    if (format != "sonic-trace") {
        err = "not a sonic-trace document (format \"" + format + "\")";
        return false;
    }
    if (version != kTraceFormatVersion) {
        err = "unsupported trace format version "
            + std::to_string(version) + " (this build reads version "
            + std::to_string(kTraceFormatVersion) + ")";
        return false;
    }
    return samplesToModel(samples, out, &err);
}

bool
loadTraceFile(const std::string &path, HarvestModel *out,
              std::string *error)
{
    std::string scratch;
    std::string &err = error != nullptr ? *error : scratch;
    std::ifstream in(path);
    if (!in) {
        err = "cannot read " + path;
        return false;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const bool json = path.size() >= 5
        && path.compare(path.size() - 5, 5, ".json") == 0;
    return json ? parseTraceJson(buffer.str(), out, &err)
                : parseTraceCsv(buffer.str(), out, &err);
}

// --- Embedded traces ------------------------------------------------

/** ~2 minutes of office ambient RF: a noisy 0.2–0.9 mW floor with
 * stronger bursts when the nearby transmitter keys up. */
const char *const kTraceRfOfficeCsv =
    "# embedded office RF harvest trace (seconds,watts)\n"
    "0,0.00040\n"
    "5,0.00025\n"
    "10,0.00055\n"
    "15,0.00090\n"
    "20,0.00035\n"
    "25,0.00020\n"
    "30,0.00240\n"
    "32,0.00260\n"
    "34,0.00045\n"
    "40,0.00030\n"
    "45,0.00065\n"
    "50,0.00085\n"
    "55,0.00040\n"
    "60,0.00022\n"
    "65,0.00050\n"
    "70,0.00180\n"
    "72,0.00210\n"
    "74,0.00055\n"
    "80,0.00035\n"
    "85,0.00070\n"
    "90,0.00090\n"
    "95,0.00045\n"
    "100,0.00028\n"
    "105,0.00060\n"
    "110,0.00080\n"
    "115,0.00050\n"
    "120,0.00040\n";

/** A cloudy day of solar harvest, hourly samples: late dawn, a broken
 * noon plateau with cloud dips, early dusk. */
const char *const kTraceSolarCloudyJson =
    "{\"format\": \"sonic-trace\", \"version\": 1, \"points\": ["
    "[0, 0], [21600, 0], [25200, 0.0008], [28800, 0.0030], "
    "[32400, 0.0055], [36000, 0.0024], [39600, 0.0075], "
    "[43200, 0.0088], [46800, 0.0031], [50400, 0.0066], "
    "[54000, 0.0042], [57600, 0.0021], [61200, 0.0009], "
    "[64800, 0], [86400, 0]]}";

} // namespace sonic::env
