/**
 * @file
 * Sense-infer-transmit pipelines.
 *
 * The paper's motivating deployments (Sec. 2's wildlife camera) never
 * run inference alone: a device samples a sensor, infers, and radios
 * the answer off-device. This subsystem makes that whole loop a
 * first-class, string-registerable workload — a PipelineSpec names
 * which stages surround the inference kernel and how they are costed:
 *
 *  - sense:    acquires the input sample chunk by chunk, charging
 *    Op::SenseSample per element through the normal lease protocol and
 *    journaling a chunk cursor in FRAM, so a brown-out mid-sample
 *    resumes at the next un-acquired chunk;
 *  - infer:    the existing kernels::runInference (SONIC/TAILS/...),
 *    untouched;
 *  - transmit: a radio model with payload-size-proportional draw
 *    (Op::RadioWake / RadioTxByte / RadioRxAck), a bounded
 *    retry/backoff policy, and an idempotent two-phase delivery
 *    boundary in FRAM: "result committed to the TX buffer" and
 *    "result acknowledged" are each a single-word atomic NvVar write,
 *    so a reboot mid-transmission either retries or skips — it can
 *    never double-send or silently drop a result.
 *
 * The round driver (runRound) mirrors task::Scheduler::run: it catches
 * arch::PowerFailure, reboots the device, and resumes from the FRAM
 * journal. All retry/ack randomness is a pure function of (seed, round,
 * attempt), so an attempt interrupted by a brown-out re-executes with
 * the identical outcome and the delivered-results accounting of an
 * intermittent run is bit-identical to the continuous reference — the
 * differential property the oracle's TX-boundary schedules verify.
 */

#ifndef SONIC_PIPELINE_PIPELINE_HH
#define SONIC_PIPELINE_PIPELINE_HH

#include <string>
#include <vector>

#include "arch/device.hh"
#include "dnn/device_net.hh"
#include "kernels/runner.hh"

namespace sonic::pipeline
{

/** Sense-stage configuration (disabled: input is flashed uncharged). */
struct SenseConfig
{
    bool enabled = false;

    /** Elements acquired per journaled chunk (the restart granule). */
    u32 chunkElements = 64;
};

/** Transmit-stage configuration (disabled: the result stays local). */
struct RadioConfig
{
    bool enabled = false;

    /** Bytes of payload per TX attempt (result packets are small). */
    u32 payloadBytes = 4;

    /** Bytes charged per RadioTxByte consume call. */
    u32 chunkBytes = 4;

    /** Total TX attempts before the round gives up on delivery. */
    u32 maxAttempts = 4;

    /** Probability one attempt's acknowledgment is lost. */
    f64 ackLossProbability = 0.0;

    /** Exponential backoff between attempts (wall-clock accounting). */
    f64 backoffSeconds = 0.5;
    f64 backoffMultiplier = 2.0;
};

/** A named sense-infer-transmit pipeline. */
struct PipelineSpec
{
    std::string name;
    std::string description;
    SenseConfig sense;
    RadioConfig radio;

    /** Pure inference, identical to the pre-pipeline execution path. */
    bool inferOnly() const { return !sense.enabled && !radio.enabled; }
};

/**
 * Energy of one complete TX attempt (wake + chunked payload + ACK
 * listen) under a profile, in joules. The analytical benches (Fig. 1/2)
 * use this instead of hand-rolled send-energy constants.
 */
f64 attemptEnergyJ(const RadioConfig &radio,
                   const arch::EnergyProfile &profile);

/**
 * The pipeline registry: string-keyed specs, mirroring ImplRegistry /
 * EnvRegistry / ModelZoo. Built-ins registered at static-init time:
 *
 *  - "infer-only":   no sense, no radio (the FleetPlan default);
 *  - "wildlife":     sense + result TX on a lossless link;
 *  - "sense-infer":  sense only;
 *  - "result-tx":    result TX only;
 *  - "lossy-uplink": sense + result TX with 25% ACK loss and retries.
 */
class PipelineRegistry
{
  public:
    static PipelineRegistry &instance();

    /** Register a spec; duplicate names are fatal. */
    void add(PipelineSpec spec);

    bool contains(const std::string &name) const;

    /** Lookup by name; unknown names are fatal. */
    const PipelineSpec &get(const std::string &name) const;

    /** Registered names, registration order. */
    std::vector<std::string> names() const;

    /** One-per-line "name - description" list (CLI help). */
    std::string availableList() const;

  private:
    PipelineRegistry();

    std::vector<PipelineSpec> specs_;
};

/**
 * What one pipeline round observed (the fleet/oracle surface).
 *
 * The struct is cache-serializable: every field is either a scalar or
 * reducible to one through logitsDigest(), so the fleet round cache
 * (src/fleet/round_cache.hh) can store an outcome as a flat
 * clock-independent trace and replay it for every device that shares
 * the same (net, impl, pipeline, capacitor, input) coordinate.
 */
struct RoundOutcome
{
    /** The round ran to the end of its stage list. */
    bool completed = false;

    /** The driver or kernel stopped making progress (DNF). */
    bool nonTerminating = false;

    /** The result was acknowledged by the uplink. */
    bool delivered = false;

    /** The radio exhausted maxAttempts without an acknowledgment. */
    bool txGaveUp = false;

    u64 reboots = 0;

    /** Completed TX attempts, including the acknowledged one. */
    u32 txAttempts = 0;

    /** Completed TX attempts that ended without an acknowledgment. */
    u32 txFailedAttempts = 0;

    /** Wall-clock spent in retry backoff (not device live time). */
    f64 backoffSeconds = 0.0;

    std::vector<i16> logits;

    /** argmax of the logits; -1 until inference commits. */
    i16 resultClass = -1;

    /**
     * FNV-1a digest of the logits (and their count): the scalar stand-
     * in the round cache stores and cross-checks instead of the vector.
     */
    u64 logitsDigest() const;
};

/**
 * True when the round outcome cannot depend on (seed, round index):
 * the radio is off, or the ACK-loss draw is degenerate (p <= 0 always
 * acknowledges, p >= 1 never does). This is the soundness gate for
 * sharing one memoized round trace across devices with different
 * seeds — a genuinely lossy link re-randomizes per round and must run
 * unmemoized.
 */
inline bool
ackInvariant(const PipelineSpec &spec)
{
    return !spec.radio.enabled || spec.radio.ackLossProbability <= 0.0
        || spec.radio.ackLossProbability >= 1.0;
}

/** Driver knobs (defaults mirror task::SchedulerConfig). */
struct RoundLimits
{
    /** Consecutive driver-level failures without journal progress. */
    u64 maxFailuresWithoutProgress = 48;
};

/**
 * Run one sense-infer-transmit round on a freshly prepared device.
 * `input` is the quantized Q7.8 sample in device order; `seed` and
 * `round_index` parameterize the deterministic ACK-loss draw. The
 * caller owns device/power lifetime; the journal NvVars live only for
 * the duration of the call. PowerFailure never escapes.
 */
RoundOutcome runRound(dnn::DeviceNetwork &net, kernels::Impl impl,
                      const std::vector<i16> &input,
                      const PipelineSpec &spec, u64 seed,
                      u64 round_index, const RoundLimits &limits = {});

/** The delivery boundaries a TX-boundary observer can see. */
enum class TxBoundary : u8
{
    ResultCommit,   ///< just before the committed-class NvVar write
    AttemptAdvance, ///< just before the failed-attempt-count write
    AckCommit       ///< just before the acknowledged-flag write
};

/**
 * Observer invoked immediately before each delivery-boundary NvVar
 * write, on the same thread as the run — the pipeline analogue of
 * task::CommitObserver. The oracle installs a recorder here to aim
 * commit-targeted schedules at the new atomicity surface.
 */
class TxBoundaryObserver
{
  public:
    virtual ~TxBoundaryObserver() = default;
    virtual void onBoundary(arch::Device &dev, TxBoundary boundary) = 0;
};

/** Install a thread-local observer; returns the previous one. */
TxBoundaryObserver *setThreadTxBoundaryObserver(TxBoundaryObserver *obs);

} // namespace sonic::pipeline

#endif // SONIC_PIPELINE_PIPELINE_HH
