#include "pipeline/pipeline.hh"

#include <algorithm>
#include <cmath>

#include "arch/memory.hh"
#include "util/logging.hh"
#include "util/rng.hh"

namespace sonic::pipeline
{

namespace
{

thread_local TxBoundaryObserver *tTxObserver = nullptr;

void
notifyBoundary(arch::Device &dev, TxBoundary boundary)
{
    if (tTxObserver != nullptr)
        tTxObserver->onBoundary(dev, boundary);
    if (auto *p = dev.probe())
        p->onInstant(dev, arch::ProbeInstant::TxBoundary,
                     static_cast<u32>(boundary));
}

/**
 * Emits a span-begin now and the matching end on scope exit, so a
 * PowerFailure unwinding out of a stage still leaves balanced spans
 * (the re-executed stage opens a fresh one).
 */
class SpanGuard
{
  public:
    SpanGuard(arch::Device &dev, arch::ProbeSpan span, u32 arg)
        : dev_(dev), span_(span), arg_(arg)
    {
        if (auto *p = dev_.probe())
            p->onSpanBegin(dev_, span_, arg_);
    }

    ~SpanGuard()
    {
        if (auto *p = dev_.probe())
            p->onSpanEnd(dev_, span_, arg_, dev_.consumedJoules());
    }

    SpanGuard(const SpanGuard &) = delete;
    SpanGuard &operator=(const SpanGuard &) = delete;

  private:
    arch::Device &dev_;
    arch::ProbeSpan span_;
    u32 arg_;
};

/**
 * The per-round FRAM journal. Constructed fresh for each round (a
 * round is one delivered sample, the natural idempotence unit); every
 * member is a single word, so each write is all-or-nothing under the
 * NvVar charge-before-assign contract.
 */
struct Journal
{
    explicit Journal(arch::Device &dev)
        : senseIdx(dev, "pipe.senseIdx", 0),
          inferStarted(dev, "pipe.inferStarted", 0),
          committed(dev, "pipe.committed", -1),
          acked(dev, "pipe.acked", 0),
          attempts(dev, "pipe.attempts", 0)
    {
    }

    arch::NvVar<i16> senseIdx;     ///< next un-acquired sense chunk
    arch::NvVar<i16> inferStarted; ///< inference may have clobbered acts
    arch::NvVar<i16> committed;    ///< -1, or the class in the TX buffer
    arch::NvVar<i16> acked;        ///< 1 once the uplink acknowledged
    arch::NvVar<i16> attempts;     ///< completed un-acknowledged attempts
};

/** Uncharged digest of the journal, the driver's progress measure. */
u64
journalProgress(const Journal &j)
{
    u64 h = mix64(static_cast<u64>(static_cast<u16>(j.senseIdx.peek())));
    h = mix64(h ^ static_cast<u16>(j.inferStarted.peek()));
    h = mix64(h ^ static_cast<u16>(j.committed.peek()));
    h = mix64(h ^ static_cast<u16>(j.acked.peek()));
    h = mix64(h ^ static_cast<u16>(j.attempts.peek()));
    return h;
}

/**
 * Whether attempt `attempt` of round `round_index` is acknowledged — a
 * pure function of its coordinates, so an attempt interrupted by a
 * brown-out re-executes with the identical outcome and delivery
 * accounting matches the continuous reference exactly.
 */
bool
ackArrives(const RadioConfig &radio, u64 seed, u64 round_index,
           u32 attempt)
{
    if (radio.ackLossProbability <= 0.0)
        return true;
    if (radio.ackLossProbability >= 1.0)
        return false;
    const u64 h =
        mix64(mix64(seed ^ 0xacced5a1u) ^
              (round_index * 0x9e3779b97f4a7c15ull) ^ attempt);
    const f64 u = static_cast<f64>(h >> 11) * 0x1.0p-53;
    return u >= radio.ackLossProbability;
}

i16
argmaxClass(const std::vector<i16> &logits)
{
    SONIC_ASSERT(!logits.empty(), "argmax of empty logits");
    u32 best = 0;
    for (u32 i = 1; i < logits.size(); ++i)
        if (logits[i] > logits[best])
            best = i;
    return static_cast<i16>(best);
}

/**
 * Acquire the input sample chunk by chunk. Each chunk charges
 * Op::SenseSample per element, lands in the kernel's input activation
 * buffer via an all-or-nothing writeRange, and then advances the
 * journaled cursor — so a brown-out mid-sample resumes at the first
 * un-acquired chunk instead of restarting the whole sample.
 */
void
senseStage(dnn::DeviceNetwork &net, Journal &j,
           const std::vector<i16> &input, const SenseConfig &sense,
           u16 layer)
{
    arch::Device &dev = net.dev();
    arch::ScopedLayer attribution(dev, layer);
    SpanGuard span(dev, arch::ProbeSpan::Sense, 0);
    arch::NvArray<i16> &buf = net.act(net.inputBufferOf(0));
    const u64 total = input.size();
    const u64 chunk = std::max<u32>(1, sense.chunkElements);
    const u64 chunks = (total + chunk - 1) / chunk;
    for (;;) {
        const u64 idx = static_cast<u16>(j.senseIdx.read());
        if (idx >= chunks)
            return;
        const u64 base = idx * chunk;
        const u64 n = std::min(chunk, total - base);
        dev.consume(arch::Op::SenseSample, n);
        buf.writeRange(base, n, input.data() + base);
        j.senseIdx.write(static_cast<i16>(idx + 1));
    }
}

/**
 * Transmit the committed result until acknowledged or out of attempts.
 * One attempt = wake, chunked payload bytes, ACK listen; only the
 * journal writes after a completed attempt (acked / attempts) are
 * delivery-visible, so a brown-out anywhere inside an attempt simply
 * re-executes it with the same deterministic outcome.
 */
void
transmitStage(arch::Device &dev, Journal &j, const RadioConfig &radio,
              u64 seed, u64 round_index, RoundOutcome &out, u16 layer)
{
    arch::ScopedLayer attribution(dev, layer);
    SpanGuard span(dev, arch::ProbeSpan::Transmit, 0);
    for (;;) {
        if (j.acked.read() != 0)
            return;
        const u32 a = static_cast<u16>(j.attempts.read());
        if (a >= radio.maxAttempts) {
            out.txGaveUp = true;
            return;
        }
        dev.consume(arch::Op::RadioWake);
        const u32 chunk = std::max<u32>(1, radio.chunkBytes);
        for (u32 sent = 0; sent < radio.payloadBytes;) {
            const u32 n = std::min(chunk, radio.payloadBytes - sent);
            dev.consume(arch::Op::RadioTxByte, n);
            sent += n;
        }
        dev.consume(arch::Op::RadioRxAck);
        if (ackArrives(radio, seed, round_index, a)) {
            notifyBoundary(dev, TxBoundary::AckCommit);
            if (auto *p = dev.probe())
                p->onInstant(dev, arch::ProbeInstant::AckDelivered, a);
            j.acked.write(1);
        } else {
            notifyBoundary(dev, TxBoundary::AttemptAdvance);
            j.attempts.write(static_cast<i16>(a + 1));
            out.backoffSeconds +=
                radio.backoffSeconds *
                std::pow(radio.backoffMultiplier, static_cast<f64>(a));
        }
    }
}

} // namespace

u64
RoundOutcome::logitsDigest() const
{
    // FNV-1a over the element count and the raw i16 values: the flat
    // scalar the fleet round cache stores and cross-checks.
    u64 h = 0xcbf29ce484222325ull;
    const auto fold = [&h](u64 v) {
        for (u32 byte = 0; byte < 8; ++byte) {
            h ^= (v >> (byte * 8)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    fold(logits.size());
    for (const i16 v : logits)
        fold(static_cast<u64>(static_cast<u16>(v)));
    return h;
}

TxBoundaryObserver *
setThreadTxBoundaryObserver(TxBoundaryObserver *obs)
{
    TxBoundaryObserver *previous = tTxObserver;
    tTxObserver = obs;
    return previous;
}

f64
attemptEnergyJ(const RadioConfig &radio, const arch::EnergyProfile &profile)
{
    f64 nj = profile.nanojoules(arch::Op::RadioWake) +
             profile.nanojoules(arch::Op::RadioRxAck) +
             static_cast<f64>(radio.payloadBytes) *
                 profile.nanojoules(arch::Op::RadioTxByte);
    return nj * 1e-9;
}

RoundOutcome
runRound(dnn::DeviceNetwork &net, kernels::Impl impl,
         const std::vector<i16> &input, const PipelineSpec &spec,
         u64 seed, u64 round_index, const RoundLimits &limits)
{
    arch::Device &dev = net.dev();
    RoundOutcome out;
    SpanGuard round_span(dev, arch::ProbeSpan::Round,
                         static_cast<u32>(round_index));

    // A bare-inference pipeline is exactly the pre-pipeline execution
    // path: no journal, no extra charged ops.
    if (spec.inferOnly()) {
        net.loadInput(input);
        const auto run = kernels::runInference(net, impl);
        out.completed = run.completed;
        out.nonTerminating = run.nonTerminating;
        out.reboots = run.reboots;
        out.logits = run.logits;
        if (run.completed)
            out.resultClass = argmaxClass(run.logits);
        return out;
    }

    const u16 senseLayer = dev.registerLayer("sense");
    const u16 radioLayer = dev.registerLayer("radio");
    Journal j(dev);

    u64 fails_since_progress = 0;
    bool restart_phase_a = false;
    for (;;) {
        const u64 progress_before = journalProgress(j);
        try {
            if (j.committed.read() < 0) {
                if (restart_phase_a) {
                    // A failure struck after inference may have begun
                    // but before the result committed: the ping-pong
                    // activation buffers are clobbered, so the only
                    // correct recovery is to re-sense and re-infer
                    // (deterministic, hence the same class).
                    j.senseIdx.write(0);
                    j.inferStarted.write(0);
                    restart_phase_a = false;
                }
                if (spec.sense.enabled)
                    senseStage(net, j, input, spec.sense, senseLayer);
                else
                    net.loadInput(input);
                j.inferStarted.write(1);
                const auto run = kernels::runInference(net, impl);
                out.reboots += run.reboots;
                if (!run.completed) {
                    out.nonTerminating = run.nonTerminating;
                    return out;
                }
                out.logits = run.logits;
                const i16 cls = argmaxClass(run.logits);
                notifyBoundary(dev, TxBoundary::ResultCommit);
                j.committed.write(cls);
            }
            out.resultClass = j.committed.read();
            if (spec.radio.enabled)
                transmitStage(dev, j, spec.radio, seed, round_index,
                              out, radioLayer);
            out.completed = true;
            out.delivered = j.acked.peek() != 0;
            out.txFailedAttempts = static_cast<u16>(j.attempts.peek());
            out.txAttempts =
                out.txFailedAttempts + (out.delivered ? 1u : 0u);
            return out;
        } catch (const arch::PowerFailure &) {
            dev.reboot();
            ++out.reboots;
            if (j.committed.peek() < 0 && j.inferStarted.peek() != 0)
                restart_phase_a = true;
            if (journalProgress(j) != progress_before)
                fails_since_progress = 0;
            else
                ++fails_since_progress;
            if (fails_since_progress > limits.maxFailuresWithoutProgress) {
                out.nonTerminating = true;
                return out;
            }
        }
    }
}

PipelineRegistry &
PipelineRegistry::instance()
{
    static PipelineRegistry registry;
    return registry;
}

PipelineRegistry::PipelineRegistry()
{
    {
        PipelineSpec s;
        s.name = "infer-only";
        s.description = "bare inference, no sense or radio stages";
        add(std::move(s));
    }
    {
        PipelineSpec s;
        s.name = "wildlife";
        s.description =
            "sense a full sample, infer, radio the class on a "
            "lossless link";
        s.sense.enabled = true;
        s.radio.enabled = true;
        s.radio.payloadBytes = 8;
        s.radio.chunkBytes = 4;
        s.radio.maxAttempts = 4;
        add(std::move(s));
    }
    {
        PipelineSpec s;
        s.name = "sense-infer";
        s.description = "sense a full sample and infer; result stays local";
        s.sense.enabled = true;
        add(std::move(s));
    }
    {
        PipelineSpec s;
        s.name = "result-tx";
        s.description = "infer a flashed sample and radio the class";
        s.radio.enabled = true;
        s.radio.payloadBytes = 8;
        s.radio.chunkBytes = 4;
        s.radio.maxAttempts = 4;
        add(std::move(s));
    }
    {
        PipelineSpec s;
        s.name = "lossy-uplink";
        s.description =
            "sense + infer + radio on a lossy link (25% ACK loss, "
            "6 attempts, exponential backoff)";
        s.sense.enabled = true;
        s.radio.enabled = true;
        s.radio.payloadBytes = 8;
        s.radio.chunkBytes = 4;
        s.radio.maxAttempts = 6;
        s.radio.ackLossProbability = 0.25;
        add(std::move(s));
    }
}

void
PipelineRegistry::add(PipelineSpec spec)
{
    SONIC_ASSERT(!spec.name.empty(), "pipeline spec needs a name");
    if (contains(spec.name))
        fatal("duplicate pipeline registration: ", spec.name);
    specs_.push_back(std::move(spec));
}

bool
PipelineRegistry::contains(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return true;
    return false;
}

const PipelineSpec &
PipelineRegistry::get(const std::string &name) const
{
    for (const auto &s : specs_)
        if (s.name == name)
            return s;
    fatal("unknown pipeline '", name, "'; registered:\n", availableList());
}

std::vector<std::string>
PipelineRegistry::names() const
{
    std::vector<std::string> out;
    out.reserve(specs_.size());
    for (const auto &s : specs_)
        out.push_back(s.name);
    return out;
}

std::string
PipelineRegistry::availableList() const
{
    std::string out;
    for (const auto &s : specs_) {
        out += "  ";
        out += s.name;
        out += " - ";
        out += s.description;
        out += "\n";
    }
    return out;
}

} // namespace sonic::pipeline
