#include "util/table.hh"

#include <algorithm>
#include <cmath>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "util/logging.hh"

namespace sonic
{

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    SONIC_ASSERT(!headers_.empty());
}

Table &
Table::row()
{
    SONIC_ASSERT(rows_.empty() || rows_.back().size() == headers_.size(),
                 "previous row incomplete");
    rows_.emplace_back();
    return *this;
}

Table &
Table::cell(const std::string &value)
{
    SONIC_ASSERT(!rows_.empty(), "cell() before row()");
    SONIC_ASSERT(rows_.back().size() < headers_.size(), "row overflow");
    rows_.back().push_back(value);
    return *this;
}

Table &
Table::cell(f64 value, int precision)
{
    return cell(formatFixed(value, precision));
}

Table &
Table::cell(u64 value)
{
    return cell(std::to_string(value));
}

Table &
Table::cell(i64 value)
{
    return cell(std::to_string(value));
}

std::string
Table::str() const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream oss;
    auto emit_row = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            oss << "| " << std::left << std::setw(static_cast<int>(widths[c]))
                << cells[c] << ' ';
        }
        oss << "|\n";
    };
    emit_row(headers_);
    oss << '|';
    for (size_t c = 0; c < headers_.size(); ++c)
        oss << std::string(widths[c] + 2, '-') << '|';
    oss << '\n';
    for (const auto &row : rows_)
        emit_row(row);
    return oss.str();
}

std::string
Table::csv() const
{
    std::ostringstream oss;
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                oss << ',';
            oss << cells[c];
        }
        oss << '\n';
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
    return oss.str();
}

void
Table::print(std::ostream &os) const
{
    os << str();
}

std::string
formatFixed(f64 value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatEnergy(f64 joules)
{
    const f64 a = std::fabs(joules);
    if (a >= 1.0)
        return formatFixed(joules, 3) + " J";
    if (a >= 1e-3)
        return formatFixed(joules * 1e3, 3) + " mJ";
    if (a >= 1e-6)
        return formatFixed(joules * 1e6, 3) + " uJ";
    return formatFixed(joules * 1e9, 3) + " nJ";
}

std::string
formatSeconds(f64 seconds)
{
    if (std::fabs(seconds) >= 1.0)
        return formatFixed(seconds, 3) + " s";
    return formatFixed(seconds * 1e3, 3) + " ms";
}

std::string
asciiBar(f64 fraction, u32 width)
{
    fraction = std::clamp(fraction, 0.0, 1.0);
    const u32 filled = static_cast<u32>(std::lround(fraction * width));
    std::string bar(filled, '#');
    bar.append(width - filled, '.');
    return bar;
}

std::string
banner(const std::string &title)
{
    std::string line(title.size() + 4, '=');
    return line + "\n= " + title + " =\n" + line + "\n";
}

} // namespace sonic
