#include "util/json_parse.hh"

#include <cstring>

namespace sonic::jsonp
{

namespace
{

int
hexDigit(char c)
{
    if (c >= '0' && c <= '9')
        return c - '0';
    if (c >= 'a' && c <= 'f')
        return c - 'a' + 10;
    if (c >= 'A' && c <= 'F')
        return c - 'A' + 10;
    return -1;
}

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(JsonValue *out)
    {
        if (!value(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing garbage after the document");
        return true;
    }

  private:
    bool
    fail(const std::string &message)
    {
        if (error_->empty())
            *error_ = "JSON parse error at byte "
                    + std::to_string(pos_) + ": " + message;
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    literal(const char *word, JsonValue value, JsonValue *out)
    {
        const u64 len = std::strlen(word);
        if (text_.compare(pos_, len, word) != 0)
            return fail("invalid token");
        pos_ += len;
        *out = std::move(value);
        return true;
    }

    bool
    value(JsonValue *out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of document");
        const char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            std::string s;
            if (!string(&s))
                return false;
            out->v = std::move(s);
            return true;
        }
        if (c == 't')
            return literal("true", JsonValue{true}, out);
        if (c == 'f')
            return literal("false", JsonValue{false}, out);
        if (c == 'n')
            return literal("null", JsonValue{nullptr}, out);
        return number(out);
    }

    bool
    object(JsonValue *out)
    {
        ++pos_; // '{'
        auto obj = std::make_shared<JsonObject>();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            out->v = std::move(obj);
            return true;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!string(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after object key");
            ++pos_;
            JsonValue member;
            if (!value(&member))
                return false;
            (*obj)[std::move(key)] = std::move(member);
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                out->v = std::move(obj);
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool
    array(JsonValue *out)
    {
        ++pos_; // '['
        auto arr = std::make_shared<JsonArray>();
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            out->v = std::move(arr);
            return true;
        }
        for (;;) {
            JsonValue element;
            if (!value(&element))
                return false;
            arr->push_back(std::move(element));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                out->v = std::move(arr);
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool
    string(std::string *out)
    {
        if (pos_ >= text_.size() || text_[pos_] != '"')
            return fail("expected a string");
        ++pos_;
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    break;
                const char e = text_[pos_++];
                switch (e) {
                  case '"': out->push_back('"'); break;
                  case '\\': out->push_back('\\'); break;
                  case '/': out->push_back('/'); break;
                  case 'n': out->push_back('\n'); break;
                  case 't': out->push_back('\t'); break;
                  case 'r': out->push_back('\r'); break;
                  case 'b': out->push_back('\b'); break;
                  case 'f': out->push_back('\f'); break;
                  case 'u': {
                    if (pos_ + 4 > text_.size())
                        return fail("truncated \\u escape");
                    u32 code = 0;
                    for (u32 i = 0; i < 4; ++i) {
                        const int d = hexDigit(text_[pos_ + i]);
                        if (d < 0)
                            return fail("invalid \\u escape");
                        code = (code << 4) | static_cast<u32>(d);
                    }
                    pos_ += 4;
                    if (code > 0x7f)
                        return fail("non-ASCII \\u escape unsupported");
                    out->push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    return fail("unknown escape");
                }
                continue;
            }
            out->push_back(c);
        }
        return fail("unterminated string");
    }

    bool
    number(JsonValue *out)
    {
        const u64 start = pos_;
        if (pos_ < text_.size()
            && (text_[pos_] == '-' || text_[pos_] == '+'))
            ++pos_;
        bool digits = false;
        while (pos_ < text_.size()
               && ((text_[pos_] >= '0' && text_[pos_] <= '9')
                   || text_[pos_] == '.' || text_[pos_] == 'e'
                   || text_[pos_] == 'E' || text_[pos_] == '-'
                   || text_[pos_] == '+')) {
            if (text_[pos_] >= '0' && text_[pos_] <= '9')
                digits = true;
            ++pos_;
        }
        if (!digits)
            return fail("invalid number");
        const std::string token = text_.substr(start, pos_ - start);
        try {
            std::size_t used = 0;
            out->v = std::stod(token, &used);
            // stod parsing a valid prefix of a malformed token (e.g.
            // "6..2e+-") is not acceptance.
            if (used != token.size())
                return fail("invalid number");
        } catch (const std::exception &) {
            return fail("unparsable number");
        }
        return true;
    }

    const std::string &text_;
    std::string *error_;
    u64 pos_ = 0;
};

} // namespace

bool
parseJson(const std::string &text, JsonValue *out, std::string *error)
{
    JsonParser parser(text, error);
    return parser.parse(out);
}

bool
getString(const JsonObject &obj, const char *key, std::string *out,
          std::string *error, const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.string() == nullptr) {
        *error = ctx + ": missing or non-string field \"" + key + "\"";
        return false;
    }
    *out = *it->second.string();
    return true;
}

bool
getU32(const JsonObject &obj, const char *key, u32 *out,
       std::string *error, const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.number() == nullptr) {
        *error = ctx + ": missing or non-numeric field \"" + key + "\"";
        return false;
    }
    const f64 v = *it->second.number();
    if (v < 0 || v > 4294967295.0
        || v != static_cast<f64>(static_cast<u64>(v))) {
        *error = ctx + ": field \"" + key
               + "\" is not an unsigned integer";
        return false;
    }
    *out = static_cast<u32>(v);
    return true;
}

bool
getU64(const JsonObject &obj, const char *key, u64 *out,
       std::string *error, const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.number() == nullptr) {
        *error = ctx + ": missing or non-numeric field \"" + key + "\"";
        return false;
    }
    const f64 v = *it->second.number();
    // Doubles hold 53 integer bits exactly; seeds beyond that are
    // serialized as strings by the emitters, not numbers.
    if (v < 0 || v > 9007199254740992.0
        || v != static_cast<f64>(static_cast<u64>(v))) {
        *error = ctx + ": field \"" + key
               + "\" is not an unsigned integer";
        return false;
    }
    *out = static_cast<u64>(v);
    return true;
}

bool
getF64(const JsonObject &obj, const char *key, f64 *out,
       std::string *error, const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.number() == nullptr) {
        *error = ctx + ": missing or non-numeric field \"" + key + "\"";
        return false;
    }
    *out = *it->second.number();
    return true;
}

bool
getBool(const JsonObject &obj, const char *key, bool *out,
        std::string *error, const std::string &ctx)
{
    auto it = obj.find(key);
    if (it == obj.end() || it->second.boolean() == nullptr) {
        *error = ctx + ": missing or non-boolean field \"" + key + "\"";
        return false;
    }
    *out = *it->second.boolean();
    return true;
}

} // namespace sonic::jsonp
