/**
 * @file
 * Tiny argument-parsing helpers shared by the CLI binaries
 * (sonic_oracle, sonic_zoo). Header-only.
 */

#ifndef SONIC_UTIL_CLI_HH
#define SONIC_UTIL_CLI_HH

#include <sstream>
#include <string>
#include <vector>

namespace sonic::cli
{

/** Match `--name=value`; on match store the value and return true. */
inline bool
consumeFlag(const std::string &arg, const char *name, std::string *out)
{
    const std::string prefix = std::string(name) + "=";
    if (arg.rfind(prefix, 0) != 0)
        return false;
    *out = arg.substr(prefix.size());
    return true;
}

/** Split a comma-separated list, dropping empty parts. */
inline std::vector<std::string>
splitCsv(const std::string &s)
{
    std::vector<std::string> parts;
    std::istringstream is(s);
    std::string part;
    while (std::getline(is, part, ','))
        if (!part.empty())
            parts.push_back(part);
    return parts;
}

} // namespace sonic::cli

#endif // SONIC_UTIL_CLI_HH
