/**
 * @file
 * Minimal logging and error-reporting helpers in the gem5 spirit:
 * panic() for internal invariant violations, fatal() for user errors,
 * warn()/inform() for status messages. All are header-only.
 */

#ifndef SONIC_UTIL_LOGGING_HH
#define SONIC_UTIL_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace sonic
{

namespace detail
{

/** Format a message from stream-able parts. */
template <typename... Args>
std::string
formatMessage(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << args);
    return oss.str();
}

} // namespace detail

/**
 * Report an internal error that should never happen (a bug in this
 * library) and abort. Mirrors gem5's panic().
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::formatMessage(std::forward<Args>(args)...).c_str());
    std::abort();
}

/**
 * Report an unrecoverable error caused by the caller (bad configuration,
 * invalid argument) and exit. Mirrors gem5's fatal().
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::formatMessage(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Report a suspicious but non-fatal condition. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::formatMessage(std::forward<Args>(args)...).c_str());
}

/** Report normal operating status. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::formatMessage(std::forward<Args>(args)...).c_str());
}

/** Panic unless a library invariant holds. */
#define SONIC_ASSERT(cond, ...)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::sonic::panic("assertion failed: ", #cond, " at ", __FILE__,  \
                           ":", __LINE__, " ", ##__VA_ARGS__);              \
        }                                                                   \
    } while (0)

/**
 * Debug-only variant for per-operation hot paths (charged memory
 * accessors, Device::consume, redo-log entries). Active in Debug
 * builds, compiled out under NDEBUG so Release sweeps don't pay a
 * branch per simulated operation. CI builds both configurations.
 */
#ifdef NDEBUG
#define SONIC_DASSERT(cond, ...)                                            \
    do {                                                                    \
    } while (0)
#else
#define SONIC_DASSERT(cond, ...) SONIC_ASSERT(cond, ##__VA_ARGS__)
#endif

} // namespace sonic

#endif // SONIC_UTIL_LOGGING_HH
