/**
 * @file
 * JSON string escaping shared by everything that emits JSON (the
 * engine's sinks, the model format, reports). One escape table so a
 * fix lands everywhere at once. Header-only.
 */

#ifndef SONIC_UTIL_JSON_HH
#define SONIC_UTIL_JSON_HH

#include <cstdio>
#include <string>

namespace sonic
{

/**
 * Escape a string for embedding in a JSON string literal. Handles
 * quotes, backslashes and all control characters — inputs may be
 * user-supplied (model names, layer names).
 */
inline std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

/** jsonEscape wrapped in quotes: a complete JSON string literal. */
inline std::string
jsonQuote(const std::string &s)
{
    return "\"" + jsonEscape(s) + "\"";
}

} // namespace sonic

#endif // SONIC_UTIL_JSON_HH
