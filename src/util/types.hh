/**
 * @file
 * Fundamental integer/float type aliases used across the project.
 */

#ifndef SONIC_UTIL_TYPES_HH
#define SONIC_UTIL_TYPES_HH

#include <cstddef>
#include <cstdint>

namespace sonic
{

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using f32 = float;
using f64 = double;

} // namespace sonic

#endif // SONIC_UTIL_TYPES_HH
