/**
 * @file
 * The repo's one strict JSON value parser, shared by the model format
 * (dnn/model_io) and the deployment-plan format (plan/plan). Only what
 * those contracts need: objects, arrays, strings (ASCII escapes),
 * numbers, booleans, null. Strict — trailing garbage and malformed
 * tokens are errors, because a serialized artifact is a contract.
 */

#ifndef SONIC_UTIL_JSON_PARSE_HH
#define SONIC_UTIL_JSON_PARSE_HH

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "util/types.hh"

namespace sonic::jsonp
{

struct JsonValue;
using JsonObject = std::map<std::string, JsonValue>;
using JsonArray = std::vector<JsonValue>;

struct JsonValue
{
    std::variant<std::nullptr_t, bool, f64, std::string,
                 std::shared_ptr<JsonArray>, std::shared_ptr<JsonObject>>
        v = nullptr;

    const JsonObject *object() const
    {
        auto p = std::get_if<std::shared_ptr<JsonObject>>(&v);
        return p ? p->get() : nullptr;
    }

    const JsonArray *array() const
    {
        auto p = std::get_if<std::shared_ptr<JsonArray>>(&v);
        return p ? p->get() : nullptr;
    }

    const std::string *string() const
    {
        return std::get_if<std::string>(&v);
    }

    const f64 *number() const { return std::get_if<f64>(&v); }
    const bool *boolean() const { return std::get_if<bool>(&v); }
};

/**
 * Parse one JSON document. Returns false with a byte-positioned
 * diagnostic in *error on any malformed input, including trailing
 * garbage after the document.
 */
bool parseJson(const std::string &text, JsonValue *out,
               std::string *error);

/** @name Typed field access (all set *error naming ctx + key). */
/// @{
bool getString(const JsonObject &obj, const char *key, std::string *out,
               std::string *error, const std::string &ctx);
bool getU32(const JsonObject &obj, const char *key, u32 *out,
            std::string *error, const std::string &ctx);
bool getU64(const JsonObject &obj, const char *key, u64 *out,
            std::string *error, const std::string &ctx);
bool getF64(const JsonObject &obj, const char *key, f64 *out,
            std::string *error, const std::string &ctx);
bool getBool(const JsonObject &obj, const char *key, bool *out,
             std::string *error, const std::string &ctx);
/// @}

} // namespace sonic::jsonp

#endif // SONIC_UTIL_JSON_PARSE_HH
