/**
 * @file
 * Shortest-round-trip floating-point formatting shared by every sink
 * that emits f64 values as text (the CSV sinks, sonic_cat re-emission).
 * One formatter so "lossless" means the same thing everywhere: the
 * emitted digits are the fewest that parse back to the identical bit
 * pattern (std::to_chars general form), so CSV -> parse -> re-emit is
 * a fixed point. Header-only.
 */

#ifndef SONIC_UTIL_FMT_HH
#define SONIC_UTIL_FMT_HH

#include <charconv>
#include <string>

#include "util/types.hh"

namespace sonic
{

/**
 * Format a double with the minimal digit count that round-trips to the
 * exact same f64 (general format: fixed or scientific, whichever is
 * shorter). "86400" not "86400.000000000", "0.1" not
 * "0.100000000000000006".
 */
inline std::string
fmtF64(f64 value)
{
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof buf, value);
    return std::string(buf, res.ptr);
}

} // namespace sonic

#endif // SONIC_UTIL_FMT_HH
