/**
 * @file
 * Opt-in stderr heartbeat for the long-running CLIs (sonic_fleet,
 * sonic_sweep). A monitor thread samples a caller-owned atomic counter
 * about twice a second and rewrites one status line with the current
 * rate and an ETA. Disabled (the default) it constructs to nothing —
 * no thread, no clock reads — so the hot paths never see it.
 */

#ifndef SONIC_UTIL_PROGRESS_HH
#define SONIC_UTIL_PROGRESS_HH

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>

#include "util/types.hh"

namespace sonic::util
{

/**
 * RAII heartbeat: while alive, prints `label: done/total unit/s ETA`
 * to stderr every ~500 ms. The counter is owned by the caller (the
 * work loop bumps it with relaxed stores); the meter only reads it.
 */
class ProgressMeter
{
  public:
    ProgressMeter(const char *label, const char *unit, u64 total,
                  const std::atomic<u64> *done, bool enabled)
        : label_(label), unit_(unit), total_(total), done_(done)
    {
        if (!enabled || done == nullptr)
            return;
        start_ = Clock::now();
        monitor_ = std::thread([this] { loop(); });
    }

    ~ProgressMeter()
    {
        if (!monitor_.joinable())
            return;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            stop_ = true;
        }
        cv_.notify_all();
        monitor_.join();
        report(/*final_line=*/true);
    }

    ProgressMeter(const ProgressMeter &) = delete;
    ProgressMeter &operator=(const ProgressMeter &) = delete;

  private:
    using Clock = std::chrono::steady_clock;

    void
    loop()
    {
        std::unique_lock<std::mutex> lock(mutex_);
        while (!stop_) {
            cv_.wait_for(lock, std::chrono::milliseconds(500));
            if (stop_)
                break;
            report(/*final_line=*/false);
        }
    }

    void
    report(bool final_line)
    {
        const u64 done = done_->load(std::memory_order_relaxed);
        const f64 elapsed =
            std::chrono::duration<f64>(Clock::now() - start_).count();
        const f64 rate = elapsed > 0.0
            ? static_cast<f64>(done) / elapsed
            : 0.0;
        char eta[32] = "?";
        if (rate > 0.0 && done <= total_)
            std::snprintf(eta, sizeof(eta), "%.0fs",
                          static_cast<f64>(total_ - done) / rate);
        // \r keeps it to one updating line; the destructor finishes
        // with \n so following output starts clean.
        std::fprintf(stderr, "\r%s: %llu/%llu %s (%.0f %s/s, ETA %s) ",
                     label_, static_cast<unsigned long long>(done),
                     static_cast<unsigned long long>(total_), unit_,
                     rate, unit_, eta);
        if (final_line)
            std::fprintf(stderr, "\n");
        std::fflush(stderr);
    }

    const char *label_;
    const char *unit_;
    u64 total_;
    const std::atomic<u64> *done_;
    Clock::time_point start_{};
    std::thread monitor_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stop_ = false;
};

} // namespace sonic::util

#endif // SONIC_UTIL_PROGRESS_HH
