/**
 * @file
 * Deterministic pseudo-random number generation (splitmix64 seeding plus
 * xoshiro256** state). Every stochastic quantity in the project — weights,
 * sparsity patterns, synthetic datasets, harvester jitter — derives from a
 * Rng so that experiments are bit-reproducible across runs and platforms.
 */

#ifndef SONIC_UTIL_RNG_HH
#define SONIC_UTIL_RNG_HH

#include <cmath>
#include <string>

#include "util/types.hh"

namespace sonic
{

/**
 * splitmix64 finalizer: the project's standard 64-bit mixer for
 * deriving deterministic per-coordinate seeds (sweep specs, fleet
 * device assignments). Bijective, so distinct inputs cannot collide.
 */
inline u64
mix64(u64 x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

/**
 * FNV-1a over a string: the name-coordinate hash (model names,
 * environment names) folded into seed derivations.
 */
inline u64
fnv1a(const std::string &name)
{
    u64 h = 0xcbf29ce484222325ull;
    for (char c : name) {
        h ^= static_cast<u64>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ull;
    }
    return h;
}

/**
 * Deterministic PRNG. Not cryptographic; chosen for reproducibility and
 * platform independence (no libc rand, no std::random distribution
 * variance across standard libraries).
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed via splitmix64 expansion. */
    explicit Rng(u64 seed = 0x9e3779b97f4a7c15ull)
    {
        u64 x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ull;
            u64 z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value (xoshiro256**). */
    u64
    next()
    {
        const u64 result = rotl(state_[1] * 5, 7) * 9;
        const u64 t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    f64
    uniform()
    {
        return static_cast<f64>(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    f64
    uniform(f64 lo, f64 hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [0, n). Requires n > 0. */
    u64
    below(u64 n)
    {
        return next() % n;
    }

    /** Uniform integer in [lo, hi]. */
    i64
    between(i64 lo, i64 hi)
    {
        return lo + static_cast<i64>(below(static_cast<u64>(hi - lo + 1)));
    }

    /** Standard normal via Box-Muller (deterministic branch). */
    f64
    gaussian()
    {
        if (haveSpare_) {
            haveSpare_ = false;
            return spare_;
        }
        f64 u1 = uniform();
        f64 u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        const f64 r = std::sqrt(-2.0 * std::log(u1));
        const f64 theta = 2.0 * 3.14159265358979323846 * u2;
        spare_ = r * std::sin(theta);
        haveSpare_ = true;
        return r * std::cos(theta);
    }

    /** Gaussian with the given mean and standard deviation. */
    f64
    gaussian(f64 mean, f64 stddev)
    {
        return mean + stddev * gaussian();
    }

    /** Bernoulli draw with probability p of true. */
    bool
    bernoulli(f64 p)
    {
        return uniform() < p;
    }

    /** Derive an independent stream for a named sub-component. */
    Rng
    fork(u64 stream) const
    {
        Rng child(*this);
        // Mix the stream id into every state word so forks diverge.
        for (auto &word : child.state_)
            word ^= (stream + 0x632be59bd9b4e019ull) * 0xd1342543de82ef95ull;
        child.next();
        child.next();
        return child;
    }

  private:
    static u64
    rotl(u64 x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    u64 state_[4] = {};
    bool haveSpare_ = false;
    f64 spare_ = 0.0;
};

} // namespace sonic

#endif // SONIC_UTIL_RNG_HH
