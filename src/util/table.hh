/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * the rows/series corresponding to each figure and table in the paper.
 */

#ifndef SONIC_UTIL_TABLE_HH
#define SONIC_UTIL_TABLE_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sonic
{

/**
 * Column-aligned ASCII table builder. Cells are strings; numeric helpers
 * format with fixed precision so benchmark output is diff-stable.
 */
class Table
{
  public:
    /** Create a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Begin a new row; subsequent cell() calls fill it left to right. */
    Table &row();

    /** Append a string cell to the current row. */
    Table &cell(const std::string &value);

    /** Append a formatted floating-point cell. */
    Table &cell(f64 value, int precision = 3);

    /** Append an integer cell. */
    Table &cell(u64 value);
    Table &cell(i64 value);
    Table &cell(int value) { return cell(static_cast<i64>(value)); }

    /** Render the table with aligned columns. */
    std::string str() const;

    /** Render as CSV (headers + rows). */
    std::string csv() const;

    /** Print the aligned rendering to the stream. */
    void print(std::ostream &os) const;

    /** Number of data rows so far. */
    u64 numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/**
 * RFC 4180 CSV quoting: a field containing a comma, quote or newline
 * is wrapped in quotes with embedded quotes doubled. One
 * implementation for every CSV-emitting sink, so a quoting fix lands
 * everywhere at once (the jsonEscape principle, util/json.hh).
 */
inline std::string
csvQuote(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (char c : s) {
        if (c == '"')
            out.push_back('"');
        out.push_back(c);
    }
    out.push_back('"');
    return out;
}

/** Format a double with the given precision (fixed notation). */
std::string formatFixed(f64 value, int precision = 3);

/** Format a double in engineering style with an SI suffix for Joules. */
std::string formatEnergy(f64 joules);

/** Format seconds with millisecond resolution. */
std::string formatSeconds(f64 seconds);

/** Render a horizontal ASCII bar of the given width fraction. */
std::string asciiBar(f64 fraction, u32 width = 40);

/** Section banner used by the bench binaries. */
std::string banner(const std::string &title);

} // namespace sonic

#endif // SONIC_UTIL_TABLE_HH
