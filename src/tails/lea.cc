#include "tails/lea.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace sonic::tails
{

namespace
{

using arch::Op;

i16
saturate(i64 wide)
{
    constexpr i64 hi = std::numeric_limits<i16>::max();
    constexpr i64 lo = std::numeric_limits<i16>::min();
    return static_cast<i16>(std::clamp(wide, lo, hi));
}

/** Software format shift: load, n single-bit shifts, store. */
void
chargeShift(arch::Device &dev, u32 bits)
{
    dev.consume(Op::SramLoad);
    dev.consume(Op::AluShift, bits);
    dev.consume(Op::SramStore);
}

/** Batched format shift for a whole buffer: count elements, bits
 * single-bit shifts each, charged in three bulk consume calls with
 * totals identical to count chargeShift() calls. TAILS' calibration
 * sizes tiles by total energy, which is unchanged. */
void
chargeShiftBulk(arch::Device &dev, u32 count, u32 bits)
{
    dev.consume(Op::SramLoad, count);
    dev.consume(Op::AluShift, u64{bits} * count);
    dev.consume(Op::SramStore, count);
}

} // namespace

LeaUnit::LeaUnit(arch::Device &dev) : dev_(dev)
{
    dev_.allocSram(kLeaBufferWords * 2, "lea.buffer");
}

LeaUnit::~LeaUnit()
{
    dev_.freeSram(kLeaBufferWords * 2);
}

void
LeaUnit::firDtc(const arch::NvArray<i16> &src, u32 src_base, u32 in_count,
                const std::vector<i16> &coeffs, arch::NvArray<i16> &dst,
                u32 dst_base, u32 out_count,
                const arch::NvArray<i16> *partial, u32 partial_base)
{
    const u32 taps = static_cast<u32>(coeffs.size());
    SONIC_ASSERT(taps >= 1);
    SONIC_ASSERT(in_count >= out_count + taps - 1);
    SONIC_ASSERT(in_count + taps + out_count <= kLeaBufferWords,
                 "FIR tile exceeds the LEA operating buffer");

    // DMA the source window and coefficients into the LEA buffer.
    dev_.consume(Op::DmaWord, in_count + taps);
    // Software pre-shift of the activations (no vector left-shift).
    chargeShiftBulk(dev_, in_count, kPreShiftBits);
    if (partial != nullptr)
        dev_.consume(Op::DmaWord, out_count);

    // One LEA command covers the whole tile.
    dev_.consume(Op::LeaInvoke);
    dev_.consume(Op::LeaMac, u64{out_count} * taps);

    // Software post-shift back to Q7.8 plus the optional partial-sum
    // accumulation, charged in bulk for the tile.
    chargeShiftBulk(dev_, out_count, kPostShiftBits);
    if (partial != nullptr)
        dev_.consume(Op::FixedAdd, out_count);
    for (u32 j = 0; j < out_count; ++j) {
        i64 acc = 0;
        for (u32 k = 0; k < taps; ++k) {
            const i64 a =
                i64{src.peek(src_base + j + k)} << kPreShiftBits;
            acc += a * i64{coeffs[k]};
        }
        acc >>= 15;
        i64 v = acc << kPostShiftBits;
        if (partial != nullptr)
            v += i64{partial->peek(partial_base + j)};
        dst.poke(dst_base + j, saturate(v));
    }
    // DMA results back to FRAM.
    dev_.consume(Op::DmaWord, out_count);
}

i16
LeaUnit::dotProduct(const std::vector<i16> &coeffs,
                    const arch::NvArray<i16> &src, u32 src_base,
                    u32 stride)
{
    const u32 count = static_cast<u32>(coeffs.size());
    SONIC_ASSERT(count >= 1);
    SONIC_ASSERT(2 * count + 2 <= kLeaBufferWords,
                 "dot-product tile exceeds the LEA operating buffer");

    // Coefficients are already staged in SRAM; the strided source pays
    // per-word DMA setup (no stride support).
    dev_.consume(Op::DmaWord, 2 * count);
    chargeShiftBulk(dev_, count, kPreShiftBits);

    dev_.consume(Op::LeaInvoke);
    dev_.consume(Op::LeaMac, count);

    i64 acc = 0;
    for (u32 i = 0; i < count; ++i) {
        const i64 a =
            i64{src.peek(src_base + i * stride)} << kPreShiftBits;
        acc += a * i64{coeffs[i]};
    }
    acc >>= 15;
    chargeShift(dev_, kPostShiftBits);
    return saturate(acc << kPostShiftBits);
}

i16
LeaUnit::dotProductFram(const arch::NvArray<i16> &weights, u64 w_base,
                        const arch::NvArray<i16> &src, u32 src_base,
                        u32 count)
{
    SONIC_ASSERT(count >= 1);
    SONIC_ASSERT(2 * count + 2 <= kLeaBufferWords,
                 "dot-product tile exceeds the LEA operating buffer");

    // Two contiguous DMA bursts.
    dev_.consume(Op::DmaWord, 2 * count);
    chargeShiftBulk(dev_, count, kPreShiftBits);

    dev_.consume(Op::LeaInvoke);
    dev_.consume(Op::LeaMac, count);

    i64 acc = 0;
    for (u32 i = 0; i < count; ++i) {
        const i64 a = i64{src.peek(src_base + i)} << kPreShiftBits;
        acc += a * i64{weights.peek(w_base + i)};
    }
    acc >>= 15;
    chargeShift(dev_, kPostShiftBits);
    return saturate(acc << kPostShiftBits);
}

} // namespace sonic::tails
