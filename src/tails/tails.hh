/**
 * @file
 * TAILS (tile-accelerated intermittent LEA support, paper Sec. 7): the
 * SONIC runtime with LEA/DMA acceleration for the dense compute stages
 * and a one-time, failure-driven calibration of the tile size.
 *
 * Accelerated: 1-D row convolutions (FIR-DTC), 1-D column convolutions
 * and channel mixes (vector dot product — the paper's choice for
 * 1 x p x 1 factored layers), pruned 2-D convolutions (filters
 * densified per row, padded with zeros), dense FC layers (vector MAC).
 *
 * Software (inherited from SONIC): sparse FC layers (no filter reuse —
 * the paper could not accelerate them), the per-channel scale stage
 * (LEA has no scalar multiply), pooling, and relu.
 */

#ifndef SONIC_TAILS_TAILS_HH
#define SONIC_TAILS_TAILS_HH

#include "dnn/device_net.hh"
#include "kernels/runner.hh"

namespace sonic::tails
{

/** Result of the one-time calibration (exposed for tests/benches). */
struct CalibrationInfo
{
    u32 tileWords = 0;  ///< converged tile size
    u64 attempts = 0;   ///< probe executions (1 on continuous power)
};

/** Run one TAILS inference (calibrates on first use per run). */
kernels::RunResult runTails(dnn::DeviceNetwork &net);

/** As runTails, also reporting the calibration outcome. */
kernels::RunResult runTails(dnn::DeviceNetwork &net,
                            CalibrationInfo *calibration);

} // namespace sonic::tails

#endif // SONIC_TAILS_TAILS_HH
