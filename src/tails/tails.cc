#include "tails/tails.hh"

#include <algorithm>
#include <memory>
#include <vector>

#include "arch/memory.hh"
#include "kernels/kernel_util.hh"
#include "kernels/sonic_builder.hh"
#include "tails/lea.hh"
#include "task/runtime.hh"
#include "util/logging.hh"

namespace sonic::tails
{

namespace
{

using arch::Device;
using arch::NvArray;
using arch::NvVar;
using arch::Op;
using arch::Part;
using dnn::DevDenseFc;
using dnn::DeviceNetwork;
using dnn::DevLayer;
using dnn::DevSparseConv;
using dnn::DevSparseVec;
using kernels::addQ;
using kernels::addr1;
using kernels::addr2;
using kernels::divmod;
using kernels::loopStep;
using kernels::mulQ;
using kernels::reluQ;
using task::Runtime;
using task::TaskId;

constexpr u32 kMinTileWords = 16;
constexpr u32 kMaxTileWords = 1800;

/**
 * Charged densification of a sparse tap vector: LEA needs dense
 * coefficients, so zeros are padded in (the paper's "making filters
 * dense"). The dense buffer lives in SRAM for the LEA command.
 */
std::vector<i16>
densify(Device &dev, const DevSparseVec &v, u32 klen)
{
    std::vector<i16> coeffs(klen, 0);
    dev.consume(Op::SramStore, klen);
    for (u32 t = 0; t < v.nnz; ++t) {
        const i16 idx = v.idx->read(t);
        const i16 val = v.val->read(t);
        dev.consume(Op::SramStore);
        coeffs[static_cast<u32>(idx)] = val;
    }
    return coeffs;
}

/** TAILS builder: SONIC with the dense stages re-bound to LEA. */
class TailsBuilder : public kernels::SonicBuilder
{
  public:
    TailsBuilder(DeviceNetwork &net, task::Program &program,
                 kernels::SonicState &st)
        : SonicBuilder(net, program, st), lea_(net.dev()),
          tileWords_(net.dev(), "tails.tileWords", kMaxTileWords),
          calAttempted_(net.dev(), "tails.calAttempted", 0),
          calDone_(net.dev(), "tails.calDone", 0)
    {
    }

    /**
     * Prefix the network entry with the one-time calibration task
     * (Sec. 7.1): try a tile; every re-execution after a power failure
     * halves it; the first tile that completes within one charge cycle
     * is bound for the rest of the run.
     */
    TaskId
    buildWithCalibration()
    {
        const TaskId net_entry = build();
        const TaskId t_cal = prog_.addTask(
            "tails.calibrate", [this, net_entry](Runtime &rt) {
                Device &d = rt.dev();
                d.consume(Op::Branch);
                if (calDone_.read() != 0)
                    return net_entry;
                if (calAttempted_.read() != 0) {
                    const i32 t = tileWords_.read();
                    tileWords_.write(
                        std::max<i32>(kMinTileWords, t / 2));
                }
                calAttempted_.write(1);
                const u32 tile =
                    static_cast<u32>(tileWords_.read());
                rt.progress(tile);
                // Probe: a representative DMA-in / 8-tap FIR /
                // DMA-out round trip over `tile` elements.
                d.consume(Op::DmaWord, tile);
                d.consume(Op::SramLoad, tile);
                d.consume(Op::AluShift,
                          u64{tile} * kPreShiftBits);
                d.consume(Op::SramStore, tile);
                d.consume(Op::LeaInvoke);
                d.consume(Op::LeaMac, u64{tile} * 8);
                d.consume(Op::AluShift,
                          u64{tile} * kPostShiftBits);
                d.consume(Op::DmaWord, tile);
                rt.logWrite(calDone_, 1);
                rt.logWrite(calAttempted_, 0);
                return net_entry;
            });
        return t_cal;
    }

    u32 calibratedTile() const { return static_cast<u32>(
        tileWords_.peek()); }

  protected:
    /** Row (horizontal) 1-D conv: FIR-DTC per output row; column
     * (vertical) 1-D conv and channel mix: dot product per output.
     * Results go straight to scratch(2) — FIR covers all taps in one
     * command, so no loop-ordered double buffer is needed. */
    TaskId
    buildConv1d(const DevLayer &layer, const DevSparseVec &taps,
                NvArray<i16> *src, u32 src_base, u32 in_w, u32 out_h,
                u32 out_w, bool vertical, TaskId next) override
    {
        // Column (vertical) 1-D convs use LEA's dot product (the
        // paper's choice for 1 x p x 1 factored layers); row convs use
        // FIR-DTC.
        if (vertical) {
            const u32 klen = layer.in.h - out_h + 1;
            return dotStage(layer, taps, klen, src, src_base, in_w,
                            in_w, out_h, out_w, next);
        }
        const u16 stat = layer.statLayer;
        const DevSparseVec *tp = &taps;
        const u32 klen = in_w - out_w + 1;
        const TaskId fin = copyStage(layer, out_h * out_w, next);
        const TaskId t_fir = prog_.addTask(
            layer.name + ".lea.fir",
            [this, stat, tp, src, src_base, in_w, out_h, out_w, klen,
             fin](Runtime &rt) -> TaskId {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                auto coeffs = densify(d, *tp, klen);
                u32 y = static_cast<u32>(st_.y.read());
                while (y < out_h) {
                    d.setPart(Part::Kernel);
                    lea_.firDtc(*src, src_base + y * in_w, in_w,
                                coeffs, net_.scratch(0), y * out_w,
                                out_w, nullptr, 0);
                    d.setPart(Part::Control);
                    st_.y.write(static_cast<i32>(y + 1));
                    rt.progress(y);
                    loopStep(d);
                    ++y;
                }
                rt.logWrite(st_.y, 0);
                return fin;
            });
        const TaskId t_entry = prog_.addTask(
            layer.name + ".lea.fir.entry", [this, t_fir](Runtime &rt) {
                rt.logWrite(st_.y, 0);
                return t_fir;
            });
        return t_entry;
    }

    /** Channel mix: a dot product across channels, stride = plane. */
    TaskId
    buildMix(const DevLayer &layer, const DevSparseVec &mix,
             NvArray<i16> *src, u32 plane, TaskId next) override
    {
        return dotStage(layer, mix, layer.in.c, src, 0, plane, plane,
                        1, plane, next);
    }

    /** Copy scratch(0) into scratch(2) (stage-chaining contract). */
    TaskId
    copyStage(const DevLayer &layer, u32 count, TaskId next)
    {
        const u16 stat = layer.statLayer;
        const TaskId t_copy = prog_.addTask(
            layer.name + ".lea.copy",
            [this, stat, count, next](Runtime &rt) {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                u32 p = static_cast<u32>(st_.x.read());
                d.setPart(Part::Kernel);
                while (p < count) {
                    const i16 v = net_.scratch(0).read(p);
                    net_.scratch(2).write(p, v);
                    {
                        arch::ScopedPart ctl(d, Part::Control);
                        st_.x.write(static_cast<i32>(p + 1));
                    }
                    rt.progress(p);
                    loopStep(d);
                    ++p;
                }
                d.setPart(Part::Control);
                rt.logWrite(st_.x, 0);
                return next;
            });
        return t_copy;
    }

    /**
     * LEA dot-product stage: one vector MAC per output element over a
     * strided source window. Output element (y, x) reads from
     * src_base + y * in_w + x with the given stride.
     */
    TaskId
    dotStage(const DevLayer &layer, const DevSparseVec &taps, u32 klen,
             NvArray<i16> *src, u32 src_base, u32 in_w, u32 stride,
             u32 out_h, u32 out_w, TaskId next)
    {
        const u16 stat = layer.statLayer;
        const DevSparseVec *tp = &taps;
        const TaskId fin = copyStage(layer, out_h * out_w, next);
        const TaskId t_dot = prog_.addTask(
            layer.name + ".lea.dot",
            [this, stat, tp, src, src_base, in_w, stride, klen, out_h,
             out_w, fin](Runtime &rt) -> TaskId {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                auto coeffs = densify(d, *tp, klen);
                u32 y = static_cast<u32>(st_.y.read());
                u32 x = static_cast<u32>(st_.x.read());
                while (y < out_h) {
                    d.setPart(Part::Kernel);
                    while (x < out_w) {
                        addr2(d);
                        const u32 base = src_base + y * in_w + x;
                        const i16 v =
                            lea_.dotProduct(coeffs, *src, base, stride);
                        net_.scratch(0).write(y * out_w + x, v);
                        {
                            arch::ScopedPart ctl(d, Part::Control);
                            st_.x.write(static_cast<i32>(x + 1));
                        }
                        rt.progress((static_cast<u64>(y) << 32) | x);
                        loopStep(d);
                        ++x;
                    }
                    d.setPart(Part::Control);
                    st_.x.write(0);
                    st_.y.write(static_cast<i32>(y + 1));
                    x = 0;
                    ++y;
                }
                rt.logWrite(st_.y, 0);
                return fin;
            });
        const TaskId t_entry = prog_.addTask(
            layer.name + ".lea.dot.entry", [this, t_dot](Runtime &rt) {
                rt.logWrite(st_.y, 0);
                rt.logWrite(st_.x, 0);
                return t_dot;
            });
        return t_entry;
    }

    /**
     * Pruned 2-D conv: filters densified one (ic, ky) row at a time,
     * FIR across the whole (contiguous) input row band — computing
     * some invalid positions as waste — and accumulated across filter
     * rows with loop-ordered buffering (Sec. 7.2).
     */
    TaskId
    buildSparseConv(const DevLayer &layer, const DevSparseConv &op,
                    NvArray<i16> *src, NvArray<i16> *dst, bool relu,
                    TaskId next) override
    {
        const u16 stat = layer.statLayer;
        const DevSparseConv *cp = &op;
        const u32 out_plane = layer.out.h * layer.out.w;
        const u32 in_plane = layer.in.h * layer.in.w;
        const u32 oc_count = layer.out.c;
        const u32 out_w = layer.out.w;
        const u32 out_h = layer.out.h;
        const u32 in_w = layer.in.w;
        const u32 kw = op.kw;

        auto slot_conv = std::make_shared<TaskId>(task::kDone);
        auto slot_next = std::make_shared<TaskId>(task::kDone);

        // Per-channel finalize: identical role to SONIC's.
        const TaskId t_fin = prog_.addTask(
            layer.name + ".lea.spconv.fin",
            [this, stat, cp, dst, relu, out_plane,
             slot_conv](Runtime &rt) {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                const i32 oc = st_.oc.read();
                const i32 first =
                    cp->ocPtr->read(static_cast<u32>(oc));
                const i32 last =
                    cp->ocPtr->read(static_cast<u32>(oc) + 1);
                const bool empty = first == last;
                const i32 b = st_.buf.read();
                NvArray<i16> &result =
                    net_.scratch(1 - static_cast<u32>(b));
                d.consume(Op::AluMul);
                const u32 dst_base =
                    static_cast<u32>(oc) * out_plane;
                u32 p = static_cast<u32>(st_.x.read());
                d.setPart(Part::Kernel);
                while (p < out_plane) {
                    i16 v = empty ? i16{0} : result.read(p);
                    if (relu)
                        v = reluQ(d, v);
                    addr1(d);
                    dst->write(dst_base + p, v);
                    {
                        arch::ScopedPart ctl(d, Part::Control);
                        st_.x.write(static_cast<i32>(p + 1));
                    }
                    rt.progress((static_cast<u64>(oc) << 40) | p);
                    loopStep(d);
                    ++p;
                }
                d.setPart(Part::Control);
                rt.logWrite(st_.oc, oc + 1);
                rt.logWrite(st_.buf, 0);
                rt.logWrite(st_.x, 0);
                return *slot_conv;
            });

        // One task execution = one densified filter row applied by FIR
        // across the input band, accumulated loop-ordered.
        const TaskId t_row = prog_.addTask(
            layer.name + ".lea.spconv",
            [this, stat, cp, src, in_plane, in_w, out_h, out_w,
             out_plane, oc_count, kw, next, t_fin,
             slot_next](Runtime &rt) -> TaskId {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                const i32 oc = st_.oc.read();
                if (oc >= static_cast<i32>(oc_count)) {
                    rt.logWrite(st_.oc, 0);
                    rt.logWrite(st_.tap, 0);
                    return next;
                }
                const i32 first =
                    cp->ocPtr->read(static_cast<u32>(oc));
                const i32 last =
                    cp->ocPtr->read(static_cast<u32>(oc) + 1);
                i32 t = st_.tap.read();
                if (t < first)
                    t = first;
                if (t >= last)
                    return t_fin;

                // Densify the (ic, ky) filter row starting at tap t.
                const i16 ic = cp->tapIc->read(static_cast<u32>(t));
                const i16 ky = cp->tapKy->read(static_cast<u32>(t));
                std::vector<i16> coeffs(kw, 0);
                d.consume(Op::SramStore, kw);
                i32 row_end = t;
                while (row_end < last
                       && cp->tapIc->read(static_cast<u32>(row_end))
                           == ic
                       && cp->tapKy->read(static_cast<u32>(row_end))
                           == ky) {
                    const i16 kx = cp->tapKx->read(
                        static_cast<u32>(row_end));
                    coeffs[static_cast<u32>(kx)] = cp->tapW->read(
                        static_cast<u32>(row_end));
                    d.consume(Op::SramStore);
                    loopStep(d);
                    ++row_end;
                }

                const i32 b = st_.buf.read();
                NvArray<i16> &dest =
                    net_.scratch(static_cast<u32>(b));
                NvArray<i16> &inter =
                    net_.scratch(1 - static_cast<u32>(b));
                const bool accumulate = t > first;

                // FIR row by row over the band (the per-row windows
                // are contiguous; out-of-band columns are wasted work
                // the densification implies).
                d.setPart(Part::Kernel);
                for (u32 oy = 0; oy < out_h; ++oy) {
                    const u32 band = static_cast<u32>(ic) * in_plane
                        + (oy + static_cast<u32>(ky)) * in_w;
                    lea_.firDtc(*src, band, out_w + kw - 1, coeffs,
                                dest, oy * out_w, out_w,
                                accumulate ? &inter : nullptr,
                                oy * out_w);
                }
                d.setPart(Part::Control);
                rt.progress((static_cast<u64>(oc) << 32)
                            | static_cast<u64>(t));
                return *slot_next;
            });

        const TaskId t_next = prog_.addTask(
            layer.name + ".lea.spconv.next",
            [this, cp, slot_conv](Runtime &rt) {
                Device &d = rt.dev();
                const i32 t = st_.tap.read();
                const i32 b = st_.buf.read();
                // Skip to the next filter row (same scan as t_row).
                const i16 ic = cp->tapIc->read(static_cast<u32>(t));
                const i16 ky = cp->tapKy->read(static_cast<u32>(t));
                const i32 oc = st_.oc.read();
                const i32 last =
                    cp->ocPtr->read(static_cast<u32>(oc) + 1);
                i32 row_end = t;
                while (row_end < last
                       && cp->tapIc->read(static_cast<u32>(row_end))
                           == ic
                       && cp->tapKy->read(static_cast<u32>(row_end))
                           == ky) {
                    loopStep(d);
                    ++row_end;
                }
                rt.logWrite(st_.tap, row_end);
                rt.logWrite(st_.buf, 1 - b);
                return *slot_conv;
            });
        *slot_next = t_next;
        *slot_conv = t_row;

        const TaskId t_entry = prog_.addTask(
            layer.name + ".lea.spconv.entry",
            [this, t_row](Runtime &rt) {
                rt.logWrite(st_.oc, 0);
                rt.logWrite(st_.tap, 0);
                rt.logWrite(st_.buf, 0);
                rt.logWrite(st_.y, 0);
                rt.logWrite(st_.x, 0);
                return t_row;
            });
        return t_entry;
    }

    /** Dense FC: per-output-row vector MACs over calibrated chunks;
     * the row's partial sums accumulate in a register and the row
     * result is written once (idempotent under restart). */
    TaskId
    buildDenseFc(const DevLayer &layer, const DevDenseFc &op,
                 NvArray<i16> *src, NvArray<i16> *dst, bool relu,
                 TaskId next) override
    {
        const u16 stat = layer.statLayer;
        const DevDenseFc *fp = &op;
        const u32 m = op.m;
        const u32 n = op.n;

        const TaskId t_fc = prog_.addTask(
            layer.name + ".lea.fc",
            [this, stat, fp, src, dst, relu, m, n, next](Runtime &rt)
                -> TaskId {
                Device &d = rt.dev();
                arch::ScopedLayer al(d, stat);
                const u32 tile = static_cast<u32>(std::min<i32>(
                    tileWords_.read(),
                    static_cast<i32>((kLeaBufferWords - 2) / 2)));
                u32 r = static_cast<u32>(st_.x.read());
                while (r < m) {
                    i16 acc = 0;
                    d.setPart(Part::Kernel);
                    for (u32 c0 = 0; c0 < n; c0 += tile) {
                        const u32 len = std::min(tile, n - c0);
                        addr2(d);
                        const i16 part = lea_.dotProductFram(
                            *fp->w, u64{r} * n + c0, *src, c0, len);
                        acc = addQ(d, acc, part);
                    }
                    if (relu)
                        acc = reluQ(d, acc);
                    dst->write(r, acc);
                    {
                        arch::ScopedPart ctl(d, Part::Control);
                        st_.x.write(static_cast<i32>(r + 1));
                    }
                    rt.progress(r);
                    loopStep(d);
                    ++r;
                    d.setPart(Part::Control);
                }
                rt.logWrite(st_.x, 0);
                return next;
            });
        const TaskId t_entry = prog_.addTask(
            layer.name + ".lea.fc.entry", [this, t_fc](Runtime &rt) {
                rt.logWrite(st_.x, 0);
                return t_fc;
            });
        return t_entry;
    }

    // Sparse FC, scale, mix-free pooling and relu are inherited from
    // SonicBuilder (software), per the paper.

  private:
    LeaUnit lea_;
    NvVar<i32> tileWords_;
    NvVar<i32> calAttempted_;
    NvVar<i32> calDone_;

  public:
    NvVar<i32> &tileVar() { return tileWords_; }
};

} // namespace

kernels::RunResult
runTails(dnn::DeviceNetwork &net, CalibrationInfo *calibration)
{
    Device &dev = net.dev();
    kernels::SonicState state(dev);
    task::Program program;
    TailsBuilder builder(net, program, state);
    const TaskId entry = builder.buildWithCalibration();

    task::SchedulerConfig config;
    config.transitionStyle = task::TransitionStyle::Light;
    task::Scheduler sched(dev, program, config);
    const auto run = sched.run(entry);

    kernels::RunResult result;
    result.completed = run.completed;
    result.nonTerminating = run.nonTerminating;
    result.reboots = run.reboots;
    result.tasksExecuted = run.tasksExecuted;
    if (run.completed)
        result.logits = net.peekLogits();
    result.calibTileWords = builder.calibratedTile();
    if (calibration != nullptr) {
        calibration->tileWords = builder.calibratedTile();
        calibration->attempts = 1;
    }
    return result;
}

kernels::RunResult
runTails(dnn::DeviceNetwork &net)
{
    return runTails(net, nullptr);
}

} // namespace sonic::tails
