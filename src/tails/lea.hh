/**
 * @file
 * Model of the TI Low-Energy Accelerator (LEA) and the DMA engine, as
 * constrained in the paper (Secs. 7 and 10):
 *
 *  - LEA reads only from a small SRAM operating buffer (4 KB), so every
 *    operand tile is DMA'd FRAM -> SRAM and results DMA'd back;
 *  - DMA cannot be overlapped with LEA execution and supports neither
 *    strides nor scatter-gather (strided operands cost one DMA word
 *    each, which is how we charge them);
 *  - LEA has no vector left-shift and no scalar multiply, so fixed-
 *    point renormalization shifts run in software (charged per bit —
 *    the MSP430 has no barrel shifter), and these dominate TAILS'
 *    control time exactly as the paper reports;
 *  - the FIR-DTC accumulates in a wide register and renormalizes by a
 *    fixed >> 15, so TAILS pre-shifts activations left by 3 and
 *    post-shifts results left by 4 in software to land back in Q7.8.
 *
 * All helpers are deterministic and charge energy through the Device,
 * so a TAILS run is bit-reproducible and crash-safe at any op.
 */

#ifndef SONIC_TAILS_LEA_HH
#define SONIC_TAILS_LEA_HH

#include <vector>

#include "arch/device.hh"
#include "arch/memory.hh"
#include "util/types.hh"

namespace sonic::tails
{

/** LEA operating-buffer capacity in 16-bit words (shared in/out). */
constexpr u32 kLeaBufferWords = 1800;

/** Software pre-shift (input) and post-shift (output) bit counts. */
constexpr u32 kPreShiftBits = 3;
constexpr u32 kPostShiftBits = 4;

/**
 * The LEA + DMA pair bound to a device. Stateless between calls apart
 * from energy accounting; all data flows FRAM -> SRAM -> FRAM within
 * one call, so a power failure simply replays the call.
 */
class LeaUnit
{
  public:
    explicit LeaUnit(arch::Device &dev);
    ~LeaUnit();

    LeaUnit(const LeaUnit &) = delete;
    LeaUnit &operator=(const LeaUnit &) = delete;

    /**
     * FIR discrete-time convolution over a contiguous source window.
     * Computes out[j] = sat((sum_k coeffs[k] * in[src_base+j+k]) >> 15)
     * for j in [0, out_count), after software-pre-shifting the inputs.
     * Charges: DMA in (out_count + taps - 1 + taps words), pre-shifts,
     * one invocation, out_count * taps MACs, post-shifts, DMA out.
     *
     * @param accumulate if true, DMAs the partial tile in and adds it
     *        (loop-ordered accumulation across filter rows).
     */
    void firDtc(const arch::NvArray<i16> &src, u32 src_base,
                u32 in_count, const std::vector<i16> &coeffs,
                arch::NvArray<i16> &dst, u32 dst_base, u32 out_count,
                const arch::NvArray<i16> *partial, u32 partial_base);

    /**
     * Vector MAC (dot product) of dense, host-staged coefficients
     * against a strided FRAM source (column convolutions and channel
     * mixes). The stride costs per-word DMA setup (no stride support).
     */
    i16 dotProduct(const std::vector<i16> &coeffs,
                   const arch::NvArray<i16> &src, u32 src_base,
                   u32 stride);

    /**
     * Vector MAC of a contiguous FRAM weight chunk against a
     * contiguous FRAM source chunk (dense FC rows).
     */
    i16 dotProductFram(const arch::NvArray<i16> &weights, u64 w_base,
                       const arch::NvArray<i16> &src, u32 src_base,
                       u32 count);

    arch::Device &dev() { return dev_; }

  private:
    arch::Device &dev_;
};

} // namespace sonic::tails

#endif // SONIC_TAILS_LEA_HH
