/**
 * @file
 * sonic_fleet — the deployment fleet simulator CLI.
 *
 * Runs a fleet of intermittently-powered inference devices across
 * harvested-energy environments and reports per-device and aggregate
 * telemetry:
 *
 *     sonic_fleet --scenario=mixed-1k --summary=fleet_summary.json
 *     sonic_fleet --devices=500 --nets=MNIST,HAR --impls=SONIC,TAILS \
 *                 --envs=solar@1mF,rf-paper@100uF --csv=fleet.csv
 *     sonic_fleet --trace=my-site=site_power.csv --envs=my-site@1mF \
 *                 --devices=50
 *     sonic_fleet --from-plan=plan.json --summary=planned.json
 *
 * --from-plan replays a sonic_plan artifact: the plan carries its own
 * scenario (axes, seed, horizon) plus the per-coordinate kernel
 * assignment, so the planned deployment rebuilds exactly — no
 * matching flags required. Axis overrides that keep the coordinate
 * set intact (e.g. --devices, --threads) still apply afterwards.
 *
 * --list-envs and --list-scenarios enumerate the registered
 * environments and the named scenarios. The process exits 1 when the
 * fleet completed zero inferences (a deployment that delivers nothing
 * is a failure unless --allow-zero says otherwise), so CI can gate on
 * the exit code alone.
 */

#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "fleet/fleet.hh"
#include "plan/plan.hh"
#include "telemetry/sonicz.hh"
#include "trace/trace.hh"
#include "util/cli.hh"
#include "util/logging.hh"
#include "util/table.hh"

namespace
{

using namespace sonic;
using cli::consumeFlag;
using cli::splitCsv;

/** The worker count runFleet resolves 0 to. */
u32
effectiveThreads(u32 requested)
{
    return requested > 0
        ? requested
        : std::max(1u, std::thread::hardware_concurrency());
}

int
usage()
{
    std::cerr
        << "usage: sonic_fleet [--scenario=NAME]\n"
           "                   [--devices=N] [--nets=A,B,...]\n"
           "                   [--impls=SONIC,TAILS,...]\n"
           "                   [--envs=solar@1mF,rf-paper,...]\n"
           "                   [--pipelines=wildlife,infer-only,...]\n"
           "                   [--horizon=SECONDS]\n"
           "                   [--max-inferences=K] [--threads=T]\n"
           "                   [--seed=S] [--csv=PATH]\n"
           "                   [--json=PATH] [--sonicz=PATH]\n"
           "                   [--summary=PATH]\n"
           "                   [--from-plan=PLAN.json]\n"
           "                   [--trace=NAME=FILE] [--allow-zero]\n"
           "                   [--trace-out=RUN.sonictrace]\n"
           "                   [--trace-every=N] [--progress]\n"
           "                   [--require-delivered]\n"
           "                   [--list-envs] [--list-scenarios]\n"
           "                   [--list-pipelines]\n";
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    fleet::FleetPlan plan;
    fleet::FleetOptions options;
    bool allow_zero = false;
    bool require_delivered = false;
    bool require_cache_hits = false;
    std::string csv_path, json_path, sonicz_path, summary_path;
    std::string trace_out_path;
    std::vector<std::string> trace_args;
    std::string value;

    // Two passes: traces must register and --scenario/--from-plan
    // must resolve before axis overrides apply, whatever the flag
    // order was.
    std::vector<std::string> args(argv + 1, argv + argc);
    try {
        for (const auto &arg : args) {
            if (consumeFlag(arg, "--trace", &value)) {
                trace_args.push_back(value);
            } else if (consumeFlag(arg, "--from-plan", &value)) {
                std::ifstream in(value);
                if (!in) {
                    std::cerr << "cannot read " << value << "\n";
                    return 2;
                }
                std::ostringstream text;
                text << in.rdbuf();
                sonic::plan::Plan deployment;
                std::string error;
                if (!sonic::plan::Plan::fromJson(text.str(),
                                                 &deployment,
                                                 &error)) {
                    std::cerr << "bad plan " << value << ": "
                              << error << "\n";
                    return 2;
                }
                plan = deployment.toFleetPlan();
            } else if (consumeFlag(arg, "--scenario", &value)) {
                bool found = false;
                for (const auto &scenario :
                     fleet::namedScenarios()) {
                    if (scenario.name == value) {
                        plan = scenario.plan;
                        found = true;
                    }
                }
                if (!found) {
                    std::cerr << "unknown scenario '" << value
                              << "' (--list-scenarios)\n";
                    return 2;
                }
            }
        }

        for (const auto &trace : trace_args) {
            const auto eq = trace.find('=');
            if (eq == std::string::npos || eq == 0) {
                std::cerr << "--trace expects NAME=FILE (got '"
                          << trace << "')\n";
                return 2;
            }
            std::string error;
            if (!env::EnvRegistry::instance().addTraceFile(
                    trace.substr(0, eq), trace.substr(eq + 1),
                    &error)) {
                std::cerr << "cannot register trace: " << error
                          << "\n";
                return 2;
            }
        }

        for (const auto &arg : args) {
            if (consumeFlag(arg, "--trace", &value)
                || consumeFlag(arg, "--scenario", &value)
                || consumeFlag(arg, "--from-plan", &value)) {
                continue; // handled above
            } else if (arg == "--list-envs") {
                auto &registry = env::EnvRegistry::instance();
                for (const auto &name : registry.names()) {
                    const auto *meta = registry.meta(name);
                    std::cout
                        << name << " [" << meta->family << "] — "
                        << meta->description << " (default "
                        << env::formatCapacitance(
                               meta->defaultCapacitanceFarads)
                        << ")\n";
                }
                return 0;
            } else if (arg == "--list-scenarios") {
                for (const auto &scenario : fleet::namedScenarios())
                    std::cout << scenario.name << " — "
                              << scenario.description << "\n";
                return 0;
            } else if (arg == "--list-pipelines") {
                std::cout
                    << pipeline::PipelineRegistry::instance()
                           .availableList();
                return 0;
            } else if (consumeFlag(arg, "--devices", &value)) {
                plan.devices = static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--nets", &value)) {
                plan.nets = splitCsv(value);
            } else if (consumeFlag(arg, "--impls", &value)) {
                plan.impls.clear();
                for (const auto &name : splitCsv(value)) {
                    const auto *info =
                        kernels::ImplRegistry::instance().find(name);
                    if (info == nullptr)
                        fatal("unknown implementation '", name, "'");
                    plan.impls.push_back(info->id);
                }
            } else if (consumeFlag(arg, "--envs", &value)) {
                plan.environments.clear();
                for (const auto &label : splitCsv(value)) {
                    env::EnvRef ref;
                    std::string error;
                    if (!env::parseEnvRef(label, &ref, &error))
                        fatal(error);
                    plan.environments.push_back(std::move(ref));
                }
            } else if (consumeFlag(arg, "--pipelines", &value)) {
                plan.pipelines = splitCsv(value);
            } else if (consumeFlag(arg, "--horizon", &value)) {
                plan.horizonSeconds = std::stod(value);
            } else if (consumeFlag(arg, "--max-inferences", &value)) {
                plan.maxInferencesPerDevice =
                    static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--threads", &value)) {
                options.threads =
                    static_cast<u32>(std::stoul(value));
            } else if (consumeFlag(arg, "--seed", &value)) {
                plan.baseSeed = std::stoull(value);
            } else if (consumeFlag(arg, "--trace-out", &value)) {
                trace_out_path = value;
            } else if (consumeFlag(arg, "--trace-every", &value)) {
                plan.traceEvery =
                    static_cast<u32>(std::stoul(value));
            } else if (arg == "--progress") {
                options.progress = true;
            } else if (consumeFlag(arg, "--csv", &value)) {
                csv_path = value;
            } else if (consumeFlag(arg, "--json", &value)) {
                json_path = value;
            } else if (consumeFlag(arg, "--sonicz", &value)) {
                sonicz_path = value;
            } else if (consumeFlag(arg, "--summary", &value)) {
                summary_path = value;
            } else if (arg == "--no-cache") {
                options.useCache = false;
            } else if (arg == "--require-cache-hits") {
                require_cache_hits = true;
            } else if (arg == "--allow-zero") {
                allow_zero = true;
            } else if (arg == "--require-delivered") {
                require_delivered = true;
            } else {
                return usage();
            }
        }
    } catch (const std::exception &) { // bad numeric flag value
        return usage();
    }

    std::vector<fleet::FleetSink *> sinks;
    std::ofstream csv_file;
    fleet::FleetCsvSink csv_sink(csv_file);
    if (!csv_path.empty()) {
        csv_file.open(csv_path);
        if (!csv_file) {
            std::cerr << "cannot write " << csv_path << "\n";
            return 2;
        }
        sinks.push_back(&csv_sink);
    }
    std::ofstream json_file;
    fleet::FleetJsonSink json_sink(json_file);
    if (!json_path.empty()) {
        json_file.open(json_path);
        if (!json_file) {
            std::cerr << "cannot write " << json_path << "\n";
            return 2;
        }
        sinks.push_back(&json_sink);
    }
    std::ofstream sonicz_file;
    std::unique_ptr<telemetry::SoniczFleetSink> sonicz_sink;
    if (!sonicz_path.empty()) {
        sonicz_file.open(sonicz_path, std::ios::binary);
        if (!sonicz_file) {
            std::cerr << "cannot write " << sonicz_path << "\n";
            return 2;
        }
        // Block encoding fans out across the worker count the fleet
        // itself uses; the bytes are identical either way.
        sonicz_sink = std::make_unique<telemetry::SoniczFleetSink>(
            sonicz_file, effectiveThreads(options.threads));
        sinks.push_back(sonicz_sink.get());
    }

    trace::TraceCollector collector;
    if (!trace_out_path.empty()) {
        if (plan.traceEvery == 0)
            plan.traceEvery = 16; // sample 1-in-16 by default
        options.traces = &collector;
    } else if (plan.traceEvery != 0) {
        std::cerr << "--trace-every without --trace-out does "
                     "nothing\n";
    }

    const auto summary = fleet::runFleet(plan, options, sinks);

    if (!trace_out_path.empty()) {
        std::ofstream trace_file(trace_out_path, std::ios::binary);
        if (!trace_file) {
            std::cerr << "cannot write " << trace_out_path << "\n";
            return 2;
        }
        collector.write(trace_file,
                        effectiveThreads(options.threads));
        std::cout << "trace: " << collector.devices() << " devices, "
                  << collector.events() << " events -> "
                  << trace_out_path << "\n";
    }

    // Human-readable deployment report. Cache telemetry goes to
    // stdout only — the JSON artifact must stay byte-identical between
    // memoized and --no-cache runs.
    std::cout << "fleet: " << summary.devices << " devices, "
              << summary.total.inferences << " inferences, "
              << summary.total.resultsDelivered << " delivered, "
              << summary.total.dnfDevices << " DNF devices, "
              << summary.total.reboots << " reboots\n";
    std::cout << "latency p50/p95/p99: " << summary.latencyP50Seconds
              << " / " << summary.latencyP95Seconds << " / "
              << summary.latencyP99Seconds << " s\n";
    if (summary.total.resultsDelivered > 0)
        std::cout << "sense->ack p50/p95/p99: "
                  << summary.deliveryP50Seconds << " / "
                  << summary.deliveryP95Seconds << " / "
                  << summary.deliveryP99Seconds << " s\n";
    Table table({"environment", "devices", "dnf", "inf/dev-day",
                 "reboots/inf", "dead frac", "J/inf"});
    for (const auto &[name, g] : summary.byEnvironment) {
        table.row()
            .cell(name)
            .cell(g.devices)
            .cell(g.dnfDevices)
            .cell(g.inferencesPerDeviceDay(), 3)
            .cell(g.rebootsPerInference(), 2)
            .cell(g.deadFraction(), 4)
            .cell(g.energyPerInferenceJ(), 6);
    }
    table.print(std::cout);
    if (summary.total.txAttempts > 0) {
        Table tx({"pipeline", "devices", "delivered/dev-day",
                  "retries/delivered", "gave-up devs", "radio frac"});
        for (const auto &[name, g] : summary.byPipeline) {
            tx.row()
                .cell(name)
                .cell(g.devices)
                .cell(g.deliveredPerDeviceDay(), 3)
                .cell(g.retriesPerDelivered(), 2)
                .cell(g.txGaveUpDevices)
                .cell(g.radioEnergyFraction(), 4);
        }
        tx.print(std::cout);
    }

    if (!summary_path.empty()) {
        std::ofstream out(summary_path);
        if (!out) {
            std::cerr << "cannot write " << summary_path << "\n";
            return 2;
        }
        out << summary.toJson();
        std::cout << "fleet summary written to " << summary_path
                  << "\n";
    }

    if (options.useCache) {
        std::cout << "round cache: " << summary.cache.roundHits
                  << " hits / " << summary.cache.lookups()
                  << " lookups (hit rate " << summary.cache.hitRate()
                  << "), " << summary.cache.lifetimeHits
                  << " lifetime hits, " << summary.cache.uncachedRounds
                  << " uncached rounds\n";
    }

    if (require_cache_hits
        && (summary.cache.lookups() == 0
            || summary.cache.roundHits + summary.cache.lifetimeHits
                   == 0)) {
        std::cerr << "fleet ran without cache hits — failing "
                     "(--require-cache-hits)\n";
        return 1;
    }
    if (summary.total.inferences == 0 && !allow_zero) {
        std::cerr << "fleet completed zero inferences — failing "
                     "(--allow-zero to override)\n";
        return 1;
    }
    if (require_delivered && summary.total.resultsDelivered == 0) {
        std::cerr << "fleet delivered zero results — failing "
                     "(--require-delivered)\n";
        return 1;
    }
    return 0;
}
