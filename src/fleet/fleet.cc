#include "fleet/fleet.hh"

#include <algorithm>
#include <atomic>
#include <bit>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <typeinfo>

#include "dnn/device_net.hh"
#include "fleet/round_cache.hh"
#include "trace/trace.hh"
#include "util/fmt.hh"
#include "util/progress.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace sonic::fleet
{

// --- FleetPlan ------------------------------------------------------

std::string
FleetPlan::coordinateKey(const std::string &envLabel,
                         const std::string &net,
                         const std::string &pipeline)
{
    return envLabel + "/" + net + "/" + pipeline;
}

void
FleetPlan::validate() const
{
    SONIC_ASSERT(devices > 0, "fleet needs at least one device");
    SONIC_ASSERT(!nets.empty(), "empty fleet net distribution");
    SONIC_ASSERT(!impls.empty(), "empty fleet impl distribution");
    SONIC_ASSERT(!environments.empty(),
                 "empty fleet environment distribution");
    SONIC_ASSERT(horizonSeconds > 0.0,
                 "fleet horizon must be positive");
    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &net : nets) {
        if (!zoo.contains(net))
            fatal("unknown model '", net,
                  "' in the fleet net distribution; registered "
                  "models: ",
                  zoo.availableList());
    }
    auto &registry = env::EnvRegistry::instance();
    for (const auto &ref : environments) {
        if (ref.empty() || !registry.contains(ref.env))
            fatal("unknown environment '", ref.env,
                  "' in the fleet environment distribution; "
                  "registered environments: ",
                  registry.availableList());
    }
    for (const auto impl : impls) {
        if (kernels::ImplRegistry::instance().find(impl) == nullptr)
            fatal("unregistered implementation id in the fleet impl "
                  "distribution");
    }
    SONIC_ASSERT(!pipelines.empty(),
                 "empty fleet pipeline distribution");
    auto &pipes = pipeline::PipelineRegistry::instance();
    for (const auto &name : pipelines) {
        if (!pipes.contains(name))
            fatal("unknown pipeline '", name,
                  "' in the fleet pipeline distribution; registered "
                  "pipelines:\n",
                  pipes.availableList());
    }

    if (implByCoordinate.empty())
        return;
    // A planned assignment must name a kernel from `impls` for EVERY
    // coordinate a device can land on — a partial plan would silently
    // fall back to hash-dealt kernels for the holes.
    u64 covered = 0;
    for (const auto &env : environments) {
        for (const auto &net : nets) {
            for (const auto &pipe : pipelines) {
                const auto key = coordinateKey(env.label(), net, pipe);
                const auto it = implByCoordinate.find(key);
                if (it == implByCoordinate.end())
                    fatal("planned assignment covers no coordinate '",
                          key, "' (the plan must assign a kernel to "
                          "every environment x net x pipeline cell)");
                if (std::find(impls.begin(), impls.end(), it->second)
                    == impls.end())
                    fatal("planned assignment at '", key,
                          "' names a kernel outside the plan's impl "
                          "distribution");
                ++covered;
            }
        }
    }
    if (covered != implByCoordinate.size())
        fatal("planned assignment has ",
              implByCoordinate.size() - covered,
              " coordinate(s) no device can land on (stale plan for "
              "a different scenario?)");
}

DeviceAssignment
FleetPlan::assignmentFor(u32 device_index) const
{
    // A pure function of (baseSeed, deviceIndex) and the distribution
    // lists: device 17 is the same deployment no matter how many
    // threads race over the fleet or which worker picks it up.
    const u64 h = mix64(mix64(baseSeed) ^ (0xf1ee7u + device_index));
    DeviceAssignment a;
    a.deviceIndex = device_index;
    a.netIndex = static_cast<u32>(mix64(h ^ 1) % nets.size());
    a.net = nets[a.netIndex];
    a.implIndex = static_cast<u32>(mix64(h ^ 2) % impls.size());
    a.impl = impls[a.implIndex];
    a.envIndex = static_cast<u32>(mix64(h ^ 3) % environments.size());
    a.environment = environments[a.envIndex];
    a.seed = mix64(h ^ 4);
    // h^5 keeps the net/impl/env/seed deals of pre-pipeline plans
    // byte-identical: a single-pipeline plan is the same fleet as
    // before, just with a named execution loop.
    a.pipelineIndex = static_cast<u32>(mix64(h ^ 5) % pipelines.size());
    a.pipeline = pipelines[a.pipelineIndex];

    // A planned assignment overrides ONLY the kernel deal: the impl
    // lane (h^2) is independent of the env/net/pipeline/seed lanes, so
    // the devices landing on each coordinate — and their seeds — are
    // identical to the hash-dealt fleet's. That is the separability
    // the planner's beats-every-baseline guarantee rests on.
    if (!implByCoordinate.empty()) {
        const auto it = implByCoordinate.find(coordinateKey(
            a.environment.label(), a.net, a.pipeline));
        SONIC_ASSERT(it != implByCoordinate.end(),
                     "planned assignment misses a coordinate "
                     "(validate() was skipped?)");
        const auto impl_pos =
            std::find(impls.begin(), impls.end(), it->second);
        SONIC_ASSERT(impl_pos != impls.end(),
                     "planned kernel outside the impl distribution");
        a.implIndex =
            static_cast<u32>(impl_pos - impls.begin());
        a.impl = *impl_pos;
    }
    return a;
}

// --- Device lifetime ------------------------------------------------

namespace
{

/** Execution context threaded through the memoizing device loop; all
 * pointers may be null (plain unmemoized simulation). */
struct SimContext
{
    RoundCache *roundCache = nullptr;
    LifetimeCache *lifetimeCache = nullptr;
    std::atomic<u64> *uncachedRounds = nullptr;
    bool verify = false;
    /** Event recorder when this device is trace-sampled; forces fully
     * unmemoized execution so cache state is untouched. */
    trace::TraceRecorder *recorder = nullptr;
};

/** A real round's full result: the clock-independent trace plus the
 * clock-dependent dead time it observed. */
struct RoundRun
{
    RoundTrace trace;
    f64 deadSeconds = 0.0;
};

void
verifyTracesMatch(const RoundTrace &cached, const RoundTrace &fresh,
                  const DeviceAssignment &a, u32 round_index)
{
    const auto die = [&](const char *field) {
        fatal("fleet round-cache divergence on '", field, "': device ",
              a.deviceIndex, " (", a.net, " / ",
              kernels::implName(a.impl), " / ",
              a.environment.label(), " / ", a.pipeline, "), round ",
              round_index,
              " — the memoized trace does not match re-execution");
    };
    if (cached.nvmDigest != fresh.nvmDigest)
        die("nvmDigest");
    if (cached.logitsDigest != fresh.logitsDigest)
        die("logitsDigest");
    if (cached.liveSeconds != fresh.liveSeconds)
        die("liveSeconds");
    if (cached.energyJ != fresh.energyJ)
        die("energyJ");
    if (cached.senseEnergyJ != fresh.senseEnergyJ)
        die("senseEnergyJ");
    if (cached.radioEnergyJ != fresh.radioEnergyJ)
        die("radioEnergyJ");
    if (cached.backoffSeconds != fresh.backoffSeconds)
        die("backoffSeconds");
    if (cached.endLevelNj != fresh.endLevelNj)
        die("endLevelNj");
    if (cached.reboots != fresh.reboots)
        die("reboots");
    if (cached.txAttempts != fresh.txAttempts
        || cached.txFailedAttempts != fresh.txFailedAttempts)
        die("txAccounting");
    if (cached.completed != fresh.completed
        || cached.nonTerminating != fresh.nonTerminating
        || cached.delivered != fresh.delivered
        || cached.txGaveUp != fresh.txGaveUp)
        die("flags");
    if (cached.liveDeltas != fresh.liveDeltas)
        die("liveDeltas");
}

void
verifyLifetimesMatch(const DeviceTelemetry &cached,
                     const DeviceTelemetry &fresh)
{
    const bool same = cached.inferencesCompleted
            == fresh.inferencesCompleted
        && cached.diedNonTerminating == fresh.diedNonTerminating
        && cached.failedIncomplete == fresh.failedIncomplete
        && cached.reboots == fresh.reboots
        && cached.liveSeconds == fresh.liveSeconds
        && cached.deadSeconds == fresh.deadSeconds
        && cached.energyJ == fresh.energyJ
        && cached.harvestedJ == fresh.harvestedJ
        && cached.resultsDelivered == fresh.resultsDelivered
        && cached.inferenceSeconds == fresh.inferenceSeconds
        && cached.deliverySeconds == fresh.deliverySeconds;
    if (!same)
        fatal("fleet lifetime-cache divergence: device ",
              fresh.assignment.deviceIndex,
              " does not replay its memoized always-on lifetime");
}

DeviceTelemetry
simulateDeviceImpl(const FleetPlan &plan, u32 device_index,
                   const SimContext &ctx)
{
    DeviceTelemetry t;
    t.assignment = plan.assignmentFor(device_index);

    const auto &entry = dnn::ModelZoo::instance().get(t.assignment.net);
    const auto &net_spec = entry.compressed();
    const auto &data = entry.dataset();
    const auto &spec =
        pipeline::PipelineRegistry::instance().get(t.assignment.pipeline);
    auto supply = env::EnvRegistry::instance().make(
        t.assignment.environment, t.assignment.seed);

    // Memoization eligibility. Sharing across devices is sound only
    // when the round outcome cannot see the seed (ackInvariant) and
    // the supply's semantics are the exact ones the replay reproduces
    // — hence the typeid checks, which exclude user-registered
    // subclasses with unknown behavior.
    const bool ack_invariant = pipeline::ackInvariant(spec);
    auto *harvest = dynamic_cast<env::HarvestSupply *>(supply.get());
    // Traced devices run every round for real: replaying a memoized
    // round would produce telemetry but no events, and inserting their
    // rounds would be redundant — so sampling leaves the caches
    // exactly as an untraced run would populate them.
    const bool round_cacheable = ctx.recorder == nullptr
        && ctx.roundCache != nullptr
        && harvest != nullptr
        && typeid(*supply) == typeid(env::HarvestSupply)
        && ack_invariant;

    // Always-on supplies never reboot and never consult a clock: the
    // whole lifetime is one cache entry.
    const bool lifetime_cacheable = ctx.recorder == nullptr
        && ctx.lifetimeCache != nullptr
        && typeid(*supply) == typeid(arch::ContinuousPower)
        && ack_invariant;
    const LifetimeCache::Key life_key{
        t.assignment.netIndex, t.assignment.implIndex,
        t.assignment.envIndex, t.assignment.pipelineIndex};
    DeviceTelemetry memoized_lifetime;
    bool lifetime_hit = false;
    if (lifetime_cacheable
        && ctx.lifetimeCache->find(life_key, &memoized_lifetime)) {
        ctx.lifetimeCache->countHit();
        lifetime_hit = true;
        if (!ctx.verify) {
            memoized_lifetime.assignment = t.assignment;
            return memoized_lifetime;
        }
    }

    // One real (un-memoized) round against the lifetime supply,
    // recording the elapse walk so the trace can be replayed.
    const auto run_real_round = [&](u32 k, bool want_digest) {
        RoundRun run;
        {
            arch::Device dev(
                app::makeProfile(plan.profile),
                std::make_unique<RecordingSupply>(
                    supply.get(), &run.trace.liveDeltas));
            if (ctx.recorder != nullptr) {
                // Each round gets a fresh Device whose clocks restart
                // at zero; the base offsets lift its stamps onto the
                // lifetime timeline accrued so far.
                ctx.recorder->setBase(t.totalSeconds(), t.energyJ);
                dev.setProbe(ctx.recorder);
            }
            dnn::DeviceNetwork net(dev, net_spec);
            const auto round = pipeline::runRound(
                net, t.assignment.impl,
                dnn::DeviceNetwork::quantizeInput(
                    data[k % data.size()].input),
                spec, t.assignment.seed, k);
            dev.power(); // settle the open lease back into the supply
            run.trace.liveSeconds = dev.liveSeconds();
            run.deadSeconds = dev.deadSeconds();
            run.trace.energyJ = dev.consumedJoules();
            const auto &stats = dev.stats();
            run.trace.senseEnergyJ =
                stats.opNanojoules(arch::Op::SenseSample) * 1e-9;
            run.trace.radioEnergyJ =
                (stats.opNanojoules(arch::Op::RadioWake) +
                 stats.opNanojoules(arch::Op::RadioTxByte) +
                 stats.opNanojoules(arch::Op::RadioRxAck)) * 1e-9;
            run.trace.backoffSeconds = round.backoffSeconds;
            run.trace.reboots = round.reboots;
            run.trace.txAttempts = round.txAttempts;
            run.trace.txFailedAttempts = round.txFailedAttempts;
            run.trace.completed = round.completed;
            run.trace.nonTerminating = round.nonTerminating;
            run.trace.delivered = round.delivered;
            run.trace.txGaveUp = round.txGaveUp;
            run.trace.logitsDigest = round.logitsDigest();
            if (want_digest)
                run.trace.nvmDigest = dev.nvmDigest();
        } // ~Device flushes the final elapse into liveDeltas
        run.trace.endLevelNj =
            harvest != nullptr ? harvest->levelNj() : 0.0;
        return run;
    };

    // Accrue one round (memoized or real) into the telemetry with the
    // exact operation sequence the pre-cache loop performed; false
    // means the lifetime ended (DNF or incomplete round).
    const auto accrue_round = [&t](const RoundTrace &tr,
                                   f64 round_dead) {
        t.liveSeconds += tr.liveSeconds;
        t.deadSeconds += round_dead + tr.backoffSeconds;
        t.txBackoffSeconds += tr.backoffSeconds;
        t.energyJ += tr.energyJ;
        t.reboots += tr.reboots;
        t.senseEnergyJ += tr.senseEnergyJ;
        t.radioEnergyJ += tr.radioEnergyJ;
        if (tr.nonTerminating) {
            t.diedNonTerminating = true;
            return false;
        }
        if (!tr.completed) {
            t.failedIncomplete = true;
            return false;
        }
        ++t.inferencesCompleted;
        const f64 round_seconds =
            (tr.liveSeconds + round_dead) + tr.backoffSeconds;
        t.inferenceSeconds.push_back(round_seconds);
        t.inferenceSecondsSum += round_seconds;
        t.txAttempts += tr.txAttempts;
        t.txRetries += tr.txFailedAttempts;
        if (tr.txGaveUp)
            ++t.txGaveUpRounds;
        if (tr.delivered) {
            ++t.resultsDelivered;
            t.deliverySeconds.push_back(round_seconds);
            t.deliverySecondsSum += round_seconds;
        }
        return true;
    };

    for (u32 k = 0; plan.maxInferencesPerDevice == 0
         || k < plan.maxInferencesPerDevice;
         ++k) {
        // Sleep until the harvester refills the buffer — the standard
        // charge-then-burst duty cycle. For the first round this is a
        // no-op (the device boots fully charged; a full buffer
        // recharges in exactly zero seconds), which puts round 0
        // through the identical horizon gate as every later round.
        // Dead time that would overshoot the deployment window is
        // clipped at the horizon, so telemetry never reports more
        // simulated time than the plan deployed.
        const f64 recharge_dead = supply->recharge();
        const f64 remaining = plan.horizonSeconds - t.totalSeconds();
        if (recharge_dead >= remaining) {
            t.deadSeconds += std::max(remaining, 0.0);
            // The horizon-clipped final sleep happens outside any
            // Device, so the recorder takes it directly.
            if (ctx.recorder != nullptr)
                ctx.recorder->record(trace::TraceEventKind::Recharge,
                                     0, t.totalSeconds(), t.energyJ,
                                     std::max(remaining, 0.0));
            break;
        }
        t.deadSeconds += recharge_dead;
        if (ctx.recorder != nullptr && recharge_dead > 0.0)
            ctx.recorder->record(trace::TraceEventKind::Recharge, 0,
                                 t.totalSeconds(), t.energyJ,
                                 recharge_dead);

        bool round_done = false;
        bool keep_going = true;
        RoundKey key;
        if (round_cacheable) {
            key.netIndex = t.assignment.netIndex;
            key.implIndex = t.assignment.implIndex;
            key.pipelineIndex = t.assignment.pipelineIndex;
            key.inputIndex = static_cast<u32>(k % data.size());
            key.capacityNjBits =
                std::bit_cast<u64>(harvest->capacityNj());
            if (const RoundTrace *hit = ctx.roundCache->find(key)) {
                ctx.roundCache->countHit();
                if (ctx.verify) {
                    // Paranoid mode: re-run the round for real and
                    // cross-check the whole trace (including the NVM
                    // digest) against the memoized entry.
                    RoundRun fresh = run_real_round(k, true);
                    verifyTracesMatch(*hit, fresh.trace, t.assignment,
                                      k);
                    keep_going =
                        accrue_round(fresh.trace, fresh.deadSeconds);
                } else {
                    const f64 round_dead =
                        replayRound(*harvest, *hit);
                    keep_going = accrue_round(*hit, round_dead);
                }
                round_done = true;
            }
        }
        if (!round_done) {
            RoundRun fresh = run_real_round(k, round_cacheable);
            if (round_cacheable) {
                ctx.roundCache->countMiss();
            } else if (!lifetime_cacheable
                       && ctx.recorder == nullptr
                       && ctx.uncachedRounds != nullptr
                       && (ctx.roundCache != nullptr
                           || ctx.lifetimeCache != nullptr)) {
                ctx.uncachedRounds->fetch_add(
                    1, std::memory_order_relaxed);
            }
            keep_going = accrue_round(fresh.trace, fresh.deadSeconds);
            if (round_cacheable)
                ctx.roundCache->insert(key, std::move(fresh.trace));
        }
        if (!keep_going)
            break;
    }

    t.harvestedJ = supply->harvestedNj() * 1e-9;

    if (lifetime_cacheable) {
        if (lifetime_hit) {
            verifyLifetimesMatch(memoized_lifetime, t);
        } else {
            ctx.lifetimeCache->countMiss();
            ctx.lifetimeCache->insert(life_key, t);
        }
    }
    return t;
}

} // namespace

DeviceTelemetry
simulateDevice(const FleetPlan &plan, u32 device_index)
{
    return simulateDeviceImpl(plan, device_index, SimContext{});
}

// --- FleetColumns ---------------------------------------------------

FleetColumns::FleetColumns(u64 devices)
    : inferencesCompleted(devices), status(devices), reboots(devices),
      liveSeconds(devices), deadSeconds(devices), energyJ(devices),
      harvestedJ(devices), resultsDelivered(devices),
      txGaveUpRounds(devices), txAttempts(devices), txRetries(devices),
      radioEnergyJ(devices), senseEnergyJ(devices),
      txBackoffSeconds(devices), inferenceSecondsSum(devices),
      deliverySecondsSum(devices)
{
}

void
FleetColumns::store(u64 i, const DeviceTelemetry &t)
{
    inferencesCompleted[i] = t.inferencesCompleted;
    status[i] = static_cast<u8>((t.diedNonTerminating ? 1u : 0u)
                                | (t.failedIncomplete ? 2u : 0u));
    reboots[i] = t.reboots;
    liveSeconds[i] = t.liveSeconds;
    deadSeconds[i] = t.deadSeconds;
    energyJ[i] = t.energyJ;
    harvestedJ[i] = t.harvestedJ;
    resultsDelivered[i] = t.resultsDelivered;
    txGaveUpRounds[i] = t.txGaveUpRounds;
    txAttempts[i] = t.txAttempts;
    txRetries[i] = t.txRetries;
    radioEnergyJ[i] = t.radioEnergyJ;
    senseEnergyJ[i] = t.senseEnergyJ;
    txBackoffSeconds[i] = t.txBackoffSeconds;
    inferenceSecondsSum[i] = t.inferenceSecondsSum;
    deliverySecondsSum[i] = t.deliverySecondsSum;
}

DeviceTelemetry
FleetColumns::materialize(const FleetPlan &plan, u64 i) const
{
    DeviceTelemetry t;
    t.assignment = plan.assignmentFor(static_cast<u32>(i));
    t.inferencesCompleted = inferencesCompleted[i];
    t.diedNonTerminating = (status[i] & 1u) != 0;
    t.failedIncomplete = (status[i] & 2u) != 0;
    t.reboots = reboots[i];
    t.liveSeconds = liveSeconds[i];
    t.deadSeconds = deadSeconds[i];
    t.energyJ = energyJ[i];
    t.harvestedJ = harvestedJ[i];
    t.resultsDelivered = resultsDelivered[i];
    t.txGaveUpRounds = txGaveUpRounds[i];
    t.txAttempts = txAttempts[i];
    t.txRetries = txRetries[i];
    t.radioEnergyJ = radioEnergyJ[i];
    t.senseEnergyJ = senseEnergyJ[i];
    t.txBackoffSeconds = txBackoffSeconds[i];
    t.inferenceSecondsSum = inferenceSecondsSum[i];
    t.deliverySecondsSum = deliverySecondsSum[i];
    return t;
}

// --- Sinks ----------------------------------------------------------

void
FleetCsvSink::begin(u64)
{
    os_ << "device,net,impl,environment,pipeline,seed,status,"
           "inferences,reboots,liveSeconds,deadSeconds,totalSeconds,"
           "energyJ,harvestedJ,inferencesPerDay,rebootsPerInference,"
           "deadFraction,energyPerInferenceJ,meanInferenceSeconds,"
           "resultsDelivered,txAttempts,txRetries,txGaveUpRounds,"
           "radioEnergyJ,senseEnergyJ,txBackoffSeconds,"
           "meanDeliverySeconds\n";
}

void
FleetCsvSink::add(const DeviceTelemetry &t)
{
    // f64 fields go through fmtF64 (shortest round-trip digits, see
    // util/fmt.hh): derived rates included, so recomputing them from
    // bit-exact stored fields reproduces the row byte-for-byte.
    std::ostringstream row;
    row << t.assignment.deviceIndex << ','
        << csvQuote(t.assignment.net) << ','
        << csvQuote(std::string(
               kernels::implName(t.assignment.impl)))
        << ',' << csvQuote(t.assignment.environment.label()) << ','
        << csvQuote(t.assignment.pipeline) << ','
        << t.assignment.seed << ','
        << (t.diedNonTerminating
                ? "dnf"
                : (t.failedIncomplete ? "fail" : "ok"))
        << ','
        << t.inferencesCompleted << ',' << t.reboots << ','
        << fmtF64(t.liveSeconds) << ',' << fmtF64(t.deadSeconds)
        << ',' << fmtF64(t.totalSeconds()) << ','
        << fmtF64(t.energyJ) << ',' << fmtF64(t.harvestedJ) << ','
        << fmtF64(t.inferencesPerDay()) << ','
        << fmtF64(t.rebootsPerInference()) << ','
        << fmtF64(t.deadFraction()) << ','
        << fmtF64(t.energyPerInferenceJ()) << ','
        << fmtF64(t.meanInferenceSeconds()) << ','
        << t.resultsDelivered << ',' << t.txAttempts << ','
        << t.txRetries << ',' << t.txGaveUpRounds << ','
        << fmtF64(t.radioEnergyJ) << ',' << fmtF64(t.senseEnergyJ)
        << ',' << fmtF64(t.txBackoffSeconds) << ','
        << fmtF64(t.meanDeliverySeconds()) << '\n';
    os_ << row.str();
}

void
FleetJsonSink::begin(u64)
{
    os_ << "[";
    first_ = true;
}

void
FleetJsonSink::add(const DeviceTelemetry &t)
{
    std::ostringstream obj;
    obj.precision(17);
    obj << (first_ ? "\n" : ",\n");
    first_ = false;
    obj << "  {\"device\": " << t.assignment.deviceIndex
        << ", \"net\": \"" << jsonEscape(t.assignment.net)
        << "\", \"impl\": \""
        << jsonEscape(std::string(
               kernels::implName(t.assignment.impl)))
        << "\", \"environment\": \""
        << jsonEscape(t.assignment.environment.label())
        << "\", \"pipeline\": \"" << jsonEscape(t.assignment.pipeline)
        << "\", \"seed\": " << t.assignment.seed
        << ", \"status\": \""
        << (t.diedNonTerminating
                ? "dnf"
                : (t.failedIncomplete ? "fail" : "ok"))
        << "\", \"inferences\": " << t.inferencesCompleted
        << ", \"reboots\": " << t.reboots
        << ", \"liveSeconds\": " << t.liveSeconds
        << ", \"deadSeconds\": " << t.deadSeconds
        << ", \"totalSeconds\": " << t.totalSeconds()
        << ", \"energyJ\": " << t.energyJ
        << ", \"harvestedJ\": " << t.harvestedJ
        << ", \"inferencesPerDay\": " << t.inferencesPerDay()
        << ", \"rebootsPerInference\": " << t.rebootsPerInference()
        << ", \"deadFraction\": " << t.deadFraction()
        << ", \"energyPerInferenceJ\": " << t.energyPerInferenceJ()
        << ", \"meanInferenceSeconds\": " << t.meanInferenceSeconds()
        << ", \"resultsDelivered\": " << t.resultsDelivered
        << ", \"txAttempts\": " << t.txAttempts
        << ", \"txRetries\": " << t.txRetries
        << ", \"txGaveUpRounds\": " << t.txGaveUpRounds
        << ", \"radioEnergyJ\": " << t.radioEnergyJ
        << ", \"senseEnergyJ\": " << t.senseEnergyJ
        << ", \"txBackoffSeconds\": " << t.txBackoffSeconds
        << ", \"meanDeliverySeconds\": " << t.meanDeliverySeconds()
        << "}";
    os_ << obj.str();
}

void
FleetJsonSink::end()
{
    os_ << "\n]\n";
}

// --- Aggregation ----------------------------------------------------

void
GroupStats::accumulate(const DeviceTelemetry &t)
{
    accumulateRow({
        .dnf = t.diedNonTerminating,
        .failed = t.failedIncomplete,
        .inferences = t.inferencesCompleted,
        .reboots = t.reboots,
        .liveSeconds = t.liveSeconds,
        .deadSeconds = t.deadSeconds,
        .energyJ = t.energyJ,
        .harvestedJ = t.harvestedJ,
        .resultsDelivered = t.resultsDelivered,
        .txGaveUpRounds = t.txGaveUpRounds,
        .txAttempts = t.txAttempts,
        .txRetries = t.txRetries,
        .radioEnergyJ = t.radioEnergyJ,
        .senseEnergyJ = t.senseEnergyJ,
        .txBackoffSeconds = t.txBackoffSeconds,
    });
}

void
GroupStats::accumulateRow(const TelemetryRow &row)
{
    ++devices;
    if (row.dnf)
        ++dnfDevices;
    if (row.failed)
        ++failedDevices;
    inferences += row.inferences;
    reboots += row.reboots;
    liveSeconds += row.liveSeconds;
    deadSeconds += row.deadSeconds;
    energyJ += row.energyJ;
    harvestedJ += row.harvestedJ;
    resultsDelivered += row.resultsDelivered;
    if (row.txGaveUpRounds > 0)
        ++txGaveUpDevices;
    txAttempts += row.txAttempts;
    txRetries += row.txRetries;
    radioEnergyJ += row.radioEnergyJ;
    senseEnergyJ += row.senseEnergyJ;
    txBackoffSeconds += row.txBackoffSeconds;
}

namespace
{

f64
nearestRank(const std::vector<f64> &sorted, f64 percentile)
{
    if (sorted.empty())
        return 0.0;
    const u64 rank = static_cast<u64>(
        std::ceil(percentile / 100.0
                  * static_cast<f64>(sorted.size())));
    return sorted[std::min<u64>(rank > 0 ? rank - 1 : 0,
                                sorted.size() - 1)];
}

void
emitGroup(std::ostringstream &os, const GroupStats &g)
{
    os << "{\"devices\": " << g.devices
       << ", \"dnfDevices\": " << g.dnfDevices
       << ", \"failedDevices\": " << g.failedDevices
       << ", \"inferences\": " << g.inferences
       << ", \"reboots\": " << g.reboots
       << ", \"liveSeconds\": " << g.liveSeconds
       << ", \"deadSeconds\": " << g.deadSeconds
       << ", \"energyJ\": " << g.energyJ
       << ", \"harvestedJ\": " << g.harvestedJ
       << ", \"resultsDelivered\": " << g.resultsDelivered
       << ", \"txGaveUpDevices\": " << g.txGaveUpDevices
       << ", \"txAttempts\": " << g.txAttempts
       << ", \"txRetries\": " << g.txRetries
       << ", \"radioEnergyJ\": " << g.radioEnergyJ
       << ", \"senseEnergyJ\": " << g.senseEnergyJ
       << ", \"txBackoffSeconds\": " << g.txBackoffSeconds
       << ", \"inferencesPerDeviceDay\": " << g.inferencesPerDeviceDay()
       << ", \"rebootsPerInference\": " << g.rebootsPerInference()
       << ", \"deadFraction\": " << g.deadFraction()
       << ", \"energyPerInferenceJ\": " << g.energyPerInferenceJ()
       << ", \"deliveredPerDeviceDay\": " << g.deliveredPerDeviceDay()
       << ", \"retriesPerDelivered\": " << g.retriesPerDelivered()
       << ", \"radioEnergyFraction\": " << g.radioEnergyFraction()
       << "}";
}

void
emitGroupMap(std::ostringstream &os, const char *key,
             const std::map<std::string, GroupStats> &groups)
{
    os << ",\n  \"" << key << "\": {";
    bool first = true;
    for (const auto &[name, stats] : groups) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        emitGroup(os, stats);
        first = false;
    }
    os << (groups.empty() ? "}" : "\n  }");
}

} // namespace

std::string
FleetSummary::toJson() const
{
    // Note: `cache` is deliberately not emitted — the artifact must be
    // byte-identical between memoized and --no-cache runs.
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"devices\": " << devices
       << ",\n  \"horizonSeconds\": " << horizonSeconds
       << ",\n  \"baseSeed\": " << baseSeed
       << ",\n  \"latencyP50Seconds\": " << latencyP50Seconds
       << ",\n  \"latencyP95Seconds\": " << latencyP95Seconds
       << ",\n  \"latencyP99Seconds\": " << latencyP99Seconds
       << ",\n  \"deliveryP50Seconds\": " << deliveryP50Seconds
       << ",\n  \"deliveryP95Seconds\": " << deliveryP95Seconds
       << ",\n  \"deliveryP99Seconds\": " << deliveryP99Seconds
       << ",\n  \"total\": ";
    emitGroup(os, total);
    emitGroupMap(os, "byEnvironment", byEnvironment);
    emitGroupMap(os, "byImpl", byImpl);
    emitGroupMap(os, "byNet", byNet);
    emitGroupMap(os, "byPipeline", byPipeline);
    os << "\n}\n";
    return os.str();
}

// --- Fleet execution ------------------------------------------------

FleetSummary
runFleet(const FleetPlan &plan, FleetOptions options,
         const std::vector<FleetSink *> &sinks)
{
    plan.validate();

    // Warm the zoo cache single-threaded so workers only read
    // immutable artifacts (same discipline as Engine::run).
    for (const auto &net : plan.nets) {
        const auto &entry = dnn::ModelZoo::instance().get(net);
        entry.compressed();
        entry.dataset();
    }

    const u64 total = plan.devices;
    u32 workers = options.threads > 0
        ? options.threads
        : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<u32>(std::min<u64>(workers, total));

    std::vector<FleetSink *> live_sinks;
    for (auto *sink : sinks)
        if (sink != nullptr)
            live_sinks.push_back(sink);
    for (auto *sink : live_sinks)
        sink->begin(total);

    FleetColumns columns(total);

    RoundCache round_cache;
    LifetimeCache lifetime_cache;
    std::atomic<u64> uncached_rounds{0};
    SimContext ctx;
    if (options.useCache) {
        ctx.roundCache = &round_cache;
        ctx.lifetimeCache = &lifetime_cache;
    }
    ctx.uncachedRounds = &uncached_rounds;
    ctx.verify = options.verifyCache;

    // Trace sampling: device i is traced iff i % traceEvery == 0, a
    // pure function of the index, so the sampled set (and the bytes
    // the collector later writes, in device order) is identical for
    // every thread count.
    const bool tracing =
        options.traces != nullptr && plan.traceEvery > 0;
    const auto context_for = [&](u64 i) {
        SimContext dev_ctx = ctx;
        if (tracing && i % plan.traceEvery == 0)
            dev_ctx.recorder = options.traces->recorderFor(i);
        return dev_ctx;
    };

    std::atomic<u64> devices_done{0};
    util::ProgressMeter progress("fleet", "devices", total,
                                 &devices_done, options.progress);

    // Worker-local latency buffers, merged and sorted after the join:
    // the percentile inputs form the same multiset under every
    // schedule, and sorting a multiset of finite f64s is a pure
    // function of its contents — so percentiles stay bit-identical
    // across thread counts without a serialized collection pass.
    std::vector<std::vector<f64>> worker_latencies(workers);
    std::vector<std::vector<f64>> worker_deliveries(workers);

    if (workers <= 1) {
        for (u64 i = 0; i < total; ++i) {
            const DeviceTelemetry t = simulateDeviceImpl(
                plan, static_cast<u32>(i), context_for(i));
            devices_done.fetch_add(1, std::memory_order_relaxed);
            columns.store(i, t);
            worker_latencies[0].insert(worker_latencies[0].end(),
                                       t.inferenceSeconds.begin(),
                                       t.inferenceSeconds.end());
            worker_deliveries[0].insert(worker_deliveries[0].end(),
                                        t.deliverySeconds.begin(),
                                        t.deliverySeconds.end());
            if (!live_sinks.empty()) {
                const DeviceTelemetry view =
                    columns.materialize(plan, i);
                for (auto *sink : live_sinks)
                    sink->add(view);
            }
        }
    } else {
        // Work stealing over device lifetimes: the shared cursor hands
        // the next device to whichever worker frees up first, so a
        // fleet of wildly uneven lifetimes (a solar device waiting out
        // the night next to a bench device) still load-balances.
        std::atomic<u64> next{0};
        std::mutex emitMutex;
        std::vector<u8> ready(total, 0);
        u64 emitted = 0;

        auto workerLoop = [&](u32 w) {
            for (;;) {
                const u64 i = next.fetch_add(1);
                if (i >= total)
                    return;
                const DeviceTelemetry t = simulateDeviceImpl(
                    plan, static_cast<u32>(i), context_for(i));
                devices_done.fetch_add(1, std::memory_order_relaxed);
                columns.store(i, t);
                worker_latencies[w].insert(
                    worker_latencies[w].end(),
                    t.inferenceSeconds.begin(),
                    t.inferenceSeconds.end());
                worker_deliveries[w].insert(
                    worker_deliveries[w].end(),
                    t.deliverySeconds.begin(),
                    t.deliverySeconds.end());

                std::lock_guard<std::mutex> lock(emitMutex);
                ready[i] = 1;
                while (emitted < total && ready[emitted]) {
                    if (!live_sinks.empty()) {
                        const DeviceTelemetry view =
                            columns.materialize(plan, emitted);
                        for (auto *sink : live_sinks)
                            sink->add(view);
                    }
                    ++emitted;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (u32 w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop, w);
        for (auto &t : pool)
            t.join();
        SONIC_ASSERT(emitted == total, "fleet lost devices");
    }

    for (auto *sink : live_sinks)
        sink->end();

    // Sequential columnar reduction in device-index order: the summary
    // is a pure function of the per-device telemetry, so it is
    // bit-identical for every thread count.
    FleetSummary summary;
    summary.devices = plan.devices;
    summary.horizonSeconds = plan.horizonSeconds;
    summary.baseSeed = plan.baseSeed;
    for (u64 i = 0; i < total; ++i) {
        const DeviceTelemetry t = columns.materialize(plan, i);
        summary.total.accumulate(t);
        summary.byEnvironment[t.assignment.environment.label()]
            .accumulate(t);
        summary.byImpl[std::string(
                           kernels::implName(t.assignment.impl))]
            .accumulate(t);
        summary.byNet[t.assignment.net].accumulate(t);
        summary.byPipeline[t.assignment.pipeline].accumulate(t);
    }

    std::vector<f64> latencies;
    std::vector<f64> deliveries;
    for (u32 w = 0; w < workers; ++w) {
        latencies.insert(latencies.end(), worker_latencies[w].begin(),
                         worker_latencies[w].end());
        deliveries.insert(deliveries.end(),
                          worker_deliveries[w].begin(),
                          worker_deliveries[w].end());
    }
    std::sort(latencies.begin(), latencies.end());
    summary.latencyP50Seconds = nearestRank(latencies, 50.0);
    summary.latencyP95Seconds = nearestRank(latencies, 95.0);
    summary.latencyP99Seconds = nearestRank(latencies, 99.0);
    std::sort(deliveries.begin(), deliveries.end());
    summary.deliveryP50Seconds = nearestRank(deliveries, 50.0);
    summary.deliveryP95Seconds = nearestRank(deliveries, 95.0);
    summary.deliveryP99Seconds = nearestRank(deliveries, 99.0);

    summary.cache.roundHits = round_cache.hits();
    summary.cache.roundMisses = round_cache.misses();
    summary.cache.lifetimeHits = lifetime_cache.hits();
    summary.cache.lifetimeMisses = lifetime_cache.misses();
    summary.cache.uncachedRounds =
        uncached_rounds.load(std::memory_order_relaxed);
    return summary;
}

// --- Named scenarios ------------------------------------------------

const std::vector<FleetScenario> &
namedScenarios()
{
    static const std::vector<FleetScenario> scenarios = [] {
        std::vector<FleetScenario> out;
        {
            // The CI smoke fleet: small, seconds to run, but mixed
            // enough to cross every kernel with both trace
            // environments.
            FleetPlan plan;
            plan.devices = 200;
            plan.nets = {"MNIST", "HAR", "OkG"};
            plan.impls.assign(std::begin(kernels::kAllImpls),
                              std::end(kernels::kAllImpls));
            plan.environments = {{"trace-rf-office", 1e-3},
                                 {"trace-solar-cloudy", 1e-3},
                                 {"rf-paper", 100e-6},
                                 {"duty-cycle", 1e-3},
                                 {"continuous", 0.0}};
            plan.maxInferencesPerDevice = 2;
            out.push_back({"smoke-200",
                           "200 devices, all kernels, trace + "
                           "synthetic environments (CI smoke)",
                           plan});
        }
        {
            // The acceptance fleet: the paper's three workloads on
            // SONIC/TAILS under mixed solar + RF power. Scales to a
            // million devices with --devices thanks to round-trace
            // memoization.
            FleetPlan plan;
            plan.devices = 1000;
            plan.nets = {"MNIST", "HAR", "OkG"};
            plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tails};
            plan.environments = {{"solar", 1e-3},
                                 {"solar", 100e-6},
                                 {"rf-paper", 1e-3},
                                 {"rf-paper", 100e-6},
                                 {"rf-bursty", 1e-3}};
            plan.maxInferencesPerDevice = 2;
            out.push_back({"mixed-1k",
                           "1,000 devices, MNIST/HAR/OkG x "
                           "SONIC/TAILS, solar + RF mixed power",
                           plan});
        }
        {
            // A day of wildlife cameras: the paper's motivating
            // deployment at fleet scale, solar-powered with
            // cloudy-trace variants.
            FleetPlan plan;
            plan.devices = 500;
            plan.nets = {"MNIST"};
            plan.impls = {kernels::Impl::Sonic, kernels::Impl::Tails,
                          kernels::Impl::Tile8};
            plan.environments = {{"solar", 1e-3},
                                 {"trace-solar-cloudy", 1e-3},
                                 {"trace-solar-cloudy", 100e-6}};
            plan.pipelines = {"wildlife"};
            plan.maxInferencesPerDevice = 3;
            out.push_back({"wildlife-day",
                           "500 solar wildlife cameras running the "
                           "full sense-infer-transmit pipeline, clear "
                           "vs cloudy traces",
                           plan});
        }
        return out;
    }();
    return scenarios;
}

} // namespace sonic::fleet
