#include "fleet/fleet.hh"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "dnn/device_net.hh"
#include "util/json.hh"
#include "util/logging.hh"
#include "util/rng.hh"
#include "util/table.hh"

namespace sonic::fleet
{

// --- FleetPlan ------------------------------------------------------

void
FleetPlan::validate() const
{
    SONIC_ASSERT(devices > 0, "fleet needs at least one device");
    SONIC_ASSERT(!nets.empty(), "empty fleet net distribution");
    SONIC_ASSERT(!impls.empty(), "empty fleet impl distribution");
    SONIC_ASSERT(!environments.empty(),
                 "empty fleet environment distribution");
    SONIC_ASSERT(horizonSeconds > 0.0,
                 "fleet horizon must be positive");
    auto &zoo = dnn::ModelZoo::instance();
    for (const auto &net : nets) {
        if (!zoo.contains(net))
            fatal("unknown model '", net,
                  "' in the fleet net distribution; registered "
                  "models: ",
                  zoo.availableList());
    }
    auto &registry = env::EnvRegistry::instance();
    for (const auto &ref : environments) {
        if (ref.empty() || !registry.contains(ref.env))
            fatal("unknown environment '", ref.env,
                  "' in the fleet environment distribution; "
                  "registered environments: ",
                  registry.availableList());
    }
    for (const auto impl : impls) {
        if (kernels::ImplRegistry::instance().find(impl) == nullptr)
            fatal("unregistered implementation id in the fleet impl "
                  "distribution");
    }
    SONIC_ASSERT(!pipelines.empty(),
                 "empty fleet pipeline distribution");
    auto &pipes = pipeline::PipelineRegistry::instance();
    for (const auto &name : pipelines) {
        if (!pipes.contains(name))
            fatal("unknown pipeline '", name,
                  "' in the fleet pipeline distribution; registered "
                  "pipelines:\n",
                  pipes.availableList());
    }
}

DeviceAssignment
FleetPlan::assignmentFor(u32 device_index) const
{
    // A pure function of (baseSeed, deviceIndex) and the distribution
    // lists: device 17 is the same deployment no matter how many
    // threads race over the fleet or which worker picks it up.
    const u64 h = mix64(mix64(baseSeed) ^ (0xf1ee7u + device_index));
    DeviceAssignment a;
    a.deviceIndex = device_index;
    a.net = nets[mix64(h ^ 1) % nets.size()];
    a.impl = impls[mix64(h ^ 2) % impls.size()];
    a.environment = environments[mix64(h ^ 3) % environments.size()];
    a.seed = mix64(h ^ 4);
    // h^5 keeps the net/impl/env/seed deals of pre-pipeline plans
    // byte-identical: a single-pipeline plan is the same fleet as
    // before, just with a named execution loop.
    a.pipeline = pipelines[mix64(h ^ 5) % pipelines.size()];
    return a;
}

// --- Device lifetime ------------------------------------------------

DeviceTelemetry
simulateDevice(const FleetPlan &plan, u32 device_index)
{
    DeviceTelemetry t;
    t.assignment = plan.assignmentFor(device_index);

    const auto &entry = dnn::ModelZoo::instance().get(t.assignment.net);
    const auto &net_spec = entry.compressed();
    const auto &data = entry.dataset();
    const auto &spec =
        pipeline::PipelineRegistry::instance().get(t.assignment.pipeline);
    auto supply = env::EnvRegistry::instance().make(
        t.assignment.environment, t.assignment.seed);

    for (u32 k = 0; plan.maxInferencesPerDevice == 0
         || k < plan.maxInferencesPerDevice;
         ++k) {
        if (t.totalSeconds() >= plan.horizonSeconds)
            break;
        if (k > 0) {
            // Between rounds the device sleeps until the harvester
            // refills the buffer — the standard charge-then-burst
            // duty cycle of intermittent systems.
            t.deadSeconds += supply->recharge();
            if (t.totalSeconds() >= plan.horizonSeconds)
                break;
        }

        // A fresh Device per round (single-run kernel semantics),
        // powered through a borrowed view of the lifetime's supply so
        // the capacitor level and environment clock persist.
        arch::Device dev(
            app::makeProfile(plan.profile),
            std::make_unique<env::BorrowedSupply>(supply.get()));
        dnn::DeviceNetwork net(dev, net_spec);
        const auto round = pipeline::runRound(
            net, t.assignment.impl,
            dnn::DeviceNetwork::quantizeInput(
                data[k % data.size()].input),
            spec, t.assignment.seed, k);
        dev.power(); // settle the open lease back into the supply

        // Retry backoff is wall-clock the device spends waiting on
        // the link, not harvesting: pure dead time in the telemetry
        // (the environment clock only advances through live time and
        // recharge, keeping the round-by-round physics unchanged).
        t.liveSeconds += dev.liveSeconds();
        t.deadSeconds += dev.deadSeconds() + round.backoffSeconds;
        t.txBackoffSeconds += round.backoffSeconds;
        t.energyJ += dev.consumedJoules();
        t.reboots += round.reboots;
        const auto &stats = dev.stats();
        t.senseEnergyJ +=
            stats.opNanojoules(arch::Op::SenseSample) * 1e-9;
        t.radioEnergyJ +=
            (stats.opNanojoules(arch::Op::RadioWake) +
             stats.opNanojoules(arch::Op::RadioTxByte) +
             stats.opNanojoules(arch::Op::RadioRxAck)) * 1e-9;
        if (round.nonTerminating) {
            t.diedNonTerminating = true;
            break;
        }
        if (!round.completed) {
            t.failedIncomplete = true;
            break;
        }
        ++t.inferencesCompleted;
        const f64 round_seconds =
            dev.totalSeconds() + round.backoffSeconds;
        t.inferenceSeconds.push_back(round_seconds);
        t.txAttempts += round.txAttempts;
        t.txRetries += round.txFailedAttempts;
        if (round.txGaveUp)
            ++t.txGaveUpRounds;
        if (round.delivered) {
            ++t.resultsDelivered;
            t.deliverySeconds.push_back(round_seconds);
        }
    }

    t.harvestedJ = supply->harvestedNj() * 1e-9;
    return t;
}

// --- Sinks ----------------------------------------------------------

void
FleetCsvSink::begin(u64)
{
    os_ << "device,net,impl,environment,pipeline,seed,status,"
           "inferences,reboots,liveSeconds,deadSeconds,totalSeconds,"
           "energyJ,harvestedJ,inferencesPerDay,rebootsPerInference,"
           "deadFraction,energyPerInferenceJ,meanInferenceSeconds,"
           "resultsDelivered,txAttempts,txRetries,txGaveUpRounds,"
           "radioEnergyJ,senseEnergyJ,txBackoffSeconds,"
           "meanDeliverySeconds\n";
}

void
FleetCsvSink::add(const DeviceTelemetry &t)
{
    f64 mean_latency = 0.0;
    for (f64 s : t.inferenceSeconds)
        mean_latency += s;
    if (!t.inferenceSeconds.empty())
        mean_latency /= static_cast<f64>(t.inferenceSeconds.size());
    f64 mean_delivery = 0.0;
    for (f64 s : t.deliverySeconds)
        mean_delivery += s;
    if (!t.deliverySeconds.empty())
        mean_delivery /= static_cast<f64>(t.deliverySeconds.size());

    std::ostringstream row;
    row.precision(12);
    row << t.assignment.deviceIndex << ','
        << csvQuote(t.assignment.net) << ','
        << csvQuote(std::string(
               kernels::implName(t.assignment.impl)))
        << ',' << csvQuote(t.assignment.environment.label()) << ','
        << csvQuote(t.assignment.pipeline) << ','
        << t.assignment.seed << ','
        << (t.diedNonTerminating
                ? "dnf"
                : (t.failedIncomplete ? "fail" : "ok"))
        << ','
        << t.inferencesCompleted << ',' << t.reboots << ','
        << t.liveSeconds << ',' << t.deadSeconds << ','
        << t.totalSeconds() << ',' << t.energyJ << ','
        << t.harvestedJ << ',' << t.inferencesPerDay() << ','
        << t.rebootsPerInference() << ',' << t.deadFraction() << ','
        << t.energyPerInferenceJ() << ',' << mean_latency << ','
        << t.resultsDelivered << ',' << t.txAttempts << ','
        << t.txRetries << ',' << t.txGaveUpRounds << ','
        << t.radioEnergyJ << ',' << t.senseEnergyJ << ','
        << t.txBackoffSeconds << ',' << mean_delivery << '\n';
    os_ << row.str();
}

// --- Aggregation ----------------------------------------------------

void
GroupStats::accumulate(const DeviceTelemetry &t)
{
    ++devices;
    if (t.diedNonTerminating)
        ++dnfDevices;
    if (t.failedIncomplete)
        ++failedDevices;
    inferences += t.inferencesCompleted;
    reboots += t.reboots;
    liveSeconds += t.liveSeconds;
    deadSeconds += t.deadSeconds;
    energyJ += t.energyJ;
    harvestedJ += t.harvestedJ;
    resultsDelivered += t.resultsDelivered;
    if (t.txGaveUpRounds > 0)
        ++txGaveUpDevices;
    txAttempts += t.txAttempts;
    txRetries += t.txRetries;
    radioEnergyJ += t.radioEnergyJ;
    senseEnergyJ += t.senseEnergyJ;
    txBackoffSeconds += t.txBackoffSeconds;
}

namespace
{

f64
nearestRank(const std::vector<f64> &sorted, f64 percentile)
{
    if (sorted.empty())
        return 0.0;
    const u64 rank = static_cast<u64>(
        std::ceil(percentile / 100.0
                  * static_cast<f64>(sorted.size())));
    return sorted[std::min<u64>(rank > 0 ? rank - 1 : 0,
                                sorted.size() - 1)];
}

void
emitGroup(std::ostringstream &os, const GroupStats &g)
{
    os << "{\"devices\": " << g.devices
       << ", \"dnfDevices\": " << g.dnfDevices
       << ", \"failedDevices\": " << g.failedDevices
       << ", \"inferences\": " << g.inferences
       << ", \"reboots\": " << g.reboots
       << ", \"liveSeconds\": " << g.liveSeconds
       << ", \"deadSeconds\": " << g.deadSeconds
       << ", \"energyJ\": " << g.energyJ
       << ", \"harvestedJ\": " << g.harvestedJ
       << ", \"resultsDelivered\": " << g.resultsDelivered
       << ", \"txGaveUpDevices\": " << g.txGaveUpDevices
       << ", \"txAttempts\": " << g.txAttempts
       << ", \"txRetries\": " << g.txRetries
       << ", \"radioEnergyJ\": " << g.radioEnergyJ
       << ", \"senseEnergyJ\": " << g.senseEnergyJ
       << ", \"txBackoffSeconds\": " << g.txBackoffSeconds
       << ", \"inferencesPerDeviceDay\": " << g.inferencesPerDeviceDay()
       << ", \"rebootsPerInference\": " << g.rebootsPerInference()
       << ", \"deadFraction\": " << g.deadFraction()
       << ", \"energyPerInferenceJ\": " << g.energyPerInferenceJ()
       << ", \"deliveredPerDeviceDay\": " << g.deliveredPerDeviceDay()
       << ", \"retriesPerDelivered\": " << g.retriesPerDelivered()
       << ", \"radioEnergyFraction\": " << g.radioEnergyFraction()
       << "}";
}

void
emitGroupMap(std::ostringstream &os, const char *key,
             const std::map<std::string, GroupStats> &groups)
{
    os << ",\n  \"" << key << "\": {";
    bool first = true;
    for (const auto &[name, stats] : groups) {
        os << (first ? "\n" : ",\n") << "    \"" << jsonEscape(name)
           << "\": ";
        emitGroup(os, stats);
        first = false;
    }
    os << (groups.empty() ? "}" : "\n  }");
}

} // namespace

std::string
FleetSummary::toJson() const
{
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"devices\": " << devices
       << ",\n  \"horizonSeconds\": " << horizonSeconds
       << ",\n  \"baseSeed\": " << baseSeed
       << ",\n  \"latencyP50Seconds\": " << latencyP50Seconds
       << ",\n  \"latencyP95Seconds\": " << latencyP95Seconds
       << ",\n  \"latencyP99Seconds\": " << latencyP99Seconds
       << ",\n  \"deliveryP50Seconds\": " << deliveryP50Seconds
       << ",\n  \"deliveryP95Seconds\": " << deliveryP95Seconds
       << ",\n  \"deliveryP99Seconds\": " << deliveryP99Seconds
       << ",\n  \"total\": ";
    emitGroup(os, total);
    emitGroupMap(os, "byEnvironment", byEnvironment);
    emitGroupMap(os, "byImpl", byImpl);
    emitGroupMap(os, "byNet", byNet);
    emitGroupMap(os, "byPipeline", byPipeline);
    os << "\n}\n";
    return os.str();
}

// --- Fleet execution ------------------------------------------------

FleetSummary
runFleet(const FleetPlan &plan, FleetOptions options,
         const std::vector<FleetSink *> &sinks)
{
    plan.validate();

    // Warm the zoo cache single-threaded so workers only read
    // immutable artifacts (same discipline as Engine::run).
    for (const auto &net : plan.nets) {
        const auto &entry = dnn::ModelZoo::instance().get(net);
        entry.compressed();
        entry.dataset();
    }

    const u64 total = plan.devices;
    u32 workers = options.threads > 0
        ? options.threads
        : std::max(1u, std::thread::hardware_concurrency());
    workers = static_cast<u32>(std::min<u64>(workers, total));

    std::vector<FleetSink *> live_sinks;
    for (auto *sink : sinks)
        if (sink != nullptr)
            live_sinks.push_back(sink);
    for (auto *sink : live_sinks)
        sink->begin(total);

    std::vector<std::unique_ptr<DeviceTelemetry>> done(total);

    if (workers <= 1) {
        for (u64 i = 0; i < total; ++i) {
            done[i] = std::make_unique<DeviceTelemetry>(
                simulateDevice(plan, static_cast<u32>(i)));
            for (auto *sink : live_sinks)
                sink->add(*done[i]);
        }
    } else {
        // Work stealing over device lifetimes: the shared cursor hands
        // the next device to whichever worker frees up first, so a
        // fleet of wildly uneven lifetimes (a solar device waiting out
        // the night next to a bench device) still load-balances.
        std::atomic<u64> next{0};
        std::mutex emitMutex;
        u64 emitted = 0;

        auto workerLoop = [&]() {
            for (;;) {
                const u64 i = next.fetch_add(1);
                if (i >= total)
                    return;
                auto telemetry = std::make_unique<DeviceTelemetry>(
                    simulateDevice(plan, static_cast<u32>(i)));

                std::lock_guard<std::mutex> lock(emitMutex);
                done[i] = std::move(telemetry);
                while (emitted < total && done[emitted]) {
                    for (auto *sink : live_sinks)
                        sink->add(*done[emitted]);
                    ++emitted;
                }
            }
        };

        std::vector<std::thread> pool;
        pool.reserve(workers);
        for (u32 w = 0; w < workers; ++w)
            pool.emplace_back(workerLoop);
        for (auto &t : pool)
            t.join();
        SONIC_ASSERT(emitted == total, "fleet lost devices");
    }

    for (auto *sink : live_sinks)
        sink->end();

    // Sequential reduction in device-index order: the summary is a
    // pure function of the per-device telemetry, so it is bit-identical
    // for every thread count.
    FleetSummary summary;
    summary.devices = plan.devices;
    summary.horizonSeconds = plan.horizonSeconds;
    summary.baseSeed = plan.baseSeed;
    std::vector<f64> latencies;
    std::vector<f64> deliveries;
    for (u64 i = 0; i < total; ++i) {
        const DeviceTelemetry &t = *done[i];
        summary.total.accumulate(t);
        summary.byEnvironment[t.assignment.environment.label()]
            .accumulate(t);
        summary.byImpl[std::string(
                           kernels::implName(t.assignment.impl))]
            .accumulate(t);
        summary.byNet[t.assignment.net].accumulate(t);
        summary.byPipeline[t.assignment.pipeline].accumulate(t);
        latencies.insert(latencies.end(), t.inferenceSeconds.begin(),
                         t.inferenceSeconds.end());
        deliveries.insert(deliveries.end(), t.deliverySeconds.begin(),
                          t.deliverySeconds.end());
    }
    std::sort(latencies.begin(), latencies.end());
    summary.latencyP50Seconds = nearestRank(latencies, 50.0);
    summary.latencyP95Seconds = nearestRank(latencies, 95.0);
    summary.latencyP99Seconds = nearestRank(latencies, 99.0);
    std::sort(deliveries.begin(), deliveries.end());
    summary.deliveryP50Seconds = nearestRank(deliveries, 50.0);
    summary.deliveryP95Seconds = nearestRank(deliveries, 95.0);
    summary.deliveryP99Seconds = nearestRank(deliveries, 99.0);
    return summary;
}

} // namespace sonic::fleet
