/**
 * @file
 * The fleet simulator: thousands of concurrent intermittently-powered
 * devices, each living out a seeded deployment — a model, a kernel, a
 * harvested-energy environment (src/env) with its own capacitor size
 * and deployment phase — and streaming per-device plus aggregate
 * telemetry.
 *
 * A FleetPlan is declarative, like a SweepPlan: it names the
 * model/kernel/environment/pipeline distributions and the fleet size,
 * and every
 * device's assignment and seed derive deterministically from the base
 * seed and the device index alone. Execution fans device lifetimes
 * across a worker pool with work stealing (a shared atomic cursor:
 * whichever worker frees up first takes the next device), and the
 * aggregate FleetSummary is bit-identical regardless of thread count
 * because per-device telemetry is placed by device index and reduced
 * sequentially.
 *
 * A device lifetime: boot fully charged, run an inference, sleep until
 * the harvester refills the buffer, repeat — until the simulated
 * horizon or the per-device inference cap is reached, or the kernel is
 * declared non-terminating under that environment (a DNF device, e.g.
 * a large tiling on a tiny capacitor). Telemetry per device:
 * inferences/day, reboots/inference, dead-time fraction,
 * energy/inference, per-inference latency; the summary aggregates
 * fleet-wide and per environment/kernel/model, with p50/p95/p99
 * latency over every completed inference.
 */

#ifndef SONIC_FLEET_FLEET_HH
#define SONIC_FLEET_FLEET_HH

#include <map>
#include <string>
#include <vector>

#include "app/experiment.hh"
#include "env/environment.hh"
#include "pipeline/pipeline.hh"

namespace sonic::trace
{
class TraceCollector; // src/trace/trace.hh; fleet.cc sees the full type
}

namespace sonic::fleet
{

/** What one device in the fleet was assigned (derived, not chosen). */
struct DeviceAssignment
{
    u32 deviceIndex = 0;
    dnn::NetRef net;
    kernels::Impl impl = kernels::Impl::Sonic;
    env::EnvRef environment;
    /** Registered pipeline the device runs each round. */
    std::string pipeline = "infer-only";
    /** Per-device seed: environment phase + stochastic models (ACK loss). */
    u64 seed = 0;

    /** @name Positions in the plan's distribution lists (the compact
     * coordinates the round cache keys on). */
    /// @{
    u32 netIndex = 0;
    u32 implIndex = 0;
    u32 envIndex = 0;
    u32 pipelineIndex = 0;
    /// @}
};

/** Declarative fleet description. */
struct FleetPlan
{
    /** Number of devices in the deployment. */
    u32 devices = 100;

    /** @name Assignment distributions (uniform over each list,
     * seeded per device). */
    /// @{
    std::vector<dnn::NetRef> nets{"MNIST"};
    std::vector<kernels::Impl> impls{kernels::Impl::Sonic};
    std::vector<env::EnvRef> environments{{"rf-paper", 0.0}};
    std::vector<std::string> pipelines{"infer-only"};
    /// @}

    /** Simulated deployment length per device. */
    f64 horizonSeconds = 86400.0;

    /**
     * Inference cap per device (0 = horizon-bound only). Fleet-scale
     * runs simulate a few inferences per device and report rates;
     * the horizon still bounds devices whose environment is so poor
     * that even one inference exceeds it.
     */
    u32 maxInferencesPerDevice = 4;

    app::ProfileVariant profile = app::ProfileVariant::Standard;
    u64 baseSeed = 0x5eed;

    /**
     * Trace 1-in-N devices (0 = tracing off). Device i is sampled iff
     * `traceEvery > 0 && i % traceEvery == 0`, a pure function of the
     * index — independent of thread count, like assignmentFor. Sampled
     * devices run fully unmemoized (they neither read nor write the
     * round/lifetime caches) so cache contents and the telemetry of
     * every other device are untouched by sampling; their own
     * telemetry is bit-identical too, by the cache soundness
     * invariant. Takes effect only when FleetOptions::traces is set.
     */
    u32 traceEvery = 0;

    /**
     * Planned kernel assignment (sonic_plan output): maps a coordinate
     * key — coordinateKey(envLabel, net, pipeline) — to the kernel
     * every device landing on that coordinate runs. Empty = the
     * default hash-dealt uniform draw over `impls` (byte-identical to
     * pre-planner fleets). When non-empty it must cover the FULL
     * environments x nets x pipelines cross product (validate()
     * enforces this) and only name kernels present in `impls`, so the
     * round-cache coordinates stay dense.
     *
     * The env/net/pipeline/seed deals are untouched: a plan only
     * overrides WHICH kernel a device runs, so planned and hash-dealt
     * fleets are device-for-device comparable.
     */
    std::map<std::string, kernels::Impl> implByCoordinate;

    /** The implByCoordinate key of one coordinate. */
    static std::string coordinateKey(const std::string &envLabel,
                                     const std::string &net,
                                     const std::string &pipeline);

    /**
     * Validate the distributions (registered model/environment names,
     * non-empty axes, positive fleet size) and, when a planned
     * assignment is present, its coordinate coverage. Fatal on
     * configuration errors, naming the registered alternatives.
     */
    void validate() const;

    /**
     * The deterministic assignment of one device: a pure function of
     * (baseSeed, deviceIndex) and the distribution lists — independent
     * of thread count and of which worker runs the device.
     */
    DeviceAssignment assignmentFor(u32 device_index) const;
};

/** Everything measured over one device lifetime. */
struct DeviceTelemetry
{
    DeviceAssignment assignment;

    u32 inferencesCompleted = 0;
    bool diedNonTerminating = false; ///< kernel DNF under this env
    /** An inference ended neither completed nor non-terminating (no
     * kernel does this today; kept distinct so a future bounded-retry
     * failure mode cannot masquerade as a healthy device). */
    bool failedIncomplete = false;
    u64 reboots = 0;

    f64 liveSeconds = 0.0;
    f64 deadSeconds = 0.0; ///< recharge + TX backoff time
    f64 energyJ = 0.0;
    f64 harvestedJ = 0.0;

    /** @name Pipeline delivery telemetry (zero for infer-only). */
    /// @{
    u32 resultsDelivered = 0;  ///< rounds whose result was acknowledged
    u32 txGaveUpRounds = 0;    ///< rounds that exhausted TX attempts
    u64 txAttempts = 0;        ///< completed TX attempts, incl. acked
    u64 txRetries = 0;         ///< completed attempts without an ACK
    f64 radioEnergyJ = 0.0;    ///< wake + payload + ACK-listen energy
    f64 senseEnergyJ = 0.0;    ///< sample-acquisition energy
    f64 txBackoffSeconds = 0.0; ///< retry backoff (inside deadSeconds)
    /// @}

    /**
     * Wall-clock (live + dead) seconds of each completed inference.
     * Populated by simulateDevice; telemetry materialized from
     * FleetColumns (what runFleet hands to sinks) carries only the
     * running sums below — at a million devices the per-round lists
     * live in the worker-local percentile buffers instead.
     */
    std::vector<f64> inferenceSeconds;

    /** Sense-to-ACK wall-clock seconds of each delivered result
     * (same materialization caveat as inferenceSeconds). */
    std::vector<f64> deliverySeconds;

    /** Running sums of the two lists (always populated; accumulated
     * in round order, so sum/count is bit-identical to the mean a
     * sequential pass over the lists would compute). */
    f64 inferenceSecondsSum = 0.0;
    f64 deliverySecondsSum = 0.0;

    f64 totalSeconds() const { return liveSeconds + deadSeconds; }

    f64
    meanInferenceSeconds() const
    {
        return inferencesCompleted > 0
            ? inferenceSecondsSum / inferencesCompleted
            : 0.0;
    }

    f64
    meanDeliverySeconds() const
    {
        return resultsDelivered > 0
            ? deliverySecondsSum / resultsDelivered
            : 0.0;
    }

    f64
    inferencesPerDay() const
    {
        const f64 t = totalSeconds();
        return t > 0.0 ? inferencesCompleted * 86400.0 / t : 0.0;
    }

    f64
    rebootsPerInference() const
    {
        return inferencesCompleted > 0
            ? static_cast<f64>(reboots) / inferencesCompleted
            : static_cast<f64>(reboots);
    }

    f64
    deadFraction() const
    {
        const f64 t = totalSeconds();
        return t > 0.0 ? deadSeconds / t : 0.0;
    }

    f64
    energyPerInferenceJ() const
    {
        return inferencesCompleted > 0 ? energyJ / inferencesCompleted
                                       : 0.0;
    }

    f64
    resultsDeliveredPerDay() const
    {
        const f64 t = totalSeconds();
        return t > 0.0 ? resultsDelivered * 86400.0 / t : 0.0;
    }

    f64
    radioEnergyFraction() const
    {
        return energyJ > 0.0 ? radioEnergyJ / energyJ : 0.0;
    }
};

/**
 * Struct-of-arrays per-device telemetry: one column per scalar field,
 * indexed by device. The worker pool writes each completing device's
 * row at its own index (disjoint writes, no sharing), so a fleet of a
 * million devices streams through the pool cache-linearly instead of
 * chasing a million heap-allocated telemetry objects, and the summary
 * reduction is a columnar pass. DeviceTelemetry remains the row view:
 * materialize() rebuilds one (assignment recomputed from the plan,
 * latency lists elided — see DeviceTelemetry::inferenceSeconds).
 */
class FleetColumns
{
  public:
    explicit FleetColumns(u64 devices);

    u64 size() const { return inferencesCompleted.size(); }

    /** Write device i's scalar telemetry into the columns. */
    void store(u64 i, const DeviceTelemetry &t);

    /** Rebuild the row view of device i. */
    DeviceTelemetry materialize(const FleetPlan &plan, u64 i) const;

    /** @name Columns (public: the reduction reads them directly). */
    /// @{
    std::vector<u32> inferencesCompleted;
    std::vector<u8> status; ///< bit 0: DNF, bit 1: failed-incomplete
    std::vector<u64> reboots;
    std::vector<f64> liveSeconds;
    std::vector<f64> deadSeconds;
    std::vector<f64> energyJ;
    std::vector<f64> harvestedJ;
    std::vector<u32> resultsDelivered;
    std::vector<u32> txGaveUpRounds;
    std::vector<u64> txAttempts;
    std::vector<u64> txRetries;
    std::vector<f64> radioEnergyJ;
    std::vector<f64> senseEnergyJ;
    std::vector<f64> txBackoffSeconds;
    std::vector<f64> inferenceSecondsSum;
    std::vector<f64> deliverySecondsSum;
    /// @}
};

/**
 * Receives per-device telemetry in device-index order as lifetimes
 * complete (out-of-order completions are held back, as in the sweep
 * engine). Methods are never called concurrently. Telemetry delivered
 * by runFleet is materialized from FleetColumns: every scalar field
 * and sum is populated, the per-round latency lists are not.
 */
class FleetSink
{
  public:
    virtual ~FleetSink() = default;

    virtual void begin(u64 totalDevices) { (void)totalDevices; }
    virtual void add(const DeviceTelemetry &device) = 0;
    virtual void end() {}
};

/** Streams one CSV row per device (header first). */
class FleetCsvSink : public FleetSink
{
  public:
    explicit FleetCsvSink(std::ostream &os) : os_(os) {}

    void begin(u64 totalDevices) override;
    void add(const DeviceTelemetry &device) override;

  private:
    std::ostream &os_;
};

/** Streams a JSON array with one object per device (the same stored
 * and derived fields as the CSV rows, at round-trip precision). */
class FleetJsonSink : public FleetSink
{
  public:
    explicit FleetJsonSink(std::ostream &os) : os_(os) {}

    void begin(u64 totalDevices) override;
    void add(const DeviceTelemetry &device) override;
    void end() override;

  private:
    std::ostream &os_;
    bool first_ = true;
};

/**
 * The scalar fields one telemetry row contributes to an aggregation
 * bucket — the single field-mapping point shared by
 * GroupStats::accumulate() (row objects from runFleet) and the
 * columnar .sonicz fold (telemetry::aggregate), so the two cannot
 * drift apart field-by-field.
 */
struct TelemetryRow
{
    bool dnf = false;
    bool failed = false;
    u32 inferences = 0;
    u64 reboots = 0;
    f64 liveSeconds = 0.0;
    f64 deadSeconds = 0.0;
    f64 energyJ = 0.0;
    f64 harvestedJ = 0.0;
    u32 resultsDelivered = 0;
    u32 txGaveUpRounds = 0;
    u64 txAttempts = 0;
    u64 txRetries = 0;
    f64 radioEnergyJ = 0.0;
    f64 senseEnergyJ = 0.0;
    f64 txBackoffSeconds = 0.0;
};

/** One aggregation bucket (the whole fleet, or a breakdown group). */
struct GroupStats
{
    u64 devices = 0;
    u64 dnfDevices = 0;
    u64 failedDevices = 0; ///< stopped incomplete without a DNF verdict
    u64 inferences = 0;
    u64 reboots = 0;
    f64 liveSeconds = 0.0;
    f64 deadSeconds = 0.0;
    f64 energyJ = 0.0;
    f64 harvestedJ = 0.0;

    u64 resultsDelivered = 0;
    u64 txGaveUpDevices = 0; ///< devices with >= 1 given-up round
    u64 txAttempts = 0;
    u64 txRetries = 0;
    f64 radioEnergyJ = 0.0;
    f64 senseEnergyJ = 0.0;
    f64 txBackoffSeconds = 0.0;

    void accumulate(const DeviceTelemetry &device);
    void accumulateRow(const TelemetryRow &row);

    f64
    inferencesPerDeviceDay() const
    {
        const f64 t = liveSeconds + deadSeconds;
        return t > 0.0 ? inferences * 86400.0 / t : 0.0;
    }

    f64
    rebootsPerInference() const
    {
        return inferences > 0
            ? static_cast<f64>(reboots) / inferences
            : static_cast<f64>(reboots);
    }

    f64
    deadFraction() const
    {
        const f64 t = liveSeconds + deadSeconds;
        return t > 0.0 ? deadSeconds / t : 0.0;
    }

    f64
    energyPerInferenceJ() const
    {
        return inferences > 0 ? energyJ / inferences : 0.0;
    }

    f64
    deliveredPerDeviceDay() const
    {
        const f64 t = liveSeconds + deadSeconds;
        return t > 0.0 ? resultsDelivered * 86400.0 / t : 0.0;
    }

    f64
    retriesPerDelivered() const
    {
        return resultsDelivered > 0
            ? static_cast<f64>(txRetries) / resultsDelivered
            : static_cast<f64>(txRetries);
    }

    f64
    radioEnergyFraction() const
    {
        return energyJ > 0.0 ? radioEnergyJ / energyJ : 0.0;
    }
};

/** The machine-readable outcome of a fleet run. */
struct FleetSummary
{
    u32 devices = 0;
    f64 horizonSeconds = 0.0;
    u64 baseSeed = 0;

    GroupStats total;
    std::map<std::string, GroupStats> byEnvironment;
    std::map<std::string, GroupStats> byImpl;
    std::map<std::string, GroupStats> byNet;
    std::map<std::string, GroupStats> byPipeline;

    /** Latency percentiles over every completed inference
     * (nearest-rank on the sorted latency list; 0 when none). */
    f64 latencyP50Seconds = 0.0;
    f64 latencyP95Seconds = 0.0;
    f64 latencyP99Seconds = 0.0;

    /** Sense-to-ACK latency percentiles over delivered results. */
    f64 deliveryP50Seconds = 0.0;
    f64 deliveryP95Seconds = 0.0;
    f64 deliveryP99Seconds = 0.0;

    /**
     * Memoization counters. Diagnostics only, and deliberately NOT
     * part of toJson(): the summary artifact must stay byte-identical
     * between memoized and --no-cache runs (the CI soundness gate).
     */
    struct CacheStats
    {
        u64 roundHits = 0;
        u64 roundMisses = 0;
        u64 lifetimeHits = 0;
        u64 lifetimeMisses = 0;
        u64 uncachedRounds = 0; ///< ack-variant or foreign-supply rounds

        u64
        lookups() const
        {
            return roundHits + roundMisses + lifetimeHits
                 + lifetimeMisses;
        }

        f64
        hitRate() const
        {
            const u64 n = lookups();
            return n > 0
                ? static_cast<f64>(roundHits + lifetimeHits)
                      / static_cast<f64>(n)
                : 0.0;
        }
    };
    CacheStats cache;

    /** Render the deployment report as JSON (the CI artifact). */
    std::string toJson() const;
};

/** Execution options. */
struct FleetOptions
{
    /** Worker threads; 0 = hardware concurrency. */
    u32 threads = 0;

    /** Memoize round traces / always-on lifetimes (sonic_fleet
     * --no-cache clears this for A/B verification). */
    bool useCache = true;

    /**
     * Re-run every cache hit and cross-check the full trace — energy,
     * timing, TX accounting, logits digest and the PR 3 NVM digest —
     * against the memoized entry, dying on any mismatch. Defaults on
     * in debug builds; costs a full simulation per hit.
     */
#ifndef NDEBUG
    bool verifyCache = true;
#else
    bool verifyCache = false;
#endif

    /**
     * Event-trace collector for the devices FleetPlan::traceEvery
     * samples; null (the default) disables tracing entirely — no
     * probes are attached and the simulation paths are the exact
     * pre-trace ones. The collector outlives the run and is written
     * by the caller (device order, thread-count independent).
     */
    trace::TraceCollector *traces = nullptr;

    /** Heartbeat devices/s + ETA line on stderr while the fleet runs
     * (sonic_fleet --progress). */
    bool progress = false;
};

/** A named, ready-to-run deployment (sonic_fleet --scenario=...). */
struct FleetScenario
{
    std::string name;
    std::string description;
    FleetPlan plan;
};

/**
 * The built-in scenarios — smoke-200 (CI smoke), mixed-1k (the
 * acceptance fleet; scale it with --devices), wildlife-day (the
 * paper's motivating deployment) — shared by the sonic_fleet CLI and
 * the bench_fleet_scale harness.
 */
const std::vector<FleetScenario> &namedScenarios();

/**
 * Simulate one device lifetime on the calling thread, unmemoized
 * (exposed for tests; runFleet fans the memoizing equivalent across
 * the pool — see src/fleet/round_cache.hh for why the two are
 * bit-identical).
 */
DeviceTelemetry simulateDevice(const FleetPlan &plan, u32 device_index);

/**
 * Run the whole fleet. Telemetry streams to the sinks in device-index
 * order; the returned summary is bit-identical for every thread count
 * and for memoized vs unmemoized execution (FleetOptions::useCache).
 */
FleetSummary runFleet(const FleetPlan &plan, FleetOptions options = {},
                      const std::vector<FleetSink *> &sinks = {});

} // namespace sonic::fleet

#endif // SONIC_FLEET_FLEET_HH
