#include "fleet/round_cache.hh"

#include "fleet/fleet.hh"

namespace sonic::fleet
{

// --- RoundKey -------------------------------------------------------

u64
RoundKey::hash() const
{
    u64 h = 0xcbf29ce484222325ull;
    const auto fold = [&h](u64 v, u32 bytes) {
        for (u32 b = 0; b < bytes; ++b) {
            h ^= (v >> (b * 8)) & 0xffu;
            h *= 0x100000001b3ull;
        }
    };
    fold(netIndex, 4);
    fold(implIndex, 4);
    fold(pipelineIndex, 4);
    fold(inputIndex, 4);
    fold(capacityNjBits, 8);
    return h;
}

// --- RoundCache -----------------------------------------------------

struct RoundCache::Node
{
    RoundKey key;
    RoundTrace trace;
};

struct RoundCache::Shard
{
    /** Published entries: readers acquire-load and compare full keys;
     * a null slot terminates the probe (slots are never recycled). */
    std::atomic<Node *> slots[kSlotsPerShard] = {};

    /** Insert-side state: the mutex serializes publication, the node
     * list owns the allocations. */
    std::mutex mutex;
    std::vector<std::unique_ptr<Node>> nodes;
};

RoundCache::RoundCache() : shards_(new Shard[kShards]) {}

RoundCache::~RoundCache() = default;

const RoundTrace *
RoundCache::find(const RoundKey &key) const
{
    const u64 h = key.hash();
    const Shard &shard = shards_[h % kShards];
    const u64 base = h / kShards;
    for (u32 probe = 0; probe < kSlotsPerShard; ++probe) {
        const u32 slot =
            static_cast<u32>((base + probe) % kSlotsPerShard);
        const Node *node =
            shard.slots[slot].load(std::memory_order_acquire);
        if (node == nullptr)
            return nullptr;
        if (node->key == key)
            return &node->trace;
    }
    return nullptr;
}

const RoundTrace *
RoundCache::insert(const RoundKey &key, RoundTrace trace)
{
    const u64 h = key.hash();
    Shard &shard = shards_[h % kShards];
    const u64 base = h / kShards;

    std::lock_guard<std::mutex> lock(shard.mutex);
    for (u32 probe = 0; probe < kSlotsPerShard; ++probe) {
        const u32 slot =
            static_cast<u32>((base + probe) % kSlotsPerShard);
        Node *resident =
            shard.slots[slot].load(std::memory_order_relaxed);
        if (resident != nullptr) {
            if (resident->key == key)
                return &resident->trace; // racing duplicate: first wins
            continue;
        }
        auto node = std::make_unique<Node>();
        node->key = key;
        node->trace = std::move(trace);
        Node *raw = node.get();
        shard.nodes.push_back(std::move(node));
        shard.slots[slot].store(raw, std::memory_order_release);
        return &raw->trace;
    }
    // Shard full: skip the insert. Purely a performance loss — the
    // caller already holds the freshly computed trace.
    return nullptr;
}

// --- LifetimeCache --------------------------------------------------

bool
LifetimeCache::find(const Key &key, DeviceTelemetry *out) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = entries_.find(key);
    if (it == entries_.end())
        return false;
    *out = *it->second;
    return true;
}

void
LifetimeCache::insert(const Key &key, const DeviceTelemetry &telemetry)
{
    auto copy = std::make_unique<DeviceTelemetry>(telemetry);
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, std::move(copy)); // first writer wins
}

// --- Replay ---------------------------------------------------------

f64
replayRound(env::HarvestSupply &supply, const RoundTrace &trace)
{
    // Mirror Device::reboot exactly: elapse the uptime since the last
    // notification, then recharge. The level a brown-out leaves is
    // always 0 (the residual charge below the regulator window is
    // lost), so each recharge refills the full capacity deficit from
    // the true simulated time — the clock, dead-time and harvested-
    // energy arithmetic is the bit-identical sequence the un-memoized
    // run performs.
    f64 dead = 0.0;
    for (u64 r = 0; r < trace.reboots; ++r) {
        supply.elapse(trace.liveDeltas[r]);
        supply.setLevelNjForReplay(0.0);
        dead += supply.recharge();
    }
    supply.elapse(trace.liveDeltas[trace.reboots]);
    supply.setLevelNjForReplay(trace.endLevelNj);
    return dead;
}

} // namespace sonic::fleet
