/**
 * @file
 * Round-trace memoization for million-device fleets.
 *
 * The soundness argument. During one pipeline round a device touches
 * its supply only through draw/grant/settle — pure capacitor-level
 * arithmetic — and at each reboot through elapse() + recharge(). The
 * environment clock therefore never influences *what the kernel does*:
 * every round starts with a full buffer, a brown-out always empties it
 * (so every mid-round recharge refills the identical capacity
 * deficit), and the op sequence between failures is a deterministic
 * function of the journal and kernel state alone. The clock only
 * decides *how long* each recharge takes. So the kernel-side trace of
 * a round is a pure function of
 *
 *     (net, impl, pipeline, usable capacitor energy, input index)
 *
 * — independent of the environment's harvest model, the seed-derived
 * deployment phase, and the round index (the ACK-loss draw is the one
 * exception, gated by pipeline::ackInvariant). A 1M-device plan then
 * pays kernel simulation only for the *distinct* round coordinates it
 * contains; every other device replays the memoized trace, driving its
 * own real HarvestSupply through the recorded elapse()/recharge()
 * walk so level, clock, dead-time and harvest accounting stay
 * bit-identical to the un-memoized run.
 *
 * Devices on always-on supplies never reboot and never touch a clock,
 * so their whole lifetime is memoizable at once (LifetimeCache); the
 * per-round machinery is for harvesting environments.
 *
 * Reads are lock-free (sharded open-addressed tables of atomically
 * published entries); inserts take a per-shard mutex. In debug builds
 * (or with FleetOptions::verifyCache) every hit re-runs the round and
 * cross-checks the full trace including the PR 3 NVM digest.
 */

#ifndef SONIC_FLEET_ROUND_CACHE_HH
#define SONIC_FLEET_ROUND_CACHE_HH

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <tuple>
#include <vector>

#include "env/environment.hh"
#include "util/types.hh"

namespace sonic::fleet
{

struct DeviceTelemetry;

/**
 * The coordinate a memoized round is keyed on. Fields are indices into
 * the owning FleetPlan's distribution lists (the cache lives for one
 * runFleet call, so plan-wide constants — profile, horizon, driver
 * limits — need no representation), plus the bit pattern of the
 * supply's usable buffer energy, which is the only supply parameter
 * the kernel trace can observe.
 */
struct RoundKey
{
    u32 netIndex = 0;
    u32 implIndex = 0;
    u32 pipelineIndex = 0;
    u32 inputIndex = 0;
    u64 capacityNjBits = 0;

    bool operator==(const RoundKey &other) const = default;

    /** FNV-1a over the field bytes (shard/slot selection only; lookups
     * compare full keys, so hash collisions cannot alias traces). */
    u64 hash() const;
};

/**
 * The clock-independent trace of one round: everything simulateDevice
 * accrues into telemetry, plus the elapse() walk needed to replay the
 * supply's clock, plus digests for debug cross-checking.
 */
struct RoundTrace
{
    f64 liveSeconds = 0.0;
    f64 energyJ = 0.0;
    f64 senseEnergyJ = 0.0;
    f64 radioEnergyJ = 0.0;
    f64 backoffSeconds = 0.0;

    /** Capacitor level when the round ended (post-settle). */
    f64 endLevelNj = 0.0;

    u64 reboots = 0;
    u32 txAttempts = 0;
    u32 txFailedAttempts = 0;
    bool completed = false;
    bool nonTerminating = false;
    bool delivered = false;
    bool txGaveUp = false;

    /** Verification digests (PR 3 NVM digest + logits digest). */
    u64 nvmDigest = 0;
    u64 logitsDigest = 0;

    /**
     * The uptime increments handed to PowerSupply::elapse, in call
     * order: one per reboot (immediately before that reboot's
     * recharge) plus the final end-of-round flush — reboots + 1
     * entries.
     */
    std::vector<f64> liveDeltas;
};

/**
 * Sharded, lock-free-read map from RoundKey to RoundTrace. Capacity is
 * bounded (the distinct-coordinate count of a plan is tiny — nets x
 * impls x pipelines x capacitors x inputs); a full shard silently
 * stops inserting, which costs speed, never correctness.
 */
class RoundCache
{
  public:
    RoundCache();
    ~RoundCache();

    RoundCache(const RoundCache &) = delete;
    RoundCache &operator=(const RoundCache &) = delete;

    /** Lock-free lookup; nullptr on miss. The returned trace is
     * immutable and lives as long as the cache. */
    const RoundTrace *find(const RoundKey &key) const;

    /**
     * Publish a trace (first writer wins under a per-shard mutex; a
     * racing duplicate is discarded). Returns the resident entry, or
     * nullptr when the shard is full and the insert was skipped.
     */
    const RoundTrace *insert(const RoundKey &key, RoundTrace trace);

    /** @name Hit accounting (relaxed atomics, read after the run) */
    /// @{
    void countHit() const { hits_.fetch_add(1, std::memory_order_relaxed); }
    void countMiss() const
    {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    u64 misses() const { return misses_.load(std::memory_order_relaxed); }
    /// @}

    static constexpr u32 kShards = 64;
    static constexpr u32 kSlotsPerShard = 256;

  private:
    struct Node;
    struct Shard;

    std::unique_ptr<Shard[]> shards_;
    mutable std::atomic<u64> hits_{0};
    mutable std::atomic<u64> misses_{0};
};

/**
 * Whole-lifetime memoization for devices on always-on supplies: no
 * reboot, no clock, no phase — the entire DeviceTelemetry (modulo the
 * assignment) is a pure function of the assignment coordinate. Keyed
 * by plan-list indices like RoundKey. Lookups are rare (once per
 * device, and only for always-on environments), so a plain mutex-
 * guarded map suffices.
 */
class LifetimeCache
{
  public:
    struct Key
    {
        u32 netIndex = 0;
        u32 implIndex = 0;
        u32 envIndex = 0;
        u32 pipelineIndex = 0;

        bool operator<(const Key &o) const
        {
            return std::tie(netIndex, implIndex, envIndex,
                            pipelineIndex)
                 < std::tie(o.netIndex, o.implIndex, o.envIndex,
                            o.pipelineIndex);
        }
    };

    /** Copy of the memoized lifetime; false on miss. */
    bool find(const Key &key, DeviceTelemetry *out) const;

    void insert(const Key &key, const DeviceTelemetry &telemetry);

    void countHit() const { hits_.fetch_add(1, std::memory_order_relaxed); }
    void countMiss() const
    {
        misses_.fetch_add(1, std::memory_order_relaxed);
    }
    u64 hits() const { return hits_.load(std::memory_order_relaxed); }
    u64 misses() const { return misses_.load(std::memory_order_relaxed); }

  private:
    mutable std::mutex mutex_;
    std::map<Key, std::unique_ptr<DeviceTelemetry>> entries_;
    mutable std::atomic<u64> hits_{0};
    mutable std::atomic<u64> misses_{0};
};

/**
 * A BorrowedSupply that records every elapse() increment — the capture
 * side of trace memoization. The recorded vector outlives the Device
 * (whose destructor issues the final elapse), so the caller owns it.
 */
class RecordingSupply : public env::BorrowedSupply
{
  public:
    RecordingSupply(arch::PowerSupply *inner, std::vector<f64> *deltas)
        : BorrowedSupply(inner), deltas_(deltas)
    {
    }

    void
    elapse(f64 live_seconds) override
    {
        deltas_->push_back(live_seconds);
        BorrowedSupply::elapse(live_seconds);
    }

  private:
    std::vector<f64> *deltas_;
};

/**
 * Replay a memoized round against the device's real supply: the
 * recorded elapse() deltas interleaved with forced-empty recharges,
 * then the final elapse and the recorded end-of-round level. Returns
 * the round's dead time, accumulated in the same order the un-memoized
 * Device would have (bit-identical sum).
 */
f64 replayRound(env::HarvestSupply &supply, const RoundTrace &trace);

} // namespace sonic::fleet

#endif // SONIC_FLEET_ROUND_CACHE_HH
