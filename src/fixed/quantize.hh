/**
 * @file
 * Host-side quantization helpers: convert float tensors produced by
 * GENESIS into the raw i16 Q7.8 images flashed into device FRAM, and
 * measure the quantization error introduced.
 */

#ifndef SONIC_FIXED_QUANTIZE_HH
#define SONIC_FIXED_QUANTIZE_HH

#include <vector>

#include "fixed/fixed.hh"
#include "util/types.hh"

namespace sonic::fixed
{

/** Quantize a float vector to raw Q7.8 words. */
std::vector<i16> quantizeQ78(const std::vector<f64> &values);

/** Dequantize raw Q7.8 words back to floats. */
std::vector<f64> dequantizeQ78(const std::vector<i16> &raw);

/** Largest absolute quantization error over the vector. */
f64 maxQuantizationError(const std::vector<f64> &values);

} // namespace sonic::fixed

#endif // SONIC_FIXED_QUANTIZE_HH
