/**
 * @file
 * Saturating 16-bit fixed-point arithmetic, the numeric format of the
 * on-device inference path. The paper's prototype uses 16-bit fixed
 * point throughout (LEA's native format is Q0.15; SONIC uses a format
 * with integer headroom and TAILS bit-shifts between them — see
 * Sec. 9.2 "control overhead"). We implement a compile-time Q-format
 * Fx<Frac> with round-to-nearest multiplication and saturation on
 * overflow, plus the Q7.8 alias the DNN kernels use.
 */

#ifndef SONIC_FIXED_FIXED_HH
#define SONIC_FIXED_FIXED_HH

#include <algorithm>
#include <cmath>
#include <compare>
#include <cstdlib>
#include <limits>

#include "util/types.hh"

namespace sonic::fixed
{

/**
 * 16-bit signed fixed point with Frac fractional bits.
 * Range: [-2^(15-Frac), 2^(15-Frac)). All operations saturate.
 */
template <int Frac>
class Fx
{
    static_assert(Frac >= 0 && Frac <= 15, "Frac must fit an i16");

  public:
    static constexpr int kFrac = Frac;
    static constexpr i32 kOne = i32{1} << Frac;
    static constexpr i16 kRawMax = std::numeric_limits<i16>::max();
    static constexpr i16 kRawMin = std::numeric_limits<i16>::min();

    constexpr Fx() = default;

    /** Reinterpret a raw i16 bit pattern as a fixed-point value. */
    static constexpr Fx
    fromRaw(i16 raw)
    {
        Fx v;
        v.raw_ = raw;
        return v;
    }

    /** Quantize a double (round-to-nearest, saturating). */
    static Fx
    fromFloat(f64 x)
    {
        const f64 scaled = x * static_cast<f64>(kOne);
        const f64 rounded = std::nearbyint(scaled);
        return fromRaw(saturate(static_cast<i64>(rounded)));
    }

    constexpr i16 raw() const { return raw_; }

    f64
    toFloat() const
    {
        return static_cast<f64>(raw_) / static_cast<f64>(kOne);
    }

    /** Saturating add. */
    friend constexpr Fx
    operator+(Fx a, Fx b)
    {
        return fromRaw(saturate(i64{a.raw_} + i64{b.raw_}));
    }

    /** Saturating subtract. */
    friend constexpr Fx
    operator-(Fx a, Fx b)
    {
        return fromRaw(saturate(i64{a.raw_} - i64{b.raw_}));
    }

    /** Saturating negate. */
    constexpr Fx
    operator-() const
    {
        return fromRaw(saturate(-i64{raw_}));
    }

    /**
     * Saturating multiply with round-to-nearest renormalization —
     * matches the MSP430 peripheral-multiplier + shift sequence.
     */
    friend constexpr Fx
    operator*(Fx a, Fx b)
    {
        i64 wide = i64{a.raw_} * i64{b.raw_};
        wide += i64{1} << (Frac - 1); // rounding bias
        return fromRaw(saturate(wide >> Frac));
    }

    friend constexpr bool operator==(Fx a, Fx b) { return a.raw_ == b.raw_; }
    friend constexpr auto
    operator<=>(Fx a, Fx b)
    {
        return a.raw_ <=> b.raw_;
    }

    /** max(0, x) — the ReLU primitive. */
    static constexpr Fx
    relu(Fx x)
    {
        return x.raw_ > 0 ? x : Fx{};
    }

    static constexpr Fx
    max(Fx a, Fx b)
    {
        return a.raw_ >= b.raw_ ? a : b;
    }

    /** Smallest positive step. */
    static constexpr Fx epsilon() { return fromRaw(1); }

    /** Largest / smallest representable values. */
    static constexpr Fx maxValue() { return fromRaw(kRawMax); }
    static constexpr Fx minValue() { return fromRaw(kRawMin); }

  private:
    static constexpr i16
    saturate(i64 wide)
    {
        if (wide > kRawMax)
            return kRawMax;
        if (wide < kRawMin)
            return kRawMin;
        return static_cast<i16>(wide);
    }

    i16 raw_ = 0;
};

/** The on-device activation/weight format: Q7.8, range (-128, 128). */
using Q78 = Fx<8>;

/** LEA's native format: Q0.15, range (-1, 1). */
using Q15 = Fx<15>;

/**
 * Convert between Q formats by arithmetic shift, reporting how many
 * single-bit shift operations the software must perform (LEA has no
 * vector left-shift, so TAILS pays these in scalar code; Sec. 9.2).
 */
template <int FromFrac, int ToFrac>
constexpr Fx<ToFrac>
convertFormat(Fx<FromFrac> x)
{
    if constexpr (ToFrac >= FromFrac) {
        const i64 wide = i64{x.raw()} << (ToFrac - FromFrac);
        const i64 hi = std::numeric_limits<i16>::max();
        const i64 lo = std::numeric_limits<i16>::min();
        return Fx<ToFrac>::fromRaw(
            static_cast<i16>(std::clamp(wide, lo, hi)));
    } else {
        return Fx<ToFrac>::fromRaw(
            static_cast<i16>(x.raw() >> (FromFrac - ToFrac)));
    }
}

/** Number of single-bit shifts needed to convert between formats. */
template <int FromFrac, int ToFrac>
constexpr u32
formatShiftCount()
{
    return FromFrac >= ToFrac ? FromFrac - ToFrac : ToFrac - FromFrac;
}

} // namespace sonic::fixed

#endif // SONIC_FIXED_FIXED_HH
