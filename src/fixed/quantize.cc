#include "fixed/quantize.hh"

#include <cmath>

namespace sonic::fixed
{

std::vector<i16>
quantizeQ78(const std::vector<f64> &values)
{
    std::vector<i16> raw;
    raw.reserve(values.size());
    for (f64 v : values)
        raw.push_back(Q78::fromFloat(v).raw());
    return raw;
}

std::vector<f64>
dequantizeQ78(const std::vector<i16> &raw)
{
    std::vector<f64> values;
    values.reserve(raw.size());
    for (i16 r : raw)
        values.push_back(Q78::fromRaw(r).toFloat());
    return values;
}

f64
maxQuantizationError(const std::vector<f64> &values)
{
    f64 worst = 0.0;
    for (f64 v : values) {
        const f64 back = Q78::fromFloat(v).toFloat();
        worst = std::max(worst, std::fabs(back - v));
    }
    return worst;
}

} // namespace sonic::fixed
