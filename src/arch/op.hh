/**
 * @file
 * The charged-operation vocabulary of the device model. Every unit of
 * work a kernel performs on the simulated MCU is expressed as one of
 * these operations; the energy profile maps each to cycles and nanojoules.
 * The set mirrors the categories the paper's Fig. 12 reports (loads,
 * stores, adds, multiplies, fixed-point ops, increments, task
 * transitions) plus the TAILS hardware operations (DMA, LEA).
 */

#ifndef SONIC_ARCH_OP_HH
#define SONIC_ARCH_OP_HH

#include <string_view>

#include "util/types.hh"

namespace sonic::arch
{

/** One charged operation class on the simulated MCU. */
enum class Op : u8
{
    RegOp,            ///< register move / simple ALU op
    AluAdd,           ///< integer add/sub in registers
    AluMul,           ///< integer multiply via memory-mapped peripheral
    AluShift,         ///< single-bit shift (no barrel shifter on MSP430)
    AluDiv,           ///< software divide/modulo step (no divide unit)
    FixedAdd,         ///< Q7.8 saturating add
    FixedMul,         ///< Q7.8 multiply (peripheral mul + shift + round)
    Incr,             ///< loop index increment
    Branch,           ///< compare + conditional jump
    FramLoad,         ///< load one 16-bit word from FRAM
    FramStore,        ///< store one 16-bit word to FRAM
    SramLoad,         ///< load one 16-bit word from SRAM
    SramStore,        ///< store one 16-bit word to SRAM
    TaskTransition,   ///< lightweight transition (SONIC runtime)
    AlpacaTransition, ///< full task-based-runtime transition (scheduler,
                      ///< privatization bookkeeping, stack/local re-init)
    LogWrite,         ///< redo-log append (Alpaca-style privatization)
    LogCommit,        ///< redo-log entry commit (copy log -> home)
    DmaWord,          ///< DMA transfer of one 16-bit word
    LeaInvoke,        ///< LEA command setup + start + completion interrupt
    LeaMac,           ///< one LEA multiply-accumulate lane-op
    Nop,              ///< fetch/decode-only instruction (overhead probe)
    SenseSample,      ///< acquire one sensor sample (ADC conversion)
    RadioWake,        ///< radio wake + synchronize before one TX attempt
    RadioTxByte,      ///< transmit one payload byte
    RadioRxAck,       ///< listen for the link-layer acknowledgment
    NumOps
};

constexpr u32 kNumOps = static_cast<u32>(Op::NumOps);

/** Stable short name for an operation (used in reports and CSV). */
std::string_view opName(Op op);

} // namespace sonic::arch

#endif // SONIC_ARCH_OP_HH
