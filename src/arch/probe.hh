/**
 * @file
 * The device trace probe: an observer interface the tracing subsystem
 * (src/trace) implements to receive simulation events — lease
 * grant/settle, power failure, recharge dead-time, reboot, attribution
 * (layer/part) switches, and the structural spans/instants the higher
 * layers (pipeline rounds and stages, kernel dispatch, task commits)
 * report through the same device.
 *
 * The probe is a plain nullable pointer on the Device. Tracing off
 * costs exactly one predictable branch at each (already cold or
 * moderate-rate) call site and NOTHING on the Device::consume fast
 * path, which is untouched — the hard constraint the trace-overhead
 * bench gates. All methods take a const Device: probes observe clocks
 * and stats, they never steer the simulation.
 */

#ifndef SONIC_ARCH_PROBE_HH
#define SONIC_ARCH_PROBE_HH

#include "arch/stats.hh"
#include "util/types.hh"

namespace sonic::arch
{

class Device;

/** Structural span kinds reported by the pipeline and kernel layers. */
enum class ProbeSpan : u8
{
    Round = 0,   ///< one pipeline round (arg = round index)
    Sense = 1,   ///< sense stage
    Infer = 2,   ///< one kernels::runInference dispatch
    Transmit = 3 ///< transmit stage (all attempts)
};

/** Instantaneous events reported by the task and pipeline layers. */
enum class ProbeInstant : u8
{
    TaskCommit = 0, ///< two-phase task commit (arg = next task id)
    TxBoundary = 1, ///< delivery boundary (arg = pipeline::TxBoundary)
    AckDelivered = 2 ///< the round's result was acknowledged
};

/**
 * Event sink for one traced Device. Default implementations are empty
 * so probes override only what they record.
 */
class TraceProbe
{
  public:
    virtual ~TraceProbe() = default;

    /** @name Device-internal events (arch/device.cc) */
    /// @{
    virtual void
    onLeaseGrant(const Device &, f64 grantedNj, u64 grantedOps)
    {
        (void)grantedNj;
        (void)grantedOps;
    }

    virtual void
    onLeaseSettle(const Device &, f64 usedNj)
    {
        (void)usedNj;
    }

    virtual void onPowerFailure(const Device &) {}

    /** Recharge dead-time just booked (deadSeconds already includes
     * it, so the span is [now - deadSeconds, now]). */
    virtual void
    onRecharge(const Device &, f64 deadSeconds)
    {
        (void)deadSeconds;
    }

    /** End of Device::reboot (volatile state cleared, buffer full). */
    virtual void
    onReboot(const Device &, u64 rebootIndex)
    {
        (void)rebootIndex;
    }

    /** Attribution switches (every kernel's ScopedLayer/ScopedPart). */
    virtual void
    onLayer(const Device &, u16 layer)
    {
        (void)layer;
    }

    virtual void
    onPart(const Device &, Part part)
    {
        (void)part;
    }
    /// @}

    /** @name Structural events from the pipeline/kernel/task layers */
    /// @{
    virtual void
    onSpanBegin(const Device &, ProbeSpan span, u32 arg)
    {
        (void)span;
        (void)arg;
    }

    /** `value` is span-specific (Round: consumed joules so far). */
    virtual void
    onSpanEnd(const Device &, ProbeSpan span, u32 arg, f64 value)
    {
        (void)span;
        (void)arg;
        (void)value;
    }

    virtual void
    onInstant(const Device &, ProbeInstant instant, u32 arg)
    {
        (void)instant;
        (void)arg;
    }
    /// @}
};

} // namespace sonic::arch

#endif // SONIC_ARCH_PROBE_HH
