/**
 * @file
 * Execution statistics: per-layer, per-part (kernel vs control), per-op
 * counters of invocations, cycles, and energy. These counters are the
 * measurement substrate for every figure in the paper's evaluation:
 * Fig. 9 (live time per layer), Fig. 10 (kernel/control split), Fig. 11
 * (energy), and Fig. 12 (energy per op class per layer).
 */

#ifndef SONIC_ARCH_STATS_HH
#define SONIC_ARCH_STATS_HH

#include <array>
#include <deque>
#include <string>
#include <vector>

#include "arch/op.hh"
#include "util/types.hh"

namespace sonic::arch
{

/**
 * Whether an operation belongs to a layer's inner compute loop (kernel)
 * or to intermittence/control machinery (index updates, transitions,
 * buffer swaps, fixed-point renormalization shifts). Fig. 10's split.
 */
enum class Part : u8
{
    Kernel,
    Control,
    NumParts
};

constexpr u32 kNumParts = static_cast<u32>(Part::NumParts);

/** Aggregated counters for one (layer, part) bucket. */
struct OpCounters
{
    std::array<u64, kNumOps> count{};
    std::array<u64, kNumOps> cycles{};
    std::array<f64, kNumOps> nanojoules{};

    u64 totalCycles() const;
    f64 totalNanojoules() const;
};

/**
 * Statistics accumulator owned by a Device. Layers are registered by
 * name; layer 0 always exists and is named "other".
 */
class Stats
{
  public:
    Stats();

    /** Register an attribution layer (e.g., "conv1"); returns its id. */
    u16 registerLayer(const std::string &name);

    /** Zero all counters (layer registrations are kept). */
    void reset();

    u32 numLayers() const { return static_cast<u32>(layers_.size()); }
    const std::string &layerName(u16 layer) const;

    const OpCounters &bucket(u16 layer, Part part) const;

    /**
     * Mutable bucket for the Device's batched-accounting fast path: the
     * Device caches this pointer per (layer, part) and bumps the
     * counters directly, so Stats::add's bounds check and double
     * indexing are paid once per attribution change instead of once per
     * simulated operation. Bucket storage is a deque, so the reference
     * stays valid across registerLayer().
     */
    OpCounters &bucketRef(u16 layer, Part part);

    /** Sum over parts for one layer. */
    u64 layerCycles(u16 layer) const;
    f64 layerNanojoules(u16 layer) const;

    /** Sum over layers for one part. */
    u64 partCycles(Part part) const;
    f64 partNanojoules(Part part) const;

    /** Per-op totals for one layer (both parts). */
    u64 layerOpCount(u16 layer, Op op) const;
    f64 layerOpNanojoules(u16 layer, Op op) const;

    /** Global totals. */
    u64 totalCycles() const;
    f64 totalNanojoules() const;
    u64 opCount(Op op) const;
    f64 opNanojoules(Op op) const;

  private:
    std::vector<std::string> layers_;
    // buckets_[layer][part]; deque for address stability (see bucketRef)
    std::deque<std::array<OpCounters, kNumParts>> buckets_;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_STATS_HH
