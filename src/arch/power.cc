#include "arch/power.hh"

#include <sstream>

#include "util/logging.hh"

namespace sonic::arch
{

CapacitorPower::CapacitorPower(f64 capacitance_farads, f64 harvest_watts,
                               f64 v_max, f64 v_min)
    : capacitanceFarads_(capacitance_farads),
      harvestWatts_(harvest_watts),
      capacityNj_(0.5 * capacitance_farads * (v_max * v_max - v_min * v_min)
                  * 1e9),
      levelNj_(capacityNj_),
      harvestedNj_(capacityNj_)
{
    SONIC_ASSERT(capacitance_farads > 0.0);
    SONIC_ASSERT(harvest_watts > 0.0);
    SONIC_ASSERT(v_max > v_min && v_min > 0.0);
}

bool
CapacitorPower::draw(f64 nj)
{
    SONIC_ASSERT(nj >= 0.0);
    if (levelNj_ >= nj) {
        levelNj_ -= nj;
        return true;
    }
    // Brown-out: whatever charge remains is below the regulator's
    // operating point and is lost.
    levelNj_ = 0.0;
    return false;
}

f64
CapacitorPower::recharge()
{
    const f64 deficit = capacityNj_ - levelNj_;
    harvestedNj_ += deficit;
    levelNj_ = capacityNj_;
    // Income power in nJ/s is harvestWatts * 1e9.
    return deficit / (harvestWatts_ * 1e9);
}

void
CapacitorPower::reset()
{
    levelNj_ = capacityNj_;
    harvestedNj_ = capacityNj_;
}

std::string
CapacitorPower::describe() const
{
    std::ostringstream oss;
    if (capacitanceFarads_ >= 1e-3)
        oss << capacitanceFarads_ * 1e3 << "mF";
    else
        oss << capacitanceFarads_ * 1e6 << "uF";
    oss << " capacitor @ " << harvestWatts_ * 1e3 << "mW harvest";
    return oss.str();
}

} // namespace sonic::arch
