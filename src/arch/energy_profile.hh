/**
 * @file
 * Per-operation cycle and energy costs for the modelled MCU.
 *
 * All of the project's calibration constants for the device live here,
 * in one auditable place. The msp430fr5994() profile is tuned to
 * MSP430FR5994 datasheet magnitudes (16 MHz, ~3 mW active, FRAM wait
 * states, 9-cycle peripheral multiply) and validated against the paper's
 * *ratios* (Sec. 9.1) by bench_sec9_summary.
 */

#ifndef SONIC_ARCH_ENERGY_PROFILE_HH
#define SONIC_ARCH_ENERGY_PROFILE_HH

#include <array>

#include "arch/op.hh"
#include "util/types.hh"

namespace sonic::arch
{

/**
 * Maps each Op to a cycle count and an energy cost in nanojoules.
 * Energy is total (core active energy for those cycles plus any
 * memory/peripheral surcharge).
 */
class EnergyProfile
{
  public:
    /** Cost of a single instance of op. */
    struct Cost
    {
        u32 cycles = 0;
        f64 nanojoules = 0.0;
    };

    EnergyProfile() = default;

    /** Set the cost of one operation class. */
    void
    set(Op op, u32 cycles, f64 nanojoules)
    {
        costs_[static_cast<u32>(op)] = {cycles, nanojoules};
    }

    /** Cost of one instance of op. */
    const Cost &
    cost(Op op) const
    {
        return costs_[static_cast<u32>(op)];
    }

    u32 cycles(Op op) const { return cost(op).cycles; }
    f64 nanojoules(Op op) const { return cost(op).nanojoules; }

    /**
     * The whole cost table, for callers that index it per simulated
     * operation (the Device caches table().data() so its consume fast
     * path is a single array load with no accessor indirection).
     */
    const std::array<Cost, kNumOps> &table() const { return costs_; }

    /**
     * The default profile: a TI MSP430FR5994 at 16 MHz with the LEA
     * vector unit, tuned so continuous-power runtime-system overheads
     * reproduce the paper's reported ratios.
     */
    static EnergyProfile msp430fr5994();

    /**
     * A profile with LEA/DMA costs inflated to emulate performing the
     * same work in software; used for the paper's Sec. 9.1 LEA/DMA
     * ablation ("LEA consistently improved performance by 1.4x, DMA by
     * 14%").
     */
    static EnergyProfile msp430fr5994NoLea();
    static EnergyProfile msp430fr5994NoDma();

    /**
     * The default profile with the radio ops re-costed to OpenChirp
     * LoRa gateway magnitudes (paper Sec. 2): transmitting a full
     * 28x28 image costs ~23 J, so the image-vs-result communication
     * ratio of the wildlife case study (~98x) emerges from payload
     * sizes alone. Used by the Fig. 1/2 analytical benches; fleet
     * pipelines default to the cheaper on-board radio above.
     */
    static EnergyProfile openChirpRadio();

  private:
    std::array<Cost, kNumOps> costs_{};
};

} // namespace sonic::arch

#endif // SONIC_ARCH_ENERGY_PROFILE_HH
