/**
 * @file
 * Typed memory handles bound to a Device.
 *
 * NvArray/NvVar model FRAM: contents persist across power failures and
 * every runtime access is charged (FramLoad/FramStore). VolArray/VolVar
 * model SRAM: cheaper accesses, but contents are scrambled with
 * deterministic garbage at every reboot so code that wrongly relies on
 * volatile persistence fails loudly rather than silently.
 *
 * peek/poke accessors bypass charging; they model programming-time
 * initialization (flashing weights) and host-side result inspection,
 * never device-side computation.
 */

#ifndef SONIC_ARCH_MEMORY_HH
#define SONIC_ARCH_MEMORY_HH

#include <algorithm>
#include <string>
#include <vector>

#include "arch/device.hh"
#include "util/logging.hh"
#include "util/types.hh"

namespace sonic::arch
{

/** Non-volatile (FRAM) array of trivially-copyable elements. */
template <typename T>
class NvArray : public NvmDigestible
{
  public:
    NvArray(Device &dev, u64 n, std::string name)
        : dev_(dev), name_(std::move(name)), data_(n, T{})
    {
        dev_.allocFram(n * sizeof(T), name_);
        dev_.registerNonVolatile(this);
    }

    ~NvArray() override
    {
        dev_.unregisterNonVolatile(this);
        dev_.freeFram(data_.size() * sizeof(T));
    }

    NvArray(const NvArray &) = delete;
    NvArray &operator=(const NvArray &) = delete;

    /** Charged read of element i. */
    T
    read(u64 i) const
    {
        SONIC_DASSERT(i < data_.size(), "NvArray '", name_, "' read OOB");
        dev_.consume(Op::FramLoad, words());
        return data_[i];
    }

    /** Charged write of element i. May throw PowerFailure *before* the
     * write lands: a store either completes or never happens, modelling
     * FRAM's word-level write atomicity. */
    void
    write(u64 i, T v)
    {
        SONIC_DASSERT(i < data_.size(), "NvArray '", name_, "' write OOB");
        dev_.consume(Op::FramStore, words());
        data_[i] = v;
    }

    /** @name Bulk span accessors
     * Charge n elements' worth of word accesses in a single consume
     * call (one power-supply interaction instead of n), with identical
     * cycle/energy/op-count totals to n single accesses. A span is
     * atomic: PowerFailure is thrown before any element transfers, so
     * callers must only use spans where an all-or-nothing unit is
     * acceptable (write-once/idempotent loops — see the kernels).
     */
    /// @{

    /** Charged bulk read of [base, base+n) into out. */
    void
    readRange(u64 base, u64 n, T *out) const
    {
        SONIC_DASSERT(base + n <= data_.size(), "NvArray '", name_,
                      "' readRange OOB");
        dev_.consume(Op::FramLoad, words() * n);
        std::copy_n(data_.begin() + static_cast<i64>(base), n, out);
    }

    /** Charged strided bulk read: out[k] = [base + k*stride], one
     * charge for the whole gather (a dense-FC weight column). */
    void
    readStride(u64 base, u64 stride, u64 n, T *out) const
    {
        SONIC_DASSERT(n == 0
                          || base + (n - 1) * stride < data_.size(),
                      "NvArray '", name_, "' readStride OOB");
        dev_.consume(Op::FramLoad, words() * n);
        for (u64 k = 0; k < n; ++k)
            out[k] = data_[base + k * stride];
    }

    /** Charged bulk write of [base, base+n) from src; all-or-nothing. */
    void
    writeRange(u64 base, u64 n, const T *src)
    {
        SONIC_DASSERT(base + n <= data_.size(), "NvArray '", name_,
                      "' writeRange OOB");
        dev_.consume(Op::FramStore, words() * n);
        std::copy_n(src, n, data_.begin() + static_cast<i64>(base));
    }

    /** Charged bulk fill of [base, base+n) with v; all-or-nothing. */
    void
    fillRange(u64 base, u64 n, T v)
    {
        SONIC_DASSERT(base + n <= data_.size(), "NvArray '", name_,
                      "' fillRange OOB");
        dev_.consume(Op::FramStore, words() * n);
        std::fill_n(data_.begin() + static_cast<i64>(base), n, v);
    }

    /**
     * Charged bulk read-modify-write of [base, base+n): charges n
     * loads then n stores (two consume calls), then applies
     * f(old_value, span_index) -> new_value to each element. The span
     * updates only after both charges succeed.
     */
    template <typename F>
    void
    accumRange(u64 base, u64 n, F &&f)
    {
        SONIC_DASSERT(base + n <= data_.size(), "NvArray '", name_,
                      "' accumRange OOB");
        dev_.consume(Op::FramLoad, words() * n);
        dev_.consume(Op::FramStore, words() * n);
        for (u64 k = 0; k < n; ++k)
            data_[base + k] = f(data_[base + k], k);
    }
    /// @}

    /** Uncharged host access (initialization / verification only). */
    T
    peek(u64 i) const
    {
        SONIC_DASSERT(i < data_.size());
        return data_[i];
    }

    void
    poke(u64 i, T v)
    {
        SONIC_DASSERT(i < data_.size());
        data_[i] = v;
    }

    void
    fillHost(T v)
    {
        for (auto &x : data_)
            x = v;
    }

    u64 size() const { return data_.size(); }
    const std::string &name() const { return name_; }

    /** Element-wise region digest (see arch/nvm_digest.hh). */
    void
    digestInto(NvmDigest &d) const override
    {
        d.word(data_.size());
        for (const T &v : data_)
            d.element(v);
    }

  private:
    static constexpr u64
    words()
    {
        return (sizeof(T) + 1) / 2; // 16-bit FRAM word accesses
    }

    Device &dev_;
    std::string name_;
    std::vector<T> data_;
};

/** Non-volatile (FRAM) scalar. */
template <typename T>
class NvVar : public NvmDigestible
{
  public:
    NvVar(Device &dev, std::string name, T initial = T{})
        : dev_(dev), name_(std::move(name)), value_(initial)
    {
        dev_.allocFram(sizeof(T), name_);
        dev_.registerNonVolatile(this);
    }

    ~NvVar() override
    {
        dev_.unregisterNonVolatile(this);
        dev_.freeFram(sizeof(T));
    }

    NvVar(const NvVar &) = delete;
    NvVar &operator=(const NvVar &) = delete;

    /** Charged read. */
    T
    read() const
    {
        dev_.consume(Op::FramLoad, words());
        return value_;
    }

    /** Charged, atomic write (see NvArray::write). */
    void
    write(T v)
    {
        dev_.consume(Op::FramStore, words());
        value_ = v;
    }

    /**
     * Charge n logically-consecutive writes of which only the last
     * value is observable — the shape of a loop-carried index that a
     * span-processing loop would have stored n times. Cycle/energy/op
     * totals match n write() calls; the unit is atomic (the value only
     * lands if the whole charge succeeds), which is safe exactly where
     * the span itself is idempotent.
     */
    void
    writeCoalesced(T v, u64 n)
    {
        dev_.consume(Op::FramStore, words() * n);
        value_ = v;
    }

    /** Uncharged host access. */
    T peek() const { return value_; }
    void poke(T v) { value_ = v; }

    const std::string &name() const { return name_; }

    void
    digestInto(NvmDigest &d) const override
    {
        d.element(value_);
    }

  private:
    static constexpr u64
    words()
    {
        return (sizeof(T) + 1) / 2;
    }

    Device &dev_;
    std::string name_;
    T value_;
};

/**
 * Volatile (SRAM) array. Contents are replaced by deterministic garbage
 * at every reboot.
 */
template <typename T>
class VolArray : public VolatileResettable
{
  public:
    VolArray(Device &dev, u64 n, std::string name)
        : dev_(dev), name_(std::move(name)), data_(n, T{})
    {
        dev_.allocSram(n * sizeof(T), name_);
        dev_.registerVolatile(this);
    }

    ~VolArray() override
    {
        dev_.unregisterVolatile(this);
        dev_.freeSram(data_.size() * sizeof(T));
    }

    VolArray(const VolArray &) = delete;
    VolArray &operator=(const VolArray &) = delete;

    T
    read(u64 i) const
    {
        SONIC_DASSERT(i < data_.size(), "VolArray '", name_, "' read OOB");
        dev_.consume(Op::SramLoad, words());
        return data_[i];
    }

    void
    write(u64 i, T v)
    {
        SONIC_DASSERT(i < data_.size(), "VolArray '", name_, "' write OOB");
        dev_.consume(Op::SramStore, words());
        data_[i] = v;
    }

    /** @name Bulk span accessors (see NvArray) */
    /// @{
    void
    readRange(u64 base, u64 n, T *out) const
    {
        SONIC_DASSERT(base + n <= data_.size(), "VolArray '", name_,
                      "' readRange OOB");
        dev_.consume(Op::SramLoad, words() * n);
        std::copy_n(data_.begin() + static_cast<i64>(base), n, out);
    }

    void
    writeRange(u64 base, u64 n, const T *src)
    {
        SONIC_DASSERT(base + n <= data_.size(), "VolArray '", name_,
                      "' writeRange OOB");
        dev_.consume(Op::SramStore, words() * n);
        std::copy_n(src, n, data_.begin() + static_cast<i64>(base));
    }

    void
    fillRange(u64 base, u64 n, T v)
    {
        SONIC_DASSERT(base + n <= data_.size(), "VolArray '", name_,
                      "' fillRange OOB");
        dev_.consume(Op::SramStore, words() * n);
        std::fill_n(data_.begin() + static_cast<i64>(base), n, v);
    }

    template <typename F>
    void
    accumRange(u64 base, u64 n, F &&f)
    {
        SONIC_DASSERT(base + n <= data_.size(), "VolArray '", name_,
                      "' accumRange OOB");
        dev_.consume(Op::SramLoad, words() * n);
        dev_.consume(Op::SramStore, words() * n);
        for (u64 k = 0; k < n; ++k)
            data_[base + k] = f(data_[base + k], k);
    }
    /// @}

    T
    peek(u64 i) const
    {
        SONIC_DASSERT(i < data_.size());
        return data_[i];
    }

    void
    poke(u64 i, T v)
    {
        SONIC_DASSERT(i < data_.size());
        data_[i] = v;
    }

    void
    onReboot(u64 reboot_index) override
    {
        // Deterministic garbage: distinct per reboot and per element.
        u64 x = reboot_index * 0x9e3779b97f4a7c15ull + 1;
        for (auto &v : data_) {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            v = static_cast<T>(x);
        }
    }

    u64 size() const { return data_.size(); }

  private:
    static constexpr u64
    words()
    {
        return (sizeof(T) + 1) / 2;
    }

    Device &dev_;
    std::string name_;
    std::vector<T> data_;
};

/** Volatile (SRAM) scalar; garbage after reboot. */
template <typename T>
class VolVar : public VolatileResettable
{
  public:
    VolVar(Device &dev, std::string name, T initial = T{})
        : dev_(dev), name_(std::move(name)), value_(initial)
    {
        dev_.allocSram(sizeof(T), name_);
        dev_.registerVolatile(this);
    }

    ~VolVar() override
    {
        dev_.unregisterVolatile(this);
        dev_.freeSram(sizeof(T));
    }

    VolVar(const VolVar &) = delete;
    VolVar &operator=(const VolVar &) = delete;

    T
    read() const
    {
        dev_.consume(Op::SramLoad, words());
        return value_;
    }

    void
    write(T v)
    {
        dev_.consume(Op::SramStore, words());
        value_ = v;
    }

    T peek() const { return value_; }
    void poke(T v) { value_ = v; }

    void
    onReboot(u64 reboot_index) override
    {
        u64 x = reboot_index * 0xd1342543de82ef95ull + 7;
        x ^= x >> 33;
        value_ = static_cast<T>(x);
    }

  private:
    static constexpr u64
    words()
    {
        return (sizeof(T) + 1) / 2;
    }

    Device &dev_;
    std::string name_;
    T value_;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_MEMORY_HH
