#include "arch/energy_profile.hh"

namespace sonic::arch
{

namespace
{

// ---------------------------------------------------------------------
// Calibration constants.
//
// These are tuned to the *system-level* energies the paper reports (an
// MSP430FR5994 board with harvester front-end: ~26 mJ per MNIST
// inference for TAILS, ~200 mJ for tiled Alpaca — Sec. 3.2), not to the
// bare-die datasheet numbers, because the paper measures the full board.
// The relative costs (FRAM vs SRAM, 9-cycle peripheral multiply, missing
// barrel shifter, LEA vector amortization) follow the MSP430FR5994
// datasheet and the paper's Sec. 10 discussion.
// ---------------------------------------------------------------------

/// Core energy per active cycle.
constexpr f64 kCoreNjPerCycle = 1.5;

/// Extra energy per FRAM read / write beyond core cycles. Writes are
/// much more expensive — the paper estimates 14% of system energy goes
/// to FRAM writes of loop indices alone (Sec. 9.4).
constexpr f64 kFramReadExtraNj = 2.0;
constexpr f64 kFramWriteExtraNj = 5.0;

/// Extra energy per SRAM access.
constexpr f64 kSramExtraNj = 0.3;

/// LEA amortizes fetch/decode across a whole vector command.
constexpr f64 kLeaNjPerMac = 0.5;
constexpr f64 kDmaNjPerWord = 1.2;

// ---------------------------------------------------------------------
// Sensor / radio surcharges.
//
// The default profile models a short-range on-board radio (nRF24-class)
// and a 12-bit ADC: every single charged unit stays far below the
// smallest usable capacitor buffer (~15 uJ at 100 uF), so a pipeline
// stage always makes forward progress between brown-outs.
// ---------------------------------------------------------------------

/// ADC sample-and-convert surcharge (reference + conversion).
constexpr f64 kSenseSampleExtraNj = 20.0;
/// Oscillator start + PLL settle + preamble before one TX attempt.
constexpr f64 kRadioWakeExtraNj = 2000.0;
/// Over-the-air energy per transmitted payload byte.
constexpr f64 kRadioTxByteExtraNj = 1200.0;
/// RX window listening for the link-layer acknowledgment.
constexpr f64 kRadioRxAckExtraNj = 3000.0;

// ---------------------------------------------------------------------
// OpenChirp LoRa gateway magnitudes (paper Sec. 2 / Sec. 3.1).
//
// The paper's wildlife case study communicates through an OpenChirp
// LoRa network where sending a full 28x28 image costs ~23 J and the
// energy argument for on-device inference is the 784-byte image vs
// 8-byte result payload ratio. The TX-byte cost is derived so that a
// 784-byte image transmission costs exactly kOpenChirpImageJ.
// ---------------------------------------------------------------------

/// Full 28x28 grayscale image (one byte per pixel) over OpenChirp.
constexpr f64 kOpenChirpImageJ = 23.0;
constexpr f64 kOpenChirpImageBytes = 784.0;
constexpr f64 kOpenChirpTxByteNj =
    kOpenChirpImageJ * 1e9 / kOpenChirpImageBytes;
/// LoRa wake/sync and ACK-listen overheads (small vs the payload).
constexpr f64 kOpenChirpWakeNj = 2.0e6;
constexpr f64 kOpenChirpRxAckNj = 1.0e6;

f64
core(u32 cycles)
{
    return kCoreNjPerCycle * static_cast<f64>(cycles);
}

} // namespace

std::string_view
opName(Op op)
{
    switch (op) {
      case Op::RegOp: return "reg";
      case Op::AluAdd: return "add";
      case Op::AluMul: return "mul";
      case Op::AluShift: return "shift";
      case Op::AluDiv: return "div";
      case Op::FixedAdd: return "fixed-add";
      case Op::FixedMul: return "fixed-mul";
      case Op::Incr: return "increment";
      case Op::Branch: return "branch";
      case Op::FramLoad: return "fram-load";
      case Op::FramStore: return "fram-store";
      case Op::SramLoad: return "sram-load";
      case Op::SramStore: return "sram-store";
      case Op::TaskTransition: return "task-transition";
      case Op::AlpacaTransition: return "alpaca-transition";
      case Op::LogWrite: return "log-write";
      case Op::LogCommit: return "log-commit";
      case Op::DmaWord: return "dma-word";
      case Op::LeaInvoke: return "lea-invoke";
      case Op::LeaMac: return "lea-mac";
      case Op::Nop: return "nop";
      case Op::SenseSample: return "sense-sample";
      case Op::RadioWake: return "radio-wake";
      case Op::RadioTxByte: return "radio-tx-byte";
      case Op::RadioRxAck: return "radio-rx-ack";
      case Op::NumOps: break;
    }
    return "?";
}

EnergyProfile
EnergyProfile::msp430fr5994()
{
    EnergyProfile p;
    p.set(Op::RegOp, 1, core(1));
    p.set(Op::AluAdd, 1, core(1));
    // Integer multiply is a memory-mapped peripheral: 4 instructions,
    // 9 cycles end to end (paper Sec. 10).
    p.set(Op::AluMul, 9, core(9));
    p.set(Op::AluShift, 1, core(1));
    // No divide unit: one software divide/modulo costs ~24 cycles.
    p.set(Op::AluDiv, 24, core(24));
    p.set(Op::FixedAdd, 1, core(1));
    // Fixed-point multiply: peripheral mul + renormalizing shift + round.
    p.set(Op::FixedMul, 12, core(12));
    p.set(Op::Incr, 1, core(1));
    p.set(Op::Branch, 2, core(2));
    // FRAM runs with a wait state at 16 MHz and costs extra access energy.
    p.set(Op::FramLoad, 2, core(2) + kFramReadExtraNj);
    p.set(Op::FramStore, 2, core(2) + kFramWriteExtraNj);
    p.set(Op::SramLoad, 1, core(1) + kSramExtraNj);
    p.set(Op::SramStore, 1, core(1) + kSramExtraNj);
    // SONIC's lightweight transition: update the next-task pointer and
    // fall through; no privatization, no commit machinery.
    p.set(Op::TaskTransition, 48, core(48) + kFramWriteExtraNj);
    // A full task-based-runtime (Alpaca-style) transition: scheduler
    // dispatch, privatization-table maintenance, re-initialization of
    // task-local state. This is the fixed cost that small tiles fail to
    // amortize (the paper's Tile-8 is gmean 13.4x slower than Base).
    p.set(Op::AlpacaTransition, 2600,
          core(2600) + 6 * kFramWriteExtraNj);
    // Redo-log append: dynamic privatization — bounds check, slot
    // search/allocation, log store (FRAM), dirty-index maintenance.
    p.set(Op::LogWrite, 32, core(32) + kFramWriteExtraNj);
    // Commit one log entry: load from log, store to home, advance.
    p.set(Op::LogCommit, 18,
          core(18) + kFramReadExtraNj + kFramWriteExtraNj);
    p.set(Op::DmaWord, 2, kDmaNjPerWord);
    p.set(Op::LeaInvoke, 72, core(72));
    p.set(Op::LeaMac, 1, kLeaNjPerMac);
    p.set(Op::Nop, 1, core(1));
    // Sensing and the short-range on-board radio (pipeline stages).
    p.set(Op::SenseSample, 6, core(6) + kSenseSampleExtraNj);
    p.set(Op::RadioWake, 600, core(600) + kRadioWakeExtraNj);
    p.set(Op::RadioTxByte, 16, core(16) + kRadioTxByteExtraNj);
    p.set(Op::RadioRxAck, 800, core(800) + kRadioRxAckExtraNj);
    return p;
}

EnergyProfile
EnergyProfile::openChirpRadio()
{
    // Same MCU, but the radio ops are re-costed to OpenChirp LoRa
    // magnitudes: a 784-byte image TX costs kOpenChirpImageJ, so the
    // paper's image-vs-result communication ratio (~98x, Fig. 1/2)
    // emerges from payload sizes instead of a hand-coded constant.
    EnergyProfile p = msp430fr5994();
    p.set(Op::RadioWake, 600, core(600) + kOpenChirpWakeNj);
    p.set(Op::RadioTxByte, 16, core(16) + kOpenChirpTxByteNj);
    p.set(Op::RadioRxAck, 800, core(800) + kOpenChirpRxAckNj);
    return p;
}

EnergyProfile
EnergyProfile::msp430fr5994NoLea()
{
    // Emulate LEA in software: a MAC becomes loads + peripheral multiply
    // + add, with no vector command amortization.
    EnergyProfile p = msp430fr5994();
    p.set(Op::LeaMac, 16, core(16) + 2 * kSramExtraNj);
    p.set(Op::LeaInvoke, 12, core(12));
    return p;
}

EnergyProfile
EnergyProfile::msp430fr5994NoDma()
{
    // Emulate DMA with a software copy loop: load + store + index/branch.
    EnergyProfile p = msp430fr5994();
    p.set(Op::DmaWord, 6, core(6) + kFramReadExtraNj + kSramExtraNj);
    return p;
}

} // namespace sonic::arch
