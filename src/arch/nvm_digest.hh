/**
 * @file
 * Rolling digests of the device's non-volatile region.
 *
 * The verification oracle (src/verify) needs to ask "is the FRAM state
 * of this run the FRAM state of that run?" cheaply and at many points —
 * most importantly at every reboot boundary, so a crash-consistency bug
 * is localized to the reboot where it corrupted state instead of being
 * smeared into the final logits. NvmDigest is a 64-bit FNV-1a
 * accumulator fed element-wise (not byte-wise, so digests are
 * endianness-independent and safe to commit as golden files);
 * NvmDigestible is the interface non-volatile memory handles implement
 * so a Device can walk its FRAM registry in registration order.
 *
 * Digesting is strictly pull-based: nothing on the Device::consume hot
 * path ever touches a digest. A Device only walks the registry when
 * Device::nvmDigest() is called (by a reboot hook the oracle installed,
 * or by host tooling), so the feature costs one pointer push_back per
 * NvArray/NvVar construction when unused.
 */

#ifndef SONIC_ARCH_NVM_DIGEST_HH
#define SONIC_ARCH_NVM_DIGEST_HH

#include "util/types.hh"

namespace sonic::arch
{

/** 64-bit FNV-1a accumulator over 64-bit words. */
class NvmDigest
{
  public:
    /** Fold one word into the digest. */
    void
    word(u64 v)
    {
        // FNV-1a, one octet at a time so every bit of v lands in a
        // different multiply (plain h ^= v would cancel structure).
        for (u32 i = 0; i < 8; ++i) {
            state_ ^= (v >> (8 * i)) & 0xffu;
            state_ *= kPrime;
        }
    }

    /** Fold a signed integral element (sign-extended, then widened). */
    template <typename T>
    void
    element(T v)
    {
        word(static_cast<u64>(static_cast<i64>(v)));
    }

    u64 value() const { return state_; }

    /**
     * Chain two digests (e.g., a running per-reboot chain value and
     * the snapshot taken at this reboot) into one order-sensitive
     * summary.
     */
    static u64
    chain(u64 prev, u64 link)
    {
        NvmDigest d;
        d.word(prev);
        d.word(link);
        return d.value();
    }

  private:
    static constexpr u64 kOffset = 0xcbf29ce484222325ull;
    static constexpr u64 kPrime = 0x00000100000001b3ull;

    u64 state_ = kOffset;
};

/** Interface of one digestible non-volatile (FRAM) region. */
class NvmDigestible
{
  public:
    virtual ~NvmDigestible() = default;

    /** Fold the region's current contents (and extent) into d. */
    virtual void digestInto(NvmDigest &d) const = 0;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_NVM_DIGEST_HH
