/**
 * @file
 * The intermittently-powered device model. A Device owns an energy
 * profile, a power supply, execution statistics and the registry of
 * volatile memory that must be cleared at reboot. Every charged
 * operation a kernel performs goes through Device::consume, which may
 * throw PowerFailure when the energy buffer empties — the simulated
 * equivalent of the MCU browning out mid-instruction.
 */

#ifndef SONIC_ARCH_DEVICE_HH
#define SONIC_ARCH_DEVICE_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/energy_profile.hh"
#include "arch/nvm_digest.hh"
#include "arch/op.hh"
#include "arch/power.hh"
#include "arch/probe.hh"
#include "arch/stats.hh"
#include "util/types.hh"

namespace sonic::arch
{

/** Interface for volatile state that is lost at a power failure. */
class VolatileResettable
{
  public:
    virtual ~VolatileResettable() = default;

    /**
     * Clear/scramble contents. reboot_index allows deterministic but
     * varying garbage so code relying on SRAM persistence fails loudly.
     */
    virtual void onReboot(u64 reboot_index) = 0;
};

/** Static configuration of the modelled MCU. */
struct DeviceConfig
{
    f64 clockHz = 16e6;             ///< MSP430FR5994 maximum clock
    u64 framCapacityBytes = 256 * 1024;
    u64 sramCapacityBytes = 4 * 1024;
    bool enforceCapacity = true;    ///< panic if allocations exceed caps

    /**
     * Debug/reference mode: disable energy leasing so every consume
     * crosses the virtual PowerSupply::draw boundary individually.
     * The equivalence suite runs both modes and asserts bit-identical
     * outputs, stats, reboot counts and failure indices.
     */
    bool perOpPowerDraw = false;
};

/**
 * The simulated MCU plus its power system. Not thread-safe; one Device
 * per experiment.
 */
class Device
{
  public:
    Device(EnergyProfile profile, std::unique_ptr<PowerSupply> power,
           DeviceConfig config = {});
    ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Charge count instances of op to the current attribution bucket.
     *
     * This is the simulation's innermost loop: the common case is a
     * handful of direct counter increments plus a countdown against the
     * current energy lease — no virtual call, no bucket lookup. The
     * virtual PowerSupply boundary is crossed only in consumeSlow(),
     * when the lease is exhausted (or leasing is disabled). Because op
     * costs are deterministic and the lease countdown performs the very
     * subtraction sequence the supply would have, a brown-out lands on
     * the bit-identical operation either way.
     *
     * One consume call counts as one draw regardless of count, exactly
     * as one PowerSupply::draw call did — the unit the fault injectors
     * count.
     *
     * @throws PowerFailure if the supply cannot deliver the energy.
     */
    void
    consume(Op op, u64 count = 1)
    {
        const EnergyProfile::Cost &c = costs_[static_cast<u32>(op)];
        const u64 cycles = c.cycles * count;
        const f64 nj = c.nanojoules * static_cast<f64>(count);
        totalCycles_ += cycles;
        const auto op_idx = static_cast<u32>(op);
        bucket_->count[op_idx] += count;
        bucket_->cycles[op_idx] += cycles;
        bucket_->nanojoules[op_idx] += nj;
        if (leaseOps_ != 0 && leaseNj_ >= nj) [[likely]] {
            --leaseOps_;
            leaseNj_ -= nj;
            leaseUsedNj_ += nj;
            return;
        }
        consumeSlow(nj);
    }

    /** @name Attribution */
    /// @{
    u16 registerLayer(const std::string &name);

    void
    setLayer(u16 layer)
    {
        if (probe_ != nullptr && layer != layer_)
            probe_->onLayer(*this, layer);
        layer_ = layer;
        bucket_ = &stats_.bucketRef(layer_, part_);
    }

    void
    setPart(Part part)
    {
        if (probe_ != nullptr && part != part_)
            probe_->onPart(*this, part);
        part_ = part;
        bucket_ = &stats_.bucketRef(layer_, part_);
    }

    u16 currentLayer() const { return layer_; }
    Part currentPart() const { return part_; }
    /// @}

    /** @name Energy lease control (see PowerSupply::grant) */
    /// @{

    /**
     * Enable/disable the lease fast path at runtime. Disabling settles
     * any open lease and reverts to one virtual draw per consume.
     */
    void setLeasing(bool enabled);
    bool leasingEnabled() const { return leaseEnabled_; }

    /**
     * Failures charged but not yet modelled as a reboot. consume()
     * increments this exactly once per PowerFailure it throws — a
     * failing bulk (count > 1) charge is still one failure — and
     * reboot() consumes the whole backlog, so a failure can never be
     * double-counted.
     */
    u64 rebootsPending() const { return rebootPending_; }
    /// @}

    /** @name Memory accounting and volatile registry */
    /// @{
    void allocFram(u64 bytes, const std::string &what);
    void allocSram(u64 bytes, const std::string &what);
    void freeFram(u64 bytes);
    void freeSram(u64 bytes);
    u64 framBytesUsed() const { return framUsed_; }
    u64 sramBytesUsed() const { return sramUsed_; }
    void registerVolatile(VolatileResettable *v);
    void unregisterVolatile(VolatileResettable *v);
    void registerNonVolatile(const NvmDigestible *nv);
    void unregisterNonVolatile(const NvmDigestible *nv);
    /// @}

    /** @name NVM snapshot digesting (oracle instrumentation) */
    /// @{

    /**
     * Digest the whole registered non-volatile (FRAM) region in
     * registration order. Pull-based and never called by the
     * simulation itself: the cost exists only when a caller (reboot
     * hook, golden-file emitter, test) asks for it.
     */
    u64 nvmDigest() const;

    /**
     * Hook invoked at the end of every reboot() with the reboot index
     * (1-based). The verification oracle installs one that snapshots
     * nvmDigest() into a per-run chain, so state divergence is pinned
     * to the reboot boundary where it first appears. Empty (the
     * default) costs a single branch per reboot and nothing per
     * operation.
     */
    using RebootHook = std::function<void(Device &, u64 reboot_index)>;
    void setRebootHook(RebootHook hook) { rebootHook_ = std::move(hook); }
    /// @}

    /** @name Event tracing (src/trace) */
    /// @{

    /**
     * Install/clear the trace probe (non-owning; the caller keeps it
     * alive for the Device's lifetime or until cleared). Null — the
     * default — keeps every call site on its single-branch fast path;
     * consume() itself never checks the probe at all.
     */
    void setProbe(TraceProbe *probe) { probe_ = probe; }
    TraceProbe *probe() const { return probe_; }
    /// @}

    /**
     * Model the reboot after a power failure: clear volatile memory,
     * recharge the buffer, account dead time. Called by the scheduler.
     */
    void reboot();

    /** @name Measurements */
    /// @{
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }
    u64 cycles() const { return totalCycles_; }
    f64 liveSeconds() const
    {
        return static_cast<f64>(totalCycles_) / config_.clockHz;
    }
    f64 deadSeconds() const { return deadSeconds_; }
    f64 totalSeconds() const { return liveSeconds() + deadSeconds_; }
    u64 rebootCount() const { return rebootCount_; }
    f64 consumedJoules() const { return stats_.totalNanojoules() * 1e-9; }
    /// @}

    /**
     * Direct supply access. Settles (and drops) any open lease first so
     * external inspection — harvestedNj for IMpJ, levelNj diagnostics —
     * and external mutation (reset) always see/act on fully booked
     * supply state; the next consume opens a fresh lease.
     */
    PowerSupply &
    power()
    {
        settleLease();
        return *power_;
    }

    const PowerSupply &
    power() const
    {
        settleLease();
        return *power_;
    }

    const EnergyProfile &profile() const { return profile_; }
    const DeviceConfig &config() const { return config_; }

  private:
    /**
     * Lease-miss path: settle the spent lease, pay for this operation
     * through the virtual draw, and open a fresh lease. Out of line to
     * keep consume()'s inlined body minimal.
     */
    void consumeSlow(f64 nj);

    /** Close the open lease, returning unused budget to the supply. */
    void settleLease() const;

    EnergyProfile profile_;
    std::unique_ptr<PowerSupply> power_;
    DeviceConfig config_;
    Stats stats_;

    /** Cost table base pointer (profile_ is immutable after build). */
    const EnergyProfile::Cost *costs_ = nullptr;

    u16 layer_ = 0;
    Part part_ = Part::Control;

    /** Cached (layer_, part_) counters — Stats buckets are address-
     * stable, so this is refreshed only on attribution changes. */
    OpCounters *bucket_ = nullptr;

    /**
     * The open energy lease (mutable: settling from const accessors is
     * logically non-observable). leaseOps_/leaseNj_ count down what
     * remains; leaseUsedNj_ accumulates the energy settle() must book
     * (the exact += sequence a per-op supply would have summed), and
     * the op usage is derived as grantedOps_ - leaseOps_.
     */
    bool leaseEnabled_ = true;
    mutable bool leaseOutstanding_ = false;
    mutable u64 leaseOps_ = 0;
    mutable u64 grantedOps_ = 0;
    mutable f64 leaseNj_ = 0.0;
    mutable f64 leaseUsedNj_ = 0.0;

    u64 totalCycles_ = 0;
    f64 deadSeconds_ = 0.0;
    /** Uptime already reported through PowerSupply::elapse. */
    f64 liveSecondsNotified_ = 0.0;
    u64 rebootCount_ = 0;
    u64 rebootPending_ = 0;

    u64 framUsed_ = 0;
    u64 sramUsed_ = 0;
    std::vector<VolatileResettable *> volatiles_;
    std::vector<const NvmDigestible *> nonVolatiles_;
    RebootHook rebootHook_;
    TraceProbe *probe_ = nullptr;
};

/** RAII: set the device's attribution layer, restoring on scope exit. */
class ScopedLayer
{
  public:
    ScopedLayer(Device &dev, u16 layer)
        : dev_(dev), saved_(dev.currentLayer())
    {
        dev_.setLayer(layer);
    }
    ~ScopedLayer() { dev_.setLayer(saved_); }

    ScopedLayer(const ScopedLayer &) = delete;
    ScopedLayer &operator=(const ScopedLayer &) = delete;

  private:
    Device &dev_;
    u16 saved_;
};

/** RAII: set the device's attribution part, restoring on scope exit. */
class ScopedPart
{
  public:
    ScopedPart(Device &dev, Part part) : dev_(dev), saved_(dev.currentPart())
    {
        dev_.setPart(part);
    }
    ~ScopedPart() { dev_.setPart(saved_); }

    ScopedPart(const ScopedPart &) = delete;
    ScopedPart &operator=(const ScopedPart &) = delete;

  private:
    Device &dev_;
    Part saved_;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_DEVICE_HH
