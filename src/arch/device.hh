/**
 * @file
 * The intermittently-powered device model. A Device owns an energy
 * profile, a power supply, execution statistics and the registry of
 * volatile memory that must be cleared at reboot. Every charged
 * operation a kernel performs goes through Device::consume, which may
 * throw PowerFailure when the energy buffer empties — the simulated
 * equivalent of the MCU browning out mid-instruction.
 */

#ifndef SONIC_ARCH_DEVICE_HH
#define SONIC_ARCH_DEVICE_HH

#include <memory>
#include <string>
#include <vector>

#include "arch/energy_profile.hh"
#include "arch/op.hh"
#include "arch/power.hh"
#include "arch/stats.hh"
#include "util/types.hh"

namespace sonic::arch
{

/** Interface for volatile state that is lost at a power failure. */
class VolatileResettable
{
  public:
    virtual ~VolatileResettable() = default;

    /**
     * Clear/scramble contents. reboot_index allows deterministic but
     * varying garbage so code relying on SRAM persistence fails loudly.
     */
    virtual void onReboot(u64 reboot_index) = 0;
};

/** Static configuration of the modelled MCU. */
struct DeviceConfig
{
    f64 clockHz = 16e6;             ///< MSP430FR5994 maximum clock
    u64 framCapacityBytes = 256 * 1024;
    u64 sramCapacityBytes = 4 * 1024;
    bool enforceCapacity = true;    ///< panic if allocations exceed caps
};

/**
 * The simulated MCU plus its power system. Not thread-safe; one Device
 * per experiment.
 */
class Device
{
  public:
    Device(EnergyProfile profile, std::unique_ptr<PowerSupply> power,
           DeviceConfig config = {});
    ~Device();

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Charge count instances of op to the current attribution bucket.
     * @throws PowerFailure if the supply cannot deliver the energy.
     */
    void
    consume(Op op, u64 count = 1)
    {
        const auto &c = profile_.cost(op);
        const u64 cycles = c.cycles * count;
        const f64 nj = c.nanojoules * static_cast<f64>(count);
        totalCycles_ += cycles;
        stats_.add(layer_, part_, op, count, cycles, nj);
        if (!power_->draw(nj)) {
            ++rebootPending_;
            throw PowerFailure();
        }
    }

    /** @name Attribution */
    /// @{
    u16 registerLayer(const std::string &name);
    void setLayer(u16 layer) { layer_ = layer; }
    void setPart(Part part) { part_ = part; }
    u16 currentLayer() const { return layer_; }
    Part currentPart() const { return part_; }
    /// @}

    /** @name Memory accounting and volatile registry */
    /// @{
    void allocFram(u64 bytes, const std::string &what);
    void allocSram(u64 bytes, const std::string &what);
    void freeFram(u64 bytes);
    void freeSram(u64 bytes);
    u64 framBytesUsed() const { return framUsed_; }
    u64 sramBytesUsed() const { return sramUsed_; }
    void registerVolatile(VolatileResettable *v);
    void unregisterVolatile(VolatileResettable *v);
    /// @}

    /**
     * Model the reboot after a power failure: clear volatile memory,
     * recharge the buffer, account dead time. Called by the scheduler.
     */
    void reboot();

    /** @name Measurements */
    /// @{
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }
    u64 cycles() const { return totalCycles_; }
    f64 liveSeconds() const
    {
        return static_cast<f64>(totalCycles_) / config_.clockHz;
    }
    f64 deadSeconds() const { return deadSeconds_; }
    f64 totalSeconds() const { return liveSeconds() + deadSeconds_; }
    u64 rebootCount() const { return rebootCount_; }
    f64 consumedJoules() const { return stats_.totalNanojoules() * 1e-9; }
    /// @}

    PowerSupply &power() { return *power_; }
    const PowerSupply &power() const { return *power_; }
    const EnergyProfile &profile() const { return profile_; }
    const DeviceConfig &config() const { return config_; }

  private:
    EnergyProfile profile_;
    std::unique_ptr<PowerSupply> power_;
    DeviceConfig config_;
    Stats stats_;

    u16 layer_ = 0;
    Part part_ = Part::Control;

    u64 totalCycles_ = 0;
    f64 deadSeconds_ = 0.0;
    u64 rebootCount_ = 0;
    u64 rebootPending_ = 0;

    u64 framUsed_ = 0;
    u64 sramUsed_ = 0;
    std::vector<VolatileResettable *> volatiles_;
};

/** RAII: set the device's attribution layer, restoring on scope exit. */
class ScopedLayer
{
  public:
    ScopedLayer(Device &dev, u16 layer)
        : dev_(dev), saved_(dev.currentLayer())
    {
        dev_.setLayer(layer);
    }
    ~ScopedLayer() { dev_.setLayer(saved_); }

    ScopedLayer(const ScopedLayer &) = delete;
    ScopedLayer &operator=(const ScopedLayer &) = delete;

  private:
    Device &dev_;
    u16 saved_;
};

/** RAII: set the device's attribution part, restoring on scope exit. */
class ScopedPart
{
  public:
    ScopedPart(Device &dev, Part part) : dev_(dev), saved_(dev.currentPart())
    {
        dev_.setPart(part);
    }
    ~ScopedPart() { dev_.setPart(saved_); }

    ScopedPart(const ScopedPart &) = delete;
    ScopedPart &operator=(const ScopedPart &) = delete;

  private:
    Device &dev_;
    Part saved_;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_DEVICE_HH
