/**
 * @file
 * Power supply models for the device: continuous bench power, a
 * capacitor-buffered energy harvester (the paper's deployment scenario),
 * and deterministic fault injectors used by the test suite to place a
 * power failure at any chosen operation.
 */

#ifndef SONIC_ARCH_POWER_HH
#define SONIC_ARCH_POWER_HH

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "util/types.hh"

namespace sonic::arch
{

/**
 * Thrown by Device::consume when the energy buffer empties. Unwinds to
 * the task scheduler, which models the reboot.
 */
class PowerFailure : public std::runtime_error
{
  public:
    PowerFailure() : std::runtime_error("power failure") {}
};

/**
 * A prepaid energy budget handed to the Device by its PowerSupply (the
 * "energy lease"). While a lease is open the Device charges operations
 * against it with plain arithmetic — no virtual call — and crosses the
 * virtual boundary again only when the lease runs out. A lease covers
 * at most `ops` draw-calls and at most `nj` nanojoules; `ops == 0`
 * means no lease was granted and every operation must go through
 * draw() individually (the legacy per-op path).
 */
struct EnergyLease
{
    f64 nj = 0.0; ///< energy budget; may be +infinity (unbounded)
    u64 ops = 0;  ///< draw-calls covered; 0 = no lease granted
};

/**
 * Abstract energy source. draw() is called for every charged operation
 * on the slow path; returning false means the device browns out
 * mid-operation. Supplies that can predict when they will next fail
 * additionally implement grant()/settle() so the Device can run the
 * common case without any virtual dispatch.
 *
 * Lease protocol contract (what keeps the fast path bit-identical to
 * per-op draws):
 *  - grant(max_nj, max_ops) returns a budget the supply promises to
 *    honor: every draw within it would have succeeded. A supply that
 *    would fail on the very next draw grants ops == 0.
 *  - The Device counts one lease op per consume call (the same unit a
 *    draw() call is), and subtracts each operation's energy from the
 *    lease in operation order — the identical floating-point sequence
 *    the supply itself would have computed.
 *  - settle(unused_nj, used_nj, used_ops) returns an open lease: the
 *    unconsumed energy goes back, the consumed energy and op count are
 *    booked. The Device always settles before any other supply entry
 *    point (draw, recharge, reset, external inspection).
 */
class PowerSupply
{
  public:
    virtual ~PowerSupply() = default;

    /** Attempt to draw nj nanojoules; false means power failure. */
    virtual bool draw(f64 nj) = 0;

    /**
     * Open an energy lease of at most max_nj nanojoules covering at
     * most max_ops draw-calls. Default: no lease (per-op draws), so
     * custom supplies keep exact legacy behavior.
     */
    virtual EnergyLease
    grant(f64 max_nj, u64 max_ops)
    {
        (void)max_nj;
        (void)max_ops;
        return {};
    }

    /**
     * Close the current lease: return the unused remainder and book
     * what was consumed. Called exactly once per grant().
     */
    virtual void
    settle(f64 unused_nj, f64 used_nj, u64 used_ops)
    {
        (void)unused_nj;
        (void)used_nj;
        (void)used_ops;
    }

    /**
     * Refill the buffer after a failure.
     * @return the dead (off/recharging) time in seconds.
     */
    virtual f64 recharge() = 0;

    /**
     * Notify the supply that `live_seconds` of simulated device
     * uptime elapsed since the previous notification. Time-varying
     * harvesters (src/env) advance their environment clock here; the
     * stationary supplies ignore it. Called by Device::reboot just
     * before recharge() — never on the per-operation path — so the
     * lease fast path stays free of virtual calls.
     */
    virtual void elapse(f64 live_seconds) { (void)live_seconds; }

    /** Restore the initial fully-charged state. */
    virtual void reset() = 0;

    /** True if this supply can ever fail. */
    virtual bool intermittent() const = 0;

    /** Usable buffer capacity in nanojoules (0 if unlimited). */
    virtual f64 capacityNj() const = 0;

    /** Total energy income so far in nanojoules (for IMpJ accounting). */
    virtual f64 harvestedNj() const = 0;

    /** Human-readable description for reports. */
    virtual std::string describe() const = 0;
};

/** Wall power: never fails. Harvested energy equals drawn energy. */
class ContinuousPower : public PowerSupply
{
  public:
    bool
    draw(f64 nj) override
    {
        drawn_ += nj;
        return true;
    }

    /** Unbounded: grant everything that was asked for. */
    EnergyLease
    grant(f64 max_nj, u64 max_ops) override
    {
        return {max_nj, max_ops};
    }

    void
    settle(f64 /*unused_nj*/, f64 used_nj, u64 /*used_ops*/) override
    {
        drawn_ += used_nj;
    }

    f64 recharge() override { return 0.0; }
    void reset() override { drawn_ = 0.0; }
    bool intermittent() const override { return false; }
    f64 capacityNj() const override { return 0.0; }
    f64 harvestedNj() const override { return drawn_; }
    std::string describe() const override { return "continuous"; }

  private:
    f64 drawn_ = 0.0;
};

/**
 * The effective usable regulator window of the paper's harvester
 * front-end (~0.09 J per farad of storage). Calibrated so that a
 * 100 uF capacitor sustains on the order of a few thousand
 * instructions per charge cycle — the regime in which the paper's
 * Fig. 9b completion/DNF pattern (Tile-8 completes, Tile-128 never
 * does, Tile-32 fails only on MNIST) is observed. One definition:
 * every capacitor-buffered supply (CapacitorPower here, the
 * environment subsystem's HarvestSupply) defaults to it, so a
 * recalibration lands everywhere at once.
 */
inline constexpr f64 kRegulatorVMax = 2.28;
inline constexpr f64 kRegulatorVMin = 2.213;

/**
 * A capacitor charged by a constant-power harvester (e.g., the paper's
 * Powercast RF setup). The usable buffer is E = 1/2 C (Vmax^2 - Vmin^2).
 * While operating, harvest income continues to trickle in; when the
 * buffer empties the device dies and recharges at the harvest power.
 */
class CapacitorPower : public PowerSupply
{
  public:
    /**
     * @param capacitance_farads storage capacitance
     * @param harvest_watts harvester income power
     * @param v_max regulator-on voltage
     * @param v_min brown-out voltage
     */
    CapacitorPower(f64 capacitance_farads, f64 harvest_watts,
                   f64 v_max = kRegulatorVMax,
                   f64 v_min = kRegulatorVMin);

    bool draw(f64 nj) override;

    /**
     * Hand the whole remaining charge out as the lease. The Device's
     * countdown then performs the very same subtraction sequence
     * CapacitorPower::draw would have, so the brown-out lands on the
     * bit-identical operation; settle() puts the remainder back.
     */
    EnergyLease
    grant(f64 /*max_nj*/, u64 max_ops) override
    {
        const f64 nj = levelNj_;
        levelNj_ = 0.0;
        return {nj, max_ops};
    }

    void
    settle(f64 unused_nj, f64 /*used_nj*/, u64 /*used_ops*/) override
    {
        levelNj_ += unused_nj;
    }

    f64 recharge() override;
    void reset() override;
    bool intermittent() const override { return true; }
    f64 capacityNj() const override { return capacityNj_; }
    f64 harvestedNj() const override { return harvestedNj_; }
    std::string describe() const override;

    /** Remaining charge in nanojoules (diagnostics). */
    f64 levelNj() const { return levelNj_; }
    f64 harvestWatts() const { return harvestWatts_; }
    f64 capacitanceFarads() const { return capacitanceFarads_; }

  private:
    f64 capacitanceFarads_;
    f64 harvestWatts_;
    f64 capacityNj_;
    f64 levelNj_;
    f64 harvestedNj_;
};

/**
 * Test injector: succeeds for exactly failAfter draws, fails once, then
 * behaves as continuous power. Sweeping failAfter over every operation
 * index of a kernel exhaustively tests crash consistency at every
 * possible failure point.
 */
class FailOnceAfterOps : public PowerSupply
{
  public:
    explicit FailOnceAfterOps(u64 fail_after) : failAfter_(fail_after) {}

    bool
    draw(f64 nj) override
    {
        drawn_ += nj;
        if (!failed_ && ops_++ == failAfter_) {
            failed_ = true;
            return false;
        }
        return true;
    }

    /** Lease exactly the draws that remain before the injected fault
     * (unbounded energy — this injector fails by op count). */
    EnergyLease
    grant(f64 max_nj, u64 max_ops) override
    {
        const u64 ops =
            failed_ ? max_ops : std::min(max_ops, failAfter_ - ops_);
        return {max_nj, ops};
    }

    void
    settle(f64 /*unused_nj*/, f64 used_nj, u64 used_ops) override
    {
        drawn_ += used_nj;
        ops_ += used_ops;
    }

    f64 recharge() override { return 0.0; }

    void
    reset() override
    {
        ops_ = 0;
        failed_ = false;
        drawn_ = 0.0;
    }

    bool intermittent() const override { return true; }
    f64 capacityNj() const override { return 0.0; }
    f64 harvestedNj() const override { return drawn_; }

    std::string
    describe() const override
    {
        return "fail-once-after-" + std::to_string(failAfter_) + "-ops";
    }

    bool triggered() const { return failed_; }

  private:
    u64 failAfter_;
    u64 ops_ = 0;
    bool failed_ = false;
    f64 drawn_ = 0.0;
};

/**
 * Oracle injector: a supply driven by an explicit failure-index trace.
 * Draw i (0-based, counting every draw-call since construction or
 * reset) fails iff i is in the schedule; outside the schedule the
 * supply is continuous. Unlike the periodic injectors this can place
 * failures at arbitrary adversarial coordinates — bursts, commit-point
 * neighborhoods, shrunk counterexamples — which is what the
 * verification oracle (src/verify) sweeps.
 *
 * The schedule is sorted and deduplicated at construction; indices the
 * run never reaches simply do not fire (firedCount() reports how many
 * did). drawsSoFar() exposes the draw cursor, which in both power
 * accounting modes equals the number of Device::consume calls so far —
 * the coordinate system schedules are expressed in.
 */
class SchedulePower : public PowerSupply
{
  public:
    explicit SchedulePower(std::vector<u64> failure_indices = {},
                           f64 dead_seconds_per_recharge = 0.0)
        : schedule_(std::move(failure_indices)),
          deadSeconds_(dead_seconds_per_recharge)
    {
        std::sort(schedule_.begin(), schedule_.end());
        schedule_.erase(std::unique(schedule_.begin(), schedule_.end()),
                        schedule_.end());
    }

    bool
    draw(f64 nj) override
    {
        drawn_ += nj;
        const bool fail =
            next_ < schedule_.size() && ops_ == schedule_[next_];
        if (fail)
            ++next_;
        ++ops_;
        return !fail;
    }

    /** Lease every draw up to (excluding) the next scheduled failure. */
    EnergyLease
    grant(f64 max_nj, u64 max_ops) override
    {
        const u64 left = next_ < schedule_.size()
            ? schedule_[next_] - ops_
            : max_ops;
        return {max_nj, std::min(max_ops, left)};
    }

    void
    settle(f64 /*unused_nj*/, f64 used_nj, u64 used_ops) override
    {
        drawn_ += used_nj;
        ops_ += used_ops;
    }

    f64 recharge() override { return deadSeconds_; }

    void
    reset() override
    {
        ops_ = 0;
        next_ = 0;
        drawn_ = 0.0;
    }

    bool intermittent() const override { return !schedule_.empty(); }
    f64 capacityNj() const override { return 0.0; }
    f64 harvestedNj() const override { return drawn_; }

    std::string
    describe() const override
    {
        return "schedule[" + std::to_string(schedule_.size())
            + " failures]";
    }

    /** Scheduled failures that actually fired so far. */
    u64 firedCount() const { return next_; }

    /** Draw-call (== Device::consume call) cursor. */
    u64 drawsSoFar() const { return ops_; }

    const std::vector<u64> &schedule() const { return schedule_; }

  private:
    std::vector<u64> schedule_; ///< sorted, unique failure indices
    f64 deadSeconds_;
    u64 ops_ = 0;
    u64 next_ = 0; ///< first schedule entry not yet fired
    f64 drawn_ = 0.0;
};

/**
 * Test injector: fails every period draws, forever. Models an extremely
 * small buffer with deterministic timing; recharge takes a fixed
 * simulated time.
 */
class FailEveryOps : public PowerSupply
{
  public:
    explicit FailEveryOps(u64 period, f64 dead_seconds_per_recharge = 0.0)
        : period_(period), deadSeconds_(dead_seconds_per_recharge)
    {
    }

    bool
    draw(f64 nj) override
    {
        drawn_ += nj;
        if (++ops_ >= period_) {
            ops_ = 0;
            return false;
        }
        return true;
    }

    /** Lease the draws left in the current period (the next one after
     * those fails; with period <= 1 every draw takes the slow path —
     * period 0 degenerates to failing on every single draw). */
    EnergyLease
    grant(f64 max_nj, u64 max_ops) override
    {
        const u64 left =
            ops_ + 1 >= period_ ? 0 : period_ - 1 - ops_;
        return {max_nj, std::min(max_ops, left)};
    }

    void
    settle(f64 /*unused_nj*/, f64 used_nj, u64 used_ops) override
    {
        drawn_ += used_nj;
        ops_ += used_ops;
    }

    f64 recharge() override { return deadSeconds_; }
    void reset() override { ops_ = 0; drawn_ = 0.0; }
    bool intermittent() const override { return true; }
    f64 capacityNj() const override { return 0.0; }
    f64 harvestedNj() const override { return drawn_; }

    std::string
    describe() const override
    {
        return "fail-every-" + std::to_string(period_) + "-ops";
    }

  private:
    u64 period_;
    f64 deadSeconds_;
    u64 ops_ = 0;
    f64 drawn_ = 0.0;
};

} // namespace sonic::arch

#endif // SONIC_ARCH_POWER_HH
