#include "arch/device.hh"

#include <algorithm>
#include <limits>

#include "util/logging.hh"

namespace sonic::arch
{

namespace
{

/** What the Device asks for when opening a lease: effectively "all you
 * can promise". Supplies clamp to what they can actually honor. */
constexpr f64 kLeaseAskNj = std::numeric_limits<f64>::infinity();
constexpr u64 kLeaseAskOps = ~u64{0};

} // namespace

Device::Device(EnergyProfile profile, std::unique_ptr<PowerSupply> power,
               DeviceConfig config)
    : profile_(profile), power_(std::move(power)), config_(config),
      leaseEnabled_(!config.perOpPowerDraw)
{
    SONIC_ASSERT(power_ != nullptr);
    costs_ = profile_.table().data();
    bucket_ = &stats_.bucketRef(layer_, part_);
}

Device::~Device()
{
    // Flush the uptime accrued since the last reboot (or the whole
    // run, if it never failed) into the supply's environment clock: a
    // supply that outlives this Device — a fleet lifetime powering a
    // sequence of inferences through BorrowedSupply views — must not
    // lag the device time it already served.
    settleLease();
    power_->elapse(liveSeconds() - liveSecondsNotified_);
}

void
Device::consumeSlow(f64 nj)
{
    settleLease();
    if (!power_->draw(nj)) {
        ++rebootPending_;
        if (probe_ != nullptr)
            probe_->onPowerFailure(*this);
        throw PowerFailure();
    }
    if (leaseEnabled_) {
        const EnergyLease lease = power_->grant(kLeaseAskNj, kLeaseAskOps);
        leaseNj_ = lease.nj;
        leaseOps_ = lease.ops;
        grantedOps_ = lease.ops;
        leaseOutstanding_ = true;
        if (probe_ != nullptr)
            probe_->onLeaseGrant(*this, leaseNj_, leaseOps_);
    }
}

void
Device::settleLease() const
{
    // Every grant() is settled exactly once, even a zero-op grant — a
    // supply may have transferred budget out in grant() regardless.
    if (!leaseOutstanding_)
        return;
    power_->settle(leaseNj_, leaseUsedNj_, grantedOps_ - leaseOps_);
    if (probe_ != nullptr)
        probe_->onLeaseSettle(*this, leaseUsedNj_);
    leaseOutstanding_ = false;
    leaseOps_ = 0;
    grantedOps_ = 0;
    leaseNj_ = 0.0;
    leaseUsedNj_ = 0.0;
}

void
Device::setLeasing(bool enabled)
{
    settleLease();
    leaseEnabled_ = enabled;
}

u16
Device::registerLayer(const std::string &name)
{
    const u16 id = stats_.registerLayer(name);
    // Bucket addresses are stable, but re-derive defensively in case a
    // future Stats changes storage.
    bucket_ = &stats_.bucketRef(layer_, part_);
    return id;
}

void
Device::allocFram(u64 bytes, const std::string &what)
{
    framUsed_ += bytes;
    if (config_.enforceCapacity && framUsed_ > config_.framCapacityBytes) {
        fatal("FRAM exhausted allocating ", bytes, "B for '", what, "': ",
              framUsed_, "B used of ", config_.framCapacityBytes, "B");
    }
}

void
Device::allocSram(u64 bytes, const std::string &what)
{
    sramUsed_ += bytes;
    if (config_.enforceCapacity && sramUsed_ > config_.sramCapacityBytes) {
        fatal("SRAM exhausted allocating ", bytes, "B for '", what, "': ",
              sramUsed_, "B used of ", config_.sramCapacityBytes, "B");
    }
}

void
Device::freeFram(u64 bytes)
{
    SONIC_ASSERT(bytes <= framUsed_);
    framUsed_ -= bytes;
}

void
Device::freeSram(u64 bytes)
{
    SONIC_ASSERT(bytes <= sramUsed_);
    sramUsed_ -= bytes;
}

void
Device::registerVolatile(VolatileResettable *v)
{
    volatiles_.push_back(v);
}

void
Device::unregisterVolatile(VolatileResettable *v)
{
    auto it = std::find(volatiles_.begin(), volatiles_.end(), v);
    if (it != volatiles_.end())
        volatiles_.erase(it);
}

void
Device::registerNonVolatile(const NvmDigestible *nv)
{
    nonVolatiles_.push_back(nv);
}

void
Device::unregisterNonVolatile(const NvmDigestible *nv)
{
    auto it =
        std::find(nonVolatiles_.begin(), nonVolatiles_.end(), nv);
    if (it != nonVolatiles_.end())
        nonVolatiles_.erase(it);
}

u64
Device::nvmDigest() const
{
    // Registration order is the deterministic flash layout order (the
    // same workload always constructs its handles in the same order),
    // so two runs of the same workload digest the same region sequence.
    NvmDigest d;
    for (const auto *nv : nonVolatiles_)
        nv->digestInto(d);
    return d.value();
}

void
Device::reboot()
{
    // A reboot can be requested directly (tests, host tooling) with a
    // lease still open; book it before the supply recharges.
    settleLease();
    ++rebootCount_;
    // Consume the whole failure backlog: however many PowerFailures
    // were charged since the last reboot (normally exactly one — a
    // failing bulk charge counts once), this models one power cycle.
    rebootPending_ = 0;
    // Advance the supply's environment clock by the uptime accrued
    // since the previous reboot, so a time-varying harvester recharges
    // at the harvest rate of the correct simulated moment.
    const f64 live = liveSeconds();
    power_->elapse(live - liveSecondsNotified_);
    liveSecondsNotified_ = live;
    const f64 dead = power_->recharge();
    deadSeconds_ += dead;
    if (probe_ != nullptr)
        probe_->onRecharge(*this, dead);
    for (auto *v : volatiles_)
        v->onReboot(rebootCount_);
    if (rebootHook_)
        rebootHook_(*this, rebootCount_);
    if (probe_ != nullptr)
        probe_->onReboot(*this, rebootCount_);
}

} // namespace sonic::arch
