#include "arch/device.hh"

#include <algorithm>

#include "util/logging.hh"

namespace sonic::arch
{

Device::Device(EnergyProfile profile, std::unique_ptr<PowerSupply> power,
               DeviceConfig config)
    : profile_(profile), power_(std::move(power)), config_(config)
{
    SONIC_ASSERT(power_ != nullptr);
}

Device::~Device() = default;

u16
Device::registerLayer(const std::string &name)
{
    return stats_.registerLayer(name);
}

void
Device::allocFram(u64 bytes, const std::string &what)
{
    framUsed_ += bytes;
    if (config_.enforceCapacity && framUsed_ > config_.framCapacityBytes) {
        fatal("FRAM exhausted allocating ", bytes, "B for '", what, "': ",
              framUsed_, "B used of ", config_.framCapacityBytes, "B");
    }
}

void
Device::allocSram(u64 bytes, const std::string &what)
{
    sramUsed_ += bytes;
    if (config_.enforceCapacity && sramUsed_ > config_.sramCapacityBytes) {
        fatal("SRAM exhausted allocating ", bytes, "B for '", what, "': ",
              sramUsed_, "B used of ", config_.sramCapacityBytes, "B");
    }
}

void
Device::freeFram(u64 bytes)
{
    SONIC_ASSERT(bytes <= framUsed_);
    framUsed_ -= bytes;
}

void
Device::freeSram(u64 bytes)
{
    SONIC_ASSERT(bytes <= sramUsed_);
    sramUsed_ -= bytes;
}

void
Device::registerVolatile(VolatileResettable *v)
{
    volatiles_.push_back(v);
}

void
Device::unregisterVolatile(VolatileResettable *v)
{
    auto it = std::find(volatiles_.begin(), volatiles_.end(), v);
    if (it != volatiles_.end())
        volatiles_.erase(it);
}

void
Device::reboot()
{
    ++rebootCount_;
    rebootPending_ = 0;
    deadSeconds_ += power_->recharge();
    for (auto *v : volatiles_)
        v->onReboot(rebootCount_);
}

} // namespace sonic::arch
