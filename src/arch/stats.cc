#include "arch/stats.hh"

#include "util/logging.hh"

namespace sonic::arch
{

u64
OpCounters::totalCycles() const
{
    u64 sum = 0;
    for (auto c : cycles)
        sum += c;
    return sum;
}

f64
OpCounters::totalNanojoules() const
{
    f64 sum = 0.0;
    for (auto e : nanojoules)
        sum += e;
    return sum;
}

Stats::Stats()
{
    registerLayer("other");
}

u16
Stats::registerLayer(const std::string &name)
{
    layers_.push_back(name);
    buckets_.emplace_back();
    return static_cast<u16>(layers_.size() - 1);
}

void
Stats::reset()
{
    for (auto &layer : buckets_)
        for (auto &bucket : layer)
            bucket = OpCounters{};
}

const std::string &
Stats::layerName(u16 layer) const
{
    SONIC_ASSERT(layer < layers_.size());
    return layers_[layer];
}

const OpCounters &
Stats::bucket(u16 layer, Part part) const
{
    SONIC_ASSERT(layer < buckets_.size());
    return buckets_[layer][static_cast<u32>(part)];
}

OpCounters &
Stats::bucketRef(u16 layer, Part part)
{
    SONIC_ASSERT(layer < buckets_.size());
    return buckets_[layer][static_cast<u32>(part)];
}

u64
Stats::layerCycles(u16 layer) const
{
    u64 sum = 0;
    for (u32 p = 0; p < kNumParts; ++p)
        sum += bucket(layer, static_cast<Part>(p)).totalCycles();
    return sum;
}

f64
Stats::layerNanojoules(u16 layer) const
{
    f64 sum = 0.0;
    for (u32 p = 0; p < kNumParts; ++p)
        sum += bucket(layer, static_cast<Part>(p)).totalNanojoules();
    return sum;
}

u64
Stats::partCycles(Part part) const
{
    u64 sum = 0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += bucket(l, part).totalCycles();
    return sum;
}

f64
Stats::partNanojoules(Part part) const
{
    f64 sum = 0.0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += bucket(l, part).totalNanojoules();
    return sum;
}

u64
Stats::layerOpCount(u16 layer, Op op) const
{
    u64 sum = 0;
    for (u32 p = 0; p < kNumParts; ++p)
        sum += bucket(layer, static_cast<Part>(p))
                   .count[static_cast<u32>(op)];
    return sum;
}

f64
Stats::layerOpNanojoules(u16 layer, Op op) const
{
    f64 sum = 0.0;
    for (u32 p = 0; p < kNumParts; ++p)
        sum += bucket(layer, static_cast<Part>(p))
                   .nanojoules[static_cast<u32>(op)];
    return sum;
}

u64
Stats::totalCycles() const
{
    u64 sum = 0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += layerCycles(l);
    return sum;
}

f64
Stats::totalNanojoules() const
{
    f64 sum = 0.0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += layerNanojoules(l);
    return sum;
}

u64
Stats::opCount(Op op) const
{
    u64 sum = 0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += layerOpCount(l, op);
    return sum;
}

f64
Stats::opNanojoules(Op op) const
{
    f64 sum = 0.0;
    for (u16 l = 0; l < layers_.size(); ++l)
        sum += layerOpNanojoules(l, op);
    return sum;
}

} // namespace sonic::arch
